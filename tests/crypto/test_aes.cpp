// AES against FIPS-197 known-answer vectors and CTR mode against
// NIST SP 800-38A section F.5 vectors.
#include "crypto/aes.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace raptee::crypto {
namespace {

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

Block block_from_hex(const std::string& hex) {
  Block b{};
  const auto v = from_hex(hex);
  std::memcpy(b.data(), v.data(), 16);
  return b;
}

std::string hex_of(const std::uint8_t* p, std::size_t n) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(digits[p[i] >> 4]);
    out.push_back(digits[p[i] & 0xF]);
  }
  return out;
}

TEST(Aes128, Fips197Appendix) {
  const auto key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Aes aes(key.data(), Aes::KeySize::k128);
  Block b = block_from_hex("00112233445566778899aabbccddeeff");
  aes.encrypt_block(b);
  EXPECT_EQ(hex_of(b.data(), 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
  aes.decrypt_block(b);
  EXPECT_EQ(hex_of(b.data(), 16), "00112233445566778899aabbccddeeff");
}

TEST(Aes256, Fips197Appendix) {
  const auto key =
      from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Aes aes(key.data(), Aes::KeySize::k256);
  Block b = block_from_hex("00112233445566778899aabbccddeeff");
  aes.encrypt_block(b);
  EXPECT_EQ(hex_of(b.data(), 16), "8ea2b7ca516745bfeafc49904b496089");
  aes.decrypt_block(b);
  EXPECT_EQ(hex_of(b.data(), 16), "00112233445566778899aabbccddeeff");
}

TEST(Aes128, Sp800_38aEcbVector) {
  const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Aes aes(key.data(), Aes::KeySize::k128);
  Block b = block_from_hex("6bc1bee22e409f96e93d7e117393172a");
  aes.encrypt_block(b);
  EXPECT_EQ(hex_of(b.data(), 16), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(AesCtr128, Sp800_38aF51) {
  // SP 800-38A F.5.1: CTR-AES128.Encrypt, 4 blocks.
  const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Aes aes(key.data(), Aes::KeySize::k128);
  const Block counter = block_from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  auto plaintext = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const auto ciphertext = aes_ctr_transform(aes, counter, plaintext);
  EXPECT_EQ(hex_of(ciphertext.data(), ciphertext.size()),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(AesCtr256, Sp800_38aF55) {
  const auto key =
      from_hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  const Aes aes(key.data(), Aes::KeySize::k256);
  const Block counter = block_from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  auto plaintext = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  const auto ciphertext = aes_ctr_transform(aes, counter, plaintext);
  EXPECT_EQ(hex_of(ciphertext.data(), ciphertext.size()),
            "601ec313775789a5b7a7f504bbf3d228"
            "f443e3ca4d62b59aca84e990cacaf5c5");
}

TEST(AesCtr, EncryptDecryptSymmetry) {
  const auto key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Aes aes(key.data(), Aes::KeySize::k128);
  const Block counter = make_counter_block({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  std::vector<std::uint8_t> data(100);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  const auto original = data;
  AesCtr enc(aes, counter);
  enc.process(data);
  EXPECT_NE(data, original);
  AesCtr dec(aes, counter);
  dec.process(data);
  EXPECT_EQ(data, original);
}

TEST(AesCtr, StreamingMatchesOneShot) {
  const auto key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Aes aes(key.data(), Aes::KeySize::k128);
  const Block counter = make_counter_block({});
  std::vector<std::uint8_t> data(61, 0x5A);

  auto oneshot = aes_ctr_transform(aes, counter, data);

  auto streamed = data;
  AesCtr ctr(aes, counter);
  ctr.process(streamed.data(), 7);
  ctr.process(streamed.data() + 7, 16);
  ctr.process(streamed.data() + 23, 38);
  EXPECT_EQ(streamed, oneshot);
}

TEST(AesCtr, ResetRestartsKeystream) {
  const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Aes aes(key.data(), Aes::KeySize::k128);
  const Block counter = make_counter_block({9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9});
  std::vector<std::uint8_t> a(32, 0), b(32, 0);
  AesCtr ctr(aes, counter);
  ctr.process(a);
  ctr.reset(counter);
  ctr.process(b);
  EXPECT_EQ(a, b);
}

TEST(AesCtr, CounterIncrementCarries) {
  // Counter portion 0x000000FF -> 0x00000100 across the refill boundary:
  // encrypting 2 blocks with initial counter ...FF must equal block(FF)
  // followed by block(0100).
  const auto key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Aes aes(key.data(), Aes::KeySize::k128);
  const Block c0 = make_counter_block({}, 0x000000FF);
  const Block c1 = make_counter_block({}, 0x00000100);

  std::vector<std::uint8_t> zeros(32, 0);
  const auto two_blocks = aes_ctr_transform(aes, c0, zeros);

  Block ks0 = c0, ks1 = c1;
  aes.encrypt_block(ks0);
  aes.encrypt_block(ks1);
  EXPECT_EQ(0, std::memcmp(two_blocks.data(), ks0.data(), 16));
  EXPECT_EQ(0, std::memcmp(two_blocks.data() + 16, ks1.data(), 16));
}

TEST(Aes, RoundCounts) {
  const auto key128 = from_hex("000102030405060708090a0b0c0d0e0f");
  const auto key256 =
      from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  EXPECT_EQ(Aes(key128.data(), Aes::KeySize::k128).rounds(), 10);
  EXPECT_EQ(Aes(key256.data(), Aes::KeySize::k256).rounds(), 14);
}

TEST(Aes, MakeCounterBlockLayout) {
  const Block b = make_counter_block({0xA, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xB, 0xC}, 0x01020304);
  EXPECT_EQ(b[0], 0xA);
  EXPECT_EQ(b[11], 0xC);
  EXPECT_EQ(b[12], 0x01);
  EXPECT_EQ(b[15], 0x04);
}

class AesRoundTripSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AesRoundTripSweep, CtrRoundTripsAnyLength) {
  const auto key =
      from_hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  const Aes aes(key.data(), Aes::KeySize::k256);
  const Block counter = make_counter_block({7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7});
  std::vector<std::uint8_t> data(GetParam());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  const auto original = data;
  AesCtr enc(aes, counter);
  enc.process(data);
  AesCtr dec(aes, counter);
  dec.process(data);
  EXPECT_EQ(data, original);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AesRoundTripSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 100, 1024));

}  // namespace
}  // namespace raptee::crypto
