// Hashcash push puzzles — the concrete "limited pushes" rate limiter.
#include "crypto/puzzle.hpp"

#include <gtest/gtest.h>

namespace raptee::crypto {
namespace {

TEST(LeadingZeroBits, ByteAndSubByteBoundaries) {
  Digest256 d{};
  d.fill(0);
  EXPECT_TRUE(has_leading_zero_bits(d, 0));
  EXPECT_TRUE(has_leading_zero_bits(d, 256));

  d[0] = 0x01;  // 7 leading zero bits
  EXPECT_TRUE(has_leading_zero_bits(d, 7));
  EXPECT_FALSE(has_leading_zero_bits(d, 8));

  d[0] = 0x00;
  d[1] = 0x80;  // exactly 8 leading zero bits
  EXPECT_TRUE(has_leading_zero_bits(d, 8));
  EXPECT_FALSE(has_leading_zero_bits(d, 9));

  d[1] = 0x00;
  d[2] = 0xFF;  // 16 leading zero bits
  EXPECT_TRUE(has_leading_zero_bits(d, 16));
  EXPECT_FALSE(has_leading_zero_bits(d, 17));
}

TEST(PushPuzzle, SolveAndVerify) {
  const PushPuzzle puzzle(NodeId{1}, NodeId{2}, 3, /*difficulty=*/8);
  const auto solution = puzzle.solve();
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(puzzle.verify(*solution));
}

TEST(PushPuzzle, ZeroDifficultyIsFree) {
  const PushPuzzle puzzle(NodeId{1}, NodeId{2}, 3, 0);
  const auto solution = puzzle.solve(0, 1);
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ(solution->nonce, 0u);
}

TEST(PushPuzzle, SolutionIsBindingToAllFields) {
  const PushPuzzle puzzle(NodeId{1}, NodeId{2}, 3, 10);
  const auto solution = *puzzle.solve();
  // Any changed field invalidates the proof (overwhelmingly likely).
  EXPECT_FALSE(PushPuzzle(NodeId{9}, NodeId{2}, 3, 10).verify(solution));
  EXPECT_FALSE(PushPuzzle(NodeId{1}, NodeId{9}, 3, 10).verify(solution));
  EXPECT_FALSE(PushPuzzle(NodeId{1}, NodeId{2}, 9, 10).verify(solution));
}

TEST(PushPuzzle, BudgetExhaustionReturnsNothing) {
  const PushPuzzle hard(NodeId{1}, NodeId{2}, 3, 24);
  EXPECT_FALSE(hard.solve(0, /*max_attempts=*/16).has_value());
}

TEST(PushPuzzle, ExpectedWorkScale) {
  EXPECT_DOUBLE_EQ(PushPuzzle(NodeId{0}, NodeId{0}, 0, 0).expected_work(), 1.0);
  EXPECT_DOUBLE_EQ(PushPuzzle(NodeId{0}, NodeId{0}, 0, 10).expected_work(), 1024.0);
}

TEST(PushPuzzle, WorkGrowsWithDifficulty) {
  // Statistical: average solving nonce roughly doubles per difficulty bit.
  double work8 = 0, work10 = 0;
  constexpr int kTrials = 12;
  for (std::uint32_t trial = 0; trial < kTrials; ++trial) {
    work8 += static_cast<double>(
        PushPuzzle(NodeId{trial}, NodeId{1}, trial, 8).solve()->nonce);
    work10 += static_cast<double>(
        PushPuzzle(NodeId{trial}, NodeId{1}, trial, 10).solve()->nonce);
  }
  EXPECT_GT(work10, work8);
}

TEST(PuzzledPushGuard, AdmitsValidRejectsInvalid) {
  PuzzledPushGuard guard(8);
  const PushPuzzle puzzle(NodeId{1}, NodeId{2}, 0, 8);
  const auto solution = *puzzle.solve();
  EXPECT_TRUE(guard.admit(NodeId{1}, NodeId{2}, 0, solution));
  EXPECT_FALSE(guard.admit(NodeId{1}, NodeId{2}, 0, PuzzleSolution{solution.nonce + 1}));
  EXPECT_EQ(guard.rejected_total(), 1u);
}

TEST(PuzzledPushGuard, RejectsReplayWithinRound) {
  PuzzledPushGuard guard(6);
  const auto solution = *PushPuzzle(NodeId{1}, NodeId{2}, 0, 6).solve();
  EXPECT_TRUE(guard.admit(NodeId{1}, NodeId{2}, 0, solution));
  EXPECT_FALSE(guard.admit(NodeId{1}, NodeId{2}, 0, solution));
  EXPECT_EQ(guard.admitted_this_round(), 1u);
}

TEST(PuzzledPushGuard, RoundRolloverRequiresFreshWork) {
  PuzzledPushGuard guard(6);
  const auto round0 = *PushPuzzle(NodeId{1}, NodeId{2}, 0, 6).solve();
  EXPECT_TRUE(guard.admit(NodeId{1}, NodeId{2}, 0, round0));
  guard.next_round();
  EXPECT_EQ(guard.admitted_this_round(), 0u);
  // The old solution does not transfer to round 1 (different statement)...
  EXPECT_FALSE(guard.admit(NodeId{1}, NodeId{2}, 1, round0) &&
               !PushPuzzle(NodeId{1}, NodeId{2}, 1, 6).verify(round0));
  // ...but fresh work does.
  const auto round1 = *PushPuzzle(NodeId{1}, NodeId{2}, 1, 6).solve();
  EXPECT_TRUE(guard.admit(NodeId{1}, NodeId{2}, 1, round1));
}

TEST(PuzzledPushGuard, RateLimitIsComputeBound) {
  // A sender with a budget of ~2^8 hash evaluations can afford ~one
  // difficulty-8 push but ~16 difficulty-4 pushes: the guard's difficulty
  // knob IS the per-round rate limit.
  PuzzledPushGuard strict(12);
  PuzzledPushGuard lax(4);
  constexpr std::uint64_t kBudget = 1 << 8;
  std::size_t strict_pushes = 0, lax_pushes = 0;
  for (std::uint32_t attempt = 0; attempt < 16; ++attempt) {
    if (const auto s = PushPuzzle(NodeId{1}, NodeId{attempt}, 0, 12).solve(0, kBudget)) {
      if (strict.admit(NodeId{1}, NodeId{attempt}, 0, *s)) ++strict_pushes;
    }
    if (const auto s = PushPuzzle(NodeId{1}, NodeId{attempt}, 0, 4).solve(0, kBudget)) {
      if (lax.admit(NodeId{1}, NodeId{attempt}, 0, *s)) ++lax_pushes;
    }
  }
  EXPECT_LT(strict_pushes, lax_pushes);
  EXPECT_EQ(lax_pushes, 16u);
}

}  // namespace
}  // namespace raptee::crypto
