// SHA-256 against the FIPS 180-4 / NIST CAVP known-answer vectors.
#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace raptee::crypto {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes == one full block; padding spills into a second block.
  const std::string m(64, 'a');
  EXPECT_EQ(to_hex(sha256(m)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes: length fits in the same block as the 0x80 pad byte;
  // 56 bytes: it does not — both classic edge cases.
  EXPECT_EQ(to_hex(sha256(std::string(55, 'a'))),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(to_hex(sha256(std::string(56, 'a'))),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 ctx;
    ctx.update(msg.substr(0, split));
    ctx.update(msg.substr(split));
    EXPECT_EQ(to_hex(ctx.finish()), to_hex(sha256(msg))) << "split at " << split;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 ctx;
  ctx.update("garbage");
  (void)ctx.finish();
  ctx.reset();
  ctx.update("abc");
  EXPECT_EQ(to_hex(ctx.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, VectorOverloadMatchesString) {
  const std::string s = "hello world";
  const std::vector<std::uint8_t> v(s.begin(), s.end());
  EXPECT_EQ(sha256(v), sha256(s));
}

TEST(Sha256, DigestEqualConstantTimeCompare) {
  const Digest256 a = sha256("x");
  Digest256 b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
  b = a;
  b[0] ^= 0x80;
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(Sha256, HexEncodingShape) {
  const auto h = to_hex(sha256("abc"));
  EXPECT_EQ(h.size(), 64u);
  for (char c : h) EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
}

class Sha256LengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256LengthSweep, IncrementalByteAtATimeMatchesOneShot) {
  const std::size_t len = GetParam();
  std::string msg(len, '\0');
  for (std::size_t i = 0; i < len; ++i) msg[i] = static_cast<char>(i * 31 + 7);
  Sha256 ctx;
  for (char c : msg) ctx.update(std::string_view(&c, 1));
  EXPECT_EQ(to_hex(ctx.finish()), to_hex(sha256(msg)));
}

INSTANTIATE_TEST_SUITE_P(Lengths, Sha256LengthSweep,
                         ::testing::Values(0, 1, 31, 32, 33, 55, 56, 57, 63, 64, 65, 127,
                                           128, 129, 255, 1000));

}  // namespace
}  // namespace raptee::crypto
