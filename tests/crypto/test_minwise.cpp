// Empirical min-wise independence properties of the sampler hash family.
#include "crypto/minwise.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace raptee::crypto {
namespace {

TEST(MinWiseHash, Deterministic) {
  MinWiseHash h(42);
  EXPECT_EQ(h(NodeId{7}), h(NodeId{7}));
  EXPECT_NE(h(NodeId{7}), h(NodeId{8}));
}

TEST(MinWiseHash, SeedSeparatesFunctions) {
  MinWiseHash h1(1), h2(2);
  int same = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    if (h1(NodeId{i}) == h2(NodeId{i})) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(MinWiseHash, MinIsUniformOverElements) {
  // Min-wise property: over random hash functions, each of n elements is
  // the minimum with probability ~1/n.
  constexpr std::uint32_t kN = 16;
  constexpr int kTrials = 40000;
  std::vector<int> argmin_counts(kN, 0);
  Rng seeder(99);
  for (int t = 0; t < kTrials; ++t) {
    MinWiseHash h(seeder.next());
    std::uint64_t best = ~0ull;
    std::uint32_t arg = 0;
    for (std::uint32_t i = 0; i < kN; ++i) {
      const std::uint64_t v = h(NodeId{i});
      if (v < best) {
        best = v;
        arg = i;
      }
    }
    ++argmin_counts[arg];
  }
  const double expected = static_cast<double>(kTrials) / kN;
  for (int c : argmin_counts) {
    EXPECT_NEAR(c, expected, 0.15 * expected);
  }
}

TEST(MinWiseHash, AvalancheOnIdBitFlip) {
  MinWiseHash h(12345);
  int total_bits = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const std::uint64_t a = h(NodeId{i});
    const std::uint64_t b = h(NodeId{i ^ 1u});
    total_bits += __builtin_popcountll(a ^ b);
  }
  // ~32 differing bits on average; allow a generous band.
  EXPECT_NEAR(total_bits / 64.0, 32.0, 6.0);
}

TEST(MinWiseHash, NoCollisionsInDenseRange) {
  MinWiseHash h(5);
  std::vector<std::uint64_t> hashes;
  for (std::uint32_t i = 0; i < 10000; ++i) hashes.push_back(h(NodeId{i}));
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()), hashes.end());
}

}  // namespace
}  // namespace raptee::crypto
