#include "crypto/key.hpp"

#include <gtest/gtest.h>

#include <set>

namespace raptee::crypto {
namespace {

TEST(SymmetricKey, EqualityIsByContent) {
  Drbg rng(1);
  const SymmetricKey a = rng.generate_key();
  const SymmetricKey b = a;
  EXPECT_EQ(a, b);
  const SymmetricKey c = rng.generate_key();
  EXPECT_NE(a, c);
}

TEST(SymmetricKey, DeriveIsDeterministicAndLabelSeparated) {
  Drbg rng(2);
  const SymmetricKey k = rng.generate_key();
  EXPECT_EQ(k.derive("x"), k.derive("x"));
  EXPECT_NE(k.derive("x"), k.derive("y"));
  EXPECT_NE(k.derive("x"), k);
}

TEST(SymmetricKey, FingerprintMatchesKeyEquality) {
  Drbg rng(3);
  const SymmetricKey a = rng.generate_key();
  const SymmetricKey b = rng.generate_key();
  EXPECT_EQ(a.fingerprint(), SymmetricKey(a.bytes()).fingerprint());
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Drbg, DeterministicForSameSeed) {
  Drbg a(42), b(42);
  EXPECT_EQ(a.bytes(64), b.bytes(64));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Drbg, PersonalizationSeparatesStreams) {
  Drbg a(42, "one"), b(42, "two");
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, OutputAdvances) {
  Drbg d(7);
  EXPECT_NE(d.bytes(32), d.bytes(32));
}

TEST(Drbg, ForkIndependence) {
  Drbg parent(9);
  Drbg child1 = parent.fork("a");
  Drbg child2 = parent.fork("a");
  // Forks at different parent states differ even with the same label.
  EXPECT_NE(child1.bytes(32), child2.bytes(32));
}

TEST(Drbg, GeneratedKeysAreDistinct) {
  Drbg d(10);
  std::set<std::uint64_t> fps;
  for (int i = 0; i < 100; ++i) fps.insert(d.generate_key().fingerprint());
  EXPECT_EQ(fps.size(), 100u);
}

TEST(Drbg, FillExactLengths) {
  Drbg d(11);
  for (std::size_t len : {0u, 1u, 31u, 32u, 33u, 100u}) {
    EXPECT_EQ(d.bytes(len).size(), len);
  }
}

TEST(Drbg, NonceGeneration) {
  Drbg d(12);
  const auto n1 = d.generate_nonce();
  const auto n2 = d.generate_nonce();
  EXPECT_NE(n1, n2);
}

TEST(Drbg, ByteDistributionRoughlyUniform) {
  Drbg d(13);
  const auto data = d.bytes(65536);
  std::array<int, 256> counts{};
  for (auto b : data) ++counts[b];
  for (int c : counts) {
    // Expected 256 per value; loose 5-sigma band.
    EXPECT_GT(c, 256 - 80);
    EXPECT_LT(c, 256 + 80);
  }
}

}  // namespace
}  // namespace raptee::crypto
