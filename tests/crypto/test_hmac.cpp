// HMAC-SHA-256 against RFC 4231 and HKDF-SHA-256 against RFC 5869 vectors.
#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/sha256.hpp"

namespace raptee::crypto {
namespace {

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

std::string hex_of(const std::vector<std::uint8_t>& v) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (auto b : v) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

TEST(HmacSha256, Rfc4231Case1) {
  const auto key = std::vector<std::uint8_t>(20, 0x0b);
  const auto mac = hmac_sha256(key, "Hi There");
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const std::string key = "Jefe";
  const auto mac = hmac_sha256(std::vector<std::uint8_t>(key.begin(), key.end()),
                               "what do ya want for nothing?");
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const auto key = std::vector<std::uint8_t>(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  HmacSha256 mac(key);
  mac.update(data);
  EXPECT_EQ(to_hex(mac.finish()),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case4) {
  const auto key = from_hex("0102030405060708090a0b0c0d0e0f10111213141516171819");
  const std::vector<std::uint8_t> data(50, 0xcd);
  HmacSha256 mac(key);
  mac.update(data);
  EXPECT_EQ(to_hex(mac.finish()),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  // Key longer than the block size must be hashed first.
  const auto key = std::vector<std::uint8_t>(131, 0xaa);
  const auto mac = hmac_sha256(key, "Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, Rfc4231Case7LongKeyAndData) {
  const auto key = std::vector<std::uint8_t>(131, 0xaa);
  const auto mac = hmac_sha256(
      key,
      "This is a test using a larger than block-size key and a larger than "
      "block-size data. The key needs to be hashed before being used by the HMAC "
      "algorithm.");
  EXPECT_EQ(to_hex(mac),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacSha256, DifferentKeysDifferentMacs) {
  const auto a = hmac_sha256(std::vector<std::uint8_t>{1, 2, 3}, "msg");
  const auto b = hmac_sha256(std::vector<std::uint8_t>{1, 2, 4}, "msg");
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(HmacSha256, IncrementalMatchesOneShot) {
  const std::vector<std::uint8_t> key{9, 9, 9};
  HmacSha256 inc(key);
  inc.update("hello ");
  inc.update("world");
  EXPECT_TRUE(digest_equal(inc.finish(), hmac_sha256(key, "hello world")));
}

TEST(Hkdf, Rfc5869Case1) {
  const auto ikm = std::vector<std::uint8_t>(22, 0x0b);
  const auto salt = from_hex("000102030405060708090a0b0c");
  const std::string info_hex = "f0f1f2f3f4f5f6f7f8f9";
  std::string info;
  for (auto b : from_hex(info_hex)) info.push_back(static_cast<char>(b));
  const auto okm = hkdf_sha256(salt, ikm, info, 42);
  EXPECT_EQ(hex_of(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3EmptySaltEmptyInfo) {
  const auto ikm = std::vector<std::uint8_t>(22, 0x0b);
  const auto okm = hkdf_sha256({}, ikm, "", 42);
  EXPECT_EQ(hex_of(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, LengthControl) {
  const auto okm1 = hkdf_sha256({}, {1, 2, 3}, "x", 1);
  const auto okm100 = hkdf_sha256({}, {1, 2, 3}, "x", 100);
  EXPECT_EQ(okm1.size(), 1u);
  EXPECT_EQ(okm100.size(), 100u);
  // Prefix property: shorter output is a prefix of longer output.
  EXPECT_EQ(okm1[0], okm100[0]);
}

TEST(Hkdf, InfoSeparatesOutputs) {
  const auto a = hkdf_sha256({}, {1, 2, 3}, "label-a", 32);
  const auto b = hkdf_sha256({}, {1, 2, 3}, "label-b", 32);
  EXPECT_NE(a, b);
}

TEST(Hkdf, RejectsOversizedRequest) {
  EXPECT_THROW((void)hkdf_sha256({}, {1}, "", 255 * 32 + 1), std::invalid_argument);
}

}  // namespace
}  // namespace raptee::crypto
