// The paper's §IV-A mutual-authentication protocol: positive path, all the
// mismatch paths, and replay resistance.
#include "crypto/mutual_auth.hpp"

#include <gtest/gtest.h>

namespace raptee::crypto {
namespace {

struct HandshakeResult {
  bool initiator_trusts = false;
  bool responder_trusts = false;
};

HandshakeResult run_handshake(const SymmetricKey& ka, const SymmetricKey& kb,
                              std::uint64_t seed) {
  Drbg rng_a(seed, "a"), rng_b(seed, "b");
  AuthInitiator a(ka, rng_a);
  AuthResponder b(kb, rng_b);

  const AuthChallenge m1 = a.challenge();
  const AuthResponse m2 = b.respond(m1);
  AuthConfirm m3;
  HandshakeResult result;
  result.initiator_trusts = a.consume_response(m2, m3);
  b.consume_confirm(m3);
  result.responder_trusts = b.peer_trusted();
  return result;
}

TEST(MutualAuth, SameKeyAuthenticatesBothDirections) {
  Drbg kg(1);
  const SymmetricKey group = kg.generate_key();
  const auto r = run_handshake(group, group, 7);
  EXPECT_TRUE(r.initiator_trusts);
  EXPECT_TRUE(r.responder_trusts);
}

TEST(MutualAuth, DifferentKeysFailBothDirections) {
  Drbg kg(2);
  const auto r = run_handshake(kg.generate_key(), kg.generate_key(), 7);
  EXPECT_FALSE(r.initiator_trusts);
  EXPECT_FALSE(r.responder_trusts);
}

TEST(MutualAuth, FailedAuthStillProducesWellFormedConfirm) {
  // Camouflage: an untrusted initiator still sends message 3 so traffic is
  // indistinguishable.
  Drbg kg(3);
  Drbg rng_a(5, "a"), rng_b(5, "b");
  AuthInitiator a(kg.generate_key(), rng_a);
  AuthResponder b(kg.generate_key(), rng_b);
  const auto m2 = b.respond(a.challenge());
  AuthConfirm m3{};
  EXPECT_FALSE(a.consume_response(m2, m3));
  // Token must not be all zeros (it is a genuine ciphertext under A's key).
  bool nonzero = false;
  for (auto byte : m3.proof_a) nonzero |= (byte != 0);
  EXPECT_TRUE(nonzero);
}

TEST(MutualAuth, TamperedProofRejected) {
  Drbg kg(4);
  const SymmetricKey group = kg.generate_key();
  Drbg rng_a(6, "a"), rng_b(6, "b");
  AuthInitiator a(group, rng_a);
  AuthResponder b(group, rng_b);
  auto m2 = b.respond(a.challenge());
  m2.proof_b[0] ^= 0x01;
  AuthConfirm m3;
  EXPECT_FALSE(a.consume_response(m2, m3));
}

TEST(MutualAuth, TamperedConfirmRejected) {
  Drbg kg(5);
  const SymmetricKey group = kg.generate_key();
  Drbg rng_a(8, "a"), rng_b(8, "b");
  AuthInitiator a(group, rng_a);
  AuthResponder b(group, rng_b);
  const auto m2 = b.respond(a.challenge());
  AuthConfirm m3;
  EXPECT_TRUE(a.consume_response(m2, m3));
  m3.proof_a[5] ^= 0xFF;
  b.consume_confirm(m3);
  EXPECT_FALSE(b.peer_trusted());
}

TEST(MutualAuth, ProofNotReplayableAcrossHandshakes) {
  // A proof captured from one handshake fails under fresh challenges.
  Drbg kg(6);
  const SymmetricKey group = kg.generate_key();

  Drbg rng1(10, "x"), rng2(11, "y");
  AuthInitiator a1(group, rng1);
  AuthResponder b1(group, rng2);
  const auto captured = b1.respond(a1.challenge());

  Drbg rng3(12, "z"), rng4(13, "w");
  AuthInitiator a2(group, rng3);
  AuthConfirm m3;
  // Replay the captured (rB, proof) against a *new* challenge.
  EXPECT_FALSE(a2.consume_response(captured, m3));
}

TEST(MutualAuth, ProofBindsBothNoncesInOrder) {
  Drbg kg(7);
  const SymmetricKey k = kg.generate_key();
  AuthNonce ra{}, rb{};
  ra[0] = 1;
  rb[0] = 2;
  const AuthToken t = make_proof(k, ra, rb);
  EXPECT_TRUE(check_proof(k, ra, rb, t));
  EXPECT_FALSE(check_proof(k, rb, ra, t));  // order matters
  AuthNonce ra2 = ra;
  ra2[15] = 9;
  EXPECT_FALSE(check_proof(k, ra2, rb, t));
}

TEST(MutualAuth, ProofDiffersPerKeyAndNonces) {
  Drbg kg(8);
  const SymmetricKey k1 = kg.generate_key();
  const SymmetricKey k2 = kg.generate_key();
  AuthNonce ra{}, rb{};
  ra[3] = 7;
  rb[9] = 9;
  EXPECT_NE(make_proof(k1, ra, rb), make_proof(k2, ra, rb));
  AuthNonce rb2 = rb;
  rb2[0] = 1;
  EXPECT_NE(make_proof(k1, ra, rb), make_proof(k1, ra, rb2));
}

TEST(MutualAuth, ChallengesAreFreshPerInitiator) {
  Drbg kg(9);
  const SymmetricKey k = kg.generate_key();
  Drbg rng(20, "fresh");
  AuthInitiator a1(k, rng);
  AuthInitiator a2(k, rng);
  EXPECT_NE(a1.challenge().r_a, a2.challenge().r_a);
}

}  // namespace
}  // namespace raptee::crypto
