// Edge-case coverage for ChurnSpec::validate() and
// ExperimentConfig::validate(): malformed scenario input must be rejected
// with std::invalid_argument (RAPTEE_REQUIRE) before any simulation state
// is built, never half-run or wrap around in size_t arithmetic.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "metrics/experiment.hpp"

namespace raptee::metrics {
namespace {

ExperimentConfig valid_config() {
  ExperimentConfig config;
  config.n = 100;
  config.byzantine_fraction = 0.10;
  config.trusted_fraction = 0.10;
  config.brahms.l1 = 16;
  config.brahms.l2 = 16;
  config.rounds = 10;
  return config;
}

// --- ChurnSpec ---

TEST(ChurnSpecValidation, AcceptsDefaultsAndSteady) {
  EXPECT_NO_THROW(ChurnSpec::none().validate());
  EXPECT_NO_THROW(ChurnSpec::steady(0.02).validate());
  EXPECT_NO_THROW(ChurnSpec::steady(0.0).validate());   // zero rate is legal
  EXPECT_NO_THROW(ChurnSpec::steady(1.0).validate());   // so is "everyone"
}

TEST(ChurnSpecValidation, RejectsNegativeRate) {
  ChurnSpec spec = ChurnSpec::steady(-0.01);
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ChurnSpecValidation, RejectsRateAboveOne) {
  ChurnSpec spec = ChurnSpec::steady(1.5);
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ChurnSpecValidation, RejectsNonFiniteRate) {
  ChurnSpec spec = ChurnSpec::steady(std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.rate_per_round = std::numeric_limits<double>::infinity();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ChurnSpecValidation, RejectsWindowEndBeforeStart) {
  ChurnSpec spec = ChurnSpec::steady(0.02);
  spec.from = 30;
  spec.until = 10;  // until < from, and until != 0 ("run length") sentinel
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ChurnSpecValidation, UntilZeroMeansRunLength) {
  ChurnSpec spec = ChurnSpec::steady(0.02);
  spec.from = 30;
  spec.until = 0;
  EXPECT_NO_THROW(spec.validate());
}

TEST(ChurnSpecValidation, DisabledSpecSkipsChecks) {
  // A disabled spec is inert configuration: bad values must not trip runs
  // that never churn.
  ChurnSpec spec;
  spec.enabled = false;
  spec.rate_per_round = -5.0;
  spec.from = 9;
  spec.until = 3;
  EXPECT_NO_THROW(spec.validate());
}

// --- ExperimentConfig ---

TEST(ExperimentConfigValidation, AcceptsBaseline) {
  EXPECT_NO_THROW(valid_config().validate());
}

TEST(ExperimentConfigValidation, RejectsNegativeFractions) {
  ExperimentConfig config = valid_config();
  config.byzantine_fraction = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = valid_config();
  config.trusted_fraction = -0.2;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = valid_config();
  config.poisoned_extra_fraction = -0.01;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ExperimentConfigValidation, RejectsOverUnityFractions) {
  ExperimentConfig config = valid_config();
  config.byzantine_fraction = 1.0;  // f must stay strictly below 1
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = valid_config();
  config.byzantine_fraction = 1.3;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = valid_config();
  config.trusted_fraction = 1.2;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ExperimentConfigValidation, RejectsEmptyCorrectPopulation) {
  // f = 0.97 on n = 16 rounds to 16 Byzantine nodes: nobody left to
  // observe, and the honest count would wrap in size_t arithmetic.
  ExperimentConfig config = valid_config();
  config.n = 16;
  config.byzantine_fraction = 0.97;
  config.trusted_fraction = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ExperimentConfigValidation, RejectsRoundedCountOverflow) {
  // f + t <= 1 holds, but both fractions round half away from zero and the
  // rounded counts exceed n (9 * 0.5 -> 5 each, 10 > 9).
  ExperimentConfig config = valid_config();
  config.n = 9;
  config.brahms.l1 = 4;
  config.brahms.l2 = 4;
  config.byzantine_fraction = 0.5;
  config.trusted_fraction = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ExperimentConfigValidation, RejectsDegenerateSchedule) {
  ExperimentConfig config = valid_config();
  config.rounds = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = valid_config();
  config.stability_window = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ExperimentConfigValidation, RejectsBadFidelityKnobs) {
  ExperimentConfig config = valid_config();
  config.message_loss = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = valid_config();
  config.message_loss = 1.0;  // would drop every leg forever
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = valid_config();
  config.identification_threshold = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ExperimentConfigValidation, RejectsBadNestedSpecs) {
  ExperimentConfig config = valid_config();
  config.churn = ChurnSpec::steady(2.0);
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = valid_config();
  config.eviction.fixed_rate = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ExperimentConfigValidation, RunExperimentValidatesUpFront) {
  ExperimentConfig config = valid_config();
  config.byzantine_fraction = -0.5;
  EXPECT_THROW((void)run_experiment(config), std::invalid_argument);
}

}  // namespace
}  // namespace raptee::metrics
