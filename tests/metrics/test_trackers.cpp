#include "metrics/trackers.hpp"

#include <gtest/gtest.h>

#include "../sim/fake_node.hpp"
#include "sim/engine.hpp"

namespace raptee::metrics {
namespace {

using sim::testing::FakeNode;

// Layout: ids 0..3 honest, id 4 trusted, ids 8..9 Byzantine.
bool is_byz_id(NodeId id) { return id.value >= 8; }

struct TrackerWorld {
  explicit TrackerWorld(std::size_t n_correct = 5, std::size_t n_byz = 2)
      : engine({1}) {
    for (std::uint32_t i = 0; i < n_correct; ++i) {
      auto node = std::make_unique<FakeNode>(NodeId{i});
      fakes.push_back(node.get());
      engine.add_node(std::move(node),
                      i == 4 ? NodeKind::kTrusted : NodeKind::kHonest);
    }
    for (std::uint32_t i = 0; i < n_byz; ++i) {
      auto node = std::make_unique<FakeNode>(NodeId{8 + i});
      // Dense-id requirement: fill the gap with dead honest nodes if needed.
      while (engine.size() < 8 + i) {
        auto filler = std::make_unique<FakeNode>(
            NodeId{static_cast<std::uint32_t>(engine.size())});
        engine.add_node(std::move(filler), NodeKind::kHonest);
        engine.set_alive(NodeId{static_cast<std::uint32_t>(engine.size() - 1)}, false);
      }
      fakes.push_back(node.get());
      engine.add_node(std::move(node), NodeKind::kByzantine);
    }
  }

  FakeNode& node(std::uint32_t id) {
    for (auto* f : fakes) {
      if (f->id() == NodeId{id}) return *f;
    }
    throw std::runtime_error("no such fake");
  }

  sim::Engine engine;
  std::vector<FakeNode*> fakes;
};

TEST(PollutionTracker, ComputesAverageAndPerKindSeries) {
  TrackerWorld world;
  PollutionTracker tracker(is_byz_id, /*view_size=*/4);
  world.engine.add_listener(&tracker);
  // Honest nodes: 2/4 Byzantine; trusted node: 0/4.
  for (std::uint32_t i = 0; i < 4; ++i) {
    world.node(i).view_ = {NodeId{8}, NodeId{9}, NodeId{1}, NodeId{2}};
  }
  world.node(4).view_ = {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}};
  world.engine.step();

  ASSERT_EQ(tracker.pollution_series().size(), 1u);
  EXPECT_NEAR(tracker.pollution_series()[0], 0.4, 1e-9);  // (4*0.5 + 0)/5
  EXPECT_NEAR(tracker.honest_series()[0], 0.5, 1e-9);
  EXPECT_NEAR(tracker.trusted_series()[0], 0.0, 1e-9);
}

TEST(PollutionTracker, SteadyStateUsesTailWindow) {
  TrackerWorld world;
  PollutionTracker tracker(is_byz_id, 4);
  world.engine.add_listener(&tracker);
  // 3 rounds at 0% then 10 rounds at 50% pollution for everyone.
  for (int r = 0; r < 3; ++r) {
    for (std::uint32_t i = 0; i < 5; ++i) {
      world.node(i).view_ = {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}};
    }
    world.engine.step();
  }
  for (int r = 0; r < 10; ++r) {
    for (std::uint32_t i = 0; i < 5; ++i) {
      world.node(i).view_ = {NodeId{8}, NodeId{9}, NodeId{2}, NodeId{3}};
    }
    world.engine.step();
  }
  EXPECT_NEAR(tracker.steady_state_pollution(10), 0.5, 1e-9);
  EXPECT_NEAR(tracker.steady_state_honest(10), 0.5, 1e-9);
}

TEST(PollutionTracker, StabilityRequiresWarmupAndLowDeviation) {
  TrackerWorld world;
  PollutionTracker tracker(is_byz_id, 4, 0.10, /*smoothing_window=*/3);
  world.engine.add_listener(&tracker);
  // Identical views for every node: deviation 0 from the start, so
  // stability triggers as soon as the smoothing window fills AND the
  // plateau check has one full window of history (round 3 with window=3).
  for (int r = 0; r < 5; ++r) {
    for (std::uint32_t i = 0; i < 5; ++i) {
      world.node(i).view_ = {NodeId{8}, NodeId{1}, NodeId{2}, NodeId{3}};
    }
    world.engine.step();
  }
  ASSERT_TRUE(tracker.stability_round().has_value());
  EXPECT_EQ(*tracker.stability_round(), 3u);
}

TEST(PollutionTracker, PersistentOutlierPreventsStability) {
  TrackerWorld world;
  PollutionTracker tracker(is_byz_id, 4, 0.10, 3);
  world.engine.add_listener(&tracker);
  for (int r = 0; r < 8; ++r) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      world.node(i).view_ = {NodeId{8}, NodeId{9}, NodeId{2}, NodeId{3}};  // 50 %
    }
    world.node(4).view_ = {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}};    // 0 %
    world.engine.step();
  }
  EXPECT_FALSE(tracker.stability_round().has_value());
  EXPECT_GT(tracker.deviation_series().back(), 0.3);
}

TEST(PollutionTracker, EmptyViewsCountAsClean) {
  TrackerWorld world;
  PollutionTracker tracker(is_byz_id, 4);
  world.engine.add_listener(&tracker);
  world.engine.step();
  EXPECT_NEAR(tracker.pollution_series()[0], 0.0, 1e-12);
}

TEST(DiscoveryTracker, PrimeSeedsBootstrapKnowledge) {
  TrackerWorld world;
  std::vector<NodeId> correct{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}};
  DiscoveryTracker tracker(correct, 0.75);
  world.node(0).view_ = {NodeId{1}, NodeId{2}, NodeId{3}};  // knows 4/5 with self
  tracker.prime(world.engine);
  world.engine.add_listener(&tracker);
  world.engine.step();
  ASSERT_EQ(tracker.min_knowledge_series().size(), 1u);
  // Node 0 knows {0,1,2,3} = 0.8; others know only themselves = 0.2.
  EXPECT_NEAR(tracker.min_knowledge_series()[0], 0.2, 1e-9);
}

TEST(DiscoveryTracker, DiscoveryTriggersWhenAllCross75) {
  TrackerWorld world;
  std::vector<NodeId> correct{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}};
  DiscoveryTracker tracker(correct, 0.75);
  world.engine.add_listener(&tracker);

  // Round 0: everyone sees 2 others (+self = 3/5 = 0.6 < 0.75).
  for (std::uint32_t i = 0; i < 5; ++i) {
    world.node(i).view_ = {NodeId{(i + 1) % 5}, NodeId{(i + 2) % 5}};
  }
  world.engine.step();
  EXPECT_FALSE(tracker.discovery_round().has_value());

  // Round 1: one more distinct acquaintance (4/5 = 0.8 >= 0.75).
  for (std::uint32_t i = 0; i < 5; ++i) {
    world.node(i).view_ = {NodeId{(i + 3) % 5}};
  }
  world.engine.step();
  ASSERT_TRUE(tracker.discovery_round().has_value());
  EXPECT_EQ(*tracker.discovery_round(), 1u);
}

TEST(DiscoveryTracker, ByzantineIdsDoNotCount) {
  TrackerWorld world;
  std::vector<NodeId> correct{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}};
  DiscoveryTracker tracker(correct, 0.75);
  world.engine.add_listener(&tracker);
  for (std::uint32_t i = 0; i < 5; ++i) {
    world.node(i).view_ = {NodeId{8}, NodeId{9}};  // only Byzantine entries
  }
  world.engine.step();
  EXPECT_NEAR(tracker.min_knowledge_series()[0], 0.2, 1e-9);  // self only
}

TEST(DiscoveryTracker, KnowledgeIsMonotone) {
  TrackerWorld world;
  std::vector<NodeId> correct{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}};
  DiscoveryTracker tracker(correct, 0.75);
  world.engine.add_listener(&tracker);
  world.node(0).view_ = {NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}};
  world.engine.step();
  world.node(0).view_ = {};  // forgets its view; knowledge must persist
  world.engine.step();
  EXPECT_GE(tracker.min_knowledge_series()[1], tracker.min_knowledge_series()[0]);
}

}  // namespace
}  // namespace raptee::metrics
