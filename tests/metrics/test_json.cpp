// The dependency-free JSON writer: escaping, deterministic number
// formatting, object/array composition and the strict validator.
#include "metrics/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace raptee::metrics {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2\ttab"), "line1\\nline2\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape("\r\b\f"), "\\r\\b\\f");
}

TEST(JsonNumber, ShortestRoundTripForm) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.0), "1");
  EXPECT_EQ(json_number(0.1), "0.1");
  EXPECT_EQ(json_number(-2.5), "-2.5");
  // Shortest form that round-trips: 1/3 needs all 17 significant digits.
  EXPECT_EQ(std::stod(json_number(1.0 / 3.0)), 1.0 / 3.0);
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonObject, ComposesTypedFields) {
  const std::string doc = JsonObject()
                              .field("name", "raptee")
                              .field("n", std::uint64_t{600})
                              .field("f", 0.1)
                              .field("full", false)
                              .field("missing", std::optional<double>{})
                              .field("present", std::optional<double>{2.0})
                              .str();
  EXPECT_EQ(doc,
            R"({"name":"raptee","n":600,"f":0.1,"full":false,"missing":null,"present":2})");
  EXPECT_TRUE(json_valid(doc));
}

TEST(JsonObject, NestsRawFragments) {
  const std::string inner = JsonObject().field("x", 1).str();
  const std::string doc = JsonObject()
                              .field_raw("inner", inner)
                              .field_raw("list", JsonArray().item(1.0).item(2.0).str())
                              .str();
  EXPECT_EQ(doc, R"({"inner":{"x":1},"list":[1,2]})");
  EXPECT_TRUE(json_valid(doc));
}

TEST(JsonArray, EmptyAndSeries) {
  EXPECT_EQ(JsonArray().str(), "[]");
  EXPECT_EQ(json_series({0.5, 1.0, 0.25}), "[0.5,1,0.25]");
  EXPECT_TRUE(json_valid(json_series({})));
}

TEST(JsonValid, AcceptsWellFormedDocuments) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[]"));
  EXPECT_TRUE(json_valid("null"));
  EXPECT_TRUE(json_valid("-1.5e-3"));
  EXPECT_TRUE(json_valid(R"({"a":[1,2,{"b":"c\n"}],"d":null,"e":true})"));
  EXPECT_TRUE(json_valid("  { \"k\" : [ 1 , 2 ] }  "));
}

TEST(JsonValid, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{\"a\":}"));
  EXPECT_FALSE(json_valid("{\"a\":1,}"));
  EXPECT_FALSE(json_valid("[1 2]"));
  EXPECT_FALSE(json_valid("{'a':1}"));
  EXPECT_FALSE(json_valid("01"));
  EXPECT_FALSE(json_valid("1. "));
  EXPECT_FALSE(json_valid("\"unterminated"));
  EXPECT_FALSE(json_valid("{\"a\":1} trailing"));
  EXPECT_FALSE(json_valid("{\"bad\\q\":1}"));
}

}  // namespace
}  // namespace raptee::metrics
