#include "metrics/experiment.hpp"

#include <gtest/gtest.h>

#include "scenario/spec.hpp"

namespace raptee::metrics {
namespace {

// The metrics layer is exercised through configs materialized by the
// public builder — the same path every bench and test takes.
ExperimentConfig tiny_config() {
  return scenario::ScenarioSpec()
      .population(80)
      .adversary(0.10)
      .trusted(0.10)
      .view_size(16)
      .eviction(core::EvictionSpec::adaptive())
      .rounds(20)
      .seed(5)
      .config();
}

TEST(ExperimentConfig, CountsAreRounded) {
  ExperimentConfig config = tiny_config();
  EXPECT_EQ(config.byzantine_count(), 8u);
  EXPECT_EQ(config.trusted_count(), 8u);
  EXPECT_EQ(config.poisoned_count(), 0u);
  config.poisoned_extra_fraction = 0.05;
  EXPECT_EQ(config.poisoned_count(), 4u);
}

TEST(ExperimentConfig, ValidationCatchesBadInput) {
  ExperimentConfig config = tiny_config();
  config.n = 2;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = tiny_config();
  config.byzantine_fraction = 0.7;
  config.trusted_fraction = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = tiny_config();
  config.rounds = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = tiny_config();
  config.brahms.alpha = 0.5;  // sums to 1.1
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Experiment, ProducesSaneMetrics) {
  const auto result = run_experiment(tiny_config());
  EXPECT_GE(result.steady_pollution, 0.0);
  EXPECT_LE(result.steady_pollution, 1.0);
  EXPECT_EQ(result.pollution_series.size(), 20u);
  EXPECT_EQ(result.min_knowledge_series.size(), 20u);
  EXPECT_GT(result.pulls_completed, 0u);
  // Pollution reflects the attack: clearly above zero.
  EXPECT_GT(result.steady_pollution, 0.02);
}

TEST(Experiment, DeterministicForSameSeed) {
  const auto a = run_experiment(tiny_config());
  const auto b = run_experiment(tiny_config());
  EXPECT_EQ(a.steady_pollution, b.steady_pollution);
  EXPECT_EQ(a.pollution_series, b.pollution_series);
  EXPECT_EQ(a.swaps_completed, b.swaps_completed);
}

TEST(Experiment, SeedChangesOutcome) {
  auto config = tiny_config();
  const auto a = run_experiment(config);
  config.seed = 6;
  const auto b = run_experiment(config);
  EXPECT_NE(a.pollution_series, b.pollution_series);
}

TEST(Experiment, NoByzantineMeansNoPollution) {
  auto config = tiny_config();
  config.byzantine_fraction = 0.0;
  config.rounds = 120;  // discovery (75 % ever-in-view) takes dozens of rounds
  const auto result = run_experiment(config);
  EXPECT_DOUBLE_EQ(result.steady_pollution, 0.0);
  EXPECT_TRUE(result.discovery_round.has_value());
}

TEST(Experiment, TrustedNodesCleanerUnderFullEviction) {
  auto config = tiny_config();
  config.n = 150;
  config.trusted_fraction = 0.2;
  config.byzantine_fraction = 0.2;
  config.eviction = core::EvictionSpec::fixed(1.0);
  config.rounds = 40;
  const auto result = run_experiment(config);
  EXPECT_LT(result.steady_pollution_trusted, result.steady_pollution_honest);
}

TEST(Experiment, EnclaveCyclesChargedOnlyWithTrustedNodes) {
  auto config = tiny_config();
  const auto with_trusted = run_experiment(config);
  EXPECT_GT(with_trusted.enclave_cycles_total, 0u);

  config.trusted_fraction = 0.0;
  const auto without_trusted = run_experiment(config);
  EXPECT_EQ(without_trusted.enclave_cycles_total, 0u);
}

TEST(Experiment, IdentificationAttackAttaches) {
  auto config = tiny_config();
  config.run_identification = true;
  config.rounds = 15;
  const auto result = run_experiment(config);
  // The ledger collected something and produced a bounded score.
  EXPECT_GE(result.ident_best.f1, 0.0);
  EXPECT_LE(result.ident_best.f1, 1.0);
  EXPECT_LE(result.ident_final.precision, 1.0);
}

TEST(Experiment, PoisonedTrustedNodesExtendPopulation) {
  auto config = tiny_config();
  config.poisoned_extra_fraction = 0.1;
  const auto result = run_experiment(config);
  EXPECT_GE(result.steady_pollution, 0.0);  // smoke: runs with injection
}

TEST(RunRepeated, AggregatesAcrossSeeds) {
  auto config = tiny_config();
  const auto agg = run_repeated(config, 3, /*threads=*/2);
  EXPECT_EQ(agg.runs, 3u);
  EXPECT_EQ(agg.pollution.count(), 3u);
  EXPECT_GT(agg.pollution.mean(), 0.0);
  // Different seeds: some spread expected (not exactly equal runs).
  EXPECT_GT(agg.pollution.max(), agg.pollution.min());
}

TEST(RunBatch, PreservesOrderAndMatchesIndividualRuns) {
  auto c1 = tiny_config();
  auto c2 = tiny_config();
  c2.seed = 99;
  const auto batch = run_batch({c1, c2}, 2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].steady_pollution, run_experiment(c1).steady_pollution);
  EXPECT_EQ(batch[1].steady_pollution, run_experiment(c2).steady_pollution);
}

TEST(RunComparison, BaselineStripsTrustedMachinery) {
  auto config = tiny_config();
  config.rounds = 25;
  const auto cmp = run_comparison(config, /*reps=*/2, /*threads=*/2);
  EXPECT_EQ(cmp.raptee.runs, 2u);
  EXPECT_EQ(cmp.baseline.runs, 2u);
  // The baseline is plain Brahms: no eviction telemetry.
  EXPECT_DOUBLE_EQ(cmp.baseline.eviction_rate.mean(), 0.0);
  EXPECT_GT(cmp.raptee.eviction_rate.mean(), 0.0);
}

TEST(Experiment, WireRoundtripDoesNotChangeOutcome) {
  // The byte codecs are a pure transport: same seeds, same results.
  auto config = tiny_config();
  config.rounds = 10;
  const auto plain = run_experiment(config);
  config.wire_roundtrip = true;
  const auto wired = run_experiment(config);
  EXPECT_EQ(plain.pollution_series, wired.pollution_series);
  EXPECT_EQ(plain.swaps_completed, wired.swaps_completed);
}

TEST(Experiment, EncryptedLinksDoNotChangeOutcome) {
  auto config = tiny_config();
  config.n = 60;
  config.rounds = 6;
  const auto plain = run_experiment(config);
  config.encrypt_links = true;
  const auto sealed = run_experiment(config);
  EXPECT_EQ(plain.pollution_series, sealed.pollution_series);
}

TEST(Experiment, MessageLossDegradesGracefully) {
  auto config = tiny_config();
  config.message_loss = 0.3;
  const auto result = run_experiment(config);
  EXPECT_GE(result.steady_pollution, 0.0);
  EXPECT_LE(result.steady_pollution, 1.0);
  EXPECT_GT(result.pulls_completed, 0u);
}

}  // namespace
}  // namespace raptee::metrics
