// The tamper_rate scenario axis and the hardened exchange path: an on-path
// adversary flips bits on exchange legs; with encrypt_links every flip is
// rejected by the AEAD, without it the typed-leg validator drops what fails
// decoding — and nothing, ever, aborts the engine. Also covers the
// persistent link-session cache: derivations track active pairs (not
// exchanges), continue across rounds, and rekey on churn.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "fake_node.hpp"

namespace raptee::sim {
namespace {

using testing::FakeNode;

struct TamperFixture : public ::testing::Test {
  /// Ring of n FakeNodes, each pushing to and pulling from both neighbours.
  Engine make_ring(std::size_t n, EngineConfig config) {
    Engine engine(config);
    fakes.clear();
    for (std::size_t i = 0; i < n; ++i) {
      auto node = std::make_unique<FakeNode>(NodeId{static_cast<std::uint32_t>(i)});
      const auto next = NodeId{static_cast<std::uint32_t>((i + 1) % n)};
      const auto prev = NodeId{static_cast<std::uint32_t>((i + n - 1) % n)};
      node->pull_targets_ = {next, prev};
      node->view_ = {next, prev};
      node->offer_on_reply = true;
      node->answer_swaps = true;
      fakes.push_back(node.get());
      engine.add_node(std::move(node), NodeKind::kHonest);
    }
    return engine;
  }
  std::vector<FakeNode*> fakes;
};

TEST_F(TamperFixture, EncryptedLinksRejectEveryTamperedLeg) {
  EngineConfig config;
  config.seed = 21;
  config.encrypt_links = true;
  config.tamper_rate = 0.4;
  Engine engine = make_ring(10, config);
  for (Round r = 0; r < 12; ++r) engine.step();

  const Engine::Counters& c = engine.counters();
  EXPECT_GT(c.legs_tampered, 0u);
  // Encrypt-then-MAC over the whole frame: one flipped bit anywhere can
  // never authenticate, so every tampered leg is detected and dropped.
  EXPECT_EQ(c.legs_corrupted, c.legs_tampered);
  EXPECT_EQ(c.legs_dropped, c.legs_corrupted);  // no message_loss configured
  EXPECT_EQ(c.pulls_started, c.pulls_completed + c.pulls_timed_out);
  EXPECT_GT(c.pulls_completed, 0u);
  EXPECT_GT(c.pulls_timed_out, 0u);
}

TEST_F(TamperFixture, PlaintextTamperingIsOnlyPartiallyDetected) {
  EngineConfig config;
  config.seed = 22;
  config.wire_roundtrip = true;
  config.tamper_rate = 0.4;
  Engine engine = make_ring(10, config);
  for (Round r = 0; r < 12; ++r) engine.step();

  const Engine::Counters& c = engine.counters();
  EXPECT_GT(c.legs_tampered, 0u);
  // Without encryption only structural damage is caught: flips that land
  // in a payload field (a node id, a nonce byte) decode cleanly and reach
  // the protocol as silent corruption — the paper's §III-B argument for
  // mandatory link encryption, measurable here as corrupted < tampered.
  EXPECT_LT(c.legs_corrupted, c.legs_tampered);
  EXPECT_EQ(c.pulls_started, c.pulls_completed + c.pulls_timed_out);
}

TEST_F(TamperFixture, TamperRateAloneImpliesTheByteRoundTrip) {
  EngineConfig config;
  config.seed = 23;
  config.tamper_rate = 1.0;  // neither wire_roundtrip nor encrypt_links set
  Engine engine = make_ring(6, config);
  for (Round r = 0; r < 6; ++r) engine.step();
  EXPECT_GT(engine.counters().wire_bytes, 0u);
  EXPECT_GT(engine.counters().legs_tampered, 0u);
}

TEST_F(TamperFixture, ZeroTamperRateDrawsNothingAndCountsNothing) {
  for (const bool encrypted : {false, true}) {
    EngineConfig config;
    config.seed = 24;
    config.wire_roundtrip = true;
    config.encrypt_links = encrypted;
    config.message_loss = 0.3;
    Engine engine = make_ring(8, config);
    for (Round r = 0; r < 10; ++r) engine.step();
    EXPECT_EQ(engine.counters().legs_tampered, 0u);
    EXPECT_EQ(engine.counters().legs_corrupted, 0u);
  }
}

TEST_F(TamperFixture, TamperCountersReproduceBitForBit) {
  const auto run_once = [this]() {
    EngineConfig config;
    config.seed = 25;
    config.encrypt_links = true;
    config.tamper_rate = 0.25;
    config.message_loss = 0.1;
    Engine engine = make_ring(10, config);
    for (Round r = 0; r < 10; ++r) engine.step();
    return engine.counters();
  };
  const Engine::Counters a = run_once();
  const Engine::Counters b = run_once();
  EXPECT_EQ(a.legs_tampered, b.legs_tampered);
  EXPECT_EQ(a.legs_corrupted, b.legs_corrupted);
  EXPECT_EQ(a.legs_dropped, b.legs_dropped);
  EXPECT_EQ(a.pulls_completed, b.pulls_completed);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
}

TEST_F(TamperFixture, CorruptedBytesFuzzLoopNeverAbortsAndStaysCoherent) {
  // The end-to-end fuzz gate of the hardening satellite: sweep tamper
  // pressure across both fidelity modes, with loss and churn mixed in, and
  // assert engine-level accounting stays coherent under heavy corruption.
  // Run under ASan/UBSan by the CI sanitizer job.
  for (const double rate : {0.05, 0.5, 1.0}) {
    for (const bool encrypted : {false, true}) {
      EngineConfig config;
      config.seed = 26 + static_cast<std::uint64_t>(rate * 100);
      config.wire_roundtrip = true;
      config.encrypt_links = encrypted;
      config.tamper_rate = rate;
      config.message_loss = 0.1;
      Engine engine = make_ring(12, config);
      for (Round r = 0; r < 15; ++r) {
        if (r == 5) engine.set_alive(NodeId{3}, false);
        if (r == 9) engine.set_alive(NodeId{3}, true);
        engine.step();
      }
      const Engine::Counters& c = engine.counters();
      EXPECT_EQ(c.pulls_started, c.pulls_completed + c.pulls_timed_out)
          << "rate=" << rate << " encrypted=" << encrypted;
      EXPECT_GE(c.legs_dropped, c.legs_corrupted);
      EXPECT_GT(c.legs_tampered, 0u);
      if (encrypted) {
        EXPECT_EQ(c.legs_corrupted, c.legs_tampered);
      }
    }
  }
}

TEST_F(TamperFixture, LinkSessionsPersistAcrossRoundsAndRekeyOnChurn) {
  EngineConfig config;
  config.seed = 27;
  config.encrypt_links = true;
  Engine engine = make_ring(6, config);
  for (Round r = 0; r < 8; ++r) engine.step();
  // A 6-ring has 6 distinct neighbour pairs; with caching that is 6 link
  // establishments total, not 6 pairs × 2 directions × 8 rounds.
  EXPECT_EQ(engine.link_derivations(), 6u);
  EXPECT_EQ(engine.link_active_sessions(), 6u);

  // Churn: node 2's two sessions are invalidated and re-derived once it is
  // exchanged with again.
  engine.set_alive(NodeId{2}, false);
  engine.step();
  engine.set_alive(NodeId{2}, true);
  engine.step();
  EXPECT_EQ(engine.link_derivations(), 8u);
}

TEST_F(TamperFixture, PerExchangeBaselineDerivesEveryExchange) {
  EngineConfig config;
  config.seed = 28;
  config.encrypt_links = true;
  config.link_sessions = false;
  Engine engine = make_ring(6, config);
  for (Round r = 0; r < 8; ++r) engine.step();
  // 6 nodes × 2 pulls × 8 rounds = 96 exchanges, one derivation each.
  EXPECT_EQ(engine.link_derivations(), 96u);
  EXPECT_EQ(engine.link_active_sessions(), 0u);
}

TEST_F(TamperFixture, SessionCacheIsInvisibleToObservableResults) {
  // The acceptance bar of the refactor: cached and per-exchange sessions
  // produce bit-identical counters (ciphertext differs, outcomes do not).
  const auto run_once = [this](bool cached) {
    EngineConfig config;
    config.seed = 29;
    config.encrypt_links = true;
    config.link_sessions = cached;
    config.message_loss = 0.2;
    Engine engine = make_ring(10, config);
    for (Round r = 0; r < 10; ++r) engine.step();
    return engine.counters();
  };
  const Engine::Counters cached = run_once(true);
  const Engine::Counters baseline = run_once(false);
  EXPECT_EQ(cached.pulls_completed, baseline.pulls_completed);
  EXPECT_EQ(cached.swaps_completed, baseline.swaps_completed);
  EXPECT_EQ(cached.legs_dropped, baseline.legs_dropped);
  EXPECT_EQ(cached.wire_bytes, baseline.wire_bytes);
}

}  // namespace
}  // namespace raptee::sim
