#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "fake_node.hpp"

namespace raptee::sim {
namespace {

using testing::FakeNode;

struct EngineFixture : public ::testing::Test {
  Engine make_engine(std::size_t n, EngineConfig config = {}) {
    Engine engine(config);
    fakes.clear();
    for (std::size_t i = 0; i < n; ++i) {
      auto node = std::make_unique<FakeNode>(NodeId{static_cast<std::uint32_t>(i)});
      fakes.push_back(node.get());
      engine.add_node(std::move(node), NodeKind::kHonest);
    }
    return engine;
  }
  std::vector<FakeNode*> fakes;
};

TEST_F(EngineFixture, RejectsNonDenseIds) {
  Engine engine({});
  EXPECT_THROW(engine.add_node(std::make_unique<FakeNode>(NodeId{5}), NodeKind::kHonest),
               std::invalid_argument);
}

TEST_F(EngineFixture, RejectsNullNode) {
  Engine engine({});
  EXPECT_THROW(engine.add_node(nullptr, NodeKind::kHonest), std::invalid_argument);
}

TEST_F(EngineFixture, RoundLifecycleCallsEveryNode) {
  Engine engine = make_engine(4);
  engine.step();
  engine.step();
  for (auto* f : fakes) {
    EXPECT_EQ(f->begin_calls, 2);
    EXPECT_EQ(f->end_calls, 2);
    EXPECT_EQ(f->last_round, 1u);
  }
  EXPECT_EQ(engine.now(), 2u);
}

TEST_F(EngineFixture, PushesAreDelivered) {
  Engine engine = make_engine(3);
  fakes[0]->push_targets_ = {NodeId{1}, NodeId{2}, NodeId{1}};
  engine.step();
  EXPECT_EQ(fakes[1]->received_pushes.size(), 2u);
  EXPECT_EQ(fakes[2]->received_pushes.size(), 1u);
  EXPECT_EQ(fakes[1]->received_pushes[0], NodeId{0});
  EXPECT_EQ(engine.counters().pushes_sent, 3u);
  EXPECT_EQ(engine.counters().pushes_delivered, 3u);
}

TEST_F(EngineFixture, PushToDeadNodeVanishes) {
  Engine engine = make_engine(2);
  fakes[0]->push_targets_ = {NodeId{1}};
  engine.set_alive(NodeId{1}, false);
  engine.step();
  EXPECT_TRUE(fakes[1]->received_pushes.empty());
  EXPECT_EQ(engine.counters().pushes_delivered, 0u);
}

TEST_F(EngineFixture, PullExchangeFiveLegs) {
  Engine engine = make_engine(2);
  fakes[0]->pull_targets_ = {NodeId{1}};
  fakes[0]->offer_on_reply = true;
  fakes[1]->answer_swaps = true;
  fakes[0]->view_ = {NodeId{1}};
  fakes[1]->view_ = {NodeId{0}};
  engine.step();
  EXPECT_EQ(fakes[1]->pull_requests_answered, std::vector<NodeId>{NodeId{0}});
  EXPECT_EQ(fakes[0]->replies_received, std::vector<NodeId>{NodeId{1}});
  EXPECT_EQ(fakes[0]->last_reply_view, std::vector<NodeId>{NodeId{0}});
  EXPECT_EQ(fakes[1]->confirms_received, std::vector<NodeId>{NodeId{0}});
  EXPECT_EQ(fakes[0]->swap_replies, std::vector<NodeId>{NodeId{1}});
  EXPECT_EQ(engine.counters().pulls_completed, 1u);
  EXPECT_EQ(engine.counters().swaps_completed, 1u);
}

TEST_F(EngineFixture, PullWithoutOfferSkipsSwapLegs) {
  Engine engine = make_engine(2);
  fakes[0]->pull_targets_ = {NodeId{1}};
  engine.step();
  EXPECT_EQ(engine.counters().pulls_completed, 1u);
  EXPECT_EQ(engine.counters().swaps_completed, 0u);
  EXPECT_TRUE(fakes[0]->swap_replies.empty());
}

TEST_F(EngineFixture, PullToDeadPeerTimesOut) {
  Engine engine = make_engine(2);
  fakes[0]->pull_targets_ = {NodeId{1}};
  engine.set_alive(NodeId{1}, false);
  engine.step();
  EXPECT_EQ(fakes[0]->timeouts, std::vector<NodeId>{NodeId{1}});
  EXPECT_EQ(engine.counters().pulls_timed_out, 1u);
}

TEST_F(EngineFixture, SelfPullTimesOut) {
  Engine engine = make_engine(1);
  fakes[0]->pull_targets_ = {NodeId{0}};
  engine.step();
  EXPECT_EQ(fakes[0]->timeouts, std::vector<NodeId>{NodeId{0}});
}

TEST_F(EngineFixture, DeadNodesDoNotParticipate) {
  Engine engine = make_engine(2);
  fakes[1]->push_targets_ = {NodeId{0}};
  fakes[1]->pull_targets_ = {NodeId{0}};
  engine.set_alive(NodeId{1}, false);
  engine.step();
  EXPECT_EQ(fakes[1]->begin_calls, 0);
  EXPECT_TRUE(fakes[0]->received_pushes.empty());
  EXPECT_TRUE(fakes[0]->pull_requests_answered.empty());
}

TEST_F(EngineFixture, TotalMessageLossDropsEverything) {
  EngineConfig config;
  config.message_loss = 1.0;
  Engine engine = make_engine(2, config);
  fakes[0]->push_targets_ = {NodeId{1}};
  fakes[0]->pull_targets_ = {NodeId{1}};
  engine.step();
  EXPECT_TRUE(fakes[1]->received_pushes.empty());
  EXPECT_EQ(engine.counters().pulls_completed, 0u);
  EXPECT_EQ(fakes[0]->timeouts.size(), 1u);
  EXPECT_GT(engine.counters().legs_dropped, 0u);
}

TEST_F(EngineFixture, WireRoundtripPreservesPayloads) {
  EngineConfig config;
  config.wire_roundtrip = true;
  Engine engine = make_engine(2, config);
  fakes[0]->pull_targets_ = {NodeId{1}};
  fakes[1]->view_ = {NodeId{0}, NodeId{1}};
  engine.step();
  EXPECT_EQ(fakes[0]->last_reply_view, (std::vector<NodeId>{NodeId{0}, NodeId{1}}));
  EXPECT_GT(engine.counters().wire_bytes, 0u);
}

TEST_F(EngineFixture, EncryptedLinksPreservePayloads) {
  EngineConfig config;
  config.encrypt_links = true;
  Engine engine = make_engine(2, config);
  fakes[0]->pull_targets_ = {NodeId{1}};
  fakes[0]->offer_on_reply = true;
  fakes[1]->answer_swaps = true;
  fakes[0]->view_ = {NodeId{1}};
  fakes[1]->view_ = {NodeId{0}, NodeId{1}};
  engine.step();
  EXPECT_EQ(fakes[0]->last_reply_view, (std::vector<NodeId>{NodeId{0}, NodeId{1}}));
  EXPECT_EQ(engine.counters().swaps_completed, 1u);
}

TEST_F(EngineFixture, BootstrapUniformRespectsSizeAndExcludesSelf) {
  Engine engine = make_engine(10);
  engine.bootstrap_uniform(4);
  for (auto* f : fakes) {
    EXPECT_EQ(f->bootstraps, 1);
    EXPECT_EQ(f->view_.size(), 4u);
    for (NodeId peer : f->view_) EXPECT_NE(peer, f->id());
  }
}

TEST_F(EngineFixture, BootstrapUniformWithNobodyAliveIsANoOp) {
  Engine engine = make_engine(3);
  for (auto* f : fakes) engine.set_alive(f->id(), false);
  engine.bootstrap_uniform(4);  // must not underflow everyone.size() - 1
  for (auto* f : fakes) EXPECT_EQ(f->bootstraps, 0);
}

TEST_F(EngineFixture, BootstrapUniformSingletonGetsEmptyView) {
  Engine engine = make_engine(3);
  engine.set_alive(NodeId{1}, false);
  engine.set_alive(NodeId{2}, false);
  engine.bootstrap_uniform(4);
  EXPECT_EQ(fakes[0]->bootstraps, 1);
  EXPECT_TRUE(fakes[0]->view_.empty());
  EXPECT_EQ(fakes[1]->bootstraps, 0);
}

TEST_F(EngineFixture, BootstrapWithProviderControlsViews) {
  Engine engine = make_engine(3);
  engine.bootstrap_with([](NodeId id, NodeKind) {
    return std::vector<NodeId>{NodeId{(id.value + 1) % 3}};
  });
  EXPECT_EQ(fakes[0]->view_, std::vector<NodeId>{NodeId{1}});
  EXPECT_EQ(fakes[2]->view_, std::vector<NodeId>{NodeId{0}});
}

TEST_F(EngineFixture, AliveIdsFiltersByKindAndLiveness) {
  Engine engine({});
  engine.add_node(std::make_unique<FakeNode>(NodeId{0}), NodeKind::kHonest);
  engine.add_node(std::make_unique<FakeNode>(NodeId{1}), NodeKind::kByzantine);
  engine.add_node(std::make_unique<FakeNode>(NodeId{2}), NodeKind::kTrusted);
  engine.set_alive(NodeId{0}, false);
  const auto correct = engine.alive_ids([](NodeKind k) { return is_correct(k); });
  EXPECT_EQ(correct, std::vector<NodeId>{NodeId{2}});
  EXPECT_EQ(engine.alive_ids().size(), 2u);
}

struct RecordingListener : ITrafficListener {
  int pushes = 0, replies = 0, swaps = 0, rounds = 0;
  void on_push_delivered(Round, NodeId, NodeId, NodeId) override { ++pushes; }
  void on_pull_reply_delivered(Round, NodeId, NodeId, const std::vector<NodeId>&) override {
    ++replies;
  }
  void on_swap_completed(Round, NodeId, NodeId, const std::vector<NodeId>&,
                         const std::vector<NodeId>&) override {
    ++swaps;
  }
  void on_round_end(Round, Engine&) override { ++rounds; }
};

TEST_F(EngineFixture, ListenersObserveTraffic) {
  Engine engine = make_engine(2);
  RecordingListener listener;
  engine.add_listener(&listener);
  fakes[0]->push_targets_ = {NodeId{1}};
  fakes[0]->pull_targets_ = {NodeId{1}};
  fakes[0]->offer_on_reply = true;
  fakes[1]->answer_swaps = true;
  engine.step();
  EXPECT_EQ(listener.pushes, 1);
  EXPECT_EQ(listener.replies, 1);
  EXPECT_EQ(listener.swaps, 1);
  EXPECT_EQ(listener.rounds, 1);

  engine.remove_listener(&listener);
  engine.step();
  EXPECT_EQ(listener.rounds, 1);
}

// Witnesses for the mid-dispatch removal bug: remove_listener used to
// erase from the vector the dispatch loop was iterating, invalidating the
// iteration. Removal from inside a callback must be safe, take effect
// immediately (no further callbacks to the removed listener, not even
// later ones of the same dispatch), and leave other listeners untouched.

struct SelfRemovingListener : ITrafficListener {
  Engine* engine = nullptr;
  int pushes = 0, rounds = 0;
  void on_push_delivered(Round, NodeId, NodeId, NodeId) override {
    ++pushes;
    engine->remove_listener(this);
  }
  void on_round_end(Round, Engine&) override { ++rounds; }
};

TEST_F(EngineFixture, ListenerMayRemoveItselfFromInsideACallback) {
  Engine engine = make_engine(3);
  SelfRemovingListener remover;
  remover.engine = &engine;
  RecordingListener survivor;
  engine.add_listener(&remover);
  engine.add_listener(&survivor);
  fakes[0]->push_targets_ = {NodeId{1}, NodeId{2}, NodeId{1}};
  engine.step();
  // The remover saw exactly the callback it removed itself in; the
  // listener registered after it observed the whole round regardless.
  EXPECT_EQ(remover.pushes, 1);
  EXPECT_EQ(remover.rounds, 0);
  EXPECT_EQ(survivor.pushes, 3);
  EXPECT_EQ(survivor.rounds, 1);

  engine.step();
  EXPECT_EQ(remover.pushes, 1);
  EXPECT_EQ(survivor.rounds, 2);
}

struct PeerRemovingListener : ITrafficListener {
  Engine* engine = nullptr;
  ITrafficListener* peer = nullptr;
  void on_push_delivered(Round, NodeId, NodeId, NodeId) override {
    if (peer != nullptr) {
      engine->remove_listener(peer);
      peer = nullptr;
    }
  }
};

TEST_F(EngineFixture, ListenerMayRemoveAPeerFromInsideACallback) {
  Engine engine = make_engine(3);
  RecordingListener victim;
  PeerRemovingListener remover;
  remover.engine = &engine;
  remover.peer = &victim;
  // The remover dispatches first, so the victim must not see even the
  // callback that triggered its removal.
  engine.add_listener(&remover);
  engine.add_listener(&victim);
  fakes[0]->push_targets_ = {NodeId{1}, NodeId{2}};
  engine.step();
  EXPECT_EQ(victim.pushes, 0);
  EXPECT_EQ(victim.rounds, 0);
  engine.step();  // the compacted listener list stays consistent
  EXPECT_EQ(victim.pushes, 0);
}

TEST_F(EngineFixture, RunHonorsStopPredicate) {
  Engine engine = make_engine(1);
  engine.run(10, [](Round r) { return r >= 3; });
  EXPECT_EQ(engine.now(), 3u);
  engine.run(5);
  EXPECT_EQ(engine.now(), 8u);
}

TEST_F(EngineFixture, AlivenessProbeReflectsState) {
  Engine engine = make_engine(2);
  const auto probe = engine.aliveness_probe();
  EXPECT_TRUE(probe(NodeId{1}));
  engine.set_alive(NodeId{1}, false);
  EXPECT_FALSE(probe(NodeId{1}));
}

TEST_F(EngineFixture, DeterministicAcrossIdenticalRuns) {
  auto run_once = [this](std::uint64_t seed) {
    EngineConfig config;
    config.seed = seed;
    config.message_loss = 0.5;
    Engine engine = make_engine(4, config);
    for (auto* f : fakes) {
      f->push_targets_ = {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}};
    }
    engine.run(5);
    return engine.counters().pushes_delivered;
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11), run_once(12));  // overwhelmingly likely
}

}  // namespace
}  // namespace raptee::sim
