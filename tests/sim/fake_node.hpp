// Scripted INode used by engine/tracker tests: fixed view, configurable
// push/pull targets, records every callback.
#pragma once

#include <optional>
#include <vector>

#include "sim/node.hpp"

namespace raptee::sim::testing {

class FakeNode : public INode {
 public:
  explicit FakeNode(NodeId id) : id_(id) {}

  NodeId id() const override { return id_; }
  void bootstrap(const std::vector<NodeId>& peers) override {
    view_ = peers;
    ++bootstraps;
  }
  void begin_round(Round r) override {
    last_round = r;
    ++begin_calls;
    pushes_seen_this_round = 0;
  }
  std::vector<NodeId> push_targets() override { return push_targets_; }
  wire::PushMessage make_push() override { return wire::PushMessage{id_}; }
  void on_push(const wire::PushMessage& push) override {
    received_pushes.push_back(push.sender);
    ++pushes_seen_this_round;
  }
  std::vector<NodeId> pull_targets() override { return pull_targets_; }
  bool answers_pull(NodeId requester) override {
    pull_refusal_checks.push_back(requester);
    return !refuse_pulls;
  }
  wire::PullRequest open_pull(NodeId target) override {
    last_pull_target = target;
    return wire::PullRequest{id_, {}};
  }
  wire::PullReply answer_pull(const wire::PullRequest& request) override {
    pull_requests_answered.push_back(request.sender);
    return wire::PullReply{id_, {}, view_};
  }
  wire::AuthConfirm process_pull_reply(const wire::PullReply& reply) override {
    replies_received.push_back(reply.sender);
    last_reply_view = reply.view;
    wire::AuthConfirm confirm;
    confirm.sender = id_;
    if (offer_on_reply) confirm.swap_offer = view_;
    return confirm;
  }
  std::optional<wire::SwapReply> process_confirm(const wire::AuthConfirm& confirm) override {
    confirms_received.push_back(confirm.sender);
    if (confirm.swap_offer && answer_swaps) {
      return wire::SwapReply{id_, view_};
    }
    return std::nullopt;
  }
  void process_swap_reply(const wire::SwapReply& reply) override {
    swap_replies.push_back(reply.sender);
  }
  void on_pull_timeout(NodeId target) override { timeouts.push_back(target); }
  void end_round(Round) override { ++end_calls; }
  std::vector<NodeId> current_view() const override { return view_; }

  // Script knobs.
  std::vector<NodeId> view_;
  std::vector<NodeId> push_targets_;
  std::vector<NodeId> pull_targets_;
  bool offer_on_reply = false;
  bool answer_swaps = false;
  bool refuse_pulls = false;  ///< omission: refuse every incoming pull

  // Recorded activity.
  int bootstraps = 0;
  int begin_calls = 0;
  int end_calls = 0;
  Round last_round = 0;
  std::size_t pushes_seen_this_round = 0;
  std::vector<NodeId> received_pushes;
  std::vector<NodeId> pull_requests_answered;
  std::vector<NodeId> replies_received;
  std::vector<NodeId> last_reply_view;
  std::vector<NodeId> confirms_received;
  std::vector<NodeId> swap_replies;
  std::vector<NodeId> timeouts;
  std::vector<NodeId> pull_refusal_checks;
  NodeId last_pull_target;

 private:
  NodeId id_;
};

}  // namespace raptee::sim::testing
