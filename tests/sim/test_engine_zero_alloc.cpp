// Zero-allocation steady state of Engine::step (the ISSUE's "default
// scenario" gate): once the arena chunks, phase scratch vectors and the SoA
// view slab have warmed their capacity, a full round — begin_round, push
// fan-out, pull exchanges, end_round, listener dispatch — performs no heap
// allocation at all. Verified by counting every global operator new in this
// binary across a measured window, the same harness as
// wire_test_wire_zero_alloc.
//
// The gate covers the sequential path (EngineConfig::threads == 1, the
// default). The sharded path is exempt by design: exec::ThreadPool's
// parallel_for allocates its job state per call, and node-side protocol
// messages (PullReply views) allocate regardless of the engine. Nodes here
// are deliberately lean — fixed inline views, empty reply payloads — so the
// counter isolates the engine's own round machinery.
//
// The counting overrides forward to std::malloc/std::free, which keeps the
// sanitizer jobs honest: ASan still intercepts the underlying malloc, so
// leaks and overflows on this path stay visible.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "sim/engine.hpp"
#include "sim/node.hpp"
#include "sim/traffic.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  // aligned_alloc requires size to be a multiple of the alignment.
  const auto alignment = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded ? rounded : alignment)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace raptee::sim {
namespace {

constexpr std::size_t kPopulation = 16;
constexpr std::size_t kViewSize = 4;

/// Allocation-free INode: fixed inline ring view, deterministic push/pull
/// fan-out, empty exchange payloads. Every hot-path hook the engine uses —
/// the scratch-filling target forms and the slab copy — is overridden to
/// stay off the heap; the allocating base forms exist only to satisfy the
/// interface.
class LeanNode final : public INode {
 public:
  explicit LeanNode(NodeId id) : id_(id) {
    for (std::size_t i = 0; i < kViewSize; ++i) {
      view_[i] = NodeId{static_cast<std::uint32_t>((id.value + 1 + i) % kPopulation)};
    }
  }

  [[nodiscard]] NodeId id() const override { return id_; }
  void bootstrap(const std::vector<NodeId>&) override {}
  void begin_round(Round) override {}

  [[nodiscard]] std::vector<NodeId> push_targets() override {
    return {view_.begin(), view_.end()};
  }
  void push_targets(std::vector<NodeId>& out) override {
    out.clear();
    for (NodeId target : view_) out.push_back(target);
  }
  [[nodiscard]] wire::PushMessage make_push() override { return wire::PushMessage{id_}; }
  void on_push(const wire::PushMessage&) override {}

  [[nodiscard]] std::vector<NodeId> pull_targets() override { return {view_[0]}; }
  void pull_targets(std::vector<NodeId>& out) override {
    out.clear();
    out.push_back(view_[0]);
  }
  [[nodiscard]] wire::PullRequest open_pull(NodeId) override {
    return wire::PullRequest{id_, {}};
  }
  [[nodiscard]] wire::PullReply answer_pull(const wire::PullRequest&) override {
    return wire::PullReply{id_, {}, {}};
  }
  [[nodiscard]] wire::AuthConfirm process_pull_reply(const wire::PullReply&) override {
    wire::AuthConfirm confirm;
    confirm.sender = id_;
    return confirm;  // never trusted: no swap offer, exchange ends at leg 3
  }
  [[nodiscard]] std::optional<wire::SwapReply> process_confirm(
      const wire::AuthConfirm&) override {
    return std::nullopt;
  }
  void process_swap_reply(const wire::SwapReply&) override {}
  void end_round(Round) override {}

  [[nodiscard]] std::vector<NodeId> current_view() const override {
    return {view_.begin(), view_.end()};
  }
  [[nodiscard]] std::size_t view_capacity() const override { return kViewSize; }
  std::size_t copy_view(NodeId* out, std::size_t cap) const override {
    const std::size_t n = kViewSize < cap ? kViewSize : cap;
    for (std::size_t i = 0; i < n; ++i) out[i] = view_[i];
    return n;
  }

 private:
  NodeId id_;
  std::array<NodeId, kViewSize> view_;
};

/// Reads every view through the SoA slab each round — exercising
/// refresh_views + view_of inside the measured window — without touching
/// the heap.
class SlabScanListener final : public ITrafficListener {
 public:
  void on_round_end(Round, Engine& engine) override {
    for (std::uint32_t i = 0; i < engine.size(); ++i) {
      for (NodeId entry : engine.view_of(NodeId{i})) checksum += entry.value;
    }
  }
  std::uint64_t checksum = 0;
};

Engine make_engine() {
  Engine engine(EngineConfig{});  // threads == 1: the sequential default
  for (std::uint32_t i = 0; i < kPopulation; ++i) {
    engine.add_node(std::make_unique<LeanNode>(NodeId{i}), NodeKind::kHonest);
  }
  return engine;
}

TEST(EngineZeroAlloc, StepIsAllocationFreeInSteadyState) {
  Engine engine = make_engine();

  // Warm-up: grows the arena, the alive/target scratches and the message
  // codec buffers to their steady-state capacity.
  for (int i = 0; i < 3; ++i) engine.step();

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 50; ++i) engine.step();
  const std::uint64_t during = g_allocations.load() - before;

  EXPECT_EQ(during, 0u) << "steady-state Engine::step must not touch the heap";
  EXPECT_EQ(engine.counters().pushes_delivered,
            53u * kPopulation * kViewSize);  // the rounds really ran
}

TEST(EngineZeroAlloc, StepWithListenerAndViewSlabIsAllocationFree) {
  Engine engine = make_engine();
  SlabScanListener listener;
  engine.add_listener(&listener);

  // Warm-up additionally sizes the view slab (refresh_views only runs when
  // listeners are registered).
  for (int i = 0; i < 3; ++i) engine.step();

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 50; ++i) engine.step();
  const std::uint64_t during = g_allocations.load() - before;

  EXPECT_EQ(during, 0u)
      << "refresh_views + view_of listener reads must stay off the heap";
  EXPECT_GT(listener.checksum, 0u);
}

TEST(EngineZeroAlloc, CountersSeeOrdinaryAllocations) {
  // Sanity-check the instrument itself: a fresh vector growth must count.
  const std::uint64_t before = g_allocations.load();
  std::vector<std::uint8_t>* v = new std::vector<std::uint8_t>(1024);
  delete v;
  EXPECT_GT(g_allocations.load(), before);
}

}  // namespace
}  // namespace raptee::sim
