// Sharded round phases (EngineConfig::threads != 1): results must be a
// deterministic function of (seed, sharded-or-not) — the worker count must
// never change a byte — and since only the push-LOSS draws move onto
// per-node splittable streams, every lossless run coincides with the legacy
// sequential path exactly, width 1 included. The scenario-level matrix
// below asserts that bit-identity across the churn / attack / eviction /
// tamper axes, down to every metric stream and counter.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "fake_node.hpp"
#include "metrics/experiment.hpp"
#include "support/scenario.hpp"

namespace raptee::sim {
namespace {

using testing::FakeNode;

constexpr std::size_t kNodes = 24;
constexpr Round kRounds = 6;

struct ParallelEngineFixture : public ::testing::Test {
  Engine make_engine(EngineConfig config) {
    Engine engine(config);
    fakes.clear();
    for (std::size_t i = 0; i < kNodes; ++i) {
      auto node = std::make_unique<FakeNode>(NodeId{static_cast<std::uint32_t>(i)});
      // A skewed fan-out so shards carry unequal work.
      for (std::size_t k = 0; k <= i % 4; ++k) {
        node->push_targets_.push_back(
            NodeId{static_cast<std::uint32_t>((i + k + 1) % kNodes)});
      }
      fakes.push_back(node.get());
      engine.add_node(std::move(node), NodeKind::kHonest);
    }
    return engine;
  }

  /// Runs kRounds and returns every node's received-push log (the full
  /// observable outcome of the push phase, order included).
  std::vector<std::vector<NodeId>> run_and_collect(EngineConfig config) {
    Engine engine = make_engine(config);
    for (Round r = 0; r < kRounds; ++r) engine.step();
    last_counters = engine.counters();
    std::vector<std::vector<NodeId>> logs;
    logs.reserve(fakes.size());
    for (auto* f : fakes) logs.push_back(f->received_pushes);
    return logs;
  }

  std::vector<FakeNode*> fakes;
  Engine::Counters last_counters{};
};

TEST_F(ParallelEngineFixture, ShardedResultIsIndependentOfWorkerCount) {
  EngineConfig config;
  config.seed = 21;
  config.message_loss = 0.3;
  config.threads = 2;
  const auto two = run_and_collect(config);
  const Engine::Counters c2 = last_counters;
  config.threads = 5;
  const auto five = run_and_collect(config);
  const Engine::Counters c5 = last_counters;
  config.threads = 0;  // auto = hardware concurrency, still sharded
  const auto autos = run_and_collect(config);

  EXPECT_EQ(two, five);
  EXPECT_EQ(two, autos);
  EXPECT_EQ(c2.pushes_sent, c5.pushes_sent);
  EXPECT_EQ(c2.pushes_delivered, c5.pushes_delivered);
  EXPECT_EQ(c2.legs_dropped, c5.legs_dropped);
}

TEST_F(ParallelEngineFixture, ShardedWithoutLossMatchesLegacyExactly) {
  EngineConfig config;
  config.seed = 22;
  config.message_loss = 0.0;
  config.threads = 1;
  const auto legacy = run_and_collect(config);
  config.threads = 4;
  const auto sharded = run_and_collect(config);
  EXPECT_EQ(legacy, sharded);
}

TEST_F(ParallelEngineFixture, ShardedRunsAreReproducible) {
  EngineConfig config;
  config.seed = 23;
  config.message_loss = 0.4;
  config.threads = 3;
  const auto first = run_and_collect(config);
  const auto second = run_and_collect(config);
  EXPECT_EQ(first, second);
}

// --- full protocol stack, through the scenario front door ---

TEST(ParallelEngineScenario, FullRunIsWorkerCountIndependent) {
  const auto spec = test::Scenario()
                        .adversary(0.2)
                        .trusted_share(0.3)
                        .eviction_pct(40)
                        .message_loss(0.2)
                        .rounds(24)
                        .seed(24);
  const auto two = scenario::ScenarioSpec(spec).threads(2).run();
  const auto six = scenario::ScenarioSpec(spec).threads(6).run();
  EXPECT_TRUE(test::same_metric_streams(two, six));
  EXPECT_EQ(two.swaps_completed, six.swaps_completed);
  EXPECT_EQ(two.pulls_completed, six.pulls_completed);
}

TEST(ParallelEngineScenario, ShardedLosslessRunMatchesLegacy) {
  const auto spec = test::Scenario()
                        .adversary(0.2)
                        .trusted_share(0.3)
                        .rounds(24)
                        .seed(25);
  const auto legacy = scenario::ScenarioSpec(spec).threads(1).run();
  const auto sharded = scenario::ScenarioSpec(spec).threads(4).run();
  EXPECT_TRUE(test::same_metric_streams(legacy, sharded));
}

// Width matrix {1, 2, 4, hw} across the scenario axes the sharded phases
// touch: churn (rejoin bootstraps), a non-default attack strategy
// (Coordinator-driven Byzantine phases), fixed eviction (end_round), and
// on-path tampering (serial exchange legs under the byte round-trip).
// Lossless, so EVERY width — the sequential baseline included — must
// produce bit-identical metric streams.
TEST(ParallelEngineScenario, LosslessWidthMatrixIsBitIdenticalAcrossAxes) {
  struct Cell {
    const char* name;
    scenario::ScenarioSpec spec;
  };
  const Cell cells[] = {
      {"churn", test::Scenario().adversary(0.2).trusted_share(0.3).churn(true).rounds(
                    16).seed(31)},
      {"attack", test::Scenario()
                     .adversary(0.25)
                     .trusted_share(0.3)
                     .attack("eclipse")
                     .rounds(16)
                     .seed(32)},
      {"eviction", test::Scenario()
                       .adversary(0.2)
                       .trusted_share(0.4)
                       .eviction_pct(60)
                       .rounds(16)
                       .seed(33)},
      {"tamper", test::Scenario()
                     .adversary(0.2)
                     .trusted_share(0.3)
                     .tamper_rate(0.05)
                     .rounds(16)
                     .seed(34)},
  };
  for (const Cell& cell : cells) {
    const auto sequential = scenario::ScenarioSpec(cell.spec).threads(1).run();
    for (const std::size_t width : {std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
      const auto sharded = scenario::ScenarioSpec(cell.spec).threads(width).run();
      EXPECT_TRUE(test::same_metric_streams(sequential, sharded))
          << "axis " << cell.name << ", width " << width;
    }
  }
}

// With loss the sharded widths share the per-node loss streams (a different
// stream than sequential), so {2, 4, hw} must coincide with each other —
// here under churn + attack simultaneously, the heaviest shared-state mix.
TEST(ParallelEngineScenario, LossyShardedWidthsCoincideUnderChurnAndAttack) {
  const auto spec = test::Scenario()
                        .adversary(0.25)
                        .trusted_share(0.3)
                        .attack("oscillating")
                        .churn(true)
                        .message_loss(0.15)
                        .rounds(16)
                        .seed(35);
  const auto two = scenario::ScenarioSpec(spec).threads(2).run();
  const auto four = scenario::ScenarioSpec(spec).threads(4).run();
  const auto hw = scenario::ScenarioSpec(spec).threads(0).run();
  EXPECT_TRUE(test::same_metric_streams(two, four));
  EXPECT_TRUE(test::same_metric_streams(two, hw));
}

TEST(ParallelEngineScenario, EngineThreadsAreValidatedAndSerialized) {
  EXPECT_THROW((void)test::Scenario().threads(5000).run(), std::invalid_argument);
  const auto config = test::Scenario().threads(8).config();
  EXPECT_EQ(config.engine_threads, 8u);
}

}  // namespace
}  // namespace raptee::sim
