// Engine::Counters invariants under message_loss ∈ {0, 0.5, 1}: the leg
// accounting must balance (pushes split into delivered/dropped/vanished,
// pulls into completed/timed-out) and a fixed seed must reproduce every
// counter bit for bit.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "fake_node.hpp"

namespace raptee::sim {
namespace {

using testing::FakeNode;

constexpr std::size_t kNodes = 12;
constexpr Round kRounds = 8;

/// Engine of FakeNodes where every node pushes to and pulls from its two
/// ring neighbours each round — a fixed, loss-independent traffic matrix.
struct CountersFixture : public ::testing::Test {
  Engine make_engine(EngineConfig config) {
    Engine engine(config);
    fakes.clear();
    for (std::size_t i = 0; i < kNodes; ++i) {
      auto node = std::make_unique<FakeNode>(NodeId{static_cast<std::uint32_t>(i)});
      const auto next = NodeId{static_cast<std::uint32_t>((i + 1) % kNodes)};
      const auto prev = NodeId{static_cast<std::uint32_t>((i + kNodes - 1) % kNodes)};
      node->push_targets_ = {next, prev};
      node->pull_targets_ = {next, prev};
      fakes.push_back(node.get());
      engine.add_node(std::move(node), NodeKind::kHonest);
    }
    return engine;
  }

  static Engine::Counters run(Engine& engine) {
    for (Round r = 0; r < kRounds; ++r) engine.step();
    return engine.counters();
  }

  std::vector<FakeNode*> fakes;
};

TEST_F(CountersFixture, NoLossDeliversEverythingAndDropsNothing) {
  EngineConfig config;
  config.seed = 11;
  Engine engine = make_engine(config);
  const Engine::Counters c = run(engine);

  EXPECT_EQ(c.pushes_sent, kNodes * 2 * kRounds);
  EXPECT_EQ(c.pushes_delivered, c.pushes_sent);  // all targets alive
  EXPECT_EQ(c.legs_dropped, 0u);
  EXPECT_EQ(c.pulls_started, kNodes * 2 * kRounds);
  EXPECT_EQ(c.pulls_completed, c.pulls_started);
  EXPECT_EQ(c.pulls_timed_out, 0u);
}

TEST_F(CountersFixture, TotalLossDropsEveryLeg) {
  EngineConfig config;
  config.seed = 12;
  config.message_loss = 1.0;
  Engine engine = make_engine(config);
  const Engine::Counters c = run(engine);

  EXPECT_EQ(c.pushes_sent, kNodes * 2 * kRounds);
  EXPECT_EQ(c.pushes_delivered, 0u);
  EXPECT_EQ(c.pulls_started, kNodes * 2 * kRounds);
  EXPECT_EQ(c.pulls_completed, 0u);
  EXPECT_EQ(c.pulls_timed_out, c.pulls_started);  // leg 1 never survives
  // Every push leg and every pull's first leg is charged as dropped.
  EXPECT_EQ(c.legs_dropped, c.pushes_sent + c.pulls_started);
  for (auto* f : fakes) {
    EXPECT_TRUE(f->received_pushes.empty());
    EXPECT_EQ(f->timeouts.size(), 2 * kRounds);
  }
}

TEST_F(CountersFixture, HalfLossBalancesTheLegAccounting) {
  EngineConfig config;
  config.seed = 13;
  config.message_loss = 0.5;
  Engine engine = make_engine(config);
  const Engine::Counters c = run(engine);

  // Pushes: delivered + dropped == sent (no dead targets in this fixture).
  EXPECT_EQ(c.pushes_sent, kNodes * 2 * kRounds);
  EXPECT_LT(c.pushes_delivered, c.pushes_sent);
  EXPECT_GT(c.pushes_delivered, 0u);
  // Pulls: every started pull either completes or times out.
  EXPECT_EQ(c.pulls_started, c.pulls_completed + c.pulls_timed_out);
  EXPECT_GT(c.pulls_completed, 0u);
  EXPECT_GT(c.pulls_timed_out, 0u);
  // Dropped legs cover at least the missing pushes and the timed-out pulls.
  EXPECT_GE(c.legs_dropped, (c.pushes_sent - c.pushes_delivered) + c.pulls_timed_out);
}

TEST_F(CountersFixture, SameSeedReproducesEveryCounterBitForBit) {
  for (const double loss : {0.0, 0.5, 1.0}) {
    EngineConfig config;
    config.seed = 14;
    config.message_loss = loss;
    Engine first = make_engine(config);
    const Engine::Counters a = run(first);
    Engine second = make_engine(config);
    const Engine::Counters b = run(second);

    EXPECT_EQ(a.pushes_sent, b.pushes_sent) << "loss=" << loss;
    EXPECT_EQ(a.pushes_delivered, b.pushes_delivered) << "loss=" << loss;
    EXPECT_EQ(a.pulls_started, b.pulls_started) << "loss=" << loss;
    EXPECT_EQ(a.pulls_completed, b.pulls_completed) << "loss=" << loss;
    EXPECT_EQ(a.pulls_timed_out, b.pulls_timed_out) << "loss=" << loss;
    EXPECT_EQ(a.swaps_completed, b.swaps_completed) << "loss=" << loss;
    EXPECT_EQ(a.legs_dropped, b.legs_dropped) << "loss=" << loss;
    EXPECT_EQ(a.wire_bytes, b.wire_bytes) << "loss=" << loss;
  }
}

TEST_F(CountersFixture, RefusedPullsCountAsSuppressedNotDropped) {
  EngineConfig config;
  config.seed = 17;
  Engine engine = make_engine(config);
  // Three omission nodes: every pull aimed at them is refused after leg 1.
  fakes[0]->refuse_pulls = true;
  fakes[4]->refuse_pulls = true;
  fakes[8]->refuse_pulls = true;
  const Engine::Counters c = run(engine);

  // Each refusing node is pulled by its two ring neighbours every round.
  EXPECT_EQ(c.legs_suppressed, 3u * 2 * kRounds);
  EXPECT_EQ(c.pulls_timed_out, c.legs_suppressed);
  EXPECT_EQ(c.pulls_completed + c.pulls_timed_out, c.pulls_started);
  // Suppression is not loss: nothing was on the wire to drop.
  EXPECT_EQ(c.legs_dropped, 0u);
  EXPECT_EQ(c.legs_corrupted, 0u);

  // Initiators observed the refusals as pull timeouts.
  EXPECT_EQ(fakes[1]->timeouts.size(), kRounds);  // pulls node 0 once per round
  // The refusing node was consulted, not skipped.
  EXPECT_EQ(fakes[0]->pull_refusal_checks.size(), 2 * kRounds);
  EXPECT_TRUE(fakes[0]->pull_requests_answered.empty());
}

TEST_F(CountersFixture, DifferentSeedsShuffleTheLossPattern) {
  EngineConfig config;
  config.seed = 15;
  config.message_loss = 0.5;
  Engine first = make_engine(config);
  const Engine::Counters a = run(first);
  config.seed = 16;
  Engine second = make_engine(config);
  const Engine::Counters b = run(second);
  // Totals driven by the traffic matrix agree; the random loss draws don't
  // have to (and across this many legs, almost surely won't all collide).
  EXPECT_EQ(a.pushes_sent, b.pushes_sent);
  const auto profile = [](const Engine::Counters& c) {
    return std::tuple(c.pushes_delivered, c.pulls_completed, c.legs_dropped);
  };
  EXPECT_NE(profile(a), profile(b));
}

}  // namespace
}  // namespace raptee::sim
