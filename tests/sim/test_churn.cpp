#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include "fake_node.hpp"
#include "sim/engine.hpp"

namespace raptee::sim {
namespace {

using testing::FakeNode;

struct ChurnFixture : public ::testing::Test {
  Engine make_engine(std::size_t n) {
    Engine engine({});
    fakes.clear();
    for (std::size_t i = 0; i < n; ++i) {
      auto node = std::make_unique<FakeNode>(NodeId{static_cast<std::uint32_t>(i)});
      fakes.push_back(node.get());
      engine.add_node(std::move(node), NodeKind::kHonest);
    }
    return engine;
  }
  std::vector<FakeNode*> fakes;
};

TEST_F(ChurnFixture, LeaveEventKillsNode) {
  Engine engine = make_engine(3);
  ChurnSchedule schedule;
  schedule.add({1, ChurnEvent::Kind::kLeave, NodeId{2}});

  schedule.apply(engine, 2);  // round 0: nothing
  EXPECT_TRUE(engine.is_alive(NodeId{2}));
  engine.step();
  schedule.apply(engine, 2);  // round 1: leave fires
  EXPECT_FALSE(engine.is_alive(NodeId{2}));
}

TEST_F(ChurnFixture, RejoinRestoresAndBootstraps) {
  Engine engine = make_engine(4);
  ChurnSchedule schedule;
  schedule.add({0, ChurnEvent::Kind::kLeave, NodeId{1}});
  schedule.add({2, ChurnEvent::Kind::kRejoin, NodeId{1}});

  schedule.apply(engine, 2);
  EXPECT_FALSE(engine.is_alive(NodeId{1}));
  engine.step();
  engine.step();
  schedule.apply(engine, 2);
  EXPECT_TRUE(engine.is_alive(NodeId{1}));
  EXPECT_EQ(fakes[1]->bootstraps, 1);
  EXPECT_EQ(fakes[1]->view_.size(), 2u);
  for (NodeId peer : fakes[1]->view_) EXPECT_NE(peer, NodeId{1});
}

TEST_F(ChurnFixture, EventsFireInOrderAcrossRounds) {
  Engine engine = make_engine(5);
  ChurnSchedule schedule;
  for (std::uint32_t i = 0; i < 3; ++i) {
    schedule.add({i, ChurnEvent::Kind::kLeave, NodeId{i}});
  }
  for (Round r = 0; r < 3; ++r) {
    schedule.apply(engine, 2);
    engine.step();
  }
  EXPECT_FALSE(engine.is_alive(NodeId{0}));
  EXPECT_FALSE(engine.is_alive(NodeId{1}));
  EXPECT_FALSE(engine.is_alive(NodeId{2}));
  EXPECT_TRUE(engine.is_alive(NodeId{3}));
}

TEST(ChurnSchedule, RandomChurnBuildsBoundedUniqueLeaves) {
  Rng rng(5);
  std::vector<NodeId> population;
  for (std::uint32_t i = 0; i < 100; ++i) population.emplace_back(i);
  const auto schedule =
      ChurnSchedule::random_churn(population, 0, 10, 0.02, 5, /*rejoin=*/true, rng);

  std::size_t leaves = 0, rejoins = 0;
  std::vector<bool> left(100, false);
  for (const auto& event : schedule.events()) {
    if (event.kind == ChurnEvent::Kind::kLeave) {
      ++leaves;
      EXPECT_FALSE(left[event.node.value]) << "node left twice";
      left[event.node.value] = true;
      EXPECT_LT(event.at_round, 10u);
    } else {
      ++rejoins;
    }
  }
  EXPECT_EQ(leaves, 20u);  // 2 per round for 10 rounds
  EXPECT_EQ(rejoins, leaves);
}

TEST(ChurnSchedule, NoRejoinMode) {
  Rng rng(6);
  std::vector<NodeId> population;
  for (std::uint32_t i = 0; i < 50; ++i) population.emplace_back(i);
  const auto schedule =
      ChurnSchedule::random_churn(population, 2, 4, 0.1, 1, /*rejoin=*/false, rng);
  for (const auto& event : schedule.events()) {
    EXPECT_EQ(event.kind, ChurnEvent::Kind::kLeave);
    EXPECT_GE(event.at_round, 2u);
    EXPECT_LT(event.at_round, 4u);
  }
}

TEST(ChurnSchedule, EventsSortedByRound) {
  Rng rng(7);
  std::vector<NodeId> population;
  for (std::uint32_t i = 0; i < 60; ++i) population.emplace_back(i);
  const auto schedule =
      ChurnSchedule::random_churn(population, 0, 6, 0.05, 2, true, rng);
  Round previous = 0;
  for (const auto& event : schedule.events()) {
    EXPECT_GE(event.at_round, previous);
    previous = event.at_round;
  }
}

}  // namespace
}  // namespace raptee::sim
