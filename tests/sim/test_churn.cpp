#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include "fake_node.hpp"
#include "sim/engine.hpp"

namespace raptee::sim {
namespace {

using testing::FakeNode;

struct ChurnFixture : public ::testing::Test {
  Engine make_engine(std::size_t n) {
    Engine engine({});
    fakes.clear();
    for (std::size_t i = 0; i < n; ++i) {
      auto node = std::make_unique<FakeNode>(NodeId{static_cast<std::uint32_t>(i)});
      fakes.push_back(node.get());
      engine.add_node(std::move(node), NodeKind::kHonest);
    }
    return engine;
  }
  std::vector<FakeNode*> fakes;
};

TEST_F(ChurnFixture, LeaveEventKillsNode) {
  Engine engine = make_engine(3);
  ChurnSchedule schedule;
  schedule.add({1, ChurnEvent::Kind::kLeave, NodeId{2}});

  schedule.apply(engine, 2);  // round 0: nothing
  EXPECT_TRUE(engine.is_alive(NodeId{2}));
  engine.step();
  schedule.apply(engine, 2);  // round 1: leave fires
  EXPECT_FALSE(engine.is_alive(NodeId{2}));
}

TEST_F(ChurnFixture, RejoinRestoresAndBootstraps) {
  Engine engine = make_engine(4);
  ChurnSchedule schedule;
  schedule.add({0, ChurnEvent::Kind::kLeave, NodeId{1}});
  schedule.add({2, ChurnEvent::Kind::kRejoin, NodeId{1}});

  schedule.apply(engine, 2);
  EXPECT_FALSE(engine.is_alive(NodeId{1}));
  engine.step();
  engine.step();
  schedule.apply(engine, 2);
  EXPECT_TRUE(engine.is_alive(NodeId{1}));
  EXPECT_EQ(fakes[1]->bootstraps, 1);
  EXPECT_EQ(fakes[1]->view_.size(), 2u);
  for (NodeId peer : fakes[1]->view_) EXPECT_NE(peer, NodeId{1});
}

TEST_F(ChurnFixture, EventsFireInOrderAcrossRounds) {
  Engine engine = make_engine(5);
  ChurnSchedule schedule;
  for (std::uint32_t i = 0; i < 3; ++i) {
    schedule.add({i, ChurnEvent::Kind::kLeave, NodeId{i}});
  }
  for (Round r = 0; r < 3; ++r) {
    schedule.apply(engine, 2);
    engine.step();
  }
  EXPECT_FALSE(engine.is_alive(NodeId{0}));
  EXPECT_FALSE(engine.is_alive(NodeId{1}));
  EXPECT_FALSE(engine.is_alive(NodeId{2}));
  EXPECT_TRUE(engine.is_alive(NodeId{3}));
}

TEST(ChurnSchedule, RandomChurnBuildsBoundedUniqueLeaves) {
  Rng rng(5);
  std::vector<NodeId> population;
  for (std::uint32_t i = 0; i < 100; ++i) population.emplace_back(i);
  const auto schedule =
      ChurnSchedule::random_churn(population, 0, 10, 0.02, 5, /*rejoin=*/true, rng);

  std::size_t leaves = 0, rejoins = 0;
  std::vector<bool> left(100, false);
  for (const auto& event : schedule.events()) {
    if (event.kind == ChurnEvent::Kind::kLeave) {
      ++leaves;
      EXPECT_FALSE(left[event.node.value]) << "node left twice";
      left[event.node.value] = true;
      EXPECT_LT(event.at_round, 10u);
    } else {
      ++rejoins;
    }
  }
  EXPECT_EQ(leaves, 20u);  // 2 per round for 10 rounds
  EXPECT_EQ(rejoins, leaves);
}

TEST(ChurnSchedule, FractionalRatesAccumulateAcrossRounds) {
  // 0.0005 × 1000 nodes = half a node per round: the old truncation churned
  // nobody, silently. The accumulated quota must hit the expected total.
  Rng rng(8);
  std::vector<NodeId> population;
  for (std::uint32_t i = 0; i < 1000; ++i) population.emplace_back(i);
  const auto schedule = ChurnSchedule::random_churn(population, 0, 100, 0.0005, 5,
                                                    /*rejoin=*/false, rng);
  EXPECT_EQ(schedule.events().size(), 50u);  // 0.0005 * 1000 * 100
}

TEST(ChurnSchedule, SubUnitQuotaSpreadsLeavesAcrossRounds) {
  Rng rng(9);
  std::vector<NodeId> population;
  for (std::uint32_t i = 0; i < 16; ++i) population.emplace_back(i);
  // 0.03125 × 16 = exactly half a node per round over 6 rounds: 3 leaves,
  // one whenever the quota crosses an integer — never two in one round.
  const auto schedule = ChurnSchedule::random_churn(population, 0, 6, 0.03125, 1,
                                                    /*rejoin=*/false, rng);
  ASSERT_EQ(schedule.events().size(), 3u);
  Round previous_round = 0;
  for (const auto& event : schedule.events()) {
    if (&event != &schedule.events().front()) {
      EXPECT_GT(event.at_round, previous_round);
    }
    previous_round = event.at_round;
  }
}

TEST_F(ChurnFixture, MissedRejoinsAreAppliedLate) {
  Engine engine = make_engine(4);
  ChurnSchedule schedule;
  schedule.add({1, ChurnEvent::Kind::kLeave, NodeId{1}});
  schedule.add({3, ChurnEvent::Kind::kRejoin, NodeId{1}});

  engine.step();
  schedule.apply(engine, 2);  // round 1: leave fires on time
  EXPECT_FALSE(engine.is_alive(NodeId{1}));
  // The engine steps past round 3 without an apply (an experiment stepping
  // multiple rounds per schedule poll); the rejoin must still fire.
  for (int i = 0; i < 5; ++i) engine.step();
  schedule.apply(engine, 2);
  EXPECT_TRUE(engine.is_alive(NodeId{1}));
  EXPECT_EQ(fakes[1]->bootstraps, 1);
  EXPECT_EQ(fakes[1]->view_.size(), 2u);
}

TEST_F(ChurnFixture, OrphanedRejoinDoesNotResetAHealthyNode) {
  // Both the leave and its paired rejoin were missed: the leave is skipped
  // (node never went down), so the late rejoin must be a no-op too — not a
  // spurious fresh bootstrap wiping a healthy node's view.
  Engine engine = make_engine(4);
  fakes[1]->view_ = {NodeId{2}, NodeId{3}};
  ChurnSchedule schedule;
  schedule.add({1, ChurnEvent::Kind::kLeave, NodeId{1}});
  schedule.add({3, ChurnEvent::Kind::kRejoin, NodeId{1}});
  for (int i = 0; i < 5; ++i) engine.step();
  schedule.apply(engine, 2);
  EXPECT_TRUE(engine.is_alive(NodeId{1}));
  EXPECT_EQ(fakes[1]->bootstraps, 0);
  EXPECT_EQ(fakes[1]->view_, (std::vector<NodeId>{NodeId{2}, NodeId{3}}));
}

TEST_F(ChurnFixture, MissedLeavesAreStillSkipped) {
  Engine engine = make_engine(3);
  ChurnSchedule schedule;
  schedule.add({1, ChurnEvent::Kind::kLeave, NodeId{2}});
  for (int i = 0; i < 4; ++i) engine.step();
  schedule.apply(engine, 2);  // round 4: the leave window has passed
  EXPECT_TRUE(engine.is_alive(NodeId{2}));
}

TEST(ChurnSchedule, NoRejoinMode) {
  Rng rng(6);
  std::vector<NodeId> population;
  for (std::uint32_t i = 0; i < 50; ++i) population.emplace_back(i);
  const auto schedule =
      ChurnSchedule::random_churn(population, 2, 4, 0.1, 1, /*rejoin=*/false, rng);
  for (const auto& event : schedule.events()) {
    EXPECT_EQ(event.kind, ChurnEvent::Kind::kLeave);
    EXPECT_GE(event.at_round, 2u);
    EXPECT_LT(event.at_round, 4u);
  }
}

TEST(ChurnSchedule, EventsSortedByRound) {
  Rng rng(7);
  std::vector<NodeId> population;
  for (std::uint32_t i = 0; i < 60; ++i) population.emplace_back(i);
  const auto schedule =
      ChurnSchedule::random_churn(population, 0, 6, 0.05, 2, true, rng);
  Round previous = 0;
  for (const auto& event : schedule.events()) {
    EXPECT_GE(event.at_round, previous);
    previous = event.at_round;
  }
}

}  // namespace
}  // namespace raptee::sim
