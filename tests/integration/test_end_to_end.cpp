// End-to-end system properties: full populations under the engine, the
// paper's qualitative claims as assertions.
#include <gtest/gtest.h>

#include <algorithm>

#include "scenario/scenario.hpp"
#include "sim/churn.hpp"
#include "sim/engine.hpp"
#include "core/node_factory.hpp"

namespace raptee {
namespace {

scenario::ScenarioSpec base_spec() {
  return scenario::ScenarioSpec()
      .population(150)
      .adversary(0.15)
      .trusted(0.0)
      .view_size(20)
      .rounds(50)
      .seed(31);
}

TEST(EndToEnd, CleanSystemConvergesAndDiscovers) {
  const auto result = base_spec().adversary(0.0).rounds(150).run();
  EXPECT_DOUBLE_EQ(result.steady_pollution, 0.0);
  ASSERT_TRUE(result.discovery_round.has_value());
  EXPECT_LT(*result.discovery_round, 140u);
  // Knowledge grows monotonically.
  for (std::size_t i = 1; i < result.min_knowledge_series.size(); ++i) {
    EXPECT_GE(result.min_knowledge_series[i], result.min_knowledge_series[i - 1]);
  }
}

TEST(EndToEnd, BalancedAttackOverRepresentsByzantineIds) {
  // The defining Brahms threat: adversarial over-representation. With
  // f=15 % of nodes, well over 15 % of view slots become Byzantine.
  const auto result = base_spec().run();
  EXPECT_GT(result.steady_pollution, 0.15);
  EXPECT_LT(result.steady_pollution, 0.95);
}

TEST(EndToEnd, PollutionGrowsWithByzantineFraction) {
  const double p10 = base_spec().adversary(0.10).run().steady_pollution;
  const double p25 = base_spec().adversary(0.25).run().steady_pollution;
  EXPECT_GT(p25, p10);
}

TEST(EndToEnd, RapteeImprovesTrustedViewQuality) {
  const auto result = base_spec()
                          .trusted(0.15)
                          .eviction(core::EvictionSpec::adaptive())
                          .rounds(60)
                          .run();
  // The §IV-C defence: trusted views clearly cleaner than honest views.
  EXPECT_LT(result.steady_pollution_trusted, result.steady_pollution_honest * 0.95);
}

TEST(EndToEnd, RapteeReducesSystemPollutionAtHighTrustedShare) {
  const auto cmp = scenario::Runner(2).run_comparison(
      base_spec().rounds(60).trusted(0.3).eviction(core::EvictionSpec::adaptive()),
      /*reps=*/2);
  EXPECT_GT(cmp.resilience_improvement_pct, 0.0);
}

TEST(EndToEnd, AuthModesProduceIdenticalProtocolOutcome) {
  // D5: Full / Fingerprint / Oracle transports are behaviourally identical —
  // same seeds must give identical pollution series and swap counts.
  const auto spec = base_spec()
                        .population(80)
                        .trusted(0.2)
                        .rounds(15)
                        .eviction(core::EvictionSpec::adaptive());

  const auto fingerprint =
      scenario::ScenarioSpec(spec).auth_mode(brahms::AuthMode::kFingerprint).run();
  const auto full = scenario::ScenarioSpec(spec).auth_mode(brahms::AuthMode::kFull).run();
  const auto oracle =
      scenario::ScenarioSpec(spec).auth_mode(brahms::AuthMode::kOracle).run();

  EXPECT_EQ(full.swaps_completed, fingerprint.swaps_completed);
  EXPECT_EQ(oracle.swaps_completed, fingerprint.swaps_completed);
  EXPECT_EQ(full.pollution_series, fingerprint.pollution_series);
  EXPECT_EQ(oracle.pollution_series, fingerprint.pollution_series);
}

TEST(EndToEnd, ChurnRecoveryWithSamplerValidation) {
  // 20 % of honest nodes crash mid-run; sampler validation must flush the
  // departed ids out of the sample lists of survivors.
  core::NodeFactory factory(17, brahms::AuthMode::kFingerprint);
  sim::Engine engine({17});
  brahms::BrahmsConfig brahms_config;
  brahms_config.params.l1 = 16;
  brahms_config.params.l2 = 16;
  brahms_config.sampler_validation_period = 2;
  constexpr std::uint32_t kN = 60;
  std::vector<brahms::BrahmsNode*> nodes;
  for (std::uint32_t i = 0; i < kN; ++i) {
    auto node = factory.make_honest(NodeId{i}, brahms_config, engine.aliveness_probe());
    nodes.push_back(node.get());
    engine.add_node(std::move(node), NodeKind::kHonest);
  }
  engine.bootstrap_uniform(16);
  engine.run(10);
  // Crash nodes 0..11.
  for (std::uint32_t i = 0; i < 12; ++i) engine.set_alive(NodeId{i}, false);
  engine.run(25);
  // Survivors' sample lists contain no dead nodes.
  std::size_t dead_samples = 0;
  for (std::uint32_t i = 12; i < kN; ++i) {
    for (NodeId id : nodes[i]->sample_list()) {
      if (id.value < 12) ++dead_samples;
    }
  }
  EXPECT_EQ(dead_samples, 0u);
}

TEST(EndToEnd, ViewsRemainFullAndSelfFree) {
  // Use a direct engine world to inspect views.
  core::NodeFactory factory(23, brahms::AuthMode::kFingerprint);
  sim::Engine engine({23});
  brahms::BrahmsConfig brahms_config;
  brahms_config.params.l1 = 16;
  brahms_config.params.l2 = 16;
  core::RapteeConfig raptee_config;
  raptee_config.brahms = brahms_config;
  raptee_config.eviction = core::EvictionSpec::adaptive();
  for (std::uint32_t i = 0; i < 50; ++i) {
    if (i < 5) {
      engine.add_node(factory.make_trusted(NodeId{i}, raptee_config),
                      NodeKind::kTrusted);
    } else {
      engine.add_node(factory.make_honest(NodeId{i}, brahms_config), NodeKind::kHonest);
    }
  }
  engine.bootstrap_uniform(16);
  engine.run(30);
  for (std::uint32_t i = 0; i < 50; ++i) {
    const auto view = engine.node(NodeId{i}).current_view();
    EXPECT_EQ(view.size(), 16u) << "node " << i;
    EXPECT_EQ(std::count(view.begin(), view.end(), NodeId{i}), 0) << "node " << i;
    // No duplicates.
    auto sorted = view;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

}  // namespace
}  // namespace raptee
