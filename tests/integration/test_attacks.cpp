// Security-analysis integration tests (paper §VI): trusted-node
// identification and view-poisoned trusted-node injection. Scenarios are
// assembled through the public scenario API.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace raptee {
namespace {

scenario::ScenarioSpec attack_spec() {
  return scenario::ScenarioSpec()
      .population(150)
      .adversary(0.2)
      .trusted(0.2)
      .view_size(20)
      .rounds(40)
      .seed(77)
      .identification();
}

const scenario::Runner kRunner(2);

TEST(IdentificationAttackE2E, HigherEvictionIsMoreDetectable) {
  // §VI-A: detectability grows with the eviction rate — ER=100 % trusted
  // nodes serve conspicuously clean views; ER=0 % are indistinguishable.
  const auto er0 =
      kRunner.run_repeated(attack_spec().eviction(core::EvictionSpec::fixed(0.0)), 2);
  const auto er100 =
      kRunner.run_repeated(attack_spec().eviction(core::EvictionSpec::fixed(1.0)), 2);
  EXPECT_GT(er100.ident_best_f1.mean(), er0.ident_best_f1.mean());
}

TEST(IdentificationAttackE2E, ZeroEvictionIsNearlyInvisible) {
  const auto result =
      kRunner.run_repeated(attack_spec().eviction(core::EvictionSpec::fixed(0.0)), 2);
  // Without eviction, trusted views match honest views; the classifier has
  // nothing to latch onto.
  EXPECT_LT(result.ident_best_f1.mean(), 0.35);
}

TEST(IdentificationAttackE2E, ScoresAreWellFormed) {
  const auto result = attack_spec().eviction(core::EvictionSpec::adaptive()).run();
  EXPECT_GE(result.ident_best.precision, 0.0);
  EXPECT_LE(result.ident_best.precision, 1.0);
  EXPECT_GE(result.ident_best.recall, 0.0);
  EXPECT_LE(result.ident_best.recall, 1.0);
  EXPECT_GE(result.ident_best.f1,
            std::min(result.ident_final.f1, result.ident_best.f1));
}

/// The injection scenarios detach the identification attack: §VI-B studies
/// resilience, not detectability.
scenario::ScenarioSpec injection_spec() {
  return scenario::ScenarioSpec()
      .population(150)
      .adversary(0.2)
      .trusted(0.1)
      .view_size(20)
      .rounds(50)
      .seed(77)
      .eviction(core::EvictionSpec::adaptive());
}

TEST(InjectionAttackE2E, PoisonedTrustedNodesSelfHeal) {
  // §VI-B: poisoned trusted devices run honest code; their views start
  // 100 % Byzantine but must trend down toward the honest trusted level.
  const auto result = injection_spec().poisoned_extra(0.1).run();
  // Trusted series includes the poisoned half; early rounds are heavily
  // polluted, late rounds must be far cleaner.
  ASSERT_GE(result.pollution_series.size(), 50u);
  EXPECT_LT(result.steady_pollution_trusted, 0.6);
}

TEST(InjectionAttackE2E, SmallInjectionDoesNotCollapseResilience) {
  // §VI-B headline: a +5 % poisoned-trusted injection into a t=10 % system
  // has little or no impact on system-wide resilience.
  const auto clean = kRunner.run_repeated(injection_spec(), 2);
  const auto attacked = kRunner.run_repeated(injection_spec().poisoned_extra(0.05), 2);

  // Allow a modest degradation band; the attack must not blow pollution up.
  EXPECT_LT(attacked.pollution.mean(), clean.pollution.mean() * 1.25 + 0.02);
}

TEST(InjectionAttackE2E, PoisonedNodesStillCountAsTrustedSwapPartners) {
  // Poisoned devices hold the genuine group key, so swaps happen even in a
  // system whose only honest-trusted mass is small.
  const auto result = injection_spec()
                          .trusted(0.05)
                          .poisoned_extra(0.1)
                          .eviction(core::EvictionSpec::none())
                          .rounds(25)
                          .run();
  EXPECT_GT(result.swaps_completed, 0u);
}

/// The pluggable-attack scenarios (ScenarioSpec::attack) — every strategy
/// end-to-end through the public front door.
scenario::ScenarioSpec catalog_spec() {
  return scenario::ScenarioSpec()
      .population(150)
      .adversary(0.2)
      .trusted(0.2)
      .view_size(20)
      .rounds(40)
      .seed(77);
}

TEST(AttackCatalogE2E, EclipseVictimsSinkBelowThePopulation) {
  // §VI via BASALT's lens: a focused adversary hurts its victims far more
  // than the balanced attack hurts the average node.
  adversary::AttackSpec eclipse = adversary::AttackSpec::eclipse(0.1);
  eclipse.victim_kind = adversary::AttackSpec::VictimKind::kHonest;
  const auto result =
      catalog_spec().attack(eclipse).eviction(core::EvictionSpec::none()).run();
  ASSERT_TRUE(result.attack.engaged);
  ASSERT_GT(result.attack.victims, 0u);
  ASSERT_EQ(result.attack.victim_pollution_series.size(), 40u);
  EXPECT_GT(result.attack.steady_victim_pollution, result.steady_pollution);
}

TEST(AttackCatalogE2E, AdaptiveEvictionProtectsTrustedEclipseVictims) {
  adversary::AttackSpec eclipse = adversary::AttackSpec::eclipse(0.25);
  eclipse.victim_kind = adversary::AttackSpec::VictimKind::kTrusted;
  const auto undefended =
      catalog_spec().attack(eclipse).eviction(core::EvictionSpec::none()).run();
  const auto defended =
      catalog_spec().attack(eclipse).eviction(core::EvictionSpec::adaptive()).run();
  EXPECT_GT(undefended.attack.steady_victim_pollution,
            defended.attack.steady_victim_pollution);
}

TEST(AttackCatalogE2E, OmissionSuppressesLegsAndStarvesLiveness) {
  const auto balanced = catalog_spec().run();
  const auto omission = catalog_spec().attack("omission").run();
  EXPECT_EQ(balanced.attack.legs_suppressed, 0u);
  EXPECT_GT(omission.attack.legs_suppressed, 0u);
  // Refused answers burn initiator slots: fewer completed pulls than under
  // the balanced attack, and much cleaner views (the attacker contributes
  // no poison).
  EXPECT_LT(omission.pulls_completed, balanced.pulls_completed);
  EXPECT_LT(omission.steady_pollution, balanced.steady_pollution);
}

TEST(AttackCatalogE2E, OscillatingAttackerIsOnDutyPartTime) {
  const auto result = catalog_spec().attack(adversary::AttackSpec::oscillating(8, 8)).run();
  ASSERT_TRUE(result.attack.engaged);
  EXPECT_GT(result.attack.rounds_active, 0u);
  EXPECT_LT(result.attack.rounds_active, 40u);
  // Bursts still pollute, but less than the always-on balanced attack.
  const auto balanced = catalog_spec().run();
  EXPECT_GT(result.steady_pollution, 0.0);
  EXPECT_LT(result.steady_pollution, balanced.steady_pollution);
}

TEST(AttackCatalogE2E, BogusSwapOffersDoNotBreakTheSwapDefence) {
  // Byzantine confirms carrying forged swap offers must not create swaps
  // (the offerer cannot prove group membership) nor blow up pollution
  // relative to the plain balanced attack.
  const auto balanced = catalog_spec().run();
  const auto bogus = catalog_spec().attack("bogus_swap").run();
  EXPECT_TRUE(bogus.attack.engaged);
  EXPECT_LT(bogus.steady_pollution, balanced.steady_pollution * 1.25 + 0.02);
}

TEST(AttackCatalogE2E, EclipseSurvivesVictimChurn) {
  // Victims die mid-eclipse and rejoin later; the run must stay coherent
  // (victim series only covers rounds with an alive victim) and telemetry
  // engaged throughout.
  metrics::ChurnSpec churn = metrics::ChurnSpec::steady(0.05, /*downtime=*/5);
  churn.from = 10;
  churn.until = 20;
  const auto result = catalog_spec()
                          .attack(adversary::AttackSpec::eclipse(0.15))
                          .churn(churn)
                          .eviction(core::EvictionSpec::adaptive())
                          .run();
  ASSERT_TRUE(result.attack.engaged);
  EXPECT_GT(result.attack.victims, 0u);
  EXPECT_LE(result.attack.victim_pollution_series.size(), 40u);
  EXPECT_GE(result.attack.victim_pollution_series.size(), 30u);
  EXPECT_GT(result.attack.steady_victim_pollution, 0.0);
}

}  // namespace
}  // namespace raptee
