// Security-analysis integration tests (paper §VI): trusted-node
// identification and view-poisoned trusted-node injection.
#include <gtest/gtest.h>

#include "metrics/experiment.hpp"

namespace raptee {
namespace {

metrics::ExperimentConfig attack_config() {
  metrics::ExperimentConfig config;
  config.n = 150;
  config.byzantine_fraction = 0.2;
  config.trusted_fraction = 0.2;
  config.brahms.l1 = 20;
  config.brahms.l2 = 20;
  config.rounds = 40;
  config.seed = 77;
  config.run_identification = true;
  return config;
}

TEST(IdentificationAttackE2E, HigherEvictionIsMoreDetectable) {
  // §VI-A: detectability grows with the eviction rate — ER=100 % trusted
  // nodes serve conspicuously clean views; ER=0 % are indistinguishable.
  auto config = attack_config();
  config.eviction = core::EvictionSpec::fixed(0.0);
  const auto er0 = metrics::run_repeated(config, 2, 2);
  config.eviction = core::EvictionSpec::fixed(1.0);
  const auto er100 = metrics::run_repeated(config, 2, 2);
  EXPECT_GT(er100.ident_best_f1.mean(), er0.ident_best_f1.mean());
}

TEST(IdentificationAttackE2E, ZeroEvictionIsNearlyInvisible) {
  auto config = attack_config();
  config.eviction = core::EvictionSpec::fixed(0.0);
  const auto result = metrics::run_repeated(config, 2, 2);
  // Without eviction, trusted views match honest views; the classifier has
  // nothing to latch onto.
  EXPECT_LT(result.ident_best_f1.mean(), 0.35);
}

TEST(IdentificationAttackE2E, ScoresAreWellFormed) {
  auto config = attack_config();
  config.eviction = core::EvictionSpec::adaptive();
  const auto result = metrics::run_experiment(config);
  EXPECT_GE(result.ident_best.precision, 0.0);
  EXPECT_LE(result.ident_best.precision, 1.0);
  EXPECT_GE(result.ident_best.recall, 0.0);
  EXPECT_LE(result.ident_best.recall, 1.0);
  EXPECT_GE(result.ident_best.f1,
            std::min(result.ident_final.f1, result.ident_best.f1));
}

TEST(InjectionAttackE2E, PoisonedTrustedNodesSelfHeal) {
  // §VI-B: poisoned trusted devices run honest code; their views start
  // 100 % Byzantine but must trend down toward the honest trusted level.
  auto config = attack_config();
  config.run_identification = false;
  config.trusted_fraction = 0.1;
  config.poisoned_extra_fraction = 0.1;
  config.eviction = core::EvictionSpec::adaptive();
  config.rounds = 50;
  const auto result = metrics::run_experiment(config);
  // Trusted series includes the poisoned half; early rounds are heavily
  // polluted, late rounds must be far cleaner.
  const auto& trusted = result.pollution_series;  // all-correct average
  ASSERT_GE(trusted.size(), 50u);
  EXPECT_LT(result.steady_pollution_trusted, 0.6);
}

TEST(InjectionAttackE2E, SmallInjectionDoesNotCollapseResilience) {
  // §VI-B headline: a +5 % poisoned-trusted injection into a t=10 % system
  // has little or no impact on system-wide resilience.
  auto config = attack_config();
  config.run_identification = false;
  config.trusted_fraction = 0.1;
  config.eviction = core::EvictionSpec::adaptive();
  config.rounds = 50;

  const auto clean = metrics::run_repeated(config, 2, 2);
  config.poisoned_extra_fraction = 0.05;
  const auto attacked = metrics::run_repeated(config, 2, 2);

  // Allow a modest degradation band; the attack must not blow pollution up.
  EXPECT_LT(attacked.pollution.mean(), clean.pollution.mean() * 1.25 + 0.02);
}

TEST(InjectionAttackE2E, PoisonedNodesStillCountAsTrustedSwapPartners) {
  // Poisoned devices hold the genuine group key, so swaps happen even in a
  // system whose only honest-trusted mass is small.
  auto config = attack_config();
  config.run_identification = false;
  config.trusted_fraction = 0.05;
  config.poisoned_extra_fraction = 0.1;
  config.rounds = 25;
  const auto result = metrics::run_experiment(config);
  EXPECT_GT(result.swaps_completed, 0u);
}

}  // namespace
}  // namespace raptee
