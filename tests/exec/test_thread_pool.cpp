// exec::ThreadPool / parallel_map contract: every index runs exactly once,
// results land in order, nesting cannot deadlock, exceptions propagate, and
// the 1-thread pool is fully inline — the properties the deterministic
// scenario fan-out is built on.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"

namespace raptee::exec {
namespace {

TEST(ThreadPool, HardwareThreadsIsPositive) { EXPECT_GE(hardware_threads(), 1u); }

TEST(ThreadPool, ResolveThreadsFollowsTheKnobConvention) {
  EXPECT_EQ(resolve_threads(0, 100), hardware_threads() < 100 ? hardware_threads() : 100);
  EXPECT_EQ(resolve_threads(1, 100), 1u);
  EXPECT_EQ(resolve_threads(8, 3), 3u);   // never wider than the work
  EXPECT_EQ(resolve_threads(8, 0), 8u);   // 0 items = unknown, keep the request
  EXPECT_EQ(resolve_threads(1, 0), 1u);
}

TEST(ThreadPool, SizeCountsTheParticipatingCaller) {
  EXPECT_EQ(ThreadPool(1).size(), 1u);
  EXPECT_EQ(ThreadPool(4).size(), 4u);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, ParallelForHonorsExplicitGrain) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 97;  // prime: exercises the ragged tail chunk
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&hits](std::size_t i) { hits[i].fetch_add(1); }, 10);
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, static_cast<int>(kN));
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&calls](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, OneThreadPoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(64);
  pool.parallel_for(seen.size(),
                    [&seen](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ParallelMapPreservesOrder) {
  ThreadPool pool(4);
  const auto out = parallel_map(pool, 500, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 500u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ParallelMapConvenienceOverloadMatchesPoolForm) {
  const auto direct = parallel_map(4, 64, [](std::size_t i) { return 3 * i + 1; });
  ThreadPool pool(4);
  const auto pooled = parallel_map(pool, 64, [](std::size_t i) { return 3 * i + 1; });
  EXPECT_EQ(direct, pooled);
}

TEST(ThreadPool, NestedParallelForCompletesWithoutDeadlock) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(16, [&total](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, FirstExceptionPropagatesAfterTheLoopDrains) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  // grain 1: every index is its own chunk, so the throw cancels nothing
  // else — an exception only skips the remainder of its own chunk.
  EXPECT_THROW(
      pool.parallel_for(
          100,
          [&completed](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
            completed.fetch_add(1);
          },
          1),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 99);  // every other index still ran
}

TEST(ThreadPool, ManyLoopsReuseTheSamePool) {
  ThreadPool pool(4);
  std::size_t grand_total = 0;
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(64, [&sum](std::size_t i) { sum.fetch_add(i); });
    grand_total += sum.load();
  }
  EXPECT_EQ(grand_total, 50u * (63u * 64u / 2u));
}

TEST(ThreadPool, WidePoolOnSmallRangeStillCoversEverything) {
  ThreadPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace raptee::exec
