#include "sgx/overhead.hpp"

#include <gtest/gtest.h>

#include <string>

namespace raptee::sgx {
namespace {

TEST(CycleModel, PaperTable1Values) {
  const CycleModel m = CycleModel::paper_table1();
  const auto& pull = m.entry(FunctionClass::kPullRequest);
  EXPECT_DOUBLE_EQ(pull.standard_cycles, 15623.0);
  EXPECT_DOUBLE_EQ(pull.sgx_cycles, 18593.0);
  EXPECT_DOUBLE_EQ(pull.mean_overhead(), 2970.0);

  EXPECT_DOUBLE_EQ(m.entry(FunctionClass::kPushMessage).mean_overhead(), 1661.0);
  EXPECT_DOUBLE_EQ(m.entry(FunctionClass::kTrustedComms).mean_overhead(), 1671.0);
  EXPECT_DOUBLE_EQ(m.entry(FunctionClass::kSampleListComputation).mean_overhead(),
                   2340.0);
  EXPECT_DOUBLE_EQ(m.entry(FunctionClass::kDynamicViewComputation).mean_overhead(),
                   2619.0);
}

TEST(CycleModel, DefaultModelIsFree) {
  const CycleModel m;
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(m.sample_overhead(FunctionClass::kPullRequest, rng), 0u);
  }
}

TEST(CycleModel, SampledOverheadTracksMeanAndSigma) {
  const CycleModel m = CycleModel::paper_table1();
  Rng rng(2);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(m.sample_overhead(FunctionClass::kPullRequest, rng));
  }
  EXPECT_NEAR(sum / kDraws, 2970.0, 2970.0 * 0.01);
}

TEST(CycleModel, SampleNeverNegative) {
  CycleModel m;
  m.set(FunctionClass::kOther, {100.0, 110.0, 5.0});  // huge sigma
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const Cycles c = m.sample_overhead(FunctionClass::kOther, rng);
    EXPECT_GE(c, 0u);  // Cycles is unsigned; also checks no wrap-around
    EXPECT_LT(c, 1000u);
  }
}

TEST(CycleLedger, ChargesAccumulate) {
  CycleLedger ledger;
  ledger.charge(FunctionClass::kPushMessage, 100);
  ledger.charge(FunctionClass::kPushMessage, 50);
  ledger.charge(FunctionClass::kAttestation, 7);
  EXPECT_EQ(ledger.cycles(FunctionClass::kPushMessage), 150u);
  EXPECT_EQ(ledger.calls(FunctionClass::kPushMessage), 2u);
  EXPECT_EQ(ledger.total_cycles(), 157u);
  ledger.reset();
  EXPECT_EQ(ledger.total_cycles(), 0u);
  EXPECT_EQ(ledger.calls(FunctionClass::kPushMessage), 0u);
}

TEST(FunctionClass, NamesMatchTable1Rows) {
  EXPECT_EQ(std::string(to_string(FunctionClass::kPullRequest)), "Pull request");
  EXPECT_EQ(std::string(to_string(FunctionClass::kPushMessage)), "Push message");
  EXPECT_EQ(std::string(to_string(FunctionClass::kTrustedComms)),
            "Trusted communications");
  EXPECT_EQ(std::string(to_string(FunctionClass::kSampleListComputation)),
            "Sample list comput.");
  EXPECT_EQ(std::string(to_string(FunctionClass::kDynamicViewComputation)),
            "Dynamic view comput.");
}

TEST(CycleCounter, MonotonicNonDecreasing) {
  const Cycles a = read_cycle_counter();
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 1000; ++i) sink = sink + static_cast<std::uint64_t>(i);
  const Cycles b = read_cycle_counter();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace raptee::sgx
