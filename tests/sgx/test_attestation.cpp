#include "sgx/attestation.hpp"

#include <gtest/gtest.h>

namespace raptee::sgx {
namespace {

TEST(Attestation, GenuineEnclaveProvisions) {
  AttestationService service(1);
  service.allowlist(measure_code(raptee_enclave_identity()));
  Enclave enclave(raptee_enclave_identity(), 7);
  EXPECT_TRUE(service.provision(enclave));
  EXPECT_TRUE(enclave.has_group_key());
  EXPECT_EQ(service.provisioned_count(), 1u);
}

TEST(Attestation, UnknownMeasurementRefused) {
  AttestationService service(1);
  service.allowlist(measure_code(raptee_enclave_identity()));
  Enclave rogue("rogue-code", 7);
  EXPECT_FALSE(service.provision(rogue));
  EXPECT_FALSE(rogue.has_group_key());
  EXPECT_EQ(service.provisioned_count(), 0u);
}

TEST(Attestation, EmptyAllowlistRefusesEveryone) {
  AttestationService service(1);
  Enclave enclave(raptee_enclave_identity(), 7);
  EXPECT_FALSE(service.provision(enclave));
}

TEST(Attestation, QuoteVerification) {
  AttestationService service(2);
  service.allowlist(measure_code(raptee_enclave_identity()));
  Enclave enclave(raptee_enclave_identity(), 9);
  Quote quote = service.issue_quote(enclave);
  EXPECT_TRUE(service.verify_quote(quote));

  // Forged measurement: signature no longer matches.
  Quote forged = quote;
  forged.measurement = measure_code("evil");
  EXPECT_FALSE(service.verify_quote(forged));

  // Tampered report data.
  Quote tampered = quote;
  tampered.report_data[0] ^= 1;
  EXPECT_FALSE(service.verify_quote(tampered));

  // Tampered signature.
  Quote badsig = quote;
  badsig.signature[0] ^= 1;
  EXPECT_FALSE(service.verify_quote(badsig));
}

TEST(Attestation, QuotesFromOtherServicesRejected) {
  AttestationService s1(3), s2(4);
  const auto m = measure_code(raptee_enclave_identity());
  s1.allowlist(m);
  s2.allowlist(m);
  Enclave enclave(raptee_enclave_identity(), 5);
  const Quote quote = s2.issue_quote(enclave);
  EXPECT_FALSE(s1.verify_quote(quote));  // different quoting keys
}

TEST(Attestation, AllProvisionedEnclavesShareTheGroupKey) {
  AttestationService service(5);
  service.allowlist(measure_code(raptee_enclave_identity()));
  Enclave e1(raptee_enclave_identity(), 1);
  Enclave e2(raptee_enclave_identity(), 2);
  Enclave e3(raptee_enclave_identity(), 3);
  ASSERT_TRUE(service.provision(e1));
  ASSERT_TRUE(service.provision(e2));
  ASSERT_TRUE(service.provision(e3));
  EXPECT_EQ(e1.group_fingerprint(), e2.group_fingerprint());
  EXPECT_EQ(e2.group_fingerprint(), e3.group_fingerprint());
}

TEST(Attestation, DifferentServicesIssueDifferentGroupKeys) {
  AttestationService s1(6), s2(7);
  const auto m = measure_code(raptee_enclave_identity());
  s1.allowlist(m);
  s2.allowlist(m);
  Enclave e1(raptee_enclave_identity(), 1);
  Enclave e2(raptee_enclave_identity(), 2);
  ASSERT_TRUE(s1.provision(e1));
  ASSERT_TRUE(s2.provision(e2));
  EXPECT_NE(e1.group_fingerprint(), e2.group_fingerprint());
}

TEST(Attestation, AllowlistIsIdempotent) {
  AttestationService service(8);
  const auto m = measure_code("x");
  service.allowlist(m);
  service.allowlist(m);
  EXPECT_TRUE(service.is_allowlisted(m));
  EXPECT_FALSE(service.is_allowlisted(measure_code("y")));
}

TEST(Attestation, AdversaryWithGenuineHardwareGetsHonestEnclave) {
  // The §VI-B premise: the adversary CAN run the genuine enclave (and so
  // obtains the group key) but CANNOT run modified code under the genuine
  // measurement — trust in the enclave's behaviour comes from measurement,
  // not from who owns the device.
  AttestationService service(9);
  service.allowlist(measure_code(raptee_enclave_identity()));
  Enclave adversary_device(raptee_enclave_identity(), 666);
  EXPECT_TRUE(service.provision(adversary_device));
  EXPECT_TRUE(adversary_device.has_group_key());
}

}  // namespace
}  // namespace raptee::sgx
