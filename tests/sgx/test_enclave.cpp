#include "sgx/enclave.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/assert.hpp"
#include "sgx/attestation.hpp"

namespace raptee::sgx {
namespace {

/// A provisioned enclave backed by a throwaway attestation service.
struct Provisioned {
  AttestationService service{777};
  Enclave enclave;

  explicit Provisioned(std::uint64_t seed = 1,
                       const CycleModel* model = nullptr)
      : enclave(raptee_enclave_identity(), seed, model) {
    service.allowlist(measure_code(raptee_enclave_identity()));
    RAPTEE_ASSERT(service.provision(enclave));
  }
};

TEST(Enclave, MeasurementIsCodeBound) {
  Enclave a("code-v1", 1);
  Enclave b("code-v1", 2);
  Enclave c("code-v2", 1);
  EXPECT_EQ(a.measurement(), b.measurement());
  EXPECT_FALSE(a.measurement() == c.measurement());
  EXPECT_EQ(a.measurement(), measure_code("code-v1"));
}

TEST(Enclave, OperationsRequireProvisioning) {
  Enclave e(raptee_enclave_identity(), 1);
  EXPECT_FALSE(e.has_group_key());
  crypto::AuthNonce n{};
  EXPECT_THROW((void)e.auth_make_proof(n, n), AssertionError);
  EXPECT_THROW((void)e.auth_check_proof(n, n, {}), AssertionError);
  EXPECT_THROW((void)e.group_fingerprint(), AssertionError);
  EXPECT_THROW((void)e.filter_pulled({}, 0.5), AssertionError);
  EXPECT_THROW((void)e.select_swap_half({}), AssertionError);
  EXPECT_FALSE(e.seal_group_key().has_value());
}

TEST(Enclave, ProvisionedProofsVerifyAcrossEnclaves) {
  AttestationService service(9);
  service.allowlist(measure_code(raptee_enclave_identity()));
  Enclave e1(raptee_enclave_identity(), 1);
  Enclave e2(raptee_enclave_identity(), 2);
  ASSERT_TRUE(service.provision(e1));
  ASSERT_TRUE(service.provision(e2));

  crypto::AuthNonce a{}, b{};
  a.fill(1);
  b.fill(2);
  const auto proof = e1.auth_make_proof(a, b);
  EXPECT_TRUE(e2.auth_check_proof(a, b, proof));
  EXPECT_FALSE(e2.auth_check_proof(b, a, proof));
  EXPECT_EQ(e1.group_fingerprint(), e2.group_fingerprint());
}

TEST(Enclave, FilterPulledRates) {
  Provisioned p;
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < 100; ++i) ids.emplace_back(i);

  EXPECT_EQ(p.enclave.filter_pulled(ids, 0.0).size(), 100u);
  EXPECT_TRUE(p.enclave.filter_pulled(ids, 1.0).empty());
  EXPECT_EQ(p.enclave.filter_pulled(ids, 0.4).size(), 60u);
  EXPECT_EQ(p.enclave.filter_pulled(ids, 0.25).size(), 75u);
}

TEST(Enclave, FilterPulledKeepsSubsetOfInput) {
  Provisioned p;
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < 50; ++i) ids.emplace_back(i * 2);
  const auto kept = p.enclave.filter_pulled(ids, 0.5);
  std::set<std::uint32_t> input;
  for (NodeId id : ids) input.insert(id.value);
  for (NodeId id : kept) EXPECT_TRUE(input.count(id.value));
}

TEST(Enclave, SwapHalfIsHalfRoundedUp) {
  Provisioned p;
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < 9; ++i) ids.emplace_back(i);
  EXPECT_EQ(p.enclave.select_swap_half(ids).size(), 5u);
  ids.emplace_back(9);
  EXPECT_EQ(p.enclave.select_swap_half(ids).size(), 5u);
  EXPECT_TRUE(p.enclave.select_swap_half({}).empty());
}

TEST(Enclave, SwapHalfEntriesAreDistinctViewMembers) {
  Provisioned p;
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < 20; ++i) ids.emplace_back(i);
  const auto half = p.enclave.select_swap_half(ids);
  std::set<std::uint32_t> uniq;
  for (NodeId id : half) {
    EXPECT_LT(id.value, 20u);
    uniq.insert(id.value);
  }
  EXPECT_EQ(uniq.size(), half.size());
}

TEST(Enclave, SealUnsealRoundTrip) {
  Provisioned p;
  const auto blob = p.enclave.seal_group_key();
  ASSERT_TRUE(blob.has_value());

  // "Restart": a new enclave object on the same device/seed unseals it.
  Enclave restarted(raptee_enclave_identity(), 1, nullptr);
  EXPECT_FALSE(restarted.has_group_key());
  EXPECT_TRUE(restarted.unseal_group_key(*blob));
  EXPECT_TRUE(restarted.has_group_key());
  EXPECT_EQ(restarted.group_fingerprint(), p.enclave.group_fingerprint());
}

TEST(Enclave, UnsealRejectsTamperedBlob) {
  Provisioned p;
  auto blob = *p.enclave.seal_group_key();
  blob[blob.size() / 2] ^= 0x01;
  Enclave restarted(raptee_enclave_identity(), 1, nullptr);
  EXPECT_FALSE(restarted.unseal_group_key(blob));
  EXPECT_FALSE(restarted.has_group_key());
}

TEST(Enclave, UnsealRejectsDifferentDevice) {
  Provisioned p(/*seed=*/1);
  const auto blob = *p.enclave.seal_group_key();
  Enclave other_device(raptee_enclave_identity(), 2, nullptr);
  EXPECT_FALSE(other_device.unseal_group_key(blob));
}

TEST(Enclave, UnsealRejectsDifferentMeasurement) {
  Provisioned p(/*seed=*/1);
  const auto blob = *p.enclave.seal_group_key();
  Enclave other_code("some-other-code", 1, nullptr);
  EXPECT_FALSE(other_code.unseal_group_key(blob));
}

TEST(Enclave, CycleLedgerChargesPerFunctionClass) {
  const CycleModel model = CycleModel::paper_table1();
  Provisioned p(/*seed=*/3, &model);
  crypto::AuthNonce n{};
  const auto before = p.enclave.ledger().cycles(FunctionClass::kPullRequest);
  (void)p.enclave.auth_make_proof(n, n);
  EXPECT_GT(p.enclave.ledger().cycles(FunctionClass::kPullRequest), before);
  EXPECT_GE(p.enclave.ledger().calls(FunctionClass::kPullRequest), 1u);

  (void)p.enclave.filter_pulled({NodeId{1}}, 0.5);
  EXPECT_GT(p.enclave.ledger().cycles(FunctionClass::kTrustedComms), 0u);
  EXPECT_GT(p.enclave.ledger().total_cycles(), 0u);
}

TEST(Enclave, NullModelChargesNothing) {
  Provisioned p(/*seed=*/4, nullptr);
  crypto::AuthNonce n{};
  (void)p.enclave.auth_make_proof(n, n);
  EXPECT_EQ(p.enclave.ledger().total_cycles(), 0u);
}

TEST(Enclave, ReportDataIsFresh) {
  Enclave e(raptee_enclave_identity(), 1);
  EXPECT_NE(e.make_report_data(), e.make_report_data());
}

}  // namespace
}  // namespace raptee::sgx
