// KeyedAuthenticator across the three transport modes (design decision D5):
// identical trust decisions, mode-specific mechanics.
#include "brahms/auth.hpp"

#include <gtest/gtest.h>

namespace raptee::brahms {
namespace {

struct Decisions {
  bool initiator = false;
  bool responder = false;
};

Decisions run(IAuthenticator& a, IAuthenticator& b) {
  const auto challenge = a.make_challenge();
  const auto response = b.make_response(challenge);
  crypto::AuthConfirm confirm;
  Decisions d;
  d.initiator = a.verify_response(challenge, response, &confirm);
  d.responder = b.verify_confirm(challenge, response, confirm);
  return d;
}

class AuthModeTest : public ::testing::TestWithParam<AuthMode> {
 protected:
  KeyedAuthenticator make(const crypto::SymmetricKey& key, std::uint64_t seed) {
    return KeyedAuthenticator(GetParam(), key, crypto::Drbg(seed));
  }
};

TEST_P(AuthModeTest, SharedKeyAuthenticatesBothWays) {
  crypto::Drbg kg(1);
  const auto group = kg.generate_key();
  auto a = make(group, 10);
  auto b = make(group, 11);
  const auto d = run(a, b);
  EXPECT_TRUE(d.initiator);
  EXPECT_TRUE(d.responder);
}

TEST_P(AuthModeTest, DistinctKeysFailBothWays) {
  crypto::Drbg kg(2);
  auto a = make(kg.generate_key(), 10);
  auto b = make(kg.generate_key(), 11);
  const auto d = run(a, b);
  EXPECT_FALSE(d.initiator);
  EXPECT_FALSE(d.responder);
}

TEST_P(AuthModeTest, MixedPairAgreesOnFailure) {
  // trusted <-> untrusted: neither side should conclude trust.
  crypto::Drbg kg(3);
  const auto group = kg.generate_key();
  auto trusted = make(group, 10);
  auto untrusted = make(kg.generate_key(), 11);
  const auto d1 = run(trusted, untrusted);
  EXPECT_FALSE(d1.initiator);
  EXPECT_FALSE(d1.responder);
  const auto d2 = run(untrusted, trusted);
  EXPECT_FALSE(d2.initiator);
  EXPECT_FALSE(d2.responder);
}

TEST_P(AuthModeTest, FreshChallengesEveryHandshake) {
  crypto::Drbg kg(4);
  auto a = make(kg.generate_key(), 10);
  EXPECT_NE(a.make_challenge().r_a, a.make_challenge().r_a);
}

INSTANTIATE_TEST_SUITE_P(Modes, AuthModeTest,
                         ::testing::Values(AuthMode::kFull, AuthMode::kFingerprint,
                                           AuthMode::kOracle),
                         [](const auto& info) {
                           switch (info.param) {
                             case AuthMode::kFull: return "Full";
                             case AuthMode::kFingerprint: return "Fingerprint";
                             case AuthMode::kOracle: return "Oracle";
                           }
                           return "?";
                         });

TEST(AuthModeEquivalence, AllModesProduceIdenticalDecisionMatrix) {
  // The D5 guarantee: over a population of keys, every mode yields the same
  // trusted/untrusted decision for every ordered pair.
  crypto::Drbg kg(5);
  const auto group = kg.generate_key();
  std::vector<crypto::SymmetricKey> keys{group, group, kg.generate_key(),
                                         kg.generate_key()};
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = 0; j < keys.size(); ++j) {
      std::vector<Decisions> per_mode;
      for (AuthMode mode : {AuthMode::kFull, AuthMode::kFingerprint, AuthMode::kOracle}) {
        KeyedAuthenticator a(mode, keys[i], crypto::Drbg(100 + i));
        KeyedAuthenticator b(mode, keys[j], crypto::Drbg(200 + j));
        per_mode.push_back(run(a, b));
      }
      for (std::size_t m = 1; m < per_mode.size(); ++m) {
        EXPECT_EQ(per_mode[m].initiator, per_mode[0].initiator)
            << "pair (" << i << "," << j << ") mode " << m;
        EXPECT_EQ(per_mode[m].responder, per_mode[0].responder)
            << "pair (" << i << "," << j << ") mode " << m;
      }
      const bool same_key = (keys[i] == keys[j]);
      EXPECT_EQ(per_mode[0].initiator, same_key);
    }
  }
}

TEST(AuthModeMechanics, FingerprintProofDependsOnChallenges) {
  crypto::Drbg kg(6);
  const auto key = kg.generate_key();
  KeyedAuthenticator b(AuthMode::kFingerprint, key, crypto::Drbg(1));
  crypto::AuthChallenge c1, c2;
  c1.r_a.fill(1);
  c2.r_a.fill(2);
  EXPECT_NE(b.make_response(c1).proof_b, b.make_response(c2).proof_b);
}

TEST(AuthModeMechanics, FullModeTamperedResponseRejected) {
  crypto::Drbg kg(7);
  const auto key = kg.generate_key();
  KeyedAuthenticator a(AuthMode::kFull, key, crypto::Drbg(1));
  KeyedAuthenticator b(AuthMode::kFull, key, crypto::Drbg(2));
  const auto challenge = a.make_challenge();
  auto response = b.make_response(challenge);
  response.proof_b[0] ^= 1;
  crypto::AuthConfirm confirm;
  EXPECT_FALSE(a.verify_response(challenge, response, &confirm));
}

TEST(AuthModeMechanics, OracleProofCarriesFingerprint) {
  crypto::Drbg kg(8);
  const auto key = kg.generate_key();
  KeyedAuthenticator b(AuthMode::kOracle, key, crypto::Drbg(1));
  const auto response = b.make_response(crypto::AuthChallenge{});
  EXPECT_EQ(auth_detail::oracle_extract(response.proof_b), key.fingerprint());
}

}  // namespace
}  // namespace raptee::brahms
