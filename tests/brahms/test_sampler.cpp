// Brahms sampling component: min-wise uniformity, order/duplication
// insensitivity, churn validation.
#include "brahms/sampler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace raptee::brahms {
namespace {

TEST(Sampler, HoldsMinHashElement) {
  Sampler s(42);
  EXPECT_FALSE(s.holds_sample());
  EXPECT_EQ(s.sample(), kNoNode);
  for (std::uint32_t i = 0; i < 100; ++i) s.next(NodeId{i});
  EXPECT_TRUE(s.holds_sample());
  // Recompute the argmin independently.
  crypto::MinWiseHash h(42);
  NodeId expected = kNoNode;
  std::uint64_t best = ~0ull;
  for (std::uint32_t i = 0; i < 100; ++i) {
    if (h(NodeId{i}) < best) {
      best = h(NodeId{i});
      expected = NodeId{i};
    }
  }
  EXPECT_EQ(s.sample(), expected);
}

TEST(Sampler, OrderInsensitive) {
  std::vector<NodeId> stream;
  for (std::uint32_t i = 0; i < 50; ++i) stream.emplace_back(i * 3 + 1);
  Sampler forward(7), backward(7);
  for (NodeId id : stream) forward.next(id);
  std::reverse(stream.begin(), stream.end());
  for (NodeId id : stream) backward.next(id);
  EXPECT_EQ(forward.sample(), backward.sample());
}

TEST(Sampler, DuplicationInsensitive) {
  Sampler once(9), many(9);
  for (std::uint32_t i = 0; i < 20; ++i) {
    once.next(NodeId{i});
    for (int rep = 0; rep < 10; ++rep) many.next(NodeId{i});
  }
  EXPECT_EQ(once.sample(), many.sample());
}

TEST(Sampler, ReinitForgetsAndRedraws) {
  Sampler s(1);
  s.next(NodeId{5});
  EXPECT_TRUE(s.holds_sample());
  s.reinit(2);
  EXPECT_FALSE(s.holds_sample());
  s.next(NodeId{6});
  EXPECT_EQ(s.sample(), NodeId{6});
}

TEST(SamplerArray, SizeAndIndependentSeeds) {
  Rng rng(3);
  SamplerArray arr(32, rng);
  EXPECT_EQ(arr.size(), 32u);
  for (std::uint32_t i = 0; i < 200; ++i) arr.feed(NodeId{i});
  // Independent hash functions: the samplers should not all agree.
  std::set<std::uint32_t> distinct;
  for (std::size_t i = 0; i < arr.size(); ++i) distinct.insert(arr.at(i).sample().value);
  EXPECT_GT(distinct.size(), 5u);
}

TEST(SamplerArray, SampleListIsSortedUnique) {
  Rng rng(4);
  SamplerArray arr(16, rng);
  for (std::uint32_t i = 0; i < 50; ++i) arr.feed(NodeId{i});
  const auto list = arr.sample_list();
  EXPECT_FALSE(list.empty());
  EXPECT_LE(list.size(), 16u);
  EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
  EXPECT_EQ(std::adjacent_find(list.begin(), list.end()), list.end());
}

TEST(SamplerArray, HistorySampleBounded) {
  Rng rng(5);
  SamplerArray arr(16, rng);
  for (std::uint32_t i = 0; i < 100; ++i) arr.feed(NodeId{i});
  const auto hist = arr.history_sample(4, rng);
  EXPECT_EQ(hist.size(), 4u);
  std::set<std::uint32_t> uniq;
  for (NodeId id : hist) uniq.insert(id.value);
  EXPECT_EQ(uniq.size(), 4u);
}

TEST(SamplerArray, ValidateReinitializesDeadSamples) {
  Rng rng(6);
  SamplerArray arr(32, rng);
  for (std::uint32_t i = 0; i < 10; ++i) arr.feed(NodeId{i});
  // Declare ids < 5 dead.
  const auto dead_below_5 = [](NodeId id) { return id.value >= 5; };
  const std::size_t reinitialized = arr.validate(dead_below_5, rng);
  EXPECT_GT(reinitialized, 0u);
  for (NodeId id : arr.sample_list()) EXPECT_GE(id.value, 5u);
}

TEST(SamplerArray, ValidateKeepsAliveSamples) {
  Rng rng(7);
  SamplerArray arr(8, rng);
  arr.feed(NodeId{3});
  const auto all_alive = [](NodeId) { return true; };
  EXPECT_EQ(arr.validate(all_alive, rng), 0u);
  EXPECT_EQ(arr.sample_list(), std::vector<NodeId>{NodeId{3}});
}

TEST(SamplerArray, ConvergesToUniformOverAdversarialStream) {
  // The defining Brahms property: even if the adversary over-represents its
  // IDs in the stream 100:1, each sampler still converges to a uniform
  // choice over the *distinct* IDs.
  constexpr std::uint32_t kCorrect = 40;
  constexpr std::uint32_t kByzantine = 10;  // ids 1000..1009
  constexpr int kRounds = 30;
  Rng rng(8);
  std::vector<int> byz_share;
  for (int trial = 0; trial < 60; ++trial) {
    SamplerArray arr(20, rng);
    for (int round = 0; round < kRounds; ++round) {
      for (std::uint32_t i = 0; i < kCorrect; ++i) arr.feed(NodeId{i});
      for (int rep = 0; rep < 100; ++rep) {
        for (std::uint32_t b = 0; b < kByzantine; ++b) arr.feed(NodeId{1000 + b});
      }
    }
    int byz = 0;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (arr.at(i).sample().value >= 1000) ++byz;
    }
    byz_share.push_back(byz);
  }
  double mean = 0;
  for (int b : byz_share) mean += b;
  mean /= static_cast<double>(byz_share.size() * 20);
  // Uniform over 50 distinct ids -> byz share == 10/50 == 0.2, despite the
  // 100x multiplicity. Allow a loose statistical band.
  EXPECT_NEAR(mean, 0.2, 0.05);
}

class SamplerSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SamplerSeedSweep, ArgminUniformity) {
  // Each of the 8 ids should win the sampler with roughly equal frequency
  // across independent sampler seeds.
  Rng seeder(GetParam());
  std::vector<int> wins(8, 0);
  for (int trial = 0; trial < 4000; ++trial) {
    Sampler s(seeder.next());
    for (std::uint32_t i = 0; i < 8; ++i) s.next(NodeId{i});
    ++wins[s.sample().value];
  }
  for (int w : wins) EXPECT_NEAR(w, 500, 120);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerSeedSweep, ::testing::Values(1, 99, 12345));

}  // namespace
}  // namespace raptee::brahms
