// Count-min sketch and the E1 stream unbiaser (the paper's named future
// work: clip adversarially over-represented IDs out of the pulled stream).
#include "brahms/countmin.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace raptee::brahms {
namespace {

TEST(CountMinSketch, NeverUnderestimates) {
  Rng rng(1);
  CountMinSketch sketch(64, 4, rng);
  for (std::uint32_t i = 0; i < 50; ++i) sketch.add(NodeId{i}, i + 1);
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_GE(sketch.estimate(NodeId{i}), i + 1) << "id " << i;
  }
}

TEST(CountMinSketch, AccurateWhenSparse) {
  Rng rng(2);
  CountMinSketch sketch(512, 4, rng);
  sketch.add(NodeId{7}, 100);
  sketch.add(NodeId{8}, 1);
  EXPECT_EQ(sketch.estimate(NodeId{7}), 100u);
  EXPECT_LE(sketch.estimate(NodeId{8}), 2u);
  EXPECT_EQ(sketch.total(), 101u);
}

TEST(CountMinSketch, UnseenIdsEstimateNearZero) {
  Rng rng(3);
  CountMinSketch sketch(512, 4, rng);
  for (std::uint32_t i = 0; i < 10; ++i) sketch.add(NodeId{i});
  EXPECT_LE(sketch.estimate(NodeId{9999}), 1u);
}

TEST(CountMinSketch, ClearResets) {
  Rng rng(4);
  CountMinSketch sketch(64, 2, rng);
  sketch.add(NodeId{1}, 50);
  sketch.clear();
  EXPECT_EQ(sketch.estimate(NodeId{1}), 0u);
  EXPECT_EQ(sketch.total(), 0u);
}

TEST(CountMinSketch, DecayHalves) {
  Rng rng(5);
  CountMinSketch sketch(64, 2, rng);
  sketch.add(NodeId{1}, 100);
  sketch.decay();
  EXPECT_EQ(sketch.estimate(NodeId{1}), 50u);
  EXPECT_EQ(sketch.total(), 50u);
}

TEST(CountMinSketch, RejectsDegenerateDimensions) {
  Rng rng(6);
  EXPECT_THROW(CountMinSketch(1, 4, rng), std::invalid_argument);
  EXPECT_THROW(CountMinSketch(64, 0, rng), std::invalid_argument);
}

TEST(StreamUnbiaser, ClipsOverRepresentedIds) {
  Rng rng(7);
  StreamUnbiaser unbiaser({.sketch_width = 256, .sketch_depth = 4, .cap_factor = 2.0},
                          rng);
  // Stream: 50 distinct honest ids once each + one Byzantine id 100 times.
  std::vector<NodeId> stream;
  for (std::uint32_t i = 0; i < 50; ++i) stream.emplace_back(i);
  for (int rep = 0; rep < 100; ++rep) stream.emplace_back(999);

  const auto kept = unbiaser.filter(stream);
  const auto byz_kept =
      std::count(kept.begin(), kept.end(), NodeId{999});
  // Median frequency ~1 => cap ~2: the Byzantine id is clipped hard.
  EXPECT_LE(byz_kept, 4);
  EXPECT_GT(unbiaser.clipped_total(), 90u);
  // Honest ids survive untouched.
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(std::count(kept.begin(), kept.end(), NodeId{i}), 1) << "id " << i;
  }
}

TEST(StreamUnbiaser, UniformStreamPassesThrough) {
  Rng rng(8);
  StreamUnbiaser unbiaser({.sketch_width = 256, .sketch_depth = 4, .cap_factor = 2.0},
                          rng);
  std::vector<NodeId> stream;
  for (std::uint32_t i = 0; i < 100; ++i) stream.emplace_back(i);
  const auto kept = unbiaser.filter(stream);
  EXPECT_EQ(kept.size(), stream.size());
  EXPECT_EQ(unbiaser.clipped_total(), 0u);
}

TEST(StreamUnbiaser, EmptyStream) {
  Rng rng(9);
  StreamUnbiaser unbiaser({}, rng);
  EXPECT_TRUE(unbiaser.filter({}).empty());
}

TEST(StreamUnbiaser, DecayForgetsOldRounds) {
  Rng rng(10);
  StreamUnbiaser unbiaser(
      {.sketch_width = 256, .sketch_depth = 4, .cap_factor = 2.0, .decay_each_round = true},
      rng);
  // Round 1: id 5 heavily over-represented.
  std::vector<NodeId> biased;
  for (int rep = 0; rep < 64; ++rep) biased.emplace_back(5);
  for (std::uint32_t i = 0; i < 20; ++i) biased.emplace_back(100 + i);
  (void)unbiaser.filter(biased);
  // Many quiet rounds later the memory of id 5 has decayed away.
  for (int r = 0; r < 8; ++r) unbiaser.next_round();
  EXPECT_LE(unbiaser.sketch().estimate(NodeId{5}), 1u);
}

TEST(StreamUnbiaser, PreservesRelativeOrderOfKeptIds) {
  Rng rng(11);
  StreamUnbiaser unbiaser({.cap_factor = 10.0}, rng);
  std::vector<NodeId> stream{NodeId{3}, NodeId{1}, NodeId{2}};
  EXPECT_EQ(unbiaser.filter(stream), stream);
}

}  // namespace
}  // namespace raptee::brahms
