// BrahmsNode protocol mechanics, driven directly through the INode surface.
#include "brahms/node.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace raptee::brahms {
namespace {

BrahmsConfig small_config(std::size_t l1 = 20) {
  BrahmsConfig config;
  config.params.l1 = l1;
  config.params.l2 = l1;
  return config;
}

std::unique_ptr<BrahmsNode> make_node(NodeId id, BrahmsConfig config = small_config(),
                                      std::uint64_t seed = 1) {
  crypto::Drbg kg(seed);
  auto auth = std::make_unique<KeyedAuthenticator>(AuthMode::kFingerprint,
                                                   kg.generate_key(), kg.fork("a"));
  return std::make_unique<BrahmsNode>(id, config, std::move(auth), Rng(seed));
}

std::vector<NodeId> id_range(std::uint32_t from, std::uint32_t count) {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < count; ++i) out.emplace_back(from + i);
  return out;
}

/// Drives one complete pull exchange initiator->responder (no engine).
void run_pull(BrahmsNode& initiator, BrahmsNode& responder) {
  const auto request = initiator.open_pull(responder.id());
  const auto reply = responder.answer_pull(request);
  const auto confirm = initiator.process_pull_reply(reply);
  (void)responder.process_confirm(confirm);
}

TEST(BrahmsNode, RequiresAuthenticator) {
  EXPECT_THROW(BrahmsNode(NodeId{0}, small_config(), nullptr, Rng(1)),
               std::invalid_argument);
}

TEST(BrahmsNode, ValidatesParams) {
  BrahmsConfig bad = small_config();
  bad.params.alpha = 0.9;  // alpha+beta+gamma != 1
  crypto::Drbg kg(1);
  auto auth = std::make_unique<KeyedAuthenticator>(AuthMode::kOracle, kg.generate_key(),
                                                   kg.fork("x"));
  EXPECT_THROW(BrahmsNode(NodeId{0}, bad, std::move(auth), Rng(1)),
               std::invalid_argument);
}

TEST(BrahmsNode, BootstrapDedupsAndExcludesSelf) {
  auto node = make_node(NodeId{5});
  node->bootstrap({NodeId{1}, NodeId{1}, NodeId{5}, NodeId{2}});
  const auto view = node->current_view();
  EXPECT_EQ(view.size(), 2u);
  EXPECT_EQ(std::count(view.begin(), view.end(), NodeId{5}), 0);
}

TEST(BrahmsNode, BootstrapTruncatesToViewSize) {
  auto node = make_node(NodeId{0}, small_config(8));
  node->bootstrap(id_range(1, 50));
  EXPECT_EQ(node->current_view().size(), 8u);
}

TEST(BrahmsNode, BootstrapPrimesSamplers) {
  auto node = make_node(NodeId{0});
  node->bootstrap({NodeId{1}, NodeId{2}});
  EXPECT_FALSE(node->sample_list().empty());
}

TEST(BrahmsNode, FanoutsMatchAlphaBetaSlices) {
  auto node = make_node(NodeId{0});  // l1=20: push 8, pull 8, history 4
  node->bootstrap(id_range(1, 20));
  node->begin_round(0);
  const auto pushes = node->push_targets();
  const auto pulls = node->pull_targets();
  EXPECT_EQ(pushes.size(), 8u);
  EXPECT_EQ(pulls.size(), 8u);
  const auto view = node->current_view();
  for (NodeId t : pushes) {
    EXPECT_NE(std::find(view.begin(), view.end(), t), view.end());
  }
}

TEST(BrahmsNode, EmptyViewYieldsNoTargets) {
  auto node = make_node(NodeId{0});
  node->begin_round(0);
  EXPECT_TRUE(node->push_targets().empty());
  EXPECT_TRUE(node->pull_targets().empty());
}

TEST(BrahmsNode, PushCarriesOwnId) {
  auto node = make_node(NodeId{7});
  EXPECT_EQ(node->make_push().sender, NodeId{7});
}

TEST(BrahmsNode, PullAnswerIsFullView) {
  auto node = make_node(NodeId{0});
  node->bootstrap(id_range(1, 10));
  node->begin_round(0);
  const auto reply = node->answer_pull(wire::PullRequest{NodeId{99}, {}});
  EXPECT_EQ(reply.sender, NodeId{0});
  EXPECT_EQ(reply.view, node->current_view());
}

TEST(BrahmsNode, ViewRenewalDrawsFromAllThreeSources) {
  auto a = make_node(NodeId{0}, small_config(20), 1);
  auto b = make_node(NodeId{100}, small_config(20), 2);
  a->bootstrap(id_range(1, 20));
  b->bootstrap(id_range(40, 20));
  a->begin_round(0);
  b->begin_round(0);

  // Pushes advertise ids 200.. (fresh, never seen otherwise).
  for (std::uint32_t i = 0; i < 4; ++i) a->on_push(wire::PushMessage{NodeId{200 + i}});
  // One pull from b: brings 40..59.
  run_pull(*a, *b);
  a->end_round(0);

  const auto view = a->current_view();
  EXPECT_EQ(view.size(), 20u);
  const auto has_in = [&view](std::uint32_t lo, std::uint32_t hi) {
    return std::any_of(view.begin(), view.end(), [lo, hi](NodeId id) {
      return id.value >= lo && id.value < hi;
    });
  };
  EXPECT_TRUE(has_in(200, 204));  // pushed ids
  EXPECT_TRUE(has_in(40, 60));    // pulled ids
  EXPECT_TRUE(has_in(1, 21));     // history (samplers primed from bootstrap)
}

TEST(BrahmsNode, FloodBlocksViewUpdate) {
  auto a = make_node(NodeId{0}, small_config(20), 1);
  auto b = make_node(NodeId{100}, small_config(20), 2);
  a->bootstrap(id_range(1, 20));
  b->bootstrap(id_range(40, 20));
  const auto before = a->current_view();

  a->begin_round(0);
  b->begin_round(0);
  // push_slice = 8; 9 pushes exceed it -> defence (ii) blocks the update.
  for (std::uint32_t i = 0; i < 9; ++i) a->on_push(wire::PushMessage{NodeId{200 + i}});
  run_pull(*a, *b);
  a->end_round(0);

  EXPECT_TRUE(a->telemetry().update_blocked);
  // Ages aside, membership is unchanged.
  auto after = a->current_view();
  std::sort(after.begin(), after.end());
  auto sorted_before = before;
  std::sort(sorted_before.begin(), sorted_before.end());
  EXPECT_EQ(after, sorted_before);
}

TEST(BrahmsNode, NoPushesBlocksViewUpdate) {
  auto a = make_node(NodeId{0}, small_config(20), 1);
  auto b = make_node(NodeId{100}, small_config(20), 2);
  a->bootstrap(id_range(1, 20));
  b->bootstrap(id_range(40, 20));
  a->begin_round(0);
  b->begin_round(0);
  run_pull(*a, *b);  // pulls but no pushes
  a->end_round(0);
  EXPECT_TRUE(a->telemetry().update_blocked);
}

TEST(BrahmsNode, NoPullsBlocksViewUpdate) {
  auto a = make_node(NodeId{0}, small_config(20), 1);
  a->bootstrap(id_range(1, 20));
  a->begin_round(0);
  a->on_push(wire::PushMessage{NodeId{200}});
  a->end_round(0);
  EXPECT_TRUE(a->telemetry().update_blocked);
}

TEST(BrahmsNode, ExactSliceLimitIsNotFlood) {
  auto a = make_node(NodeId{0}, small_config(20), 1);
  auto b = make_node(NodeId{100}, small_config(20), 2);
  a->bootstrap(id_range(1, 20));
  b->bootstrap(id_range(40, 20));
  a->begin_round(0);
  b->begin_round(0);
  for (std::uint32_t i = 0; i < 8; ++i) a->on_push(wire::PushMessage{NodeId{200 + i}});
  run_pull(*a, *b);
  a->end_round(0);
  EXPECT_FALSE(a->telemetry().update_blocked);
}

TEST(BrahmsNode, SelfNeverEntersView) {
  auto a = make_node(NodeId{0}, small_config(20), 1);
  auto b = make_node(NodeId{100}, small_config(20), 2);
  a->bootstrap(id_range(1, 20));
  std::vector<NodeId> poisoned = id_range(40, 19);
  poisoned.push_back(NodeId{0});  // b's view contains a's own id
  b->bootstrap(poisoned);
  for (Round r = 0; r < 5; ++r) {
    a->begin_round(r);
    b->begin_round(r);
    a->on_push(wire::PushMessage{NodeId{0}});  // adversarial echo of own id
    a->on_push(wire::PushMessage{NodeId{210}});
    run_pull(*a, *b);
    a->end_round(r);
  }
  const auto view = a->current_view();
  EXPECT_EQ(std::count(view.begin(), view.end(), NodeId{0}), 0);
}

TEST(BrahmsNode, RenewalSamplesStreamWithMultiplicity) {
  // A stream where one id has multiplicity 50 out of 100 entries should
  // claim roughly half the pulled slice, even though it is 1 of 51
  // *distinct* ids — the over-representation Brahms quantifies.
  int hits = 0, trials = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    auto a = make_node(NodeId{0}, small_config(20), seed * 2 + 1);
    auto b = make_node(NodeId{100}, small_config(20), seed * 2 + 2);
    a->bootstrap(id_range(1, 20));
    // b's view: 10 copies is impossible (views dedup), so emulate the
    // multiplicity through five pulls of an identical adversarial view.
    b->bootstrap({NodeId{300}});
    a->begin_round(0);
    b->begin_round(0);
    a->on_push(wire::PushMessage{NodeId{200}});
    for (int pull = 0; pull < 5; ++pull) run_pull(*a, *b);
    a->end_round(0);
    const auto view = a->current_view();
    hits += std::count(view.begin(), view.end(), NodeId{300});
    ++trials;
  }
  // id 300 is the entire pulled stream: it must be present nearly always.
  EXPECT_GT(hits, trials * 9 / 10);
}

TEST(BrahmsNode, TelemetryCountsRoundActivity) {
  auto a = make_node(NodeId{0}, small_config(20), 1);
  auto b = make_node(NodeId{100}, small_config(20), 2);
  a->bootstrap(id_range(1, 20));
  b->bootstrap(id_range(40, 20));
  a->begin_round(0);
  b->begin_round(0);
  a->on_push(wire::PushMessage{NodeId{200}});
  run_pull(*a, *b);
  run_pull(*b, *a);
  a->end_round(0);
  EXPECT_EQ(a->telemetry().pushes_received, 1u);
  EXPECT_EQ(a->telemetry().pulls_completed, 1u);
  EXPECT_EQ(a->telemetry().pulls_answered, 1u);
  EXPECT_EQ(a->telemetry().pulled_ids_total, 20u);
  EXPECT_EQ(a->telemetry().trusted_exchanges, 0u);
}

TEST(BrahmsNode, PullTimeoutLeavesViewIntact) {
  auto a = make_node(NodeId{0}, small_config(20), 1);
  a->bootstrap(id_range(1, 20));
  a->begin_round(0);
  (void)a->open_pull(NodeId{3});
  a->on_pull_timeout(NodeId{3});
  EXPECT_TRUE(a->view().contains(NodeId{3}));
  // A fresh exchange can start afterwards (slot was released).
  (void)a->open_pull(NodeId{4});
}

TEST(BrahmsNode, SamplerValidationEvictsDeadUnderChurn) {
  BrahmsConfig config = small_config(20);
  config.sampler_validation_period = 1;
  crypto::Drbg kg(1);
  auto auth = std::make_unique<KeyedAuthenticator>(AuthMode::kOracle, kg.generate_key(),
                                                   kg.fork("a"));
  // Aliveness probe: ids >= 10 are dead.
  BrahmsNode node(NodeId{0}, config, std::move(auth), Rng(3),
                  [](NodeId id) { return id.value < 10; });
  node.bootstrap(id_range(1, 19));
  node.begin_round(1);
  node.end_round(1);
  for (NodeId id : node.sample_list()) EXPECT_LT(id.value, 10u);
}

}  // namespace
}  // namespace raptee::brahms
