#include "common/bitset.hpp"

#include <gtest/gtest.h>

namespace raptee {
namespace {

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_DOUBLE_EQ(b.fill_ratio(), 0.0);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynamicBitset, SetReturnsTransition) {
  DynamicBitset b(10);
  EXPECT_TRUE(b.set(3));
  EXPECT_FALSE(b.set(3));  // already set
  EXPECT_TRUE(b.test(3));
  EXPECT_EQ(b.count(), 1u);
}

TEST(DynamicBitset, ResetDecrementsCount) {
  DynamicBitset b(10);
  b.set(1);
  b.set(2);
  b.reset(1);
  EXPECT_FALSE(b.test(1));
  EXPECT_TRUE(b.test(2));
  EXPECT_EQ(b.count(), 1u);
  b.reset(1);  // idempotent
  EXPECT_EQ(b.count(), 1u);
}

TEST(DynamicBitset, WordBoundaries) {
  DynamicBitset b(200);
  for (std::size_t i : {0u, 63u, 64u, 127u, 128u, 199u}) {
    EXPECT_TRUE(b.set(i));
    EXPECT_TRUE(b.test(i));
  }
  EXPECT_EQ(b.count(), 6u);
}

TEST(DynamicBitset, FillRatio) {
  DynamicBitset b(4);
  b.set(0);
  b.set(1);
  EXPECT_DOUBLE_EQ(b.fill_ratio(), 0.5);
}

TEST(DynamicBitset, ClearResetsEverything) {
  DynamicBitset b(70);
  for (std::size_t i = 0; i < 70; ++i) b.set(i);
  EXPECT_EQ(b.count(), 70u);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
  for (std::size_t i = 0; i < 70; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynamicBitset, OutOfRangeAsserts) {
  DynamicBitset b(10);
  EXPECT_THROW(b.set(10), AssertionError);
  EXPECT_THROW((void)b.test(10), AssertionError);
  EXPECT_THROW(b.reset(999), AssertionError);
}

TEST(DynamicBitset, ZeroSized) {
  DynamicBitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_DOUBLE_EQ(b.fill_ratio(), 0.0);
}

TEST(DynamicBitset, FullFill) {
  DynamicBitset b(65);
  for (std::size_t i = 0; i < 65; ++i) b.set(i);
  EXPECT_DOUBLE_EQ(b.fill_ratio(), 1.0);
}

}  // namespace
}  // namespace raptee
