// Direct coverage for the assertion machinery: failure behaviour (throw
// types, message contents) was previously only exercised indirectly through
// callers' EXPECT_THROWs.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace raptee {
namespace {

TEST(Assert, PassingAssertIsSilent) {
  EXPECT_NO_THROW(RAPTEE_ASSERT(1 + 1 == 2));
  EXPECT_NO_THROW(RAPTEE_ASSERT_MSG(true, "never rendered"));
  EXPECT_NO_THROW(RAPTEE_REQUIRE(true, "never rendered"));
}

TEST(Assert, FailureThrowsAssertionError) {
  EXPECT_THROW(RAPTEE_ASSERT(false), AssertionError);
  EXPECT_THROW(RAPTEE_ASSERT_MSG(false, "boom"), AssertionError);
}

TEST(Assert, AssertionErrorIsALogicError) {
  // Tests catching std::logic_error (and generic std::exception handlers)
  // must see assertion failures.
  EXPECT_THROW(RAPTEE_ASSERT(false), std::logic_error);
}

TEST(Assert, MessageCarriesExpressionFileLineAndDetail) {
  try {
    RAPTEE_ASSERT_MSG(2 == 3, "detail " << 42);
    FAIL() << "should have thrown";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("test_assert.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("detail 42"), std::string::npos) << what;
  }
}

TEST(Assert, RequireThrowsInvalidArgumentWithFormattedMessage) {
  try {
    const int n = 3;
    RAPTEE_REQUIRE(n > 8, "population too small: " << n);
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("n > 8"), std::string::npos) << what;
    EXPECT_NE(what.find("population too small: 3"), std::string::npos) << what;
  }
}

TEST(Assert, RequireIsNotAnAssertionError) {
  // The two tiers stay distinguishable: precondition violations must not be
  // caught by handlers that watch for internal-invariant bugs.
  EXPECT_THROW(RAPTEE_REQUIRE(false, "nope"), std::invalid_argument);
  try {
    RAPTEE_REQUIRE(false, "nope");
  } catch (const AssertionError&) {
    FAIL() << "RAPTEE_REQUIRE must not throw AssertionError";
  } catch (const std::invalid_argument&) {
    SUCCEED();
  }
}

TEST(Assert, SideEffectsInExpressionRunExactlyOnce) {
  int calls = 0;
  auto bump = [&calls]() {
    ++calls;
    return true;
  };
  RAPTEE_ASSERT(bump());
  EXPECT_EQ(calls, 1);
  RAPTEE_REQUIRE(bump(), "msg");
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace raptee
