// Arena allocator unit tests: chunk growth, reset-retains-capacity,
// alignment guarantees, and the ArenaVector staging container — the
// satellite coverage for the engine's per-round scratch arena.
#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/assert.hpp"

namespace raptee {
namespace {

TEST(Arena, ServesDistinctLiveBlocks) {
  Arena arena(64);
  auto* a = static_cast<std::uint32_t*>(arena.allocate(sizeof(std::uint32_t)));
  auto* b = static_cast<std::uint32_t*>(arena.allocate(sizeof(std::uint32_t)));
  ASSERT_NE(a, b);
  *a = 0xAAAAAAAAu;
  *b = 0xBBBBBBBBu;
  EXPECT_EQ(*a, 0xAAAAAAAAu);
  EXPECT_EQ(*b, 0xBBBBBBBBu);
  EXPECT_EQ(arena.bytes_allocated(), 2 * sizeof(std::uint32_t));
}

TEST(Arena, GrowsChunksGeometrically) {
  Arena arena(32);
  EXPECT_EQ(arena.chunk_count(), 0u);
  // Each allocation fills a whole chunk, forcing growth: 32, 64, 128, ...
  (void)arena.allocate(32, 1);
  EXPECT_EQ(arena.chunk_count(), 1u);
  (void)arena.allocate(33, 1);
  EXPECT_EQ(arena.chunk_count(), 2u);
  const std::size_t two_chunks = arena.capacity();
  (void)arena.allocate(two_chunks, 1);
  EXPECT_EQ(arena.chunk_count(), 3u);
  // Later chunks are at least as large as earlier ones.
  EXPECT_GE(arena.capacity(), 2 * two_chunks);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(16);
  void* big = arena.allocate(4096);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xCD, 4096);  // must be fully usable
  EXPECT_GE(arena.capacity(), 4096u);
}

TEST(Arena, ResetRetainsCapacityAndReusesMemory) {
  Arena arena(128);
  std::vector<void*> first;
  for (int i = 0; i < 50; ++i) first.push_back(arena.allocate(64));
  const std::size_t chunks = arena.chunk_count();
  const std::size_t capacity = arena.capacity();
  ASSERT_GT(chunks, 1u);

  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.chunk_count(), chunks) << "reset must retain chunks";
  EXPECT_EQ(arena.capacity(), capacity);

  // The same allocation pattern is served from the retained chunks — same
  // addresses come back, no new chunks appear.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(arena.allocate(64), first[static_cast<std::size_t>(i)]);
    }
    EXPECT_EQ(arena.chunk_count(), chunks);
    arena.reset();
  }
}

TEST(Arena, ReleaseFreesEverything) {
  Arena arena(64);
  (void)arena.allocate(1000);
  ASSERT_GT(arena.capacity(), 0u);
  arena.release();
  EXPECT_EQ(arena.capacity(), 0u);
  EXPECT_EQ(arena.chunk_count(), 0u);
  (void)arena.allocate(8);  // still usable afterwards
  EXPECT_EQ(arena.chunk_count(), 1u);
}

TEST(Arena, HonorsAlignment) {
  Arena arena(256);
  (void)arena.allocate(1, 1);  // skew the cursor
  for (std::size_t align : {2u, 4u, 8u, 16u, 32u, 64u}) {
    void* p = arena.allocate(3, align);
    // raptee-lint: allow(cast-allowlist) the test asserts pointer alignment, which requires the integer view
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "alignment " << align;
  }
}

TEST(Arena, RejectsNonPowerOfTwoAlignment) {
  Arena arena;
  EXPECT_THROW((void)arena.allocate(8, 3), AssertionError);
  EXPECT_THROW((void)arena.allocate(8, 0), AssertionError);
}

TEST(Arena, ZeroByteAllocationsAreDistinct) {
  Arena arena;
  void* a = arena.allocate(0);
  void* b = arena.allocate(0);
  EXPECT_NE(a, b);
}

TEST(ArenaVector, PushBackGrowsAndPreservesContents) {
  Arena arena(64);
  ArenaVector<std::uint64_t> v(arena);
  EXPECT_TRUE(v.empty());
  for (std::uint64_t i = 0; i < 1000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i * 3);
}

TEST(ArenaVector, ClearKeepsArenaBlockUsable) {
  Arena arena(64);
  ArenaVector<int> v(arena);
  for (int i = 0; i < 100; ++i) v.push_back(i);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(42);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 42);
}

TEST(ArenaVector, SteadyStateRoundLoopStopsGrowingTheArena) {
  // The engine's usage pattern: reset the arena each round, refill a vector
  // of the same size. After the first round the arena's footprint is fixed.
  Arena arena(256);
  for (int round = 0; round < 5; ++round) {
    arena.reset();
    ArenaVector<std::uint32_t> deliveries(arena);
    for (std::uint32_t i = 0; i < 500; ++i) deliveries.push_back(i);
    if (round == 0) continue;
    static std::size_t settled = 0;
    if (round == 1) settled = arena.capacity();
    EXPECT_EQ(arena.capacity(), settled) << "round " << round;
  }
}

}  // namespace
}  // namespace raptee
