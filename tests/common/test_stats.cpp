#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace raptee {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(4.0);
  s.reset();
  EXPECT_TRUE(s.empty());
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats s10, s1000;
  for (int i = 0; i < 10; ++i) s10.add(i % 2);
  for (int i = 0; i < 1000; ++i) s1000.add(i % 2);
  EXPECT_GT(s10.ci95_halfwidth(), s1000.ci95_halfwidth());
}

TEST(BatchStats, MeanAndStddev) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(2.0), 1e-12);
}

TEST(BatchStats, PercentileInterpolates) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(median_of(xs), 25.0);
}

TEST(BatchStats, PercentileSingleElement) {
  EXPECT_DOUBLE_EQ(percentile_of({7.0}, 30), 7.0);
}

TEST(BatchStats, PercentileRejectsBadInput) {
  EXPECT_THROW((void)percentile_of({}, 50), std::invalid_argument);
  EXPECT_THROW((void)percentile_of({1.0}, -1), std::invalid_argument);
  EXPECT_THROW((void)percentile_of({1.0}, 101), std::invalid_argument);
}

TEST(BatchStats, PercentileUnsortedInput) {
  std::vector<double> xs{40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(median_of(xs), 25.0);
}

TEST(BatchStats, SortedOverloadMatchesCopyingForm) {
  const std::vector<double> xs{40, 10, 30, 20, 50, 15};
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  // Sort-once call sites must see byte-identical values to the legacy
  // copy-and-sort-per-call form at every probed percentile.
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile_of_sorted(sorted, p), percentile_of(xs, p)) << "p=" << p;
  }
}

TEST(BatchStats, SortedOverloadSingleElementAndValidation) {
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile_of_sorted(one, 30), 7.0);
  EXPECT_THROW((void)percentile_of_sorted(std::vector<double>{}, 50),
               std::invalid_argument);
  EXPECT_THROW((void)percentile_of_sorted(one, -1), std::invalid_argument);
  EXPECT_THROW((void)percentile_of_sorted(one, 101), std::invalid_argument);
}

}  // namespace
}  // namespace raptee
