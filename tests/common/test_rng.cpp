#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace raptee {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(42);
  const auto first = a.next();
  a.next();
  a.reseed(42);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng a(7);
  Rng child = a.fork(1);
  const auto child_first = child.next();
  // Recreate: the fork draws one value from the parent.
  Rng b(7);
  (void)b.next();
  Rng child2 = Rng(mix64(Rng(7).next(), 1));
  EXPECT_EQ(child_first, child2.next());
}

TEST(Rng, BelowIsInRange) {
  Rng r(99);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng r(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowZeroAsserts) {
  Rng r(5);
  EXPECT_THROW((void)r.below(0), AssertionError);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(2024);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[r.below(kBuckets)];
  for (auto c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 0.05 * kDraws / kBuckets);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BetweenBadRangeAsserts) {
  Rng r(3);
  EXPECT_THROW((void)r.between(4, 3), AssertionError);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng r(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-1.0));
    EXPECT_TRUE(r.chance(2.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(31);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng r(555);
  double sum = 0, sum_sq = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = r.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng r(556);
  double sum = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(77);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto copy = v;
  r.shuffle(copy);
  EXPECT_NE(copy, v);  // astronomically unlikely to be identity
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Rng, ShuffleEmptyAndSingle) {
  Rng r(78);
  std::vector<int> empty;
  r.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  r.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, PickFromEmptyAsserts) {
  Rng r(79);
  std::vector<int> empty;
  EXPECT_THROW((void)r.pick(empty), AssertionError);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng r(80);
  for (std::size_t n : {5u, 20u, 100u}) {
    for (std::size_t k : {0u, 1u, 3u, 5u}) {
      const auto idx = r.sample_indices(n, k);
      EXPECT_EQ(idx.size(), std::min(n, k));
      std::set<std::size_t> uniq(idx.begin(), idx.end());
      EXPECT_EQ(uniq.size(), idx.size());
      for (auto i : idx) EXPECT_LT(i, n);
    }
  }
}

TEST(Rng, SampleIndicesAllWhenKExceedsN) {
  Rng r(81);
  const auto idx = r.sample_indices(7, 100);
  EXPECT_EQ(idx.size(), 7u);
  std::set<std::size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 7u);
}

TEST(Rng, SampleIsUniformSubset) {
  // Each element of [0, 10) should appear in a 5-subset with p = 0.5.
  Rng r(82);
  std::vector<int> pop(10);
  for (int i = 0; i < 10; ++i) pop[i] = i;
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    for (int x : r.sample(pop, 5)) ++counts[x];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.5, 0.03);
  }
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
}

TEST(Mix64, SensitiveToBothInputs) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(1, 2), mix64(1, 3));
  EXPECT_EQ(mix64(5, 9), mix64(5, 9));
}

class RngBoundParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundParam, LemireUnbiasedAcrossBounds) {
  // Mean of uniform [0, b) should be ~ (b-1)/2.
  Rng r(GetParam() * 31 + 7);
  const std::uint64_t b = GetParam();
  double sum = 0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(r.below(b));
  const double expected = static_cast<double>(b - 1) / 2.0;
  EXPECT_NEAR(sum / kDraws, expected, std::max(0.05 * expected, 0.5));
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundParam,
                         ::testing::Values(2, 3, 7, 10, 100, 1000, 65536));

TEST(Rng, PickSingleElementNeedsNoRandomness) {
  Rng r(90);
  std::vector<int> one{7};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.pick(one), 7);
}

TEST(Rng, PickCoversAllElements) {
  Rng r(91);
  std::vector<int> v{0, 1, 2, 3};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.pick(v));
  EXPECT_EQ(seen.size(), v.size());
}

TEST(Rng, SampleIndicesZeroPopulation) {
  Rng r(92);
  EXPECT_TRUE(r.sample_indices(0, 0).empty());
  EXPECT_TRUE(r.sample_indices(0, 5).empty());
}

TEST(Rng, SampleFromEmptyVector) {
  Rng r(93);
  const std::vector<int> empty;
  EXPECT_TRUE(r.sample(empty, 0).empty());
  EXPECT_TRUE(r.sample(empty, 3).empty());
}

TEST(Rng, BelowHugeBoundExercisesRejectionPath) {
  // bound > 2^63 makes Lemire's rejection threshold (2^64 mod bound) huge,
  // so the retry loop actually runs; results must still be in range.
  Rng r(94);
  const std::uint64_t bound = (1ull << 63) + 1;
  for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
}

TEST(Rng, BelowMaxBound) {
  Rng r(95);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(r.below(~0ull), ~0ull);
  }
}

TEST(Rng, ForkDifferentSaltsDiverge) {
  Rng parent(96);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

// --- splittable (label/index) forks: the exec-subsystem contract ---

TEST(Rng, SplittableForkIsDeterministicAndOrderIndependent) {
  const Rng parent(97);  // const: fork(label)/split must not need mutation
  Rng a1 = parent.fork("push-phase");
  Rng b1 = parent.fork("bootstrap");
  // Deriving again — in the opposite order — yields the same streams.
  Rng b2 = parent.fork("bootstrap");
  Rng a2 = parent.fork("push-phase");
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a1.next(), a2.next());
    EXPECT_EQ(b1.next(), b2.next());
  }
}

TEST(Rng, SplittableForkDoesNotAdvanceTheParent) {
  Rng parent(98);
  Rng witness(98);
  (void)parent.fork("anything");
  (void)parent.split(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(parent.next(), witness.next());
}

TEST(Rng, SplittableForkDistinctLabelsDiverge) {
  const Rng parent(99);
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("beta");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitDistinctIndicesDiverge) {
  const Rng parent(100);
  std::set<std::uint64_t> first_draws;
  for (std::uint64_t i = 0; i < 128; ++i) {
    Rng child = parent.split(i);
    first_draws.insert(child.next());
  }
  EXPECT_EQ(first_draws.size(), 128u);
}

TEST(Rng, SplittableForkDependsOnParentState) {
  Rng parent(101);
  Rng before = parent.fork("label");
  (void)parent.next();  // advance the parent stream
  Rng after = parent.fork("label");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (before.next() == after.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplittableForkDistinguishesParentSeeds) {
  Rng a = Rng(102).fork("x");
  Rng b = Rng(103).fork("x");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace raptee
