// Corrupted-bytes fuzz loop over the wire codecs (satellite of the
// tamper-hardening PR): random bit flips and truncations over every encoded
// leg type must either decode cleanly or throw WireError — never abort,
// never trip ASan/UBSan (the CI sanitizer job runs this test instrumented).
// Also pins down the type-confusion hazard the engine's typed-leg validator
// guards against: a single flipped tag byte can decode as a *different*
// valid message type, which std::get would turn into std::bad_variant_access.
#include "wire/message.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/key.hpp"
#include "wire/link_cipher.hpp"

namespace raptee::wire {
namespace {

std::vector<Message> sample_messages() {
  std::vector<NodeId> view;
  for (std::uint32_t i = 0; i < 17; ++i) view.push_back(NodeId{i * 3});

  PullRequest request;
  request.sender = NodeId{11};
  request.challenge.r_a = {{0xAA, 0xBB}};
  PullReply reply;
  reply.sender = NodeId{12};
  reply.auth.r_b = {{0xCC}};
  reply.auth.proof_b = {{0xDD}};
  reply.view = view;
  AuthConfirm confirm_plain;
  confirm_plain.sender = NodeId{13};
  confirm_plain.confirm.proof_a = {{0xEE}};
  AuthConfirm confirm_offer = confirm_plain;
  confirm_offer.swap_offer = view;
  SwapReply swap;
  swap.sender = NodeId{14};
  swap.swap_half = view;
  return {PushMessage{NodeId{10}}, request, reply, confirm_plain, confirm_offer, swap};
}

TEST(MessageFuzz, RandomBitFlipsNeverAbortTheDecoder) {
  Rng rng(0xF1122);
  std::size_t decoded_ok = 0, rejected = 0, type_confused = 0;

  for (const Message& original : sample_messages()) {
    const std::vector<std::uint8_t> clean = encode(original);
    const MsgType expected = type_of(original);
    for (int iteration = 0; iteration < 4000; ++iteration) {
      std::vector<std::uint8_t> bytes = clean;
      const auto flips = 1 + rng.below(3);
      for (std::uint64_t f = 0; f < flips; ++f) {
        const auto at = static_cast<std::size_t>(rng.below(bytes.size()));
        bytes[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      }
      try {
        const Message decoded = decode(bytes);
        ++decoded_ok;
        // This is exactly the engine's post-decode hazard: the bytes were
        // valid *as some message*, not necessarily the expected one.
        if (type_of(decoded) != expected) ++type_confused;
      } catch (const WireError&) {
        ++rejected;
      }
    }
  }
  // Both outcomes must be reachable, or the loop proves nothing.
  EXPECT_GT(decoded_ok, 0u);
  EXPECT_GT(rejected, 0u);
  RecordProperty("decoded_ok", static_cast<int>(decoded_ok));
  RecordProperty("type_confused", static_cast<int>(type_confused));
}

TEST(MessageFuzz, RandomTruncationsNeverAbortTheDecoder) {
  Rng rng(0xF1123);
  for (const Message& original : sample_messages()) {
    const std::vector<std::uint8_t> clean = encode(original);
    for (std::size_t len = 0; len < clean.size(); ++len) {
      EXPECT_THROW((void)decode(clean.data(), len), WireError)
          << "a strict prefix must never decode (expect_done)";
    }
    // Trailing garbage is malformed too.
    std::vector<std::uint8_t> extended = clean;
    extended.push_back(static_cast<std::uint8_t>(rng.below(256)));
    EXPECT_THROW((void)decode(extended), WireError);
  }
}

TEST(MessageFuzz, DecodeIntoSurvivesAlternatingTypesAndGarbage) {
  // decode_into reuses the held alternative; interleave every type with
  // corrupt inputs to shake out stale-state bugs in the reuse path.
  Rng rng(0xF1124);
  const std::vector<Message> samples = sample_messages();
  Message target = samples.front();
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const Message& pick = samples[rng.below(samples.size())];
    std::vector<std::uint8_t> bytes = encode(pick);
    if (rng.chance(0.5)) {
      const auto at = static_cast<std::size_t>(rng.below(bytes.size()));
      bytes[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      try {
        decode_into(bytes.data(), bytes.size(), target);
      } catch (const WireError&) {
        // Partially overwritten target is allowed; it must still be usable
        // as the next decode's scratch.
      }
    } else {
      decode_into(bytes.data(), bytes.size(), target);
      EXPECT_EQ(target, pick);
    }
  }
}

TEST(MessageFuzz, TypeConfusionFromOneBitFlipIsConstructible) {
  // Deterministic witness for the engine guard: an AuthConfirm whose
  // crafted proof bytes make the tag-flipped frame (4 -> 5, one bit) parse
  // as a valid SwapReply. Without the typed-leg validation, the engine's
  // std::get<AuthConfirm> on this decode would terminate the process.
  AuthConfirm confirm;
  confirm.sender = NodeId{21};
  confirm.swap_offer = {NodeId{1}, NodeId{2}, NodeId{3}};
  // Payload after tag: sender(4) proof_a(32) flag(1) count(1) ids(12) = 50.
  // As SwapReply: sender(4) + varint + ids must consume exactly 50. A
  // two-byte varint [0x80 | (c & 0x7f), c >> 7] with c = 11 covers
  // 4 + 2 + 44 = 50, so set proof_a[0..1] accordingly.
  confirm.confirm.proof_a = {};
  confirm.confirm.proof_a[0] = 0x80 | 11;
  confirm.confirm.proof_a[1] = 0;

  std::vector<std::uint8_t> bytes = encode(Message{confirm});
  ASSERT_EQ(bytes[0], static_cast<std::uint8_t>(MsgType::kAuthConfirm));
  bytes[0] ^= 0x01;  // 4 -> 5: one on-path bit flip
  const Message decoded = decode(bytes);
  EXPECT_EQ(type_of(decoded), MsgType::kSwapReply);
  EXPECT_EQ(std::get<SwapReply>(decoded).swap_half.size(), 11u);
}

TEST(MessageFuzz, FlippedAeadFramesAreAlwaysRejected) {
  crypto::Drbg drbg(99, "aead-fuzz");
  const crypto::SymmetricKey secret = drbg.generate_key();
  Rng rng(0xF1125);

  for (int iteration = 0; iteration < 2000; ++iteration) {
    LinkCipher tx(secret, 0);
    LinkCipher rx(secret, 0);
    std::vector<std::uint8_t> leg(1 + rng.below(96));
    for (auto& b : leg) b = static_cast<std::uint8_t>(rng.below(256));
    std::vector<std::uint8_t> frame = tx.seal(leg);
    const auto at = static_cast<std::size_t>(rng.below(frame.size()));
    frame[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    EXPECT_FALSE(rx.open(frame).has_value())
        << "one flipped bit anywhere in the frame must fail the MAC";
  }
}

}  // namespace
}  // namespace raptee::wire
