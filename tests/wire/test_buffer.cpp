#include "wire/buffer.hpp"

#include <gtest/gtest.h>

namespace raptee::wire {
namespace {

TEST(Buffer, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  r.expect_done();
}

TEST(Buffer, VarintRoundTripEdges) {
  const std::uint64_t values[] = {0,       1,       127,        128,
                                  129,     16383,   16384,      (1ull << 32) - 1,
                                  1ull << 32, (1ull << 63), ~0ull};
  Writer w;
  for (auto v : values) w.varint(v);
  Reader r(w.bytes());
  for (auto v : values) EXPECT_EQ(r.varint(), v);
  r.expect_done();
}

TEST(Buffer, VarintCompactness) {
  Writer w;
  w.varint(127);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.varint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Buffer, TruncatedReadThrows) {
  Writer w;
  w.u16(7);
  Reader r(w.bytes());
  EXPECT_THROW((void)r.u32(), WireError);
}

TEST(Buffer, EmptyReaderThrowsOnAnyRead) {
  Reader r(nullptr, 0);
  EXPECT_TRUE(r.done());
  EXPECT_THROW((void)r.u8(), WireError);
  EXPECT_THROW((void)r.varint(), WireError);
}

TEST(Buffer, MalformedVarintUnterminated) {
  const std::uint8_t bytes[] = {0x80, 0x80, 0x80};
  Reader r(bytes, sizeof bytes);
  EXPECT_THROW((void)r.varint(), WireError);
}

TEST(Buffer, VarintTooLongThrows) {
  // 10 continuation bytes exceed 64 bits.
  std::vector<std::uint8_t> bytes(10, 0x80);
  bytes.push_back(0x02);
  Reader r(bytes);
  EXPECT_THROW((void)r.varint(), WireError);
}

TEST(Buffer, BytesFieldRoundTrip) {
  Writer w;
  w.bytes_field({1, 2, 3, 4, 5});
  w.bytes_field({});
  Reader r(w.bytes());
  EXPECT_EQ(r.bytes_field(), (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(r.bytes_field().empty());
  r.expect_done();
}

TEST(Buffer, BytesFieldLengthBombRejected) {
  Writer w;
  w.varint(1 << 30);  // claims 1 GiB payload, provides nothing
  Reader r(w.bytes());
  EXPECT_THROW((void)r.bytes_field(), WireError);
}

TEST(Buffer, NodeIdsRoundTrip) {
  Writer w;
  const std::vector<NodeId> ids{NodeId{0}, NodeId{42}, NodeId{0xFFFFFFFE}};
  w.node_ids(ids);
  Reader r(w.bytes());
  EXPECT_EQ(r.node_ids(), ids);
}

TEST(Buffer, NodeIdsCountBombRejected) {
  Writer w;
  w.varint(100);  // claims 100 ids but provides none
  Reader r(w.bytes());
  EXPECT_THROW((void)r.node_ids(), WireError);
}

TEST(Buffer, NodeIdsMaxCountEnforced) {
  Writer w;
  w.node_ids({NodeId{1}, NodeId{2}, NodeId{3}});
  Reader r(w.bytes());
  EXPECT_THROW((void)r.node_ids(/*max_count=*/2), WireError);
}

TEST(Buffer, FixedArrayRoundTrip) {
  Writer w;
  std::array<std::uint8_t, 4> a{9, 8, 7, 6};
  w.fixed(a);
  Reader r(w.bytes());
  EXPECT_EQ(r.fixed<4>(), a);
}

TEST(Buffer, ExpectDoneCatchesTrailingBytes) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.bytes());
  (void)r.u8();
  EXPECT_THROW(r.expect_done(), WireError);
  (void)r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Buffer, RemainingTracksPosition) {
  Writer w;
  w.u32(5);
  Reader r(w.bytes());
  EXPECT_EQ(r.remaining(), 4u);
  (void)r.u16();
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(Buffer, TakeMovesBuffer) {
  Writer w;
  w.u8(0x55);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x55);
}

}  // namespace
}  // namespace raptee::wire
