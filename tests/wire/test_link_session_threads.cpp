// LinkTable thread-safety regression (satellite of the transport PR).
//
// The table's concurrency contract (link_session.hpp) has two layers:
//
//   * every TABLE method — session, establish, invalidate, invalidate_pair,
//     invalidate_session, retire_idle, and the stat getters — is internally
//     locked and safe from any thread. This test hammers all of them
//     concurrently over an overlapping pair set; under the CI TSan job any
//     lock regression fails loudly.
//   * a SESSION's cipher state is NOT internally synchronized — one
//     connection owns one pair, so the bus never seals a pair from two
//     threads. The single-threaded tail below checks the pointer-guarded
//     invalidate_session semantics and distributed token agreement that the
//     bus relies on for correctness of that ownership rule.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "crypto/key.hpp"
#include "wire/link_session.hpp"

namespace raptee::wire {
namespace {

crypto::SymmetricKey test_master() {
  return crypto::Drbg(991, "link-threads-master").generate_key();
}

TEST(LinkSessionThreads, TableMethodsAreSafeFromConcurrentThreads) {
  LinkTable table(test_master());
  constexpr std::uint32_t kNodes = 6;
  constexpr int kIterations = 400;
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> observed_sessions{0};

  // Thread A: establishes sessions round-robin over every unordered pair.
  std::thread establisher([&] {
    while (!go.load()) {}
    for (int i = 0; i < kIterations; ++i) {
      const NodeId a{static_cast<std::uint32_t>(i) % kNodes};
      const NodeId b{(static_cast<std::uint32_t>(i) + 1 + i % 4) % kNodes};
      if (a == b) continue;
      (void)table.establish(a, b, 0xBEEF00 + static_cast<std::uint64_t>(i));
    }
  });

  // Thread B: the simulator path — counter-based session() on the same pairs.
  std::thread requester([&] {
    while (!go.load()) {}
    for (int i = 0; i < kIterations; ++i) {
      const NodeId a{static_cast<std::uint32_t>(i * 3) % kNodes};
      const NodeId b{(static_cast<std::uint32_t>(i * 3) + 2) % kNodes};
      if (a == b) continue;
      (void)table.session(a, b, static_cast<std::uint64_t>(i));
    }
  });

  // Thread C: churn — node and pair invalidation plus idle retirement.
  std::thread invalidator([&] {
    while (!go.load()) {}
    for (int i = 0; i < kIterations; ++i) {
      switch (i % 3) {
        case 0:
          table.invalidate(NodeId{static_cast<std::uint32_t>(i) % kNodes});
          break;
        case 1:
          table.invalidate_pair(NodeId{static_cast<std::uint32_t>(i) % kNodes},
                                NodeId{(static_cast<std::uint32_t>(i) + 1) % kNodes});
          break;
        default:
          table.retire_idle(static_cast<std::uint64_t>(i), 2);
          break;
      }
    }
  });

  // Thread D: the stats surface the bench and daemon poll while the bus
  // loop threads mutate the table.
  std::thread reader([&] {
    while (!go.load()) {}
    for (int i = 0; i < kIterations; ++i) {
      observed_sessions.fetch_add(table.active_sessions());
      (void)table.derivations();
    }
  });

  go.store(true);
  establisher.join();
  requester.join();
  invalidator.join();
  reader.join();

  // Liveness, not exact counts: work really happened, and the table ends
  // in a sane state.
  EXPECT_GT(table.derivations(), 0u);
  EXPECT_LE(table.active_sessions(), kNodes * (kNodes - 1) / 2);
  (void)observed_sessions;
}

TEST(LinkSessionThreads, InvalidateSessionOnlyTearsDownTheExpectedSession) {
  LinkTable table(test_master());
  const NodeId a{1};
  const NodeId b{2};
  LinkSession& first = table.establish(a, b, 100);
  // The pair re-establishes (a reconnect won the race)...
  LinkSession& second = table.establish(a, b, 200);
  ASSERT_EQ(table.active_sessions(), 1u);
  // ...and the STALE connection's close must not tear the successor down.
  table.invalidate_session(a, b, &first);
  EXPECT_EQ(table.active_sessions(), 1u);
  // The owning connection's close does.
  table.invalidate_session(a, b, &second);
  EXPECT_EQ(table.active_sessions(), 0u);
}

TEST(LinkSessionThreads, SameTokenOnIndependentTablesAgreesByteForByte) {
  // The distributed-agreement property the transport handshake depends on:
  // independent same-master tables + same token = identical sealed bytes.
  LinkTable left(test_master());
  LinkTable right(test_master());
  LinkSession& ls = left.establish(NodeId{3}, NodeId{8}, 0xA11CE);
  LinkSession& rs = right.establish(NodeId{8}, NodeId{3}, 0xA11CE);

  const std::vector<std::uint8_t> plain = {9, 8, 7, 6, 5, 4, 3, 2, 1};
  std::vector<std::uint8_t> sealed_left;
  std::vector<std::uint8_t> sealed_right;
  ls.channel_from(NodeId{3}).seal_into(plain.data(), plain.size(), sealed_left);
  rs.channel_from(NodeId{3}).seal_into(plain.data(), plain.size(), sealed_right);
  EXPECT_EQ(sealed_left, sealed_right);

  // A different token derives a different keystream.
  LinkTable other(test_master());
  LinkSession& os = other.establish(NodeId{3}, NodeId{8}, 0xA11CF);
  std::vector<std::uint8_t> sealed_other;
  os.channel_from(NodeId{3}).seal_into(plain.data(), plain.size(), sealed_other);
  EXPECT_NE(sealed_other, sealed_left);
}

}  // namespace
}  // namespace raptee::wire
