#include "wire/link_cipher.hpp"

#include <gtest/gtest.h>

namespace raptee::wire {
namespace {

crypto::SymmetricKey test_key(std::uint64_t seed = 1) {
  crypto::Drbg rng(seed);
  return rng.generate_key();
}

TEST(LinkCipher, SealOpenRoundTrip) {
  const auto key = test_key();
  LinkCipher tx(key, 0), rx(key, 0);
  const std::vector<std::uint8_t> msg{1, 2, 3, 4, 5};
  const auto frame = tx.seal(msg);
  const auto opened = rx.open(frame);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(LinkCipher, CiphertextHidesPlaintext) {
  const auto key = test_key();
  LinkCipher tx(key, 0);
  const std::vector<std::uint8_t> msg(64, 0x00);
  const auto frame = tx.seal(msg);
  // Body (after the 8-byte seq) must not be all zeros.
  bool nonzero = false;
  for (std::size_t i = 8; i < 8 + msg.size(); ++i) nonzero |= (frame[i] != 0);
  EXPECT_TRUE(nonzero);
}

TEST(LinkCipher, SequenceOfMessages) {
  const auto key = test_key();
  LinkCipher tx(key, 0), rx(key, 0);
  for (int i = 0; i < 20; ++i) {
    const std::vector<std::uint8_t> msg{static_cast<std::uint8_t>(i)};
    const auto opened = rx.open(tx.seal(msg));
    ASSERT_TRUE(opened.has_value()) << "message " << i;
    EXPECT_EQ(*opened, msg);
  }
  EXPECT_EQ(tx.sent(), 20u);
  EXPECT_EQ(rx.received(), 20u);
}

TEST(LinkCipher, TamperedBodyRejected) {
  const auto key = test_key();
  LinkCipher tx(key, 0), rx(key, 0);
  auto frame = tx.seal({1, 2, 3});
  frame[9] ^= 0x01;
  EXPECT_FALSE(rx.open(frame).has_value());
}

TEST(LinkCipher, TamperedTagRejected) {
  const auto key = test_key();
  LinkCipher tx(key, 0), rx(key, 0);
  auto frame = tx.seal({1, 2, 3});
  frame.back() ^= 0x80;
  EXPECT_FALSE(rx.open(frame).has_value());
}

TEST(LinkCipher, ReplayRejected) {
  const auto key = test_key();
  LinkCipher tx(key, 0), rx(key, 0);
  const auto frame = tx.seal({1});
  ASSERT_TRUE(rx.open(frame).has_value());
  EXPECT_FALSE(rx.open(frame).has_value());  // same seq again
}

TEST(LinkCipher, ReorderRejected) {
  const auto key = test_key();
  LinkCipher tx(key, 0), rx(key, 0);
  const auto f0 = tx.seal({0});
  const auto f1 = tx.seal({1});
  EXPECT_FALSE(rx.open(f1).has_value());  // skipped seq 0
  // And after the failed attempt, in-order delivery still works.
  EXPECT_TRUE(rx.open(f0).has_value());
}

TEST(LinkCipher, TruncatedFrameRejected) {
  const auto key = test_key();
  LinkCipher tx(key, 0), rx(key, 0);
  auto frame = tx.seal({1, 2, 3});
  frame.resize(10);
  EXPECT_FALSE(rx.open(frame).has_value());
  EXPECT_FALSE(rx.open({}).has_value());
}

TEST(LinkCipher, WrongKeyRejected) {
  LinkCipher tx(test_key(1), 0);
  LinkCipher rx(test_key(2), 0);
  EXPECT_FALSE(rx.open(tx.seal({1})).has_value());
}

TEST(LinkCipher, DirectionsAreIndependentKeystreams) {
  const auto key = test_key();
  LinkCipher d0(key, 0), d1(key, 1);
  const std::vector<std::uint8_t> msg(32, 0x42);
  const auto f0 = d0.seal(msg);
  const auto f1 = d1.seal(msg);
  EXPECT_NE(f0, f1);
  // Cross-direction frames do not authenticate.
  LinkCipher rx0(key, 0);
  EXPECT_FALSE(rx0.open(f1).has_value());
}

TEST(DuplexLink, EndToEnd) {
  const auto key = test_key(9);
  DuplexLink alice(key, /*initiator=*/true);
  DuplexLink bob(key, /*initiator=*/false);

  const std::vector<std::uint8_t> ping{'p', 'i', 'n', 'g'};
  const std::vector<std::uint8_t> pong{'p', 'o', 'n', 'g'};
  auto f = alice.tx.seal(ping);
  auto opened = bob.rx.open(f);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, ping);

  f = bob.tx.seal(pong);
  opened = alice.rx.open(f);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pong);
}

TEST(LinkCipher, EmptyPayloadRoundTrips) {
  const auto key = test_key();
  LinkCipher tx(key, 0), rx(key, 0);
  const auto opened = rx.open(tx.seal({}));
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

}  // namespace
}  // namespace raptee::wire
