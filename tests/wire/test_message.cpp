#include "wire/message.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace raptee::wire {
namespace {

crypto::AuthNonce nonce_of(std::uint8_t fill) {
  crypto::AuthNonce n{};
  n.fill(fill);
  return n;
}

crypto::AuthToken token_of(std::uint8_t fill) {
  crypto::AuthToken t{};
  t.fill(fill);
  return t;
}

TEST(Message, PushRoundTrip) {
  const Message m = PushMessage{NodeId{123}};
  const Message decoded = decode(encode(m));
  EXPECT_EQ(std::get<PushMessage>(decoded), std::get<PushMessage>(m));
}

TEST(Message, PullRequestRoundTrip) {
  PullRequest req;
  req.sender = NodeId{7};
  req.challenge.r_a = nonce_of(0x42);
  const Message decoded = decode(encode(Message{req}));
  EXPECT_EQ(std::get<PullRequest>(decoded), req);
}

TEST(Message, PullReplyRoundTrip) {
  PullReply reply;
  reply.sender = NodeId{9};
  reply.auth.r_b = nonce_of(0x11);
  reply.auth.proof_b = token_of(0x22);
  reply.view = {NodeId{1}, NodeId{2}, NodeId{3}};
  const Message decoded = decode(encode(Message{reply}));
  EXPECT_EQ(std::get<PullReply>(decoded), reply);
}

TEST(Message, PullReplyEmptyView) {
  PullReply reply;
  reply.sender = NodeId{9};
  const Message decoded = decode(encode(Message{reply}));
  EXPECT_TRUE(std::get<PullReply>(decoded).view.empty());
}

TEST(Message, AuthConfirmWithoutOffer) {
  AuthConfirm c;
  c.sender = NodeId{5};
  c.confirm.proof_a = token_of(0x77);
  const Message decoded = decode(encode(Message{c}));
  const auto& out = std::get<AuthConfirm>(decoded);
  EXPECT_EQ(out, c);
  EXPECT_FALSE(out.swap_offer.has_value());
}

TEST(Message, AuthConfirmWithOffer) {
  AuthConfirm c;
  c.sender = NodeId{5};
  c.confirm.proof_a = token_of(0x77);
  c.swap_offer = std::vector<NodeId>{NodeId{10}, NodeId{20}};
  const Message decoded = decode(encode(Message{c}));
  EXPECT_EQ(std::get<AuthConfirm>(decoded), c);
}

TEST(Message, AuthConfirmEmptyOfferIsPreserved) {
  AuthConfirm c;
  c.sender = NodeId{5};
  c.swap_offer = std::vector<NodeId>{};
  const Message decoded = decode(encode(Message{c}));
  const auto& out = std::get<AuthConfirm>(decoded);
  ASSERT_TRUE(out.swap_offer.has_value());
  EXPECT_TRUE(out.swap_offer->empty());
}

TEST(Message, SwapReplyRoundTrip) {
  SwapReply s;
  s.sender = NodeId{3};
  s.swap_half = {NodeId{4}, NodeId{5}};
  const Message decoded = decode(encode(Message{s}));
  EXPECT_EQ(std::get<SwapReply>(decoded), s);
}

TEST(Message, TypeTagsAreStable) {
  EXPECT_EQ(type_of(Message{PushMessage{}}), MsgType::kPush);
  EXPECT_EQ(type_of(Message{PullRequest{}}), MsgType::kPullRequest);
  EXPECT_EQ(type_of(Message{PullReply{}}), MsgType::kPullReply);
  EXPECT_EQ(type_of(Message{AuthConfirm{}}), MsgType::kAuthConfirm);
  EXPECT_EQ(type_of(Message{SwapReply{}}), MsgType::kSwapReply);
}

TEST(Message, UnknownTypeRejected) {
  std::vector<std::uint8_t> bytes{0x7F, 0, 0, 0, 0};
  EXPECT_THROW((void)decode(bytes), WireError);
}

TEST(Message, EmptyInputRejected) {
  EXPECT_THROW((void)decode(std::vector<std::uint8_t>{}), WireError);
}

TEST(Message, TrailingGarbageRejected) {
  auto bytes = encode(Message{PushMessage{NodeId{1}}});
  bytes.push_back(0xAA);
  EXPECT_THROW((void)decode(bytes), WireError);
}

TEST(Message, TruncatedPayloadRejected) {
  auto bytes = encode(Message{PullReply{NodeId{1}, {}, {NodeId{2}, NodeId{3}}}});
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW((void)decode(bytes), WireError);
}

TEST(Message, InvalidSwapOfferFlagRejected) {
  AuthConfirm c;
  c.sender = NodeId{1};
  auto bytes = encode(Message{c});
  // The flag byte is the last byte for an offer-less confirm.
  bytes.back() = 0x02;
  EXPECT_THROW((void)decode(bytes), WireError);
}

TEST(Message, FuzzedBytesNeverCrash) {
  // Property: arbitrary bytes either decode to a message or throw WireError —
  // never UB or unbounded allocation (a Byzantine sender controls this input).
  Rng rng(0xF0221E5);
  int decoded_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.below(64));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    // Bias the type tag toward valid values so deeper paths get fuzzed too.
    if (!bytes.empty() && rng.chance(0.7)) {
      bytes[0] = static_cast<std::uint8_t>(1 + rng.below(5));
    }
    try {
      (void)decode(bytes);
      ++decoded_ok;
    } catch (const WireError&) {
      // expected for malformed input
    }
  }
  // Some random inputs should decode (e.g. short pushes); most should not.
  EXPECT_GT(decoded_ok, 0);
}

TEST(Message, EncodedSizeIsCompact) {
  PullReply reply;
  reply.sender = NodeId{1};
  reply.view.assign(100, NodeId{7});
  const auto bytes = encode(Message{reply});
  // 1 tag + 4 sender + 16 rB + 32 proof + ~2 varint + 400 ids.
  EXPECT_LE(bytes.size(), 1 + 4 + 16 + 32 + 3 + 400u);
}

}  // namespace
}  // namespace raptee::wire
