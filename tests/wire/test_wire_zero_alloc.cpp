// Zero-allocation steady state of the wire hot path: once the scratch
// buffers and message alternatives have warmed their capacity, an encrypted
// leg round-trip — encode_into → seal_into → open_into → decode_into —
// performs no heap allocation at all. Verified by counting every global
// operator new in this binary across a measured window.
//
// The counting overrides forward to std::malloc/std::free, which keeps the
// sanitizer jobs honest: ASan still intercepts the underlying malloc, so
// leaks and overflows on this path stay visible.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "crypto/key.hpp"
#include "wire/link_session.hpp"
#include "wire/message.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  // aligned_alloc requires size to be a multiple of the alignment.
  const auto alignment = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded ? rounded : alignment)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace raptee::wire {
namespace {

crypto::SymmetricKey master() {
  crypto::Drbg drbg(7, "zero-alloc-test");
  return drbg.generate_key();
}

/// The five legs of one exchange, with list-bearing payloads large enough
/// to dominate any small-buffer effects.
std::vector<Message> exchange_legs() {
  std::vector<NodeId> view;
  for (std::uint32_t i = 0; i < 40; ++i) view.push_back(NodeId{i});

  PullRequest request;
  request.sender = NodeId{1};
  request.challenge.r_a = {{1, 2, 3, 4}};
  PullReply reply;
  reply.sender = NodeId{2};
  reply.auth.r_b = {{5, 6}};
  reply.auth.proof_b = {{7, 8}};
  reply.view = view;
  AuthConfirm confirm;
  confirm.sender = NodeId{1};
  confirm.confirm.proof_a = {{9, 10}};
  confirm.swap_offer = view;
  SwapReply swap;
  swap.sender = NodeId{2};
  swap.swap_half = view;
  return {PushMessage{NodeId{1}}, request, reply, confirm, swap};
}

TEST(WireZeroAlloc, EncryptedLegRoundTripIsAllocationFreeInSteadyState) {
  LinkTable table(master());
  const std::vector<Message> legs = exchange_legs();

  // One decode target per leg type: in the engine the same Message object
  // round-trips through decode_into, so the held alternative (and its
  // vector capacity) always matches the incoming type.
  std::vector<Message> decoded = legs;
  std::vector<std::uint8_t> plain, frame, opened;

  const auto run_exchange = [&](std::uint64_t round) {
    LinkSession& session = table.session(NodeId{1}, NodeId{2}, round);
    for (std::size_t i = 0; i < legs.size(); ++i) {
      LinkCipher& channel = session.channel_from(NodeId{1});
      encode_into(decoded[i], plain);
      channel.seal_into(plain.data(), plain.size(), frame);
      ASSERT_TRUE(channel.open_into(frame.data(), frame.size(), opened));
      decode_into(opened.data(), opened.size(), decoded[i]);
    }
  };

  // Warm-up: grows every scratch buffer and message vector to capacity and
  // establishes the link session (the one-time derivation cost).
  run_exchange(0);
  run_exchange(1);

  const std::uint64_t before = g_allocations.load();
  for (std::uint64_t round = 2; round < 52; ++round) run_exchange(round);
  const std::uint64_t during = g_allocations.load() - before;

  EXPECT_EQ(during, 0u)
      << "steady-state encrypted leg round-trips must not touch the heap";

  // The payloads must still round-trip faithfully, of course.
  for (std::size_t i = 0; i < legs.size(); ++i) EXPECT_EQ(decoded[i], legs[i]);
}

TEST(WireZeroAlloc, PlaintextCodecPathIsAllocationFreeInSteadyState) {
  const std::vector<Message> legs = exchange_legs();
  std::vector<Message> decoded = legs;
  std::vector<std::uint8_t> plain;

  for (int warm = 0; warm < 2; ++warm) {
    for (std::size_t i = 0; i < legs.size(); ++i) {
      encode_into(decoded[i], plain);
      decode_into(plain.data(), plain.size(), decoded[i]);
    }
  }

  const std::uint64_t before = g_allocations.load();
  for (int iteration = 0; iteration < 100; ++iteration) {
    for (std::size_t i = 0; i < legs.size(); ++i) {
      encode_into(decoded[i], plain);
      decode_into(plain.data(), plain.size(), decoded[i]);
    }
  }
  EXPECT_EQ(g_allocations.load() - before, 0u);
  for (std::size_t i = 0; i < legs.size(); ++i) EXPECT_EQ(decoded[i], legs[i]);
}

TEST(WireZeroAlloc, CountersSeeOrdinaryAllocations) {
  // Sanity-check the instrument itself: a fresh vector growth must count.
  const std::uint64_t before = g_allocations.load();
  std::vector<std::uint8_t>* v = new std::vector<std::uint8_t>(1024);
  delete v;
  EXPECT_GT(g_allocations.load(), before);
}

}  // namespace
}  // namespace raptee::wire
