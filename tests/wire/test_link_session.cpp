// wire::LinkTable contract: one persistent session per unordered pair with
// sequence-number continuity across exchanges, O(1) invalidation on churn
// with fresh keys on re-establishment, idle retirement, and the transient
// per-exchange baseline mode used by bench/scale_links.
#include "wire/link_session.hpp"

#include <gtest/gtest.h>

#include "crypto/key.hpp"

namespace raptee::wire {
namespace {

crypto::SymmetricKey master() {
  crypto::Drbg drbg(42, "link-session-test");
  return drbg.generate_key();
}

const NodeId kA{3};
const NodeId kB{7};
const NodeId kC{9};

TEST(LinkTable, CachesOneSessionPerPairAcrossCalls) {
  LinkTable table(master());
  LinkSession& first = table.session(kA, kB, 0);
  LinkSession& again = table.session(kA, kB, 1);
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(table.derivations(), 1u);
  EXPECT_EQ(table.active_sessions(), 1u);
}

TEST(LinkTable, PairIsUnordered) {
  LinkTable table(master());
  LinkSession& ab = table.session(kA, kB, 0);
  LinkSession& ba = table.session(kB, kA, 0);
  EXPECT_EQ(&ab, &ba);
  EXPECT_EQ(table.derivations(), 1u);
}

TEST(LinkTable, DistinctPairsGetDistinctSessions) {
  LinkTable table(master());
  (void)table.session(kA, kB, 0);
  (void)table.session(kA, kC, 0);
  EXPECT_EQ(table.derivations(), 2u);
  EXPECT_EQ(table.active_sessions(), 2u);
}

TEST(LinkTable, SequenceNumbersContinueAcrossExchanges) {
  LinkTable table(master());
  const std::vector<std::uint8_t> leg{1, 2, 3, 4};

  // Two "exchanges": the session persists, so the channel's sequence
  // numbers keep counting instead of resetting to zero.
  for (int exchange = 0; exchange < 2; ++exchange) {
    LinkSession& session = table.session(kA, kB, exchange);
    LinkCipher& channel = session.channel_from(kA);
    const auto frame = channel.seal(leg);
    const auto opened = channel.open(frame);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, leg);
  }
  LinkSession& session = table.session(kA, kB, 2);
  EXPECT_EQ(session.channel_from(kA).sent(), 2u);
  EXPECT_EQ(session.channel_from(kA).received(), 2u);
  EXPECT_EQ(table.derivations(), 1u) << "continuity must not re-derive";
}

TEST(LinkTable, ChannelsAreDirectional) {
  LinkTable table(master());
  LinkSession& session = table.session(kA, kB, 0);
  EXPECT_NE(&session.channel_from(kA), &session.channel_from(kB));

  // A frame sealed on the A->B channel must not open on B->A (distinct
  // direction subkeys — no keystream reuse across the duplex pair).
  const auto frame = session.channel_from(kA).seal({9, 9, 9});
  EXPECT_FALSE(session.channel_from(kB).open(frame).has_value());
}

TEST(LinkTable, InvalidateRekeysEverySessionOfTheNode) {
  LinkTable table(master());
  LinkSession& ab = table.session(kA, kB, 0);
  const auto old_frame = ab.channel_from(kA).seal({5, 5});
  (void)table.session(kA, kC, 0);
  ASSERT_EQ(table.derivations(), 2u);

  table.invalidate(kA);
  LinkSession& ab2 = table.session(kA, kB, 1);
  // Fresh key and fresh sequence state: the old frame (sealed under the
  // previous establishment) must not authenticate.
  EXPECT_EQ(ab2.channel_from(kA).sent(), 0u);
  std::vector<std::uint8_t> opened;
  EXPECT_FALSE(
      ab2.channel_from(kA).open_into(old_frame.data(), old_frame.size(), opened));
  EXPECT_EQ(table.derivations(), 3u);
  (void)table.session(kA, kC, 1);
  EXPECT_EQ(table.derivations(), 4u) << "both of A's sessions must rekey";
}

TEST(LinkTable, InvalidatePairLeavesOtherPairsCached) {
  LinkTable table(master());
  (void)table.session(kA, kB, 0);
  (void)table.session(kA, kC, 0);
  table.invalidate_pair(kA, kB);
  EXPECT_EQ(table.active_sessions(), 1u);
  (void)table.session(kA, kC, 1);
  EXPECT_EQ(table.derivations(), 2u) << "the untouched pair must stay cached";
  (void)table.session(kA, kB, 1);
  EXPECT_EQ(table.derivations(), 3u);
}

TEST(LinkTable, RetireIdleDropsOnlyStaleSessions) {
  LinkTable table(master());
  (void)table.session(kA, kB, 0);
  (void)table.session(kA, kC, 90);
  table.retire_idle(100, 64);
  EXPECT_EQ(table.active_sessions(), 1u);
  (void)table.session(kA, kC, 100);
  EXPECT_EQ(table.derivations(), 2u) << "recently used pair survives";
  (void)table.session(kA, kB, 100);
  EXPECT_EQ(table.derivations(), 3u) << "retired pair re-derives";
}

TEST(LinkTable, TransientModeEstablishesPerCall) {
  LinkTable table(master(), /*cache=*/false);
  (void)table.session(kA, kB, 0);
  (void)table.session(kA, kB, 0);
  (void)table.session(kA, kB, 1);
  EXPECT_EQ(table.derivations(), 3u);
  EXPECT_EQ(table.active_sessions(), 0u);
  // Each establishment starts its sequence space from zero (the old
  // per-exchange behaviour the baseline mode reproduces).
  EXPECT_EQ(table.session(kA, kB, 2).channel_from(kA).sent(), 0u);
}

TEST(LinkTable, ReestablishedSessionsNeverReuseAKeystream) {
  LinkTable table(master());
  const std::vector<std::uint8_t> leg{1, 1, 1, 1, 1, 1, 1, 1};
  const auto frame1 = table.session(kA, kB, 0).channel_from(kA).seal(leg);
  table.invalidate_pair(kA, kB);
  const auto frame2 = table.session(kA, kB, 0).channel_from(kA).seal(leg);
  // Same plaintext, same sequence number (0), same direction — but a fresh
  // establishment-uniquified key, so the ciphertext bytes must differ.
  ASSERT_EQ(frame1.size(), frame2.size());
  EXPECT_NE(frame1, frame2);
}

}  // namespace
}  // namespace raptee::wire
