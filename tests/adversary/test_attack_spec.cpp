// AttackSpec validation, the named-constructor catalog, and the strategy
// registry: membership, unknown-name diagnostics, and end-to-end use of a
// custom registered strategy through the public scenario API.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "adversary/byzantine.hpp"
#include "adversary/strategy.hpp"
#include "scenario/scenario.hpp"

namespace raptee::adversary {
namespace {

TEST(AttackSpec, DefaultIsBalancedAndValid) {
  const AttackSpec spec;
  EXPECT_EQ(spec.strategy, "balanced");
  EXPECT_NO_THROW(spec.validate());
  EXPECT_FALSE(spec.attach_bogus_swap_offer);
}

TEST(AttackSpec, NamedConstructorsSelectTheirStrategies) {
  EXPECT_EQ(AttackSpec::balanced().strategy, "balanced");
  EXPECT_EQ(AttackSpec::eclipse(0.1).strategy, "eclipse");
  EXPECT_EQ(AttackSpec::eclipse(0.1).victim_fraction, 0.1);
  EXPECT_EQ(AttackSpec::oscillating(4, 12).on_rounds, 4u);
  EXPECT_EQ(AttackSpec::oscillating(4, 12).off_rounds, 12u);
  EXPECT_EQ(AttackSpec::omission().strategy, "omission");
  EXPECT_TRUE(AttackSpec::bogus_swap().attach_bogus_swap_offer);
  // named() round-trips every builtin.
  for (const char* name :
       {"balanced", "eclipse", "oscillating", "omission", "bogus_swap"}) {
    EXPECT_EQ(AttackSpec::named(name).strategy, name);
    EXPECT_NO_THROW(AttackSpec::named(name).validate());
  }
}

TEST(AttackSpec, ValidationRejectsBadParameters) {
  AttackSpec spec;
  spec.strategy = "definitely-not-registered";
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = AttackSpec::eclipse(1.5);
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = AttackSpec::eclipse(0.1);
  spec.push_cap_fraction = -0.1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = AttackSpec::eclipse(0.1);
  spec.isolation_threshold = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = AttackSpec::oscillating(0, 8);
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = AttackSpec{};
  spec.strategy.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(StrategyRegistry, BuiltinsAreRegisteredAndSorted) {
  auto& registry = StrategyRegistry::instance();
  for (const char* name :
       {"balanced", "eclipse", "oscillating", "omission", "bogus_swap"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  EXPECT_FALSE(registry.contains("nope"));
  const auto entries = registry.entries();
  ASSERT_GE(entries.size(), 5u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].name, entries[i].name) << "entries not sorted";
    EXPECT_FALSE(entries[i].summary.empty());
  }
}

TEST(StrategyRegistry, UnknownStrategyThrowsWithCatalog) {
  AttackSpec spec;
  spec.strategy = "unknown-strategy";
  try {
    (void)make_strategy(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("unknown-strategy"), std::string::npos);
    EXPECT_NE(what.find("balanced"), std::string::npos) << "should list the catalog";
  }
}

TEST(StrategyRegistry, DuplicateRegistrationRejected) {
  EXPECT_THROW(
      StrategyRegistry::instance().add(
          "balanced", "dup",
          [](const AttackSpec&) { return make_strategy(AttackSpec::balanced()); }),
      std::invalid_argument);
}

/// A registered-from-outside strategy: balanced planning, but pushes only
/// on even rounds. Exercises the full custom-strategy path: registration →
/// AttackSpec::named → ScenarioSpec::attack → engaged telemetry.
class EvenRoundsStrategy final : public IStrategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "test_even_rounds"; }
  [[nodiscard]] bool active(Round r) const override { return r % 2 == 0; }
  void plan_pushes(Round r, Coordinator& coord,
                   std::vector<NodeId>& schedule) override {
    schedule.clear();
    if (!active(r) || coord.victims().empty() ||
        coord.config().push_budget_per_member == 0) {
      return;
    }
    const std::size_t total =
        coord.members().size() * coord.config().push_budget_per_member;
    for (std::size_t j = 0; j < total; ++j) {
      schedule.push_back(coord.victims()[j % coord.victims().size()]);
    }
  }
};

TEST(StrategyRegistry, CustomStrategyRunsThroughTheScenarioApi) {
  auto& registry = StrategyRegistry::instance();
  if (!registry.contains("test_even_rounds")) {
    registry.add("test_even_rounds", "test-only: attacks even rounds",
                 [](const AttackSpec&) { return std::make_unique<EvenRoundsStrategy>(); });
  }
  const auto result = scenario::ScenarioSpec()
                          .population(96)
                          .view_size(12)
                          .rounds(20)
                          .adversary(0.2)
                          .attack("test_even_rounds")
                          .seed(3)
                          .run();
  EXPECT_TRUE(result.attack.engaged);
  EXPECT_EQ(result.attack.strategy, "test_even_rounds");
  EXPECT_EQ(result.attack.rounds_active, 10u);  // even rounds of 20
  EXPECT_GT(result.steady_pollution, 0.0);
}

}  // namespace
}  // namespace raptee::adversary
