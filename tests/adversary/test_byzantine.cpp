#include "adversary/byzantine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace raptee::adversary {
namespace {

std::vector<NodeId> ids(std::uint32_t from, std::uint32_t count) {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < count; ++i) out.emplace_back(from + i);
  return out;
}

AttackConfig basic_attack() {
  AttackConfig config;
  config.push_budget_per_member = 8;
  config.pull_fanout = 8;
  config.advertised_view_size = 20;
  return config;
}

TEST(Coordinator, BalancedPushSpreadIsEvenWithinOne) {
  const auto members = ids(100, 10);
  const auto victims = ids(0, 40);
  Coordinator coord(members, victims, basic_attack(), 1);
  coord.begin_round(0);

  std::map<std::uint32_t, int> per_victim;
  std::size_t total = 0;
  for (NodeId m : members) {
    const auto targets = coord.push_allocation(m);
    EXPECT_EQ(targets.size(), 8u);
    total += targets.size();
    for (NodeId t : targets) ++per_victim[t.value];
  }
  EXPECT_EQ(total, 80u);  // 10 members x budget 8
  int min_hits = 1 << 30, max_hits = 0;
  for (NodeId v : victims) {
    const int hits = per_victim.count(v.value) ? per_victim[v.value] : 0;
    min_hits = std::min(min_hits, hits);
    max_hits = std::max(max_hits, hits);
  }
  EXPECT_LE(max_hits - min_hits, 1);  // the Brahms-optimal even spread
}

TEST(Coordinator, BeginRoundIsIdempotentPerRound) {
  const auto members = ids(100, 4);
  Coordinator coord(members, ids(0, 10), basic_attack(), 2);
  coord.begin_round(5);
  const auto first = coord.push_allocation(members[0]);
  coord.begin_round(5);  // same round: schedule must not be rebuilt
  EXPECT_EQ(coord.push_allocation(members[0]), first);
  coord.begin_round(6);  // new round: typically a different allocation
}

TEST(Coordinator, TargetedModeFocusesBudget) {
  AttackConfig config = basic_attack();
  config.targeted_victims = ids(0, 2);  // eclipse two nodes
  Coordinator coord(ids(100, 5), ids(0, 40), config, 3);
  coord.begin_round(0);
  for (NodeId m : ids(100, 5)) {
    for (NodeId t : coord.push_allocation(m)) {
      EXPECT_LT(t.value, 2u);
    }
  }
}

TEST(Coordinator, FaultyViewDrawsFromMembersOnly) {
  const auto members = ids(100, 30);
  Coordinator coord(members, ids(0, 10), basic_attack(), 4);
  const auto view = coord.faulty_view(20);
  EXPECT_EQ(view.size(), 20u);
  std::set<std::uint32_t> uniq;
  for (NodeId id : view) {
    EXPECT_TRUE(coord.is_member(id));
    uniq.insert(id.value);
  }
  EXPECT_EQ(uniq.size(), 20u);  // enough members for distinct entries
}

TEST(Coordinator, FaultyViewRepeatsWhenMembersScarce) {
  Coordinator coord(ids(100, 3), ids(0, 10), basic_attack(), 5);
  const auto view = coord.faulty_view(9);
  EXPECT_EQ(view.size(), 9u);
  for (NodeId id : view) EXPECT_TRUE(coord.is_member(id));
}

TEST(Coordinator, PullTargetsAreVictims) {
  Coordinator coord(ids(100, 3), ids(0, 10), basic_attack(), 6);
  const auto targets = coord.pull_targets(NodeId{100});
  EXPECT_EQ(targets.size(), 8u);
  for (NodeId t : targets) EXPECT_LT(t.value, 10u);
}

TEST(Coordinator, MembershipOracle) {
  Coordinator coord(ids(100, 3), ids(0, 10), basic_attack(), 7);
  EXPECT_TRUE(coord.is_member(NodeId{101}));
  EXPECT_FALSE(coord.is_member(NodeId{5}));
  EXPECT_FALSE(coord.is_member(NodeId{999}));
}

TEST(Coordinator, EmptyMembersRejected) {
  EXPECT_THROW(Coordinator({}, ids(0, 10), basic_attack(), 8), std::invalid_argument);
}

TEST(ByzantineNode, PushesFollowCoordinatorSchedule) {
  auto coord = std::make_shared<Coordinator>(ids(100, 4), ids(0, 20), basic_attack(), 9);
  ByzantineNode node(NodeId{101}, coord, 1);
  node.begin_round(0);
  const auto targets = node.push_targets();
  EXPECT_EQ(targets.size(), 8u);
  EXPECT_EQ(targets, coord->push_allocation(NodeId{101}));
}

TEST(ByzantineNode, PushAdvertisesFaultyIds) {
  auto coord = std::make_shared<Coordinator>(ids(100, 4), ids(0, 20), basic_attack(), 10);
  ByzantineNode node(NodeId{100}, coord, 2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(coord->is_member(node.make_push().sender));
  }
}

TEST(ByzantineNode, PullAnswersAreAllFaulty) {
  auto coord = std::make_shared<Coordinator>(ids(100, 30), ids(0, 20), basic_attack(), 11);
  ByzantineNode node(NodeId{100}, coord, 3);
  const auto reply = node.answer_pull(wire::PullRequest{NodeId{5}, {}});
  EXPECT_EQ(reply.sender, NodeId{100});
  EXPECT_EQ(reply.view.size(), 20u);
  for (NodeId id : reply.view) EXPECT_TRUE(coord->is_member(id));
}

TEST(ByzantineNode, NeverAnswersSwaps) {
  auto coord = std::make_shared<Coordinator>(ids(100, 4), ids(0, 20), basic_attack(), 12);
  ByzantineNode node(NodeId{100}, coord, 4);
  wire::AuthConfirm confirm;
  confirm.sender = NodeId{0};
  confirm.swap_offer = std::vector<NodeId>{NodeId{1}};
  EXPECT_FALSE(node.process_confirm(confirm).has_value());
}

TEST(ByzantineNode, BogusSwapOfferKnobControlsConfirms) {
  AttackConfig config = basic_attack();
  config.attach_bogus_swap_offer = true;
  auto coord = std::make_shared<Coordinator>(ids(100, 4), ids(0, 20), config, 13);
  ByzantineNode node(NodeId{100}, coord, 5);
  const auto confirm = node.process_pull_reply(wire::PullReply{NodeId{5}, {}, {}});
  EXPECT_TRUE(confirm.swap_offer.has_value());

  auto coord2 = std::make_shared<Coordinator>(ids(100, 4), ids(0, 20), basic_attack(), 13);
  ByzantineNode node2(NodeId{100}, coord2, 5);
  EXPECT_FALSE(node2.process_pull_reply(wire::PullReply{NodeId{5}, {}, {}})
                   .swap_offer.has_value());
}

TEST(ByzantineNode, PullFanoutMatchesConfig) {
  auto coord = std::make_shared<Coordinator>(ids(100, 4), ids(0, 20), basic_attack(), 14);
  ByzantineNode node(NodeId{100}, coord, 6);
  node.begin_round(0);
  EXPECT_EQ(node.pull_targets().size(), 8u);
}

}  // namespace
}  // namespace raptee::adversary
