#include "adversary/byzantine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "adversary/strategy.hpp"

namespace raptee::adversary {
namespace {

std::vector<NodeId> ids(std::uint32_t from, std::uint32_t count) {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < count; ++i) out.emplace_back(from + i);
  return out;
}

AttackConfig basic_attack() {
  AttackConfig config;
  config.push_budget_per_member = 8;
  config.pull_fanout = 8;
  config.advertised_view_size = 20;
  return config;
}

TEST(Coordinator, BalancedPushSpreadIsEvenWithinOne) {
  const auto members = ids(100, 10);
  const auto victims = ids(0, 40);
  Coordinator coord(members, victims, basic_attack(), 1);
  coord.begin_round(0);

  std::map<std::uint32_t, int> per_victim;
  std::size_t total = 0;
  for (NodeId m : members) {
    const auto targets = coord.push_allocation(m);
    EXPECT_EQ(targets.size(), 8u);
    total += targets.size();
    for (NodeId t : targets) ++per_victim[t.value];
  }
  EXPECT_EQ(total, 80u);  // 10 members x budget 8
  int min_hits = 1 << 30, max_hits = 0;
  for (NodeId v : victims) {
    const int hits = per_victim.count(v.value) ? per_victim[v.value] : 0;
    min_hits = std::min(min_hits, hits);
    max_hits = std::max(max_hits, hits);
  }
  EXPECT_LE(max_hits - min_hits, 1);  // the Brahms-optimal even spread
}

TEST(Coordinator, BeginRoundIsIdempotentPerRound) {
  const auto members = ids(100, 4);
  Coordinator coord(members, ids(0, 10), basic_attack(), 2);
  coord.begin_round(5);
  const auto first = coord.push_allocation(members[0]);
  coord.begin_round(5);  // same round: schedule must not be rebuilt
  EXPECT_EQ(coord.push_allocation(members[0]), first);
  coord.begin_round(6);  // new round: typically a different allocation
}

TEST(Coordinator, TargetedModeFocusesBudget) {
  AttackConfig config = basic_attack();
  config.targeted_victims = ids(0, 2);  // eclipse two nodes
  Coordinator coord(ids(100, 5), ids(0, 40), config, 3);
  coord.begin_round(0);
  for (NodeId m : ids(100, 5)) {
    for (NodeId t : coord.push_allocation(m)) {
      EXPECT_LT(t.value, 2u);
    }
  }
}

TEST(Coordinator, FaultyViewDrawsFromMembersOnly) {
  const auto members = ids(100, 30);
  Coordinator coord(members, ids(0, 10), basic_attack(), 4);
  const auto view = coord.faulty_view(20);
  EXPECT_EQ(view.size(), 20u);
  std::set<std::uint32_t> uniq;
  for (NodeId id : view) {
    EXPECT_TRUE(coord.is_member(id));
    uniq.insert(id.value);
  }
  EXPECT_EQ(uniq.size(), 20u);  // enough members for distinct entries
}

TEST(Coordinator, FaultyViewRepeatsWhenMembersScarce) {
  Coordinator coord(ids(100, 3), ids(0, 10), basic_attack(), 5);
  const auto view = coord.faulty_view(9);
  EXPECT_EQ(view.size(), 9u);
  for (NodeId id : view) EXPECT_TRUE(coord.is_member(id));
}

TEST(Coordinator, PullTargetsAreVictims) {
  Coordinator coord(ids(100, 3), ids(0, 10), basic_attack(), 6);
  const auto targets = coord.pull_targets(NodeId{100});
  EXPECT_EQ(targets.size(), 8u);
  for (NodeId t : targets) EXPECT_LT(t.value, 10u);
}

TEST(Coordinator, MembershipOracle) {
  Coordinator coord(ids(100, 3), ids(0, 10), basic_attack(), 7);
  EXPECT_TRUE(coord.is_member(NodeId{101}));
  EXPECT_FALSE(coord.is_member(NodeId{5}));
  EXPECT_FALSE(coord.is_member(NodeId{999}));
}

TEST(Coordinator, EmptyMembersRejected) {
  EXPECT_THROW(Coordinator({}, ids(0, 10), basic_attack(), 8), std::invalid_argument);
}

TEST(ByzantineNode, PushesFollowCoordinatorSchedule) {
  auto coord = std::make_shared<Coordinator>(ids(100, 4), ids(0, 20), basic_attack(), 9);
  ByzantineNode node(NodeId{101}, coord, 1);
  node.begin_round(0);
  const auto targets = node.push_targets();
  EXPECT_EQ(targets.size(), 8u);
  EXPECT_EQ(targets, coord->push_allocation(NodeId{101}));
}

TEST(ByzantineNode, PushAdvertisesFaultyIds) {
  auto coord = std::make_shared<Coordinator>(ids(100, 4), ids(0, 20), basic_attack(), 10);
  ByzantineNode node(NodeId{100}, coord, 2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(coord->is_member(node.make_push().sender));
  }
}

TEST(ByzantineNode, PullAnswersAreAllFaulty) {
  auto coord = std::make_shared<Coordinator>(ids(100, 30), ids(0, 20), basic_attack(), 11);
  ByzantineNode node(NodeId{100}, coord, 3);
  const auto reply = node.answer_pull(wire::PullRequest{NodeId{5}, {}});
  EXPECT_EQ(reply.sender, NodeId{100});
  EXPECT_EQ(reply.view.size(), 20u);
  for (NodeId id : reply.view) EXPECT_TRUE(coord->is_member(id));
}

TEST(ByzantineNode, NeverAnswersSwaps) {
  auto coord = std::make_shared<Coordinator>(ids(100, 4), ids(0, 20), basic_attack(), 12);
  ByzantineNode node(NodeId{100}, coord, 4);
  wire::AuthConfirm confirm;
  confirm.sender = NodeId{0};
  confirm.swap_offer = std::vector<NodeId>{NodeId{1}};
  EXPECT_FALSE(node.process_confirm(confirm).has_value());
}

TEST(ByzantineNode, BogusSwapOfferKnobControlsConfirms) {
  AttackConfig config = basic_attack();
  config.attach_bogus_swap_offer = true;
  auto coord = std::make_shared<Coordinator>(ids(100, 4), ids(0, 20), config, 13);
  ByzantineNode node(NodeId{100}, coord, 5);
  const auto confirm = node.process_pull_reply(wire::PullReply{NodeId{5}, {}, {}});
  EXPECT_TRUE(confirm.swap_offer.has_value());

  auto coord2 = std::make_shared<Coordinator>(ids(100, 4), ids(0, 20), basic_attack(), 13);
  ByzantineNode node2(NodeId{100}, coord2, 5);
  EXPECT_FALSE(node2.process_pull_reply(wire::PullReply{NodeId{5}, {}, {}})
                   .swap_offer.has_value());
}

TEST(ByzantineNode, PullFanoutMatchesConfig) {
  auto coord = std::make_shared<Coordinator>(ids(100, 4), ids(0, 20), basic_attack(), 14);
  ByzantineNode node(NodeId{100}, coord, 6);
  node.begin_round(0);
  EXPECT_EQ(node.pull_targets().size(), 8u);
}

// ---------------------------------------------------------------- slices

TEST(Coordinator, PushSliceAndScratchOverloadMatchAllocation) {
  const auto members = ids(100, 6);
  Coordinator coord(members, ids(0, 30), basic_attack(), 21);
  coord.begin_round(0);
  std::vector<NodeId> scratch;
  for (NodeId m : members) {
    const auto allocated = coord.push_allocation(m);
    const auto slice = coord.push_slice(m);
    EXPECT_TRUE(std::equal(allocated.begin(), allocated.end(), slice.begin(),
                           slice.end()));
    coord.push_allocation(m, scratch);
    EXPECT_EQ(scratch, allocated);
  }
  // The scratch keeps its capacity across refills (the zero-allocation
  // contract of the hot path).
  coord.push_allocation(members[0], scratch);
  const auto capacity = scratch.capacity();
  coord.begin_round(1);
  coord.push_allocation(members[0], scratch);
  EXPECT_EQ(scratch.capacity(), capacity);
}

TEST(ByzantineNode, ScratchPushTargetsMatchesAllocatingForm) {
  auto coord = std::make_shared<Coordinator>(ids(100, 4), ids(0, 20), basic_attack(), 22);
  ByzantineNode node(NodeId{102}, coord, 7);
  node.begin_round(0);
  std::vector<NodeId> scratch;
  node.push_targets(scratch);
  EXPECT_EQ(scratch, node.push_targets());
}

// ----------------------------------------------- victims under churn

TEST(Coordinator, SetVictimsRedirectsNextRoundsSchedule) {
  // A victim dies mid-eclipse: the experiment layer narrows the victim
  // set; from the next planned round on, pushes stop targeting the dead
  // node. Rejoin restores it the same way.
  AttackConfig config = basic_attack();
  Coordinator coord(ids(100, 5), ids(0, 10), config, 31);
  coord.begin_round(0);

  coord.set_victims(ids(1, 9));  // node 0 crashed
  coord.begin_round(1);
  for (NodeId m : ids(100, 5)) {
    for (NodeId t : coord.push_allocation(m)) EXPECT_NE(t, NodeId{0});
  }

  coord.set_victims(ids(0, 10));  // node 0 rejoined
  bool targeted_again = false;
  for (Round r = 2; r < 12 && !targeted_again; ++r) {
    coord.begin_round(r);
    for (NodeId m : ids(100, 5)) {
      for (NodeId t : coord.push_allocation(m)) {
        if (t == NodeId{0}) targeted_again = true;
      }
    }
  }
  EXPECT_TRUE(targeted_again) << "rejoined victim never re-targeted";
}

TEST(Coordinator, SetTargetedNarrowsEclipseMidRun) {
  AttackConfig config = basic_attack();
  config.targeted_victims = ids(0, 2);
  Coordinator coord(ids(100, 5), ids(0, 40), config, 32);
  coord.begin_round(0);
  for (NodeId t : coord.push_allocation(NodeId{100})) EXPECT_LT(t.value, 2u);

  coord.set_targeted(ids(1, 1));  // victim 0 died mid-eclipse
  coord.begin_round(1);
  for (NodeId m : ids(100, 5)) {
    for (NodeId t : coord.push_allocation(m)) EXPECT_EQ(t, NodeId{1});
  }

  coord.set_targeted({});  // all victims gone: fall back to the full pool
  coord.begin_round(2);
  std::set<std::uint32_t> seen;
  for (NodeId m : ids(100, 5)) {
    for (NodeId t : coord.push_allocation(m)) seen.insert(t.value);
  }
  EXPECT_GT(seen.size(), 2u) << "schedule did not widen back to the victim pool";
}

// ---------------------------------------------------------- strategies

std::shared_ptr<Coordinator> make_coordinator(const AttackSpec& spec,
                                              AttackConfig config,
                                              std::uint64_t seed = 77) {
  if (spec.strategy == "eclipse") config.targeted_victims = ids(0, 2);
  config.attach_bogus_swap_offer = spec.attach_bogus_swap_offer;
  return std::make_shared<Coordinator>(ids(100, 5), ids(0, 20), config, seed,
                                       make_strategy(spec));
}

TEST(Strategies, OmissionRefusesPullsAndPushesNothing) {
  auto coord = make_coordinator(AttackSpec::omission(), basic_attack());
  ByzantineNode node(NodeId{100}, coord, 1);
  node.begin_round(0);
  EXPECT_FALSE(node.answers_pull(NodeId{5}));
  EXPECT_TRUE(node.push_targets().empty());
  // Camouflage pulls still go out (the adversary keeps harvesting).
  EXPECT_EQ(node.pull_targets().size(), 8u);
}

TEST(Strategies, BalancedAnswersPullsAndPushes) {
  auto coord = make_coordinator(AttackSpec::balanced(), basic_attack());
  ByzantineNode node(NodeId{100}, coord, 1);
  node.begin_round(0);
  EXPECT_TRUE(node.answers_pull(NodeId{5}));
  EXPECT_EQ(node.push_targets().size(), 8u);
}

TEST(Strategies, OscillatingFollowsItsDutyCycle) {
  auto coord = make_coordinator(AttackSpec::oscillating(3, 2), basic_attack());
  ByzantineNode node(NodeId{100}, coord, 1);
  std::uint64_t active_rounds = 0;
  for (Round r = 0; r < 10; ++r) {
    node.begin_round(r);
    const bool pushes = !node.push_targets().empty();
    const bool expect_active = (r % 5) < 3;
    EXPECT_EQ(pushes, expect_active) << "round " << r;
    if (expect_active) ++active_rounds;
  }
  EXPECT_EQ(coord->rounds_active(), active_rounds);
}

TEST(Strategies, OscillatingCamouflagesAnswersOffDuty) {
  auto coord = make_coordinator(AttackSpec::oscillating(1, 1), basic_attack());
  ByzantineNode node(NodeId{100}, coord, 1);

  node.begin_round(0);  // on duty: poisoned answer, all members
  auto reply = node.answer_pull(wire::PullRequest{NodeId{5}, {}});
  for (NodeId id : reply.view) EXPECT_TRUE(coord->is_member(id));

  node.begin_round(1);  // off duty: camouflage answer, all correct IDs
  reply = node.answer_pull(wire::PullRequest{NodeId{5}, {}});
  EXPECT_EQ(reply.view.size(), 20u);
  for (NodeId id : reply.view) EXPECT_FALSE(coord->is_member(id));
}

TEST(Strategies, EclipseCapsPerVictimPushesAndSpendsTheRest) {
  AttackSpec spec = AttackSpec::eclipse();
  spec.push_cap_fraction = 0.25;  // cap = 2 of budget 8
  auto coord = make_coordinator(spec, basic_attack());
  coord->begin_round(0);
  std::map<std::uint32_t, int> hits;
  std::size_t total = 0;
  for (NodeId m : ids(100, 5)) {
    for (NodeId t : coord->push_allocation(m)) {
      ++hits[t.value];
      ++total;
    }
  }
  // Focused pushes: victims 0 and 1 get cap = 2 each; the rest of the
  // 5 x 8 budget is spent as balanced background over all correct nodes.
  EXPECT_EQ(total, 40u);
  EXPECT_GE(hits[0], 2);
  EXPECT_GE(hits[1], 2);
  std::size_t outside = 0;
  std::set<std::uint32_t> outside_nodes;
  for (const auto& [id, count] : hits) {
    if (id >= 2) {
      outside += static_cast<std::size_t>(count);
      outside_nodes.insert(id);
    }
  }
  // 36 background pushes round-robin over all 20 correct nodes (the two
  // focused victims also appear in the background rotation).
  EXPECT_GE(outside, 30u);
  EXPECT_EQ(outside_nodes.size(), 18u);
}

TEST(Strategies, BogusSwapAlwaysAttachesOffers) {
  auto coord = make_coordinator(AttackSpec::bogus_swap(), basic_attack());
  ByzantineNode node(NodeId{100}, coord, 1);
  node.begin_round(0);
  const auto confirm = node.process_pull_reply(wire::PullReply{NodeId{5}, {}, {}});
  ASSERT_TRUE(confirm.swap_offer.has_value());
  for (NodeId id : *confirm.swap_offer) EXPECT_TRUE(coord->is_member(id));
}

}  // namespace
}  // namespace raptee::adversary
