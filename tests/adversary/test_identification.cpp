// §VI-A identification attack: synthetic observation streams with known
// ground truth, verifying the classifier and its scoring.
#include "adversary/identification.hpp"

#include <gtest/gtest.h>

namespace raptee::adversary {
namespace {

// Population layout for these tests:
//   ids 0..9   honest
//   ids 10..11 trusted
//   ids 90..99 Byzantine
bool is_byz(NodeId id) { return id.value >= 90; }
bool is_trusted(NodeId id) { return id.value == 10 || id.value == 11; }

/// View with `byz_count` Byzantine ids out of `total`.
std::vector<NodeId> view_with(std::size_t byz_count, std::size_t total) {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < byz_count; ++i) out.emplace_back(90 + (i % 10));
  for (std::size_t i = byz_count; i < total; ++i) out.emplace_back(i % 10);
  return out;
}

TEST(Identification, RequiresOracles) {
  EXPECT_THROW(IdentificationAttack({}, is_trusted), std::invalid_argument);
  EXPECT_THROW(IdentificationAttack(is_byz, {}), std::invalid_argument);
}

TEST(Identification, FlagsCleanerTrustedNodes) {
  IdentificationAttack attack(is_byz, is_trusted);
  // Honest nodes answer with 50% Byzantine views; trusted with 10%.
  for (std::uint32_t honest = 0; honest < 10; ++honest) {
    attack.on_pull_reply_delivered(1, NodeId{honest}, NodeId{95}, view_with(10, 20));
  }
  attack.on_pull_reply_delivered(1, NodeId{10}, NodeId{95}, view_with(2, 20));
  attack.on_pull_reply_delivered(1, NodeId{11}, NodeId{96}, view_with(2, 20));

  const auto result = attack.evaluate(1, 0.10);
  EXPECT_EQ(result.flagged, 2u);
  EXPECT_EQ(result.true_positives, 2u);
  EXPECT_DOUBLE_EQ(result.precision, 1.0);
  EXPECT_DOUBLE_EQ(result.recall, 1.0);
  EXPECT_DOUBLE_EQ(result.f1, 1.0);
  EXPECT_EQ(result.trusted_total, 2u);
  EXPECT_EQ(result.evaluated_at, 1u);
}

TEST(Identification, IndistinguishableViewsYieldNoFlags) {
  IdentificationAttack attack(is_byz, is_trusted);
  for (std::uint32_t node = 0; node < 12; ++node) {
    attack.on_pull_reply_delivered(1, NodeId{node}, NodeId{95}, view_with(8, 20));
  }
  const auto result = attack.evaluate(1);
  EXPECT_EQ(result.flagged, 0u);
  EXPECT_DOUBLE_EQ(result.recall, 0.0);
  EXPECT_DOUBLE_EQ(result.f1, 0.0);
}

TEST(Identification, FalsePositivesLowerPrecision) {
  IdentificationAttack attack(is_byz, is_trusted);
  // Honest node 0 happens to have a clean view too (false positive).
  attack.on_pull_reply_delivered(1, NodeId{0}, NodeId{95}, view_with(1, 20));
  attack.on_pull_reply_delivered(1, NodeId{10}, NodeId{95}, view_with(1, 20));
  for (std::uint32_t honest = 1; honest < 10; ++honest) {
    attack.on_pull_reply_delivered(1, NodeId{honest}, NodeId{95}, view_with(10, 20));
  }
  const auto result = attack.evaluate(1, 0.10);
  EXPECT_EQ(result.flagged, 2u);
  EXPECT_EQ(result.true_positives, 1u);
  EXPECT_DOUBLE_EQ(result.precision, 0.5);
  // Recall over observed trusted (only node 10 observed): 1/1.
  EXPECT_DOUBLE_EQ(result.recall, 1.0);
}

TEST(Identification, ThresholdControlsSensitivity) {
  IdentificationAttack attack(is_byz, is_trusted);
  for (std::uint32_t honest = 0; honest < 10; ++honest) {
    attack.on_pull_reply_delivered(1, NodeId{honest}, NodeId{95}, view_with(10, 20));
  }
  // Trusted only slightly cleaner: 40% vs 50%.
  attack.on_pull_reply_delivered(1, NodeId{10}, NodeId{95}, view_with(8, 20));
  EXPECT_EQ(attack.evaluate(1, /*threshold=*/0.05).flagged, 1u);
  EXPECT_EQ(attack.evaluate(1, /*threshold=*/0.20).flagged, 0u);
}

TEST(Identification, ObservationsAccumulateAcrossRounds) {
  IdentificationAttack attack(is_byz, is_trusted);
  // Noisy per-round snapshots average out: trusted node alternates 20%/30%,
  // honest nodes 50%/60%.
  for (Round r = 0; r < 10; ++r) {
    for (std::uint32_t honest = 0; honest < 6; ++honest) {
      attack.on_pull_reply_delivered(r, NodeId{honest}, NodeId{95},
                                     view_with(r % 2 ? 10 : 12, 20));
    }
    attack.on_pull_reply_delivered(r, NodeId{10}, NodeId{95},
                                   view_with(r % 2 ? 4 : 6, 20));
  }
  const auto result = attack.evaluate(10, 0.10);
  EXPECT_EQ(result.flagged, 1u);
  EXPECT_DOUBLE_EQ(result.precision, 1.0);
}

TEST(Identification, OnlyByzantineReceiversObserve) {
  IdentificationAttack attack(is_byz, is_trusted);
  // Reply delivered to an honest node: invisible to the adversary.
  attack.on_pull_reply_delivered(1, NodeId{10}, NodeId{5}, view_with(0, 20));
  EXPECT_EQ(attack.observed_victims(), 0u);
  // Reply from a Byzantine responder: not a victim observation.
  attack.on_pull_reply_delivered(1, NodeId{95}, NodeId{96}, view_with(20, 20));
  EXPECT_EQ(attack.observed_victims(), 0u);
  // Genuine observation.
  attack.on_pull_reply_delivered(1, NodeId{3}, NodeId{95}, view_with(5, 20));
  EXPECT_EQ(attack.observed_victims(), 1u);
}

TEST(Identification, EmptyLedgerEvaluatesToZero) {
  IdentificationAttack attack(is_byz, is_trusted);
  const auto result = attack.evaluate(5);
  EXPECT_EQ(result.flagged, 0u);
  EXPECT_DOUBLE_EQ(result.f1, 0.0);
}

TEST(Identification, ResetClearsLedger) {
  IdentificationAttack attack(is_byz, is_trusted);
  attack.on_pull_reply_delivered(1, NodeId{3}, NodeId{95}, view_with(5, 20));
  EXPECT_EQ(attack.observed_victims(), 1u);
  attack.reset();
  EXPECT_EQ(attack.observed_victims(), 0u);
}

TEST(Identification, EmptyViewCountsAsCleanObservation) {
  IdentificationAttack attack(is_byz, is_trusted);
  attack.on_pull_reply_delivered(1, NodeId{3}, NodeId{95}, {});
  EXPECT_EQ(attack.observed_victims(), 1u);
}

}  // namespace
}  // namespace raptee::adversary
