// EventLoop unit tests: fd readiness dispatch, timers (ordering and
// cancellation), cross-thread post/stop, and reentrant removal of fds from
// inside their own callbacks (the teardown-during-dispatch case the bus
// relies on).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/socket.hpp"

namespace raptee::net {
namespace {

struct Pipe {
  Fd read_end;
  Fd write_end;
  Pipe() {
    int ends[2];
    EXPECT_EQ(::pipe(ends), 0);
    set_nonblocking(ends[0]);
    set_nonblocking(ends[1]);
    read_end = Fd(ends[0]);
    write_end = Fd(ends[1]);
  }
};

TEST(EventLoop, PostRunsOnLoopThreadAndStopReturns) {
  EventLoop loop;
  std::atomic<int> ran{0};
  std::thread::id loop_tid;
  loop.post([&] {
    loop_tid = std::this_thread::get_id();
    ran.fetch_add(1);
    loop.stop();
  });
  std::thread t([&] { loop.run(); });
  const std::thread::id runner_tid = t.get_id();
  t.join();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(loop_tid, runner_tid);
}

TEST(EventLoop, ReadableFdDispatches) {
  EventLoop loop;
  Pipe pipe;
  std::vector<std::uint8_t> got;
  loop.add_fd(pipe.read_end.get(), EventLoop::kReadable, [&](std::uint32_t events) {
    EXPECT_TRUE(events & EventLoop::kReadable);
    std::uint8_t buf[16];
    const long n = read_some(pipe.read_end.get(), buf, sizeof buf);
    for (long i = 0; i < n; ++i) got.push_back(buf[i]);
    if (!got.empty()) loop.stop();
  });
  const std::uint8_t byte = 42;
  ASSERT_GT(write_some(pipe.write_end.get(), &byte, 1), 0);
  loop.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 42);
}

TEST(EventLoop, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.post([&] {
    loop.run_after(std::chrono::milliseconds(30), [&] {
      order.push_back(3);
      loop.stop();
    });
    loop.run_after(std::chrono::milliseconds(1), [&] { order.push_back(1); });
    loop.run_after(std::chrono::milliseconds(15), [&] { order.push_back(2); });
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, CancelledTimerNeverFires) {
  EventLoop loop;
  bool cancelled_fired = false;
  loop.post([&] {
    const EventLoop::TimerId id =
        loop.run_after(std::chrono::milliseconds(5), [&] { cancelled_fired = true; });
    loop.cancel_timer(id);
    loop.run_after(std::chrono::milliseconds(20), [&] { loop.stop(); });
  });
  loop.run();
  EXPECT_FALSE(cancelled_fired);
}

TEST(EventLoop, TimerMayCancelALaterTimerDuringDispatch) {
  // Cancel-during-dispatch: an earlier timer's callback cancels a later
  // timer that is already armed (possibly due in the same poll pass). The
  // cancelled callback must never run — the heap may not hand out a stale
  // entry it popped before the cancellation.
  EventLoop loop;
  bool victim_fired = false;
  loop.post([&] {
    EventLoop::TimerId victim = loop.run_after(std::chrono::milliseconds(2),
                                               [&] { victim_fired = true; });
    loop.run_after(std::chrono::milliseconds(1),
                   [&, victim] { loop.cancel_timer(victim); });
    loop.run_after(std::chrono::milliseconds(20), [&] { loop.stop(); });
  });
  loop.run();
  EXPECT_FALSE(victim_fired);
}

TEST(EventLoop, IdenticalDeadlinesFireInCreationOrder) {
  // Two timers armed for the same deadline must dispatch in the order they
  // were created — the (deadline, id) tie-break the evt::Scheduler mirrors
  // with its (virtual_time, seq) key.
  EventLoop loop;
  std::vector<int> order;
  loop.post([&] {
    const auto deadline = std::chrono::milliseconds(10);
    loop.run_after(deadline, [&] { order.push_back(1); });
    loop.run_after(deadline, [&] { order.push_back(2); });
    loop.run_after(deadline, [&] { order.push_back(3); });
    loop.run_after(std::chrono::milliseconds(30), [&] { loop.stop(); });
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, HandlerMayRemoveItsOwnFd) {
  EventLoop loop;
  Pipe pipe;
  int calls = 0;
  loop.add_fd(pipe.read_end.get(), EventLoop::kReadable, [&](std::uint32_t) {
    ++calls;
    loop.remove_fd(pipe.read_end.get());  // reentrant removal
    loop.run_after(std::chrono::milliseconds(10), [&] { loop.stop(); });
  });
  const std::uint8_t byte = 1;
  ASSERT_GT(write_some(pipe.write_end.get(), &byte, 1), 0);
  loop.run();
  EXPECT_EQ(calls, 1);  // byte left unread: without removal this would spin
}

TEST(EventLoop, HandlerMayRemoveAnotherPendingFd) {
  // Both pipes become readable in the same poll pass; whichever handler
  // runs first removes the other — the loop must not dispatch to the
  // removed entry (delivery-time lookup).
  EventLoop loop;
  Pipe a, b;
  std::atomic<int> dispatched{0};
  const auto handler = [&](int self_fd, int other_fd) {
    return [&, self_fd, other_fd](std::uint32_t) {
      dispatched.fetch_add(1);
      std::uint8_t buf[4];
      (void)read_some(self_fd, buf, sizeof buf);
      loop.remove_fd(other_fd);
      loop.run_after(std::chrono::milliseconds(5), [&] { loop.stop(); });
    };
  };
  loop.add_fd(a.read_end.get(), EventLoop::kReadable,
              handler(a.read_end.get(), b.read_end.get()));
  loop.add_fd(b.read_end.get(), EventLoop::kReadable,
              handler(b.read_end.get(), a.read_end.get()));
  const std::uint8_t byte = 1;
  ASSERT_GT(write_some(a.write_end.get(), &byte, 1), 0);
  ASSERT_GT(write_some(b.write_end.get(), &byte, 1), 0);
  loop.run();
  EXPECT_EQ(dispatched.load(), 1);
}

TEST(EventLoop, SetInterestTogglesWritability) {
  EventLoop loop;
  Pipe pipe;
  int writable_events = 0;
  loop.add_fd(pipe.write_end.get(), 0, [&](std::uint32_t events) {
    if (events & EventLoop::kWritable) {
      ++writable_events;
      loop.set_interest(pipe.write_end.get(), 0);  // disarm
      loop.run_after(std::chrono::milliseconds(10), [&] { loop.stop(); });
    }
  });
  // An empty pipe is immediately writable — but interest is 0, so nothing
  // dispatches until we arm it.
  loop.post([&] {
    loop.run_after(std::chrono::milliseconds(5), [&] {
      EXPECT_EQ(writable_events, 0);
      loop.set_interest(pipe.write_end.get(), EventLoop::kWritable);
    });
  });
  loop.run();
  EXPECT_EQ(writable_events, 1);
}

TEST(EventLoop, PostFromAnotherThreadWakesTheLoop) {
  EventLoop loop;
  std::atomic<bool> ran{false};
  std::thread runner([&] { loop.run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // loop is idle
  loop.post([&] {
    ran.store(true);
    loop.stop();
  });
  runner.join();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace raptee::net
