// Frame codec robustness: a TCP receiver sees arbitrary byte-slice
// boundaries — a length prefix truncated mid-u32, a payload dribbled in
// one byte at a time, many frames coalesced into one read. The splitter
// must reassemble exactly the sent payloads for EVERY split pattern, and
// reject oversized length prefixes (a Byzantine length bomb) without
// allocating. The split-point fuzz below enumerates deterministic
// pseudo-random chunkings of a multi-frame stream (runs under the ASan CI
// job; any out-of-bounds reassembly fails there loudly).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "net/frame.hpp"

namespace raptee::net {
namespace {

std::vector<std::uint8_t> pattern_payload(std::size_t len, std::uint8_t salt) {
  std::vector<std::uint8_t> payload(len);
  for (std::size_t i = 0; i < len; ++i) {
    payload[i] = static_cast<std::uint8_t>(salt + i * 31);
  }
  return payload;
}

TEST(Frame, AppendProducesLittleEndianPrefix) {
  std::vector<std::uint8_t> out;
  const std::vector<std::uint8_t> payload = {0xAA, 0xBB, 0xCC};
  append_frame(out, payload.data(), payload.size());
  ASSERT_EQ(out.size(), kFrameHeader + 3);
  EXPECT_EQ(out[0], 3u);  // little-endian, matching the wire:: codec
  EXPECT_EQ(out[1], 0u);
  EXPECT_EQ(out[2], 0u);
  EXPECT_EQ(out[3], 0u);
  EXPECT_EQ(out[4], 0xAA);
}

TEST(Frame, EmptyPayloadRoundTrips) {
  std::vector<std::uint8_t> stream;
  append_frame(stream, nullptr, 0);
  FrameSplitter splitter;
  splitter.feed(stream.data(), stream.size());
  std::vector<std::uint8_t> payload{1, 2, 3};
  ASSERT_TRUE(splitter.next(payload));
  EXPECT_TRUE(payload.empty());
  EXPECT_FALSE(splitter.next(payload));
  EXPECT_EQ(splitter.buffered(), 0u);
}

TEST(Frame, TruncatedLengthPrefixIsNotAFrame) {
  std::vector<std::uint8_t> stream;
  const std::vector<std::uint8_t> payload = pattern_payload(50, 7);
  append_frame(stream, payload.data(), payload.size());
  FrameSplitter splitter;
  std::vector<std::uint8_t> out;
  // Feed the prefix one byte at a time: never a frame until byte 4 + body.
  for (std::size_t i = 0; i < kFrameHeader - 1; ++i) {
    splitter.feed(&stream[i], 1);
    EXPECT_FALSE(splitter.next(out)) << "frame yielded at prefix byte " << i;
    EXPECT_EQ(splitter.buffered(), i + 1);
  }
  splitter.feed(&stream[kFrameHeader - 1], 1);
  EXPECT_FALSE(splitter.next(out));  // header complete, body missing
  splitter.feed(stream.data() + kFrameHeader, stream.size() - kFrameHeader);
  ASSERT_TRUE(splitter.next(out));
  EXPECT_EQ(out, payload);
}

TEST(Frame, TruncatedBodyYieldsNothingUntilComplete) {
  std::vector<std::uint8_t> stream;
  const std::vector<std::uint8_t> payload = pattern_payload(257, 3);
  append_frame(stream, payload.data(), payload.size());
  FrameSplitter splitter;
  std::vector<std::uint8_t> out;
  splitter.feed(stream.data(), stream.size() - 1);
  EXPECT_FALSE(splitter.next(out));
  splitter.feed(stream.data() + stream.size() - 1, 1);
  ASSERT_TRUE(splitter.next(out));
  EXPECT_EQ(out, payload);
}

// The core fuzz: a stream of frames with adversarial sizes (0, 1, around
// the header size, a few KB), chopped at pseudo-random split points by 64
// deterministic seeds. Every chunking must reassemble the identical
// payload sequence.
TEST(Frame, SplitPointFuzzReassemblesEveryChunking) {
  std::vector<std::vector<std::uint8_t>> payloads;
  const std::size_t sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 64, 255, 256, 257, 4096};
  std::uint8_t salt = 1;
  for (const std::size_t size : sizes) payloads.push_back(pattern_payload(size, salt++));
  std::vector<std::uint8_t> stream;
  for (const auto& payload : payloads) {
    append_frame(stream, payload.data(), payload.size());
  }

  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Rng rng(mix64(0xF8A3E, seed));
    FrameSplitter splitter;
    std::vector<std::uint8_t> out;
    std::size_t next_payload = 0;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      // Mostly tiny slices (1..7 bytes) with occasional large ones — the
      // nastiest kernel-delivery pattern for off-by-one reassembly bugs.
      const std::size_t want = (rng.next() % 8 == 0)
                                   ? 1 + rng.next() % 1500
                                   : 1 + rng.next() % 7;
      const std::size_t len = std::min(want, stream.size() - pos);
      splitter.feed(stream.data() + pos, len);
      pos += len;
      while (splitter.next(out)) {
        ASSERT_LT(next_payload, payloads.size()) << "seed " << seed;
        EXPECT_EQ(out, payloads[next_payload]) << "seed " << seed;
        ++next_payload;
      }
    }
    EXPECT_EQ(next_payload, payloads.size()) << "seed " << seed;
    EXPECT_EQ(splitter.buffered(), 0u) << "seed " << seed;
  }
}

TEST(Frame, InterleavedFeedAndNextKeepsOrder) {
  FrameSplitter splitter;
  std::vector<std::uint8_t> out;
  for (std::uint32_t i = 0; i < 200; ++i) {
    const std::vector<std::uint8_t> payload = pattern_payload(i % 37, static_cast<std::uint8_t>(i));
    std::vector<std::uint8_t> stream;
    append_frame(stream, payload.data(), payload.size());
    splitter.feed(stream.data(), stream.size());
    ASSERT_TRUE(splitter.next(out)) << i;
    EXPECT_EQ(out, payload) << i;
  }
  EXPECT_EQ(splitter.buffered(), 0u);
}

TEST(Frame, OversizedLengthPrefixThrowsOnSendAndReceive) {
  const std::size_t max_frame = 1024;
  std::vector<std::uint8_t> out;
  const std::vector<std::uint8_t> big = pattern_payload(max_frame + 1, 9);
  EXPECT_THROW(append_frame(out, big.data(), big.size(), max_frame), FrameError);

  // Receive side: a forged 16 MB + 1 length prefix must throw before any
  // payload accumulation, even delivered byte by byte.
  FrameSplitter splitter(max_frame);
  const std::uint32_t forged = max_frame + 1;
  const std::uint8_t prefix[kFrameHeader] = {
      static_cast<std::uint8_t>(forged & 0xFF),
      static_cast<std::uint8_t>((forged >> 8) & 0xFF),
      static_cast<std::uint8_t>((forged >> 16) & 0xFF),
      static_cast<std::uint8_t>((forged >> 24) & 0xFF)};
  std::vector<std::uint8_t> payload;
  for (std::size_t i = 0; i < kFrameHeader - 1; ++i) {
    splitter.feed(&prefix[i], 1);
    EXPECT_NO_THROW((void)splitter.next(payload));
  }
  splitter.feed(&prefix[kFrameHeader - 1], 1);
  EXPECT_THROW((void)splitter.next(payload), FrameError);
}

TEST(Frame, MaxSizedFrameIsAccepted) {
  const std::size_t max_frame = 2048;
  const std::vector<std::uint8_t> payload = pattern_payload(max_frame, 5);
  std::vector<std::uint8_t> stream;
  append_frame(stream, payload.data(), payload.size(), max_frame);
  FrameSplitter splitter(max_frame);
  splitter.feed(stream.data(), stream.size());
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(splitter.next(out));
  EXPECT_EQ(out, payload);
}

}  // namespace
}  // namespace raptee::net
