// Loopback cluster integration: nine full RAPTEE endpoints — real
// BrahmsNode instances behind real TCP sockets — started from a sparse
// ring bootstrap (each node knows only its two successors) must converge
// to well-mixed views through genuine five-leg exchanges. This is the
// acceptance test for the transport subsystem: the same protocol objects
// the simulator drives, with every leg crossing a socket.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/types.hpp"
#include "net/cluster.hpp"

namespace raptee::net {
namespace {

// Distinct non-self peers node `i` currently holds.
std::size_t distinct_peers(const LoopbackCluster& cluster, std::size_t i) {
  std::set<std::uint32_t> seen;
  for (const NodeId peer : cluster.view_of(i)) {
    if (peer.value != static_cast<std::uint32_t>(i)) seen.insert(peer.value);
  }
  return seen.size();
}

TEST(LoopbackCluster, NineNodesConvergeOverRealSockets) {
  ClusterConfig config;
  config.nodes = 9;
  config.seed = 42;
  config.view_size = 8;
  config.nonce_seed = 0x5EED;
  LoopbackCluster cluster(config);
  cluster.start();

  // Ring bootstrap: every node starts knowing exactly 2 of the other 8.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    ASSERT_LE(distinct_peers(cluster, i), 2u) << "node " << i;
  }

  // Run rounds until every node's view holds most of the population.
  // Brahms with l1 = 8 over 9 nodes mixes within a handful of rounds; the
  // generous cap absorbs scheduling jitter, not protocol slack.
  const std::size_t want = 6;  // ≥ 6 of the 8 possible distinct peers
  bool converged = false;
  for (int rounds = 0; rounds < 30 && !converged; ++rounds) {
    cluster.run_rounds(1);
    converged = true;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (distinct_peers(cluster, i) < want) {
        converged = false;
        break;
      }
    }
  }
  EXPECT_TRUE(converged) << "views failed to mix within 30 rounds";
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_GE(distinct_peers(cluster, i), want) << "node " << i;
  }

  // The exchanges really happened, over really-sealed links.
  EXPECT_GT(cluster.pulls_completed(), 0u);
  std::uint64_t sealed_frames = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const BusStats stats = cluster.bus_stats(i);
    EXPECT_EQ(stats.open_failures, 0u) << "node " << i;
    sealed_frames += stats.frames_received;
  }
  EXPECT_GT(sealed_frames, 0u);
  cluster.stop();
}

TEST(LoopbackCluster, PlaintextAblationAlsoConverges) {
  // encrypt = false exercises the framing-only path (no LinkTable): the
  // protocol outcome must not depend on sealing.
  ClusterConfig config;
  config.nodes = 8;
  config.seed = 7;
  config.view_size = 6;
  config.nonce_seed = 0xFACE;
  config.encrypt = false;
  LoopbackCluster cluster(config);
  cluster.start();
  cluster.run_rounds(8);
  std::size_t total = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) total += distinct_peers(cluster, i);
  EXPECT_GT(total, cluster.size() * 2) << "views did not grow past bootstrap";
  EXPECT_GT(cluster.pulls_completed(), 0u);
  cluster.stop();
}

}  // namespace
}  // namespace raptee::net
