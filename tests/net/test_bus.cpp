// Bus integration tests over real loopback sockets: HELLO establishment,
// queue-before-connect ordering, retriable dialing (dial before the
// listener exists), simultaneous-dial dedup, idle teardown, reconnect
// after teardown, sealed vs plaintext dispatch, and drain semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "crypto/key.hpp"
#include "net/bus.hpp"
#include "wire/link_session.hpp"

namespace raptee::net {
namespace {

using namespace std::chrono_literals;

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string string_of(const std::vector<std::uint8_t>& v) {
  return {v.begin(), v.end()};
}

/// Collects delivered payloads with a condition variable for bounded waits.
struct Sink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::pair<std::uint32_t, std::string>> messages;
  std::vector<std::uint32_t> ups;
  std::vector<std::uint32_t> downs;

  void on_message(const Peer& from, std::vector<std::uint8_t> payload) {
    const std::lock_guard<std::mutex> lock(mu);
    messages.emplace_back(from.id.value, string_of(payload));
    cv.notify_all();
  }
  void on_up(const Peer& peer) {
    const std::lock_guard<std::mutex> lock(mu);
    ups.push_back(peer.id.value);
    cv.notify_all();
  }
  void on_down(const Peer& peer, const char*) {
    const std::lock_guard<std::mutex> lock(mu);
    downs.push_back(peer.id.value);
    cv.notify_all();
  }

  bool wait_messages(std::size_t count, std::chrono::milliseconds budget = 5000ms) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, budget, [&] { return messages.size() >= count; });
  }
  bool wait_ups(std::size_t count, std::chrono::milliseconds budget = 5000ms) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, budget, [&] { return ups.size() >= count; });
  }
  bool wait_downs(std::size_t count, std::chrono::milliseconds budget = 5000ms) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, budget, [&] { return downs.size() >= count; });
  }
};

struct Endpoint {
  Sink sink;
  std::unique_ptr<wire::LinkTable> links;
  std::unique_ptr<Bus> bus;
  std::uint16_t port = 0;

  void build(std::uint32_t id, const crypto::SymmetricKey* master,
             std::chrono::milliseconds idle = 0ms) {
    if (master) links = std::make_unique<wire::LinkTable>(*master);
    BusConfig config;
    config.self = NodeId{id};
    config.links = links.get();
    config.idle_timeout = idle;
    config.nonce_seed = 1000 + id;
    config.on_message = [this](const Peer& from, std::vector<std::uint8_t> payload) {
      sink.on_message(from, std::move(payload));
    };
    config.on_peer_up = [this](const Peer& peer) { sink.on_up(peer); };
    config.on_peer_down = [this](const Peer& peer, const char* why) {
      sink.on_down(peer, why);
    };
    bus = std::make_unique<Bus>(std::move(config));
    port = bus->listen(0);
    bus->start();
  }
};

TEST(Bus, SealedRoundTripBothDirections) {
  const crypto::SymmetricKey master = crypto::Drbg(7, "bus-test").generate_key();
  Endpoint a, b;
  a.build(1, &master);
  b.build(2, &master);
  a.bus->connect(NodeId{2}, b.port);
  b.bus->add_route(NodeId{1}, a.port);

  ASSERT_TRUE(a.bus->send(NodeId{2}, bytes_of("ping")));
  ASSERT_TRUE(b.sink.wait_messages(1));
  EXPECT_EQ(b.sink.messages[0], (std::pair<std::uint32_t, std::string>{1, "ping"}));

  ASSERT_TRUE(b.bus->send(NodeId{1}, bytes_of("pong")));
  ASSERT_TRUE(a.sink.wait_messages(1));
  EXPECT_EQ(a.sink.messages[0], (std::pair<std::uint32_t, std::string>{2, "pong"}));

  // One duplex connection serves both directions.
  EXPECT_EQ(a.bus->established_peers(), 1u);
  EXPECT_EQ(b.bus->established_peers(), 1u);
  a.bus->stop();
  b.bus->stop();
}

TEST(Bus, SendWithoutRouteFailsFast) {
  Endpoint a;
  a.build(1, nullptr);
  EXPECT_FALSE(a.bus->send(NodeId{9}, bytes_of("void")));  // no address known
  EXPECT_FALSE(a.bus->send(NodeId{1}, bytes_of("self")));  // self-send
  a.bus->stop();
}

TEST(Bus, QueueBeforeConnectDeliversInOrder) {
  Endpoint a, b;
  a.build(1, nullptr);
  b.build(2, nullptr);
  a.bus->add_route(NodeId{2}, b.port);
  // All sends before any connection exists: they queue, dial, flush FIFO.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(a.bus->send(NodeId{2}, bytes_of("m" + std::to_string(i))));
  }
  ASSERT_TRUE(b.sink.wait_messages(20));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(b.sink.messages[i].second, "m" + std::to_string(i));
  }
  a.bus->stop();
  b.bus->stop();
}

TEST(Bus, DialRetriesUntilListenerAppears) {
  // Reserve a port, then release it so the first dials are refused.
  std::uint16_t port = 0;
  {
    auto [fd, bound] = listen_loopback(0);
    port = bound;
  }
  Endpoint a;
  a.build(1, nullptr);
  a.bus->add_route(NodeId{2}, port);
  ASSERT_TRUE(a.bus->send(NodeId{2}, bytes_of("early")));
  std::this_thread::sleep_for(50ms);  // several refused dial attempts
  Endpoint b;
  BusConfig config;
  config.self = NodeId{2};
  config.on_message = [&](const Peer& from, std::vector<std::uint8_t> payload) {
    b.sink.on_message(from, std::move(payload));
  };
  b.bus = std::make_unique<Bus>(std::move(config));
  ASSERT_EQ(b.bus->listen(port), port);
  b.bus->start();
  ASSERT_TRUE(b.sink.wait_messages(1));
  EXPECT_EQ(b.sink.messages[0].second, "early");
  EXPECT_GT(a.bus->stats().dial_retries, 0u);
  a.bus->stop();
  b.bus->stop();
}

TEST(Bus, GivesUpAfterConnectDeadline) {
  std::uint16_t dead_port = 0;
  {
    auto [fd, bound] = listen_loopback(0);
    dead_port = bound;
  }  // released: nothing listens here
  Endpoint a;
  a.links.reset();
  BusConfig config;
  config.self = NodeId{1};
  config.connect_deadline = 100ms;
  config.backoff_initial = 5ms;
  config.on_peer_down = [&](const Peer& peer, const char* why) {
    a.sink.on_down(peer, why);
  };
  a.bus = std::make_unique<Bus>(std::move(config));
  a.port = a.bus->listen(0);
  a.bus->start();
  a.bus->add_route(NodeId{2}, dead_port);
  ASSERT_TRUE(a.bus->send(NodeId{2}, bytes_of("doomed")));
  ASSERT_TRUE(a.sink.wait_downs(1));
  EXPECT_EQ(a.sink.downs[0], 2u);
  a.bus->stop();
}

TEST(Bus, SimultaneousDialDedupsToOneConnection) {
  const crypto::SymmetricKey master = crypto::Drbg(9, "dedup-test").generate_key();
  Endpoint a, b;
  a.build(1, &master);
  b.build(2, &master);
  // Both dial at once.
  a.bus->connect(NodeId{2}, b.port);
  b.bus->connect(NodeId{1}, a.port);
  ASSERT_TRUE(a.sink.wait_ups(1));
  ASSERT_TRUE(b.sink.wait_ups(1));
  // Whatever the race did, traffic flows and exactly one link survives.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(a.bus->send(NodeId{2}, bytes_of("a" + std::to_string(i))));
    ASSERT_TRUE(b.bus->send(NodeId{1}, bytes_of("b" + std::to_string(i))));
  }
  ASSERT_TRUE(a.sink.wait_messages(10));
  ASSERT_TRUE(b.sink.wait_messages(10));
  std::this_thread::sleep_for(50ms);  // let any loser connection finish dying
  EXPECT_EQ(a.bus->established_peers(), 1u);
  EXPECT_EQ(b.bus->established_peers(), 1u);
  EXPECT_EQ(a.bus->stats().open_failures, 0u);  // keys agreed despite the race
  EXPECT_EQ(b.bus->stats().open_failures, 0u);
  a.bus->stop();
  b.bus->stop();
}

TEST(Bus, IdleConnectionsTearDownAndRedialOnDemand) {
  Endpoint a, b;
  a.build(1, nullptr, /*idle=*/60ms);
  b.build(2, nullptr, /*idle=*/60ms);
  a.bus->connect(NodeId{2}, b.port);
  b.bus->add_route(NodeId{1}, a.port);
  ASSERT_TRUE(a.bus->send(NodeId{2}, bytes_of("one")));
  ASSERT_TRUE(b.sink.wait_messages(1));
  // Silence for well past the idle timeout: both sides drop the link.
  ASSERT_TRUE(a.sink.wait_downs(1, 2000ms));
  EXPECT_EQ(a.bus->established_peers(), 0u);
  // A later send transparently re-dials.
  ASSERT_TRUE(a.bus->send(NodeId{2}, bytes_of("two")));
  ASSERT_TRUE(b.sink.wait_messages(2));
  EXPECT_EQ(b.sink.messages[1].second, "two");
  a.bus->stop();
  b.bus->stop();
}

TEST(Bus, ReconnectAfterPeerRestart) {
  const crypto::SymmetricKey master = crypto::Drbg(5, "restart").generate_key();
  Endpoint a;
  a.build(1, &master);
  std::uint16_t b_port = 0;
  {
    Endpoint b;
    b.build(2, &master);
    b_port = b.port;
    a.bus->connect(NodeId{2}, b_port);
    ASSERT_TRUE(a.bus->send(NodeId{2}, bytes_of("first")));
    ASSERT_TRUE(b.sink.wait_messages(1));
    b.bus->stop();  // hard stop: peer goes away
  }
  ASSERT_TRUE(a.sink.wait_downs(1));
  // Peer restarts on the same port with a FRESH link table (a rebooted
  // process has no cipher state): the handshake token rekeys both sides.
  Endpoint b2;
  b2.links = std::make_unique<wire::LinkTable>(master);
  BusConfig config;
  config.self = NodeId{2};
  config.links = b2.links.get();
  config.on_message = [&](const Peer& from, std::vector<std::uint8_t> payload) {
    b2.sink.on_message(from, std::move(payload));
  };
  b2.bus = std::make_unique<Bus>(std::move(config));
  ASSERT_EQ(b2.bus->listen(b_port), b_port);
  b2.bus->start();
  ASSERT_TRUE(a.bus->send(NodeId{2}, bytes_of("second")));
  ASSERT_TRUE(b2.sink.wait_messages(1));
  EXPECT_EQ(b2.sink.messages[0].second, "second");
  EXPECT_EQ(b2.bus->stats().open_failures, 0u);
  a.bus->stop();
  b2.bus->stop();
}

TEST(Bus, DrainFlushesQueuedBytesBeforeStopping) {
  Endpoint a, b;
  a.build(1, nullptr);
  b.build(2, nullptr);
  a.bus->add_route(NodeId{2}, b.port);
  std::vector<std::uint8_t> big(200000, 0xAB);  // larger than a socket buffer
  ASSERT_TRUE(a.bus->send(NodeId{2}, big));
  a.bus->drain_and_stop(5000ms);
  ASSERT_TRUE(b.sink.wait_messages(1));
  EXPECT_EQ(b.sink.messages[0].second.size(), big.size());
  b.bus->stop();
}

}  // namespace
}  // namespace raptee::net
