// Wire fidelity: every leg transported by the socket bus must be
// byte-identical to the simulator's wire path for the same master key and
// link token.
//
// Two buses with independent same-master LinkTables exchange the five
// protocol legs over a real loopback connection. A third, *reference*
// LinkTable — standing in for the simulator's sealing path — calls
// establish(a, b, token) with the token the handshake agreed and seals the
// same plaintexts in the same per-direction order. The test asserts:
//
//   1. the sealed frames captured off the socket (frame_tap) equal the
//      reference table's sealed bytes, byte for byte, and
//   2. the delivered plaintexts equal wire::encode(msg) — the exact codec
//      bytes the engine's exchange path produces — and decode back to the
//      original messages.
//
// Together these prove transport adds framing only: key derivation,
// sealing, and codec bytes are shared with the simulator, not parallel
// implementations.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.hpp"
#include "crypto/key.hpp"
#include "net/bus.hpp"
#include "wire/link_session.hpp"
#include "wire/message.hpp"

namespace raptee::net {
namespace {

constexpr auto kWait = std::chrono::seconds(5);

struct Capture {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::vector<std::uint8_t>> sealed;     // frame_tap order
  std::vector<std::vector<std::uint8_t>> delivered;  // on_message order
  std::uint64_t link_token = 0;
  bool up = false;

  void wait_up() {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, kWait, [&] { return up; }));
  }
  void wait_delivered(std::size_t count) {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, kWait, [&] { return delivered.size() >= count; }));
  }
};

BusConfig config_for(NodeId self, wire::LinkTable* links, Capture& capture,
                     std::uint64_t nonce_seed) {
  BusConfig config;
  config.self = self;
  config.links = links;
  config.nonce_seed = nonce_seed;
  config.on_message = [&capture](const Peer&, std::vector<std::uint8_t> payload) {
    const std::lock_guard<std::mutex> lock(capture.mu);
    capture.delivered.push_back(std::move(payload));
    capture.cv.notify_all();
  };
  config.on_peer_up = [&capture](const Peer& peer) {
    const std::lock_guard<std::mutex> lock(capture.mu);
    capture.up = true;
    capture.link_token = peer.link_token;
    capture.cv.notify_all();
  };
  config.frame_tap = [&capture](NodeId, const std::vector<std::uint8_t>& frame) {
    const std::lock_guard<std::mutex> lock(capture.mu);
    capture.sealed.push_back(frame);
    capture.cv.notify_all();
  };
  return config;
}

template <typename T>
T patterned(std::uint8_t salt) {
  T out{};
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(salt + i * 7);
  }
  return out;
}

TEST(WireFidelity, TransportedLegsMatchSimulatorSealingByteForByte) {
  const NodeId a{1};
  const NodeId b{2};
  const crypto::SymmetricKey master =
      crypto::Drbg(77, "fidelity-master").generate_key();
  wire::LinkTable table_a(master);
  wire::LinkTable table_b(master);
  Capture cap_a;
  Capture cap_b;

  Bus bus_a(config_for(a, &table_a, cap_a, 0x1000));
  Bus bus_b(config_for(b, &table_b, cap_b, 0x2000));
  const std::uint16_t port_a = bus_a.listen(0);
  const std::uint16_t port_b = bus_b.listen(0);
  bus_a.start();
  bus_b.start();
  bus_a.add_route(b, port_b);
  bus_b.add_route(a, port_a);
  bus_a.connect(b, port_b);
  cap_a.wait_up();
  cap_b.wait_up();

  // Both endpoints must have agreed one non-zero token for the pair.
  ASSERT_NE(cap_a.link_token, 0u);
  ASSERT_EQ(cap_a.link_token, cap_b.link_token);

  // The five legs of one pull exchange, with synthetic auth material.
  wire::PullRequest pull_request{a, {patterned<crypto::AuthNonce>(3)}};
  wire::PullReply pull_reply{
      b,
      {patterned<crypto::AuthNonce>(5), patterned<crypto::AuthToken>(9)},
      {NodeId{3}, NodeId{4}, NodeId{5}}};
  wire::AuthConfirm confirm{a,
                            {patterned<crypto::AuthToken>(11)},
                            std::vector<NodeId>{NodeId{6}, NodeId{7}}};
  const std::vector<wire::Message> a_to_b = {
      wire::PushMessage{a}, pull_request, confirm};
  const std::vector<wire::Message> b_to_a = {
      pull_reply, wire::SwapReply{b, {NodeId{8}, NodeId{9}}}};

  for (const wire::Message& message : a_to_b) {
    ASSERT_TRUE(bus_a.send(b, wire::encode(message)));
  }
  for (const wire::Message& message : b_to_a) {
    ASSERT_TRUE(bus_b.send(a, wire::encode(message)));
  }
  cap_b.wait_delivered(a_to_b.size());
  cap_a.wait_delivered(b_to_a.size());

  // Reference path: an independent same-master table (the simulator's
  // sealing machinery) reproduces the session from the handshake token and
  // seals the same plaintexts in the same per-direction order.
  wire::LinkTable reference(master);
  wire::LinkSession& session = reference.establish(a, b, cap_a.link_token);
  const auto check_direction = [&](NodeId from, const std::vector<wire::Message>& legs,
                                   Capture& receiver) {
    const std::lock_guard<std::mutex> lock(receiver.mu);
    ASSERT_EQ(receiver.sealed.size(), legs.size());
    ASSERT_EQ(receiver.delivered.size(), legs.size());
    for (std::size_t i = 0; i < legs.size(); ++i) {
      const std::vector<std::uint8_t> codec_bytes = wire::encode(legs[i]);
      // Delivered plaintext is exactly the simulator's codec output...
      EXPECT_EQ(receiver.delivered[i], codec_bytes) << "leg " << i;
      // ...which decodes back to the original message...
      EXPECT_EQ(wire::decode(receiver.delivered[i]), legs[i]) << "leg " << i;
      // ...and the bytes that crossed the socket are what the simulator's
      // sealing path produces for the same key material and order.
      std::vector<std::uint8_t> expected_sealed;
      session.channel_from(from).seal_into(codec_bytes.data(), codec_bytes.size(),
                                           expected_sealed);
      EXPECT_EQ(receiver.sealed[i], expected_sealed) << "leg " << i;
    }
  };
  check_direction(a, a_to_b, cap_b);
  check_direction(b, b_to_a, cap_a);

  EXPECT_EQ(bus_a.stats().open_failures, 0u);
  EXPECT_EQ(bus_b.stats().open_failures, 0u);
  bus_a.stop();
  bus_b.stop();
}

}  // namespace
}  // namespace raptee::net
