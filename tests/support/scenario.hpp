// Test-side glue over the public scenario API.
//
// The fluent builder itself is library code now — raptee::scenario::
// ScenarioSpec (scenario/spec.hpp). What remains here is test-specific:
// a factory applying ctest-sized defaults, the scenario-matrix cell type,
// and the gtest bit-exactness assertion helper.
//
//   auto result = test::Scenario()
//                     .adversary(0.3)
//                     .trusted_share(0.2)     // of the correct population
//                     .eviction_pct(40)
//                     .churn(true)
//                     .seed(7)
//                     .run();
//
// The defaults are a small-but-representative population (128 nodes,
// view 16, 64 rounds) that exhibits every qualitative regime of the
// paper's grids in a few milliseconds per cell — BASALT- and
// Honeybee-style seeded scenario sweeps need dozens of cells per suite.
#pragma once

#include <iosfwd>
#include <string>

#include "scenario/spec.hpp"

namespace raptee::test {

/// A ScenarioSpec with test-sized defaults (128 nodes, view 16, 64 rounds,
/// fixed seed).
[[nodiscard]] scenario::ScenarioSpec Scenario();

/// One cell of the scenario matrix; the TEST_P parameter type.
struct MatrixCell {
  double adversary = 0.0;      ///< Byzantine fraction of the base population
  double trusted_share = 0.0;  ///< trusted fraction of the correct population
  bool churn = false;
  int eviction_pct = 0;

  /// "f30_t100_churn_ev40"-style name, usable as a gtest parameter name.
  [[nodiscard]] std::string name() const;
  /// A test-sized ScenarioSpec preconfigured for this cell.
  [[nodiscard]] scenario::ScenarioSpec scenario() const;
};

std::ostream& operator<<(std::ostream& os, const MatrixCell& cell);

/// Asserts (with ADD_FAILURE) that two results carry bit-identical metric
/// streams and counters; returns false on the first mismatch.
[[nodiscard]] bool same_metric_streams(const metrics::ExperimentResult& a,
                                       const metrics::ExperimentResult& b);

}  // namespace raptee::test
