// Scenario fixture/builder for end-to-end simulation tests.
//
// Wraps metrics::ExperimentConfig (and through it sim::Engine) behind a
// fluent builder sized for ctest budgets: BASALT- and Honeybee-style
// seeded scenario sweeps need dozens of cells per suite, so the defaults
// here are a small-but-representative population (128 nodes, view 16,
// 64 rounds) that exhibits every qualitative regime of the paper's grids
// in a few milliseconds per cell.
//
//   auto result = test::Scenario()
//                     .adversary(0.3)
//                     .trusted_share(0.2)     // of the correct population
//                     .eviction_pct(40)
//                     .churn(true)
//                     .seed(7)
//                     .run();
//
// `trusted_share` is denominated in the *correct* population (so 1.0 means
// "every correct node is trusted" at any adversary fraction), unlike
// ExperimentConfig::trusted_fraction which is a share of everyone and
// cannot exceed 1 - f.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "metrics/experiment.hpp"

namespace raptee::test {

class Scenario {
 public:
  Scenario();

  Scenario& population(std::size_t n);
  Scenario& view_size(std::size_t l1);
  Scenario& rounds(Round rounds);
  Scenario& seed(std::uint64_t seed);

  /// Byzantine fraction f of the base population.
  Scenario& adversary(double fraction);
  /// Fraction of the *correct* population that is trusted (0..1); mapped to
  /// ExperimentConfig::trusted_fraction = share * (1 - f) at build time.
  Scenario& trusted_share(double share);
  /// Injected poisoned-trusted nodes, as a fraction of the base population.
  Scenario& poisoned_extra(double fraction);

  /// Fixed Byzantine-eviction rate in percent; 0 disables eviction.
  Scenario& eviction_pct(int percent);
  Scenario& eviction(const core::EvictionSpec& spec);
  Scenario& trusted_overlay(bool enabled);

  /// Steady background churn (default spec: 2 %/round, 5-round downtime,
  /// rejoin) — or a custom spec.
  Scenario& churn(bool enabled);
  Scenario& churn(const metrics::ChurnSpec& spec);

  /// Attaches the §VI-A identification attack.
  Scenario& identification(double threshold = 0.10);

  Scenario& wire_roundtrip(bool enabled);
  Scenario& encrypt_links(bool enabled);
  Scenario& message_loss(double probability);

  /// The fully-resolved ExperimentConfig (share -> fraction mapping applied).
  [[nodiscard]] metrics::ExperimentConfig config() const;
  /// Builds and runs the experiment.
  [[nodiscard]] metrics::ExperimentResult run() const;

 private:
  metrics::ExperimentConfig base_;
  double trusted_share_ = 0.0;
};

/// One cell of the scenario matrix; the TEST_P parameter type.
struct MatrixCell {
  double adversary = 0.0;      ///< Byzantine fraction of the base population
  double trusted_share = 0.0;  ///< trusted fraction of the correct population
  bool churn = false;
  int eviction_pct = 0;

  /// "f30_t100_churn_ev40"-style name, usable as a gtest parameter name.
  [[nodiscard]] std::string name() const;
  /// A Scenario preconfigured for this cell.
  [[nodiscard]] Scenario scenario() const;
};

std::ostream& operator<<(std::ostream& os, const MatrixCell& cell);

/// Asserts (with ADD_FAILURE) that two results carry bit-identical metric
/// streams and counters; returns false on the first mismatch.
[[nodiscard]] bool same_metric_streams(const metrics::ExperimentResult& a,
                                       const metrics::ExperimentResult& b);

}  // namespace raptee::test
