#include "support/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <ostream>
#include <sstream>

namespace raptee::test {

scenario::ScenarioSpec Scenario() {
  return scenario::ScenarioSpec().population(128).view_size(16).rounds(64).seed(20220308);
}

std::string MatrixCell::name() const {
  std::ostringstream oss;
  oss << 'f' << std::lround(adversary * 100) << "_t"
      << std::lround(trusted_share * 100) << (churn ? "_churn" : "_stable") << "_ev"
      << eviction_pct;
  return oss.str();
}

scenario::ScenarioSpec MatrixCell::scenario() const {
  return Scenario()
      .adversary(adversary)
      .trusted_share(trusted_share)
      .churn(churn)
      .eviction_pct(eviction_pct);
}

std::ostream& operator<<(std::ostream& os, const MatrixCell& cell) {
  return os << cell.name();
}

namespace {

bool same_series(const char* label, const std::vector<double>& a,
                 const std::vector<double>& b) {
  if (a.size() != b.size()) {
    ADD_FAILURE() << label << ": length " << a.size() << " vs " << b.size();
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-exact: a rerun of the same seeded simulation must replay the very
    // same floating-point operations, not merely land close.
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      ADD_FAILURE() << label << '[' << i << "]: " << a[i] << " vs " << b[i];
      return false;
    }
  }
  return true;
}

}  // namespace

bool same_metric_streams(const metrics::ExperimentResult& a,
                         const metrics::ExperimentResult& b) {
  bool ok = same_series("pollution_series", a.pollution_series, b.pollution_series);
  ok = same_series("pollution_series_trusted", a.pollution_series_trusted,
                   b.pollution_series_trusted) && ok;
  ok = same_series("min_knowledge_series", a.min_knowledge_series,
                   b.min_knowledge_series) && ok;
  if (a.discovery_round != b.discovery_round) {
    ADD_FAILURE() << "discovery_round diverged";
    ok = false;
  }
  if (a.stability_round != b.stability_round) {
    ADD_FAILURE() << "stability_round diverged";
    ok = false;
  }
  if (a.swaps_completed != b.swaps_completed || a.pulls_completed != b.pulls_completed) {
    ADD_FAILURE() << "exchange counters diverged: swaps " << a.swaps_completed << '/'
                  << b.swaps_completed << ", pulls " << a.pulls_completed << '/'
                  << b.pulls_completed;
    ok = false;
  }
  if (a.legs_dropped != b.legs_dropped || a.legs_tampered != b.legs_tampered ||
      a.legs_corrupted != b.legs_corrupted || a.wire_bytes != b.wire_bytes) {
    ADD_FAILURE() << "wire counters diverged: dropped " << a.legs_dropped << '/'
                  << b.legs_dropped << ", tampered " << a.legs_tampered << '/'
                  << b.legs_tampered << ", corrupted " << a.legs_corrupted << '/'
                  << b.legs_corrupted << ", bytes " << a.wire_bytes << '/'
                  << b.wire_bytes;
    ok = false;
  }
  if (a.enclave_cycles_total != b.enclave_cycles_total) {
    ADD_FAILURE() << "enclave cycle ledgers diverged: " << a.enclave_cycles_total
                  << " vs " << b.enclave_cycles_total;
    ok = false;
  }
  return ok;
}

}  // namespace raptee::test
