#include "support/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <ostream>
#include <sstream>

namespace raptee::test {

Scenario::Scenario() {
  base_.n = 128;
  base_.brahms.l1 = 16;
  base_.brahms.l2 = 16;
  base_.rounds = 64;
  base_.seed = 20220308;
}

Scenario& Scenario::population(std::size_t n) {
  base_.n = n;
  return *this;
}
Scenario& Scenario::view_size(std::size_t l1) {
  base_.brahms.l1 = l1;
  base_.brahms.l2 = l1;
  return *this;
}
Scenario& Scenario::rounds(Round rounds) {
  base_.rounds = rounds;
  return *this;
}
Scenario& Scenario::seed(std::uint64_t seed) {
  base_.seed = seed;
  return *this;
}
Scenario& Scenario::adversary(double fraction) {
  base_.byzantine_fraction = fraction;
  return *this;
}
Scenario& Scenario::trusted_share(double share) {
  trusted_share_ = share;
  return *this;
}
Scenario& Scenario::poisoned_extra(double fraction) {
  base_.poisoned_extra_fraction = fraction;
  return *this;
}
Scenario& Scenario::eviction_pct(int percent) {
  base_.eviction = percent == 0 ? core::EvictionSpec::none()
                                : core::EvictionSpec::fixed(percent / 100.0);
  return *this;
}
Scenario& Scenario::eviction(const core::EvictionSpec& spec) {
  base_.eviction = spec;
  return *this;
}
Scenario& Scenario::trusted_overlay(bool enabled) {
  base_.trusted_overlay = enabled;
  return *this;
}
Scenario& Scenario::churn(bool enabled) {
  metrics::ChurnSpec spec = metrics::ChurnSpec::steady(0.02);
  spec.enabled = enabled;
  base_.churn = spec;
  return *this;
}
Scenario& Scenario::churn(const metrics::ChurnSpec& spec) {
  base_.churn = spec;
  return *this;
}
Scenario& Scenario::identification(double threshold) {
  base_.run_identification = true;
  base_.identification_threshold = threshold;
  return *this;
}
Scenario& Scenario::wire_roundtrip(bool enabled) {
  base_.wire_roundtrip = enabled;
  return *this;
}
Scenario& Scenario::encrypt_links(bool enabled) {
  base_.encrypt_links = enabled;
  return *this;
}
Scenario& Scenario::message_loss(double probability) {
  base_.message_loss = probability;
  return *this;
}

metrics::ExperimentConfig Scenario::config() const {
  metrics::ExperimentConfig config = base_;
  config.trusted_fraction = trusted_share_ * (1.0 - base_.byzantine_fraction);
  return config;
}

metrics::ExperimentResult Scenario::run() const { return metrics::run_experiment(config()); }

std::string MatrixCell::name() const {
  std::ostringstream oss;
  oss << 'f' << std::lround(adversary * 100) << "_t"
      << std::lround(trusted_share * 100) << (churn ? "_churn" : "_stable") << "_ev"
      << eviction_pct;
  return oss.str();
}

Scenario MatrixCell::scenario() const {
  Scenario s;
  s.adversary(adversary).trusted_share(trusted_share).churn(churn).eviction_pct(
      eviction_pct);
  return s;
}

std::ostream& operator<<(std::ostream& os, const MatrixCell& cell) {
  return os << cell.name();
}

namespace {

bool same_series(const char* label, const std::vector<double>& a,
                 const std::vector<double>& b) {
  if (a.size() != b.size()) {
    ADD_FAILURE() << label << ": length " << a.size() << " vs " << b.size();
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-exact: a rerun of the same seeded simulation must replay the very
    // same floating-point operations, not merely land close.
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      ADD_FAILURE() << label << '[' << i << "]: " << a[i] << " vs " << b[i];
      return false;
    }
  }
  return true;
}

}  // namespace

bool same_metric_streams(const metrics::ExperimentResult& a,
                         const metrics::ExperimentResult& b) {
  bool ok = same_series("pollution_series", a.pollution_series, b.pollution_series);
  ok = same_series("pollution_series_trusted", a.pollution_series_trusted,
                   b.pollution_series_trusted) && ok;
  ok = same_series("min_knowledge_series", a.min_knowledge_series,
                   b.min_knowledge_series) && ok;
  if (a.discovery_round != b.discovery_round) {
    ADD_FAILURE() << "discovery_round diverged";
    ok = false;
  }
  if (a.stability_round != b.stability_round) {
    ADD_FAILURE() << "stability_round diverged";
    ok = false;
  }
  if (a.swaps_completed != b.swaps_completed || a.pulls_completed != b.pulls_completed) {
    ADD_FAILURE() << "exchange counters diverged: swaps " << a.swaps_completed << '/'
                  << b.swaps_completed << ", pulls " << a.pulls_completed << '/'
                  << b.pulls_completed;
    ok = false;
  }
  if (a.enclave_cycles_total != b.enclave_cycles_total) {
    ADD_FAILURE() << "enclave cycle ledgers diverged: " << a.enclave_cycles_total
                  << " vs " << b.enclave_cycles_total;
    ok = false;
  }
  return ok;
}

}  // namespace raptee::test
