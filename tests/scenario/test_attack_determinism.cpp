// Determinism gates for the pluggable adversary layer:
//
//  * every registered strategy is same-seed bit-identical down to the
//    results::to_json bytes (the scale_links-style purity bar);
//  * the default balanced attack is byte-identical to the PRE-redesign
//    hardcoded adversary — asserted against SHA-256 digests of result JSON
//    captured from the seed tree before the IStrategy refactor (commit
//    715300c). If these golden hashes ever change, the balanced attack's
//    observable behaviour changed, which the redesign promised not to do;
//  * selecting balanced explicitly via ScenarioSpec::attack is the same
//    run as not selecting anything.
#include <gtest/gtest.h>

#include <string>

#include "adversary/strategy.hpp"
#include "crypto/sha256.hpp"
#include "scenario/scenario.hpp"

namespace raptee::scenario {
namespace {

// Golden digests of results::to_json(ExperimentResult) captured on the
// pre-redesign tree (see header comment) for the two configs below.
constexpr const char* kGoldenPlain =
    "c8fd25675e2e8f0cc7221870bdc079d888a99aaec21d83c1fd413c6af53a4b68";
constexpr const char* kGoldenChurnIdent =
    "f63e0d46febd8899066b662a9a94013dd12ffa620b21ea08dd5f7ad5a972d22c";

ScenarioSpec golden_plain_spec() {
  return ScenarioSpec()
      .population(128)
      .view_size(16)
      .rounds(64)
      .adversary(0.25)
      .trusted(0.2)
      .eviction(core::EvictionSpec::adaptive())
      .seed(99);
}

ScenarioSpec golden_churn_ident_spec() {
  return ScenarioSpec()
      .population(128)
      .view_size(16)
      .rounds(48)
      .adversary(0.2)
      .trusted_share(0.3)
      .eviction(core::EvictionSpec::fixed(0.4))
      .churn(metrics::ChurnSpec::steady(0.02))
      .identification()
      .wire_roundtrip(true)
      .seed(7);
}

std::string result_digest(const ScenarioSpec& spec) {
  return crypto::to_hex(crypto::sha256(results::to_json(spec.run())));
}

TEST(AttackDeterminism, BalancedDefaultMatchesPreRedesignGoldenBytes) {
  EXPECT_EQ(result_digest(golden_plain_spec()), kGoldenPlain)
      << "the balanced attack diverged from the pre-IStrategy adversary";
  EXPECT_EQ(result_digest(golden_churn_ident_spec()), kGoldenChurnIdent)
      << "balanced + churn + identification diverged from the golden run";
}

TEST(AttackDeterminism, ExplicitBalancedIsTheDefaultRun) {
  const std::string defaulted = results::to_json(golden_plain_spec().run());
  const std::string explicit_balanced = results::to_json(
      golden_plain_spec().attack(adversary::AttackSpec::balanced()).run());
  EXPECT_EQ(defaulted, explicit_balanced);
}

TEST(AttackDeterminism, EveryRegisteredStrategyIsBitIdenticalAcrossRuns) {
  for (const std::string& name : adversary::StrategyRegistry::instance().names()) {
    const ScenarioSpec spec = ScenarioSpec()
                                  .population(128)
                                  .view_size(16)
                                  .rounds(32)
                                  .adversary(0.2)
                                  .trusted_share(0.25)
                                  .eviction(core::EvictionSpec::adaptive())
                                  .attack(name)
                                  .seed(4242);
    const std::string first = results::to_json(spec.run());
    const std::string second = results::to_json(spec.run());
    EXPECT_EQ(first, second) << "strategy '" << name
                             << "' is not same-seed deterministic";
    EXPECT_TRUE(metrics::json_valid(first)) << name;
  }
}

TEST(AttackDeterminism, StrategiesProduceDistinctRuns) {
  // The catalog must actually differ behaviourally: pairwise-distinct
  // result bytes for the same (seed, population).
  std::vector<std::string> docs;
  for (const std::string& name : adversary::StrategyRegistry::instance().names()) {
    docs.push_back(results::to_json(ScenarioSpec()
                                        .population(128)
                                        .view_size(16)
                                        .rounds(32)
                                        .adversary(0.2)
                                        .trusted_share(0.25)
                                        .attack(name)
                                        .seed(4242)
                                        .run()));
  }
  for (std::size_t i = 0; i < docs.size(); ++i) {
    for (std::size_t j = i + 1; j < docs.size(); ++j) {
      EXPECT_NE(docs[i], docs[j]) << "strategies " << i << " and " << j
                                  << " are observationally identical";
    }
  }
}

}  // namespace
}  // namespace raptee::scenario
