// Deterministic scenario-matrix harness: seeded end-to-end sweeps over
// adversary fraction × trusted fraction × churn × eviction, asserting the
// paper's qualitative invariants on every cell — the way BASALT and
// Honeybee validate their samplers. Every cell is a full experiment
// (population build, bootstrap, synchronous rounds, trackers), so this
// suite is also the tier-1 gate for simulator performance regressions
// (ctest enforces a wall-clock budget on the whole binary).
#include "support/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <type_traits>
#include <vector>

namespace raptee::test {
namespace {

using metrics::ExperimentResult;

std::vector<MatrixCell> matrix_cells() {
  std::vector<MatrixCell> cells;
  for (double f : {0.0, 0.1, 0.3}) {
    for (double t : {0.0, 0.2, 1.0}) {
      for (bool churn : {false, true}) {
        for (int ev : {0, 40, 100}) {
          // Eviction is a trusted-node policy: without trusted nodes the
          // 40/100 cells duplicate ev=0 — skip the duplicates to keep the
          // grid inside the ctest budget.
          if (t == 0.0 && ev != 0) continue;
          cells.push_back({f, t, churn, ev});
        }
      }
    }
  }
  return cells;
}

class ScenarioMatrix : public ::testing::TestWithParam<MatrixCell> {};

TEST_P(ScenarioMatrix, PaperInvariantsHold) {
  const MatrixCell cell = GetParam();
  const ExperimentResult result = cell.scenario().run();
  const metrics::ExperimentConfig config = cell.scenario().config();
  static_assert(std::is_same_v<decltype(cell.scenario()), scenario::ScenarioSpec>,
                "cells build on the public scenario API");

  // The metric streams cover every executed round and stay in range.
  ASSERT_EQ(result.pollution_series.size(), config.rounds);
  ASSERT_EQ(result.min_knowledge_series.size(), config.rounds);
  for (double p : result.pollution_series) {
    ASSERT_GE(p, 0.0);
    ASSERT_LE(p, 1.0);
  }
  for (double k : result.min_knowledge_series) {
    ASSERT_GE(k, 0.0);
    ASSERT_LE(k, 1.0);
  }

  // The protocol makes progress in every regime: pull exchanges complete
  // even under churn and a 30 % balanced attack.
  EXPECT_GT(result.pulls_completed, 0u);

  if (cell.adversary == 0.0) {
    // No adversary ⇒ no pollution, anywhere, ever.
    EXPECT_EQ(result.steady_pollution, 0.0);
    const double peak = *std::max_element(result.pollution_series.begin(),
                                          result.pollution_series.end());
    EXPECT_EQ(peak, 0.0);
    if (!cell.churn) {
      // Convergence: a stable benign population discovers most of itself
      // and reaches the paper's 75 % discovery milestone.
      EXPECT_TRUE(result.discovery_round.has_value());
    }
  } else {
    // Bounded Byzantine representation: the balanced attack over-represents
    // the adversary, but correct views never collapse to all-Byzantine.
    EXPECT_LT(result.steady_pollution, 0.9);
    // Hub amplification is real yet bounded: steady pollution stays under
    // 3× the Byzantine fraction plus binomial slack (generous on purpose —
    // this is a qualitative, seed-stable envelope, not a tuned constant).
    EXPECT_LT(result.steady_pollution, 3.0 * cell.adversary + 2.0 / 16.0);
  }

  if (cell.trusted_share > 0.0 && cell.adversary > 0.0 && cell.eviction_pct > 0) {
    // Eviction keeps trusted views at least as clean as the overall
    // population (the mechanism behind the paper's resilience gains).
    EXPECT_LE(result.steady_pollution_trusted, result.steady_pollution + 0.05);
  }

  if (cell.trusted_share > 0.0) {
    // Trusted telemetry reports the configured fixed rate while exchanges
    // with untrusted peers happen (t=1.0 has no untrusted correct peers).
    if (cell.eviction_pct > 0 && cell.trusted_share < 1.0) {
      EXPECT_NEAR(result.mean_eviction_rate, cell.eviction_pct / 100.0, 1e-9);
    }
    EXPECT_GE(result.mean_trusted_ratio, 0.0);
    EXPECT_LE(result.mean_trusted_ratio, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ScenarioMatrix, ::testing::ValuesIn(matrix_cells()),
                         [](const ::testing::TestParamInfo<MatrixCell>& info) {
                           return info.param.name();
                         });

// Same seed ⇒ identical metric streams, bit for bit — across the hardest
// cells (adversary + trusted overlay + churn + eviction + identification).
class ScenarioDeterminism : public ::testing::TestWithParam<MatrixCell> {};

TEST_P(ScenarioDeterminism, SameSeedReplaysBitExactly) {
  scenario::ScenarioSpec spec = GetParam().scenario();
  spec.identification().seed(99);
  const ExperimentResult first = spec.run();
  const ExperimentResult second = spec.run();
  EXPECT_TRUE(same_metric_streams(first, second));
  EXPECT_EQ(first.ident_best.flagged, second.ident_best.flagged);
  EXPECT_EQ(first.ident_best.f1, second.ident_best.f1);
}

TEST_P(ScenarioDeterminism, DifferentSeedsDiverge) {
  scenario::ScenarioSpec spec = GetParam().scenario();
  const ExperimentResult first = spec.seed(1).run();
  const ExperimentResult second = spec.seed(2).run();
  // Two seeds agreeing on every counter would mean the seed is ignored.
  EXPECT_FALSE(first.swaps_completed == second.swaps_completed &&
               first.pollution_series == second.pollution_series &&
               first.min_knowledge_series == second.min_knowledge_series);
}

INSTANTIATE_TEST_SUITE_P(
    Reference, ScenarioDeterminism,
    ::testing::Values(MatrixCell{0.1, 0.2, false, 40}, MatrixCell{0.3, 0.2, true, 100},
                      MatrixCell{0.3, 1.0, true, 40}),
    [](const ::testing::TestParamInfo<MatrixCell>& info) { return info.param.name(); });

// The §VI-A identification attack sees through an *unprotected* trusted
// overlay: with eviction on and no camouflage, flagged nodes exist and the
// attack beats the trivial all-negative classifier.
TEST(ScenarioIdentification, EvictionLeaksTrustedIdentityWithoutCountermeasures) {
  const metrics::ExperimentResult result = Scenario()
                                               .adversary(0.2)
                                               .trusted_share(0.3)
                                               .eviction_pct(100)
                                               .identification()
                                               .rounds(60)
                                               .run();
  EXPECT_GT(result.ident_best.trusted_total, 0u);
  EXPECT_GT(result.ident_best.flagged, 0u);
  EXPECT_GT(result.ident_best.recall, 0.0);
  EXPECT_GT(result.ident_best.f1, 0.0);
}

// Churn integration: nodes that leave stop exchanging, rejoiners recover,
// and the run keeps its full metric streams.
TEST(ScenarioChurn, ChurnReducesThroughputButNotCorrectness) {
  const scenario::ScenarioSpec stable = Scenario().adversary(0.1).trusted_share(0.2);
  scenario::ScenarioSpec churny = stable;
  churny.churn(metrics::ChurnSpec::steady(0.05, 8, true));

  const metrics::ExperimentResult calm = stable.run();
  const metrics::ExperimentResult stormy = churny.run();
  EXPECT_LT(stormy.pulls_completed, calm.pulls_completed);
  EXPECT_GT(stormy.pulls_completed, 0u);
  EXPECT_EQ(stormy.pollution_series.size(), calm.pollution_series.size());
}

}  // namespace
}  // namespace raptee::test
