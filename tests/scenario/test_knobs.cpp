// Knobs::from_env strict parsing: RAPTEE_BENCH_* values must be plain
// in-range unsigned decimals — signs, trailing garbage, overlong and
// out-of-range values raise std::invalid_argument instead of silently
// falling back (the old behaviour accepted `RAPTEE_BENCH_SEED=12abc` as
// 12).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <string>

#include "scenario/knobs.hpp"

namespace raptee::scenario {
namespace {

const char* const kVars[] = {"RAPTEE_BENCH_FULL",        "RAPTEE_BENCH_N",
                             "RAPTEE_BENCH_L1",          "RAPTEE_BENCH_ROUNDS",
                             "RAPTEE_BENCH_REPS",        "RAPTEE_BENCH_THREADS",
                             "RAPTEE_BENCH_SEED",        "RAPTEE_BENCH_TAMPER_PCT",
                             "RAPTEE_BENCH_ATTACK",      "RAPTEE_BENCH_PORT",
                             "RAPTEE_BENCH_CONNECTIONS", "RAPTEE_BENCH_DURATION_MS",
                             "RAPTEE_BENCH_LATENCY",     "RAPTEE_BENCH_JITTER_PCT",
                             "RAPTEE_BENCH_PARTITION"};

/// Clears every RAPTEE_BENCH_* variable for the test and restores the
/// ambient values afterwards (CI exports RAPTEE_BENCH_THREADS, so the
/// suite must not leak or depend on it).
struct KnobsEnvFixture : public ::testing::Test {
  void SetUp() override {
    for (const char* var : kVars) {
      if (const char* value = std::getenv(var)) saved_[var] = value;
      ::unsetenv(var);
    }
  }
  void TearDown() override {
    for (const char* var : kVars) {
      const auto it = saved_.find(var);
      if (it == saved_.end()) {
        ::unsetenv(var);
      } else {
        ::setenv(var, it->second.c_str(), 1);
      }
    }
  }
  static void set(const char* var, const char* value) { ::setenv(var, value, 1); }

 private:
  std::map<std::string, std::string> saved_;
};

TEST_F(KnobsEnvFixture, DefaultsWhenUnset) {
  const Knobs knobs = Knobs::from_env();
  EXPECT_FALSE(knobs.full);
  EXPECT_EQ(knobs.n, 400u);
  EXPECT_EQ(knobs.l1, 40u);
  EXPECT_EQ(knobs.rounds, 150u);
  EXPECT_EQ(knobs.reps, 1u);
  EXPECT_EQ(knobs.threads, 0u);  // 0 = hardware concurrency
  EXPECT_EQ(knobs.seed, 20220308u);
}

TEST_F(KnobsEnvFixture, ParsesValidOverrides) {
  set("RAPTEE_BENCH_N", "1234");
  set("RAPTEE_BENCH_THREADS", "4");
  set("RAPTEE_BENCH_SEED", "0");  // 0 is a legitimate seed
  const Knobs knobs = Knobs::from_env();
  EXPECT_EQ(knobs.n, 1234u);
  EXPECT_EQ(knobs.threads, 4u);
  EXPECT_EQ(knobs.seed, 0u);
}

TEST_F(KnobsEnvFixture, SeedUsesTheFullUint64Range) {
  set("RAPTEE_BENCH_SEED", "18446744073709551615");
  EXPECT_EQ(Knobs::from_env().seed, ~0ull);
}

TEST_F(KnobsEnvFixture, RejectsTrailingGarbage) {
  set("RAPTEE_BENCH_SEED", "12abc");
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
}

TEST_F(KnobsEnvFixture, RejectsNonNumericSizing) {
  set("RAPTEE_BENCH_N", "lots");
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
}

TEST_F(KnobsEnvFixture, RejectsEmptyValue) {
  set("RAPTEE_BENCH_ROUNDS", "");
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
}

TEST_F(KnobsEnvFixture, ThreadsZeroIsRejected) {
  // 0 would be ambiguous with the auto default; unset means auto.
  set("RAPTEE_BENCH_THREADS", "0");
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
}

TEST_F(KnobsEnvFixture, ThreadsNegativeIsRejected) {
  set("RAPTEE_BENCH_THREADS", "-4");
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
}

TEST_F(KnobsEnvFixture, ThreadsNonNumericIsRejected) {
  set("RAPTEE_BENCH_THREADS", "four");
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
}

TEST_F(KnobsEnvFixture, ThreadsHugeIsRejected) {
  set("RAPTEE_BENCH_THREADS", "100000");  // cap is 4096
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
  set("RAPTEE_BENCH_THREADS", "99999999999999999999999999");  // > uint64
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
}

TEST_F(KnobsEnvFixture, ThreadsAtTheCapParses) {
  set("RAPTEE_BENCH_THREADS", "4096");
  EXPECT_EQ(Knobs::from_env().threads, 4096u);
}

TEST_F(KnobsEnvFixture, FullMustBeZeroOrOne) {
  set("RAPTEE_BENCH_FULL", "1");
  EXPECT_TRUE(Knobs::from_env().full);
  set("RAPTEE_BENCH_FULL", "yes");
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
}

TEST_F(KnobsEnvFixture, PopulationBelowTheSimulatorMinimumIsRejected) {
  set("RAPTEE_BENCH_N", "4");  // ExperimentConfig requires n >= 8
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
}

TEST_F(KnobsEnvFixture, TamperPctParsesWithinItsPercentRange) {
  EXPECT_EQ(Knobs::from_env().tamper_pct, 25u);  // default
  set("RAPTEE_BENCH_TAMPER_PCT", "0");
  EXPECT_EQ(Knobs::from_env().tamper_pct, 0u);
  set("RAPTEE_BENCH_TAMPER_PCT", "100");
  EXPECT_EQ(Knobs::from_env().tamper_pct, 100u);
  set("RAPTEE_BENCH_TAMPER_PCT", "101");
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
  set("RAPTEE_BENCH_TAMPER_PCT", "25%");
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
}

TEST_F(KnobsEnvFixture, AttackKnobSelectsRegisteredStrategies) {
  EXPECT_EQ(Knobs::from_env().attack, "balanced");  // default
  set("RAPTEE_BENCH_ATTACK", "eclipse");
  const Knobs knobs = Knobs::from_env();
  EXPECT_EQ(knobs.attack, "eclipse");
  EXPECT_EQ(knobs.base_spec().config().attack.strategy, "eclipse");
  set("RAPTEE_BENCH_ATTACK", "not-a-strategy");
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
  set("RAPTEE_BENCH_ATTACK", "");
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
}

TEST_F(KnobsEnvFixture, ServiceBenchKnobsDefaultAndParse) {
  const Knobs defaults = Knobs::from_env();
  EXPECT_EQ(defaults.port, 0u);          // 0 = ephemeral port
  EXPECT_EQ(defaults.connections, 8u);
  EXPECT_EQ(defaults.duration_ms, 1000u);
  set("RAPTEE_BENCH_PORT", "19099");
  set("RAPTEE_BENCH_CONNECTIONS", "32");
  set("RAPTEE_BENCH_DURATION_MS", "250");
  const Knobs knobs = Knobs::from_env();
  EXPECT_EQ(knobs.port, 19099u);
  EXPECT_EQ(knobs.connections, 32u);
  EXPECT_EQ(knobs.duration_ms, 250u);
}

TEST_F(KnobsEnvFixture, ServiceBenchKnobsAreRangeAndFormatChecked) {
  set("RAPTEE_BENCH_PORT", "65536");  // not a TCP port
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
  set("RAPTEE_BENCH_PORT", "0");  // explicit ephemeral is fine
  EXPECT_EQ(Knobs::from_env().port, 0u);

  set("RAPTEE_BENCH_CONNECTIONS", "0");  // a load of zero clients is a typo
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
  ::unsetenv("RAPTEE_BENCH_CONNECTIONS");

  set("RAPTEE_BENCH_DURATION_MS", "600001");  // cap: 10 minutes
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
  set("RAPTEE_BENCH_DURATION_MS", "250ms");  // strict: no unit suffix
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
}

TEST_F(KnobsEnvFixture, EventKnobsDefaultAndParse) {
  const Knobs defaults = Knobs::from_env();
  EXPECT_EQ(defaults.latency, "lan");
  EXPECT_EQ(defaults.jitter_pct, 0.0);
  EXPECT_EQ(defaults.partition, "none");
  set("RAPTEE_BENCH_LATENCY", "wan");
  set("RAPTEE_BENCH_JITTER_PCT", "12.5");
  set("RAPTEE_BENCH_PARTITION", "mid-third");
  const Knobs knobs = Knobs::from_env();
  EXPECT_EQ(knobs.latency, "wan");
  EXPECT_EQ(knobs.jitter_pct, 12.5);
  EXPECT_EQ(knobs.partition, "mid-third");
  // The resolvers hand back validated evt specs.
  knobs.latency_spec().validate();
  EXPECT_FALSE(knobs.partition_schedule().windows.empty());
}

TEST_F(KnobsEnvFixture, EventKnobsAreValidatedAgainstTheCatalogs) {
  set("RAPTEE_BENCH_LATENCY", "dialup");  // not in the named catalog
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
  ::unsetenv("RAPTEE_BENCH_LATENCY");

  set("RAPTEE_BENCH_PARTITION", "weekly");  // unknown schedule
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
  ::unsetenv("RAPTEE_BENCH_PARTITION");

  set("RAPTEE_BENCH_JITTER_PCT", "150");  // jitter is a percentage
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
  set("RAPTEE_BENCH_JITTER_PCT", "lots");
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
  set("RAPTEE_BENCH_JITTER_PCT", "10%");  // strict: no suffix
  EXPECT_THROW((void)Knobs::from_env(), std::invalid_argument);
}

TEST_F(KnobsEnvFixture, SharedArgvParsersAreStrict) {
  // The same strict parsers back the examples' argv handling.
  EXPECT_EQ(parse_u64("N", "600", 8, 1000000), 600u);
  EXPECT_THROW((void)parse_u64("N", "-600", 8, 1000000), std::invalid_argument);
  EXPECT_THROW((void)parse_u64("N", "600x", 8, 1000000), std::invalid_argument);
  EXPECT_THROW((void)parse_u64("N", "4", 8, 1000000), std::invalid_argument);
  EXPECT_EQ(parse_double("f%", "12.5", 0.0, 100.0), 12.5);
  EXPECT_EQ(parse_double("f%", "20", 0.0, 100.0), 20.0);
  EXPECT_THROW((void)parse_double("f%", "-3", 0.0, 100.0), std::invalid_argument);
  EXPECT_THROW((void)parse_double("f%", "1e3", 0.0, 100.0), std::invalid_argument);
  EXPECT_THROW((void)parse_double("f%", "101", 0.0, 100.0), std::invalid_argument);
  EXPECT_THROW((void)parse_double("f%", "1.2.3", 0.0, 100.0), std::invalid_argument);
  EXPECT_THROW((void)parse_double("f%", ".", 0.0, 100.0), std::invalid_argument);
}

}  // namespace
}  // namespace raptee::scenario
