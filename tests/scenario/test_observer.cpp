// Delivery contract of the IScenarioObserver streaming interface: per-round
// callbacks fire exactly `rounds` times, in order, with snapshot values
// bit-identical to the corresponding entries of the final ExperimentResult
// series — and attaching an observer never changes the simulation outcome.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "support/scenario.hpp"

namespace raptee::scenario {
namespace {

class RecordingObserver final : public IScenarioObserver {
 public:
  void on_run_start(const metrics::ExperimentConfig& config,
                    const sim::Engine& engine) override {
    ++starts;
    population_at_start = engine.size();
    configured_rounds = config.rounds;
  }

  void on_round(const RoundSnapshot& snapshot, const sim::Engine& engine) override {
    snapshots.push_back(snapshot);
    engine_round_at_callback.push_back(engine.now());
  }

  void on_run_end(const metrics::ExperimentResult& result,
                  const sim::Engine& engine) override {
    ++ends;
    rounds_before_end = static_cast<Round>(snapshots.size());
    final_pulls = engine.counters().pulls_completed;
    final_result_pollution = result.steady_pollution;
  }

  int starts = 0;
  int ends = 0;
  std::size_t population_at_start = 0;
  Round configured_rounds = 0;
  Round rounds_before_end = 0;
  std::uint64_t final_pulls = 0;
  double final_result_pollution = -1.0;
  std::vector<RoundSnapshot> snapshots;
  std::vector<Round> engine_round_at_callback;
};

bool bit_equal(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

TEST(ScenarioObserver, FiresExactlyOncePerRoundAndMatchesSeries) {
  constexpr Round kRounds = 48;
  const ScenarioSpec spec = test::Scenario()
                                .adversary(0.2)
                                .trusted_share(0.3)
                                .eviction_pct(40)
                                .rounds(kRounds);

  RecordingObserver observer;
  const metrics::ExperimentResult result = Runner().run(spec, &observer);

  EXPECT_EQ(observer.starts, 1);
  EXPECT_EQ(observer.ends, 1);
  EXPECT_EQ(observer.configured_rounds, kRounds);
  ASSERT_EQ(observer.snapshots.size(), kRounds);
  EXPECT_EQ(observer.rounds_before_end, kRounds);

  // Rounds arrive in order, 0-based, while the engine clock already
  // advanced past the completed round.
  for (Round r = 0; r < kRounds; ++r) {
    EXPECT_EQ(observer.snapshots[r].round, r);
    EXPECT_EQ(observer.engine_round_at_callback[r], r + 1);
  }

  // The streamed pollution values ARE the final series, bit for bit.
  ASSERT_EQ(result.pollution_series.size(), kRounds);
  ASSERT_EQ(result.pollution_series_trusted.size(), kRounds);
  ASSERT_EQ(result.min_knowledge_series.size(), kRounds);
  for (Round r = 0; r < kRounds; ++r) {
    EXPECT_TRUE(bit_equal(observer.snapshots[r].pollution, result.pollution_series[r]))
        << "pollution diverged at round " << r;
    EXPECT_TRUE(bit_equal(observer.snapshots[r].pollution_trusted,
                          result.pollution_series_trusted[r]))
        << "trusted pollution diverged at round " << r;
    EXPECT_TRUE(bit_equal(observer.snapshots[r].min_knowledge,
                          result.min_knowledge_series[r]))
        << "min knowledge diverged at round " << r;
  }

  // Counters are cumulative and end at the result's totals.
  for (Round r = 1; r < kRounds; ++r) {
    EXPECT_GE(observer.snapshots[r].pulls_completed,
              observer.snapshots[r - 1].pulls_completed);
    EXPECT_GE(observer.snapshots[r].swaps_completed,
              observer.snapshots[r - 1].swaps_completed);
  }
  EXPECT_EQ(observer.snapshots.back().pulls_completed, result.pulls_completed);
  EXPECT_EQ(observer.snapshots.back().swaps_completed, result.swaps_completed);
  EXPECT_EQ(observer.final_pulls, result.pulls_completed);
  EXPECT_EQ(observer.final_result_pollution, result.steady_pollution);

  // The population at on_run_start is the full build (base + injected).
  EXPECT_EQ(observer.population_at_start, spec.config().n);
}

TEST(ScenarioObserver, FixedEvictionRateIsStreamedPerRound) {
  RecordingObserver observer;
  (void)Runner().run(
      test::Scenario().adversary(0.2).trusted_share(0.5).eviction_pct(60).rounds(20),
      &observer);
  ASSERT_EQ(observer.snapshots.size(), 20u);
  for (const RoundSnapshot& snapshot : observer.snapshots) {
    EXPECT_NEAR(snapshot.eviction_rate, 0.60, 1e-12);
    EXPECT_GE(snapshot.trusted_ratio, 0.0);
    EXPECT_LE(snapshot.trusted_ratio, 1.0);
  }
}

TEST(ScenarioObserver, AttackSnapshotsStreamVictimSeriesAndSuppression) {
  // Eclipse: per-round victim pollution in the snapshot IS the final
  // series, bit for bit, and the attack stays on duty every round.
  adversary::AttackSpec eclipse = adversary::AttackSpec::eclipse(0.2);
  RecordingObserver observer;
  const auto result = Runner().run(
      test::Scenario().adversary(0.2).trusted_share(0.3).attack(eclipse).rounds(24),
      &observer);
  ASSERT_EQ(observer.snapshots.size(), 24u);
  ASSERT_EQ(result.attack.victim_pollution_series.size(), 24u);
  for (Round r = 0; r < 24; ++r) {
    EXPECT_TRUE(bit_equal(observer.snapshots[r].victim_pollution,
                          result.attack.victim_pollution_series[r]))
        << "victim pollution diverged at round " << r;
    EXPECT_TRUE(observer.snapshots[r].attack_active);
  }

  // Omission: the cumulative suppression counter streams per round and
  // ends at the result total.
  RecordingObserver omission_observer;
  const auto omission = Runner().run(
      test::Scenario().adversary(0.2).attack("omission").rounds(16), &omission_observer);
  ASSERT_EQ(omission_observer.snapshots.size(), 16u);
  for (Round r = 1; r < 16; ++r) {
    EXPECT_GE(omission_observer.snapshots[r].legs_suppressed,
              omission_observer.snapshots[r - 1].legs_suppressed);
  }
  EXPECT_EQ(omission_observer.snapshots.back().legs_suppressed,
            omission.attack.legs_suppressed);

  // Oscillating: attack_active follows the duty cycle.
  RecordingObserver duty_observer;
  (void)Runner().run(
      test::Scenario().adversary(0.2).attack(adversary::AttackSpec::oscillating(4, 4)).rounds(16),
      &duty_observer);
  for (Round r = 0; r < 16; ++r) {
    EXPECT_EQ(duty_observer.snapshots[r].attack_active, (r % 8) < 4) << "round " << r;
  }

  // No adversary: the attack is never active.
  RecordingObserver idle_observer;
  (void)Runner().run(test::Scenario().adversary(0.0).rounds(8), &idle_observer);
  for (const RoundSnapshot& snapshot : idle_observer.snapshots) {
    EXPECT_FALSE(snapshot.attack_active);
    EXPECT_EQ(snapshot.legs_suppressed, 0u);
    EXPECT_TRUE(bit_equal(snapshot.victim_pollution, 0.0));
  }
}

TEST(ScenarioObserver, AttachingAnObserverDoesNotPerturbTheRun) {
  const ScenarioSpec spec =
      test::Scenario().adversary(0.3).trusted_share(0.2).eviction_pct(100).churn(true);
  RecordingObserver observer;
  const auto observed = Runner().run(spec, &observer);
  const auto plain = spec.run();
  EXPECT_TRUE(test::same_metric_streams(observed, plain));
}

}  // namespace
}  // namespace raptee::scenario
