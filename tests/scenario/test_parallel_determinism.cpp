// The exec acceptance bar: every Runner entry point produces BIT-IDENTICAL
// results — including the serialized results::to_json documents — whether
// it runs on 1 thread or on a wide work-stealing pool.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "support/scenario.hpp"

namespace raptee::scenario {
namespace {

ScenarioSpec fixture_spec() {
  return test::Scenario()
      .adversary(0.2)
      .trusted_share(0.3)
      .eviction_pct(40)
      .rounds(24)
      .seed(20220308)
      .label("parallel-determinism");
}

TEST(ParallelDeterminism, RunRepeatedJsonBytesMatchSequential) {
  const ScenarioSpec spec = fixture_spec();
  const auto sequential = Runner(1).run_repeated(spec, 4);
  const auto parallel = Runner(4).run_repeated(spec, 4);
  EXPECT_EQ(results::repeated_document(spec, 4, sequential),
            results::repeated_document(spec, 4, parallel));
}

TEST(ParallelDeterminism, RunGridJsonBytesMatchSequential) {
  Grid grid(fixture_spec().rounds(12));
  grid.axis_adversary_pct({10, 30}).axis_trusted_pct({0, 20});
  const GridResult sequential = Runner(1).run_grid(grid, 2);
  const GridResult parallel = Runner(8).run_grid(grid, 2);
  const std::string expected = results::grid_document(sequential, 2);
  EXPECT_EQ(expected, results::grid_document(parallel, 2));
  EXPECT_TRUE(metrics::json_valid(expected));
}

TEST(ParallelDeterminism, RunBatchPreservesOrderAcrossPoolWidths) {
  std::vector<ScenarioSpec> specs;
  for (const int f : {0, 10, 20, 30}) {
    specs.push_back(fixture_spec().adversary_pct(f).rounds(12));
  }
  const auto sequential = Runner(1).run_batch(specs, 2);
  const auto parallel = Runner(3).run_batch(specs, 2);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(results::to_json(sequential[i]), results::to_json(parallel[i]))
        << "batch cell " << i;
  }
}

TEST(ParallelDeterminism, RunComparisonJsonBytesMatchSequential) {
  const ScenarioSpec spec = fixture_spec().rounds(16);
  const auto sequential = Runner(1).run_comparison(spec, 2);
  const auto parallel = Runner(4).run_comparison(spec, 2);
  EXPECT_EQ(results::comparison_document(spec, 2, sequential),
            results::comparison_document(spec, 2, parallel));
}

TEST(ParallelDeterminism, FusedComparisonMatchesTheMetricsLayer) {
  // Runner fuses both comparison halves into one batch; the standalone
  // metrics::run_comparison path must agree byte for byte.
  const ScenarioSpec spec = fixture_spec().rounds(16);
  const auto fused = Runner(4).run_comparison(spec, 2);
  const auto layered = metrics::run_comparison(spec.config(), 2, 2);
  EXPECT_EQ(results::to_json(fused), results::to_json(layered));
}

TEST(ParallelDeterminism, BatchCellAgreesWithStandaloneRepetition) {
  // The repetition_seed contract: cell (spec, rep) of a batch is the same
  // run as repetition rep of a standalone run_repeated.
  const ScenarioSpec spec = fixture_spec().rounds(12);
  const auto repeated = Runner(4).run_repeated(spec, 3);
  const auto batch = Runner(4).run_batch({spec}, 3);
  EXPECT_EQ(results::to_json(repeated), results::to_json(batch.front()));
}

TEST(ParallelDeterminism, ShardedEngineInsideParallelGridStaysDeterministic) {
  // Nested parallelism: grid fan-out on the Runner pool, sharded push
  // phase inside every run. Still bit-identical to the all-sequential
  // execution of the same sharded spec.
  Grid grid(fixture_spec().rounds(12).threads(2));
  grid.axis_adversary_pct({10, 30});
  const std::string wide = results::grid_document(Runner(4).run_grid(grid, 2), 2);
  const std::string narrow = results::grid_document(Runner(1).run_grid(grid, 2), 2);
  EXPECT_EQ(wide, narrow);
}

}  // namespace
}  // namespace raptee::scenario
