// results::to_json round-trip properties: every document parses under the
// strict validator, embeds config + seed provenance, and — the acceptance
// bar for the bench trajectory — a fixed seed emits bit-identical JSON
// across independent runs.
#include <gtest/gtest.h>

#include <string>

#include "scenario/scenario.hpp"
#include "support/scenario.hpp"

namespace raptee::scenario {
namespace {

ScenarioSpec fixed_spec() {
  return test::Scenario()
      .adversary(0.2)
      .trusted_share(0.3)
      .eviction_pct(40)
      .identification()
      .rounds(32)
      .seed(20220308)
      .label("roundtrip-fixture");
}

TEST(ResultsJson, ExperimentDocumentIsBitIdenticalAcrossRuns) {
  const ScenarioSpec spec = fixed_spec();
  const std::string first = results::experiment_document(spec, spec.run());
  const std::string second = results::experiment_document(spec, spec.run());
  EXPECT_EQ(first, second) << "fixed-seed JSON must be byte-stable";
  EXPECT_TRUE(metrics::json_valid(first));
}

TEST(ResultsJson, RepeatedDocumentIsBitIdenticalAcrossRuns) {
  const ScenarioSpec spec = fixed_spec();
  const Runner runner(2);
  const std::string first =
      results::repeated_document(spec, 3, runner.run_repeated(spec, 3));
  const std::string second =
      results::repeated_document(spec, 3, runner.run_repeated(spec, 3));
  EXPECT_EQ(first, second);
  EXPECT_TRUE(metrics::json_valid(first));
}

TEST(ResultsJson, DocumentsCarryProvenance) {
  const ScenarioSpec spec = fixed_spec();
  const std::string doc = results::experiment_document(spec, spec.run());
  EXPECT_NE(doc.find("\"schema\":\"raptee.scenario.experiment/4\""), std::string::npos);
  EXPECT_NE(doc.find("\"label\":\"roundtrip-fixture\""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\":20220308"), std::string::npos);
  EXPECT_NE(doc.find("\"byzantine_fraction\":0.2"), std::string::npos);
  EXPECT_NE(doc.find("\"rounds\":32"), std::string::npos);
  EXPECT_NE(doc.find("\"pollution_series\":["), std::string::npos);
  // /3: the config always carries the attack spec...
  EXPECT_NE(doc.find("\"attack\":{\"strategy\":\"balanced\""), std::string::npos);
  // ...but a default balanced run's RESULT block stays attack-free.
  EXPECT_EQ(doc.find("\"victim_pollution_series\""), std::string::npos);
  EXPECT_EQ(doc.find("\"legs_suppressed\""), std::string::npos);
}

TEST(ResultsJson, EngagedAttackEmitsResultTelemetry) {
  const ScenarioSpec spec = fixed_spec().attack(adversary::AttackSpec::eclipse(0.1));
  const std::string doc = results::experiment_document(spec, spec.run());
  EXPECT_TRUE(metrics::json_valid(doc));
  EXPECT_NE(doc.find("\"attack\":{\"strategy\":\"eclipse\""), std::string::npos);
  EXPECT_NE(doc.find("\"victim_pollution_series\":["), std::string::npos);
  EXPECT_NE(doc.find("\"rounds_to_isolation\""), std::string::npos);
  EXPECT_NE(doc.find("\"legs_suppressed\""), std::string::npos);

  // Aggregated documents carry the attack block too.
  const Runner runner(2);
  const std::string repeated =
      results::repeated_document(spec, 2, runner.run_repeated(spec, 2));
  EXPECT_TRUE(metrics::json_valid(repeated));
  EXPECT_NE(repeated.find("\"attack\":{\"attacked_runs\":2"), std::string::npos);
  EXPECT_NE(repeated.find("\"victim_pollution\":{"), std::string::npos);
}

TEST(ResultsJson, ComparisonDocumentParses) {
  const ScenarioSpec spec = fixed_spec().rounds(20);
  const auto cmp = Runner(2).run_comparison(spec, 2);
  const std::string doc = results::comparison_document(spec, 2, cmp);
  EXPECT_TRUE(metrics::json_valid(doc));
  EXPECT_NE(doc.find("\"baseline\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"raptee\":{"), std::string::npos);
}

TEST(ResultsJson, GridDocumentIndexesCellsRowMajor) {
  Grid grid(test::Scenario().rounds(12));
  grid.axis_adversary_pct({10, 30}).axis_trusted_pct({0, 20});
  const Runner runner(2);
  const GridResult sweep = runner.run_grid(grid, 1);

  ASSERT_EQ(sweep.cells.size(), 4u);
  ASSERT_EQ(sweep.axes.size(), 2u);
  EXPECT_EQ(sweep.flat_index({0, 0}), 0u);
  EXPECT_EQ(sweep.flat_index({0, 1}), 1u);
  EXPECT_EQ(sweep.flat_index({1, 0}), 2u);
  EXPECT_EQ(sweep.flat_index({1, 1}), 3u);
  EXPECT_EQ(sweep.specs[2].config().byzantine_fraction, 0.3);
  EXPECT_EQ(sweep.specs[2].config().trusted_fraction, 0.0);
  EXPECT_EQ(sweep.specs[3].config().trusted_fraction, 0.2);

  const std::string doc = results::grid_document(sweep, 1);
  EXPECT_TRUE(metrics::json_valid(doc));
  EXPECT_NE(doc.find("\"schema\":\"raptee.scenario.grid/4\""), std::string::npos);
  EXPECT_NE(doc.find("adversary=f=10%"), std::string::npos);

  // Determinism holds for grids too.
  EXPECT_EQ(doc, results::grid_document(runner.run_grid(grid, 1), 1));
}

TEST(ResultsJson, BenchReportDocumentParses) {
  Knobs knobs;  // defaults; no env reads, keeps the test hermetic
  results::BenchReport report("unit_test_bench", knobs);
  report.add_row(metrics::JsonObject().field("f_pct", 10).field("pollution", 0.25));
  report.add_row(metrics::JsonObject()
                     .field("f_pct", 30)
                     .field("discovery_overhead_pct", std::optional<double>{}));
  const std::string doc = report.document();
  EXPECT_TRUE(metrics::json_valid(doc));
  EXPECT_NE(doc.find("\"bench\":\"unit_test_bench\""), std::string::npos);
  EXPECT_NE(doc.find("\"discovery_overhead_pct\":null"), std::string::npos);
}

}  // namespace
}  // namespace raptee::scenario
