// evt::Scheduler unit gates: (virtual_time, seq) ordering, same-instant
// FIFO ties, past-timestamp clamping, idle advancement and the depth
// high-water mark — the properties the engine's event mode leans on for
// worker-count-independent dispatch order.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "evt/scheduler.hpp"

namespace raptee::evt {
namespace {

TEST(Scheduler, PopsInTimestampOrderAndAdvancesTheClock) {
  Scheduler sched;
  sched.schedule(300, 0, 3);
  sched.schedule(100, 0, 1);
  sched.schedule(200, 0, 2);
  EXPECT_EQ(sched.size(), 3u);
  EXPECT_EQ(sched.now_us(), 0u);

  EXPECT_EQ(sched.pop().a, 1u);
  EXPECT_EQ(sched.now_us(), 100u);
  EXPECT_EQ(sched.pop().a, 2u);
  EXPECT_EQ(sched.pop().a, 3u);
  EXPECT_EQ(sched.now_us(), 300u);
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, SameInstantTiesBreakInScheduleOrder) {
  Scheduler sched;
  for (std::uint64_t i = 0; i < 16; ++i) sched.schedule(500, 7, i);
  for (std::uint64_t i = 0; i < 16; ++i) {
    const Event event = sched.pop();
    EXPECT_EQ(event.a, i) << "tie broken by heap internals, not schedule order";
    EXPECT_EQ(event.kind, 7u);
  }
}

TEST(Scheduler, PastTimestampsClampToNow) {
  Scheduler sched;
  sched.schedule(1000, 0, 1);
  (void)sched.pop();  // now = 1000
  sched.schedule(200, 0, 2);
  const Event event = sched.pop();
  EXPECT_EQ(event.a, 2u);
  EXPECT_EQ(event.at_us, 1000u) << "a message cannot arrive before it was sent";
  EXPECT_EQ(sched.now_us(), 1000u);
}

TEST(Scheduler, AdvanceToNeverMovesBackwardsAndCarriesB) {
  Scheduler sched;
  sched.advance_to(2500);
  EXPECT_EQ(sched.now_us(), 2500u);
  sched.advance_to(100);
  EXPECT_EQ(sched.now_us(), 2500u);

  sched.schedule(3000, 1, 4, 77);
  const Event event = sched.pop();
  EXPECT_EQ(event.kind, 1u);
  EXPECT_EQ(event.b, 77u);
}

TEST(Scheduler, MaxDepthTracksHighWaterAndClearResets) {
  Scheduler sched;
  for (std::uint64_t i = 0; i < 5; ++i) sched.schedule(i, 0, i);
  (void)sched.pop();
  (void)sched.pop();
  sched.schedule(10, 0, 9);
  EXPECT_EQ(sched.max_depth(), 5u);

  sched.clear();
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.max_depth(), 0u);
  EXPECT_EQ(sched.now_us(), 1u) << "clear drops events, not the clock";
}

TEST(Scheduler, CloseWindowSnapsTheClockButOnlyWhenDrained) {
  // A late arrival popped past the round deadline must not leak into the
  // next round's start: close_window rewinds the drained clock to the
  // deadline, but refuses while events are still pending.
  Scheduler sched;
  sched.schedule(560, 0, 1);  // a delayed leg landing after the 500 us window
  (void)sched.pop();
  EXPECT_EQ(sched.now_us(), 560u);
  sched.close_window(500);
  EXPECT_EQ(sched.now_us(), 500u);

  sched.schedule(700, 0, 2);
  EXPECT_THROW(sched.close_window(600), std::invalid_argument);
}

TEST(Scheduler, PopOnEmptyHeapThrows) {
  Scheduler sched;
  EXPECT_THROW((void)sched.pop(), std::invalid_argument);
}

TEST(Scheduler, InterleavedScheduleAndPopStaysSorted) {
  // Deterministic pseudo-random interleaving: every popped timestamp must be
  // monotonically non-decreasing no matter how schedule/pop interleave.
  Scheduler sched;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state] {
    state ^= state << 7;
    state ^= state >> 9;
    return state;
  };
  std::uint64_t popped = 0, last = 0;
  for (int i = 0; i < 2000; ++i) {
    sched.schedule(sched.now_us() + next() % 5000, 0, static_cast<std::uint64_t>(i));
    if (next() % 3 == 0 && !sched.empty()) {
      const Event event = sched.pop();
      EXPECT_GE(event.at_us, last);
      last = event.at_us;
      ++popped;
    }
  }
  while (!sched.empty()) {
    const Event event = sched.pop();
    EXPECT_GE(event.at_us, last);
    last = event.at_us;
    ++popped;
  }
  EXPECT_EQ(popped, 2000u);
}

}  // namespace
}  // namespace raptee::evt
