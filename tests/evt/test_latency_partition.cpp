// evt::LatencySpec + PartitionSchedule unit gates: the named catalogs the
// bench knobs resolve against, sample-range and determinism contracts of
// every latency kind, and the region-cut predicate the engine consults per
// message.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"
#include "evt/config.hpp"

namespace raptee::evt {
namespace {

TEST(LatencySpec, NamedCatalogRoundTripsAndRejectsUnknown) {
  for (const std::string& name : LatencySpec::names()) {
    const LatencySpec spec = LatencySpec::named(name);
    spec.validate();
  }
  EXPECT_THROW((void)LatencySpec::named("dialup"), std::invalid_argument);
  try {
    (void)LatencySpec::named("dialup");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("lan"), std::string::npos)
        << "the error should list the catalog";
  }
}

TEST(LatencySpec, SamplesAreDeterministicPerRngState) {
  const LatencySpec spec = LatencySpec::named("wan");
  Rng a(42), b(42);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(spec.sample_us(a, 0, 0), spec.sample_us(b, 0, 0));
  }
}

TEST(LatencySpec, UniformSamplesStayInBounds) {
  const LatencySpec spec = LatencySpec::uniform(40.0, 160.0);
  Rng rng(7);
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t us = spec.sample_us(rng, 0, 0);
    EXPECT_GE(us, 40'000u);
    EXPECT_LE(us, 160'000u);
  }
}

TEST(LatencySpec, FixedWithJitterStaysInBand) {
  const LatencySpec spec = LatencySpec::fixed(10.0, 10.0);  // 10 ms +/- 10 %
  Rng rng(7);
  bool moved = false;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t us = spec.sample_us(rng, 0, 0);
    EXPECT_GE(us, 9'000u);
    EXPECT_LE(us, 11'000u);
    if (us != 10'000u) moved = true;
  }
  EXPECT_TRUE(moved) << "jitter_pct=10 never moved the sample";
}

TEST(LatencySpec, ZeroIsAlwaysZeroAndLognormalIsPositive) {
  Rng rng(3);
  EXPECT_EQ(LatencySpec::zero().sample_us(rng, 0, 0), 0u);
  const LatencySpec tail = LatencySpec::lognormal(60.0, 0.6);
  for (int i = 0; i < 64; ++i) EXPECT_GT(tail.sample_us(rng, 0, 0), 0u);
}

TEST(LatencySpec, MatrixIndexesByRegionPair) {
  const LatencySpec geo = LatencySpec::matrix(2, {1.0, 50.0, 50.0, 2.0});
  Rng rng(1);
  EXPECT_EQ(geo.sample_us(rng, 0, 0), 1'000u);
  EXPECT_EQ(geo.sample_us(rng, 0, 1), 50'000u);
  EXPECT_EQ(geo.sample_us(rng, 1, 0), 50'000u);
  EXPECT_EQ(geo.sample_us(rng, 1, 1), 2'000u);
}

TEST(LatencySpec, ValidateRejectsMalformedSpecs) {
  LatencySpec inverted = LatencySpec::uniform(100.0, 50.0);
  EXPECT_THROW(inverted.validate(), std::invalid_argument);

  LatencySpec bad_jitter = LatencySpec::fixed(1.0, 150.0);
  EXPECT_THROW(bad_jitter.validate(), std::invalid_argument);

  LatencySpec bad_matrix = LatencySpec::matrix(2, {1.0, 2.0, 3.0, 4.0});
  bad_matrix.matrix_us.pop_back();
  EXPECT_THROW(bad_matrix.validate(), std::invalid_argument);
}

TEST(RegionTopology, MapsNodesRoundRobin) {
  RegionTopology topo;
  EXPECT_EQ(topo.region_of(41), 0u) << "one region maps everything to 0";
  topo.regions = 3;
  EXPECT_EQ(topo.region_of(0), 0u);
  EXPECT_EQ(topo.region_of(4), 1u);
  EXPECT_EQ(topo.region_of(5), 2u);
}

TEST(PartitionSchedule, NamedCatalogResolvesAgainstTotalRounds) {
  EXPECT_TRUE(PartitionSchedule::named("none", 60).windows.empty());
  const PartitionSchedule mid = PartitionSchedule::named("mid-third", 60);
  ASSERT_EQ(mid.windows.size(), 1u);
  EXPECT_EQ(mid.windows[0].from, 20u);
  EXPECT_EQ(mid.windows[0].until, 40u);
  const PartitionSchedule late = PartitionSchedule::named("late-half", 60);
  ASSERT_EQ(late.windows.size(), 1u);
  EXPECT_EQ(late.windows[0].from, 30u);
  EXPECT_EQ(late.windows[0].until, 60u);
  EXPECT_THROW((void)PartitionSchedule::named("weekly", 60), std::invalid_argument);
}

TEST(PartitionSchedule, SeveredCutsIsolatedFromTheRestOnlyInsideWindows) {
  const PartitionSchedule mid = PartitionSchedule::named("mid-third", 60);
  EXPECT_FALSE(mid.active(19));
  EXPECT_TRUE(mid.active(20));
  EXPECT_TRUE(mid.active(39));
  EXPECT_FALSE(mid.active(40)) << "until is exclusive";

  EXPECT_TRUE(mid.severed(0, 1, 25));
  EXPECT_TRUE(mid.severed(1, 0, 25));
  EXPECT_FALSE(mid.severed(0, 0, 25)) << "same region is never severed";
  EXPECT_FALSE(mid.severed(1, 2, 25)) << "two mainland regions stay connected";
  EXPECT_FALSE(mid.severed(0, 1, 10)) << "no cut outside the window";
}

TEST(PartitionSchedule, ValidateRejectsBadWindowsAndRegions) {
  PartitionSchedule inverted;
  inverted.windows.push_back({40, 20, {0}});
  EXPECT_THROW(inverted.validate(2), std::invalid_argument);

  PartitionSchedule out_of_range;
  out_of_range.windows.push_back({0, 10, {5}});
  EXPECT_THROW(out_of_range.validate(2), std::invalid_argument);
}

TEST(EventConfig, ValidateIsLazyWhenDisabledAndStrictWhenEnabled) {
  EventConfig config;
  config.latency = LatencySpec::uniform(100.0, 50.0);  // malformed
  config.validate();                                   // disabled: not checked

  config.enabled = true;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config.latency = LatencySpec::named("geo3");
  config.topology.regions = 2;  // mismatched with the 3-region matrix
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.topology.regions = 3;
  config.validate();
}

}  // namespace
}  // namespace raptee::evt
