// Event-mode determinism gates (ctest label `evt`):
//
//  * worker-count independence — the same event-mode spec produces
//    byte-identical results::to_json documents at engine widths 1, 2, 4 and
//    hardware concurrency (the heap drains serially on the coordinating
//    thread; per-node loss streams split deterministically);
//  * same-seed stability for every event feature: latency models, region
//    partitions, and the delay-assisted adversaries;
//  * schema shape — the "evt" result block and "event" config block appear
//    exactly when event mode is on, and event-mode runs actually diverge
//    from the round-mode baseline they wrap.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "metrics/report.hpp"
#include "scenario/scenario.hpp"

namespace raptee::scenario {
namespace {

ScenarioSpec event_base() {
  return ScenarioSpec()
      .population(96)
      .view_size(12)
      .rounds(24)
      .adversary(0.2)
      .trusted_share(0.25)
      .eviction(core::EvictionSpec::adaptive())
      .latency("wan")
      .round_interval_ms(500)
      .seed(20220308);
}

TEST(EvtDeterminism, BitIdenticalAcrossWorkerCounts) {
  const std::string reference = results::to_json(event_base().threads(1).run());
  EXPECT_TRUE(metrics::json_valid(reference));
  for (const std::size_t width : {std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    const std::string doc = results::to_json(event_base().threads(width).run());
    EXPECT_EQ(doc, reference)
        << "event mode diverged at engine width " << width
        << " (0 = hardware concurrency)";
  }
}

TEST(EvtDeterminism, EveryLatencyModelIsSameSeedStable) {
  for (const std::string& name : evt::LatencySpec::names()) {
    const auto spec = event_base().latency(name);
    const std::string first = results::to_json(spec.run());
    const std::string second = results::to_json(spec.run());
    EXPECT_EQ(first, second) << "latency model '" << name
                             << "' is not same-seed deterministic";
  }
}

TEST(EvtDeterminism, PartitionedRunsAreStableAndActuallySever) {
  auto spec = event_base().partition("mid-third");
  const metrics::ExperimentResult run = spec.run();
  EXPECT_GT(run.evt.partition_drops, 0u) << "mid-third partition cut nothing";
  EXPECT_EQ(results::to_json(run), results::to_json(spec.run()));
  EXPECT_EQ(results::to_json(spec.threads(4).run()), results::to_json(run));
}

TEST(EvtDeterminism, DelayAssistedAttacksAreStableAcrossWidths) {
  for (const char* strategy : {"delay_eclipse", "partition_eclipse"}) {
    auto spec = event_base().attack(strategy);
    const std::string serial = results::to_json(spec.threads(1).run());
    const std::string sharded = results::to_json(spec.threads(4).run());
    EXPECT_EQ(serial, sharded) << "strategy '" << strategy
                               << "' diverged under sharded event mode";
  }
}

TEST(EvtDeterminism, DelayEclipseInjectsLatencyOnlyEventModeSees) {
  // The same delay_eclipse spec must behave differently with event mode on:
  // the injected honest→victim delay pushes refresh past the 500 ms
  // deadline, which round mode cannot express.
  auto attack = adversary::AttackSpec::delay_eclipse(400, 0.25);
  const metrics::ExperimentResult event_run = event_base().attack(attack).run();
  EXPECT_GT(event_run.evt.legs_late, 0u)
      << "the 400 ms injected delay produced no late legs on wan links";
}

TEST(EvtDeterminism, EvtBlocksAppearExactlyWhenEventModeIsOn) {
  const ScenarioSpec round_mode = ScenarioSpec()
                                      .population(96)
                                      .view_size(12)
                                      .rounds(24)
                                      .adversary(0.2)
                                      .seed(5);
  const metrics::ExperimentResult round_run = round_mode.run();
  EXPECT_FALSE(round_run.evt.engaged);
  const std::string round_doc = results::to_json(round_run);
  EXPECT_EQ(round_doc.find("\"evt\""), std::string::npos);
  EXPECT_EQ(results::to_json(round_mode.config()).find("\"event\""),
            std::string::npos);

  const metrics::ExperimentResult event_run = event_base().run();
  EXPECT_TRUE(event_run.evt.engaged);
  EXPECT_EQ(event_run.evt.virtual_ms, 24u * 500u)
      << "virtual clock must end at rounds x interval";
  const std::string event_doc = results::to_json(event_run);
  EXPECT_NE(event_doc.find("\"evt\""), std::string::npos);
  EXPECT_NE(results::to_json(event_base().config()).find("\"event\""),
            std::string::npos);
  EXPECT_TRUE(metrics::json_valid(event_doc));

  EXPECT_NE(results::to_json(event_base().run()),
            results::to_json(event_base().event_mode(false).run()))
      << "wan latency at a 500 ms deadline must not be a silent no-op";
}

}  // namespace
}  // namespace raptee::scenario
