// Gossip peer-sampling framework properties, exercised through the Cyclon
// and Newscast instantiations (Jelasity et al. TOCS'07 §4-5 expectations:
// bounded views, no self-loops, connectivity, balanced in-degrees, low
// clustering after mixing).
#include "gossip/framework.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <queue>

#include "common/stats.hpp"

namespace raptee::gossip {
namespace {

enum class Proto { kCyclon, kNewscast };

FrameworkParams params_for(Proto p, std::size_t c) {
  return p == Proto::kCyclon ? cyclon_params(c) : newscast_params(c);
}

class FrameworkProtoTest : public ::testing::TestWithParam<Proto> {};

TEST_P(FrameworkProtoTest, ViewsStayBoundedAndSelfFree) {
  FrameworkDriver driver(params_for(GetParam(), 10), 60, 42);
  driver.bootstrap_uniform();
  driver.run(30);
  for (std::size_t i = 0; i < driver.size(); ++i) {
    const auto& view = driver.node(i).view();
    EXPECT_LE(view.size(), 10u);
    EXPECT_GE(view.size(), 5u);  // should stay well-populated
    EXPECT_FALSE(view.contains(driver.node(i).id()));
  }
}

TEST_P(FrameworkProtoTest, GraphStaysConnected) {
  FrameworkDriver driver(params_for(GetParam(), 8), 80, 7);
  driver.bootstrap_uniform();
  driver.run(40);
  // BFS over the undirected-ized view graph.
  std::vector<std::vector<std::size_t>> adj(driver.size());
  for (std::size_t i = 0; i < driver.size(); ++i) {
    for (const auto& e : driver.node(i).view().entries()) {
      adj[i].push_back(e.id.value);
      adj[e.id.value].push_back(i);
    }
  }
  std::vector<bool> visited(driver.size(), false);
  std::queue<std::size_t> frontier;
  frontier.push(0);
  visited[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop();
    for (std::size_t nbr : adj[cur]) {
      if (!visited[nbr]) {
        visited[nbr] = true;
        ++reached;
        frontier.push(nbr);
      }
    }
  }
  EXPECT_EQ(reached, driver.size());
}

TEST_P(FrameworkProtoTest, InDegreesAreBalanced) {
  FrameworkDriver driver(params_for(GetParam(), 10), 100, 99);
  driver.bootstrap_uniform();
  driver.run(60);
  const auto in = driver.indegrees();
  std::vector<double> xs(in.begin(), in.end());
  const double mean = mean_of(xs);
  EXPECT_NEAR(mean, 10.0, 0.5);  // sum of in-degrees == sum of view sizes
  // No node starved or hugely over-represented.
  EXPECT_GT(*std::min_element(xs.begin(), xs.end()), 0.0);
  EXPECT_LT(*std::max_element(xs.begin(), xs.end()), 4.0 * mean);
}

TEST_P(FrameworkProtoTest, AgesResetThroughExchange) {
  FrameworkDriver driver(params_for(GetParam(), 8), 40, 3);
  driver.bootstrap_uniform();
  driver.run(25);
  // Descriptors keep circulating, so the maximum age stays bounded well
  // below the round count.
  std::uint32_t max_age = 0;
  for (std::size_t i = 0; i < driver.size(); ++i) {
    for (const auto& e : driver.node(i).view().entries()) {
      max_age = std::max(max_age, e.age);
    }
  }
  EXPECT_LT(max_age, 25u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, FrameworkProtoTest,
                         ::testing::Values(Proto::kCyclon, Proto::kNewscast),
                         [](const auto& info) {
                           return info.param == Proto::kCyclon ? "Cyclon" : "Newscast";
                         });

TEST(FrameworkNode, BufferContainsSelfLinkFirst) {
  FrameworkNode node(NodeId{5}, cyclon_params(8), Rng(1));
  node.bootstrap({NodeId{1}, NodeId{2}, NodeId{3}});
  const auto buffer = node.make_buffer(NodeId{1});
  ASSERT_FALSE(buffer.empty());
  EXPECT_EQ(buffer[0].id, NodeId{5});
  EXPECT_EQ(buffer[0].age, 0u);
  for (std::size_t i = 1; i < buffer.size(); ++i) EXPECT_NE(buffer[i].id, NodeId{1});
}

TEST(FrameworkNode, TailSelectionPicksOldest) {
  FrameworkParams params = cyclon_params(8);
  FrameworkNode node(NodeId{0}, params, Rng(2));
  node.bootstrap({NodeId{1}, NodeId{2}});
  node.next_round();
  node.next_round();
  // Make node 2 fresher via an exchange that re-inserts it at age 0.
  node.on_exchange(NodeId{2}, {{NodeId{2}, 0}}, nullptr);
  EXPECT_EQ(node.select_partner(), NodeId{1});
}

TEST(FrameworkNode, RandomSelectionCoversView) {
  FrameworkParams params = newscast_params(8);
  FrameworkNode node(NodeId{0}, params, Rng(3));
  node.bootstrap({NodeId{1}, NodeId{2}, NodeId{3}});
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(node.select_partner()->value);
  EXPECT_EQ(seen.size(), 3u);
}

TEST(FrameworkNode, EmptyViewSelectsNobody) {
  FrameworkNode node(NodeId{0}, cyclon_params(4), Rng(4));
  EXPECT_FALSE(node.select_partner().has_value());
}

TEST(FrameworkNode, PartnerTimeoutRemovesDescriptor) {
  FrameworkNode node(NodeId{0}, cyclon_params(4), Rng(5));
  node.bootstrap({NodeId{1}, NodeId{2}});
  node.on_partner_timeout(NodeId{1});
  EXPECT_FALSE(node.view().contains(NodeId{1}));
  EXPECT_TRUE(node.view().contains(NodeId{2}));
}

TEST(FrameworkNode, PushPullReplyBuiltBeforeMerge) {
  FrameworkNode passive(NodeId{9}, cyclon_params(4, 2), Rng(6));
  passive.bootstrap({NodeId{1}, NodeId{2}});
  std::vector<ViewEntry> reply;
  passive.on_exchange(NodeId{5}, {{NodeId{5}, 0}, {NodeId{7}, 1}}, &reply);
  // The reply must come from the pre-merge view (so no 5 or 7 inside).
  for (const auto& e : reply) {
    if (e.id == NodeId{9}) continue;  // self link
    EXPECT_TRUE(e.id == NodeId{1} || e.id == NodeId{2});
  }
  // And the merge happened afterwards.
  EXPECT_TRUE(passive.view().contains(NodeId{5}));
}

TEST(FrameworkParams, PresetShapes) {
  const auto cyclon = cyclon_params(20);
  EXPECT_EQ(cyclon.peer_selection, PeerSelection::kTail);
  EXPECT_EQ(cyclon.heal, 0u);
  EXPECT_EQ(cyclon.buffer_size, 11u);
  const auto newscast = newscast_params(20);
  EXPECT_EQ(newscast.peer_selection, PeerSelection::kRandom);
  EXPECT_EQ(newscast.heal, 20u);
}

TEST(FrameworkDriver, ClusteringDropsFromCliqueBootstrap) {
  // Bootstrap with dense local cliques plus a single long-range ring link
  // (without the ring the cliques are disconnected components and no gossip
  // protocol could mix them): clustering starts high; shuffling must
  // decorrelate it.
  FrameworkParams params = cyclon_params(6);
  FrameworkDriver driver(params, 40, 11);
  for (std::size_t i = 0; i < driver.size(); ++i) {
    std::vector<NodeId> boot;
    boot.emplace_back((static_cast<std::uint32_t>(i) + 8) % 40);  // ring link first
    for (std::uint32_t j = 0; j < 7; ++j) {
      const std::uint32_t target = (static_cast<std::uint32_t>(i) / 8) * 8 + j;
      if (target != i && target < 40) boot.emplace_back(target);
    }
    driver.node(i).bootstrap(boot);
  }
  const double before = driver.clustering_coefficient();
  driver.run(60);
  const double after = driver.clustering_coefficient();
  EXPECT_LT(after, before * 0.7);
}

}  // namespace
}  // namespace raptee::gossip
