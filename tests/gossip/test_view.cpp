#include "gossip/view.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace raptee::gossip {
namespace {

TEST(PartialView, InsertRespectsCapacity) {
  PartialView v(3);
  EXPECT_TRUE(v.insert(NodeId{1}));
  EXPECT_TRUE(v.insert(NodeId{2}));
  EXPECT_TRUE(v.insert(NodeId{3}));
  EXPECT_TRUE(v.full());
  EXPECT_FALSE(v.insert(NodeId{4}));
  EXPECT_EQ(v.size(), 3u);
}

TEST(PartialView, DuplicateInsertKeepsFresherAge) {
  PartialView v(4);
  v.insert(NodeId{1}, 5);
  EXPECT_FALSE(v.insert(NodeId{1}, 2));
  EXPECT_EQ(v.entries()[0].age, 2u);
  EXPECT_FALSE(v.insert(NodeId{1}, 9));
  EXPECT_EQ(v.entries()[0].age, 2u);
  EXPECT_EQ(v.size(), 1u);
}

TEST(PartialView, ContainsAndIds) {
  PartialView v(4);
  v.insert(NodeId{10});
  v.insert(NodeId{20});
  EXPECT_TRUE(v.contains(NodeId{10}));
  EXPECT_FALSE(v.contains(NodeId{30}));
  EXPECT_EQ(v.ids(), (std::vector<NodeId>{NodeId{10}, NodeId{20}}));
}

TEST(PartialView, AgeAllIncrements) {
  PartialView v(4);
  v.insert(NodeId{1}, 0);
  v.insert(NodeId{2}, 3);
  v.age_all();
  EXPECT_EQ(v.entries()[0].age, 1u);
  EXPECT_EQ(v.entries()[1].age, 4u);
}

TEST(PartialView, OldestFindsMaxAge) {
  PartialView v(4);
  EXPECT_FALSE(v.oldest().has_value());
  v.insert(NodeId{1}, 2);
  v.insert(NodeId{2}, 7);
  v.insert(NodeId{3}, 5);
  EXPECT_EQ(v.oldest()->id, NodeId{2});
}

TEST(PartialView, InsertReplaceOldestEvictsMaxAge) {
  PartialView v(2);
  v.insert(NodeId{1}, 9);
  v.insert(NodeId{2}, 1);
  v.insert_replace_oldest(NodeId{3}, 0);
  EXPECT_FALSE(v.contains(NodeId{1}));
  EXPECT_TRUE(v.contains(NodeId{3}));
  EXPECT_EQ(v.size(), 2u);
}

TEST(PartialView, RemoveById) {
  PartialView v(3);
  v.insert(NodeId{1});
  v.insert(NodeId{2});
  EXPECT_TRUE(v.remove(NodeId{1}));
  EXPECT_FALSE(v.remove(NodeId{1}));
  EXPECT_EQ(v.size(), 1u);
}

TEST(PartialView, RemoveOldestH) {
  PartialView v(5);
  for (std::uint32_t i = 0; i < 5; ++i) v.insert(NodeId{i}, i);
  v.remove_oldest(2);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_FALSE(v.contains(NodeId{4}));
  EXPECT_FALSE(v.contains(NodeId{3}));
  v.remove_oldest(100);  // clamped
  EXPECT_TRUE(v.empty());
}

TEST(PartialView, RemoveRandomAndTruncate) {
  Rng rng(1);
  PartialView v(10);
  for (std::uint32_t i = 0; i < 10; ++i) v.insert(NodeId{i});
  v.remove_random(4, rng);
  EXPECT_EQ(v.size(), 6u);
  v.remove_random(100, rng);
  EXPECT_TRUE(v.empty());
}

TEST(PartialView, RemoveIdsBatch) {
  PartialView v(5);
  for (std::uint32_t i = 0; i < 5; ++i) v.insert(NodeId{i});
  v.remove_ids({NodeId{0}, NodeId{2}, NodeId{4}, NodeId{99}});
  EXPECT_EQ(v.ids(), (std::vector<NodeId>{NodeId{1}, NodeId{3}}));
}

TEST(PartialView, ReplaceAllResetsAgesAndTruncates) {
  PartialView v(3);
  v.insert(NodeId{9}, 5);
  v.replace_all({NodeId{1}, NodeId{2}, NodeId{2}, NodeId{3}, NodeId{4}});
  EXPECT_EQ(v.size(), 3u);
  EXPECT_FALSE(v.contains(NodeId{9}));
  EXPECT_TRUE(v.contains(NodeId{1}));
  for (const auto& e : v.entries()) EXPECT_EQ(e.age, 0u);
}

TEST(PartialView, RandomAndPickCoverage) {
  Rng rng(2);
  PartialView v(8);
  EXPECT_FALSE(v.random(rng).has_value());
  for (std::uint32_t i = 0; i < 8; ++i) v.insert(NodeId{i});
  std::set<std::uint32_t> seen;
  for (int trial = 0; trial < 400; ++trial) {
    seen.insert(v.random(rng)->id.value);
    seen.insert(v.pick_id(rng).value);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(PartialView, SampleIdsDistinct) {
  Rng rng(3);
  PartialView v(10);
  for (std::uint32_t i = 0; i < 10; ++i) v.insert(NodeId{i});
  const auto sample = v.sample_ids(rng, 4);
  EXPECT_EQ(sample.size(), 4u);
  std::set<std::uint32_t> uniq;
  for (NodeId id : sample) uniq.insert(id.value);
  EXPECT_EQ(uniq.size(), 4u);
  EXPECT_EQ(v.sample_ids(rng, 100).size(), 10u);
}

TEST(PartialView, SelectToSendExcludesPartner) {
  Rng rng(4);
  PartialView v(6);
  for (std::uint32_t i = 0; i < 6; ++i) v.insert(NodeId{i}, i);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sent = v.select_to_send(rng, 3, NodeId{2});
    EXPECT_EQ(sent.size(), 3u);
    for (const auto& e : sent) EXPECT_NE(e.id, NodeId{2});
  }
}

TEST(PartialView, FrameworkMergeDedupsAndExcludesSelf) {
  Rng rng(5);
  PartialView v(6);
  v.insert(NodeId{1}, 4);
  v.framework_merge({{NodeId{1}, 1}, {NodeId{5}, 0}, {NodeId{7}, 2}}, /*self=*/NodeId{7},
                    /*h=*/0, /*s=*/0, /*sent=*/{}, rng);
  EXPECT_EQ(v.size(), 2u);         // self excluded, 1 deduped
  EXPECT_EQ(v.entries()[0].age, 1u);  // fresher copy of node 1 kept
  EXPECT_TRUE(v.contains(NodeId{5}));
}

TEST(PartialView, FrameworkMergeHealDropsOldest) {
  Rng rng(6);
  PartialView v(3);
  v.insert(NodeId{1}, 9);
  v.insert(NodeId{2}, 8);
  v.insert(NodeId{3}, 1);
  // Merge two new entries into a full view: surplus 2, H=2 drops the two
  // oldest (ids 1 and 2).
  v.framework_merge({{NodeId{4}, 0}, {NodeId{5}, 0}}, NodeId{100}, /*h=*/2, /*s=*/0, {},
                    rng);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_FALSE(v.contains(NodeId{1}));
  EXPECT_FALSE(v.contains(NodeId{2}));
  EXPECT_TRUE(v.contains(NodeId{4}));
  EXPECT_TRUE(v.contains(NodeId{5}));
}

TEST(PartialView, FrameworkMergeSwapDropsSentEntries) {
  Rng rng(7);
  PartialView v(3);
  v.insert(NodeId{1}, 0);
  v.insert(NodeId{2}, 0);
  v.insert(NodeId{3}, 0);
  // Surplus 2 with H=0, S=2: the sent entries {1,2} are removed.
  v.framework_merge({{NodeId{4}, 0}, {NodeId{5}, 0}}, NodeId{100}, /*h=*/0, /*s=*/2,
                    /*sent=*/{NodeId{1}, NodeId{2}}, rng);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_FALSE(v.contains(NodeId{1}));
  EXPECT_FALSE(v.contains(NodeId{2}));
}

TEST(PartialView, FrameworkMergeRandomFallback) {
  Rng rng(8);
  PartialView v(2);
  v.insert(NodeId{1}, 0);
  v.insert(NodeId{2}, 0);
  // Surplus with H=0, S=0: random removal keeps size at capacity.
  v.framework_merge({{NodeId{3}, 0}, {NodeId{4}, 0}}, NodeId{100}, 0, 0, {}, rng);
  EXPECT_EQ(v.size(), 2u);
}

}  // namespace
}  // namespace raptee::gossip
