// Metrics-registry core semantics: get-or-create identity, one-name-one-kind
// enforcement, histogram bucket assignment on the fixed-bound ladder,
// deterministic snapshot order, and both exporters (JSON passing the strict
// metrics::json_valid gate, Prometheus with cumulative le-buckets).
//
// Tests use a local Registry, not Registry::global(): the global one is
// shared process state (the Engine-backed tests mutate it) and these are
// pure semantics checks.
#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "metrics/json.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"

namespace raptee::obs {
namespace {

TEST(Registry, GetOrCreateReturnsSameInstance) {
  Registry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(2);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, OneNameIsOneKind) {
  Registry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("x"), std::invalid_argument);
  (void)reg.gauge("y");
  EXPECT_THROW((void)reg.counter("y"), std::invalid_argument);
}

TEST(Registry, HistogramBucketAssignment) {
  Registry reg;
  const std::array<std::uint64_t, 3> bounds{10, 100, 1000};
  Histogram& h = reg.histogram("h", bounds);
  h.record(0);     // <= 10
  h.record(10);    // <= 10 (bounds are inclusive upper edges)
  h.record(11);    // <= 100
  h.record(1000);  // <= 1000
  h.record(5000);  // +Inf overflow
  ASSERT_EQ(h.bucket_count(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 1000 + 5000);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(h.sum()) / 5.0);
}

TEST(Registry, HistogramBoundsMustBeStrictlyIncreasing) {
  Registry reg;
  const std::array<std::uint64_t, 3> bad{10, 10, 20};
  EXPECT_THROW((void)reg.histogram("bad", bad), std::invalid_argument);
  const std::array<std::uint64_t, 2> descending{20, 10};
  EXPECT_THROW((void)reg.histogram("bad2", descending), std::invalid_argument);
}

TEST(Registry, DefaultTimeBoundsAreTheMicrosecondLadder) {
  const auto bounds = Histogram::default_time_bounds_us();
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 1u);
  EXPECT_EQ(bounds.back(), 10'000'000u);  // 10 s
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(Registry, SnapshotIsLexicographicAndPointInTime) {
  Registry reg;
  reg.counter("b.two").add(2);
  reg.counter("a.one").add(1);
  reg.gauge("z.level").set(0.5);
  reg.histogram("m.hist").record(42);

  Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.one");
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].name, "b.two");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 0.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].sum, 42u);

  // Point-in-time: later increments do not bleed into the copy.
  reg.counter("a.one").add(10);
  EXPECT_EQ(snap.counters[0].value, 1u);
}

TEST(Registry, ConcurrentIncrementsAreLossless) {
  Registry reg;
  Counter& c = reg.counter("c");
  Histogram& h = reg.histogram("h");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.record(static_cast<std::uint64_t>(i % 1000));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Export, JsonPassesTheStrictValidator) {
  Registry reg;
  reg.counter("engine.rounds").add(7);
  reg.gauge("scenario.pollution").set(0.25);
  reg.histogram("engine.phase.pulls_us").record(1234);
  const std::string doc = to_json(reg.snapshot());
  EXPECT_TRUE(metrics::json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"schema\":\"raptee.obs.metrics/1\""), std::string::npos);
  EXPECT_NE(doc.find("\"engine.rounds\":7"), std::string::npos);
  EXPECT_NE(doc.find("\"+Inf\""), std::string::npos);
}

TEST(Export, PrometheusNameSanitization) {
  EXPECT_EQ(prometheus_name("engine.phase.pulls_us"), "raptee_engine_phase_pulls_us");
  EXPECT_EQ(prometheus_name("weird-name/x"), "raptee_weird_name_x");
}

TEST(Export, PrometheusBucketsAreCumulative) {
  Registry reg;
  const std::array<std::uint64_t, 2> bounds{10, 100};
  Histogram& h = reg.histogram("lat", bounds);
  h.record(5);    // bucket 0
  h.record(50);   // bucket 1
  h.record(500);  // +Inf
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("raptee_lat_bucket{le=\"10\"} 1"), std::string::npos) << text;
  EXPECT_NE(text.find("raptee_lat_bucket{le=\"100\"} 2"), std::string::npos) << text;
  EXPECT_NE(text.find("raptee_lat_bucket{le=\"+Inf\"} 3"), std::string::npos) << text;
  EXPECT_NE(text.find("raptee_lat_count 3"), std::string::npos) << text;
  EXPECT_NE(text.find("raptee_lat_sum 555"), std::string::npos) << text;
}

TEST(Export, SummaryLineNamesEveryMetric) {
  Registry reg;
  reg.counter("engine.rounds").add(3);
  reg.histogram("bus.flush_us").record(12);
  const std::string line = summary_line(reg.snapshot());
  EXPECT_EQ(line.rfind("metrics:", 0), 0u) << line;
  EXPECT_NE(line.find("engine.rounds=3"), std::string::npos) << line;
  EXPECT_NE(line.find("bus.flush_us{"), std::string::npos) << line;
}

}  // namespace
}  // namespace raptee::obs
