// ScenarioMonitor contract: attaching the live monitoring endpoint to a
// scenario run is strictly observational — results::to_json bytes are
// identical with monitoring on and off (ISSUE 8's determinism acceptance
// gate) — and the /snapshot route serves the latest round as schema-valid
// JSON with the engine phase breakdown.
//
// RAPTEE_BENCH_MONITOR_PORT is read per Runner invocation, so one process
// can interleave monitored and unmonitored runs; these tests exploit that
// (setenv/unsetenv around individual runs). Port 0 keeps the test free of
// port-collision flakes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "metrics/json.hpp"
#include "obs/http.hpp"
#include "obs/monitor.hpp"
#include "scenario/results.hpp"
#include "scenario/runner.hpp"
#include "support/scenario.hpp"

namespace raptee::obs {
namespace {

scenario::ScenarioSpec MonitoredSpec() {
  // Small but non-trivial: adversary + trusted population + eviction, so
  // the serialized result carries every series the monitor also observes.
  return test::Scenario().rounds(24).adversary(0.2).trusted_share(0.3).eviction_pct(
      40);
}

class MonitorEnv : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv("RAPTEE_BENCH_MONITOR_PORT"); }
};

TEST_F(MonitorEnv, MonitoringOnAndOffIsByteIdentical) {
  const scenario::Runner runner(1);
  const scenario::ScenarioSpec spec = MonitoredSpec();

  ::unsetenv("RAPTEE_BENCH_MONITOR_PORT");
  const std::string off_before = scenario::results::to_json(runner.run(spec));

  ::setenv("RAPTEE_BENCH_MONITOR_PORT", "0", 1);
  const std::string on = scenario::results::to_json(runner.run(spec));

  ::unsetenv("RAPTEE_BENCH_MONITOR_PORT");
  const std::string off_after = scenario::results::to_json(runner.run(spec));

  EXPECT_EQ(off_before, on)
      << "attaching the monitor changed the serialized result";
  EXPECT_EQ(off_before, off_after)
      << "a monitored run perturbed a later unmonitored one";
}

TEST_F(MonitorEnv, SnapshotRouteServesTheLatestRound) {
  ::setenv("RAPTEE_BENCH_MONITOR_PORT", "0", 1);
  ScenarioMonitor* monitor = env_monitor();
  ASSERT_NE(monitor, nullptr);
  ASSERT_NE(monitor->port(), 0);

  const std::uint64_t runs_before = monitor->runs_completed();
  const scenario::Runner runner(1);
  (void)runner.run(MonitoredSpec());
  EXPECT_EQ(monitor->runs_completed(), runs_before + 1);

  const auto snap = http_get(monitor->port(), "/snapshot");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->status, 200);
  EXPECT_TRUE(metrics::json_valid(snap->body)) << snap->body;
  EXPECT_NE(snap->body.find("\"schema\":\"raptee.obs.snapshot/1\""),
            std::string::npos);
  EXPECT_NE(snap->body.find("\"have_snapshot\":true"), std::string::npos);
  EXPECT_NE(snap->body.find("\"round\":"), std::string::npos);
  EXPECT_NE(snap->body.find("\"phase_ms\""), std::string::npos);
  EXPECT_NE(snap->body.find("\"pulls_ms\""), std::string::npos);

  // The standard registry routes ride along on the same server.
  const auto metrics_doc = http_get(monitor->port(), "/metrics");
  ASSERT_TRUE(metrics_doc.has_value());
  EXPECT_TRUE(metrics::json_valid(metrics_doc->body));
  EXPECT_NE(metrics_doc->body.find("engine.phase."), std::string::npos);
}

TEST_F(MonitorEnv, MonitorTeesWithACallerObserver) {
  class CountingObserver final : public scenario::IScenarioObserver {
   public:
    void on_round(const scenario::RoundSnapshot&, const sim::Engine&) override {
      ++rounds;
    }
    int rounds = 0;
  };

  ::setenv("RAPTEE_BENCH_MONITOR_PORT", "0", 1);
  ScenarioMonitor* monitor = env_monitor();
  ASSERT_NE(monitor, nullptr);
  const std::uint64_t runs_before = monitor->runs_completed();

  CountingObserver observer;
  const scenario::Runner runner(1);
  (void)runner.run(MonitoredSpec(), &observer);
  EXPECT_EQ(observer.rounds, 24);  // caller observer still sees every round
  EXPECT_EQ(monitor->runs_completed(), runs_before + 1);  // so does the monitor
}

TEST(MonitorEnvParsing, RejectsGarbagePorts) {
  ::setenv("RAPTEE_BENCH_MONITOR_PORT", "not-a-port", 1);
  EXPECT_THROW((void)env_monitor(), std::invalid_argument);
  ::setenv("RAPTEE_BENCH_MONITOR_PORT", "70000", 1);
  EXPECT_THROW((void)env_monitor(), std::invalid_argument);
  ::unsetenv("RAPTEE_BENCH_MONITOR_PORT");
  EXPECT_EQ(env_monitor(), nullptr);
}

}  // namespace
}  // namespace raptee::obs
