// MonitorServer protocol surface over real loopback sockets: routing, the
// 405/404/400 error paths, the oversized-request-line bound, query-string
// stripping, concurrent scrapes (exercised under TSan by the sanitizer CI
// jobs), and the golden gate that /metrics always serves JSON accepted by
// the strict metrics::json_valid validator.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "metrics/json.hpp"
#include "obs/export.hpp"
#include "obs/http.hpp"
#include "obs/registry.hpp"

namespace raptee::obs {
namespace {

/// Server fixture on an ephemeral port with one trivial route plus the
/// standard registry routes bound to a test-local registry.
class HttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reg_.counter("test.requests").add(41);
    reg_.histogram("test.latency_us").record(250);
    add_registry_routes(server_, reg_);
    server_.add_route("/hello", [] {
      return HttpResponse{200, "text/plain", "hi\n"};
    });
    port_ = server_.start(0);
    ASSERT_NE(port_, 0);
  }

  Registry reg_;
  MonitorServer server_;
  std::uint16_t port_ = 0;
};

TEST_F(HttpTest, ServesRegisteredRoute) {
  const auto got = http_get(port_, "/hello");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  EXPECT_EQ(got->body, "hi\n");
}

TEST_F(HttpTest, HealthzIsOk) {
  const auto got = http_get(port_, "/healthz");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  EXPECT_EQ(got->body, "ok\n");
}

TEST_F(HttpTest, MetricsIsSchemaValidJson) {
  const auto got = http_get(port_, "/metrics");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  EXPECT_TRUE(metrics::json_valid(got->body)) << got->body;
  EXPECT_NE(got->body.find("\"schema\":\"raptee.obs.metrics/1\""), std::string::npos);
  EXPECT_NE(got->body.find("\"test.requests\":41"), std::string::npos);
  // The served document is exactly the exporter's output for the current
  // snapshot (modulo racing increments; this registry is quiescent).
  EXPECT_EQ(got->body, to_json(reg_.snapshot()));
}

TEST_F(HttpTest, MetricsPromIsPrometheusText) {
  const auto got = http_get(port_, "/metrics.prom");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  EXPECT_NE(got->body.find("# TYPE raptee_test_requests counter"), std::string::npos);
  EXPECT_NE(got->body.find("raptee_test_latency_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
}

TEST_F(HttpTest, UnknownPathIs404) {
  const auto got = http_get(port_, "/nope");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 404);
}

TEST_F(HttpTest, QueryStringIsStripped) {
  const auto got = http_get(port_, "/hello?verbose=1");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  EXPECT_EQ(got->body, "hi\n");
}

TEST_F(HttpTest, NonGetMethodIs405) {
  const auto raw =
      http_raw(port_, "POST /metrics HTTP/1.0\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(raw->rfind("HTTP/1.0 405", 0), 0u) << *raw;
}

TEST_F(HttpTest, MalformedRequestLineIs400) {
  const auto raw = http_raw(port_, "GET\r\n");
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(raw->rfind("HTTP/1.0 400", 0), 0u) << *raw;
}

TEST_F(HttpTest, OversizedRequestLineIs400) {
  // No newline at all: the buffer grows past kMaxRequestLine and the server
  // must reject instead of buffering a length bomb.
  std::string bomb = "GET /";
  bomb.append(kMaxRequestLine + 100, 'a');
  const auto raw = http_raw(port_, bomb);
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(raw->rfind("HTTP/1.0 400", 0), 0u) << *raw;
}

TEST_F(HttpTest, ConcurrentScrapesAllSucceed) {
  constexpr int kThreads = 8;
  constexpr int kRequests = 10;
  std::atomic<int> ok{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    scrapers.emplace_back([&, t] {
      for (int i = 0; i < kRequests; ++i) {
        // Writers race the scrapes: relaxed metric increments from a second
        // thread family while /metrics serializes the snapshot.
        reg_.counter("test.requests").add(1);
        const char* path = (t + i) % 2 == 0 ? "/metrics" : "/metrics.prom";
        const auto got = http_get(port_, path, 5000);
        if (got && got->status == 200 && !got->body.empty()) ok.fetch_add(1);
      }
    });
  }
  for (std::thread& s : scrapers) s.join();
  EXPECT_EQ(ok.load(), kThreads * kRequests);
}

TEST(MonitorServerLifecycle, StopIsIdempotentAndRebindable) {
  Registry reg;
  {
    MonitorServer server;
    add_registry_routes(server, reg);
    const std::uint16_t port = server.start(0);
    ASSERT_TRUE(http_get(port, "/healthz").has_value());
    server.stop();
    server.stop();  // idempotent
    // Stopped server no longer accepts.
    EXPECT_FALSE(http_get(port, "/healthz", 300).has_value());
  }
  // A never-started server destructs cleanly.
  MonitorServer idle;
}

TEST(MonitorServerLifecycle, RoutesMustBeAddedBeforeStart) {
  Registry reg;
  MonitorServer server;
  add_registry_routes(server, reg);
  EXPECT_THROW(server.add_route("no-slash", [] { return HttpResponse{}; }),
               std::invalid_argument);
  (void)server.start(0);
  EXPECT_THROW(server.add_route("/late", [] { return HttpResponse{}; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace raptee::obs
