// Zero-allocation steady state of the metrics hot paths (the companion to
// sim_test_engine_zero_alloc): once metrics are registered and a reused
// Snapshot has warmed its buffer capacity, counter adds, gauge sets,
// histogram records and Registry::snapshot_into perform no heap allocation.
// This is the property that lets the Engine's per-round publish and a
// scraping MonitorServer ride inside the hot loop without perturbing the
// allocator (and thus the engine's own zero-alloc gate).
//
// Same harness as the engine test: every global operator new in this binary
// is counted across a measured window. The overrides forward to
// std::malloc/std::free so sanitizers still see the underlying allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/registry.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  const auto alignment = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded ? rounded : alignment)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace raptee::obs {
namespace {

TEST(ObsZeroAlloc, IncrementsAreAllocationFree) {
  Registry reg;
  Counter& counter = reg.counter("hot.counter");
  Gauge& gauge = reg.gauge("hot.gauge");
  Histogram& hist = reg.histogram("hot.hist");

  const std::uint64_t before = g_allocations.load();
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    counter.add(1);
    gauge.set(static_cast<double>(i));
    hist.record(i % 10'000);
  }
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "metric mutation must never touch the heap";
  EXPECT_EQ(counter.value(), 100'000u);
  EXPECT_EQ(hist.count(), 100'000u);
}

TEST(ObsZeroAlloc, SnapshotIntoIsAmortizedAllocationFree) {
  Registry reg;
  // A realistic registry shape: the counters/histograms the engine and bus
  // actually register, so the warmed buffers match production capacity.
  for (const char* name : {"engine.pushes_sent", "engine.pulls_completed",
                           "engine.rounds", "bus.frames_sent", "bus.frames_received",
                           "service.requests_served"}) {
    reg.counter(name).add(1);
  }
  for (const char* name :
       {"engine.phase.begin_round_us", "engine.phase.pulls_us", "bus.flush_us"}) {
    reg.histogram(name).record(100);
  }
  reg.gauge("scenario.pollution").set(0.1);

  Snapshot snap;
  // Warm-up: first fill grows every buffer to steady-state capacity.
  reg.snapshot_into(snap);

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1'000; ++i) {
    reg.counter("engine.rounds").add(1);
    reg.histogram("bus.flush_us").record(static_cast<std::uint64_t>(i));
    reg.snapshot_into(snap);
  }
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "steady-state snapshot_into must reuse the caller's buffers";
  EXPECT_EQ(snap.counters.size(), 6u);
  EXPECT_EQ(snap.histograms.size(), 3u);
}

TEST(ObsZeroAlloc, CounterSeesOrdinaryAllocations) {
  // Sanity-check the instrument itself.
  const std::uint64_t before = g_allocations.load();
  auto* v = new std::uint8_t[1024];
  delete[] v;
  EXPECT_GT(g_allocations.load(), before);
}

}  // namespace
}  // namespace raptee::obs
