#include "core/trusted_store.hpp"

#include <gtest/gtest.h>

#include <set>

namespace raptee::core {
namespace {

TEST(TrustedStore, NoteAndLookup) {
  TrustedStore store(8);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.is_known_trusted(NodeId{1}));
  store.note_trusted(NodeId{1});
  EXPECT_TRUE(store.is_known_trusted(NodeId{1}));
  EXPECT_EQ(store.size(), 1u);
}

TEST(TrustedStore, DuplicateNoteRefreshesAge) {
  TrustedStore store(8);
  store.note_trusted(NodeId{1});
  store.next_round();
  store.next_round();
  store.note_trusted(NodeId{2});
  EXPECT_EQ(store.oldest(), NodeId{1});
  store.note_trusted(NodeId{1});  // re-confirmed: age reset
  store.next_round();
  EXPECT_EQ(store.size(), 2u);
  // Node 2 (age 1) is now younger than... both aged equally since; node 1
  // was reset later so node 2 is older? 2 was noted at round 2 (age now 1),
  // 1 was reset at round 2 as well (age now 1): tie — accept either, but
  // after one more round with a refresh of 2, 1 must be oldest.
  store.note_trusted(NodeId{2});
  store.next_round();
  EXPECT_EQ(store.oldest(), NodeId{1});
}

TEST(TrustedStore, OldestOnEmpty) {
  TrustedStore store(4);
  EXPECT_FALSE(store.oldest().has_value());
  Rng rng(1);
  EXPECT_FALSE(store.random(rng).has_value());
}

TEST(TrustedStore, CapacityEvictsOldest) {
  TrustedStore store(2);
  store.note_trusted(NodeId{1});
  store.next_round();
  store.note_trusted(NodeId{2});
  store.next_round();
  store.note_trusted(NodeId{3});  // evicts node 1 (oldest)
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.is_known_trusted(NodeId{1}));
  EXPECT_TRUE(store.is_known_trusted(NodeId{2}));
  EXPECT_TRUE(store.is_known_trusted(NodeId{3}));
}

TEST(TrustedStore, ForgetRemoves) {
  TrustedStore store(4);
  store.note_trusted(NodeId{1});
  store.note_trusted(NodeId{2});
  store.forget(NodeId{1});
  EXPECT_FALSE(store.is_known_trusted(NodeId{1}));
  EXPECT_EQ(store.size(), 1u);
  store.forget(NodeId{99});  // no-op
  EXPECT_EQ(store.size(), 1u);
}

TEST(TrustedStore, PeersSnapshot) {
  TrustedStore store(4);
  store.note_trusted(NodeId{5});
  store.note_trusted(NodeId{6});
  const auto peers = store.peers();
  EXPECT_EQ(peers.size(), 2u);
}

TEST(TrustedStore, RandomCoversAllEntries) {
  TrustedStore store(8);
  for (std::uint32_t i = 0; i < 5; ++i) store.note_trusted(NodeId{i});
  Rng rng(7);
  std::set<std::uint32_t> seen;
  for (int trial = 0; trial < 300; ++trial) seen.insert(store.random(rng)->value);
  EXPECT_EQ(seen.size(), 5u);
}

}  // namespace
}  // namespace raptee::core
