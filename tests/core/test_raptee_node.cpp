// RapteeNode behaviour: trusted exchanges over the engine, eviction caps,
// camouflage, and bogus-offer rejection.
#include "core/raptee_node.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/node_factory.hpp"
#include "sim/engine.hpp"

namespace raptee::core {
namespace {

brahms::BrahmsConfig small_brahms(std::size_t l1 = 20) {
  brahms::BrahmsConfig config;
  config.params.l1 = l1;
  config.params.l2 = l1;
  return config;
}

RapteeConfig small_raptee(EvictionSpec eviction, std::size_t l1 = 20) {
  RapteeConfig config;
  config.brahms = small_brahms(l1);
  config.eviction = eviction;
  return config;
}

/// Two trusted nodes + a ring of honest nodes, driven by the engine.
struct MixedWorld {
  explicit MixedWorld(EvictionSpec eviction, std::size_t honest = 10,
                      bool overlay = false, std::uint64_t seed = 42)
      : factory(seed, brahms::AuthMode::kFingerprint), engine({seed}) {
    RapteeConfig rc = small_raptee(eviction);
    rc.trusted_overlay = overlay;
    for (std::uint32_t i = 0; i < 2; ++i) {
      auto node = factory.make_trusted(NodeId{i}, rc);
      trusted.push_back(node.get());
      engine.add_node(std::move(node), NodeKind::kTrusted);
    }
    for (std::uint32_t i = 0; i < honest; ++i) {
      engine.add_node(factory.make_honest(NodeId{2 + i}, small_brahms()),
                      NodeKind::kHonest);
    }
    engine.bootstrap_uniform(8);
  }

  NodeFactory factory;
  sim::Engine engine;
  std::vector<RapteeNode*> trusted;
};

TEST(RapteeNode, RequiresProvisionedEnclave) {
  crypto::Drbg kg(1);
  auto auth = std::make_unique<brahms::KeyedAuthenticator>(
      brahms::AuthMode::kOracle, kg.generate_key(), kg.fork("a"));
  auto unprovisioned =
      std::make_unique<sgx::Enclave>(sgx::raptee_enclave_identity(), 1);
  EXPECT_THROW(RapteeNode(NodeId{0}, small_raptee(EvictionSpec::none()),
                          std::move(auth), std::move(unprovisioned), Rng(1)),
               std::invalid_argument);
}

TEST(RapteeNode, FactoryProducesWorkingTrustedPair) {
  MixedWorld world(EvictionSpec::adaptive());
  EXPECT_TRUE(world.trusted[0]->enclave().has_group_key());
  EXPECT_TRUE(world.trusted[1]->enclave().has_group_key());
}

TEST(RapteeNode, TrustedPairCompletesSwapsOverEngine) {
  MixedWorld world(EvictionSpec::adaptive(), /*honest=*/4);
  world.engine.run(12);
  EXPECT_GT(world.engine.counters().swaps_completed, 0u);
  // Both trusted nodes learned about each other.
  EXPECT_TRUE(world.trusted[0]->trusted_store().is_known_trusted(NodeId{1}) ||
              world.trusted[1]->trusted_store().is_known_trusted(NodeId{0}));
}

TEST(RapteeNode, HonestOnlyWorldNeverSwaps) {
  NodeFactory factory(7, brahms::AuthMode::kFingerprint);
  sim::Engine engine({7});
  for (std::uint32_t i = 0; i < 8; ++i) {
    engine.add_node(factory.make_honest(NodeId{i}, small_brahms()), NodeKind::kHonest);
  }
  engine.bootstrap_uniform(6);
  engine.run(10);
  EXPECT_EQ(engine.counters().swaps_completed, 0u);
}

TEST(RapteeNode, SingleTrustedNodeNeverSwaps) {
  NodeFactory factory(8, brahms::AuthMode::kFingerprint);
  sim::Engine engine({8});
  engine.add_node(factory.make_trusted(NodeId{0}, small_raptee(EvictionSpec::adaptive())),
                  NodeKind::kTrusted);
  for (std::uint32_t i = 1; i < 8; ++i) {
    engine.add_node(factory.make_honest(NodeId{i}, small_brahms()), NodeKind::kHonest);
  }
  engine.bootstrap_uniform(6);
  engine.run(10);
  EXPECT_EQ(engine.counters().swaps_completed, 0u);
}

TEST(RapteeNode, AdaptiveRateRespondsToTrustedContacts) {
  MixedWorld world(EvictionSpec::adaptive(), /*honest=*/10);
  world.engine.run(10);
  // With mostly-honest contact, the rate must sit at the upper clamp.
  EXPECT_NEAR(world.trusted[0]->last_eviction_rate(), 0.8, 0.25);
  EXPECT_GE(world.trusted[0]->last_eviction_rate(), 0.2);
}

TEST(RapteeNode, FixedEvictionRateIsReported) {
  MixedWorld world(EvictionSpec::fixed(0.35), /*honest=*/6);
  world.engine.run(4);
  EXPECT_DOUBLE_EQ(world.trusted[0]->last_eviction_rate(), 0.35);
  EXPECT_DOUBLE_EQ(world.trusted[0]->telemetry().eviction_rate, 0.35);
}

TEST(RapteeNode, FullEvictionStillRenewsViews) {
  // ER=100%: untrusted pulled IDs are barred from the view, but the view
  // must keep renewing from pushes/history ("as if issuing no pulls").
  MixedWorld world(EvictionSpec::fixed(1.0), /*honest=*/10);
  const auto before = world.trusted[0]->current_view();
  world.engine.run(10);
  const auto after = world.trusted[0]->current_view();
  EXPECT_GE(after.size(), before.size());  // views keep filling toward l1
  EXPECT_NE(after, before);                // and their content keeps renewing
}

TEST(RapteeNode, ViewNeverContainsSelf) {
  MixedWorld world(EvictionSpec::adaptive(), /*honest=*/8);
  world.engine.run(8);
  for (const auto* node : world.trusted) {
    const auto view = node->current_view();
    EXPECT_EQ(std::count(view.begin(), view.end(), node->id()), 0);
  }
}

TEST(RapteeNode, TrustedOverlayAddsExtraPullAfterDiscovery) {
  MixedWorld world(EvictionSpec::adaptive(), /*honest=*/6, /*overlay=*/true);
  world.engine.run(15);
  // Once trusted peers discovered each other, pull fan-out grows by one.
  if (world.trusted[0]->trusted_store().size() > 0) {
    world.trusted[0]->begin_round(99);
    const auto pulls = world.trusted[0]->pull_targets();
    EXPECT_EQ(pulls.size(), small_brahms().params.pull_slice() + 1);
    EXPECT_EQ(pulls.back(), NodeId{1});
  }
}

TEST(RapteeNode, CamouflageTrafficShapeMatchesHonest) {
  // A trusted node's fan-outs equal an honest node's: identical push/pull
  // counts and full-view pull answers (the §IV-C camouflage requirement).
  MixedWorld world(EvictionSpec::adaptive(), /*honest=*/8);
  world.engine.run(3);
  auto* trusted_node = world.trusted[0];
  auto& honest_node = world.engine.node(NodeId{5});
  trusted_node->begin_round(50);
  honest_node.begin_round(50);
  EXPECT_EQ(trusted_node->push_targets().size(), honest_node.push_targets().size());
  EXPECT_EQ(trusted_node->pull_targets().size(), honest_node.pull_targets().size());
  const auto reply = trusted_node->answer_pull(wire::PullRequest{NodeId{9}, {}});
  EXPECT_EQ(reply.view.size(), trusted_node->current_view().size());
}

TEST(RapteeNode, BogusSwapOfferFromUntrustedIsIgnored) {
  MixedWorld world(EvictionSpec::adaptive(), /*honest=*/4);
  auto* node = world.trusted[0];
  node->begin_round(0);
  // Craft an exchange where the "initiator" fails auth but attaches an offer.
  const auto reply = node->answer_pull(wire::PullRequest{NodeId{3}, {}});
  (void)reply;
  wire::AuthConfirm bogus;
  bogus.sender = NodeId{3};
  bogus.confirm.proof_a.fill(0xAB);  // garbage proof
  bogus.swap_offer = std::vector<NodeId>{NodeId{4}, NodeId{5}};
  EXPECT_FALSE(node->process_confirm(bogus).has_value());
}

TEST(RapteeNode, StraySwapReplyIsIgnored) {
  MixedWorld world(EvictionSpec::adaptive(), /*honest=*/4);
  auto* node = world.trusted[0];
  node->begin_round(0);
  const auto before = node->current_view();
  node->process_swap_reply(wire::SwapReply{NodeId{9}, {NodeId{4}, NodeId{5}}});
  EXPECT_EQ(node->current_view(), before);
}

TEST(RapteeNode, EnclaveLedgerAccumulatesDuringRun) {
  const sgx::CycleModel model = sgx::CycleModel::paper_table1();
  NodeFactory factory(9, brahms::AuthMode::kFingerprint, &model);
  sim::Engine engine({9});
  auto trusted = factory.make_trusted(NodeId{0}, small_raptee(EvictionSpec::adaptive()));
  auto* trusted_ptr = trusted.get();
  engine.add_node(std::move(trusted), NodeKind::kTrusted);
  for (std::uint32_t i = 1; i < 6; ++i) {
    engine.add_node(factory.make_honest(NodeId{i}, small_brahms()), NodeKind::kHonest);
  }
  engine.bootstrap_uniform(5);
  engine.run(5);
  EXPECT_GT(trusted_ptr->enclave().ledger().total_cycles(), 0u);
  EXPECT_GT(trusted_ptr->enclave().ledger().calls(sgx::FunctionClass::kTrustedComms), 0u);
}

}  // namespace
}  // namespace raptee::core
