#include "core/eviction.hpp"

#include <gtest/gtest.h>

namespace raptee::core {
namespace {

TEST(EvictionSpec, NoneIsAlwaysZero) {
  const auto spec = EvictionSpec::none();
  for (double p : {0.0, 0.3, 1.0}) EXPECT_DOUBLE_EQ(spec.rate_for(p), 0.0);
}

TEST(EvictionSpec, FixedIgnoresTrustedRatio) {
  const auto spec = EvictionSpec::fixed(0.6);
  for (double p : {0.0, 0.5, 1.0}) EXPECT_DOUBLE_EQ(spec.rate_for(p), 0.6);
}

TEST(EvictionSpec, FixedBoundsValidated) {
  EXPECT_THROW(EvictionSpec::fixed(1.5).validate(), std::invalid_argument);
  EXPECT_THROW(EvictionSpec::fixed(-0.1).validate(), std::invalid_argument);
  EXPECT_NO_THROW(EvictionSpec::fixed(0.0).validate());
  EXPECT_NO_THROW(EvictionSpec::fixed(1.0).validate());
}

TEST(EvictionSpec, AdaptiveBoundsValidated) {
  EXPECT_THROW(EvictionSpec::adaptive(0.8, 0.2).validate(), std::invalid_argument);
  EXPECT_THROW(EvictionSpec::adaptive(-0.1, 0.5).validate(), std::invalid_argument);
  EXPECT_THROW(EvictionSpec::adaptive(0.1, 1.5).validate(), std::invalid_argument);
  EXPECT_NO_THROW(EvictionSpec::adaptive(0.0, 1.0).validate());
}

TEST(EvictionSpec, Describe) {
  EXPECT_EQ(EvictionSpec::none().describe(), "none");
  EXPECT_EQ(EvictionSpec::fixed(0.4).describe(), "fixed(40%)");
  EXPECT_EQ(EvictionSpec::adaptive().describe(), "adaptive[20%,80%]");
}

struct AdaptiveCase {
  double trusted_ratio;
  double expected_rate;
};

class AdaptiveRule : public ::testing::TestWithParam<AdaptiveCase> {};

TEST_P(AdaptiveRule, PaperFormula) {
  // §IV-C: ER between 20 % (trusted share above 80 %) and 80 % (below
  // 20 %), linear in between: ER(p) = clamp(1-p, 0.2, 0.8).
  const auto spec = EvictionSpec::adaptive();
  EXPECT_NEAR(spec.rate_for(GetParam().trusted_ratio), GetParam().expected_rate, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdaptiveRule,
    ::testing::Values(AdaptiveCase{0.00, 0.80},   // no trusted contact: max eviction
                      AdaptiveCase{0.10, 0.80},   // still clamped high
                      AdaptiveCase{0.20, 0.80},   // boundary
                      AdaptiveCase{0.30, 0.70},   // linear region
                      AdaptiveCase{0.50, 0.50},   //
                      AdaptiveCase{0.65, 0.35},   //
                      AdaptiveCase{0.80, 0.20},   // boundary
                      AdaptiveCase{0.90, 0.20},   // clamped low
                      AdaptiveCase{1.00, 0.20})); // all-trusted round

TEST(EvictionSpec, CustomAdaptiveBounds) {
  const auto spec = EvictionSpec::adaptive(0.0, 1.0);
  EXPECT_DOUBLE_EQ(spec.rate_for(0.0), 1.0);
  EXPECT_DOUBLE_EQ(spec.rate_for(1.0), 0.0);
  EXPECT_DOUBLE_EQ(spec.rate_for(0.25), 0.75);
}

TEST(EvictionSpec, DegenerateBoundsPinRate) {
  const auto spec = EvictionSpec::adaptive(0.5, 0.5);
  for (double p : {0.0, 0.4, 0.9}) EXPECT_DOUBLE_EQ(spec.rate_for(p), 0.5);
}

}  // namespace
}  // namespace raptee::core
