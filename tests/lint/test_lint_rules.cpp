// Rule-by-rule self-test: every rule has one negative fixture (must fire,
// at the marked line) and one positive fixture (must stay silent). The
// fixtures are checked-in .fixture files — real programs with the wrong
// extension, so the real tree scan skips them by construction.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support.hpp"

namespace raptee::lint {
namespace {

using testing::count_rule;
using testing::has_finding;
using testing::line_of;
using testing::load_fixture;

std::vector<Finding> run(const std::string& rel_path, const std::string& source) {
  return lint_source(rel_path, source, Config{});
}

TEST(LintRules, WallClockFires) {
  const std::string source = load_fixture("wall_clock_bad.fixture");
  const std::vector<Finding> findings = run("src/sim/fixture.cpp", source);
  EXPECT_EQ(count_rule(findings, "no-wall-clock"), 2u);
  EXPECT_TRUE(has_finding(findings, "no-wall-clock",
                          line_of(source, "std::random_device")));
  EXPECT_TRUE(has_finding(findings, "no-wall-clock",
                          line_of(source, "steady_clock::now()")));
}

TEST(LintRules, WallClockCleanAndScoped) {
  const std::string good = load_fixture("wall_clock_good.fixture");
  EXPECT_TRUE(run("src/sim/fixture.cpp", good).empty());
  // The same violations are legal outside the deterministic dirs: the obs
  // profiling layer and the socket transport are allowlisted by path.
  const std::string bad = load_fixture("wall_clock_bad.fixture");
  EXPECT_EQ(count_rule(run("src/obs/fixture.cpp", bad), "no-wall-clock"), 0u);
  EXPECT_EQ(count_rule(run("src/net/fixture.cpp", bad), "no-wall-clock"), 0u);
}

TEST(LintRules, WallClockCoversEvtScheduler) {
  // src/evt is a deterministic dir: the event scheduler must never read the
  // host's clock — virtual time is its whole contract.
  const std::string bad = load_fixture("evt_clock_bad.fixture");
  const std::vector<Finding> findings = run("src/evt/fixture.cpp", bad);
  EXPECT_EQ(count_rule(findings, "no-wall-clock"), 2u);
  EXPECT_TRUE(has_finding(findings, "no-wall-clock",
                          line_of(bad, "system_clock::now()")));
  EXPECT_TRUE(has_finding(findings, "no-wall-clock", line_of(bad, "time(nullptr)")));
}

TEST(LintRules, WallClockEvtVirtualTimeIsClean) {
  const std::string good = load_fixture("evt_clock_good.fixture");
  EXPECT_TRUE(run("src/evt/fixture.cpp", good).empty());
}

TEST(LintRules, UnorderedIterationFires) {
  const std::string source = load_fixture("unordered_iter_bad.fixture");
  const std::vector<Finding> findings = run("src/net/fixture.cpp", source);
  EXPECT_EQ(count_rule(findings, "no-unordered-iteration"), 1u);
  EXPECT_TRUE(has_finding(findings, "no-unordered-iteration",
                          line_of(source, "for (const auto& [id, name]")));
}

TEST(LintRules, UnorderedIterationClean) {
  const std::string source = load_fixture("unordered_iter_good.fixture");
  EXPECT_TRUE(run("src/net/fixture.cpp", source).empty());
}

TEST(LintRules, PlainAssertFires) {
  const std::string source = load_fixture("plain_assert_bad.fixture");
  const std::vector<Finding> findings = run("src/core/fixture.cpp", source);
  EXPECT_EQ(count_rule(findings, "no-plain-assert"), 1u);
  EXPECT_TRUE(has_finding(findings, "no-plain-assert",
                          line_of(source, "assert(n % 2 == 0)")));
}

TEST(LintRules, PlainAssertClean) {
  const std::string source = load_fixture("plain_assert_good.fixture");
  EXPECT_TRUE(run("src/core/fixture.cpp", source).empty());
}

TEST(LintRules, MemoryOrderFires) {
  const std::string source = load_fixture("memory_order_bad.fixture");
  const std::vector<Finding> findings = run("src/exec/fixture.cpp", source);
  EXPECT_EQ(count_rule(findings, "explicit-memory-order"), 2u);
  EXPECT_TRUE(has_finding(findings, "explicit-memory-order",
                          line_of(source, "fetch_add(1)")));
  EXPECT_TRUE(has_finding(findings, "explicit-memory-order",
                          line_of(source, "running.load()")));
}

TEST(LintRules, MemoryOrderCleanAndTestExempt) {
  const std::string good = load_fixture("memory_order_good.fixture");
  EXPECT_TRUE(run("src/exec/fixture.cpp", good).empty());
  // Tests may lean on seq_cst defaults: the same bad source is clean when
  // linted under tests/.
  const std::string bad = load_fixture("memory_order_bad.fixture");
  EXPECT_EQ(count_rule(run("tests/exec/fixture.cpp", bad), "explicit-memory-order"),
            0u);
}

TEST(LintRules, CastAllowlistFires) {
  const std::string source = load_fixture("cast_bad.fixture");
  const std::vector<Finding> findings = run("src/gossip/fixture.cpp", source);
  EXPECT_EQ(count_rule(findings, "cast-allowlist"), 1u);
  EXPECT_TRUE(has_finding(findings, "cast-allowlist",
                          line_of(source, "reinterpret_cast<const Header*>")));
}

TEST(LintRules, CastAllowlistCleanAndAuditedFiles) {
  const std::string good = load_fixture("cast_good.fixture");
  EXPECT_TRUE(run("src/gossip/fixture.cpp", good).empty());
  // The audited syscall/arena files may cast freely, no annotation needed.
  const std::string bad = load_fixture("cast_bad.fixture");
  EXPECT_EQ(count_rule(run("src/net/socket.cpp", bad), "cast-allowlist"), 0u);
  EXPECT_EQ(count_rule(run("src/common/arena.hpp", bad), "cast-allowlist"), 0u);
}

TEST(LintRules, IostreamFires) {
  const std::string source = load_fixture("iostream_bad.fixture");
  const std::vector<Finding> findings = run("src/metrics/fixture.cpp", source);
  EXPECT_EQ(count_rule(findings, "no-iostream-in-lib"), 2u);
  EXPECT_TRUE(has_finding(findings, "no-iostream-in-lib",
                          line_of(source, "std::cout")));
  EXPECT_TRUE(has_finding(findings, "no-iostream-in-lib",
                          line_of(source, "std::fprintf")));
}

TEST(LintRules, IostreamCleanAndLibScoped) {
  const std::string good = load_fixture("iostream_good.fixture");
  EXPECT_TRUE(run("src/metrics/fixture.cpp", good).empty());
  // Benches, examples and tools are front-door binaries — stdout is their
  // product, the rule only polices src/.
  const std::string bad = load_fixture("iostream_bad.fixture");
  EXPECT_EQ(count_rule(run("bench/fixture.cpp", bad), "no-iostream-in-lib"), 0u);
  EXPECT_EQ(count_rule(run("tools/fixture.cpp", bad), "no-iostream-in-lib"), 0u);
}

TEST(LintRules, HeaderHygieneFires) {
  const std::string source = load_fixture("header_bad.fixture");
  const std::vector<Finding> findings = run("src/core/fixture.hpp", source);
  EXPECT_EQ(count_rule(findings, "header-hygiene"), 2u);
  EXPECT_TRUE(has_finding(findings, "header-hygiene", 1));  // missing pragma
  EXPECT_TRUE(has_finding(findings, "header-hygiene",
                          line_of(source, "using namespace std")));
}

TEST(LintRules, HeaderHygieneCleanAndCppExempt) {
  const std::string good = load_fixture("header_good.fixture");
  EXPECT_TRUE(run("src/core/fixture.hpp", good).empty());
  // The same content linted as a .cpp is exempt: translation units neither
  // need #pragma once nor leak using-directives into includers.
  const std::string bad = load_fixture("header_bad.fixture");
  EXPECT_EQ(count_rule(run("src/core/fixture.cpp", bad), "header-hygiene"), 0u);
}

TEST(LintRules, RuleCatalogIsStable) {
  EXPECT_TRUE(rule_exists("no-wall-clock"));
  EXPECT_TRUE(rule_exists("suppression-hygiene"));
  EXPECT_FALSE(rule_exists("no-such-rule"));
  EXPECT_EQ(rules().size(), 8u);
}

}  // namespace
}  // namespace raptee::lint
