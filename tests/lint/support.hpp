// Shared helpers for the raptee-lint self-tests: fixture loading (the
// checked-in .fixture files are real programs the real scan never sees —
// wrong extension by design) and finding queries.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

namespace raptee::lint::testing {

inline std::string fixture_dir() { return RAPTEE_LINT_FIXTURE_DIR; }

inline std::string load_fixture(const std::string& name) {
  const std::string path = fixture_dir() + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// 1-based line of the first source line containing `needle` (0 if absent)
/// — keeps expected line numbers in sync with fixture edits.
inline int line_of(const std::string& source, const std::string& needle) {
  std::istringstream in(source);
  std::string line;
  int number = 0;
  while (std::getline(in, line)) {
    ++number;
    if (line.find(needle) != std::string::npos) return number;
  }
  return 0;
}

inline std::size_t count_rule(const std::vector<Finding>& findings,
                              const std::string& rule) {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

inline bool has_finding(const std::vector<Finding>& findings, const std::string& rule,
                        int line) {
  for (const Finding& f : findings) {
    if (f.rule == rule && f.line == line) return true;
  }
  return false;
}

}  // namespace raptee::lint::testing
