// Suppression semantics: placement (inline covers its own line, standalone
// the next), the mandatory reason, unknown-rule hygiene, --only filtering,
// and the lexer edges that keep rules from firing on comments/strings.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support.hpp"

namespace raptee::lint {
namespace {

using testing::count_rule;
using testing::has_finding;
using testing::line_of;
using testing::load_fixture;

std::vector<Finding> run(const std::string& rel_path, const std::string& source,
                         Config config = {}) {
  return lint_source(rel_path, source, config);
}

TEST(LintSuppressions, GoodFixtureIsClean) {
  const std::string source = load_fixture("suppression_good.fixture");
  EXPECT_TRUE(run("src/core/fixture.cpp", source).empty());
}

TEST(LintSuppressions, BadFixtureKeepsFindingsAndAddsHygiene) {
  const std::string source = load_fixture("suppression_bad.fixture");
  const std::vector<Finding> findings = run("src/core/fixture.cpp", source);
  // A reasonless allow suppresses nothing: the cast finding survives and the
  // annotation itself is flagged.
  EXPECT_EQ(count_rule(findings, "cast-allowlist"), 2u);
  EXPECT_EQ(count_rule(findings, "suppression-hygiene"), 2u);
  EXPECT_TRUE(has_finding(findings, "suppression-hygiene",
                          line_of(source, "allow(cast-allowlist)")));
  EXPECT_TRUE(has_finding(findings, "suppression-hygiene",
                          line_of(source, "allow(no-such-rule)")));
}

TEST(LintSuppressions, InlineCoversOwnLineOnly) {
  const std::string source =
      "const char* a = reinterpret_cast<const char*>(0);  "
      "// raptee-lint: allow(cast-allowlist) test pun\n"
      "const char* b = reinterpret_cast<const char*>(0);\n";
  const std::vector<Finding> findings = run("src/core/fixture.cpp", source);
  EXPECT_EQ(count_rule(findings, "cast-allowlist"), 1u);
  EXPECT_TRUE(has_finding(findings, "cast-allowlist", 2));
}

TEST(LintSuppressions, StandaloneCoversNextLineOnly) {
  const std::string source =
      "// raptee-lint: allow(cast-allowlist) test pun\n"
      "const char* a = reinterpret_cast<const char*>(0);\n"
      "const char* b = reinterpret_cast<const char*>(0);\n";
  const std::vector<Finding> findings = run("src/core/fixture.cpp", source);
  EXPECT_EQ(count_rule(findings, "cast-allowlist"), 1u);
  EXPECT_TRUE(has_finding(findings, "cast-allowlist", 3));
}

TEST(LintSuppressions, OneAnnotationMayAllowSeveralRules) {
  const std::string source =
      "// raptee-lint: allow(cast-allowlist, no-plain-assert) both audited here\n"
      "void f() { assert(reinterpret_cast<const char*>(0) != nullptr); }\n";
  EXPECT_TRUE(run("src/core/fixture.cpp", source).empty());
}

TEST(LintSuppressions, AllowedRuleMustMatchTheFinding) {
  const std::string source =
      "// raptee-lint: allow(no-plain-assert) wrong rule named\n"
      "const char* a = reinterpret_cast<const char*>(0);\n";
  const std::vector<Finding> findings = run("src/core/fixture.cpp", source);
  EXPECT_EQ(count_rule(findings, "cast-allowlist"), 1u);
  EXPECT_EQ(count_rule(findings, "suppression-hygiene"), 0u);
}

TEST(LintSuppressions, MalformedAnnotationIsAFinding) {
  const std::string source = "// raptee-lint: allow(cast-allowlist forgot the paren\n";
  const std::vector<Finding> findings = run("src/core/fixture.cpp", source);
  EXPECT_EQ(count_rule(findings, "suppression-hygiene"), 1u);
}

TEST(LintSuppressions, OnlyFiltersRules) {
  const std::string source =
      "void f() { assert(true); }\n"
      "const char* a = reinterpret_cast<const char*>(0);\n";
  Config only_assert;
  only_assert.only = {"no-plain-assert"};
  const std::vector<Finding> findings = run("src/core/fixture.cpp", source, only_assert);
  EXPECT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-plain-assert");

  Config only_cast;
  only_cast.only = {"cast-allowlist"};
  const std::vector<Finding> cast_only = run("src/core/fixture.cpp", source, only_cast);
  EXPECT_EQ(cast_only.size(), 1u);
  EXPECT_EQ(cast_only[0].rule, "cast-allowlist");
}

TEST(LintLexer, CommentsAndStringsDoNotFire) {
  const std::string source =
      "// mentions assert( and reinterpret_cast in prose\n"
      "/* std::cout << random_device also fine here */\n"
      "const char* s = \"assert(reinterpret_cast<int*>(0))\";\n"
      "const char* r = R\"(std::random_device rd; assert(rd);)\";\n";
  EXPECT_TRUE(run("src/sim/fixture.cpp", source).empty());
}

TEST(LintLexer, PreprocessorLinesAreOpaque) {
  // A #define body is one preprocessor token — its idents are not code.
  const std::string source =
      "#define CHECK(x) assert(x)\n"
      "#define PUN(p) reinterpret_cast<const char*>(p)\n";
  EXPECT_TRUE(run("src/core/fixture.cpp", source).empty());
}

TEST(LintLexer, LineNumbersSurviveMultilineConstructs) {
  const std::string source =
      "/* a\n"
      "   multi-line\n"
      "   comment */\n"
      "void f() { assert(true); }\n";
  const std::vector<Finding> findings = run("src/core/fixture.cpp", source);
  EXPECT_TRUE(has_finding(findings, "no-plain-assert", 4));
}

}  // namespace
}  // namespace raptee::lint
