// The JSON report contract: schema raptee.lint/1, validates against the
// repo's own JSON checker, and is byte-identical across runs — the report
// is diffable CI evidence, so nondeterminism in it is a bug.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/json.hpp"
#include "support.hpp"

namespace raptee::lint {
namespace {

using testing::fixture_dir;
using testing::load_fixture;

std::string repo_root() {
  // RAPTEE_LINT_FIXTURE_DIR is <root>/tests/lint/fixtures.
  const std::string dir = fixture_dir();
  const std::string suffix = "/tests/lint/fixtures";
  EXPECT_TRUE(dir.ends_with(suffix));
  return dir.substr(0, dir.size() - suffix.size());
}

TEST(LintReport, JsonIsValidAndCarriesSchema) {
  const std::string source = load_fixture("plain_assert_bad.fixture");
  const std::vector<Finding> findings =
      lint_source("src/core/fixture.cpp", source, Config{});
  ASSERT_FALSE(findings.empty());
  const std::string json = report_json(findings, 1, Config{});
  EXPECT_TRUE(metrics::json_valid(json));
  EXPECT_NE(json.find("\"schema\":\"raptee.lint/1\""), std::string::npos);
  EXPECT_NE(json.find("\"finding_count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"no-plain-assert\""), std::string::npos);
}

TEST(LintReport, EmptyReportIsValid) {
  const std::string json = report_json({}, 0, Config{});
  EXPECT_TRUE(metrics::json_valid(json));
  EXPECT_NE(json.find("\"finding_count\":0"), std::string::npos);
  EXPECT_NE(json.find("\"findings\":[]"), std::string::npos);
}

TEST(LintReport, OnlyFilterNarrowsRuleList) {
  Config config;
  config.only = {"no-plain-assert"};
  const std::string json = report_json({}, 0, config);
  EXPECT_NE(json.find("\"rules\":[\"no-plain-assert\"]"), std::string::npos);
}

TEST(LintReport, TreeScanIsByteIdenticalAcrossRuns) {
  const std::string root = repo_root();
  std::size_t scanned_a = 0;
  std::size_t scanned_b = 0;
  const std::vector<Finding> a = lint_tree(root, Config{}, &scanned_a);
  const std::vector<Finding> b = lint_tree(root, Config{}, &scanned_b);
  EXPECT_EQ(scanned_a, scanned_b);
  EXPECT_GT(scanned_a, 0u);
  const std::string report_a = report_json(a, scanned_a, Config{});
  const std::string report_b = report_json(b, scanned_b, Config{});
  EXPECT_EQ(report_a, report_b);
  EXPECT_TRUE(metrics::json_valid(report_a));
}

TEST(LintReport, TreeIsClean) {
  // The repo's own acceptance bar: the sweep left zero findings at HEAD.
  const std::string root = repo_root();
  std::size_t scanned = 0;
  const std::vector<Finding> findings = lint_tree(root, Config{}, &scanned);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": " << f.rule << ": " << f.message;
  }
}

}  // namespace
}  // namespace raptee::lint
