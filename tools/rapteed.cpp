// rapteed — peer-sampling-as-a-service daemon.
//
// Embeds a RAPTEE population (stepping continuously in the background) and
// serves SampleRequest frames over the loopback socket bus (see
// src/net/service.hpp for the protocol). Prints the bound port on stdout
// (scripts with port 0 capture it), then runs until SIGINT/SIGTERM, which
// triggers a graceful drain: stop accepting, flush replies in flight, then
// exit 0 with a stats summary.
//
//   ./build/tools/rapteed [port] [population] [seed]
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <thread>

#include "net/service.hpp"
#include "scenario/knobs.hpp"

namespace {

[[noreturn]] void usage_exit(const char* error) {
  std::cerr << "error: " << error << "\n"
            << "usage: rapteed [port] [population] [seed]\n"
            << "  port        TCP port on 127.0.0.1, 0..65535 (default 0 = ephemeral)\n"
            << "  population  embedded RAPTEE population, 8..4096 (default 32)\n"
            << "  seed        simulation seed (default 1)\n";
  std::exit(2);
}

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace raptee;

  net::DaemonConfig config;
  try {
    if (argc > 1) {
      config.port = static_cast<std::uint16_t>(
          scenario::parse_u64("port", argv[1], 0, 65535));
    }
    if (argc > 2) {
      config.population = static_cast<std::size_t>(
          scenario::parse_u64("population", argv[2], 8, 4096));
    }
    if (argc > 3) {
      config.seed = scenario::parse_u64("seed", argv[3], 0, ~0ull);
    }
    if (argc > 4) usage_exit("too many arguments");
  } catch (const std::invalid_argument& error) {
    usage_exit(error.what());
  }
  if (config.view_size >= config.population) {
    config.view_size = config.population / 2;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  net::ServiceDaemon daemon(config);
  const std::uint16_t port = daemon.start();
  // Line-buffered handshake for wrapper scripts: first line is the port.
  std::printf("rapteed listening on 127.0.0.1:%u\n", port);
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("rapteed draining...\n");
  daemon.stop();
  const auto stats = daemon.bus_stats();
  std::printf("rapteed done: %llu requests served, %llu rejected, "
              "%llu rounds stepped, %llu frames in / %llu out\n",
              static_cast<unsigned long long>(daemon.requests_served()),
              static_cast<unsigned long long>(daemon.requests_rejected()),
              static_cast<unsigned long long>(daemon.rounds_stepped()),
              static_cast<unsigned long long>(stats.frames_received),
              static_cast<unsigned long long>(stats.frames_sent));
  return 0;
}
