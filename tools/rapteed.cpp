// rapteed — peer-sampling-as-a-service daemon.
//
// Embeds a RAPTEE population (stepping continuously in the background) and
// serves SampleRequest frames over the loopback socket bus (see
// src/net/service.hpp for the protocol). Prints the bound port on stdout
// (scripts with port 0 capture it), then runs until SIGINT/SIGTERM, which
// triggers a graceful drain: stop accepting, flush replies in flight, then
// exit 0 with a stats summary (plus a one-line metrics-registry summary on
// stderr).
//
//   ./build/tools/rapteed [port] [population] [seed] [--monitor-port N]
//
// --monitor-port starts the HTTP monitoring endpoint (src/obs/http.hpp) on
// 127.0.0.1:N serving /metrics, /metrics.prom and /healthz; N=0 binds an
// ephemeral port, announced on stdout as a second "monitoring on" line.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "net/service.hpp"
#include "obs/export.hpp"
#include "obs/http.hpp"
#include "obs/registry.hpp"
#include "scenario/knobs.hpp"

namespace {

[[noreturn]] void usage_exit(const char* error) {
  raptee::scenario::cli_usage(
      "rapteed", "[port] [population] [seed] [--monitor-port N]",
      {{"port", "TCP port on 127.0.0.1, 0..65535 (default 0 = ephemeral)"},
       {"population", "embedded RAPTEE population, 8..4096 (default 32)"},
       {"seed", "simulation seed (default 1)"},
       {"--monitor-port N",
        "serve /metrics, /metrics.prom, /healthz on 127.0.0.1:N (0 = ephemeral)"}},
      error);
}

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace raptee;

  net::DaemonConfig config;
  std::optional<std::uint16_t> monitor_port;
  try {
    std::vector<const char*> positional;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--monitor-port") == 0) {
        if (i + 1 >= argc) usage_exit("--monitor-port needs a value");
        monitor_port = static_cast<std::uint16_t>(
            scenario::parse_u64("--monitor-port", argv[++i], 0, 65535));
      } else if (argv[i][0] == '-' && argv[i][1] == '-') {
        usage_exit("unknown flag");
      } else {
        positional.push_back(argv[i]);
      }
    }
    if (positional.size() > 0) {
      config.port = static_cast<std::uint16_t>(
          scenario::parse_u64("port", positional[0], 0, 65535));
    }
    if (positional.size() > 1) {
      config.population = static_cast<std::size_t>(
          scenario::parse_u64("population", positional[1], 8, 4096));
    }
    if (positional.size() > 2) {
      config.seed = scenario::parse_u64("seed", positional[2], 0, ~0ull);
    }
    if (positional.size() > 3) usage_exit("too many arguments");
  } catch (const std::invalid_argument& error) {
    usage_exit(error.what());
  }
  if (config.view_size >= config.population) {
    config.view_size = config.population / 2;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  net::ServiceDaemon daemon(config);
  const std::uint16_t port = daemon.start();
  // Line-buffered handshake for wrapper scripts: first line is the port.
  std::printf("rapteed listening on 127.0.0.1:%u\n", port);
  std::fflush(stdout);

  obs::MonitorServer monitor;
  if (monitor_port) {
    obs::add_registry_routes(monitor, obs::Registry::global());
    const std::uint16_t bound = monitor.start(*monitor_port);
    std::printf("rapteed monitoring on 127.0.0.1:%u\n", bound);
    std::fflush(stdout);
  }

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("rapteed draining...\n");
  monitor.stop();
  daemon.stop();
  const auto stats = daemon.bus_stats();
  std::printf("rapteed done: %llu requests served, %llu rejected, "
              "%llu rounds stepped, %llu frames in / %llu out\n",
              static_cast<unsigned long long>(daemon.requests_served()),
              static_cast<unsigned long long>(daemon.requests_rejected()),
              static_cast<unsigned long long>(daemon.rounds_stepped()),
              static_cast<unsigned long long>(stats.frames_received),
              static_cast<unsigned long long>(stats.frames_sent));
  std::fprintf(stderr, "%s\n",
               obs::summary_line(obs::Registry::global().snapshot()).c_str());
  return 0;
}
