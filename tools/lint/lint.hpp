// raptee-lint: the repo's determinism & hot-path invariants as named,
// machine-checkable rules (see tools/lint/README.md for the catalog and
// how to add one).
//
// The analyzer is deliberately tokenizer-level (lexer.hpp): no
// preprocessing, no type information. Each rule is a conservative pattern
// over the token stream with an annotation escape hatch — a finding means
// "this needs either a fix or a written-down reason", never "the compiler
// is wrong". Suppressions are per-line comments with a mandatory reason:
//
//   conns_.reserve(n);  // raptee-lint: allow(no-unordered-iteration) teardown order is invisible
//   // raptee-lint: allow(cast-allowlist) kernel ABI requires the pun
//   auto* hdr = reinterpret_cast<Header*>(buf);
//
// An inline annotation covers its own line; a standalone one covers the
// next line. A suppression without a reason (or naming an unknown rule) is
// itself a finding (rule `suppression-hygiene`), so every allow in the
// tree carries its justification.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace raptee::lint {

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

/// The rule catalog, in the stable order used by --list-rules and the
/// JSON report.
[[nodiscard]] std::span<const RuleInfo> rules();

/// True iff `name` names a rule in the catalog.
[[nodiscard]] bool rule_exists(std::string_view name);

struct Finding {
  std::string file;  // root-relative, forward slashes
  int line = 0;
  std::string rule;
  std::string message;
};

struct Config {
  /// Empty = every rule. Names must exist (CLI validates; lint_source
  /// ignores unknown names).
  std::vector<std::string> only;

  [[nodiscard]] bool enabled(std::string_view rule) const;
};

/// Lints one file's contents. `rel_path` is the root-relative path used
/// both for rule scoping (directory classification, per-file allowlists)
/// and in emitted findings. `sibling_header` optionally carries the
/// paired .hpp's contents so member declarations (atomics, unordered
/// containers) inform the .cpp scan.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view rel_path,
                                               std::string_view source,
                                               const Config& config,
                                               std::string_view sibling_header = {});

/// Walks `root`'s scanned directories (src, bench, examples, tests,
/// tools), lints every .cpp/.cc/.hpp/.h in deterministic path order, and
/// returns all findings sorted by (file, line, rule). Fixture files
/// (*.fixture) are not sources and are skipped by construction.
[[nodiscard]] std::vector<Finding> lint_tree(const std::string& root,
                                             const Config& config,
                                             std::size_t* files_scanned);

/// Deterministic JSON report ("raptee.lint/1"): same findings in, same
/// bytes out — no timestamps, no absolute paths. Validated against
/// metrics::json_valid by the CLI before it is written.
[[nodiscard]] std::string report_json(const std::vector<Finding>& findings,
                                      std::size_t files_scanned,
                                      const Config& config);

}  // namespace raptee::lint
