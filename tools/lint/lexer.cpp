#include "lexer.hpp"

#include <cctype>

namespace raptee::lint {

namespace {

[[nodiscard]] bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

[[nodiscard]] bool is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// Two-character punctuators the rules care to see as one token. `::` is
/// the load-bearing one (qualified names); the rest exist so that e.g.
/// `a != b` never looks like an `=` assignment and `++`/`--` are single
/// tokens for the atomic-increment check.
[[nodiscard]] bool is_two_char_punct(char a, char b) {
  switch (a) {
    case ':': return b == ':';
    case '+': return b == '+' || b == '=';
    case '-': return b == '-' || b == '=' || b == '>';
    case '<': return b == '<' || b == '=';
    case '>': return b == '>' || b == '=';
    case '=': return b == '=';
    case '!': return b == '=';
    case '&': return b == '&' || b == '=';
    case '|': return b == '|' || b == '=';
    case '*': return b == '=';
    case '/': return b == '=';
    case '^': return b == '=';
    case '%': return b == '=';
    default: return false;
  }
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  LexResult run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        lex_preprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == '"') {
        lex_string();
        continue;
      }
      if (c == '\'') {
        lex_char();
        continue;
      }
      if (is_ident_start(c)) {
        lex_ident_or_raw_string();
        continue;
      }
      if (is_digit(c) || (c == '.' && pos_ + 1 < src_.size() && is_digit(src_[pos_ + 1]))) {
        lex_number();
        continue;
      }
      lex_punct();
    }
    return std::move(out_);
  }

 private:
  void emit(TokenKind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
    last_code_line_ = line;
  }

  void lex_line_comment() {
    const int line = line_;
    const bool standalone = last_code_line_ != line;
    pos_ += 2;
    const std::size_t start = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    out_.comments.push_back(
        Comment{line, std::string(src_.substr(start, pos_ - start)), standalone});
  }

  void lex_block_comment() {
    const int line = line_;
    const bool standalone = last_code_line_ != line;
    pos_ += 2;
    const std::size_t start = pos_;
    std::size_t end = src_.size();
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_[pos_] == '*' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        end = pos_;
        pos_ += 2;
        break;
      }
      ++pos_;
    }
    out_.comments.push_back(
        Comment{line, std::string(src_.substr(start, end - start)), standalone});
  }

  void lex_preprocessor() {
    const int line = line_;
    const std::size_t start = pos_;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      // A // comment terminates the directive's interesting part but we
      // must still let the comment lexer see it for suppressions.
      if (src_[pos_] == '/' && pos_ + 1 < src_.size() &&
          (src_[pos_ + 1] == '/' || src_[pos_ + 1] == '*')) {
        break;
      }
      if (src_[pos_] == '\n') break;
      ++pos_;
    }
    emit(TokenKind::kPreprocessor, std::string(src_.substr(start, pos_ - start)), line);
  }

  void lex_string() {
    const int line = line_;
    const std::size_t start = pos_;
    ++pos_;  // opening quote
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') {  // unterminated; be forgiving
        break;
      }
      if (src_[pos_] == '"') {
        ++pos_;
        break;
      }
      ++pos_;
    }
    emit(TokenKind::kString, std::string(src_.substr(start, pos_ - start)), line);
  }

  void lex_char() {
    const int line = line_;
    const std::size_t start = pos_;
    ++pos_;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;
      if (src_[pos_] == '\'') {
        ++pos_;
        break;
      }
      ++pos_;
    }
    emit(TokenKind::kChar, std::string(src_.substr(start, pos_ - start)), line);
  }

  /// Identifiers, with the one lexical wart that matters here: R"( starts
  /// a raw string whose body must not produce tokens (fixture programs are
  /// embedded in tests as raw strings). Encoding prefixes (u8R etc.) fold
  /// into the same path.
  void lex_ident_or_raw_string() {
    const int line = line_;
    const std::size_t start = pos_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    std::string text(src_.substr(start, pos_ - start));
    const bool raw_prefix = text == "R" || text == "u8R" || text == "uR" ||
                            text == "UR" || text == "LR";
    if (raw_prefix && pos_ < src_.size() && src_[pos_] == '"') {
      lex_raw_string_body(line, start);
      return;
    }
    emit(TokenKind::kIdent, std::move(text), line);
  }

  void lex_raw_string_body(int line, std::size_t start) {
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(' && src_[pos_] != '\n') {
      delim += src_[pos_++];
    }
    if (pos_ < src_.size() && src_[pos_] == '(') ++pos_;
    const std::string closer = ")" + delim + "\"";
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (src_.compare(pos_, closer.size(), closer) == 0) {
        pos_ += closer.size();
        break;
      }
      ++pos_;
    }
    emit(TokenKind::kString, std::string(src_.substr(start, pos_ - start)), line);
  }

  void lex_number() {
    const int line = line_;
    const std::size_t start = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (is_ident_char(c) || c == '\'' || c == '.') {
        ++pos_;
        continue;
      }
      // Exponent signs: 1e+5, 0x1p-3
      if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    emit(TokenKind::kNumber, std::string(src_.substr(start, pos_ - start)), line);
  }

  void lex_punct() {
    const int line = line_;
    const char a = src_[pos_];
    if (pos_ + 1 < src_.size() && is_two_char_punct(a, src_[pos_ + 1])) {
      emit(TokenKind::kPunct, std::string(src_.substr(pos_, 2)), line);
      pos_ += 2;
      return;
    }
    emit(TokenKind::kPunct, std::string(1, a), line);
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  int last_code_line_ = 0;
  LexResult out_;
};

}  // namespace

LexResult lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace raptee::lint
