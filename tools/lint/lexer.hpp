// raptee-lint lexical layer: a minimal, dependency-free C++ tokenizer.
//
// The linter works at token level — no preprocessing, no name lookup, no
// libclang. The lexer's only obligations are the ones the rules need:
//  * comments and string/char literals never produce code tokens (so a
//    banned identifier inside a docstring cannot fire a rule),
//  * raw strings (R"delim(...)delim") are skipped correctly — test sources
//    embed whole fixture programs in them,
//  * every token carries its 1-based source line for diagnostics,
//  * preprocessor directives are captured as single tokens (full logical
//    line, backslash continuations folded) for the header-hygiene rule,
//  * comments are captured out-of-band with a "standalone" flag so the
//    suppression parser can tell an inline annotation from one on its own
//    line (which applies to the line below).
//
// Good-faith lexing: malformed input (unterminated literal/comment) does
// not abort — the lexer consumes to end of input and the rules see what
// was recognized. The real compiler rejects such files anyway.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace raptee::lint {

enum class TokenKind {
  kIdent,
  kNumber,
  kPunct,
  kString,
  kChar,
  kPreprocessor,
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

struct Comment {
  int line = 0;          // 1-based line of the comment's first character
  std::string text;      // body without the // or /* */ delimiters
  bool standalone = false;  // no code token precedes it on its line
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

[[nodiscard]] LexResult lex(std::string_view source);

}  // namespace raptee::lint
