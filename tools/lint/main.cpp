// raptee_lint — CLI front-end. See tools/lint/README.md.
//
//   raptee_lint [--root DIR] [--only rule,rule] [--json PATH] [--list-rules]
//
// Exit codes follow the repo's strict-CLI contract: 0 clean, 1 findings,
// 2 usage error. Diagnostics print as clickable `file:line: rule: message`
// lines; --json additionally writes the deterministic "raptee.lint/1"
// report (self-validated against metrics::json_valid before writing).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"
#include "metrics/json.hpp"

namespace {

int usage(const char* error) {
  if (error != nullptr) std::cerr << "error: " << error << '\n';
  std::cerr << "usage: raptee_lint [--root DIR] [--only rule[,rule...]]"
               " [--json PATH] [--list-rules]\n"
               "  --root DIR    repo root to scan (default: .)\n"
               "  --only LIST   comma-separated rule names to run (default: all)\n"
               "  --json PATH   write the raptee.lint/1 JSON report to PATH\n"
               "  --list-rules  print the rule catalog and exit\n";
  return 2;
}

void split_csv(const std::string& csv, std::vector<std::string>& out) {
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string name = csv.substr(start, comma - start);
    if (!name.empty()) out.push_back(name);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  raptee::lint::Config config;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--root") {
      if (++i >= argc) return usage("--root needs a directory");
      root = argv[i];
    } else if (arg == "--only") {
      if (++i >= argc) return usage("--only needs a rule list");
      split_csv(argv[i], config.only);
    } else if (arg == "--json") {
      if (++i >= argc) return usage("--json needs a path");
      json_path = argv[i];
    } else {
      return usage(("unknown argument '" + arg + "'").c_str());
    }
  }

  for (const std::string& name : config.only) {
    if (!raptee::lint::rule_exists(name)) {
      return usage(("unknown rule '" + name + "' (see --list-rules)").c_str());
    }
  }

  if (list_rules) {
    for (const raptee::lint::RuleInfo& rule : raptee::lint::rules()) {
      std::cout << rule.name << "\n    " << rule.summary << '\n';
    }
    return 0;
  }

  std::size_t files_scanned = 0;
  const std::vector<raptee::lint::Finding> findings =
      raptee::lint::lint_tree(root, config, &files_scanned);
  if (files_scanned == 0) return usage("nothing to scan under --root");

  for (const raptee::lint::Finding& finding : findings) {
    std::cout << finding.file << ':' << finding.line << ": " << finding.rule
              << ": " << finding.message << '\n';
  }
  std::cout << "raptee_lint: " << files_scanned << " files, "
            << findings.size() << " finding" << (findings.size() == 1 ? "" : "s")
            << '\n';

  if (!json_path.empty()) {
    const std::string report =
        raptee::lint::report_json(findings, files_scanned, config);
    if (!raptee::metrics::json_valid(report)) {
      std::cerr << "error: internal: report failed JSON validation\n";
      return 2;
    }
    if (!raptee::metrics::write_text_file(json_path, report)) {
      std::cerr << "error: could not write " << json_path << '\n';
      return 2;
    }
    std::cout << "[json] " << json_path << '\n';
  }

  return findings.empty() ? 0 : 1;
}
