#include "lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "lexer.hpp"
#include "metrics/json.hpp"

namespace raptee::lint {

namespace {

// ----------------------------------------------------------------- catalog

constexpr std::array<RuleInfo, 8> kRules{{
    {"no-wall-clock",
     "no wall-clock/time sources (std::chrono *_clock, time(), std::random_device) "
     "in deterministic dirs (src/sim, src/adversary, src/scenario, src/metrics, "
     "src/wire, src/evt)"},
    {"no-unordered-iteration",
     "iterating an unordered_map/unordered_set in src/ requires an allow annotation "
     "stating why iteration order cannot reach results, exports or logs"},
    {"no-plain-assert",
     "plain assert() is banned everywhere; use RAPTEE_ASSERT (invariant) or "
     "RAPTEE_REQUIRE (precondition) — both always-on"},
    {"explicit-memory-order",
     "every atomic load/store/exchange/fetch_*/++/--/= names its std::memory_order "
     "(src, bench, examples, tools)"},
    {"cast-allowlist",
     "reinterpret_cast/const_cast only in the audited syscall/arena files "
     "(src/net/socket.cpp, src/common/arena.hpp) or under an allow annotation"},
    {"no-iostream-in-lib",
     "library code (src/) writes through common/log, not std::cout/cerr/printf"},
    {"header-hygiene",
     "headers open with #pragma once (before any code) and never say 'using namespace'"},
    {"suppression-hygiene",
     "every 'raptee-lint: allow(rule)' annotation names known rules and carries a "
     "non-empty reason"},
}};

// ------------------------------------------------------------ file scoping

constexpr std::array<std::string_view, 6> kDeterministicDirs{
    "src/sim/",     "src/adversary/", "src/scenario/",
    "src/metrics/", "src/wire/",      "src/evt/"};

/// Files audited for raw casts: the syscall shim (kernel ABI requires the
/// sockaddr puns) and the arena (a bump allocator is a cast by definition).
constexpr std::array<std::string_view, 2> kCastAudited{"src/net/socket.cpp",
                                                       "src/common/arena.hpp"};

/// The logging/assert sinks themselves — the code every other src/ file is
/// told to route output through.
constexpr std::array<std::string_view, 3> kIostreamExempt{
    "src/common/log.cpp", "src/common/log.hpp", "src/common/assert.cpp"};

struct FileClass {
  bool header = false;
  bool in_src = false;
  bool in_tests = false;
  bool deterministic = false;
  bool cast_audited = false;
  bool iostream_exempt = false;
};

[[nodiscard]] FileClass classify(std::string_view rel_path) {
  FileClass fc;
  fc.header = rel_path.ends_with(".hpp") || rel_path.ends_with(".h");
  fc.in_src = rel_path.starts_with("src/");
  fc.in_tests = rel_path.starts_with("tests/");
  for (const std::string_view dir : kDeterministicDirs) {
    if (rel_path.starts_with(dir)) fc.deterministic = true;
  }
  for (const std::string_view file : kCastAudited) {
    if (rel_path == file) fc.cast_audited = true;
  }
  for (const std::string_view file : kIostreamExempt) {
    if (rel_path == file) fc.iostream_exempt = true;
  }
  return fc;
}

// ------------------------------------------------------------ suppressions

struct Suppression {
  int target_line = 0;   // line the allow covers
  int comment_line = 0;  // line the annotation lives on
  std::vector<std::string> rule_names;
  bool has_reason = false;
};

[[nodiscard]] std::string trim(std::string_view text) {
  std::size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

[[nodiscard]] std::vector<Suppression> parse_suppressions(
    const std::vector<Comment>& comments) {
  std::vector<Suppression> out;
  for (const Comment& comment : comments) {
    const std::string_view text = comment.text;
    // Only the exact tag-plus-allow form is an annotation; prose that
    // merely mentions the linter (docs, this file) must not parse as one.
    const std::size_t tag = text.find("raptee-lint: allow(");
    if (tag == std::string_view::npos) continue;
    Suppression s;
    s.comment_line = comment.line;
    // Inline annotations cover their own line; standalone ones the next.
    s.target_line = comment.standalone ? comment.line + 1 : comment.line;
    const std::size_t open = text.find("allow(", tag);
    const std::size_t close = text.find(')', open);
    if (close == std::string_view::npos) {
      out.push_back(std::move(s));  // malformed: no rules, no reason
      continue;
    }
    std::string rules_csv(text.substr(open + 6, close - open - 6));
    std::size_t start = 0;
    while (start <= rules_csv.size()) {
      const std::size_t comma = rules_csv.find(',', start);
      const std::string name =
          trim(std::string_view(rules_csv).substr(start, comma - start));
      if (!name.empty()) s.rule_names.push_back(name);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    s.has_reason = !trim(text.substr(close + 1)).empty();
    out.push_back(std::move(s));
  }
  return out;
}

// --------------------------------------------------- declaration harvesting

constexpr std::array<std::string_view, 4> kUnorderedTypes{
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

void skip_template_args(const std::vector<Token>& toks, std::size_t& i) {
  if (i >= toks.size() || toks[i].text != "<") return;
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    else if (t == ">") --depth;
    else if (t == ">>") depth -= 2;
    if (depth <= 0) {
      ++i;
      return;
    }
  }
}

/// Variable/member names declared with a type whose last type token is in
/// `type_names`: `std::unordered_map<K, V> name;` / `std::atomic<bool> b{...}`.
/// Token-level, so only same-file (plus sibling-header) declarations are
/// seen — precisely the scope a reviewer can check by eye.
void harvest_declared_names(const std::vector<Token>& toks,
                            std::span<const std::string_view> type_names,
                            std::set<std::string>& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdent) continue;
    bool match = false;
    for (const std::string_view t : type_names) {
      if (toks[i].text == t) match = true;
    }
    if (!match) continue;
    std::size_t j = i + 1;
    skip_template_args(toks, j);
    // Tolerate declarator decorations between type and name.
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" || toks[j].text == "&&" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != TokenKind::kIdent) continue;
    const std::string& name = toks[j].text;
    if (j + 1 >= toks.size()) continue;
    const std::string& next = toks[j + 1].text;
    if (next == ";" || next == "{" || next == "=" || next == "," || next == ")") {
      out.insert(name);
    }
  }
}

// ------------------------------------------------------------------- rules

struct RawFinding {
  int line = 0;
  std::string_view rule;
  std::string message;
};

void rule_no_wall_clock(const std::vector<Token>& toks, const FileClass& fc,
                        std::vector<RawFinding>& out) {
  if (!fc.deterministic) return;
  constexpr std::array<std::string_view, 10> kTimeCalls{
      "time",        "clock",  "gettimeofday", "clock_gettime", "timespec_get",
      "localtime",   "gmtime", "mktime",       "srand",         "rand"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (t.size() > 6 && t.ends_with("_clock")) {
      out.push_back({toks[i].line, "no-wall-clock",
                     "wall-clock source '" + t +
                         "' in deterministic code; time must come from round "
                         "numbers or obs-layer instrumentation"});
      continue;
    }
    if (t == "random_device") {
      out.push_back({toks[i].line, "no-wall-clock",
                     "std::random_device in deterministic code; seed from the "
                     "scenario's forked Rng streams instead"});
      continue;
    }
    const bool member = i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
    const bool called = i + 1 < toks.size() && toks[i + 1].text == "(";
    if (member || !called) continue;
    for (const std::string_view call : kTimeCalls) {
      if (t == call) {
        out.push_back({toks[i].line, "no-wall-clock",
                       "call to '" + t +
                           "()' in deterministic code; wall time and ambient "
                           "randomness are banned here"});
      }
    }
  }
}

void rule_no_unordered_iteration(const std::vector<Token>& toks, const FileClass& fc,
                                 const std::set<std::string>& unordered_names,
                                 std::vector<RawFinding>& out) {
  if (!fc.in_src || unordered_names.empty()) return;
  const auto flag = [&out](int line, const std::string& name, const char* how) {
    out.push_back({line, "no-unordered-iteration",
                   std::string(how) + " over unordered container '" + name +
                       "'; iterate a sorted copy if order can reach output, or "
                       "annotate why it cannot"});
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    // for (decl : range) — any harvested name inside the range expression.
    if (t == "for" && toks[i].kind == TokenKind::kIdent && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      int depth = 0;
      bool past_colon = false;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].text == "(") ++depth;
        else if (toks[j].text == ")") {
          if (--depth == 0) break;
        } else if (toks[j].text == ":" && depth == 1) {
          past_colon = true;
        } else if (past_colon && toks[j].kind == TokenKind::kIdent &&
                   unordered_names.contains(toks[j].text)) {
          flag(toks[j].line, toks[j].text, "range-for");
          break;
        }
      }
      continue;
    }
    // name.begin() / name.cbegin() / name.rbegin() — explicit iterator loops.
    if (toks[i].kind == TokenKind::kIdent && unordered_names.contains(t) &&
        i + 2 < toks.size() && (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin" ||
         toks[i + 2].text == "rbegin")) {
      flag(toks[i].line, t, "iterator loop");
      continue;
    }
    // std::erase_if(name, pred) visits every element too.
    if (t == "erase_if" && toks[i].kind == TokenKind::kIdent) {
      for (std::size_t j = i + 1; j < toks.size() && j < i + 6; ++j) {
        if (toks[j].text == ",") break;
        if (toks[j].kind == TokenKind::kIdent && unordered_names.contains(toks[j].text)) {
          flag(toks[j].line, toks[j].text, "erase_if");
          break;
        }
      }
    }
  }
}

void rule_no_plain_assert(const std::vector<Token>& toks, std::vector<RawFinding>& out) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == TokenKind::kIdent && toks[i].text == "assert" &&
        toks[i + 1].text == "(") {
      out.push_back({toks[i].line, "no-plain-assert",
                     "plain assert() compiles out under -DNDEBUG; use RAPTEE_ASSERT "
                     "(invariant) or RAPTEE_REQUIRE (precondition)"});
    }
  }
}

void rule_explicit_memory_order(const std::vector<Token>& toks, const FileClass& fc,
                                const std::set<std::string>& atomic_names,
                                bool has_atomic_include,
                                std::vector<RawFinding>& out) {
  if (fc.in_tests) return;  // tests may lean on seq_cst defaults
  if (!has_atomic_include && atomic_names.empty()) return;
  constexpr std::array<std::string_view, 9> kOrderedCalls{
      "load",      "store",    "exchange",
      "fetch_add", "fetch_sub", "fetch_and",
      "fetch_or",  "fetch_xor", "compare_exchange_weak"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdent) continue;
    const std::string& t = toks[i].text;
    // member call without a memory_order argument
    bool is_call_name = t == "compare_exchange_strong";
    for (const std::string_view call : kOrderedCalls) {
      if (t == call) is_call_name = true;
    }
    if (is_call_name && i > 0 &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      bool has_order = false;
      int depth = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].text == "(") ++depth;
        else if (toks[j].text == ")") {
          if (--depth == 0) break;
        } else if (toks[j].kind == TokenKind::kIdent &&
                   toks[j].text.starts_with("memory_order")) {
          has_order = true;
        }
      }
      if (!has_order) {
        out.push_back({toks[i].line, "explicit-memory-order",
                       "atomic ." + t +
                           "() without an explicit std::memory_order; defaults "
                           "to seq_cst — say so if you mean it"});
      }
      continue;
    }
    // ++x / x++ / --x / x-- / x = v on a declared atomic
    if (atomic_names.contains(t)) {
      const bool inc_dec =
          (i > 0 && (toks[i - 1].text == "++" || toks[i - 1].text == "--")) ||
          (i + 1 < toks.size() && (toks[i + 1].text == "++" || toks[i + 1].text == "--"));
      if (inc_dec) {
        out.push_back({toks[i].line, "explicit-memory-order",
                       "bare ++/-- on atomic '" + t +
                           "' is a seq_cst RMW; use fetch_add/fetch_sub with an "
                           "explicit order"});
        continue;
      }
      // `> name = ...` is the declaration's initializer (construction, not
      // an atomic store) — only flag assignments to an existing atomic.
      if (i + 1 < toks.size() && toks[i + 1].text == "=" &&
          (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "->" &&
                      toks[i - 1].text != ">" && toks[i - 1].text != ">>" &&
                      toks[i - 1].kind != TokenKind::kIdent))) {
        out.push_back({toks[i].line, "explicit-memory-order",
                       "assignment to atomic '" + t +
                           "' is an implicit seq_cst store; use .store(v, order)"});
      }
    }
  }
}

void rule_cast_allowlist(const std::vector<Token>& toks, const FileClass& fc,
                         std::vector<RawFinding>& out) {
  if (fc.cast_audited) return;
  for (const Token& tok : toks) {
    if (tok.kind != TokenKind::kIdent) continue;
    if (tok.text == "reinterpret_cast" || tok.text == "const_cast") {
      out.push_back({tok.line, "cast-allowlist",
                     tok.text +
                         " outside the audited syscall/arena files; move the "
                         "cast there or annotate the audited reason"});
    }
  }
}

void rule_no_iostream_in_lib(const std::vector<Token>& toks, const FileClass& fc,
                             std::vector<RawFinding>& out) {
  if (!fc.in_src || fc.iostream_exempt) return;
  constexpr std::array<std::string_view, 3> kStreams{"cout", "cerr", "clog"};
  constexpr std::array<std::string_view, 4> kPrints{"printf", "fprintf", "puts",
                                                    "putchar"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdent) continue;
    const std::string& t = toks[i].text;
    for (const std::string_view s : kStreams) {
      if (t == s && i > 0 && toks[i - 1].text == "::") {
        out.push_back({toks[i].line, "no-iostream-in-lib",
                       "std::" + t +
                           " in library code; log through common/log "
                           "(RAPTEE_LOG_*) so sinks/levels stay controllable"});
      }
    }
    for (const std::string_view p : kPrints) {
      if (t == p && i + 1 < toks.size() && toks[i + 1].text == "(" &&
          (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "->"))) {
        out.push_back({toks[i].line, "no-iostream-in-lib",
                       t + "() in library code; log through common/log "
                           "(RAPTEE_LOG_*) so sinks/levels stay controllable"});
      }
    }
  }
}

[[nodiscard]] bool is_pragma_once(const Token& tok) {
  if (tok.kind != TokenKind::kPreprocessor) return false;
  std::istringstream in(tok.text);
  std::string hash, pragma, once;
  in >> hash >> pragma >> once;
  if (hash == "#pragma") return pragma == "once";  // '#pragma' without space
  return hash == "#" && pragma == "pragma" && once == "once";
}

void rule_header_hygiene(const std::vector<Token>& toks, const FileClass& fc,
                         std::vector<RawFinding>& out) {
  if (!fc.header) return;
  bool seen_pragma_once = false;
  bool seen_code = false;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (is_pragma_once(tok)) {
      if (seen_code) {
        out.push_back({tok.line, "header-hygiene",
                       "#pragma once must precede all code in the header"});
      }
      seen_pragma_once = true;
      continue;
    }
    if (tok.kind != TokenKind::kPreprocessor) seen_code = true;
    if (tok.kind == TokenKind::kIdent && tok.text == "using" && i + 1 < toks.size() &&
        toks[i + 1].kind == TokenKind::kIdent && toks[i + 1].text == "namespace") {
      out.push_back({tok.line, "header-hygiene",
                     "'using namespace' in a header leaks into every includer; "
                     "qualify names instead"});
    }
  }
  if (!seen_pragma_once) {
    out.push_back({1, "header-hygiene", "header is missing #pragma once"});
  }
}

// --------------------------------------------------------------- pipeline

[[nodiscard]] bool includes_atomic(const std::vector<Token>& toks) {
  for (const Token& tok : toks) {
    if (tok.kind == TokenKind::kPreprocessor &&
        tok.text.find("include") != std::string::npos &&
        (tok.text.find("<atomic>") != std::string::npos ||
         tok.text.find("\"atomic\"") != std::string::npos)) {
      return true;
    }
  }
  return false;
}

constexpr std::array<std::string_view, 1> kAtomicTypes{"atomic"};

}  // namespace

std::span<const RuleInfo> rules() { return kRules; }

bool rule_exists(std::string_view name) {
  for (const RuleInfo& rule : kRules) {
    if (rule.name == name) return true;
  }
  return false;
}

bool Config::enabled(std::string_view rule) const {
  if (only.empty()) return true;
  for (const std::string& name : only) {
    if (name == rule) return true;
  }
  return false;
}

std::vector<Finding> lint_source(std::string_view rel_path, std::string_view source,
                                 const Config& config,
                                 std::string_view sibling_header) {
  const FileClass fc = classify(rel_path);
  const LexResult lexed = lex(source);
  const std::vector<Suppression> suppressions = parse_suppressions(lexed.comments);

  std::set<std::string> unordered_names;
  std::set<std::string> atomic_names;
  harvest_declared_names(lexed.tokens, kUnorderedTypes, unordered_names);
  harvest_declared_names(lexed.tokens, kAtomicTypes, atomic_names);
  bool has_atomic_include = includes_atomic(lexed.tokens);
  if (!sibling_header.empty()) {
    const LexResult header = lex(sibling_header);
    harvest_declared_names(header.tokens, kUnorderedTypes, unordered_names);
    harvest_declared_names(header.tokens, kAtomicTypes, atomic_names);
    has_atomic_include = has_atomic_include || includes_atomic(header.tokens);
  }

  std::vector<RawFinding> raw;
  if (config.enabled("no-wall-clock")) rule_no_wall_clock(lexed.tokens, fc, raw);
  if (config.enabled("no-unordered-iteration")) {
    rule_no_unordered_iteration(lexed.tokens, fc, unordered_names, raw);
  }
  if (config.enabled("no-plain-assert")) rule_no_plain_assert(lexed.tokens, raw);
  if (config.enabled("explicit-memory-order")) {
    rule_explicit_memory_order(lexed.tokens, fc, atomic_names, has_atomic_include, raw);
  }
  if (config.enabled("cast-allowlist")) rule_cast_allowlist(lexed.tokens, fc, raw);
  if (config.enabled("no-iostream-in-lib")) rule_no_iostream_in_lib(lexed.tokens, fc, raw);
  if (config.enabled("header-hygiene")) rule_header_hygiene(lexed.tokens, fc, raw);

  std::vector<Finding> out;
  for (const RawFinding& finding : raw) {
    bool suppressed = false;
    for (const Suppression& s : suppressions) {
      if (s.target_line != finding.line || !s.has_reason) continue;
      for (const std::string& name : s.rule_names) {
        if (name == finding.rule) suppressed = true;
      }
    }
    if (!suppressed) {
      out.push_back(Finding{std::string(rel_path), finding.line,
                            std::string(finding.rule), finding.message});
    }
  }

  if (config.enabled("suppression-hygiene")) {
    for (const Suppression& s : suppressions) {
      if (s.rule_names.empty()) {
        out.push_back(Finding{std::string(rel_path), s.comment_line,
                              "suppression-hygiene",
                              "malformed annotation: expected "
                              "'raptee-lint: allow(rule, ...) reason'"});
        continue;
      }
      for (const std::string& name : s.rule_names) {
        if (!rule_exists(name)) {
          out.push_back(Finding{std::string(rel_path), s.comment_line,
                                "suppression-hygiene",
                                "annotation allows unknown rule '" + name + "'"});
        }
      }
      if (!s.has_reason) {
        out.push_back(Finding{std::string(rel_path), s.comment_line,
                              "suppression-hygiene",
                              "suppression is missing its mandatory reason; say "
                              "why the rule does not apply here"});
      }
    }
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

namespace {

[[nodiscard]] std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

[[nodiscard]] bool lintable(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

}  // namespace

std::vector<Finding> lint_tree(const std::string& root, const Config& config,
                               std::size_t* files_scanned) {
  namespace fs = std::filesystem;
  constexpr std::array<std::string_view, 5> kScanDirs{"src", "bench", "examples",
                                                      "tests", "tools"};
  std::vector<std::string> rel_paths;
  for (const std::string_view dir : kScanDirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::is_directory(base)) continue;
    for (const fs::directory_entry& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      rel_paths.push_back(
          fs::path(entry.path()).lexically_relative(root).generic_string());
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  std::vector<Finding> out;
  for (const std::string& rel : rel_paths) {
    const std::string source = read_file(fs::path(root) / rel);
    std::string sibling;
    if (rel.ends_with(".cpp")) {
      const fs::path header = (fs::path(root) / rel).replace_extension(".hpp");
      if (fs::is_regular_file(header)) sibling = read_file(header);
    }
    std::vector<Finding> findings = lint_source(rel, source, config, sibling);
    out.insert(out.end(), std::make_move_iterator(findings.begin()),
               std::make_move_iterator(findings.end()));
  }
  if (files_scanned != nullptr) *files_scanned = rel_paths.size();
  // Per-file results are already (line, rule)-sorted and files were visited
  // in sorted order, so `out` is globally ordered by (file, line, rule).
  return out;
}

std::string report_json(const std::vector<Finding>& findings,
                        std::size_t files_scanned, const Config& config) {
  metrics::JsonArray rule_names;
  for (const RuleInfo& rule : kRules) {
    if (config.enabled(rule.name)) rule_names.item(rule.name);
  }
  metrics::JsonArray items;
  for (const Finding& finding : findings) {
    metrics::JsonObject item;
    item.field("file", finding.file)
        .field("line", static_cast<std::int64_t>(finding.line))
        .field("rule", finding.rule)
        .field("message", finding.message);
    items.item_raw(item.str());
  }
  metrics::JsonObject doc;
  doc.field("schema", "raptee.lint/1")
      .field("files_scanned", static_cast<std::uint64_t>(files_scanned))
      .field_raw("rules", rule_names.str())
      .field("finding_count", static_cast<std::uint64_t>(findings.size()))
      .field_raw("findings", items.str());
  return doc.str() + "\n";
}

}  // namespace raptee::lint
