// raptee_load — load generator for a running rapteed.
//
// Opens `connections` persistent client connections to the daemon and
// drives closed-loop SampleRequests for `duration_ms`, then prints the
// latency/throughput report (see src/net/load_gen.hpp).
//
//   ./build/tools/raptee_load <port> [connections] [duration_ms] [samples]
//
// Exit status: 0 when at least one request completed, 1 when the daemon
// was reachable but served nothing, 2 on bad usage (strict argv parsing —
// garbage numbers are an error, not a default).
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "net/load_gen.hpp"
#include "net/socket.hpp"
#include "scenario/knobs.hpp"

namespace {

[[noreturn]] void usage_exit(const char* error) {
  raptee::scenario::cli_usage(
      "raptee_load", "<port> [connections] [duration_ms] [samples]",
      {{"port", "rapteed port on 127.0.0.1, 1..65535 (required)"},
       {"connections", "concurrent clients, 1..4096 (default 8)"},
       {"duration_ms", "load duration, 1..600000 (default 1000)"},
       {"samples", "samples per request, 1..256 (default 8)"}},
      error);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace raptee;

  net::LoadConfig config;
  try {
    if (argc < 2) usage_exit("missing port");
    config.port =
        static_cast<std::uint16_t>(scenario::parse_u64("port", argv[1], 1, 65535));
    if (argc > 2) {
      config.connections = static_cast<std::size_t>(
          scenario::parse_u64("connections", argv[2], 1, 4096));
    }
    if (argc > 3) {
      config.duration = std::chrono::milliseconds(
          scenario::parse_u64("duration_ms", argv[3], 1, 600000));
    }
    if (argc > 4) {
      config.samples_per_request = static_cast<std::uint16_t>(
          scenario::parse_u64("samples", argv[4], 1, 256));
    }
    if (argc > 5) usage_exit("too many arguments");
  } catch (const std::invalid_argument& error) {
    usage_exit(error.what());
  }

  net::LoadReport report;
  try {
    report = net::run_load(config);
  } catch (const net::NetError& error) {
    std::fprintf(stderr, "raptee_load: %s\n", error.what());
    return 1;
  }

  std::printf(
      "%llu requests (%llu errors, %llu samples) in %.1f ms over %zu "
      "connections\np50 %.1f us  p99 %.1f us  max %.1f us  %.0f req/s\n",
      static_cast<unsigned long long>(report.requests),
      static_cast<unsigned long long>(report.errors),
      static_cast<unsigned long long>(report.samples_received),
      report.duration_ms, config.connections, report.p50_us, report.p99_us,
      report.max_us, report.rps);
  return report.requests > 0 ? 0 : 1;
}
