// Tamper sweep: why the paper's §III-B link encryption matters on an open
// network. An on-path adversary flips one bit per tampered leg at rates
// 0 .. RAPTEE_BENCH_TAMPER_PCT percent, against the same scenario with and
// without encrypt_links:
//
//   * encrypted  — encrypt-then-MAC rejects every flip: corruption shows up
//     only as dropped legs (graceful throughput loss, no bad data);
//   * plaintext  — only structural damage fails the typed-leg validator;
//     flips landing in payload fields decode cleanly and reach the
//     protocol as silent corruption (detected < tampered).
//
// Emits bench_out/tamper_sweep.{csv,json} (raptee.bench/2) and exits
// non-zero if the detection accounting ever breaks.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace raptee;
  const auto knobs = scenario::Knobs::from_env();
  bench::print_header("tamper_sweep", knobs);
  std::cout << "on-path bit flips vs link encryption (f=10%, t=20% of correct)\n\n";

  std::vector<std::size_t> rate_pcts{0, 1, 5, knobs.tamper_pct};
  std::sort(rate_pcts.begin(), rate_pcts.end());
  rate_pcts.erase(std::unique(rate_pcts.begin(), rate_pcts.end()), rate_pcts.end());

  metrics::TablePrinter table({"tamper %", "links", "tampered", "detected",
                               "pulls ok", "pollution"});
  metrics::CsvWriter csv({"tamper_pct", "encrypted", "legs_tampered",
                          "legs_corrupted", "legs_dropped", "pulls_completed",
                          "steady_pollution"});
  scenario::results::BenchReport report("tamper_sweep", knobs);

  bool coherent = true;
  for (const std::size_t pct : rate_pcts) {
    for (const bool encrypted : {false, true}) {
      const scenario::ScenarioSpec spec =
          knobs.base_spec()
              .adversary(0.1)
              .trusted_share(0.2)
              .wire_roundtrip(true)
              .encrypt_links(encrypted)
              .tamper_rate(static_cast<double>(pct) / 100.0)
              .label(std::string("tamper_sweep/") + (encrypted ? "aead" : "plain"));
      const metrics::ExperimentResult result = spec.run();

      table.add_row({std::to_string(pct), encrypted ? "aead" : "plain",
                     std::to_string(result.legs_tampered),
                     std::to_string(result.legs_corrupted),
                     std::to_string(result.pulls_completed),
                     metrics::fmt(result.steady_pollution, 4)});
      csv.add_row({std::to_string(pct), encrypted ? "1" : "0",
                   std::to_string(result.legs_tampered),
                   std::to_string(result.legs_corrupted),
                   std::to_string(result.legs_dropped),
                   std::to_string(result.pulls_completed),
                   metrics::fmt(result.steady_pollution, 6)});
      report.add_row(metrics::JsonObject()
                         .field("tamper_pct", pct)
                         .field("encrypted", encrypted)
                         .field("legs_tampered", result.legs_tampered)
                         .field("legs_corrupted", result.legs_corrupted)
                         .field("legs_dropped", result.legs_dropped)
                         .field("pulls_completed", result.pulls_completed)
                         .field("swaps_completed", result.swaps_completed)
                         .field("steady_pollution", result.steady_pollution));

      // Accounting gates: AEAD detects everything; plaintext never detects
      // more than was tampered; a zero rate tampers nothing.
      if (pct == 0 && result.legs_tampered != 0) coherent = false;
      if (encrypted && result.legs_corrupted != result.legs_tampered)
        coherent = false;
      if (!encrypted && result.legs_corrupted > result.legs_tampered)
        coherent = false;
    }
  }

  std::cout << table.render() << '\n';
  std::cout << "aead: detected == tampered (every flip rejected); plain: the "
               "gap is silent corruption reaching the protocol\n";
  bench::write_csv("tamper_sweep.csv", csv);
  report.write();

  if (!coherent) {
    std::cerr << "FAIL: tamper detection accounting incoherent\n";
    return 1;
  }
  return 0;
}
