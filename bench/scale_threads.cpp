// Thread-scaling benchmark for the exec subsystem: runs the same
// quick-mode (f × t) grid at increasing Runner widths, verifies every
// parallel run is BIT-IDENTICAL to the 1-thread run (the exec determinism
// contract, checked on the serialized grid document), and records
// wall-clock + speedup per width in bench_out/scale_threads.json.
//
// Thread widths: 1, 2, 4, and (when larger) hardware concurrency.
// RAPTEE_BENCH_THREADS, when set, replaces the >1 widths with that single
// value. With RAPTEE_BENCH_REQUIRE_SPEEDUP=1 the bench exits non-zero
// unless the 4-thread run (or the RAPTEE_BENCH_THREADS width, when
// overridden) achieves >= 2x over 1 thread — meant for multi-core hosts
// (skipped, with a note, when the machine has fewer hardware threads than
// the gated width or fewer than 4 cores).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "exec/thread_pool.hpp"

int main() {
  using namespace raptee;
  const auto knobs = scenario::Knobs::from_env();
  bench::print_header("scale_threads", knobs);
  std::cout << "exec::ThreadPool scaling on the quick (f x t) grid; parallel "
               "output is asserted bit-identical to 1 thread\n\n";

  scenario::Grid grid(knobs.base_spec());
  grid.axis_adversary_pct(knobs.f_grid()).axis_trusted_pct(knobs.t_grid());
  const std::size_t runs = grid.size() * knobs.reps;

  std::vector<std::size_t> widths{1};
  if (knobs.threads != 0) {
    if (knobs.threads > 1) widths.push_back(knobs.threads);
  } else {
    widths.push_back(2);
    widths.push_back(4);
    const std::size_t hw = exec::hardware_threads();
    if (hw > 4) widths.push_back(hw);
  }

  metrics::TablePrinter table({"threads", "wall s", "runs/s", "speedup", "identical"});
  metrics::CsvWriter csv({"threads", "wall_seconds", "runs_per_second", "speedup",
                          "identical_to_serial"});
  scenario::results::BenchReport report("scale_threads", knobs);

  std::string serial_document;
  double serial_seconds = 0.0;
  // The speedup gate judges the documented 4-thread run; when
  // RAPTEE_BENCH_THREADS overrides the sweep it judges that width instead
  // (provided the hardware actually has that many threads).
  std::size_t gate_width = 0;
  double gate_speedup = 0.0;
  bool all_identical = true;

  for (const std::size_t width : widths) {
    const bench::WallTimer timer;
    const auto sweep = scenario::Runner(width).run_grid(grid, knobs.reps);
    const double seconds = timer.seconds();
    const std::string document = scenario::results::grid_document(sweep, knobs.reps);

    bool identical = true;
    double speedup = 1.0;
    if (width == 1) {
      serial_document = document;
      serial_seconds = seconds;
    } else {
      identical = document == serial_document;
      all_identical = all_identical && identical;
      if (seconds > 0.0) speedup = serial_seconds / seconds;
      const bool is_gate_width = knobs.threads == 0 ? width == 4 : width == knobs.threads;
      if (is_gate_width && width <= exec::hardware_threads()) {
        gate_width = width;
        gate_speedup = speedup;
      }
    }

    table.add_row({std::to_string(width), metrics::fmt(seconds, 2),
                   metrics::fmt(seconds > 0.0 ? runs / seconds : 0.0, 2),
                   metrics::fmt(speedup, 2), identical ? "yes" : "NO"});
    csv.add_row({std::to_string(width), metrics::fmt(seconds, 4),
                 metrics::fmt(seconds > 0.0 ? runs / seconds : 0.0, 3),
                 metrics::fmt(speedup, 3), identical ? "1" : "0"});
    report.add_row(metrics::JsonObject()
                       .field("threads", width)
                       .field("wall_seconds", seconds)
                       .field("runs", runs)
                       .field("runs_per_second", seconds > 0.0 ? runs / seconds : 0.0)
                       .field("speedup_vs_serial", speedup)
                       .field("identical_to_serial", identical));
  }

  std::cout << table.render() << '\n';
  std::cout << "hardware threads: " << exec::hardware_threads() << "\n\n";
  report.set_timing(serial_seconds, 1);
  bench::write_csv("scale_threads.csv", csv);
  report.write();

  if (!all_identical) {
    std::cerr << "FAIL: parallel grid output diverged from the 1-thread run\n";
    return 1;
  }
  if (const char* require = std::getenv("RAPTEE_BENCH_REQUIRE_SPEEDUP");
      require && std::atoi(require) != 0) {
    if (exec::hardware_threads() < 4 || gate_width == 0) {
      std::cout << "speedup gate skipped: needs >= 4 hardware threads and a "
                   "parallel width within them\n";
    } else if (gate_speedup < 2.0) {
      std::cerr << "FAIL: " << gate_width << "-thread speedup "
                << metrics::fmt(gate_speedup, 2) << "x < 2x\n";
      return 1;
    } else {
      std::cout << "speedup gate passed: " << metrics::fmt(gate_speedup, 2)
                << "x at " << gate_width << " threads\n";
    }
  }
  return 0;
}
