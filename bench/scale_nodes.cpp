// Node-count scaling benchmark for the engine core: how far does one
// process get on the structure-of-arrays node state + arena scratch path?
//
// Two parts, both written into bench_out/scale_nodes.json (raptee.bench):
//
//  1. Width identity gate — the full protocol stack (adversary + trusted
//     population + eviction) at the knob population, run at engine widths
//     {1, 2, 4, hw}. Lossless, so EVERY width must produce byte-identical
//     result JSON (scenario::results::to_json) — the sharded-round
//     determinism contract, checked end to end. Divergence exits non-zero.
//
//  2. Node-count sweep — half-decade populations 10k -> 100k (quick) or
//     10k -> 1M (RAPTEE_BENCH_FULL=1), honest-only BrahmsNode populations
//     driven through sim::Engine directly. The scenario front door would
//     drag in DiscoveryTracker, whose n x n knowledge bitsets are O(n^2)
//     bytes (125 GB at 1M nodes) — the engine itself is O(n * l1), and
//     that is the thing this bench characterizes. Per point it reports
//     build time, allocator peak bytes/node, p50/p90 round wall time
//     (sorted once, cut with percentile_of_sorted) and rounds/second.
//
// Memory is measured by replacing global operator new/delete with a
// live-byte counting allocator (each block carries a 16-byte size header),
// so bytes/node is the true allocator footprint, not an RSS guess.
//
// Extra knobs on top of the usual RAPTEE_BENCH_* set (see README.md):
//   RAPTEE_BENCH_SCALE_MAX_N        cap the sweep's largest population
//   RAPTEE_BENCH_MAX_NODE_BYTES     gate: peak bytes/node at the largest
//                                   point must not exceed this (exit 1)
//   RAPTEE_BENCH_MIN_ROUNDS_PER_SEC gate: throughput floor at the largest
//                                   point (exit 1)
#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "core/node_factory.hpp"
#include "exec/thread_pool.hpp"
#include "sim/engine.hpp"

namespace {

// --- live-byte counting allocator -----------------------------------------
// Every allocation is over-sized by a 16-byte header recording the charged
// total and the offset back to the underlying malloc/aligned_alloc block;
// one shared free path reads it. g_live tracks current allocator bytes,
// g_peak the high-water mark since the caller last rebased it.

std::atomic<std::size_t> g_live{0};
std::atomic<std::size_t> g_peak{0};

constexpr std::size_t kMetaSize = 16;

struct BlockMeta {
  std::size_t total;  // bytes charged to g_live for this block
  std::size_t pad;    // user pointer minus pad == the block handed to free
};
static_assert(sizeof(BlockMeta) == kMetaSize, "header must stay 16 bytes");

void note_alloc(std::size_t total) noexcept {
  const std::size_t live = g_live.fetch_add(total, std::memory_order_relaxed) + total;
  std::size_t peak = g_peak.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
}

void* alloc_tracked(std::size_t size, std::size_t align) noexcept {
  const std::size_t pad = align > kMetaSize ? align : kMetaSize;
  std::size_t total = size + pad;
  void* base = nullptr;
  if (align > alignof(std::max_align_t)) {
    total = (total + align - 1) / align * align;  // aligned_alloc size contract
    base = std::aligned_alloc(align, total);
  } else {
    base = std::malloc(total);
  }
  if (base == nullptr) return nullptr;
  auto* user = static_cast<std::byte*>(base) + pad;
  // raptee-lint: allow(cast-allowlist) counting allocator writes its size header into the raw block it just carved
  auto* meta = reinterpret_cast<BlockMeta*>(user - kMetaSize);
  meta->total = total;
  meta->pad = pad;
  note_alloc(total);
  return user;
}

void free_tracked(void* ptr) noexcept {
  if (ptr == nullptr) return;
  auto* user = static_cast<std::byte*>(ptr);
  // raptee-lint: allow(cast-allowlist) counting allocator reads back the size header it wrote in alloc_tracked
  const BlockMeta meta = *reinterpret_cast<const BlockMeta*>(user - kMetaSize);
  g_live.fetch_sub(meta.total, std::memory_order_relaxed);
  std::free(user - meta.pad);
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = alloc_tracked(size, alignof(std::max_align_t))) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = alloc_tracked(size, alignof(std::max_align_t))) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = alloc_tracked(size, static_cast<std::size_t>(align))) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = alloc_tracked(size, static_cast<std::size_t>(align))) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return alloc_tracked(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return alloc_tracked(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return alloc_tracked(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return alloc_tracked(size, static_cast<std::size_t>(align));
}
void operator delete(void* ptr) noexcept { free_tracked(ptr); }
void operator delete[](void* ptr) noexcept { free_tracked(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { free_tracked(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { free_tracked(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { free_tracked(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { free_tracked(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept { free_tracked(ptr); }
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  free_tracked(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept { free_tracked(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept { free_tracked(ptr); }

namespace {

using namespace raptee;

struct ScalePoint {
  std::size_t n = 0;
  double build_seconds = 0.0;
  std::size_t peak_bytes = 0;
  double bytes_per_node = 0.0;
  double round_ms_p50 = 0.0;
  double round_ms_p90 = 0.0;
  double rounds_per_second = 0.0;
  std::uint64_t pushes_delivered = 0;
  /// Mean wall ms/round per engine phase, indexed by sim::Engine::Phase.
  std::array<double, sim::Engine::kPhaseCount> phase_ms_mean{};
};

/// One sweep point: an honest-only BrahmsNode population of size n driven
/// through the engine for `rounds` rounds. The previous point's engine is
/// gone when this runs, so (peak - live_before) is this population's own
/// allocator high-water mark.
ScalePoint run_scale_point(std::size_t n, const scenario::Knobs& knobs, Round rounds) {
  ScalePoint point;
  point.n = n;

  const std::size_t live_before = g_live.load(std::memory_order_relaxed);
  g_peak.store(live_before, std::memory_order_relaxed);

  sim::EngineConfig engine_config;
  engine_config.seed = knobs.seed;
  engine_config.threads = knobs.threads;  // Knobs default 0 = hardware width
  sim::Engine engine(engine_config);

  brahms::BrahmsConfig node_config;
  node_config.params.l1 = knobs.l1;
  node_config.params.l2 = knobs.l1;

  core::NodeFactory factory(knobs.seed, brahms::AuthMode::kFingerprint);
  const bench::WallTimer build_timer;
  for (std::uint32_t i = 0; i < n; ++i) {
    engine.add_node(
        factory.make_honest(NodeId{i}, node_config, engine.aliveness_probe()),
        NodeKind::kHonest);
  }
  engine.bootstrap_uniform(knobs.l1);
  point.build_seconds = build_timer.seconds();

  std::vector<double> round_seconds;
  round_seconds.reserve(rounds);
  std::array<std::uint64_t, sim::Engine::kPhaseCount> phase_us{};
  for (Round r = 0; r < rounds; ++r) {
    const bench::WallTimer round_timer;
    engine.step();
    round_seconds.push_back(round_timer.seconds());
    const auto& last = engine.last_phase_us();
    for (std::size_t p = 0; p < phase_us.size(); ++p) phase_us[p] += last[p];
  }
  for (std::size_t p = 0; p < phase_us.size(); ++p) {
    point.phase_ms_mean[p] =
        static_cast<double>(phase_us[p]) / 1000.0 / static_cast<double>(rounds);
  }

  const std::size_t peak = g_peak.load(std::memory_order_relaxed);
  point.peak_bytes = peak - live_before;
  point.bytes_per_node = static_cast<double>(point.peak_bytes) / static_cast<double>(n);

  // Sort the series once; every percentile cut is then O(1)
  // (percentile_of_sorted), instead of a copy + sort per cut.
  std::sort(round_seconds.begin(), round_seconds.end());
  point.round_ms_p50 = percentile_of_sorted(round_seconds, 50) * 1e3;
  point.round_ms_p90 = percentile_of_sorted(round_seconds, 90) * 1e3;
  double total_seconds = 0.0;
  for (const double s : round_seconds) total_seconds += s;
  point.rounds_per_second =
      total_seconds > 0.0 ? static_cast<double>(rounds) / total_seconds : 0.0;
  point.pushes_delivered = engine.counters().pushes_delivered;
  return point;
}

[[nodiscard]] std::string fmt_mib(std::size_t bytes) {
  return metrics::fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
}

}  // namespace

int main() {
  const auto knobs = scenario::Knobs::from_env();
  bench::print_header("scale_nodes", knobs);
  std::cout << "engine-core scaling: width identity gate at n=" << knobs.n
            << ", then honest-population sweep (SoA state + arena scratch)\n\n";

  const std::size_t hw = exec::hardware_threads();
  const std::size_t resolved_threads = knobs.threads == 0 ? hw : knobs.threads;
  scenario::results::BenchReport report("scale_nodes", knobs);
  const bench::WallTimer bench_timer;

  // --- part 1: width identity gate ---------------------------------------
  // Full stack (Byzantine adversary, trusted nodes, fixed eviction),
  // loss 0: every width, the sequential baseline included, must serialize
  // to the same result bytes. results::to_json(result) carries no config,
  // so the width itself cannot leak into the compared document.
  const Round gate_rounds = std::min<Round>(knobs.rounds, 16);
  scenario::ScenarioSpec gate_spec = knobs.base_spec();
  gate_spec.adversary(0.2).trusted_share(0.3).eviction_pct(40).rounds(gate_rounds);

  std::vector<std::size_t> widths{1, 2, 4};
  if (hw > 4) widths.push_back(hw);

  metrics::TablePrinter gate_table({"threads", "wall s", "identical"});
  bool all_identical = true;
  std::string serial_document;
  for (const std::size_t width : widths) {
    const bench::WallTimer timer;
    const auto result = scenario::ScenarioSpec(gate_spec).threads(width).run();
    const double seconds = timer.seconds();
    const std::string document = scenario::results::to_json(result);
    bool identical = true;
    if (width == 1) {
      serial_document = document;
    } else {
      identical = document == serial_document;
      all_identical = all_identical && identical;
    }
    gate_table.add_row({std::to_string(width), metrics::fmt(seconds, 2),
                        identical ? "yes" : "NO"});
    report.add_row(metrics::JsonObject()
                       .field("kind", "identity")
                       .field("n", knobs.n)
                       .field("threads", width)
                       .field("wall_seconds", seconds)
                       .field("identical_to_serial", identical));
  }
  std::cout << gate_table.render() << '\n';

  // --- part 2: node-count sweep ------------------------------------------
  std::size_t max_n = knobs.full ? 1'000'000 : 100'000;
  if (const char* value = std::getenv("RAPTEE_BENCH_SCALE_MAX_N")) {
    max_n = scenario::parse_u64("RAPTEE_BENCH_SCALE_MAX_N", value, 1'000, 10'000'000);
  }
  std::vector<std::size_t> populations;
  for (const std::size_t n : {std::size_t{10'000}, std::size_t{31'623},
                              std::size_t{100'000}, std::size_t{316'228},
                              std::size_t{1'000'000}}) {
    if (n <= max_n) populations.push_back(n);
  }
  if (populations.empty()) populations.push_back(max_n);

  const Round sweep_rounds = std::min<Round>(knobs.rounds, 6);
  std::cout << "sweep: view " << knobs.l1 << ", " << sweep_rounds
            << " rounds per point, engine width " << resolved_threads << "\n\n";

  metrics::TablePrinter table({"n", "build s", "peak MiB", "B/node", "round ms p50",
                               "round ms p90", "rounds/s"});
  metrics::TablePrinter phase_table({"n", "begin ms", "push gen ms", "deliver ms",
                                     "pulls ms", "end ms"});
  metrics::CsvWriter csv({"n", "build_seconds", "peak_bytes", "bytes_per_node",
                          "round_ms_p50", "round_ms_p90", "rounds_per_second",
                          "begin_round_ms", "push_gen_ms", "push_deliver_ms",
                          "pulls_ms", "end_round_ms"});
  ScalePoint largest;
  bool pushes_flowed = true;
  for (const std::size_t n : populations) {
    const ScalePoint point = run_scale_point(n, knobs, sweep_rounds);
    largest = point;
    pushes_flowed = pushes_flowed && point.pushes_delivered > 0;
    const auto& ph = point.phase_ms_mean;
    table.add_row({std::to_string(point.n), metrics::fmt(point.build_seconds, 2),
                   fmt_mib(point.peak_bytes), metrics::fmt(point.bytes_per_node, 0),
                   metrics::fmt(point.round_ms_p50, 2),
                   metrics::fmt(point.round_ms_p90, 2),
                   metrics::fmt(point.rounds_per_second, 2)});
    phase_table.add_row({std::to_string(point.n),
                         metrics::fmt(ph[sim::Engine::kPhaseBeginRound], 2),
                         metrics::fmt(ph[sim::Engine::kPhasePushGen], 2),
                         metrics::fmt(ph[sim::Engine::kPhasePushDeliver], 2),
                         metrics::fmt(ph[sim::Engine::kPhasePulls], 2),
                         metrics::fmt(ph[sim::Engine::kPhaseEndRound], 2)});
    csv.add_row({std::to_string(point.n), metrics::fmt(point.build_seconds, 4),
                 std::to_string(point.peak_bytes),
                 metrics::fmt(point.bytes_per_node, 1),
                 metrics::fmt(point.round_ms_p50, 4), metrics::fmt(point.round_ms_p90, 4),
                 metrics::fmt(point.rounds_per_second, 3),
                 metrics::fmt(ph[sim::Engine::kPhaseBeginRound], 4),
                 metrics::fmt(ph[sim::Engine::kPhasePushGen], 4),
                 metrics::fmt(ph[sim::Engine::kPhasePushDeliver], 4),
                 metrics::fmt(ph[sim::Engine::kPhasePulls], 4),
                 metrics::fmt(ph[sim::Engine::kPhaseEndRound], 4)});
    report.add_row(metrics::JsonObject()
                       .field("kind", "scale")
                       .field("n", point.n)
                       .field("build_seconds", point.build_seconds)
                       .field("peak_bytes", point.peak_bytes)
                       .field("bytes_per_node", point.bytes_per_node)
                       .field("round_ms_p50", point.round_ms_p50)
                       .field("round_ms_p90", point.round_ms_p90)
                       .field("rounds_per_second", point.rounds_per_second)
                       .field("begin_round_ms", ph[sim::Engine::kPhaseBeginRound])
                       .field("push_gen_ms", ph[sim::Engine::kPhasePushGen])
                       .field("push_deliver_ms", ph[sim::Engine::kPhasePushDeliver])
                       .field("pulls_ms", ph[sim::Engine::kPhasePulls])
                       .field("end_round_ms", ph[sim::Engine::kPhaseEndRound]));
  }
  std::cout << table.render() << '\n';
  std::cout << "per-phase mean wall ms/round:\n" << phase_table.render() << '\n';
  std::cout << "hardware threads: " << hw << "\n\n";

  report.set_timing(bench_timer.seconds(), resolved_threads);
  bench::write_csv("scale_nodes.csv", csv);
  report.write();

  if (!all_identical) {
    std::cerr << "FAIL: sharded result diverged from the 1-thread run\n";
    return 1;
  }
  if (!pushes_flowed) {
    std::cerr << "FAIL: a sweep point delivered zero pushes\n";
    return 1;
  }
  if (const char* value = std::getenv("RAPTEE_BENCH_MAX_NODE_BYTES")) {
    const std::uint64_t cap = scenario::parse_u64(
        "RAPTEE_BENCH_MAX_NODE_BYTES", value, 1, std::uint64_t{1} << 40);
    if (largest.bytes_per_node > static_cast<double>(cap)) {
      std::cerr << "FAIL: " << metrics::fmt(largest.bytes_per_node, 0)
                << " bytes/node at n=" << largest.n << " exceeds the cap of " << cap
                << "\n";
      return 1;
    }
    std::cout << "bytes/node gate passed: " << metrics::fmt(largest.bytes_per_node, 0)
              << " <= " << cap << " at n=" << largest.n << "\n";
  }
  if (const char* value = std::getenv("RAPTEE_BENCH_MIN_ROUNDS_PER_SEC")) {
    const double floor = scenario::parse_double("RAPTEE_BENCH_MIN_ROUNDS_PER_SEC", value,
                                                0.0, 1e9);
    if (largest.rounds_per_second < floor) {
      std::cerr << "FAIL: " << metrics::fmt(largest.rounds_per_second, 2)
                << " rounds/s at n=" << largest.n << " is below the floor of "
                << metrics::fmt(floor, 2) << "\n";
      return 1;
    }
    std::cout << "throughput gate passed: " << metrics::fmt(largest.rounds_per_second, 2)
              << " rounds/s >= " << metrics::fmt(floor, 2) << " at n=" << largest.n
              << "\n";
  }
  return 0;
}
