// Figure 12 — trusted-node identification attack under the adaptive
// eviction rate, one curve per Byzantine fraction.
#include <iostream>

#include "ident_common.hpp"

int main() {
  using namespace raptee;
  const auto knobs = scenario::Knobs::from_env();
  bench::print_header("fig12_ident_adaptive", knobs);
  std::cout << "Precision, recall and F1-score of trusted-node identification "
               "under adaptive eviction rate (paper Fig. 12)\n\n";

  const auto ts = knobs.t_grid();
  const std::vector<int> fs{10, 20, 30};

  scenario::Grid grid(
      knobs.base_spec().eviction(core::EvictionSpec::adaptive()).identification());
  grid.axis_adversary_pct(fs).axis_trusted_pct(ts);
  const bench::WallTimer timer;
  const auto sweep = scenario::Runner(knobs.threads).run_grid(grid, knobs.reps);

  std::vector<std::string> headers{"f%\\t%"};
  for (const int t : ts) headers.push_back("t=" + std::to_string(t) + "%");
  metrics::TablePrinter recall(headers), precision(headers), f1(headers);
  metrics::CsvWriter csv({"f_pct", "t_pct", "recall", "precision", "f1"});
  scenario::results::BenchReport report("fig12_ident_adaptive", knobs);

  for (std::size_t fi = 0; fi < fs.size(); ++fi) {
    std::vector<std::string> row_r{"f=" + std::to_string(fs[fi])};
    std::vector<std::string> row_p{"f=" + std::to_string(fs[fi])};
    std::vector<std::string> row_f{"f=" + std::to_string(fs[fi])};
    for (std::size_t ti = 0; ti < ts.size(); ++ti) {
      const auto& cell = sweep.at({fi, ti});
      row_r.push_back(metrics::fmt(cell.ident_best_recall.mean(), 2));
      row_p.push_back(metrics::fmt(cell.ident_best_precision.mean(), 2));
      row_f.push_back(metrics::fmt(cell.ident_best_f1.mean(), 2));
      csv.add_row({std::to_string(fs[fi]), std::to_string(ts[ti]),
                   metrics::fmt(cell.ident_best_recall.mean(), 4),
                   metrics::fmt(cell.ident_best_precision.mean(), 4),
                   metrics::fmt(cell.ident_best_f1.mean(), 4)});
      report.add_row(metrics::JsonObject()
                         .field("f_pct", fs[fi])
                         .field("t_pct", ts[ti])
                         .field("recall", cell.ident_best_recall.mean())
                         .field("precision", cell.ident_best_precision.mean())
                         .field("f1", cell.ident_best_f1.mean())
                         .field_raw("result", scenario::results::to_json(cell)));
    }
    recall.add_row(row_r);
    precision.add_row(row_p);
    f1.add_row(row_f);
  }

  std::cout << "(a) Identification recall\n" << recall.render() << '\n';
  std::cout << "(b) Identification precision\n" << precision.render() << '\n';
  std::cout << "(c) Identification F1-score\n" << f1.render() << '\n';
  bench::report_timing(report, timer, knobs, grid.size() * knobs.reps);
  bench::write_csv("fig12_ident_adaptive.csv", csv);
  report.write();
  return 0;
}
