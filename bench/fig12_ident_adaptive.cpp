// Figure 12 — trusted-node identification attack under the adaptive
// eviction rate, one curve per Byzantine fraction.
#include <iostream>

#include "ident_common.hpp"

int main() {
  using namespace raptee;
  const auto knobs = bench::Knobs::from_env();
  bench::print_header("fig12_ident_adaptive", knobs);
  std::cout << "Precision, recall and F1-score of trusted-node identification "
               "under adaptive eviction rate (paper Fig. 12)\n\n";

  const auto ts = bench::t_grid(knobs);
  const std::vector<int> fs{10, 20, 30};

  std::vector<metrics::ExperimentConfig> configs;
  for (int f : fs) {
    for (int t : ts) {
      metrics::ExperimentConfig config = bench::base_config(knobs);
      config.byzantine_fraction = f / 100.0;
      config.trusted_fraction = t / 100.0;
      config.eviction = core::EvictionSpec::adaptive();
      config.run_identification = true;
      configs.push_back(config);
    }
  }
  const auto cells = bench::run_cells(std::move(configs), knobs.reps, knobs.threads);

  std::vector<std::string> headers{"f%\\t%"};
  for (int t : ts) headers.push_back("t=" + std::to_string(t) + "%");
  metrics::TablePrinter recall(headers), precision(headers), f1(headers);
  metrics::CsvWriter csv({"f_pct", "t_pct", "recall", "precision", "f1"});

  for (std::size_t fi = 0; fi < fs.size(); ++fi) {
    std::vector<std::string> row_r{"f=" + std::to_string(fs[fi])};
    std::vector<std::string> row_p{"f=" + std::to_string(fs[fi])};
    std::vector<std::string> row_f{"f=" + std::to_string(fs[fi])};
    for (std::size_t ti = 0; ti < ts.size(); ++ti) {
      const auto& cell = cells[fi * ts.size() + ti];
      row_r.push_back(metrics::fmt(cell.ident_best_recall.mean(), 2));
      row_p.push_back(metrics::fmt(cell.ident_best_precision.mean(), 2));
      row_f.push_back(metrics::fmt(cell.ident_best_f1.mean(), 2));
      csv.add_row({std::to_string(fs[fi]), std::to_string(ts[ti]),
                   metrics::fmt(cell.ident_best_recall.mean(), 4),
                   metrics::fmt(cell.ident_best_precision.mean(), 4),
                   metrics::fmt(cell.ident_best_f1.mean(), 4)});
    }
    recall.add_row(row_r);
    precision.add_row(row_p);
    f1.add_row(row_f);
  }

  std::cout << "(a) Identification recall\n" << recall.render() << '\n';
  std::cout << "(b) Identification precision\n" << precision.render() << '\n';
  std::cout << "(c) Identification F1-score\n" << f1.render() << '\n';
  bench::write_csv("fig12_ident_adaptive.csv", csv);
  return 0;
}
