// Figure 3 — Brahms under the balanced Byzantine attack: resilience
// (percentage of Byzantine IDs in correct views), time to discovery and
// time to view stability as functions of the Byzantine fraction f.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace raptee;
  const auto knobs = bench::Knobs::from_env();
  bench::print_header("fig3_brahms_baseline", knobs);
  std::cout << "Brahms resilience, time to discovery and to stability under "
               "Byzantine faults (paper Fig. 3)\n\n";

  metrics::TablePrinter table(
      {"f%", "byz-in-views %", "discovery rounds", "stability rounds"});
  metrics::CsvWriter csv({"f_pct", "pollution_pct", "pollution_sd_pct",
                          "discovery_rounds", "stability_rounds"});

  for (int f : bench::f_grid(knobs)) {
    metrics::ExperimentConfig config = bench::base_config(knobs);
    config.byzantine_fraction = f / 100.0;
    const auto result = metrics::run_repeated(config, knobs.reps, knobs.threads);

    const std::string discovery =
        result.discovery_reached ? metrics::fmt(result.discovery.mean(), 0) : "-";
    const std::string stability =
        result.stability_reached ? metrics::fmt(result.stability.mean(), 0) : "-";
    table.add_row({std::to_string(f), metrics::fmt(100.0 * result.pollution.mean()),
                   discovery, stability});
    csv.add_row({std::to_string(f), metrics::fmt(100.0 * result.pollution.mean(), 3),
                 metrics::fmt(100.0 * result.pollution.sample_stddev(), 3), discovery,
                 stability});
  }

  std::cout << table.render() << '\n';
  bench::write_csv("fig3_brahms_baseline.csv", csv);
  return 0;
}
