// Figure 3 — Brahms under the balanced Byzantine attack: resilience
// (percentage of Byzantine IDs in correct views), time to discovery and
// time to view stability as functions of the Byzantine fraction f.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace raptee;
  const auto knobs = scenario::Knobs::from_env();
  bench::print_header("fig3_brahms_baseline", knobs);
  std::cout << "Brahms resilience, time to discovery and to stability under "
               "Byzantine faults (paper Fig. 3)\n\n";

  const auto fs = knobs.f_grid();
  scenario::Grid grid(knobs.base_spec());
  grid.axis_adversary_pct(fs);
  const bench::WallTimer timer;
  const auto sweep = scenario::Runner(knobs.threads).run_grid(grid, knobs.reps);

  metrics::TablePrinter table(
      {"f%", "byz-in-views %", "discovery rounds", "stability rounds"});
  metrics::CsvWriter csv({"f_pct", "pollution_pct", "pollution_sd_pct",
                          "discovery_rounds", "stability_rounds"});
  scenario::results::BenchReport report("fig3_brahms_baseline", knobs);

  for (std::size_t fi = 0; fi < fs.size(); ++fi) {
    const int f = fs[fi];
    const auto& result = sweep.at({fi});

    const std::string discovery =
        result.discovery_reached ? metrics::fmt(result.discovery.mean(), 0) : "-";
    const std::string stability =
        result.stability_reached ? metrics::fmt(result.stability.mean(), 0) : "-";
    table.add_row({std::to_string(f), metrics::fmt(100.0 * result.pollution.mean()),
                   discovery, stability});
    csv.add_row({std::to_string(f), metrics::fmt(100.0 * result.pollution.mean(), 3),
                 metrics::fmt(100.0 * result.pollution.sample_stddev(), 3), discovery,
                 stability});
    report.add_row(metrics::JsonObject()
                       .field("f_pct", f)
                       .field("pollution", result.pollution.mean())
                       .field("pollution_sd", result.pollution.sample_stddev())
                       .field_raw("result", scenario::results::to_json(result)));
  }

  std::cout << table.render() << '\n';
  bench::report_timing(report, timer, knobs, grid.size() * knobs.reps);
  bench::write_csv("fig3_brahms_baseline.csv", csv);
  report.write();
  return 0;
}
