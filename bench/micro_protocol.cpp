// Protocol micro-benchmarks (google-benchmark): hot-path costs of the
// building blocks — samplers, views, codecs, crypto, auth handshakes and a
// whole simulated round. Not a paper figure; engineering reference data.
#include <benchmark/benchmark.h>

#include "brahms/auth.hpp"
#include "brahms/sampler.hpp"
#include "core/node_factory.hpp"
#include "crypto/aes.hpp"
#include "crypto/sha256.hpp"
#include "gossip/framework.hpp"
#include "sim/engine.hpp"
#include "wire/link_cipher.hpp"
#include "wire/message.hpp"

namespace {

using namespace raptee;

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_AesCtr_1KiB(benchmark::State& state) {
  crypto::Drbg kg(1);
  const auto key = kg.generate_key();
  const crypto::Aes aes = crypto::Aes::aes256(key.bytes());
  std::vector<std::uint8_t> data(1024, 0x55);
  const auto counter = crypto::make_counter_block({});
  for (auto _ : state) {
    crypto::AesCtr ctr(aes, counter);
    ctr.process(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_AesCtr_1KiB);

void BM_LinkCipher_SealOpen(benchmark::State& state) {
  crypto::Drbg kg(2);
  const auto key = kg.generate_key();
  wire::LinkCipher tx(key, 0), rx(key, 0);
  const std::vector<std::uint8_t> msg(256, 0x42);
  for (auto _ : state) {
    auto opened = rx.open(tx.seal(msg));
    benchmark::DoNotOptimize(opened.has_value());
  }
}
BENCHMARK(BM_LinkCipher_SealOpen);

void BM_SamplerArray_Feed(benchmark::State& state) {
  Rng rng(3);
  brahms::SamplerArray samplers(static_cast<std::size_t>(state.range(0)), rng);
  std::uint32_t next_id = 0;
  for (auto _ : state) {
    samplers.feed(NodeId{next_id++ % 4096});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SamplerArray_Feed)->Arg(40)->Arg(200);

void BM_PullReply_Codec(benchmark::State& state) {
  wire::PullReply reply;
  reply.sender = NodeId{1};
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0)); ++i) {
    reply.view.emplace_back(i);
  }
  for (auto _ : state) {
    const auto decoded = wire::decode(wire::encode(wire::Message{reply}));
    benchmark::DoNotOptimize(&decoded);
  }
}
BENCHMARK(BM_PullReply_Codec)->Arg(40)->Arg(200);

void BM_AuthHandshake(benchmark::State& state) {
  const auto mode = static_cast<brahms::AuthMode>(state.range(0));
  crypto::Drbg kg(4);
  const auto group = kg.generate_key();
  brahms::KeyedAuthenticator a(mode, group, kg.fork("a"));
  brahms::KeyedAuthenticator b(mode, group, kg.fork("b"));
  for (auto _ : state) {
    const auto challenge = a.make_challenge();
    const auto response = b.make_response(challenge);
    crypto::AuthConfirm confirm;
    const bool trusted = a.verify_response(challenge, response, &confirm);
    benchmark::DoNotOptimize(b.verify_confirm(challenge, response, confirm));
    benchmark::DoNotOptimize(trusted);
  }
}
BENCHMARK(BM_AuthHandshake)
    ->Arg(static_cast<int>(brahms::AuthMode::kFull))
    ->Arg(static_cast<int>(brahms::AuthMode::kFingerprint))
    ->Arg(static_cast<int>(brahms::AuthMode::kOracle));

void BM_FrameworkRound_Cyclon(benchmark::State& state) {
  gossip::FrameworkDriver driver(gossip::cyclon_params(20),
                                 static_cast<std::size_t>(state.range(0)), 5);
  driver.bootstrap_uniform();
  for (auto _ : state) {
    driver.run_round();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_FrameworkRound_Cyclon)->Arg(200)->Arg(1000);

void BM_EngineRound_Brahms(benchmark::State& state) {
  core::NodeFactory factory(6, brahms::AuthMode::kFingerprint);
  sim::Engine engine({6});
  brahms::BrahmsConfig config;
  config.params.l1 = 24;
  config.params.l2 = 24;
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < n; ++i) {
    engine.add_node(factory.make_honest(NodeId{i}, config), NodeKind::kHonest);
  }
  engine.bootstrap_uniform(24);
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EngineRound_Brahms)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
