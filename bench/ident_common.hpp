// Shared driver for the §VI-A identification-attack figures (10, 11, 12).
#pragma once

#include <iostream>

#include "bench_common.hpp"

namespace raptee::bench {

/// Figures 10/11: fixed f, one curve per eviction rate, x-axis t.
/// All (ER, t) cells run as one parallel batch via the grid API.
inline void run_ident_fixed_f_figure(const char* fig_name, int f_pct,
                                     const scenario::Knobs& knobs) {
  print_header(fig_name, knobs);
  std::cout << "Precision, recall and F1-score of trusted-node identification "
               "under "
            << f_pct << "% of Byzantine nodes (paper "
            << (f_pct == 10 ? "Fig. 10" : "Fig. 11") << ")\n\n";

  const auto ts = knobs.t_grid();
  const auto ers = knobs.er_grid();

  scenario::Grid grid(knobs.base_spec().adversary_pct(f_pct).identification());
  grid.axis_eviction_pct(ers).axis_trusted_pct(ts);
  const WallTimer timer;
  const auto sweep = scenario::Runner(knobs.threads).run_grid(grid, knobs.reps);

  std::vector<std::string> headers{"ER%\\t%"};
  for (const int t : ts) headers.push_back("t=" + std::to_string(t) + "%");
  metrics::TablePrinter recall(headers), precision(headers), f1(headers);
  metrics::CsvWriter csv({"f_pct", "er_pct", "t_pct", "recall", "precision", "f1"});
  scenario::results::BenchReport report(fig_name, knobs);

  for (std::size_t ei = 0; ei < ers.size(); ++ei) {
    std::vector<std::string> row_r{"ER-" + std::to_string(ers[ei])};
    std::vector<std::string> row_p{"ER-" + std::to_string(ers[ei])};
    std::vector<std::string> row_f{"ER-" + std::to_string(ers[ei])};
    for (std::size_t ti = 0; ti < ts.size(); ++ti) {
      const auto& cell = sweep.at({ei, ti});
      row_r.push_back(metrics::fmt(cell.ident_best_recall.mean(), 2));
      row_p.push_back(metrics::fmt(cell.ident_best_precision.mean(), 2));
      row_f.push_back(metrics::fmt(cell.ident_best_f1.mean(), 2));
      csv.add_row({std::to_string(f_pct), std::to_string(ers[ei]),
                   std::to_string(ts[ti]),
                   metrics::fmt(cell.ident_best_recall.mean(), 4),
                   metrics::fmt(cell.ident_best_precision.mean(), 4),
                   metrics::fmt(cell.ident_best_f1.mean(), 4)});
      report.add_row(metrics::JsonObject()
                         .field("f_pct", f_pct)
                         .field("er_pct", ers[ei])
                         .field("t_pct", ts[ti])
                         .field("recall", cell.ident_best_recall.mean())
                         .field("precision", cell.ident_best_precision.mean())
                         .field("f1", cell.ident_best_f1.mean())
                         .field_raw("result", scenario::results::to_json(cell)));
    }
    recall.add_row(row_r);
    precision.add_row(row_p);
    f1.add_row(row_f);
  }

  std::cout << "(a) Recall\n" << recall.render() << '\n';
  std::cout << "(b) Precision\n" << precision.render() << '\n';
  std::cout << "(c) F1-score\n" << f1.render() << '\n';
  report_timing(report, timer, knobs, grid.size() * knobs.reps);
  write_csv(std::string(fig_name) + ".csv", csv);
  report.write();
}

}  // namespace raptee::bench
