// Shared driver for the §VI-A identification-attack figures (10, 11, 12).
#pragma once

#include <iostream>

#include "bench_common.hpp"

namespace raptee::bench {

/// Figures 10/11: fixed f, one curve per eviction rate, x-axis t.
/// All (ER, t) cells run as one parallel batch.
inline void run_ident_fixed_f_figure(const char* fig_name, int f_pct,
                                     const Knobs& knobs) {
  print_header(fig_name, knobs);
  std::cout << "Precision, recall and F1-score of trusted-node identification "
               "under "
            << f_pct << "% of Byzantine nodes (paper "
            << (f_pct == 10 ? "Fig. 10" : "Fig. 11") << ")\n\n";

  const auto ts = t_grid(knobs);
  const auto ers = er_grid(knobs);

  std::vector<metrics::ExperimentConfig> configs;
  for (int er : ers) {
    for (int t : ts) {
      metrics::ExperimentConfig config = base_config(knobs);
      config.byzantine_fraction = f_pct / 100.0;
      config.trusted_fraction = t / 100.0;
      config.eviction = core::EvictionSpec::fixed(er / 100.0);
      config.run_identification = true;
      configs.push_back(config);
    }
  }
  const auto cells = run_cells(std::move(configs), knobs.reps, knobs.threads);

  std::vector<std::string> headers{"ER%\\t%"};
  for (int t : ts) headers.push_back("t=" + std::to_string(t) + "%");
  metrics::TablePrinter recall(headers), precision(headers), f1(headers);
  metrics::CsvWriter csv({"f_pct", "er_pct", "t_pct", "recall", "precision", "f1"});

  for (std::size_t ei = 0; ei < ers.size(); ++ei) {
    std::vector<std::string> row_r{"ER-" + std::to_string(ers[ei])};
    std::vector<std::string> row_p{"ER-" + std::to_string(ers[ei])};
    std::vector<std::string> row_f{"ER-" + std::to_string(ers[ei])};
    for (std::size_t ti = 0; ti < ts.size(); ++ti) {
      const auto& cell = cells[ei * ts.size() + ti];
      row_r.push_back(metrics::fmt(cell.ident_best_recall.mean(), 2));
      row_p.push_back(metrics::fmt(cell.ident_best_precision.mean(), 2));
      row_f.push_back(metrics::fmt(cell.ident_best_f1.mean(), 2));
      csv.add_row({std::to_string(f_pct), std::to_string(ers[ei]),
                   std::to_string(ts[ti]),
                   metrics::fmt(cell.ident_best_recall.mean(), 4),
                   metrics::fmt(cell.ident_best_precision.mean(), 4),
                   metrics::fmt(cell.ident_best_f1.mean(), 4)});
    }
    recall.add_row(row_r);
    precision.add_row(row_p);
    f1.add_row(row_f);
  }

  std::cout << "(a) Recall\n" << recall.render() << '\n';
  std::cout << "(b) Precision\n" << precision.render() << '\n';
  std::cout << "(c) F1-score\n" << f1.render() << '\n';
  write_csv(std::string(fig_name) + ".csv", csv);
}

}  // namespace raptee::bench
