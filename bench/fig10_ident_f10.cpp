// Figure 10 — trusted-node identification attack with f = 10 %.
#include "ident_common.hpp"

int main() {
  using namespace raptee;
  bench::run_ident_fixed_f_figure("fig10_ident_f10", 10, scenario::Knobs::from_env());
  return 0;
}
