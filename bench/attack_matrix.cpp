// Attack matrix: the full adversary catalog (every registered strategy,
// plus a trusted-victim eclipse variant) against the defence axis (no
// eviction / fixed 60 % / adaptive), on one RAPTEE population — the
// coverage BASALT-style evaluations demand and the single balanced attack
// of the paper's §VI cannot provide.
//
// Emits bench_out/attack_matrix.{csv,json} (raptee.bench/4) and exits
// non-zero if the catalog loses its teeth:
//   * capture — the honest-victim eclipse must push its victims well past
//     the population-wide pollution, to majority capture (eviction cannot
//     protect honest nodes);
//   * eviction differentiation — the trusted-victim eclipse must pollute
//     its victims measurably harder with eviction off than under adaptive
//     eviction, and adaptive eviction must prevent full isolation;
//   * suppression accounting — only the omission strategy suppresses legs,
//     and it must actually suppress some;
//   * purity — the balanced row never engages attack telemetry, while the
//     oscillating row always does.
#include <iostream>
#include <string>
#include <vector>

#include "adversary/strategy.hpp"
#include "bench_common.hpp"

int main() {
  using namespace raptee;
  const auto knobs = scenario::Knobs::from_env();
  bench::print_header("attack_matrix", knobs);
  std::cout << "adversary catalog x eviction policy (f=20%, t=20% of correct)\n\n";

  adversary::AttackSpec eclipse_honest = adversary::AttackSpec::eclipse(0.25);
  eclipse_honest.victim_kind = adversary::AttackSpec::VictimKind::kHonest;
  eclipse_honest.push_cap_fraction = 0.34;
  eclipse_honest.isolation_threshold = 0.5;
  adversary::AttackSpec eclipse_trusted = eclipse_honest;
  eclipse_trusted.victim_kind = adversary::AttackSpec::VictimKind::kTrusted;
  eclipse_trusted.isolation_threshold = 0.75;

  const std::vector<std::pair<std::string, adversary::AttackSpec>> attacks = {
      {"balanced", adversary::AttackSpec::balanced()},
      {"eclipse", eclipse_honest},
      {"eclipse_trusted", eclipse_trusted},
      {"oscillating", adversary::AttackSpec::oscillating()},
      {"omission", adversary::AttackSpec::omission()},
      {"bogus_swap", adversary::AttackSpec::bogus_swap()}};
  const std::vector<std::pair<std::string, core::EvictionSpec>> evictions = {
      {"none", core::EvictionSpec::none()},
      {"fixed60", core::EvictionSpec::fixed(0.6)},
      {"adaptive", core::EvictionSpec::adaptive()}};

  scenario::Grid grid(knobs.base_spec()
                          .adversary(0.2)
                          .trusted_share(0.2)
                          .label("attack_matrix"));
  grid.axis_attack(attacks).axis_eviction(evictions);

  const bench::WallTimer timer;
  const scenario::GridResult sweep =
      scenario::Runner(knobs.threads).run_grid(grid, knobs.reps);

  metrics::TablePrinter table({"attack", "eviction", "pollution %", "victim %",
                               "isolated", "suppressed"});
  metrics::CsvWriter csv({"attack", "eviction", "pollution", "victim_pollution",
                          "isolation_reached", "isolation_round_mean",
                          "legs_suppressed_mean", "attacked_runs"});
  scenario::results::BenchReport report("attack_matrix", knobs);

  for (std::size_t a = 0; a < attacks.size(); ++a) {
    for (std::size_t e = 0; e < evictions.size(); ++e) {
      const metrics::RepeatedResult& cell = sweep.at({a, e});
      const bool has_victims = cell.victim_pollution.count() > 0;
      const double suppressed =
          cell.legs_suppressed.count() ? cell.legs_suppressed.mean() : 0.0;
      table.add_row(
          {attacks[a].first, evictions[e].first,
           metrics::fmt(100.0 * cell.pollution.mean()),
           has_victims ? metrics::fmt(100.0 * cell.victim_pollution.mean()) : "-",
           std::to_string(cell.isolation_reached) + "/" + std::to_string(cell.runs),
           metrics::fmt(suppressed, 0)});
      csv.add_row({attacks[a].first, evictions[e].first,
                   metrics::fmt(cell.pollution.mean(), 6),
                   has_victims ? metrics::fmt(cell.victim_pollution.mean(), 6) : "",
                   std::to_string(cell.isolation_reached),
                   cell.isolation_reached ? metrics::fmt(cell.isolation_round.mean(), 1)
                                          : "",
                   metrics::fmt(suppressed, 1), std::to_string(cell.attacked_runs)});
      metrics::JsonObject row;
      row.field("attack", attacks[a].first)
          .field("eviction", evictions[e].first)
          .field("pollution", cell.pollution.mean())
          .field("victim_pollution",
                 has_victims ? std::optional<double>(cell.victim_pollution.mean())
                             : std::optional<double>())
          .field("isolation_reached", cell.isolation_reached)
          .field("isolation_round_mean",
                 cell.isolation_reached
                     ? std::optional<double>(cell.isolation_round.mean())
                     : std::optional<double>())
          .field("legs_suppressed_mean", suppressed)
          .field("attacked_runs", cell.attacked_runs)
          .field("runs", cell.runs);
      report.add_row(row);
    }
  }

  std::cout << table.render() << '\n';
  bench::report_timing(report, timer, knobs, sweep.cells.size() * knobs.reps);
  bench::write_csv("attack_matrix.csv", csv);
  report.write();

  // --- gates ---
  bool ok = true;
  auto fail = [&ok](const std::string& what) {
    std::cerr << "FAIL: " << what << '\n';
    ok = false;
  };

  // Axis indices derived from the labels so reordering the axis vectors
  // cannot silently point the gates at the wrong cells.
  const auto attack_index = [&attacks, &fail](const std::string& label) {
    for (std::size_t i = 0; i < attacks.size(); ++i) {
      if (attacks[i].first == label) return i;
    }
    fail("attack axis lost its '" + label + "' point");
    return std::size_t{0};
  };
  const auto eviction_index = [&evictions, &fail](const std::string& label) {
    for (std::size_t i = 0; i < evictions.size(); ++i) {
      if (evictions[i].first == label) return i;
    }
    fail("eviction axis lost its '" + label + "' point");
    return std::size_t{0};
  };
  const std::size_t balanced_i = attack_index("balanced");
  const std::size_t eclipse_i = attack_index("eclipse");
  const std::size_t eclipse_trusted_i = attack_index("eclipse_trusted");
  const std::size_t oscillating_i = attack_index("oscillating");
  const std::size_t omission_i = attack_index("omission");
  const std::size_t ev_none = eviction_index("none");
  const std::size_t ev_adaptive = eviction_index("adaptive");
  if (!ok) return 1;

  // Honest-victim capture: eviction cannot protect honest nodes, so with
  // defences off the victims must sit far above the population average and
  // reach majority capture (either the all-victims isolation event at the
  // 0.5 threshold, or a majority-polluted victim mean).
  const auto& capture = sweep.at({eclipse_i, ev_none});
  if (capture.victim_pollution.count() == 0) {
    fail("honest-victim eclipse carries no victim telemetry");
  } else {
    if (capture.victim_pollution.mean() < capture.pollution.mean() + 0.05) {
      fail("eclipse victims are no worse off than the population average");
    }
    if (capture.isolation_reached == 0 && capture.victim_pollution.mean() < 0.5) {
      fail("honest-victim eclipse reached neither isolation nor majority capture");
    }
  }

  // Eviction-vs-strategy differentiation on the hardened targets: adaptive
  // eviction must measurably protect trusted victims and keep them clear of
  // full isolation.
  const auto& hard_off = sweep.at({eclipse_trusted_i, ev_none});
  const auto& hard_on = sweep.at({eclipse_trusted_i, ev_adaptive});
  if (hard_off.victim_pollution.count() == 0 || hard_on.victim_pollution.count() == 0) {
    fail("trusted-victim eclipse carries no victim telemetry");
  } else {
    if (hard_off.victim_pollution.mean() < hard_on.victim_pollution.mean() + 0.02) {
      fail("adaptive eviction does not protect trusted eclipse victims");
    }
    if (hard_on.isolation_reached != 0) {
      fail("trusted victims reached full isolation despite adaptive eviction");
    }
  }

  // Suppression accounting: omission suppresses, nobody else does.
  for (std::size_t a = 0; a < attacks.size(); ++a) {
    for (std::size_t e = 0; e < evictions.size(); ++e) {
      const auto& cell = sweep.at({a, e});
      const double suppressed =
          cell.legs_suppressed.count() ? cell.legs_suppressed.mean() : 0.0;
      if (a == omission_i && suppressed <= 0.0) {
        fail("omission strategy suppressed no legs");
      }
      if (a != omission_i && suppressed > 0.0) {
        fail("strategy '" + attacks[a].first + "' unexpectedly suppressed legs");
      }
    }
  }

  // Purity: balanced rows carry no attack telemetry; oscillating engages
  // every run (its duty cycle is telemetry, not silence).
  if (sweep.at({balanced_i, ev_none}).attacked_runs != 0 ||
      sweep.at({balanced_i, ev_none}).victim_pollution.count() != 0) {
    fail("balanced default unexpectedly engaged attack telemetry");
  }
  if (sweep.at({oscillating_i, ev_none}).attacked_runs != knobs.reps) {
    fail("oscillating rows missing engaged-run telemetry");
  }

  if (!ok) return 1;
  std::cout << "attack/eviction differentiation gates passed\n";
  return 0;
}
