// Figure 11 — trusted-node identification attack with f = 30 %.
#include "ident_common.hpp"

int main() {
  using namespace raptee;
  bench::run_ident_fixed_f_figure("fig11_ident_f30", 30, scenario::Knobs::from_env());
  return 0;
}
