// Ablation D2 — the adaptive eviction-rate clamp. The paper fixes the
// bounds at [20 %, 80 %]; this bench sweeps alternatives to show how the
// clamp trades resilience against detectability and overhead.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace raptee;
  const auto knobs = scenario::Knobs::from_env();
  bench::print_header("ablation_adaptive_bounds", knobs);
  std::cout << "D2 ablation: adaptive eviction clamp [lower, upper] at t=10%\n\n";

  struct Bounds {
    double lower, upper;
  };
  const std::vector<Bounds> variants{{0.2, 0.8},   // paper
                                     {0.0, 1.0},   // unclamped
                                     {0.4, 0.6},   // narrow
                                     {0.5, 0.5}};  // fixed-50 via clamp
  const std::vector<int> fs{10, 20, 30};

  // Per f: one baseline, then one cell per bounds variant.
  std::vector<scenario::ScenarioSpec> specs;
  for (const int f : fs) {
    scenario::ScenarioSpec baseline = knobs.base_spec().adversary_pct(f);
    specs.push_back(baseline);
    for (const Bounds& b : variants) {
      scenario::ScenarioSpec raptee = baseline;
      raptee.trusted(0.10)
          .eviction(core::EvictionSpec::adaptive(b.lower, b.upper))
          .identification();
      specs.push_back(raptee);
    }
  }
  const bench::WallTimer timer;
  const auto cells = scenario::Runner(knobs.threads).run_batch(specs, knobs.reps);

  metrics::TablePrinter table(
      {"bounds", "f%", "improvement %", "discovery ovh %", "ident F1", "mean ER %"});
  metrics::CsvWriter csv({"lower", "upper", "f_pct", "improvement_pct",
                          "discovery_overhead_pct", "ident_f1", "mean_er_pct"});
  scenario::results::BenchReport report("ablation_adaptive_bounds", knobs);

  const std::size_t stride = 1 + variants.size();
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    const Bounds& b = variants[vi];
    const std::string bounds = "[" + metrics::fmt(100 * b.lower, 0) + "," +
                               metrics::fmt(100 * b.upper, 0) + "]";
    for (std::size_t fi = 0; fi < fs.size(); ++fi) {
      const auto& baseline = cells[fi * stride];
      const auto& raptee = cells[fi * stride + 1 + vi];
      const auto disc = bench::overhead_pct(baseline.discovery,
                                            baseline.discovery_reached,
                                            raptee.discovery, raptee.discovery_reached);
      table.add_row({bounds, std::to_string(fs[fi]),
                     metrics::fmt(bench::improvement_pct(baseline, raptee)),
                     bench::fmt_opt(disc),
                     metrics::fmt(raptee.ident_best_f1.mean(), 2),
                     metrics::fmt(100.0 * raptee.eviction_rate.mean())});
      csv.add_row({metrics::fmt(b.lower, 2), metrics::fmt(b.upper, 2),
                   std::to_string(fs[fi]),
                   metrics::fmt(bench::improvement_pct(baseline, raptee), 3),
                   bench::fmt_opt(disc, 3),
                   metrics::fmt(raptee.ident_best_f1.mean(), 4),
                   metrics::fmt(100.0 * raptee.eviction_rate.mean(), 2)});
      report.add_row(metrics::JsonObject()
                         .field("lower", b.lower)
                         .field("upper", b.upper)
                         .field("f_pct", fs[fi])
                         .field("improvement_pct",
                                bench::improvement_pct(baseline, raptee))
                         .field("discovery_overhead_pct", disc)
                         .field("ident_f1", raptee.ident_best_f1.mean())
                         .field("mean_eviction_rate", raptee.eviction_rate.mean()));
    }
  }
  std::cout << table.render() << '\n';
  bench::report_timing(report, timer, knobs, specs.size() * knobs.reps);
  bench::write_csv("ablation_adaptive_bounds.csv", csv);
  report.write();
  return 0;
}
