// Ablation D1 — the trusted-overlay extension: trusted nodes add one
// standing exchange per round with their oldest known trusted peer, turning
// incidental pull-time discovery into a persistent sub-overlay. OFF in the
// paper-faithful configuration; this bench quantifies what it buys.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace raptee;
  const auto knobs = scenario::Knobs::from_env();
  bench::print_header("ablation_trusted_overlay", knobs);
  std::cout << "D1 ablation: trusted overlay off (paper-faithful) vs on\n\n";

  const std::vector<int> fs{10, 20};
  const std::vector<int> ts{1, 10};

  // Per (f, t): baseline, overlay-off, overlay-on.
  std::vector<scenario::ScenarioSpec> specs;
  for (const int f : fs) {
    for (const int t : ts) {
      scenario::ScenarioSpec baseline = knobs.base_spec().adversary_pct(f);
      specs.push_back(baseline);
      scenario::ScenarioSpec off = baseline;
      off.trusted_pct(t).eviction(core::EvictionSpec::adaptive()).trusted_overlay(false);
      specs.push_back(off);
      scenario::ScenarioSpec on = off;
      on.trusted_overlay(true);
      specs.push_back(on);
    }
  }
  const bench::WallTimer timer;
  const auto cells = scenario::Runner(knobs.threads).run_batch(specs, knobs.reps);

  metrics::TablePrinter table({"f%", "t%", "improvement off %", "improvement on %",
                               "trusted pollution off %", "trusted pollution on %"});
  metrics::CsvWriter csv({"f_pct", "t_pct", "overlay", "improvement_pct",
                          "trusted_pollution_pct"});
  scenario::results::BenchReport report("ablation_trusted_overlay", knobs);

  std::size_t idx = 0;
  for (const int f : fs) {
    for (const int t : ts) {
      const auto& baseline = cells[idx++];
      const auto& off = cells[idx++];
      const auto& on = cells[idx++];
      table.add_row({std::to_string(f), std::to_string(t),
                     metrics::fmt(bench::improvement_pct(baseline, off)),
                     metrics::fmt(bench::improvement_pct(baseline, on)),
                     metrics::fmt(100.0 * off.pollution_trusted.mean()),
                     metrics::fmt(100.0 * on.pollution_trusted.mean())});
      csv.add_row({std::to_string(f), std::to_string(t), "off",
                   metrics::fmt(bench::improvement_pct(baseline, off), 3),
                   metrics::fmt(100.0 * off.pollution_trusted.mean(), 3)});
      csv.add_row({std::to_string(f), std::to_string(t), "on",
                   metrics::fmt(bench::improvement_pct(baseline, on), 3),
                   metrics::fmt(100.0 * on.pollution_trusted.mean(), 3)});
      const auto json_row = [&](const char* overlay, const metrics::RepeatedResult& cell) {
        report.add_row(metrics::JsonObject()
                           .field("f_pct", f)
                           .field("t_pct", t)
                           .field("overlay", overlay)
                           .field("improvement_pct", bench::improvement_pct(baseline, cell))
                           .field("trusted_pollution", cell.pollution_trusted.mean()));
      };
      json_row("off", off);
      json_row("on", on);
    }
  }
  std::cout << table.render() << '\n';
  bench::report_timing(report, timer, knobs, specs.size() * knobs.reps);
  bench::write_csv("ablation_trusted_overlay.csv", csv);
  report.write();
  return 0;
}
