// Ablation D1 — the trusted-overlay extension: trusted nodes add one
// standing exchange per round with their oldest known trusted peer, turning
// incidental pull-time discovery into a persistent sub-overlay. OFF in the
// paper-faithful configuration; this bench quantifies what it buys.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace raptee;
  const auto knobs = bench::Knobs::from_env();
  bench::print_header("ablation_trusted_overlay", knobs);
  std::cout << "D1 ablation: trusted overlay off (paper-faithful) vs on\n\n";

  const std::vector<int> fs{10, 20};
  const std::vector<int> ts{1, 10};

  // Per (f, t): baseline, overlay-off, overlay-on.
  std::vector<metrics::ExperimentConfig> configs;
  for (int f : fs) {
    for (int t : ts) {
      metrics::ExperimentConfig baseline = bench::base_config(knobs);
      baseline.byzantine_fraction = f / 100.0;
      configs.push_back(baseline);
      metrics::ExperimentConfig off = baseline;
      off.trusted_fraction = t / 100.0;
      off.eviction = core::EvictionSpec::adaptive();
      off.trusted_overlay = false;
      configs.push_back(off);
      metrics::ExperimentConfig on = off;
      on.trusted_overlay = true;
      configs.push_back(on);
    }
  }
  const auto cells = bench::run_cells(std::move(configs), knobs.reps, knobs.threads);

  metrics::TablePrinter table({"f%", "t%", "improvement off %", "improvement on %",
                               "trusted pollution off %", "trusted pollution on %"});
  metrics::CsvWriter csv({"f_pct", "t_pct", "overlay", "improvement_pct",
                          "trusted_pollution_pct"});

  std::size_t idx = 0;
  for (int f : fs) {
    for (int t : ts) {
      const auto& baseline = cells[idx++];
      const auto& off = cells[idx++];
      const auto& on = cells[idx++];
      table.add_row({std::to_string(f), std::to_string(t),
                     metrics::fmt(bench::improvement_pct(baseline, off)),
                     metrics::fmt(bench::improvement_pct(baseline, on)),
                     metrics::fmt(100.0 * off.pollution_trusted.mean()),
                     metrics::fmt(100.0 * on.pollution_trusted.mean())});
      csv.add_row({std::to_string(f), std::to_string(t), "off",
                   metrics::fmt(bench::improvement_pct(baseline, off), 3),
                   metrics::fmt(100.0 * off.pollution_trusted.mean(), 3)});
      csv.add_row({std::to_string(f), std::to_string(t), "on",
                   metrics::fmt(bench::improvement_pct(baseline, on), 3),
                   metrics::fmt(100.0 * on.pollution_trusted.mean(), 3)});
    }
  }
  std::cout << table.render() << '\n';
  bench::write_csv("ablation_trusted_overlay.csv", csv);
  return 0;
}
