// Figure 6 — RAPTEE vs Brahms with a fixed 40 % eviction rate.
#include "bench_common.hpp"

int main() {
  using namespace raptee;
  bench::run_eviction_figure(
      "fig6_eviction_40",
      "Resilience improvement and performance overhead under a 40% eviction rate "
      "(paper Fig. 6)",
      core::EvictionSpec::fixed(0.4), scenario::Knobs::from_env());
  return 0;
}
