#include "bench_common.hpp"

#include <iostream>
#include <vector>

#include "exec/thread_pool.hpp"

namespace raptee::bench {

void write_csv(const std::string& file_name, const metrics::CsvWriter& csv) {
  const std::string path = "bench_out/" + file_name;
  if (!csv.write(path)) {
    std::cerr << "warning: could not write " << path << '\n';
  } else {
    std::cout << "[csv] " << path << '\n';
  }
}

void print_header(const char* bench_name, const scenario::Knobs& knobs) {
  std::cout << "==== " << bench_name << " ====\n"
            << "mode=" << (knobs.full ? "FULL (paper-scale)" : "quick")
            << "  N=" << knobs.n << "  view=" << knobs.l1 << "  rounds=" << knobs.rounds
            << "  reps=" << knobs.reps << "  threads=";
  if (knobs.threads == 0) {
    std::cout << "auto(" << exec::hardware_threads() << ")";
  } else {
    std::cout << knobs.threads;
  }
  if (knobs.attack != "balanced") std::cout << "  attack=" << knobs.attack;
  std::cout << "\n\n";
}

void report_timing(scenario::results::BenchReport& report, const WallTimer& timer,
                   const scenario::Knobs& knobs, std::size_t runs) {
  const double seconds = timer.seconds();
  const std::size_t threads = exec::resolve_threads(knobs.threads, runs);
  std::cout << "wall-clock " << metrics::fmt(seconds, 2) << " s for " << runs
            << " runs on " << threads << " thread(s)";
  if (seconds > 0.0) {
    std::cout << " (" << metrics::fmt(static_cast<double>(runs) / seconds, 2)
              << " runs/s)";
  }
  std::cout << "\n\n";
  report.set_timing(seconds, threads);
}

std::string fmt_opt(const std::optional<double>& value, int precision) {
  return value ? metrics::fmt(*value, precision) : std::string("-");
}

double improvement_pct(const metrics::RepeatedResult& baseline,
                       const metrics::RepeatedResult& raptee) {
  const double base = baseline.pollution.mean();
  if (base <= 0.0) return 0.0;
  return 100.0 * (base - raptee.pollution.mean()) / base;
}

double improvement_honest_pct(const metrics::RepeatedResult& baseline,
                              const metrics::RepeatedResult& raptee) {
  const double base = baseline.pollution_honest.mean();
  if (base <= 0.0) return 0.0;
  return 100.0 * (base - raptee.pollution_honest.mean()) / base;
}

std::optional<double> overhead_pct(const RunningStats& baseline,
                                   std::size_t baseline_reached,
                                   const RunningStats& raptee,
                                   std::size_t raptee_reached) {
  if (baseline_reached == 0 || raptee_reached == 0 || baseline.mean() <= 0.0) {
    return std::nullopt;
  }
  return 100.0 * (raptee.mean() / baseline.mean() - 1.0);
}

void run_eviction_figure(const char* fig_name, const char* title,
                         const core::EvictionSpec& eviction,
                         const scenario::Knobs& knobs) {
  print_header(fig_name, knobs);
  std::cout << title << "\n\n";

  const auto fs = knobs.f_grid();
  const auto ts = knobs.t_grid();

  // Batch layout: per f, one Brahms baseline followed by one RAPTEE cell
  // per t — the baseline is shared across the whole t row.
  std::vector<scenario::ScenarioSpec> specs;
  for (const int f : fs) {
    scenario::ScenarioSpec baseline = knobs.base_spec().adversary_pct(f);
    specs.push_back(baseline);
    for (const int t : ts) {
      scenario::ScenarioSpec raptee = baseline;
      raptee.trusted_pct(t).eviction(eviction);
      specs.push_back(raptee);
    }
  }
  const scenario::Runner runner(knobs.threads);
  const WallTimer timer;
  const auto cells = runner.run_batch(specs, knobs.reps);

  std::vector<std::string> headers{"f%\\t%"};
  for (const int t : ts) headers.push_back("t=" + std::to_string(t) + "%");
  metrics::TablePrinter improvement(headers), discovery(headers), stability(headers);
  metrics::CsvWriter csv({"f_pct", "t_pct", "eviction", "baseline_pollution_pct",
                          "raptee_pollution_pct", "resilience_improvement_pct",
                          "resilience_improvement_honest_pct", "discovery_overhead_pct",
                          "stability_overhead_pct", "mean_eviction_rate_pct"});
  scenario::results::BenchReport report(fig_name, knobs);

  const std::size_t stride = 1 + ts.size();
  for (std::size_t fi = 0; fi < fs.size(); ++fi) {
    const int f = fs[fi];
    const auto& baseline = cells[fi * stride];
    std::vector<std::string> row_imp{std::to_string(f)};
    std::vector<std::string> row_disc{std::to_string(f)};
    std::vector<std::string> row_stab{std::to_string(f)};
    for (std::size_t ti = 0; ti < ts.size(); ++ti) {
      const auto& raptee = cells[fi * stride + 1 + ti];
      const double imp = improvement_pct(baseline, raptee);
      const auto disc = overhead_pct(baseline.discovery, baseline.discovery_reached,
                                     raptee.discovery, raptee.discovery_reached);
      const auto stab = overhead_pct(baseline.stability, baseline.stability_reached,
                                     raptee.stability, raptee.stability_reached);
      row_imp.push_back(metrics::fmt(imp));
      row_disc.push_back(fmt_opt(disc));
      row_stab.push_back(fmt_opt(stab));

      const double imp_honest = improvement_honest_pct(baseline, raptee);
      csv.add_row({std::to_string(f), std::to_string(ts[ti]), eviction.describe(),
                   metrics::fmt(100.0 * baseline.pollution.mean(), 3),
                   metrics::fmt(100.0 * raptee.pollution.mean(), 3),
                   metrics::fmt(imp, 3), metrics::fmt(imp_honest, 3), fmt_opt(disc, 3),
                   fmt_opt(stab, 3),
                   metrics::fmt(100.0 * raptee.eviction_rate.mean(), 2)});
      report.add_row(metrics::JsonObject()
                         .field("f_pct", f)
                         .field("t_pct", ts[ti])
                         .field("eviction", eviction.describe())
                         .field("baseline_pollution", baseline.pollution.mean())
                         .field("raptee_pollution", raptee.pollution.mean())
                         .field("resilience_improvement_pct", imp)
                         .field("resilience_improvement_honest_pct", imp_honest)
                         .field("discovery_overhead_pct", disc)
                         .field("stability_overhead_pct", stab)
                         .field("mean_eviction_rate", raptee.eviction_rate.mean())
                         .field_raw("raptee", scenario::results::to_json(raptee))
                         .field_raw("baseline", scenario::results::to_json(baseline)));
    }
    improvement.add_row(row_imp);
    discovery.add_row(row_disc);
    stability.add_row(row_stab);
  }

  std::cout << "(a) Byzantine resilience gain (%)\n" << improvement.render() << '\n';
  std::cout << "(b) Round overhead for system discovery (%)\n" << discovery.render()
            << '\n';
  std::cout << "(c) Round overhead to reach view stability (%)\n" << stability.render()
            << '\n';
  report_timing(report, timer, knobs, specs.size() * knobs.reps);
  write_csv(std::string(fig_name) + ".csv", csv);
  report.write();
}

}  // namespace raptee::bench
