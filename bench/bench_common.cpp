#include "bench_common.hpp"

#include <cstdlib>

#include "common/rng.hpp"
#include <iostream>

namespace raptee::bench {

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name)) {
    const long parsed = std::atol(value);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

}  // namespace

Knobs Knobs::from_env() {
  Knobs knobs;
  if (const char* full = std::getenv("RAPTEE_BENCH_FULL")) {
    knobs.full = std::atoi(full) != 0;
  }
  if (knobs.full) {
    knobs.n = 10000;
    knobs.l1 = 200;
    knobs.rounds = 200;
    knobs.reps = 10;
  }
  knobs.n = env_size("RAPTEE_BENCH_N", knobs.n);
  knobs.l1 = env_size("RAPTEE_BENCH_L1", knobs.l1);
  knobs.rounds = static_cast<Round>(env_size("RAPTEE_BENCH_ROUNDS", knobs.rounds));
  knobs.reps = env_size("RAPTEE_BENCH_REPS", knobs.reps);
  knobs.threads = env_size("RAPTEE_BENCH_THREADS", knobs.threads);
  return knobs;
}

metrics::ExperimentConfig base_config(const Knobs& knobs) {
  metrics::ExperimentConfig config;
  config.n = knobs.n;
  config.brahms.l1 = knobs.l1;
  config.brahms.l2 = knobs.l1;
  config.rounds = knobs.rounds;
  config.seed = knobs.seed;
  config.auth_mode = brahms::AuthMode::kFingerprint;
  return config;
}

std::vector<int> f_grid(const Knobs& knobs) {
  if (knobs.full) {
    std::vector<int> grid;
    for (int f = 10; f <= 30; f += 2) grid.push_back(f);
    return grid;
  }
  return {10, 20, 30};
}

std::vector<int> t_grid(const Knobs& knobs) {
  if (knobs.full) return {1, 5, 10, 20, 30, 50};
  return {1, 10, 30};
}

std::vector<int> er_grid(const Knobs& knobs) {
  if (knobs.full) return {0, 20, 40, 60, 80, 100};
  return {0, 60, 100};
}

void write_csv(const std::string& file_name, const metrics::CsvWriter& csv) {
  const std::string path = "bench_out/" + file_name;
  if (!csv.write(path)) {
    std::cerr << "warning: could not write " << path << '\n';
  } else {
    std::cout << "[csv] " << path << '\n';
  }
}

void print_header(const char* bench_name, const Knobs& knobs) {
  std::cout << "==== " << bench_name << " ====\n"
            << "mode=" << (knobs.full ? "FULL (paper-scale)" : "quick")
            << "  N=" << knobs.n << "  view=" << knobs.l1 << "  rounds=" << knobs.rounds
            << "  reps=" << knobs.reps << "  threads=" << knobs.threads << "\n\n";
}

std::string fmt_opt(const std::optional<double>& value, int precision) {
  return value ? metrics::fmt(*value, precision) : std::string("-");
}

std::vector<metrics::RepeatedResult> run_cells(
    std::vector<metrics::ExperimentConfig> configs, std::size_t reps,
    std::size_t threads) {
  std::vector<metrics::ExperimentConfig> flat;
  flat.reserve(configs.size() * reps);
  for (const auto& config : configs) {
    for (std::size_t r = 0; r < reps; ++r) {
      metrics::ExperimentConfig cell = config;
      cell.seed = raptee::mix64(config.seed, 0x5265705Aull + r);
      flat.push_back(cell);
    }
  }
  const auto results = metrics::run_batch(flat, threads);

  std::vector<metrics::RepeatedResult> out(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    metrics::RepeatedResult& agg = out[c];
    for (std::size_t r = 0; r < reps; ++r) {
      const auto& res = results[c * reps + r];
      ++agg.runs;
      agg.pollution.add(res.steady_pollution);
      agg.pollution_honest.add(res.steady_pollution_honest);
      agg.pollution_trusted.add(res.steady_pollution_trusted);
      if (res.discovery_round) {
        agg.discovery.add(static_cast<double>(*res.discovery_round));
        ++agg.discovery_reached;
      }
      if (res.stability_round) {
        agg.stability.add(static_cast<double>(*res.stability_round));
        ++agg.stability_reached;
      }
      agg.eviction_rate.add(res.mean_eviction_rate);
      agg.trusted_ratio.add(res.mean_trusted_ratio);
      agg.ident_best_precision.add(res.ident_best.precision);
      agg.ident_best_recall.add(res.ident_best.recall);
      agg.ident_best_f1.add(res.ident_best.f1);
    }
  }
  return out;
}

double improvement_pct(const metrics::RepeatedResult& baseline,
                       const metrics::RepeatedResult& raptee) {
  const double base = baseline.pollution.mean();
  if (base <= 0.0) return 0.0;
  return 100.0 * (base - raptee.pollution.mean()) / base;
}

std::optional<double> overhead_pct(const RunningStats& baseline,
                                   std::size_t baseline_reached,
                                   const RunningStats& raptee,
                                   std::size_t raptee_reached) {
  if (baseline_reached == 0 || raptee_reached == 0 || baseline.mean() <= 0.0) {
    return std::nullopt;
  }
  return 100.0 * (raptee.mean() / baseline.mean() - 1.0);
}

void run_eviction_figure(const char* fig_name, const char* title,
                         const core::EvictionSpec& eviction, const Knobs& knobs) {
  print_header(fig_name, knobs);
  std::cout << title << "\n\n";

  const auto fs = f_grid(knobs);
  const auto ts = t_grid(knobs);

  // Batch layout: per f, one Brahms baseline followed by one RAPTEE cell
  // per t — the baseline is shared across the whole t row.
  std::vector<metrics::ExperimentConfig> configs;
  for (int f : fs) {
    metrics::ExperimentConfig baseline = base_config(knobs);
    baseline.byzantine_fraction = f / 100.0;
    configs.push_back(baseline);
    for (int t : ts) {
      metrics::ExperimentConfig raptee = baseline;
      raptee.trusted_fraction = t / 100.0;
      raptee.eviction = eviction;
      configs.push_back(raptee);
    }
  }
  const auto cells = run_cells(std::move(configs), knobs.reps, knobs.threads);

  std::vector<std::string> headers{"f%\\t%"};
  for (int t : ts) headers.push_back("t=" + std::to_string(t) + "%");
  metrics::TablePrinter improvement(headers), discovery(headers), stability(headers);
  metrics::CsvWriter csv({"f_pct", "t_pct", "eviction", "baseline_pollution_pct",
                          "raptee_pollution_pct", "resilience_improvement_pct",
                          "resilience_improvement_honest_pct", "discovery_overhead_pct",
                          "stability_overhead_pct", "mean_eviction_rate_pct"});

  const std::size_t stride = 1 + ts.size();
  for (std::size_t fi = 0; fi < fs.size(); ++fi) {
    const int f = fs[fi];
    const auto& baseline = cells[fi * stride];
    std::vector<std::string> row_imp{std::to_string(f)};
    std::vector<std::string> row_disc{std::to_string(f)};
    std::vector<std::string> row_stab{std::to_string(f)};
    for (std::size_t ti = 0; ti < ts.size(); ++ti) {
      const auto& raptee = cells[fi * stride + 1 + ti];
      const double imp = improvement_pct(baseline, raptee);
      const auto disc = overhead_pct(baseline.discovery, baseline.discovery_reached,
                                     raptee.discovery, raptee.discovery_reached);
      const auto stab = overhead_pct(baseline.stability, baseline.stability_reached,
                                     raptee.stability, raptee.stability_reached);
      row_imp.push_back(metrics::fmt(imp));
      row_disc.push_back(fmt_opt(disc));
      row_stab.push_back(fmt_opt(stab));

      const double imp_honest =
          baseline.pollution_honest.mean() > 0.0
              ? 100.0 *
                    (baseline.pollution_honest.mean() - raptee.pollution_honest.mean()) /
                    baseline.pollution_honest.mean()
              : 0.0;
      csv.add_row({std::to_string(f), std::to_string(ts[ti]), eviction.describe(),
                   metrics::fmt(100.0 * baseline.pollution.mean(), 3),
                   metrics::fmt(100.0 * raptee.pollution.mean(), 3),
                   metrics::fmt(imp, 3), metrics::fmt(imp_honest, 3), fmt_opt(disc, 3),
                   fmt_opt(stab, 3),
                   metrics::fmt(100.0 * raptee.eviction_rate.mean(), 2)});
    }
    improvement.add_row(row_imp);
    discovery.add_row(row_disc);
    stability.add_row(row_stab);
  }

  std::cout << "(a) Byzantine resilience gain (%)\n" << improvement.render() << '\n';
  std::cout << "(b) Round overhead for system discovery (%)\n" << discovery.render()
            << '\n';
  std::cout << "(c) Round overhead to reach view stability (%)\n" << stability.render()
            << '\n';
  write_csv(std::string(fig_name) + ".csv", csv);
}

}  // namespace raptee::bench
