// Link-session scaling benchmark: the encrypted exchange phase with the
// persistent wire::LinkTable (one derivation per active pair, nonce
// continuity across rounds) against the per-exchange-derivation baseline it
// replaced (link_sessions = false — fresh HKDF + cipher construction for
// every exchange of every round).
//
// Two gates, both independent of machine load:
//   * observable purity — both modes must produce byte-identical
//     results::to_json output (the session cache only changes ciphertext);
//   * derivation scaling — cached derivations must track active pairs, a
//     small fraction of the baseline's O(exchanges × rounds).
// The wall-clock speedup is reported always and asserted (>= 1.2x) only
// under RAPTEE_BENCH_REQUIRE_SPEEDUP=1, as ratios on loaded shared runners
// are too noisy to gate by default.
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "sim/engine.hpp"

namespace {

/// Captures the engine's link-table statistics at the end of the run.
struct LinkStatsObserver : raptee::scenario::IScenarioObserver {
  void on_round(const raptee::scenario::RoundSnapshot&,
                const raptee::sim::Engine&) override {}
  void on_run_end(const raptee::metrics::ExperimentResult&,
                  const raptee::sim::Engine& engine) override {
    derivations = engine.link_derivations();
    active_sessions = engine.link_active_sessions();
  }
  std::uint64_t derivations = 0;
  std::size_t active_sessions = 0;
};

}  // namespace

int main() {
  using namespace raptee;
  const auto knobs = scenario::Knobs::from_env();
  bench::print_header("scale_links", knobs);
  std::cout << "encrypted exchange phase: persistent link sessions vs "
               "per-exchange key derivation (identical observable output)\n\n";

  // A busy encrypted scenario: adversary + trusted population so all five
  // exchange legs (including swaps) exercise the sealed path.
  const scenario::ScenarioSpec base = knobs.base_spec()
                                          .adversary(0.1)
                                          .trusted_share(0.2)
                                          .encrypt_links(true)
                                          .label("scale_links");

  metrics::TablePrinter table(
      {"mode", "wall s", "derivations", "sessions", "speedup"});
  metrics::CsvWriter csv({"mode", "wall_seconds", "derivations", "active_sessions",
                          "wire_bytes", "pulls_completed", "speedup"});
  scenario::results::BenchReport report("scale_links", knobs);

  struct Mode {
    const char* name;
    bool cached;
  };
  double baseline_seconds = 0.0;
  std::uint64_t baseline_derivations = 0;
  std::uint64_t cached_derivations = 0;
  std::size_t cached_sessions = 0;
  double cached_seconds = 0.0;
  std::string baseline_json, cached_json;

  for (const Mode mode : {Mode{"per-exchange", false}, Mode{"cached", true}}) {
    const scenario::ScenarioSpec spec =
        scenario::ScenarioSpec(base.config()).link_sessions(mode.cached);
    LinkStatsObserver stats;
    const bench::WallTimer timer;
    const metrics::ExperimentResult result =
        metrics::run_experiment(spec.config(), &stats);
    const double seconds = timer.seconds();
    const std::string result_json = scenario::results::to_json(result);

    double speedup = 1.0;
    if (!mode.cached) {
      baseline_seconds = seconds;
      baseline_derivations = stats.derivations;
      baseline_json = result_json;
    } else {
      cached_seconds = seconds;
      cached_derivations = stats.derivations;
      cached_sessions = stats.active_sessions;
      cached_json = result_json;
      if (seconds > 0.0) speedup = baseline_seconds / seconds;
    }

    table.add_row({mode.name, metrics::fmt(seconds, 2),
                   std::to_string(stats.derivations),
                   std::to_string(stats.active_sessions), metrics::fmt(speedup, 2)});
    csv.add_row({mode.name, metrics::fmt(seconds, 4),
                 std::to_string(stats.derivations),
                 std::to_string(stats.active_sessions),
                 std::to_string(result.wire_bytes),
                 std::to_string(result.pulls_completed), metrics::fmt(speedup, 3)});
    report.add_row(metrics::JsonObject()
                       .field("mode", mode.name)
                       .field("wall_seconds", seconds)
                       .field("derivations", stats.derivations)
                       .field("active_sessions", stats.active_sessions)
                       .field("wire_bytes", result.wire_bytes)
                       .field("pulls_completed", result.pulls_completed)
                       .field("speedup_vs_baseline", speedup));
  }

  std::cout << table.render() << '\n';
  const double speedup =
      cached_seconds > 0.0 ? baseline_seconds / cached_seconds : 1.0;
  report.set_timing(cached_seconds, 1, speedup);
  bench::write_csv("scale_links.csv", csv);
  report.write();

  if (cached_json != baseline_json) {
    std::cerr << "FAIL: session cache changed observable results\n";
    return 1;
  }
  std::cout << "observable output identical across modes\n";
  // The point of the refactor: derivations drop from O(exchanges x rounds)
  // to O(active pairs). On a tiny smoke grid nearly every pair is active,
  // so gate at a conservative 2x; paper-scale runs show an order of
  // magnitude or more.
  if (cached_derivations == 0 || cached_derivations * 2 > baseline_derivations) {
    std::cerr << "FAIL: cached derivations " << cached_derivations
              << " not <= 1/2 of baseline " << baseline_derivations << '\n';
    return 1;
  }
  std::cout << "derivations: " << baseline_derivations << " -> "
            << cached_derivations << " (sessions held: " << cached_sessions
            << ")\n";
  if (const char* require = std::getenv("RAPTEE_BENCH_REQUIRE_SPEEDUP");
      require && std::atoi(require) != 0) {
    if (speedup < 1.2) {
      std::cerr << "FAIL: cached sessions speedup " << metrics::fmt(speedup, 2)
                << "x < 1.2x\n";
      return 1;
    }
    std::cout << "speedup gate passed: " << metrics::fmt(speedup, 2) << "x\n";
  }
  return 0;
}
