// Shared presentation machinery for the figure/table benches.
//
// Scenario assembly lives in the scenario API (scenario/scenario.hpp):
// scenario::Knobs::from_env() sizes runs (RAPTEE_BENCH_* knobs, see
// README.md), ScenarioSpec builds cells, Runner executes them. This header
// only keeps what benches share to *present* results: aligned tables, the
// CSV + JSON sinks under bench_out/, the derived-metric math (resilience
// improvement, round overheads) and the Figures 5-9 eviction-sweep driver.
#pragma once

#include <chrono>
#include <optional>
#include <string>

#include "metrics/report.hpp"
#include "scenario/scenario.hpp"

namespace raptee::bench {

/// Writes a CSV under bench_out/ (best effort; failures warn on stderr).
void write_csv(const std::string& file_name, const metrics::CsvWriter& csv);

/// Prints the run header (grid sizes, mode) for reproducibility.
void print_header(const char* bench_name, const scenario::Knobs& knobs);

/// Monotonic stopwatch for the per-bench wall-clock rows (BenchReport::
/// set_timing); starts at construction.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints the batch wall-clock + throughput line and records it on the
/// report. `runs` = total simulation runs in the batch (cells × reps).
void report_timing(scenario::results::BenchReport& report, const WallTimer& timer,
                   const scenario::Knobs& knobs, std::size_t runs);

/// "12.3" or "-" for missing optionals.
[[nodiscard]] std::string fmt_opt(const std::optional<double>& value, int precision = 1);

/// Relative pollution drop of `raptee` vs `baseline` (percent, all-correct).
[[nodiscard]] double improvement_pct(const metrics::RepeatedResult& baseline,
                                     const metrics::RepeatedResult& raptee);
/// Same, restricted to honest untrusted nodes (§V-C prose metric).
[[nodiscard]] double improvement_honest_pct(const metrics::RepeatedResult& baseline,
                                            const metrics::RepeatedResult& raptee);
/// Round-overhead percent for a rounds metric; nullopt when either side
/// failed to reach the milestone.
[[nodiscard]] std::optional<double> overhead_pct(const RunningStats& baseline,
                                                 std::size_t baseline_reached,
                                                 const RunningStats& raptee,
                                                 std::size_t raptee_reached);

/// Figures 5-9 all share this sweep: for a given eviction policy, produce
/// the three panels (resilience improvement, discovery overhead, stability
/// overhead) as f x t matrices, print them and write CSV + JSON. Baselines
/// are computed once per f and shared across the t columns.
void run_eviction_figure(const char* fig_name, const char* title,
                         const core::EvictionSpec& eviction,
                         const scenario::Knobs& knobs);

}  // namespace raptee::bench
