// Shared machinery for the figure/table benches.
//
// Every bench prints the paper's rows/series as aligned tables and writes
// CSV to bench_out/. Grids default to a runtime-trimmed "quick" mode; set
// RAPTEE_BENCH_FULL=1 for the paper-scale grid (N=10,000, view 200,
// 200 rounds, f in 10..30 step 2, t in {1,5,10,20,30,50}), and override
// individual knobs with RAPTEE_BENCH_N / _L1 / _ROUNDS / _REPS / _THREADS.
#pragma once

#include <string>
#include <vector>

#include "metrics/experiment.hpp"
#include "metrics/report.hpp"

namespace raptee::bench {

struct Knobs {
  bool full = false;
  std::size_t n = 400;
  std::size_t l1 = 40;
  Round rounds = 150;
  std::size_t reps = 1;
  std::size_t threads = 2;
  std::uint64_t seed = 20220308;  // arXiv date of the paper

  static Knobs from_env();
};

/// The experiment configuration shared by all figure benches.
[[nodiscard]] metrics::ExperimentConfig base_config(const Knobs& knobs);

/// Byzantine-fraction grid (percent): paper 10..30 step 2; quick {10,20,30}.
[[nodiscard]] std::vector<int> f_grid(const Knobs& knobs);
/// Trusted-fraction grid (percent): paper {1,5,10,20,30,50}; quick {1,10,30}.
[[nodiscard]] std::vector<int> t_grid(const Knobs& knobs);
/// Eviction-rate grid (percent): paper {0,20,...,100}; quick {0,60,100}.
[[nodiscard]] std::vector<int> er_grid(const Knobs& knobs);

/// Writes a CSV under bench_out/ (best effort; failures warn on stderr).
void write_csv(const std::string& file_name, const metrics::CsvWriter& csv);

/// Prints the run header (grid sizes, mode) for reproducibility.
void print_header(const char* bench_name, const Knobs& knobs);

/// "12.3" or "-" for missing optionals.
[[nodiscard]] std::string fmt_opt(const std::optional<double>& value, int precision = 1);

/// Runs `configs`, each repeated `reps` times with decorrelated seeds, all
/// cells flattened into one batch across `threads` workers; aggregates per
/// config. This is the throughput backbone of every figure bench.
[[nodiscard]] std::vector<metrics::RepeatedResult> run_cells(
    std::vector<metrics::ExperimentConfig> configs, std::size_t reps,
    std::size_t threads);

/// Relative pollution drop of `raptee` vs `baseline` (percent, all-correct).
[[nodiscard]] double improvement_pct(const metrics::RepeatedResult& baseline,
                                     const metrics::RepeatedResult& raptee);
/// Round-overhead percent for a rounds metric; nullopt when either side
/// failed to reach the milestone.
[[nodiscard]] std::optional<double> overhead_pct(const RunningStats& baseline,
                                                 std::size_t baseline_reached,
                                                 const RunningStats& raptee,
                                                 std::size_t raptee_reached);

/// Figures 5-9 all share this sweep: for a given eviction policy, produce
/// the three panels (resilience improvement, discovery overhead, stability
/// overhead) as f x t matrices, print them and write CSV. Baselines are
/// computed once per f and shared across the t columns.
void run_eviction_figure(const char* fig_name, const char* title,
                         const core::EvictionSpec& eviction, const Knobs& knobs);

}  // namespace raptee::bench
