// Figure 8 — RAPTEE vs Brahms with a fixed 100 % eviction rate.
#include "bench_common.hpp"

int main() {
  using namespace raptee;
  bench::run_eviction_figure(
      "fig8_eviction_100",
      "Resilience improvement and performance overhead under a 100% eviction rate "
      "(paper Fig. 8)",
      core::EvictionSpec::fixed(1.0), scenario::Knobs::from_env());
  return 0;
}
