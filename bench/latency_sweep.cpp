// Latency sweep: event-driven time under the delay-assisted adversary —
// latency model x partition schedule x attack, single-run cells with the
// full event-mode telemetry (virtual clock, late legs, partition drops,
// dissemination time) the aggregated grid path does not carry.
//
// Emits bench_out/latency_sweep.{csv,json} (raptee.bench/4) and exits
// non-zero if event-driven time loses its teeth:
//   * delay leverage — under high-latency (wan) links, delay_eclipse must
//     pollute its trusted victims measurably harder than plain eclipse
//     (the injected delay pushes honest refresh past the round deadline);
//   * defence holds — adaptive eviction must keep the delay-assisted
//     attacker from full isolation even on wan links;
//   * partition accounting — every mid-third cell severs messages
//     (partition_drops > 0), every none cell severs nothing;
//   * clock sanity — every cell advances the virtual clock by exactly
//     rounds x round_interval.
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "adversary/strategy.hpp"
#include "bench_common.hpp"

int main() {
  using namespace raptee;
  const auto knobs = scenario::Knobs::from_env();
  bench::print_header("latency_sweep", knobs);
  std::cout << "latency x partition x attack, event-driven time "
            << "(f=20%, t=20% of correct, trusted victims)\n\n";

  constexpr std::uint64_t kIntervalMs = 500;
  const Round window_from = knobs.rounds / 3;
  const Round window_until = 2 * knobs.rounds / 3;

  adversary::AttackSpec eclipse = adversary::AttackSpec::eclipse(0.25);
  eclipse.victim_kind = adversary::AttackSpec::VictimKind::kTrusted;
  eclipse.push_cap_fraction = 0.34;
  adversary::AttackSpec delay = adversary::AttackSpec::delay_eclipse(400, 0.25);
  delay.victim_kind = eclipse.victim_kind;
  delay.push_cap_fraction = eclipse.push_cap_fraction;
  adversary::AttackSpec partition_attack =
      adversary::AttackSpec::partition_eclipse(window_from, window_until, 0.25);
  partition_attack.victim_kind = eclipse.victim_kind;
  partition_attack.push_cap_fraction = eclipse.push_cap_fraction;

  std::vector<std::pair<std::string, evt::LatencySpec>> latencies = {
      {"lan", evt::LatencySpec::named("lan")},
      {"wan", evt::LatencySpec::named("wan")}};
  if (knobs.latency != "lan" && knobs.latency != "wan") {
    latencies.emplace_back(knobs.latency, knobs.latency_spec());
  }
  std::vector<std::pair<std::string, evt::PartitionSchedule>> partitions = {
      {"none", evt::PartitionSchedule::none()},
      {"mid-third", evt::PartitionSchedule::named("mid-third", knobs.rounds)}};
  if (knobs.partition != "none" && knobs.partition != "mid-third") {
    partitions.emplace_back(knobs.partition, knobs.partition_schedule());
  }
  // The attack axis carries its paired defence, so it is a custom axis
  // rather than axis_attack: the adaptive point mutates both.
  const std::vector<std::pair<std::string, std::function<void(scenario::ScenarioSpec&)>>>
      attacks = {
          {"eclipse", [&](scenario::ScenarioSpec& s) { s.attack(eclipse); }},
          {"delay_eclipse", [&](scenario::ScenarioSpec& s) { s.attack(delay); }},
          {"delay_eclipse_adaptive",
           [&](scenario::ScenarioSpec& s) {
             s.attack(delay).eviction(core::EvictionSpec::adaptive());
           }},
          {"partition_eclipse",
           [&](scenario::ScenarioSpec& s) { s.attack(partition_attack); }}};

  scenario::Grid grid(knobs.base_spec()
                          .adversary(0.2)
                          .trusted_share(0.2)
                          .round_interval_ms(kIntervalMs)
                          .label("latency_sweep"));
  grid.axis_latency(latencies).axis_partition(partitions);
  {
    std::vector<scenario::AxisPoint> points;
    points.reserve(attacks.size());
    for (const auto& [label, apply] : attacks) points.push_back({label, apply});
    grid.axis("attack", std::move(points));
  }

  const std::vector<scenario::ScenarioSpec> cells = grid.cells();
  std::vector<metrics::ExperimentConfig> configs;
  configs.reserve(cells.size());
  for (const scenario::ScenarioSpec& cell : cells) configs.push_back(cell.config());

  const bench::WallTimer timer;
  const std::vector<metrics::ExperimentResult> runs =
      metrics::run_batch(configs, knobs.threads);

  // Row-major like GridResult: latency slowest, attack fastest.
  const std::size_t P = partitions.size();
  const std::size_t A = attacks.size();
  const auto at = [&](std::size_t l, std::size_t p, std::size_t a)
      -> const metrics::ExperimentResult& { return runs[(l * P + p) * A + a]; };

  metrics::TablePrinter table({"latency", "partition", "attack", "victim %",
                               "isolated", "late", "severed", "dissem ms"});
  metrics::CsvWriter csv({"latency", "partition", "attack", "pollution",
                          "victim_pollution", "rounds_to_isolation", "legs_late",
                          "partition_drops", "virtual_ms", "dissemination_time_ms"});
  scenario::results::BenchReport report("latency_sweep", knobs);

  for (std::size_t l = 0; l < latencies.size(); ++l) {
    for (std::size_t p = 0; p < P; ++p) {
      for (std::size_t a = 0; a < A; ++a) {
        const metrics::ExperimentResult& run = at(l, p, a);
        const std::optional<double> isolation =
            run.attack.rounds_to_isolation
                ? std::optional<double>(static_cast<double>(*run.attack.rounds_to_isolation))
                : std::optional<double>();
        table.add_row({latencies[l].first, partitions[p].first, attacks[a].first,
                       metrics::fmt(100.0 * run.attack.steady_victim_pollution),
                       run.attack.rounds_to_isolation ? "yes" : "no",
                       std::to_string(run.evt.legs_late),
                       std::to_string(run.evt.partition_drops),
                       std::to_string(run.evt.dissemination_time_ms)});
        csv.add_row({latencies[l].first, partitions[p].first, attacks[a].first,
                     metrics::fmt(run.steady_pollution, 6),
                     metrics::fmt(run.attack.steady_victim_pollution, 6),
                     bench::fmt_opt(isolation, 0), std::to_string(run.evt.legs_late),
                     std::to_string(run.evt.partition_drops),
                     std::to_string(run.evt.virtual_ms),
                     std::to_string(run.evt.dissemination_time_ms)});
        metrics::JsonObject row;
        row.field("latency", latencies[l].first)
            .field("partition", partitions[p].first)
            .field("attack", attacks[a].first)
            .field("pollution", run.steady_pollution)
            .field("victim_pollution", run.attack.steady_victim_pollution)
            .field("rounds_to_isolation", isolation)
            .field("legs_late", run.evt.legs_late)
            .field("partition_drops", run.evt.partition_drops)
            .field("virtual_ms", run.evt.virtual_ms)
            .field("dissemination_time_ms", run.evt.dissemination_time_ms);
        report.add_row(row);
      }
    }
  }

  std::cout << table.render() << '\n';
  bench::report_timing(report, timer, knobs, runs.size());
  bench::write_csv("latency_sweep.csv", csv);
  report.write();

  // --- gates ---
  bool ok = true;
  auto fail = [&ok](const std::string& what) {
    std::cerr << "FAIL: " << what << '\n';
    ok = false;
  };
  const auto attack_index = [&attacks, &fail](const std::string& label) {
    for (std::size_t i = 0; i < attacks.size(); ++i) {
      if (attacks[i].first == label) return i;
    }
    fail("attack axis lost its '" + label + "' point");
    return std::size_t{0};
  };
  const std::size_t eclipse_i = attack_index("eclipse");
  const std::size_t delay_i = attack_index("delay_eclipse");
  const std::size_t adaptive_i = attack_index("delay_eclipse_adaptive");
  if (!ok) return 1;
  const std::size_t wan = 1;  // latencies[1]
  const std::size_t none = 0, mid = 1;

  // Delay leverage: on wan links the injected 400 ms pushes honest refresh
  // past the 500 ms deadline, so the delay-assisted attacker must beat the
  // plain eclipse on the same links.
  const metrics::ExperimentResult& delay_wan = at(wan, none, delay_i);
  const metrics::ExperimentResult& eclipse_wan = at(wan, none, eclipse_i);
  if (delay_wan.attack.steady_victim_pollution <
      eclipse_wan.attack.steady_victim_pollution + 0.02) {
    fail("delay_eclipse does not degrade victim views beyond plain eclipse on wan");
  }
  if (delay_wan.evt.legs_late == 0) {
    fail("delay_eclipse on wan produced no late legs");
  }

  // Defence holds: adaptive eviction keeps the delay-assisted attacker from
  // full isolation even with honest refresh starved.
  if (at(wan, none, adaptive_i).attack.rounds_to_isolation) {
    fail("trusted victims fully isolated despite adaptive eviction");
  }

  // Partition accounting + virtual-clock sanity across every cell.
  const std::uint64_t expected_ms = static_cast<std::uint64_t>(knobs.rounds) * kIntervalMs;
  for (std::size_t l = 0; l < latencies.size(); ++l) {
    for (std::size_t p = 0; p < P; ++p) {
      for (std::size_t a = 0; a < A; ++a) {
        const metrics::ExperimentResult& run = at(l, p, a);
        if (partitions[p].first == "none" && run.evt.partition_drops != 0) {
          fail("unpartitioned cell severed messages");
        }
        if (partitions[p].first == "mid-third" && run.evt.partition_drops == 0) {
          fail("mid-third partition severed nothing");
        }
        if (run.evt.virtual_ms != expected_ms) {
          fail("virtual clock ended at " + std::to_string(run.evt.virtual_ms) +
               " ms, expected " + std::to_string(expected_ms));
        }
        if (!run.evt.engaged) fail("event telemetry missing from an event-mode run");
      }
    }
  }
  (void)mid;

  if (!ok) return 1;
  std::cout << "latency/partition/delay-attack gates passed\n";
  return 0;
}
