// Figure 5 — RAPTEE vs Brahms with a fixed 0 % eviction rate.
#include "bench_common.hpp"

int main() {
  using namespace raptee;
  bench::run_eviction_figure(
      "fig5_eviction_0",
      "Resilience improvement and performance overhead under a 0% eviction rate "
      "(paper Fig. 5)",
      core::EvictionSpec::fixed(0.0), scenario::Knobs::from_env());
  return 0;
}
