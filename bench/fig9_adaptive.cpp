// Figure 9 — RAPTEE vs Brahms with the adaptive eviction-rate policy
// (ER(p) = clamp(1-p, 20%, 80%)).
#include "bench_common.hpp"

int main() {
  using namespace raptee;
  bench::run_eviction_figure(
      "fig9_adaptive",
      "Resilience improvement and performance overhead under the adaptive eviction "
      "rate policy (paper Fig. 9)",
      core::EvictionSpec::adaptive(), scenario::Knobs::from_env());
  return 0;
}
