// Peer-sampling-service load bench: starts an in-process rapteed daemon on
// loopback, drives it with the closed-loop load generator, and reports
// request latency percentiles (p50/p99) and requests/sec into the standard
// bench_out JSON schema.
//
// Two passes over a fresh daemon each (same seed): unmonitored, then with a
// live MonitorServer attached. Halfway through the monitored pass a scraper
// thread GETs /metrics and the bench gates on the response being
// schema-valid JSON that already carries the Bus and Engine phase
// histograms — the "monitoring observes a busy daemon without touching it"
// contract. The monitored-vs-unmonitored p99 delta is reported always and
// gated (< 5% regression) only under RAPTEE_BENCH_REQUIRE_SPEEDUP=1, the
// same opt-in the timing-sensitive benches use, because shared CI runners
// make latency ratios flaky.
//
// Sizing: RAPTEE_BENCH_PORT (0 = ephemeral), RAPTEE_BENCH_CONNECTIONS,
// RAPTEE_BENCH_DURATION_MS, plus RAPTEE_BENCH_N / _L1 / _SEED for the
// embedded population. The ctest smoke registration runs ~250 ms with 4
// connections; CI's bench job validates and uploads the JSON.
//
// Latency numbers are machine-dependent (they live next to the timing row
// for that reason); the schema and the invariants the smoke asserts —
// requests > 0, p50 <= p99, schema-valid JSON, schema-valid scrape — are
// not.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "metrics/json.hpp"
#include "net/load_gen.hpp"
#include "net/service.hpp"
#include "obs/http.hpp"
#include "obs/registry.hpp"

namespace raptee {
namespace {

struct Pass {
  net::LoadReport load;
  std::uint64_t daemon_requests_served = 0;
  std::uint64_t daemon_rounds_stepped = 0;
};

/// One load pass against a fresh daemon. `monitor` (nullable) is already
/// serving; it only matters here because its scrape traffic shares the
/// process while the load runs.
Pass run_pass(const scenario::Knobs& knobs, net::LoadConfig lc) {
  net::DaemonConfig dc;
  dc.port = knobs.port;
  dc.population = knobs.n > 64 ? 64 : knobs.n;  // service population, not a sweep
  dc.view_size = 16;
  dc.seed = knobs.seed;
  net::ServiceDaemon daemon(dc);
  lc.port = daemon.start();
  Pass pass;
  pass.load = net::run_load(lc);
  daemon.stop();
  pass.daemon_requests_served = daemon.requests_served();
  pass.daemon_rounds_stepped = daemon.rounds_stepped();
  return pass;
}

void print_pass(const char* label, const Pass& pass, std::size_t connections) {
  std::printf(
      "%s: %llu requests (%llu errors) in %.1f ms over %zu connections: "
      "p50 %.1f us, p99 %.1f us, %.0f req/s\n",
      label, static_cast<unsigned long long>(pass.load.requests),
      static_cast<unsigned long long>(pass.load.errors), pass.load.duration_ms,
      connections, pass.load.p50_us, pass.load.p99_us, pass.load.rps);
}

metrics::JsonObject pass_row(const char* label, const Pass& pass,
                             const net::LoadConfig& lc) {
  return metrics::JsonObject()
      .field("pass", label)
      .field("connections", lc.connections)
      .field("requests", pass.load.requests)
      .field("errors", pass.load.errors)
      .field("samples_received", pass.load.samples_received)
      .field("duration_ms", pass.load.duration_ms)
      .field("p50_us", pass.load.p50_us)
      .field("p99_us", pass.load.p99_us)
      .field("max_us", pass.load.max_us)
      .field("rps", pass.load.rps)
      .field("daemon_requests_served", pass.daemon_requests_served)
      .field("daemon_rounds_stepped", pass.daemon_rounds_stepped);
}

int run() {
  const scenario::Knobs knobs = scenario::Knobs::from_env();
  bench::print_header("service_load", knobs);
  bench::WallTimer timer;

  net::LoadConfig lc;
  lc.connections = knobs.connections;
  lc.duration = std::chrono::milliseconds(knobs.duration_ms);

  // Pass 1: baseline, no monitor in the process.
  const Pass plain = run_pass(knobs, lc);
  print_pass("plain    ", plain, lc.connections);

  // Pass 2: live monitoring endpoint up, scraped mid-load.
  obs::MonitorServer monitor;
  obs::add_registry_routes(monitor, obs::Registry::global());
  const std::uint16_t monitor_port = monitor.start(0);
  std::printf("monitoring on 127.0.0.1:%u\n", monitor_port);

  std::string scrape_body;
  int scrape_status = 0;
  std::thread scraper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(knobs.duration_ms / 2));
    if (const auto got = obs::http_get(monitor_port, "/metrics")) {
      scrape_status = got->status;
      scrape_body = got->body;
    }
  });
  const Pass monitored = run_pass(knobs, lc);
  scraper.join();
  monitor.stop();
  print_pass("monitored", monitored, lc.connections);

  const bool scrape_valid =
      scrape_status == 200 && metrics::json_valid(scrape_body) &&
      scrape_body.find("engine.phase.") != std::string::npos &&
      scrape_body.find("\"bus.") != std::string::npos &&
      scrape_body.find("\"service.sample_us\"") != std::string::npos;
  const double p99_ratio =
      plain.load.p99_us > 0.0 ? monitored.load.p99_us / plain.load.p99_us : 0.0;
  std::printf("mid-load /metrics scrape: %s (%zu bytes), monitored/plain p99 %.2fx\n",
              scrape_valid ? "valid" : "INVALID", scrape_body.size(), p99_ratio);

  scenario::results::BenchReport report("service_load", knobs);
  report.add_row(pass_row("plain", plain, lc));
  report.add_row(pass_row("monitored", monitored, lc)
                     .field("scrape_valid", scrape_valid)
                     .field("scrape_bytes", scrape_body.size())
                     .field("p99_ratio", p99_ratio));
  report.set_timing(timer.seconds(), lc.connections);
  report.write();

  if (plain.load.requests == 0 || monitored.load.requests == 0) {
    std::fprintf(stderr, "FAIL: a pass completed no request\n");
    return 1;
  }
  if (plain.load.p50_us > plain.load.p99_us ||
      monitored.load.p50_us > monitored.load.p99_us) {
    std::fprintf(stderr, "FAIL: p50 > p99 (percentile math broken)\n");
    return 1;
  }
  if (!scrape_valid) {
    std::fprintf(stderr,
                 "FAIL: mid-load /metrics scrape missing or schema-invalid "
                 "(status %d, %zu bytes)\n",
                 scrape_status, scrape_body.size());
    return 1;
  }
  // Latency-ratio gate: opt-in, shared-runner timing is too noisy to gate
  // unconditionally.
  if (std::getenv("RAPTEE_BENCH_REQUIRE_SPEEDUP") != nullptr && p99_ratio > 1.05) {
    std::fprintf(stderr, "FAIL: monitoring regressed p99 by %.1f%% (> 5%% cap)\n",
                 (p99_ratio - 1.0) * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace raptee

int main() { return raptee::run(); }
