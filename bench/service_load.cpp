// Peer-sampling-service load bench: starts an in-process rapteed daemon on
// loopback, drives it with the closed-loop load generator, and reports
// request latency percentiles (p50/p99) and requests/sec into the standard
// bench_out JSON schema.
//
// Sizing: RAPTEE_BENCH_PORT (0 = ephemeral), RAPTEE_BENCH_CONNECTIONS,
// RAPTEE_BENCH_DURATION_MS, plus RAPTEE_BENCH_N / _L1 / _SEED for the
// embedded population. The ctest smoke registration runs ~250 ms with 4
// connections; CI's bench job validates and uploads the JSON.
//
// Latency numbers are machine-dependent (they live next to the timing row
// for that reason); the schema and the invariants the smoke asserts —
// requests > 0, p50 <= p99, schema-valid JSON — are not.
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/json.hpp"
#include "net/load_gen.hpp"
#include "net/service.hpp"

namespace raptee {
namespace {

int run() {
  const scenario::Knobs knobs = scenario::Knobs::from_env();
  bench::print_header("service_load", knobs);
  bench::WallTimer timer;

  net::DaemonConfig dc;
  dc.port = knobs.port;
  dc.population = knobs.n > 64 ? 64 : knobs.n;  // service population, not a sweep
  dc.view_size = 16;
  dc.seed = knobs.seed;
  net::ServiceDaemon daemon(dc);
  const std::uint16_t port = daemon.start();
  std::printf("daemon up on 127.0.0.1:%u (population %zu, %llu warmup rounds)\n",
              port, dc.population,
              static_cast<unsigned long long>(dc.warmup_rounds));

  net::LoadConfig lc;
  lc.port = port;
  lc.connections = knobs.connections;
  lc.duration = std::chrono::milliseconds(knobs.duration_ms);
  const net::LoadReport load = net::run_load(lc);
  daemon.stop();

  std::printf(
      "%llu requests (%llu errors) in %.1f ms over %zu connections: "
      "p50 %.1f us, p99 %.1f us, %.0f req/s\n",
      static_cast<unsigned long long>(load.requests),
      static_cast<unsigned long long>(load.errors), load.duration_ms,
      lc.connections, load.p50_us, load.p99_us, load.rps);

  scenario::results::BenchReport report("service_load", knobs);
  report.add_row(metrics::JsonObject()
                     .field("connections", lc.connections)
                     .field("requests", load.requests)
                     .field("errors", load.errors)
                     .field("samples_received", load.samples_received)
                     .field("duration_ms", load.duration_ms)
                     .field("p50_us", load.p50_us)
                     .field("p99_us", load.p99_us)
                     .field("max_us", load.max_us)
                     .field("rps", load.rps)
                     .field("daemon_requests_served", daemon.requests_served())
                     .field("daemon_rounds_stepped", daemon.rounds_stepped()));
  report.set_timing(timer.seconds(), lc.connections);
  report.write();

  if (load.requests == 0) {
    std::fprintf(stderr, "FAIL: no request completed\n");
    return 1;
  }
  if (load.p50_us > load.p99_us) {
    std::fprintf(stderr, "FAIL: p50 > p99 (percentile math broken)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace raptee

int main() { return raptee::run(); }
