// Figure 13 — view-poisoned trusted-node injection: resilience improvement
// vs f, one panel per honest-trusted share t, one curve per injected share.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace raptee;
  const auto knobs = bench::Knobs::from_env();
  bench::print_header("fig13_injection", knobs);
  std::cout << "Corrupted trusted node injection (paper Fig. 13): resilience "
               "improvement with +x% view-poisoned trusted nodes\n\n";

  const auto fs = bench::f_grid(knobs);
  const std::vector<int> t_panels = knobs.full ? std::vector<int>{1, 10, 30}
                                               : std::vector<int>{1, 30};
  const std::vector<int> injections =
      knobs.full ? std::vector<int>{0, 1, 5, 10, 20, 30} : std::vector<int>{0, 5, 30};

  // Batch layout per f: one Brahms baseline, then (t, inj) cells.
  std::vector<metrics::ExperimentConfig> configs;
  for (int f : fs) {
    metrics::ExperimentConfig baseline = bench::base_config(knobs);
    baseline.byzantine_fraction = f / 100.0;
    configs.push_back(baseline);
    for (int t : t_panels) {
      for (int inj : injections) {
        metrics::ExperimentConfig raptee = baseline;
        raptee.trusted_fraction = t / 100.0;
        raptee.poisoned_extra_fraction = inj / 100.0;
        raptee.eviction = core::EvictionSpec::adaptive();
        configs.push_back(raptee);
      }
    }
  }
  const auto cells = bench::run_cells(std::move(configs), knobs.reps, knobs.threads);

  metrics::CsvWriter csv({"t_pct", "injected_pct", "f_pct", "baseline_pollution_pct",
                          "raptee_pollution_pct", "resilience_improvement_pct"});
  const std::size_t stride = 1 + t_panels.size() * injections.size();

  for (std::size_t pi = 0; pi < t_panels.size(); ++pi) {
    const int t = t_panels[pi];
    std::cout << "--- panel: attack on a system with t=" << t << "% ---\n";
    std::vector<std::string> headers{"f%"};
    for (int inj : injections) {
      headers.push_back(inj == 0 ? ("t=" + std::to_string(t) + "%")
                                 : ("+" + std::to_string(inj) + "%"));
    }
    metrics::TablePrinter table(headers);

    for (std::size_t fi = 0; fi < fs.size(); ++fi) {
      const auto& baseline = cells[fi * stride];
      std::vector<std::string> row{std::to_string(fs[fi])};
      for (std::size_t ii = 0; ii < injections.size(); ++ii) {
        const auto& raptee =
            cells[fi * stride + 1 + pi * injections.size() + ii];
        const double imp = bench::improvement_pct(baseline, raptee);
        row.push_back(metrics::fmt(imp));
        csv.add_row({std::to_string(t), std::to_string(injections[ii]),
                     std::to_string(fs[fi]),
                     metrics::fmt(100.0 * baseline.pollution.mean(), 3),
                     metrics::fmt(100.0 * raptee.pollution.mean(), 3),
                     metrics::fmt(imp, 3)});
      }
      table.add_row(row);
    }
    std::cout << table.render() << '\n';
  }
  bench::write_csv("fig13_injection.csv", csv);
  return 0;
}
