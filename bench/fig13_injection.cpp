// Figure 13 — view-poisoned trusted-node injection: resilience improvement
// vs f, one panel per honest-trusted share t, one curve per injected share.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace raptee;
  const auto knobs = scenario::Knobs::from_env();
  bench::print_header("fig13_injection", knobs);
  std::cout << "Corrupted trusted node injection (paper Fig. 13): resilience "
               "improvement with +x% view-poisoned trusted nodes\n\n";

  const auto fs = knobs.f_grid();
  const std::vector<int> t_panels = knobs.full ? std::vector<int>{1, 10, 30}
                                               : std::vector<int>{1, 30};
  const std::vector<int> injections =
      knobs.full ? std::vector<int>{0, 1, 5, 10, 20, 30} : std::vector<int>{0, 5, 30};

  // Batch layout per f: one Brahms baseline, then (t, inj) cells.
  std::vector<scenario::ScenarioSpec> specs;
  for (const int f : fs) {
    scenario::ScenarioSpec baseline = knobs.base_spec().adversary_pct(f);
    specs.push_back(baseline);
    for (const int t : t_panels) {
      for (const int inj : injections) {
        scenario::ScenarioSpec raptee = baseline;
        raptee.trusted_pct(t)
            .poisoned_extra(inj / 100.0)
            .eviction(core::EvictionSpec::adaptive());
        specs.push_back(raptee);
      }
    }
  }
  const bench::WallTimer timer;
  const auto cells = scenario::Runner(knobs.threads).run_batch(specs, knobs.reps);

  metrics::CsvWriter csv({"t_pct", "injected_pct", "f_pct", "baseline_pollution_pct",
                          "raptee_pollution_pct", "resilience_improvement_pct"});
  scenario::results::BenchReport report("fig13_injection", knobs);
  const std::size_t stride = 1 + t_panels.size() * injections.size();

  for (std::size_t pi = 0; pi < t_panels.size(); ++pi) {
    const int t = t_panels[pi];
    std::cout << "--- panel: attack on a system with t=" << t << "% ---\n";
    std::vector<std::string> headers{"f%"};
    for (const int inj : injections) {
      headers.push_back(inj == 0 ? ("t=" + std::to_string(t) + "%")
                                 : ("+" + std::to_string(inj) + "%"));
    }
    metrics::TablePrinter table(headers);

    for (std::size_t fi = 0; fi < fs.size(); ++fi) {
      const auto& baseline = cells[fi * stride];
      std::vector<std::string> row{std::to_string(fs[fi])};
      for (std::size_t ii = 0; ii < injections.size(); ++ii) {
        const auto& raptee =
            cells[fi * stride + 1 + pi * injections.size() + ii];
        const double imp = bench::improvement_pct(baseline, raptee);
        row.push_back(metrics::fmt(imp));
        csv.add_row({std::to_string(t), std::to_string(injections[ii]),
                     std::to_string(fs[fi]),
                     metrics::fmt(100.0 * baseline.pollution.mean(), 3),
                     metrics::fmt(100.0 * raptee.pollution.mean(), 3),
                     metrics::fmt(imp, 3)});
        report.add_row(metrics::JsonObject()
                           .field("t_pct", t)
                           .field("injected_pct", injections[ii])
                           .field("f_pct", fs[fi])
                           .field("baseline_pollution", baseline.pollution.mean())
                           .field("raptee_pollution", raptee.pollution.mean())
                           .field("resilience_improvement_pct", imp));
      }
      table.add_row(row);
    }
    std::cout << table.render() << '\n';
  }
  bench::report_timing(report, timer, knobs, specs.size() * knobs.reps);
  bench::write_csv("fig13_injection.csv", csv);
  report.write();
  return 0;
}
