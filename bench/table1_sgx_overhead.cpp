// Table I — SGX performance overhead (in CPU cycles) of the five
// instrumented peer-sampling functions.
//
// Methodology mirrors the paper's §V-A: each function is timed in its
// "standard" form and in its enclave-hosted form. Since no SGX hardware is
// present, the enclave entry/exit (EENTER/EEXIT + parameter marshalling)
// is emulated by a fixed crypto workload (keyed MAC over a marshalling
// buffer in both directions) — the same order of magnitude as a real
// ecall transition (thousands of cycles). The measured table feeds the
// CycleModel used by the large-scale simulation, exactly as the paper
// calibrates its Grid'5000 emulation from its NUC measurements.
//
// Output: google-benchmark timings for each variant, then the Table-I
// style summary (standard cycles, SGX cycles, mean overhead, sd%).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "brahms/auth.hpp"
#include "brahms/sampler.hpp"
#include "common/stats.hpp"
#include "crypto/hmac.hpp"
#include "gossip/view.hpp"
#include "metrics/json.hpp"
#include "metrics/report.hpp"
#include "sgx/overhead.hpp"
#include "wire/message.hpp"

namespace {

using namespace raptee;

constexpr std::size_t kViewSize = 200;  // the paper's deployment view size

/// Emulated enclave transition: marshal 64 bytes in, MAC, unmarshal, MAC.
void emulated_transition() {
  static const std::vector<std::uint8_t> key(32, 0x5A);
  std::uint8_t marshal[64];
  std::memset(marshal, 0x3C, sizeof marshal);
  const auto in_tag = crypto::hmac_sha256(key.data(), key.size(), marshal, sizeof marshal);
  benchmark::DoNotOptimize(in_tag);
  const auto out_tag =
      crypto::hmac_sha256(key.data(), key.size(), in_tag.data(), in_tag.size());
  benchmark::DoNotOptimize(out_tag);
}

/// Shared fixture data.
struct Fixture {
  Fixture() : rng(7), samplers(64, rng), view(kViewSize) {
    crypto::Drbg kg(1);
    auth = std::make_unique<brahms::KeyedAuthenticator>(brahms::AuthMode::kFull,
                                                        kg.generate_key(), kg.fork("b"));
    for (std::uint32_t i = 0; i < kViewSize; ++i) {
      view.insert(NodeId{i}, i % 7);
      view_ids.emplace_back(i);
    }
    for (std::uint32_t i = 0; i < 400; ++i) stream.emplace_back(i % 300);
  }

  Rng rng;
  brahms::SamplerArray samplers;
  gossip::PartialView view;
  std::vector<NodeId> view_ids;
  std::vector<NodeId> stream;
  std::unique_ptr<brahms::KeyedAuthenticator> auth;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

// --- the five Table-I functions ---

void fn_pull_request() {
  Fixture& f = fixture();
  crypto::AuthChallenge challenge;
  challenge.r_a.fill(0x42);
  wire::PullReply reply;
  reply.sender = NodeId{1};
  reply.auth = f.auth->make_response(challenge);
  reply.view = f.view.ids();
  const auto bytes = wire::encode(wire::Message{reply});
  benchmark::DoNotOptimize(bytes.data());
}

void fn_push_message() {
  const auto bytes = wire::encode(wire::Message{wire::PushMessage{NodeId{77}}});
  const auto decoded = wire::decode(bytes);
  benchmark::DoNotOptimize(&decoded);
}

void fn_trusted_comms() {
  Fixture& f = fixture();
  const auto half = f.rng.sample(f.view_ids, kViewSize / 2);
  gossip::PartialView scratch = f.view;
  std::vector<gossip::ViewEntry> incoming;
  incoming.reserve(half.size());
  for (NodeId id : half) incoming.push_back({NodeId{id.value + 500}, 0});
  scratch.framework_merge(incoming, NodeId{9999}, 0, half.size(), half, f.rng);
  benchmark::DoNotOptimize(scratch.size());
}

void fn_sample_list() {
  Fixture& f = fixture();
  for (std::uint32_t i = 0; i < 128; ++i) f.samplers.feed(NodeId{i * 13 % 900});
  const auto list = f.samplers.sample_list();
  benchmark::DoNotOptimize(list.data());
}

void fn_dynamic_view() {
  Fixture& f = fixture();
  std::vector<NodeId> stream = f.stream;
  f.rng.shuffle(stream);
  gossip::PartialView next(kViewSize);
  for (NodeId id : stream) {
    if (next.full()) break;
    next.insert(id, 0);
  }
  benchmark::DoNotOptimize(next.size());
}

using BenchFn = void (*)();
struct Row {
  const char* name;
  sgx::FunctionClass cls;
  BenchFn fn;
};

const Row kRows[] = {
    {"Pull request", sgx::FunctionClass::kPullRequest, fn_pull_request},
    {"Push message", sgx::FunctionClass::kPushMessage, fn_push_message},
    {"Trusted communications", sgx::FunctionClass::kTrustedComms, fn_trusted_comms},
    {"Sample list comput.", sgx::FunctionClass::kSampleListComputation, fn_sample_list},
    {"Dynamic view comput.", sgx::FunctionClass::kDynamicViewComputation,
     fn_dynamic_view},
};

void register_benchmarks() {
  for (const Row& row : kRows) {
    benchmark::RegisterBenchmark((std::string(row.name) + "/standard").c_str(),
                                 [fn = row.fn](benchmark::State& state) {
                                   for (auto _ : state) fn();
                                 });
    benchmark::RegisterBenchmark((std::string(row.name) + "/sgx").c_str(),
                                 [fn = row.fn](benchmark::State& state) {
                                   for (auto _ : state) {
                                     emulated_transition();
                                     fn();
                                     emulated_transition();
                                   }
                                 });
  }
}

/// Cycle-accurate Table-I measurement (mean over kSamples calls).
void print_table1() {
  constexpr int kWarmup = 200;
  constexpr int kSamples = 2000;

  metrics::TablePrinter table({"Peer sampling function", "Standard", "SGX",
                               "Mean overhead", "Std dev"});
  metrics::CsvWriter csv({"function", "standard_cycles", "sgx_cycles", "mean_overhead",
                          "stddev_pct"});
  metrics::JsonArray rows;

  for (const Row& row : kRows) {
    for (int i = 0; i < kWarmup; ++i) row.fn();
    RunningStats standard, sgx_variant;
    for (int i = 0; i < kSamples; ++i) {
      const Cycles begin = sgx::read_cycle_counter();
      row.fn();
      const Cycles middle = sgx::read_cycle_counter();
      emulated_transition();
      row.fn();
      emulated_transition();
      const Cycles end = sgx::read_cycle_counter();
      standard.add(static_cast<double>(middle - begin));
      sgx_variant.add(static_cast<double>(end - middle));
    }
    const double overhead = sgx_variant.mean() - standard.mean();
    // The paper reports the σ of the overhead relative to its mean; use the
    // combined standard error of the two measurements.
    const double sd_pct =
        overhead > 0.0
            ? 100.0 *
                  std::sqrt(standard.sample_variance() + sgx_variant.sample_variance()) /
                  (overhead * std::sqrt(static_cast<double>(kSamples)))
            : 0.0;
    table.add_row({row.name, metrics::fmt(standard.mean(), 0),
                   metrics::fmt(sgx_variant.mean(), 0), metrics::fmt(overhead, 0),
                   metrics::fmt(sd_pct, 1) + " %"});
    csv.add_row({row.name, metrics::fmt(standard.mean(), 1),
                 metrics::fmt(sgx_variant.mean(), 1), metrics::fmt(overhead, 1),
                 metrics::fmt(sd_pct, 2)});
    rows.item_raw(metrics::JsonObject()
                      .field("function", row.name)
                      .field("standard_cycles", standard.mean())
                      .field("sgx_cycles", sgx_variant.mean())
                      .field("mean_overhead", overhead)
                      .field("stddev_pct", sd_pct)
                      .str());
  }

  std::cout << "\nTABLE I: SGX performance overhead (in CPU cycles)\n"
            << table.render()
            << "\nPaper reference (NUC i7 @3.5GHz): pull 15623->18593 (+2970), "
               "push 7521->9182 (+1661), trusted comms 9845->11516 (+1671),\n"
               "sample list 13024->15364 (+2340), dynamic view 12457->15076 (+2619); "
               "sd 2-4%.\n";
  const std::string path = "bench_out/table1_sgx_overhead.csv";
  if (csv.write(path)) std::cout << "[csv] " << path << '\n';
  // Own schema id: unlike the figure benches (raptee.bench/2) this document
  // has no scenario knobs — its provenance is the cycle-sampling count.
  const std::string json = metrics::JsonObject()
                               .field("schema", "raptee.bench.table1/1")
                               .field("bench", "table1_sgx_overhead")
                               .field("samples", std::uint64_t{kSamples})
                               .field_raw("rows", rows.str())
                               .str();
  const std::string json_path = "bench_out/table1_sgx_overhead.json";
  if (metrics::write_text_file(json_path, json)) std::cout << "[json] " << json_path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table1();
  return 0;
}
