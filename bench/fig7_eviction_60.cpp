// Figure 7 — RAPTEE vs Brahms with a fixed 60 % eviction rate.
#include "bench_common.hpp"

int main() {
  using namespace raptee;
  bench::run_eviction_figure(
      "fig7_eviction_60",
      "Resilience improvement and performance overhead under a 60% eviction rate "
      "(paper Fig. 7)",
      core::EvictionSpec::fixed(0.6), scenario::Knobs::from_env());
  return 0;
}
