// Attack lab — the paper's §VI security analysis as an interactive tool:
//
//   1. trusted-node identification: sweep the adversary's threshold and
//      print precision/recall/F1 under a chosen eviction policy;
//   2. view-poisoned trusted-node injection: watch the poisoned devices'
//      self-healing (trusted-view pollution round by round).
//
//   ./build/examples/attack_lab [N] [f%] [t%] [ER% | -1 for adaptive]
#include <cstdlib>
#include <iostream>

#include "metrics/report.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using namespace raptee;
  const double er = argc > 4 ? std::atof(argv[4]) : -1.0;
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec()
          .population(argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 300)
          .adversary((argc > 2 ? std::atof(argv[2]) : 20.0) / 100.0)
          .trusted((argc > 3 ? std::atof(argv[3]) : 15.0) / 100.0)
          .eviction(er < 0 ? core::EvictionSpec::adaptive()
                           : core::EvictionSpec::fixed(er / 100.0))
          .view_size(24)
          .rounds(60)
          .seed(13);
  const auto config = spec.config();

  std::cout << "Attack lab: N=" << config.n << "  f=" << config.byzantine_fraction * 100
            << "%  t=" << config.trusted_fraction * 100
            << "%  eviction=" << config.eviction.describe() << "\n\n";

  // --- 1. identification attack, threshold sweep ---
  std::cout << "[1] Trusted-node identification (adversary's best round)\n";
  metrics::TablePrinter ident_table({"threshold pp", "precision", "recall", "F1"});
  for (const double threshold : {0.05, 0.10, 0.15, 0.20}) {
    const auto result = scenario::ScenarioSpec(spec).identification(threshold).run();
    ident_table.add_row({metrics::fmt(100 * threshold, 0),
                         metrics::fmt(result.ident_best.precision, 2),
                         metrics::fmt(result.ident_best.recall, 2),
                         metrics::fmt(result.ident_best.f1, 2)});
  }
  std::cout << ident_table.render() << '\n';

  // --- 2. poisoned trusted-node injection: self-healing ---
  std::cout << "[2] View-poisoned trusted injection (+10% poisoned devices)\n";
  const auto attacked = spec.poisoned_extra(0.10).run();

  metrics::TablePrinter heal_table({"round", "all correct views %", "trusted views %"});
  // `trusted` includes the poisoned devices: their curve starts heavily
  // polluted (all-Byzantine bootstrap) and collapses as the honest enclave
  // code self-heals the views.
  const auto& series = attacked.pollution_series;
  const auto& trusted_series = attacked.pollution_series_trusted;
  for (std::size_t r = 0; r < series.size(); r += 5) {
    heal_table.add_row({std::to_string(r), metrics::fmt(100.0 * series[r]),
                        metrics::fmt(100.0 * trusted_series[r])});
  }
  std::cout << heal_table.render() << '\n'
            << "steady-state pollution: all=" << metrics::fmt(100 * attacked.steady_pollution)
            << "%  honest=" << metrics::fmt(100 * attacked.steady_pollution_honest)
            << "%  trusted(incl. poisoned)="
            << metrics::fmt(100 * attacked.steady_pollution_trusted) << "%\n";
  return 0;
}
