// Attack lab — the paper's §VI security analysis as an interactive tool:
//
//   1. trusted-node identification: sweep the adversary's threshold and
//      print precision/recall/F1 under a chosen eviction policy;
//   2. view-poisoned trusted-node injection: watch the poisoned devices'
//      self-healing (trusted-view pollution round by round).
//
//   ./build/examples/attack_lab [N] [f%] [t%] [ER% | -1 for adaptive]
#include <cstdlib>
#include <iostream>

#include "metrics/experiment.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace raptee;
  metrics::ExperimentConfig config;
  config.n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 300;
  config.byzantine_fraction = argc > 2 ? std::atof(argv[2]) / 100.0 : 0.20;
  config.trusted_fraction = argc > 3 ? std::atof(argv[3]) / 100.0 : 0.15;
  const double er = argc > 4 ? std::atof(argv[4]) : -1.0;
  config.eviction = er < 0 ? core::EvictionSpec::adaptive()
                           : core::EvictionSpec::fixed(er / 100.0);
  config.brahms.l1 = 24;
  config.brahms.l2 = 24;
  config.rounds = 60;
  config.seed = 13;
  config.run_identification = true;

  std::cout << "Attack lab: N=" << config.n << "  f=" << config.byzantine_fraction * 100
            << "%  t=" << config.trusted_fraction * 100
            << "%  eviction=" << config.eviction.describe() << "\n\n";

  // --- 1. identification attack, threshold sweep ---
  std::cout << "[1] Trusted-node identification (adversary's best round)\n";
  metrics::TablePrinter ident_table({"threshold pp", "precision", "recall", "F1"});
  for (double threshold : {0.05, 0.10, 0.15, 0.20}) {
    config.identification_threshold = threshold;
    const auto result = metrics::run_experiment(config);
    ident_table.add_row({metrics::fmt(100 * threshold, 0),
                         metrics::fmt(result.ident_best.precision, 2),
                         metrics::fmt(result.ident_best.recall, 2),
                         metrics::fmt(result.ident_best.f1, 2)});
  }
  std::cout << ident_table.render() << '\n';

  // --- 2. poisoned trusted-node injection: self-healing ---
  std::cout << "[2] View-poisoned trusted injection (+10% poisoned devices)\n";
  config.run_identification = false;
  config.identification_threshold = 0.10;
  config.poisoned_extra_fraction = 0.10;
  const auto attacked = metrics::run_experiment(config);

  metrics::TablePrinter heal_table({"round", "all correct views %", "trusted views %"});
  // `trusted` includes the poisoned devices: their curve starts heavily
  // polluted (all-Byzantine bootstrap) and collapses as the honest enclave
  // code self-heals the views.
  const auto& series = attacked.pollution_series;
  const auto& trusted_series = attacked.pollution_series_trusted;
  for (std::size_t r = 0; r < series.size(); r += 5) {
    heal_table.add_row({std::to_string(r), metrics::fmt(100.0 * series[r]),
                        metrics::fmt(100.0 * trusted_series[r])});
  }
  std::cout << heal_table.render() << '\n'
            << "steady-state pollution: all=" << metrics::fmt(100 * attacked.steady_pollution)
            << "%  honest=" << metrics::fmt(100 * attacked.steady_pollution_honest)
            << "%  trusted(incl. poisoned)="
            << metrics::fmt(100 * attacked.steady_pollution_trusted) << "%\n";
  return 0;
}
