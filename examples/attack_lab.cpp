// Attack lab — the paper's §VI security analysis as an interactive tool:
//
//   1. trusted-node identification: sweep the adversary's threshold and
//      print precision/recall/F1 under a chosen eviction policy;
//   2. view-poisoned trusted-node injection: watch the poisoned devices'
//      self-healing (trusted-view pollution round by round);
//   3. adversary catalog: run every registered attack strategy
//      (adversary::StrategyRegistry) against the same population and
//      compare pollution, victim isolation and suppressed liveness.
//
//   ./build/examples/attack_lab [N] [f%] [t%] [ER% | adaptive]
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>

#include "adversary/strategy.hpp"
#include "metrics/report.hpp"
#include "scenario/scenario.hpp"

namespace {

[[noreturn]] void usage_exit(const char* error) {
  std::cerr << "error: " << error << "\n"
            << "usage: attack_lab [N] [f%] [t%] [ER% | adaptive | -1]\n"
            << "  N    population size, 8..1000000 (default 300)\n"
            << "  f%   Byzantine percent, 0..99 (default 20)\n"
            << "  t%   trusted percent, 0..100 (default 15)\n"
            << "  ER%  fixed eviction percent 0..100, or 'adaptive'/'-1' for\n"
            << "       the adaptive policy (default adaptive)\n";
  std::exit(2);
}

raptee::core::EvictionSpec parse_eviction(const char* value) {
  const std::string text = value;
  if (text == "adaptive" || text == "-1") return raptee::core::EvictionSpec::adaptive();
  return raptee::core::EvictionSpec::fixed(
      raptee::scenario::parse_double("ER%", value, 0.0, 100.0) / 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace raptee;

  scenario::ScenarioSpec spec;
  try {
    spec = scenario::ScenarioSpec()
               .population(argc > 1 ? static_cast<std::size_t>(
                                          scenario::parse_u64("N", argv[1], 8, 1000000))
                                    : 300)
               .adversary((argc > 2 ? scenario::parse_double("f%", argv[2], 0.0, 99.0)
                                    : 20.0) /
                          100.0)
               .trusted((argc > 3 ? scenario::parse_double("t%", argv[3], 0.0, 100.0)
                                  : 15.0) /
                        100.0)
               .eviction(argc > 4 ? parse_eviction(argv[4])
                                  : core::EvictionSpec::adaptive())
               .view_size(24)
               .rounds(60)
               .seed(13);
  } catch (const std::invalid_argument& error) {
    usage_exit(error.what());
  }
  const auto config = spec.config();

  std::cout << "Attack lab: N=" << config.n << "  f=" << config.byzantine_fraction * 100
            << "%  t=" << config.trusted_fraction * 100
            << "%  eviction=" << config.eviction.describe() << "\n\n";

  // --- 1. identification attack, threshold sweep ---
  std::cout << "[1] Trusted-node identification (adversary's best round)\n";
  metrics::TablePrinter ident_table({"threshold pp", "precision", "recall", "F1"});
  for (const double threshold : {0.05, 0.10, 0.15, 0.20}) {
    const auto result = scenario::ScenarioSpec(spec.config()).identification(threshold).run();
    ident_table.add_row({metrics::fmt(100 * threshold, 0),
                         metrics::fmt(result.ident_best.precision, 2),
                         metrics::fmt(result.ident_best.recall, 2),
                         metrics::fmt(result.ident_best.f1, 2)});
  }
  std::cout << ident_table.render() << '\n';

  // --- 2. poisoned trusted-node injection: self-healing ---
  std::cout << "[2] View-poisoned trusted injection (+10% poisoned devices)\n";
  const auto attacked = scenario::ScenarioSpec(spec.config()).poisoned_extra(0.10).run();

  metrics::TablePrinter heal_table({"round", "all correct views %", "trusted views %"});
  // `trusted` includes the poisoned devices: their curve starts heavily
  // polluted (all-Byzantine bootstrap) and collapses as the honest enclave
  // code self-heals the views.
  const auto& series = attacked.pollution_series;
  const auto& trusted_series = attacked.pollution_series_trusted;
  for (std::size_t r = 0; r < series.size(); r += 5) {
    heal_table.add_row({std::to_string(r), metrics::fmt(100.0 * series[r]),
                        metrics::fmt(100.0 * trusted_series[r])});
  }
  std::cout << heal_table.render() << '\n'
            << "steady-state pollution: all=" << metrics::fmt(100 * attacked.steady_pollution)
            << "%  honest=" << metrics::fmt(100 * attacked.steady_pollution_honest)
            << "%  trusted(incl. poisoned)="
            << metrics::fmt(100 * attacked.steady_pollution_trusted) << "%\n\n";

  // --- 3. the adversary catalog: every registered strategy, same system ---
  std::cout << "[3] Adversary catalog (ScenarioSpec::attack, strategy registry)\n";
  metrics::TablePrinter catalog_table(
      {"strategy", "pollution %", "victim %", "isolated rd", "suppressed", "summary"});
  for (const auto& entry : adversary::StrategyRegistry::instance().entries()) {
    const auto result =
        scenario::ScenarioSpec(spec.config()).attack(entry.name).run();
    const bool victims = result.attack.victims > 0;
    catalog_table.add_row(
        {entry.name, metrics::fmt(100.0 * result.steady_pollution),
         victims ? metrics::fmt(100.0 * result.attack.steady_victim_pollution) : "-",
         result.attack.rounds_to_isolation
             ? std::to_string(*result.attack.rounds_to_isolation)
             : "-",
         std::to_string(result.attack.legs_suppressed), entry.summary});
  }
  std::cout << catalog_table.render() << '\n'
            << "victim columns apply to targeted strategies (eclipse); suppressed\n"
               "legs count pulls an omission adversary refused to answer.\n";
  return 0;
}
