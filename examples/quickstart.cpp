// Quickstart: build a small mixed population (honest / trusted / Byzantine)
// with the scenario API, run RAPTEE for 80 rounds, and print the metrics
// the paper reports — Byzantine view pollution, discovery and stability
// rounds — next to a plain-Brahms baseline of the same system.
//
//   ./build/examples/quickstart [N] [f%] [t%] [rounds]
#include <cstdlib>
#include <iostream>
#include <stdexcept>

#include "metrics/report.hpp"
#include "scenario/scenario.hpp"

namespace {

[[noreturn]] void usage_exit(const char* error) {
  std::cerr << "error: " << error << "\n"
            << "usage: quickstart [N] [f%] [t%] [rounds]\n"
            << "  N       population size, 8..1000000 (default 500)\n"
            << "  f%      Byzantine percent, 0..99 (default 10)\n"
            << "  t%      trusted percent, 0..100 (default 10)\n"
            << "  rounds  rounds to simulate, 1..100000 (default 80)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace raptee;

  scenario::ScenarioSpec spec;
  try {
    spec = scenario::ScenarioSpec()
               .population(argc > 1 ? static_cast<std::size_t>(
                                          scenario::parse_u64("N", argv[1], 8, 1000000))
                                    : 500)
               .adversary((argc > 2 ? scenario::parse_double("f%", argv[2], 0.0, 99.0)
                                    : 10.0) /
                          100.0)
               .trusted((argc > 3 ? scenario::parse_double("t%", argv[3], 0.0, 100.0)
                                  : 10.0) /
                        100.0)
               .rounds(argc > 4 ? static_cast<Round>(
                                      scenario::parse_u64("rounds", argv[4], 1, 100000))
                                : 80)
               .view_size(40)
               .eviction(core::EvictionSpec::adaptive())
               .seed(7);
  } catch (const std::invalid_argument& error) {
    usage_exit(error.what());
  }
  const auto config = spec.config();

  std::cout << "RAPTEE quickstart: N=" << config.n << "  f="
            << config.byzantine_fraction * 100 << "%  t="
            << config.trusted_fraction * 100 << "%  view=" << config.brahms.l1
            << "  eviction=" << config.eviction.describe() << "\n\n";

  const auto cmp = scenario::Runner().run_comparison(spec, /*reps=*/1);

  metrics::TablePrinter table({"protocol", "byz-in-views %", "honest %", "trusted %",
                               "discovery rd", "stability rd"});
  auto row = [&](const char* name, const metrics::RepeatedResult& r) {
    table.add_row({name, metrics::fmt(100.0 * r.pollution.mean()),
                   metrics::fmt(100.0 * r.pollution_honest.mean()),
                   metrics::fmt(100.0 * r.pollution_trusted.mean()),
                   r.discovery_reached ? metrics::fmt(r.discovery.mean(), 0) : "-",
                   r.stability_reached ? metrics::fmt(r.stability.mean(), 0) : "-"});
  };
  row("Brahms (baseline)", cmp.baseline);
  row("RAPTEE", cmp.raptee);
  std::cout << table.render() << '\n';

  std::cout << "resilience improvement: "
            << metrics::fmt(cmp.resilience_improvement_pct) << "%\n";
  if (cmp.discovery_overhead_pct) {
    std::cout << "discovery overhead:     " << metrics::fmt(*cmp.discovery_overhead_pct)
              << "%\n";
  }
  if (cmp.stability_overhead_pct) {
    std::cout << "stability overhead:     " << metrics::fmt(*cmp.stability_overhead_pct)
              << "%\n";
  }
  std::cout << "mean adaptive eviction rate: "
            << metrics::fmt(100.0 * cmp.raptee.eviction_rate.mean()) << "%\n";
  return 0;
}
