// Quickstart: build a small mixed population (honest / trusted / Byzantine),
// run RAPTEE for 80 rounds, and print the metrics the paper reports —
// Byzantine view pollution, discovery and stability rounds — next to a
// plain-Brahms baseline of the same system.
//
//   ./build/examples/quickstart [N] [f%] [t%] [rounds]
#include <cstdlib>
#include <iostream>

#include "metrics/experiment.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace raptee;

  metrics::ExperimentConfig config;
  config.n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 500;
  config.byzantine_fraction = argc > 2 ? std::atof(argv[2]) / 100.0 : 0.10;
  config.trusted_fraction = argc > 3 ? std::atof(argv[3]) / 100.0 : 0.10;
  config.rounds = argc > 4 ? static_cast<Round>(std::atoi(argv[4])) : 80;
  config.brahms.l1 = 40;
  config.brahms.l2 = 40;
  config.eviction = core::EvictionSpec::adaptive();
  config.seed = 7;

  std::cout << "RAPTEE quickstart: N=" << config.n << "  f="
            << config.byzantine_fraction * 100 << "%  t="
            << config.trusted_fraction * 100 << "%  view=" << config.brahms.l1
            << "  eviction=" << config.eviction.describe() << "\n\n";

  const auto cmp = metrics::run_comparison(config, /*reps=*/1);

  metrics::TablePrinter table({"protocol", "byz-in-views %", "honest %", "trusted %",
                               "discovery rd", "stability rd"});
  auto row = [&](const char* name, const metrics::RepeatedResult& r) {
    table.add_row({name, metrics::fmt(100.0 * r.pollution.mean()),
                   metrics::fmt(100.0 * r.pollution_honest.mean()),
                   metrics::fmt(100.0 * r.pollution_trusted.mean()),
                   r.discovery_reached ? metrics::fmt(r.discovery.mean(), 0) : "-",
                   r.stability_reached ? metrics::fmt(r.stability.mean(), 0) : "-"});
  };
  row("Brahms (baseline)", cmp.baseline);
  row("RAPTEE", cmp.raptee);
  std::cout << table.render() << '\n';

  std::cout << "resilience improvement: "
            << metrics::fmt(cmp.resilience_improvement_pct) << "%\n";
  if (cmp.discovery_overhead_pct) {
    std::cout << "discovery overhead:     " << metrics::fmt(*cmp.discovery_overhead_pct)
              << "%\n";
  }
  if (cmp.stability_overhead_pct) {
    std::cout << "stability overhead:     " << metrics::fmt(*cmp.stability_overhead_pct)
              << "%\n";
  }
  std::cout << "mean adaptive eviction rate: "
            << metrics::fmt(100.0 * cmp.raptee.eviction_rate.mean()) << "%\n";
  return 0;
}
