// Dissemination example — the motivating application class of the paper's
// introduction: epidemic broadcast on top of the peer-sampling service.
//
// A converged overlay's views form a directed graph; a source then gossips
// a message epidemically (each infected correct node forwards to `fanout`
// random view entries per round; Byzantine nodes swallow messages). The
// cleaner the views, the fewer forwards are wasted on the adversary — so
// RAPTEE-built views should reach full coverage in fewer rounds than
// Brahms-built views under the same attack.
//
// The overlays are built by the scenario API; an IScenarioObserver
// snapshots the converged views at on_run_end, when the engine still holds
// the final state.
//
//   ./build/examples/dissemination [N] [f%] [t%] [fanout]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

#include "common/rng.hpp"
#include "metrics/report.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"

namespace {

using namespace raptee;

/// Adjacency snapshot (views of correct nodes) plus the kind map.
struct Overlay {
  std::vector<std::vector<NodeId>> views;
  std::vector<NodeKind> kinds;
};

/// Captures the converged overlay when the scenario run ends.
class OverlaySnapshotter final : public scenario::IScenarioObserver {
 public:
  void on_round(const scenario::RoundSnapshot&, const sim::Engine&) override {}

  void on_run_end(const metrics::ExperimentResult&, const sim::Engine& engine) override {
    overlay.kinds = engine.kinds();
    overlay.views.resize(engine.size());
    for (std::uint32_t i = 0; i < engine.size(); ++i) {
      if (overlay.kinds[i] != NodeKind::kByzantine) {
        overlay.views[i] = engine.node(NodeId{i}).current_view();
      }
    }
  }

  Overlay overlay;
};

Overlay build_overlay(std::size_t n, double f, double t, std::uint64_t seed) {
  OverlaySnapshotter snapshotter;
  const auto spec = scenario::ScenarioSpec()
                        .population(n)
                        .adversary(f)
                        .trusted(t)
                        .view_size(24)
                        .eviction(core::EvictionSpec::adaptive())
                        .rounds(60)
                        .seed(seed);
  (void)scenario::Runner().run(spec, &snapshotter);
  return std::move(snapshotter.overlay);
}

/// Epidemic rounds to reach full correct coverage (capped at 50).
std::vector<double> spread(const Overlay& overlay, std::size_t fanout,
                           std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = overlay.views.size();
  std::vector<bool> infected(n, false);
  std::size_t correct_total = 0, correct_infected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (overlay.kinds[i] != NodeKind::kByzantine) ++correct_total;
  }
  // Source: the first correct node.
  for (std::size_t i = 0; i < n; ++i) {
    if (overlay.kinds[i] != NodeKind::kByzantine) {
      infected[i] = true;
      ++correct_infected;
      break;
    }
  }
  std::vector<double> coverage;
  for (int round = 0; round < 50 && correct_infected < correct_total; ++round) {
    std::vector<std::size_t> newly;
    for (std::size_t i = 0; i < n; ++i) {
      if (!infected[i] || overlay.kinds[i] == NodeKind::kByzantine) continue;
      const auto& view = overlay.views[i];
      if (view.empty()) continue;
      for (std::size_t k = 0; k < fanout; ++k) {
        const NodeId target = view[static_cast<std::size_t>(rng.below(view.size()))];
        if (!infected[target.value]) newly.push_back(target.value);
      }
    }
    for (std::size_t idx : newly) {
      if (!infected[idx]) {
        infected[idx] = true;
        if (overlay.kinds[idx] != NodeKind::kByzantine) ++correct_infected;
      }
    }
    coverage.push_back(static_cast<double>(correct_infected) /
                       static_cast<double>(correct_total));
  }
  return coverage;
}

[[noreturn]] void usage_exit(const char* error) {
  std::cerr << "error: " << error << "\n"
            << "usage: dissemination [N] [f%] [t%] [fanout]\n"
            << "  N       population size, 8..1000000 (default 300)\n"
            << "  f%      Byzantine percent, 0..99 (default 20)\n"
            << "  t%      trusted percent, 0..100 (default 10)\n"
            << "  fanout  forwards per infected node per round, 1..64 (default 2)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 300;
  double f = 0.20;
  double t = 0.10;
  std::size_t fanout = 2;
  try {
    if (argc > 1) {
      n = static_cast<std::size_t>(scenario::parse_u64("N", argv[1], 8, 1000000));
    }
    if (argc > 2) f = scenario::parse_double("f%", argv[2], 0.0, 99.0) / 100.0;
    if (argc > 3) t = scenario::parse_double("t%", argv[3], 0.0, 100.0) / 100.0;
    if (argc > 4) {
      fanout = static_cast<std::size_t>(scenario::parse_u64("fanout", argv[4], 1, 64));
    }
  } catch (const std::invalid_argument& error) {
    usage_exit(error.what());
  }

  std::cout << "Epidemic dissemination over converged overlays (N=" << n
            << ", f=" << f * 100 << "%, t=" << t * 100 << "%, fanout=" << fanout
            << ")\n\n";

  const Overlay brahms_overlay = build_overlay(n, f, 0.0, 99);
  const Overlay raptee_overlay = build_overlay(n, f, t, 99);
  const auto brahms_cov = spread(brahms_overlay, fanout, 7);
  const auto raptee_cov = spread(raptee_overlay, fanout, 7);

  metrics::TablePrinter table({"round", "Brahms coverage %", "RAPTEE coverage %"});
  const std::size_t rounds = std::max(brahms_cov.size(), raptee_cov.size());
  for (std::size_t r = 0; r < rounds; ++r) {
    auto cell = [](const std::vector<double>& cov, std::size_t i) {
      return i < cov.size() ? metrics::fmt(100.0 * cov[i]) : std::string("100.0");
    };
    table.add_row({std::to_string(r + 1), cell(brahms_cov, r), cell(raptee_cov, r)});
  }
  std::cout << table.render() << '\n'
            << "rounds to full coverage:  Brahms=" << brahms_cov.size()
            << "  RAPTEE=" << raptee_cov.size() << '\n';
  return 0;
}
