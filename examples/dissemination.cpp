// Dissemination example — the motivating application class of the paper's
// introduction: epidemic broadcast on top of the peer-sampling service.
//
// A converged overlay's views form a directed graph; a source then gossips
// a message epidemically (each infected correct node forwards to `fanout`
// random view entries per round; Byzantine nodes swallow messages). The
// cleaner the views, the fewer forwards are wasted on the adversary — so
// RAPTEE-built views should reach full coverage in fewer rounds than
// Brahms-built views under the same attack.
//
//   ./build/examples/dissemination [N] [f%] [t%] [fanout]
#include <cstdlib>
#include <iostream>
#include <queue>

#include "metrics/experiment.hpp"
#include "metrics/report.hpp"
#include "adversary/byzantine.hpp"
#include "raptee.hpp"

namespace {

using namespace raptee;

/// Runs one RAPTEE/Brahms experiment and returns an engine-sized adjacency
/// snapshot (views of correct nodes) plus the kind map.
struct Overlay {
  std::vector<std::vector<NodeId>> views;
  std::vector<NodeKind> kinds;
};

Overlay build_overlay(std::size_t n, double f, double t, std::uint64_t seed) {
  core::NodeFactory factory(seed, brahms::AuthMode::kFingerprint);
  sim::Engine engine({seed});

  brahms::BrahmsConfig brahms_config;
  brahms_config.params.l1 = 24;
  brahms_config.params.l2 = 24;
  core::RapteeConfig raptee_config;
  raptee_config.brahms = brahms_config;
  raptee_config.eviction = core::EvictionSpec::adaptive();

  const auto n_byz = static_cast<std::uint32_t>(f * n);
  const auto n_trusted = static_cast<std::uint32_t>(t * n);
  std::vector<NodeId> byz_ids, correct_ids;
  Rng layout(seed);
  std::vector<NodeKind> kinds(n, NodeKind::kHonest);
  for (std::uint32_t i = 0; i < n_byz; ++i) kinds[i] = NodeKind::kByzantine;
  for (std::uint32_t i = n_byz; i < n_byz + n_trusted; ++i) kinds[i] = NodeKind::kTrusted;
  layout.shuffle(kinds);
  for (std::uint32_t i = 0; i < n; ++i) {
    (kinds[i] == NodeKind::kByzantine ? byz_ids : correct_ids).emplace_back(i);
  }

  std::shared_ptr<adversary::Coordinator> coordinator;
  if (!byz_ids.empty()) {
    adversary::AttackConfig attack;
    attack.push_budget_per_member = brahms_config.params.push_slice();
    attack.pull_fanout = brahms_config.params.pull_slice();
    attack.advertised_view_size = brahms_config.params.l1;
    coordinator = std::make_shared<adversary::Coordinator>(byz_ids, correct_ids, attack,
                                                           seed ^ 0xA77ACull);
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId id{i};
    switch (kinds[i]) {
      case NodeKind::kByzantine:
        engine.add_node(std::make_unique<adversary::ByzantineNode>(id, coordinator, seed + i),
                        kinds[i]);
        break;
      case NodeKind::kTrusted:
        engine.add_node(factory.make_trusted(id, raptee_config), kinds[i]);
        break;
      default:
        engine.add_node(factory.make_honest(id, brahms_config), kinds[i]);
    }
  }
  engine.bootstrap_uniform(brahms_config.params.l1);
  engine.run(60);

  Overlay overlay;
  overlay.kinds = kinds;
  overlay.views.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (kinds[i] != NodeKind::kByzantine) {
      overlay.views[i] = engine.node(NodeId{i}).current_view();
    }
  }
  return overlay;
}

/// Epidemic rounds to reach full correct coverage (capped at 50).
std::vector<double> spread(const Overlay& overlay, std::size_t fanout,
                           std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = overlay.views.size();
  std::vector<bool> infected(n, false);
  std::size_t correct_total = 0, correct_infected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (overlay.kinds[i] != NodeKind::kByzantine) ++correct_total;
  }
  // Source: the first correct node.
  for (std::size_t i = 0; i < n; ++i) {
    if (overlay.kinds[i] != NodeKind::kByzantine) {
      infected[i] = true;
      ++correct_infected;
      break;
    }
  }
  std::vector<double> coverage;
  for (int round = 0; round < 50 && correct_infected < correct_total; ++round) {
    std::vector<std::size_t> newly;
    for (std::size_t i = 0; i < n; ++i) {
      if (!infected[i] || overlay.kinds[i] == NodeKind::kByzantine) continue;
      const auto& view = overlay.views[i];
      if (view.empty()) continue;
      for (std::size_t k = 0; k < fanout; ++k) {
        const NodeId target = view[static_cast<std::size_t>(rng.below(view.size()))];
        if (!infected[target.value]) newly.push_back(target.value);
      }
    }
    for (std::size_t idx : newly) {
      if (!infected[idx]) {
        infected[idx] = true;
        if (overlay.kinds[idx] != NodeKind::kByzantine) ++correct_infected;
      }
    }
    coverage.push_back(static_cast<double>(correct_infected) /
                       static_cast<double>(correct_total));
  }
  return coverage;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 300;
  const double f = argc > 2 ? std::atof(argv[2]) / 100.0 : 0.20;
  const double t = argc > 3 ? std::atof(argv[3]) / 100.0 : 0.10;
  const std::size_t fanout = argc > 4 ? static_cast<std::size_t>(std::atoi(argv[4])) : 2;

  std::cout << "Epidemic dissemination over converged overlays (N=" << n
            << ", f=" << f * 100 << "%, t=" << t * 100 << "%, fanout=" << fanout
            << ")\n\n";

  const Overlay brahms_overlay = build_overlay(n, f, 0.0, 99);
  const Overlay raptee_overlay = build_overlay(n, f, t, 99);
  const auto brahms_cov = spread(brahms_overlay, fanout, 7);
  const auto raptee_cov = spread(raptee_overlay, fanout, 7);

  metrics::TablePrinter table({"round", "Brahms coverage %", "RAPTEE coverage %"});
  const std::size_t rounds = std::max(brahms_cov.size(), raptee_cov.size());
  for (std::size_t r = 0; r < rounds; ++r) {
    auto cell = [](const std::vector<double>& cov, std::size_t i) {
      return i < cov.size() ? metrics::fmt(100.0 * cov[i]) : std::string("100.0");
    };
    table.add_row({std::to_string(r + 1), cell(brahms_cov, r), cell(raptee_cov, r)});
  }
  std::cout << table.render() << '\n'
            << "rounds to full coverage:  Brahms=" << brahms_cov.size()
            << "  RAPTEE=" << raptee_cov.size() << '\n';
  return 0;
}
