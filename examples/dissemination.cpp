// Dissemination example — the motivating application class of the paper's
// introduction: epidemic broadcast on top of the peer-sampling service,
// now measured in real (virtual) time on the event scheduler.
//
// For each latency distribution (lan / wan / tail, see evt::LatencySpec),
// the overlays are built in event-driven mode: every push and pull leg
// travels with sampled per-link latency against a fixed round deadline, so
// membership discovery completes at an actual virtual timestamp — the
// dissemination_time_ms the round-driven simulator could only count in
// abstract rounds. A converged overlay's views then form a directed graph;
// a source gossips a message epidemically (each infected correct node
// forwards to `fanout` random view entries per round; Byzantine nodes
// swallow messages), and the broadcast time is denominated in the same
// round interval. The cleaner the views, the fewer forwards are wasted on
// the adversary — so RAPTEE-built views should reach full coverage faster
// than Brahms-built views under the same attack, at every latency model.
//
//   ./build/examples/dissemination [N] [f%] [t%] [fanout]
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "metrics/report.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"

namespace {

using namespace raptee;

/// Virtual round deadline shared by overlay construction and the epidemic
/// phase, so both timelines are denominated in the same unit.
constexpr std::uint64_t kIntervalMs = 1000;

/// Adjacency snapshot (views of correct nodes), the kind map, and the
/// event-mode outcome of the run that built it.
struct Overlay {
  std::vector<std::vector<NodeId>> views;
  std::vector<NodeKind> kinds;
  metrics::EvtOutcome evt;
};

/// Captures the converged overlay + event telemetry when the run ends.
class OverlaySnapshotter final : public scenario::IScenarioObserver {
 public:
  void on_round(const scenario::RoundSnapshot&, const sim::Engine&) override {}

  void on_run_end(const metrics::ExperimentResult& result,
                  const sim::Engine& engine) override {
    overlay.evt = result.evt;
    overlay.kinds = engine.kinds();
    overlay.views.resize(engine.size());
    for (std::uint32_t i = 0; i < engine.size(); ++i) {
      if (overlay.kinds[i] != NodeKind::kByzantine) {
        overlay.views[i] = engine.node(NodeId{i}).current_view();
      }
    }
  }

  Overlay overlay;
};

Overlay build_overlay(std::size_t n, double f, double t, const std::string& latency,
                      std::uint64_t seed) {
  OverlaySnapshotter snapshotter;
  const auto spec = scenario::ScenarioSpec()
                        .population(n)
                        .adversary(f)
                        .trusted(t)
                        .view_size(24)
                        .eviction(core::EvictionSpec::adaptive())
                        .rounds(60)
                        .latency(latency)
                        .round_interval_ms(kIntervalMs)
                        .seed(seed);
  (void)scenario::Runner().run(spec, &snapshotter);
  return std::move(snapshotter.overlay);
}

/// Epidemic rounds to reach full correct coverage (capped at 50).
std::size_t spread_rounds(const Overlay& overlay, std::size_t fanout,
                          std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = overlay.views.size();
  std::vector<bool> infected(n, false);
  std::size_t correct_total = 0, correct_infected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (overlay.kinds[i] != NodeKind::kByzantine) ++correct_total;
  }
  // Source: the first correct node.
  for (std::size_t i = 0; i < n; ++i) {
    if (overlay.kinds[i] != NodeKind::kByzantine) {
      infected[i] = true;
      ++correct_infected;
      break;
    }
  }
  std::size_t rounds = 0;
  while (rounds < 50 && correct_infected < correct_total) {
    std::vector<std::size_t> newly;
    for (std::size_t i = 0; i < n; ++i) {
      if (!infected[i] || overlay.kinds[i] == NodeKind::kByzantine) continue;
      const auto& view = overlay.views[i];
      if (view.empty()) continue;
      for (std::size_t k = 0; k < fanout; ++k) {
        const NodeId target = view[static_cast<std::size_t>(rng.below(view.size()))];
        if (!infected[target.value]) newly.push_back(target.value);
      }
    }
    for (std::size_t idx : newly) {
      if (!infected[idx]) {
        infected[idx] = true;
        if (overlay.kinds[idx] != NodeKind::kByzantine) ++correct_infected;
      }
    }
    ++rounds;
  }
  return rounds;
}

std::string ms_or_dash(std::uint64_t ms) {
  return ms == 0 ? std::string("-") : std::to_string(ms);
}

[[noreturn]] void usage_exit(const char* error) {
  std::cerr << "error: " << error << "\n"
            << "usage: dissemination [N] [f%] [t%] [fanout]\n"
            << "  N       population size, 8..1000000 (default 300)\n"
            << "  f%      Byzantine percent, 0..99 (default 20)\n"
            << "  t%      trusted percent, 0..100 (default 10)\n"
            << "  fanout  forwards per infected node per round, 1..64 (default 2)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 300;
  double f = 0.20;
  double t = 0.10;
  std::size_t fanout = 2;
  try {
    if (argc > 1) {
      n = static_cast<std::size_t>(scenario::parse_u64("N", argv[1], 8, 1000000));
    }
    if (argc > 2) f = scenario::parse_double("f%", argv[2], 0.0, 99.0) / 100.0;
    if (argc > 3) t = scenario::parse_double("t%", argv[3], 0.0, 100.0) / 100.0;
    if (argc > 4) {
      fanout = static_cast<std::size_t>(scenario::parse_u64("fanout", argv[4], 1, 64));
    }
  } catch (const std::invalid_argument& error) {
    usage_exit(error.what());
  }

  std::cout << "Epidemic dissemination over event-driven overlays (N=" << n
            << ", f=" << f * 100 << "%, t=" << t * 100 << "%, fanout=" << fanout
            << ", round interval " << kIntervalMs << " ms)\n\n";

  metrics::TablePrinter table({"latency", "discovery ms (Brahms)",
                               "discovery ms (RAPTEE)", "broadcast ms (Brahms)",
                               "broadcast ms (RAPTEE)"});
  for (const char* latency : {"lan", "wan", "tail"}) {
    const Overlay brahms_overlay = build_overlay(n, f, 0.0, latency, 99);
    const Overlay raptee_overlay = build_overlay(n, f, t, latency, 99);
    const std::size_t brahms_rounds = spread_rounds(brahms_overlay, fanout, 7);
    const std::size_t raptee_rounds = spread_rounds(raptee_overlay, fanout, 7);
    table.add_row({latency, ms_or_dash(brahms_overlay.evt.dissemination_time_ms),
                   ms_or_dash(raptee_overlay.evt.dissemination_time_ms),
                   std::to_string(brahms_rounds * kIntervalMs),
                   std::to_string(raptee_rounds * kIntervalMs)});
  }
  std::cout << table.render() << '\n'
            << "discovery = virtual time until every correct node knows the full\n"
            << "membership ('-' when not reached in 60 rounds); broadcast = epidemic\n"
            << "rounds to full correct coverage, denominated in the round interval\n";
  return 0;
}
