// Churn example — dynamic membership, the bread and butter of a deployed
// peer-sampling service: a fifth of the network crashes at round 25 and
// rejoins 30 rounds later. A streaming IScenarioObserver watches the
// service flush dead entries from views (Brahms' sampler validation + view
// renewal) and re-discover the rejoined nodes — no custom simulation loop
// required.
//
//   ./build/examples/churn_recovery [N] [churn%]
#include <cstdlib>
#include <iostream>
#include <stdexcept>

#include "brahms/node.hpp"
#include "metrics/report.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"

namespace {

using namespace raptee;

/// Scans every few rounds: how many view / sample-list entries of alive
/// nodes point at dead peers?
class DeadEntryScanner final : public scenario::IScenarioObserver {
 public:
  explicit DeadEntryScanner(metrics::TablePrinter& table) : table_(table) {}

  void on_round(const scenario::RoundSnapshot& snapshot,
                const sim::Engine& engine) override {
    const Round r = snapshot.round;
    if (r % 5 == 4 || r == 25 || r == 26 || r == 55 || r == 56) scan(r, engine);
  }

 private:
  void scan(Round round, const sim::Engine& engine) {
    std::size_t view_total = 0, view_dead = 0, sample_total = 0, sample_dead = 0;
    std::size_t alive = 0;
    for (std::uint32_t i = 0; i < engine.size(); ++i) {
      const NodeId id{i};
      if (!engine.is_alive(id)) continue;
      ++alive;
      for (NodeId peer : engine.node(id).current_view()) {
        ++view_total;
        if (!engine.is_alive(peer)) ++view_dead;
      }
      if (const auto* node = dynamic_cast<const brahms::BrahmsNode*>(&engine.node(id))) {
        for (NodeId peer : node->sample_list()) {
          ++sample_total;
          if (!engine.is_alive(peer)) ++sample_dead;
        }
      }
    }
    table_.add_row(
        {std::to_string(round), std::to_string(alive),
         metrics::fmt(view_total ? 100.0 * view_dead / view_total : 0.0),
         metrics::fmt(sample_total ? 100.0 * sample_dead / sample_total : 0.0)});
  }

  metrics::TablePrinter& table_;
};

[[noreturn]] void usage_exit(const char* error) {
  std::cerr << "error: " << error << "\n"
            << "usage: churn_recovery [N] [churn%]\n"
            << "  N       population size, 8..1000000 (default 250)\n"
            << "  churn%  crashing fraction at round 25, 0..100 (default 20)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 250;
  double churn = 0.20;
  try {
    if (argc > 1) {
      n = static_cast<std::size_t>(scenario::parse_u64("N", argv[1], 8, 1000000));
    }
    if (argc > 2) churn = scenario::parse_double("churn%", argv[2], 0.0, 100.0) / 100.0;
  } catch (const std::invalid_argument& error) {
    usage_exit(error.what());
  }

  std::cout << "Churn recovery: " << churn * 100 << "% of " << n
            << " nodes crash at round 25 and rejoin at round 55\n\n";

  // One crash burst: in [25, 26) a `churn` fraction of the population
  // leaves; everyone rejoins after a 30-round downtime.
  metrics::ChurnSpec burst;
  burst.enabled = true;
  burst.from = 25;
  burst.until = 26;
  burst.rate_per_round = churn;
  burst.downtime = 30;
  burst.rejoin = true;

  const auto spec = scenario::ScenarioSpec()
                        .population(n)
                        .adversary(0.0)
                        .view_size(24)
                        .rounds(90)
                        .churn(burst)
                        .seed(5);

  metrics::TablePrinter table({"round", "alive", "dead entries in live views %",
                               "dead entries in sample lists %"});
  DeadEntryScanner scanner(table);
  const auto result = scenario::Runner().run(spec, &scanner);

  std::cout << table.render() << '\n'
            << "Dead view entries spike at the crash, then the history sample\n"
               "and sampler validation wash them out; rejoining nodes are\n"
               "re-discovered within a handful of rounds "
               "(min knowledge at the end: "
            << metrics::fmt(100.0 * result.min_knowledge_series.back()) << "%).\n";
  return 0;
}
