// Churn example — dynamic membership, the bread and butter of a deployed
// peer-sampling service: a fifth of the network crashes mid-run and later
// rejoins. Watch the service flush dead entries from views (Brahms' sampler
// validation + view renewal) and re-discover the rejoined nodes.
//
//   ./build/examples/churn_recovery [N] [churn%]
#include <cstdlib>
#include <iostream>

#include "metrics/report.hpp"
#include "raptee.hpp"

int main(int argc, char** argv) {
  using namespace raptee;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 250;
  const double churn = argc > 2 ? std::atof(argv[2]) / 100.0 : 0.20;

  std::cout << "Churn recovery: " << churn * 100 << "% of " << n
            << " nodes crash at round 25 and rejoin at round 55\n\n";

  core::NodeFactory factory(5, brahms::AuthMode::kFingerprint);
  sim::Engine engine({5});
  brahms::BrahmsConfig config;
  config.params.l1 = 24;
  config.params.l2 = 24;
  config.sampler_validation_period = 5;

  std::vector<brahms::BrahmsNode*> nodes;
  for (std::uint32_t i = 0; i < n; ++i) {
    auto node = factory.make_honest(NodeId{i}, config, engine.aliveness_probe());
    nodes.push_back(node.get());
    engine.add_node(std::move(node), NodeKind::kHonest);
  }
  engine.bootstrap_uniform(config.params.l1);

  // Schedule: nodes 0..churn*n-1 leave at 25, rejoin at 55.
  sim::ChurnSchedule schedule;
  const auto n_churn = static_cast<std::uint32_t>(churn * n);
  for (std::uint32_t i = 0; i < n_churn; ++i) {
    schedule.add({25, sim::ChurnEvent::Kind::kLeave, NodeId{i}});
    schedule.add({55, sim::ChurnEvent::Kind::kRejoin, NodeId{i}});
  }

  metrics::TablePrinter table({"round", "alive", "dead entries in live views %",
                               "dead entries in sample lists %"});
  auto scan = [&](Round round) {
    std::size_t view_total = 0, view_dead = 0, sample_total = 0, sample_dead = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!engine.is_alive(NodeId{i})) continue;
      for (NodeId id : nodes[i]->current_view()) {
        ++view_total;
        if (!engine.is_alive(id)) ++view_dead;
      }
      for (NodeId id : nodes[i]->sample_list()) {
        ++sample_total;
        if (!engine.is_alive(id)) ++sample_dead;
      }
    }
    table.add_row(
        {std::to_string(round), std::to_string(engine.alive_ids().size()),
         metrics::fmt(view_total ? 100.0 * view_dead / view_total : 0.0),
         metrics::fmt(sample_total ? 100.0 * sample_dead / sample_total : 0.0)});
  };

  for (Round r = 0; r < 90; ++r) {
    schedule.apply(engine, config.params.l1);
    engine.step();
    if (r % 5 == 4 || r == 25 || r == 26 || r == 55 || r == 56) scan(r);
  }

  std::cout << table.render() << '\n'
            << "Dead view entries spike at the crash, then the history sample\n"
               "and sampler validation wash them out; rejoining nodes are\n"
               "re-discovered within a handful of rounds.\n";
  return 0;
}
