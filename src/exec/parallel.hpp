// Parallel algorithms over exec::ThreadPool.
//
// parallel_map is the workhorse of the scenario Runner: every repetition /
// batch cell / grid cell is one independent task whose result lands in its
// own output slot, so the map over a pool of any width is bit-identical to
// the sequential loop (same results, same order) — scheduling only decides
// wall-clock, never bytes.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"

namespace raptee::exec {

/// Maps fn over [0, n) on the pool; out[i] = fn(i). The result type must be
/// default-constructible (slots are pre-built, then filled by index).
/// `grain` as in ThreadPool::parallel_for; the default of 1 suits the
/// coarse tasks (whole simulation runs) this is built for.
template <typename F>
[[nodiscard]] auto parallel_map(ThreadPool& pool, std::size_t n, F&& fn,
                                std::size_t grain = 1)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  using Result = std::decay_t<decltype(fn(std::size_t{0}))>;
  std::vector<Result> out(n);
  pool.parallel_for(
      n, [&out, &fn](std::size_t i) { out[i] = fn(i); }, grain);
  return out;
}

/// One-shot convenience: builds a pool of resolve_threads(threads, n) and
/// maps over it. `threads` follows the knob convention (0 = hardware
/// concurrency, 1 = inline sequential).
template <typename F>
[[nodiscard]] auto parallel_map(std::size_t threads, std::size_t n, F&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  ThreadPool pool(resolve_threads(threads, n));
  return parallel_map(pool, n, std::forward<F>(fn));
}

}  // namespace raptee::exec
