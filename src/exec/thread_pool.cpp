#include "exec/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace raptee::exec {

std::size_t hardware_threads() {
  const unsigned hint = std::thread::hardware_concurrency();
  return hint == 0 ? 1 : static_cast<std::size_t>(hint);
}

std::size_t resolve_threads(std::size_t requested, std::size_t items) {
  std::size_t threads = requested == 0 ? hardware_threads() : requested;
  if (items > 0 && threads > items) threads = items;
  return threads == 0 ? 1 : threads;
}

namespace {

/// One blocking parallel loop in flight. Chunks decrement `pending`; the
/// caller sleeps on `done` once it runs out of stealable work. `pending`
/// and `error` are guarded by `mutex`; the final decrement notifies while
/// still holding it, so once the caller observes pending == 0 no worker
/// touches the Job again and the caller may safely destroy it.
struct Job {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t pending = 0;
  std::mutex mutex;
  std::condition_variable done;
  std::exception_ptr error;  // first failure wins
};

/// A contiguous slice [begin, end) of a job's index space.
struct Chunk {
  Job* job = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
};

}  // namespace

struct ThreadPool::Impl {
  /// Per-worker deque: the owner pushes/pops at the back, thieves (other
  /// workers and the blocked caller) take from the front — the classic
  /// work-stealing discipline, here with a plain mutex per deque (the
  /// simulator's tasks are far too coarse for lock contention to matter,
  /// and mutexes keep the pool trivially ThreadSanitizer-clean).
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Chunk> chunks;
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::vector<std::thread> workers;

  std::mutex wake_mutex;
  std::condition_variable wake;
  // Relaxed everywhere: `queued` is only a wake hint — the chunk payload
  // itself is handed off under each deque's mutex, which provides ordering.
  std::atomic<std::size_t> queued{0};  // chunks submitted, not yet claimed
  bool stop = false;                   // guarded by wake_mutex

  bool try_claim(std::size_t start_hint, Chunk& out) {
    const std::size_t count = queues.size();
    for (std::size_t k = 0; k < count; ++k) {
      WorkerQueue& victim = *queues[(start_hint + k) % count];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (victim.chunks.empty()) continue;
      out = victim.chunks.front();
      victim.chunks.pop_front();
      queued.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Owner-side claim: back of the own deque first, then steal.
  bool try_claim_worker(std::size_t self, Chunk& out) {
    {
      WorkerQueue& own = *queues[self];
      std::lock_guard<std::mutex> lock(own.mutex);
      if (!own.chunks.empty()) {
        out = own.chunks.back();
        own.chunks.pop_back();
        queued.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    Chunk stolen;
    if (try_claim(self + 1, stolen)) {
      out = stolen;
      return true;
    }
    return false;
  }

  static void run_chunk(const Chunk& chunk) {
    Job& job = *chunk.job;
    std::exception_ptr error;
    try {
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) (*job.body)(i);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(job.mutex);
    if (error && !job.error) job.error = error;
    if (--job.pending == 0) job.done.notify_all();
  }

  void worker_loop(std::size_t self) {
    for (;;) {
      Chunk chunk;
      if (try_claim_worker(self, chunk)) {
        run_chunk(chunk);
        continue;
      }
      std::unique_lock<std::mutex> lock(wake_mutex);
      wake.wait(lock, [this] {
        return stop || queued.load(std::memory_order_relaxed) > 0;
      });
      if (stop && queued.load(std::memory_order_relaxed) == 0) return;
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  const std::size_t width = threads == 0 ? hardware_threads() : threads;
  // The caller participates in every loop, so `width` includes it.
  const std::size_t worker_count = width > 1 ? width - 1 : 0;
  impl_->queues.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    impl_->queues.push_back(std::make_unique<Impl::WorkerQueue>());
  }
  impl_->workers.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    impl_->workers.emplace_back([this, i] { impl_->worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->wake_mutex);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
}

std::size_t ThreadPool::size() const { return impl_->workers.size() + 1; }

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  RAPTEE_REQUIRE(body != nullptr, "parallel_for requires a body");
  if (n == 0) return;
  if (impl_->workers.empty()) {
    // Inline sequential path (threads == 1): no queues, no synchronization
    // — byte-for-byte the legacy loop.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  if (grain == 0) grain = std::max<std::size_t>(1, n / (size() * 4));
  const std::size_t chunk_count = (n + grain - 1) / grain;

  Job job;
  job.body = &body;
  job.pending = chunk_count;

  // Publish the chunk count BEFORE the chunks themselves: a worker that
  // wins the race sees queued > 0 with nothing claimable yet and simply
  // retries, whereas the opposite order would let an early claim wrap
  // `queued` below zero and keep sleeping workers spinning on a stale
  // positive count until the add lands.
  {
    std::lock_guard<std::mutex> lock(impl_->wake_mutex);
    impl_->queued.fetch_add(chunk_count, std::memory_order_relaxed);
  }
  // Round-robin the chunks over the worker deques; the caller then joins
  // the loop as a thief until the job drains.
  const std::size_t queue_count = impl_->queues.size();
  for (std::size_t c = 0; c < chunk_count; ++c) {
    Chunk chunk{&job, c * grain, std::min(n, (c + 1) * grain)};
    Impl::WorkerQueue& target = *impl_->queues[c % queue_count];
    std::lock_guard<std::mutex> lock(target.mutex);
    target.chunks.push_back(chunk);
  }
  impl_->wake.notify_all();

  for (;;) {
    Chunk chunk;
    if (impl_->try_claim(0, chunk)) {
      Impl::run_chunk(chunk);
      continue;
    }
    // Nothing left to steal: the remaining chunks (if any) are running on
    // workers — sleep until the last one signals under the job mutex.
    std::unique_lock<std::mutex> lock(job.mutex);
    job.done.wait(lock, [&job] { return job.pending == 0; });
    break;
  }

  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace raptee::exec
