// exec::ThreadPool — deterministic parallel execution for scenario fan-out.
//
// A dependency-free work-stealing thread pool: each worker owns a deque,
// pushes and pops at the back (hot, cache-friendly) and steals from the
// front of a victim's deque when its own runs dry. Parallel loops block the
// caller, but the caller *participates* — it executes and steals tasks
// while waiting — so nested parallel_for calls (a sharded engine phase
// inside a parallel grid cell) cannot deadlock and never leave a core
// idle.
//
// Determinism contract: parallel_for(n, body) invokes body(i) exactly once
// for every i in [0, n), with no two invocations sharing an index. Which
// thread runs which index is scheduling-dependent, so bodies must write
// only to per-index state (slot vectors, per-task Rng streams — see
// Rng::fork/Rng::split in common/rng.hpp). Under that discipline a
// parallel map over independent tasks is bit-identical to the sequential
// loop, which the scenario test-suite asserts end to end.
//
// threads == 1 builds no workers at all: loops run inline on the caller,
// byte-for-byte the legacy sequential path.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace raptee::exec {

/// std::thread::hardware_concurrency with a floor of 1 (the standard allows
/// a 0 return when the hint is unavailable).
[[nodiscard]] std::size_t hardware_threads();

/// Resolves a thread-count knob: 0 = hardware concurrency, otherwise the
/// requested count; the result is additionally capped by `items` (never
/// spin up more workers than there are tasks) and floored at 1.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested, std::size_t items);

class ThreadPool {
 public:
  /// `threads` — total execution width including the calling thread;
  /// 0 = hardware concurrency, 1 = fully inline (no workers spawned).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution width: worker threads + the participating caller.
  [[nodiscard]] std::size_t size() const;

  /// Invokes body(i) once per i in [0, n), distributed over the pool in
  /// contiguous chunks of `grain` indices (0 = auto: ~4 chunks per thread).
  /// Blocks until every index completed; the caller executes chunks too.
  /// The first exception thrown by any body is rethrown on the caller
  /// after the loop has drained.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    std::size_t grain = 0);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace raptee::exec
