// Umbrella header for raptee::exec — the deterministic parallel execution
// subsystem.
//
// Layers (each usable on its own):
//   thread_pool.hpp — work-stealing ThreadPool with a participating caller
//   parallel.hpp    — parallel_map over a pool (index-sliced, bit-stable)
//
// Everything multi-core in the repo rides on these two files: the scenario
// Runner fans repetitions / batch cells / grid cells out as one task per
// run, and sim::Engine's opt-in sharded push-generation phase partitions
// alive nodes across workers. Determinism is preserved by construction:
// tasks own their output slots and their own Rng streams (Rng::fork /
// Rng::split, common/rng.hpp), so thread count and scheduling decide
// wall-clock only — never bytes.
#pragma once

#include "exec/parallel.hpp"      // IWYU pragma: export
#include "exec/thread_pool.hpp"   // IWYU pragma: export
