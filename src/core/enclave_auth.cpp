#include "core/enclave_auth.hpp"

#include "common/assert.hpp"

namespace raptee::core {

using brahms::AuthMode;
using brahms::auth_detail::oracle_extract;
using brahms::auth_detail::oracle_proof;
using brahms::auth_detail::tokens_equal;

EnclaveAuthenticator::EnclaveAuthenticator(AuthMode mode, sgx::Enclave& enclave,
                                           crypto::Drbg drbg)
    : mode_(mode), enclave_(enclave), drbg_(std::move(drbg)) {
  RAPTEE_REQUIRE(enclave_.has_group_key(),
                 "EnclaveAuthenticator requires a provisioned enclave");
}

crypto::AuthChallenge EnclaveAuthenticator::make_challenge() {
  crypto::AuthChallenge challenge;
  drbg_.fill(challenge.r_a.data(), challenge.r_a.size());
  return challenge;
}

crypto::AuthResponse EnclaveAuthenticator::make_response(
    const crypto::AuthChallenge& challenge) {
  crypto::AuthResponse response;
  drbg_.fill(response.r_b.data(), response.r_b.size());
  switch (mode_) {
    case AuthMode::kFull:
      response.proof_b = enclave_.auth_make_proof(challenge.r_a, response.r_b);
      break;
    case AuthMode::kFingerprint:
      response.proof_b = enclave_.auth_mac_proof("resp", challenge.r_a, response.r_b);
      break;
    case AuthMode::kOracle:
      response.proof_b = oracle_proof(enclave_.group_fingerprint());
      break;
  }
  return response;
}

bool EnclaveAuthenticator::verify_response(const crypto::AuthChallenge& challenge,
                                           const crypto::AuthResponse& response,
                                           crypto::AuthConfirm* confirm_out) {
  bool trusted = false;
  crypto::AuthConfirm confirm;
  switch (mode_) {
    case AuthMode::kFull:
      trusted = enclave_.auth_check_proof(challenge.r_a, response.r_b, response.proof_b);
      confirm.proof_a = enclave_.auth_make_proof(response.r_b, challenge.r_a);
      break;
    case AuthMode::kFingerprint:
      trusted = tokens_equal(
          response.proof_b, enclave_.auth_mac_proof("resp", challenge.r_a, response.r_b));
      confirm.proof_a = enclave_.auth_mac_proof("init", response.r_b, challenge.r_a);
      break;
    case AuthMode::kOracle:
      trusted = oracle_extract(response.proof_b) == enclave_.group_fingerprint();
      confirm.proof_a = oracle_proof(enclave_.group_fingerprint());
      break;
  }
  if (confirm_out != nullptr) *confirm_out = confirm;
  return trusted;
}

bool EnclaveAuthenticator::verify_confirm(const crypto::AuthChallenge& challenge,
                                          const crypto::AuthResponse& response,
                                          const crypto::AuthConfirm& confirm) {
  switch (mode_) {
    case AuthMode::kFull:
      return enclave_.auth_check_proof(response.r_b, challenge.r_a, confirm.proof_a);
    case AuthMode::kFingerprint:
      return tokens_equal(confirm.proof_a,
                          enclave_.auth_mac_proof("init", response.r_b, challenge.r_a));
    case AuthMode::kOracle:
      return oracle_extract(confirm.proof_a) == enclave_.group_fingerprint();
  }
  return false;
}

}  // namespace raptee::core
