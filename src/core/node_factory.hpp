// NodeFactory — assembles protocol participants with correctly wired
// key material:
//   * honest untrusted nodes: fresh random secret key (KeyedAuthenticator);
//   * trusted nodes: a genuine enclave, attested and provisioned by the
//     shared AttestationService, with an EnclaveAuthenticator on top.
//
// The factory owns the attestation service and the master key-generation
// DRBG, so a whole experiment population shares one consistent trust root.
#pragma once

#include <functional>
#include <memory>

#include "brahms/node.hpp"
#include "core/raptee_node.hpp"
#include "sgx/attestation.hpp"

namespace raptee::core {

class NodeFactory {
 public:
  NodeFactory(std::uint64_t seed, brahms::AuthMode auth_mode,
              const sgx::CycleModel* cycle_model = nullptr);

  /// An honest untrusted node (modified Brahms with its own random key).
  [[nodiscard]] std::unique_ptr<brahms::BrahmsNode> make_honest(
      NodeId id, const brahms::BrahmsConfig& config,
      std::function<bool(NodeId)> alive_probe = {});

  /// A trusted node: instantiates the genuine enclave, runs attestation,
  /// and wires the enclave-backed authenticator.
  [[nodiscard]] std::unique_ptr<RapteeNode> make_trusted(
      NodeId id, const RapteeConfig& config,
      std::function<bool(NodeId)> alive_probe = {});

  [[nodiscard]] sgx::AttestationService& attestation() { return attestation_; }
  [[nodiscard]] brahms::AuthMode auth_mode() const { return auth_mode_; }

 private:
  brahms::AuthMode auth_mode_;
  const sgx::CycleModel* cycle_model_;
  sgx::AttestationService attestation_;
  crypto::Drbg key_drbg_;
  Rng rng_;
};

}  // namespace raptee::core
