#include "core/raptee_node.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace raptee::core {

RapteeNode::RapteeNode(NodeId self, RapteeConfig config,
                       std::unique_ptr<brahms::IAuthenticator> auth,
                       std::unique_ptr<sgx::Enclave> enclave, Rng rng,
                       std::function<bool(NodeId)> alive_probe)
    : BrahmsNode(self, config.brahms, std::move(auth), rng, std::move(alive_probe)),
      config_(config),
      enclave_(std::move(enclave)),
      trusted_store_(config.trusted_store_capacity) {
  RAPTEE_REQUIRE(enclave_ != nullptr, "RapteeNode requires an enclave");
  RAPTEE_REQUIRE(enclave_->has_group_key(),
                 "RapteeNode requires an attested (provisioned) enclave");
  config_.eviction.validate();
  if (config_.stream_unbias) {
    unbiaser_.emplace(*config_.stream_unbias, BrahmsNode::rng());
  }
}

void RapteeNode::begin_round(Round r) {
  BrahmsNode::begin_round(r);
  swap_received_.clear();
  pending_swap_ = {};
  trusted_store_.next_round();
  if (unbiaser_) unbiaser_->next_round();
}

void RapteeNode::pull_targets(std::vector<NodeId>& out) {
  BrahmsNode::pull_targets(out);
  if (config_.trusted_overlay) {
    // D1 extension: one standing exchange with the oldest known trusted
    // peer (framework tail selection over the trusted sub-overlay).
    if (const auto peer = trusted_store_.oldest()) out.push_back(*peer);
  }
}

std::optional<std::vector<NodeId>> RapteeNode::make_swap_offer(NodeId peer) {
  trusted_store_.note_trusted(peer);
  std::vector<NodeId> half = enclave_->select_swap_half(view().ids());
  pending_swap_.active = true;
  pending_swap_.peer = peer;
  pending_swap_.sent = half;
  // Framework criterion 2: the initiator inserts a link to itself in the
  // buffer it sends.
  half.push_back(id());
  return half;
}

std::optional<std::vector<NodeId>> RapteeNode::accept_swap_offer(
    NodeId peer, const std::vector<NodeId>& offer) {
  trusted_store_.note_trusted(peer);
  const std::vector<NodeId> my_half = enclave_->select_swap_half(view().ids());
  apply_swap(/*sent=*/my_half, /*received=*/offer);
  return my_half;
}

void RapteeNode::integrate_swap_reply(NodeId peer, const std::vector<NodeId>& half) {
  if (!pending_swap_.active || pending_swap_.peer != peer) return;  // stale leg
  apply_swap(/*sent=*/pending_swap_.sent, /*received=*/half);
  pending_swap_ = {};
}

void RapteeNode::apply_swap(const std::vector<NodeId>& sent,
                            const std::vector<NodeId>& received) {
  // Framework swap semantics (criterion 3): append the received half, then
  // shrink back to capacity dropping first what we sent, then random. The
  // S-rule only fires on overflow, so the view never shrinks below l1 when
  // the received half overlaps entries we already hold.
  std::vector<gossip::ViewEntry> incoming;
  incoming.reserve(received.size());
  for (NodeId id_in : received) {
    if (id_in.valid()) incoming.push_back({id_in, 0});
  }
  mutable_view().framework_merge(incoming, id(), /*h=*/0, /*s=*/sent.size(), sent,
                                 rng());
  // §IV-B second measure: swap-received IDs also join the pulled-ID list.
  swap_received_.insert(swap_received_.end(), received.begin(), received.end());
}

brahms::BrahmsNode::PulledContribution RapteeNode::process_pulled(
    const std::vector<PullRecord>& records) {
  std::size_t trusted_exchanges = 0;
  for (const auto& r : records) {
    if (r.trusted) ++trusted_exchanges;
  }
  const double trusted_ratio =
      records.empty() ? 0.0
                      : static_cast<double>(trusted_exchanges) /
                            static_cast<double>(records.size());
  const double rate = config_.eviction.rate_for(trusted_ratio);
  last_trusted_ratio_ = trusted_ratio;
  last_eviction_rate_ = rate;
  mutable_telemetry().eviction_rate = rate;

  PulledContribution out;
  // §IV-C, both prongs of the defence:
  //  * "not passing them to the BRAHMS sampling component" — the sampler
  //    stream carries trusted-sourced IDs in full, untrusted IDs filtered
  //    inside the enclave at the eviction rate;
  //  * "ignoring them during the renewal of the pulled β·l1 entries" —
  //    untrusted IDs may fill at most (1-ER) of the pulled slice; vacated
  //    slots fall to history sampling and retained entries (so a 100 % rate
  //    builds views "as if trusted nodes issued no pull requests").
  for (const auto& r : records) {
    if (r.trusted) {
      out.sampler_ids.insert(out.sampler_ids.end(), r.ids.begin(), r.ids.end());
      out.renewal_trusted.insert(out.renewal_trusted.end(), r.ids.begin(), r.ids.end());
    } else {
      const std::vector<NodeId> survivors = enclave_->filter_pulled(r.ids, rate);
      out.sampler_ids.insert(out.sampler_ids.end(), survivors.begin(), survivors.end());
      out.renewal_untrusted.insert(out.renewal_untrusted.end(), r.ids.begin(),
                                   r.ids.end());
    }
  }
  // Swap-received IDs count as trusted pulled IDs (§IV-B).
  out.sampler_ids.insert(out.sampler_ids.end(), swap_received_.begin(),
                         swap_received_.end());
  out.renewal_trusted.insert(out.renewal_trusted.end(), swap_received_.begin(),
                             swap_received_.end());
  out.untrusted_slice_cap = 1.0 - rate;
  // E1 extension: clip over-represented IDs out of the untrusted stream
  // before the renewal sampling sees their multiplicity.
  if (unbiaser_) {
    out.renewal_untrusted = unbiaser_->filter(out.renewal_untrusted);
  }
  return out;
}

void RapteeNode::after_view_update() {
  // The sample-list and dynamic-view computations of a trusted node run
  // inside the enclave: charge the Table-I cycle classes.
  enclave_->charge(sgx::FunctionClass::kSampleListComputation);
  enclave_->charge(sgx::FunctionClass::kDynamicViewComputation);
}

}  // namespace raptee::core
