// EnclaveAuthenticator: the trusted node's side of the mutual-auth
// protocol. Identical wire behaviour to brahms::KeyedAuthenticator, except
// every group-key operation is an ecall — the key material never exists
// outside the sgx::Enclave.
#pragma once

#include "brahms/auth.hpp"
#include "sgx/enclave.hpp"

namespace raptee::core {

class EnclaveAuthenticator final : public brahms::IAuthenticator {
 public:
  /// The enclave must already be provisioned (attested) — asserted.
  EnclaveAuthenticator(brahms::AuthMode mode, sgx::Enclave& enclave, crypto::Drbg drbg);

  [[nodiscard]] crypto::AuthChallenge make_challenge() override;
  [[nodiscard]] crypto::AuthResponse make_response(
      const crypto::AuthChallenge& challenge) override;
  [[nodiscard]] bool verify_response(const crypto::AuthChallenge& challenge,
                                     const crypto::AuthResponse& response,
                                     crypto::AuthConfirm* confirm_out) override;
  [[nodiscard]] bool verify_confirm(const crypto::AuthChallenge& challenge,
                                    const crypto::AuthResponse& response,
                                    const crypto::AuthConfirm& confirm) override;

 private:
  brahms::AuthMode mode_;
  sgx::Enclave& enclave_;
  crypto::Drbg drbg_;
};

}  // namespace raptee::core
