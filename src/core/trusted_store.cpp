#include "core/trusted_store.hpp"

#include <algorithm>

namespace raptee::core {

void TrustedStore::note_trusted(NodeId peer) {
  for (auto& e : peers_) {
    if (e.id == peer) {
      e.age = 0;  // freshly confirmed
      return;
    }
  }
  if (peers_.size() >= capacity_) {
    // Replace the oldest entry.
    auto victim = std::max_element(
        peers_.begin(), peers_.end(),
        [](const Entry& a, const Entry& b) { return a.age < b.age; });
    *victim = {peer, 0};
    return;
  }
  peers_.push_back({peer, 0});
}

bool TrustedStore::is_known_trusted(NodeId peer) const {
  return std::any_of(peers_.begin(), peers_.end(),
                     [peer](const Entry& e) { return e.id == peer; });
}

std::vector<NodeId> TrustedStore::peers() const {
  std::vector<NodeId> out;
  out.reserve(peers_.size());
  for (const auto& e : peers_) out.push_back(e.id);
  return out;
}

std::optional<NodeId> TrustedStore::oldest() const {
  if (peers_.empty()) return std::nullopt;
  return std::max_element(peers_.begin(), peers_.end(),
                          [](const Entry& a, const Entry& b) { return a.age < b.age; })
      ->id;
}

std::optional<NodeId> TrustedStore::random(Rng& rng) const {
  if (peers_.empty()) return std::nullopt;
  return peers_[static_cast<std::size_t>(rng.below(peers_.size()))].id;
}

void TrustedStore::next_round() {
  for (auto& e : peers_) ++e.age;
}

void TrustedStore::forget(NodeId peer) {
  peers_.erase(std::remove_if(peers_.begin(), peers_.end(),
                              [peer](const Entry& e) { return e.id == peer; }),
               peers_.end());
}

}  // namespace raptee::core
