// TrustedStore: a trusted node's memory of peers that have proven group
// membership via mutual authentication.
//
// The paper's trusted nodes "learn their mutual trusted capacity without
// revealing it to others" (§I). The store backs two things:
//   * diagnostics — how fast trusted nodes find each other;
//   * the optional trusted-overlay extension (design decision D1): one
//     extra Jelasity-style exchange per round with the oldest known
//     trusted peer, OFF by default to stay paper-faithful.
//
// Entries age like view entries and can be capped (the overlay sub-view).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace raptee::core {

class TrustedStore {
 public:
  explicit TrustedStore(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Records a successful mutual authentication with `peer`.
  void note_trusted(NodeId peer);
  [[nodiscard]] bool is_known_trusted(NodeId peer) const;
  [[nodiscard]] std::size_t size() const { return peers_.size(); }
  [[nodiscard]] std::vector<NodeId> peers() const;

  /// Oldest known trusted peer (tail selection for the overlay extension).
  [[nodiscard]] std::optional<NodeId> oldest() const;
  [[nodiscard]] std::optional<NodeId> random(Rng& rng) const;

  /// Ages all entries; call once per round.
  void next_round();

  /// Forgets a peer (e.g. repeated exchange timeouts — likely crashed).
  void forget(NodeId peer);

 private:
  struct Entry {
    NodeId id;
    std::uint32_t age = 0;
  };

  std::size_t capacity_;
  std::vector<Entry> peers_;
};

}  // namespace raptee::core
