#include "core/node_factory.hpp"

#include "common/assert.hpp"
#include "core/enclave_auth.hpp"

namespace raptee::core {

NodeFactory::NodeFactory(std::uint64_t seed, brahms::AuthMode auth_mode,
                         const sgx::CycleModel* cycle_model)
    : auth_mode_(auth_mode),
      cycle_model_(cycle_model),
      attestation_(mix64(seed, 0x61747465ull)),
      key_drbg_(mix64(seed, 0x6B657973ull), "raptee-node-keys"),
      rng_(mix64(seed, 0x666163ull)) {
  attestation_.allowlist(sgx::measure_code(sgx::raptee_enclave_identity()));
}

std::unique_ptr<brahms::BrahmsNode> NodeFactory::make_honest(
    NodeId id, const brahms::BrahmsConfig& config,
    std::function<bool(NodeId)> alive_probe) {
  auto auth = std::make_unique<brahms::KeyedAuthenticator>(
      auth_mode_, key_drbg_.generate_key(),
      key_drbg_.fork("auth-" + std::to_string(id.value)));
  return std::make_unique<brahms::BrahmsNode>(id, config, std::move(auth),
                                              rng_.fork(id.value + 1),
                                              std::move(alive_probe));
}

std::unique_ptr<RapteeNode> NodeFactory::make_trusted(
    NodeId id, const RapteeConfig& config, std::function<bool(NodeId)> alive_probe) {
  auto enclave = std::make_unique<sgx::Enclave>(
      sgx::raptee_enclave_identity(), mix64(key_drbg_.next_u64(), id.value),
      cycle_model_);
  const bool provisioned = attestation_.provision(*enclave);
  RAPTEE_ASSERT_MSG(provisioned, "genuine enclave failed attestation");
  auto auth = std::make_unique<EnclaveAuthenticator>(
      auth_mode_, *enclave, key_drbg_.fork("tauth-" + std::to_string(id.value)));
  return std::make_unique<RapteeNode>(id, config, std::move(auth), std::move(enclave),
                                      rng_.fork(id.value + 1), std::move(alive_probe));
}

}  // namespace raptee::core
