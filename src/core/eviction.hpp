// Byzantine-eviction policies (paper §IV-C).
//
// At the end of every round a trusted node ignores a fraction of the IDs
// pulled from *untrusted* peers: they reach neither the samplers nor the
// β·l1 pulled slice of the view renewal. The fraction — the eviction rate —
// is either fixed for the whole run, or adaptive per node per round:
//
//   ER(p) = clamp(1 - p, lower, upper),   p = trusted share of this
//                                         round's completed pull exchanges
//
// with the paper's bounds lower = 20 %, upper = 80 % (ER pinned at 20 %
// once p ≥ 80 %, at 80 % once p ≤ 20 %, linear in between). The bounds are
// design decision D2; bench/ablation_adaptive_bounds sweeps alternatives.
#pragma once

#include <string>

#include "common/assert.hpp"

namespace raptee::core {

struct EvictionSpec {
  enum class Kind : std::uint8_t { kNone, kFixed, kAdaptive };

  Kind kind = Kind::kNone;
  double fixed_rate = 0.0;   ///< used when kind == kFixed, in [0, 1]
  double lower = 0.2;        ///< adaptive lower bound
  double upper = 0.8;        ///< adaptive upper bound

  [[nodiscard]] static EvictionSpec none() { return {}; }
  [[nodiscard]] static EvictionSpec fixed(double rate) {
    EvictionSpec s;
    s.kind = Kind::kFixed;
    s.fixed_rate = rate;
    return s;
  }
  [[nodiscard]] static EvictionSpec adaptive(double lower = 0.2, double upper = 0.8) {
    EvictionSpec s;
    s.kind = Kind::kAdaptive;
    s.lower = lower;
    s.upper = upper;
    return s;
  }

  void validate() const {
    RAPTEE_REQUIRE(fixed_rate >= 0.0 && fixed_rate <= 1.0,
                   "fixed eviction rate out of [0,1]: " << fixed_rate);
    RAPTEE_REQUIRE(lower >= 0.0 && upper <= 1.0 && lower <= upper,
                   "adaptive bounds invalid: [" << lower << ", " << upper << "]");
  }

  /// The eviction rate for a round in which `trusted_ratio` of the node's
  /// completed pull exchanges were with trusted peers.
  [[nodiscard]] double rate_for(double trusted_ratio) const {
    switch (kind) {
      case Kind::kNone: return 0.0;
      case Kind::kFixed: return fixed_rate;
      case Kind::kAdaptive: {
        const double raw = 1.0 - trusted_ratio;
        if (raw < lower) return lower;
        if (raw > upper) return upper;
        return raw;
      }
    }
    return 0.0;
  }

  [[nodiscard]] std::string describe() const;
};

}  // namespace raptee::core
