// RapteeNode — a trusted (SGX-capable) RAPTEE participant.
//
// Extends BrahmsNode (every node runs the modified Brahms) with the three
// trusted-node behaviours of §IV:
//
//   * Mutual authentication through the enclave: the group secret is held
//     by the sgx::Enclave; all proofs are ecalls (EnclaveAuthenticator).
//
//   * Trusted communication: when a pull exchange mutually authenticates,
//     the initiator offers half of its view plus a self link (Jelasity
//     framework criteria 2–3); the responder swaps its own half back. Both
//     halves are applied to the dynamic views immediately (swap semantics)
//     AND forwarded to the Brahms pulled-ID buffer, so trusted knowledge
//     reaches the samplers and the β·l1 renewal slice.
//
//   * Byzantine eviction: at end of round, pulled IDs from *untrusted*
//     peers are filtered inside the enclave at the configured eviction
//     rate (fixed or adaptive on the round's trusted-exchange ratio).
//
// Camouflage invariant: a RapteeNode's observable traffic (push/pull
// counts, pull-answer shape, auth handshakes) is identical to an untrusted
// node's unless the counterpart itself proves group membership — the
// property the §VI identification attack tries, and mostly fails, to break.
//
// Optional extension (design decision D1, default off): a trusted overlay —
// each round the node adds one extra pull aimed at the oldest known trusted
// peer, turning discovered trusted contacts into a standing Jelasity-style
// sub-overlay.
#pragma once

#include <memory>
#include <optional>

#include "brahms/countmin.hpp"
#include "brahms/node.hpp"
#include "core/eviction.hpp"
#include "core/trusted_store.hpp"
#include "sgx/enclave.hpp"

namespace raptee::core {

struct RapteeConfig {
  brahms::BrahmsConfig brahms;
  EvictionSpec eviction = EvictionSpec::adaptive();
  bool trusted_overlay = false;          ///< D1 extension
  std::size_t trusted_store_capacity = 64;
  /// E1 extension (the paper's named future work): count-min-sketch
  /// frequency capping over the untrusted pulled stream, applied before
  /// eviction. Disabled (nullopt) in the paper-faithful configuration.
  std::optional<brahms::StreamUnbiaser::Config> stream_unbias;
};

class RapteeNode : public brahms::BrahmsNode {
 public:
  /// `enclave` must already be attested/provisioned; the authenticator must
  /// be an EnclaveAuthenticator over the same enclave (node_factory wires
  /// this up).
  RapteeNode(NodeId self, RapteeConfig config,
             std::unique_ptr<brahms::IAuthenticator> auth,
             std::unique_ptr<sgx::Enclave> enclave, Rng rng,
             std::function<bool(NodeId)> alive_probe = {});

  void begin_round(Round r) override;
  /// Scratch form only: the allocating INode::pull_targets() reaches this
  /// through BrahmsNode's delegating base implementation (un-hidden here,
  /// since declaring the one-argument override would otherwise shadow it).
  using brahms::BrahmsNode::pull_targets;
  void pull_targets(std::vector<NodeId>& out) override;

  [[nodiscard]] const sgx::Enclave& enclave() const { return *enclave_; }
  [[nodiscard]] const TrustedStore& trusted_store() const { return trusted_store_; }
  [[nodiscard]] const RapteeConfig& raptee_config() const { return config_; }
  /// Eviction rate applied in the last completed round.
  [[nodiscard]] double last_eviction_rate() const { return last_eviction_rate_; }
  /// Ratio of completed pulls that were trusted exchanges, last round.
  [[nodiscard]] double last_trusted_ratio() const { return last_trusted_ratio_; }

 protected:
  [[nodiscard]] std::optional<std::vector<NodeId>> make_swap_offer(NodeId peer) override;
  [[nodiscard]] std::optional<std::vector<NodeId>> accept_swap_offer(
      NodeId peer, const std::vector<NodeId>& offer) override;
  void integrate_swap_reply(NodeId peer, const std::vector<NodeId>& half) override;
  [[nodiscard]] PulledContribution process_pulled(
      const std::vector<PullRecord>& records) override;
  void after_view_update() override;

 private:
  /// Applies one swap side: drop `sent` from the view, insert `received`
  /// (skipping self/duplicates), trim back to capacity, and queue the
  /// received IDs for the pulled-ID buffer.
  void apply_swap(const std::vector<NodeId>& sent, const std::vector<NodeId>& received);

  RapteeConfig config_;
  std::unique_ptr<sgx::Enclave> enclave_;
  TrustedStore trusted_store_;
  std::optional<brahms::StreamUnbiaser> unbiaser_;

  /// IDs received through trusted swaps this round ("transmitted to the
  /// list of pulled IDs", §IV-B) — exempt from eviction.
  std::vector<NodeId> swap_received_;

  struct PendingSwap {
    bool active = false;
    NodeId peer;
    std::vector<NodeId> sent;
  } pending_swap_;

  double last_eviction_rate_ = 0.0;
  double last_trusted_ratio_ = 0.0;
};

}  // namespace raptee::core
