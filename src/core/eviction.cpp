#include "core/eviction.hpp"

#include <sstream>

namespace raptee::core {

std::string EvictionSpec::describe() const {
  std::ostringstream oss;
  switch (kind) {
    case Kind::kNone:
      oss << "none";
      break;
    case Kind::kFixed:
      oss << "fixed(" << static_cast<int>(fixed_rate * 100.0 + 0.5) << "%)";
      break;
    case Kind::kAdaptive:
      oss << "adaptive[" << static_cast<int>(lower * 100.0 + 0.5) << "%,"
          << static_cast<int>(upper * 100.0 + 0.5) << "%]";
      break;
  }
  return oss.str();
}

}  // namespace raptee::core
