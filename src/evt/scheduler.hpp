// Deterministic discrete-event scheduler.
//
// A binary min-heap keyed by (virtual_time_us, seq): two events at the same
// virtual instant pop in the order they were scheduled, mirroring the
// net::EventLoop timer heap's (deadline, id) tie-break — so the dispatch
// order is a pure function of the schedule calls, never of heap internals.
// The engine drains the heap serially on its coordinating thread, which is
// what makes event-mode results bit-identical across worker counts.
//
// This is simulated time: no wall clock is ever consulted (raptee-lint's
// no-wall-clock rule polices src/evt), and popping an event advances the
// virtual clock to the event's timestamp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace raptee::evt {

/// One scheduled occurrence. `kind`/`a`/`b` are caller-defined (the engine
/// uses kind as a message-class discriminator and `a` as an index into its
/// per-round staging arrays).
struct Event {
  std::uint64_t at_us = 0;
  std::uint64_t seq = 0;
  std::uint32_t kind = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class Scheduler {
 public:
  /// Current virtual time: the timestamp of the last popped event, or the
  /// last advance_to() mark, whichever is later. Starts at zero.
  [[nodiscard]] std::uint64_t now_us() const { return now_us_; }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  /// High-water mark of size() since the last clear() (feeds the
  /// evt.queue_depth histogram).
  [[nodiscard]] std::size_t max_depth() const { return max_depth_; }

  /// Enqueues an event; timestamps in the past are clamped to now (a
  /// message cannot arrive before it was sent).
  void schedule(std::uint64_t at_us, std::uint32_t kind, std::uint64_t a,
                std::uint64_t b = 0);

  /// Pops the earliest event — ties broken by schedule order — and advances
  /// the virtual clock to its timestamp. The heap must be non-empty.
  Event pop();

  /// Moves the virtual clock forward to `at_us` without dispatching
  /// (end-of-round idle time). Never moves time backwards.
  void advance_to(std::uint64_t at_us);

  /// Closes a fully-drained round window: snaps the clock to exactly
  /// `at_us`, *backwards* if draining popped a late arrival past the
  /// window's deadline (the late leg was dropped, so the round still ends
  /// on schedule — virtual time stays rounds x interval). The heap must be
  /// empty: rewinding over pending events would violate causality.
  void close_window(std::uint64_t at_us);

  /// Drops all pending events and resets the depth high-water mark; the
  /// virtual clock keeps its value.
  void clear();

 private:
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  [[nodiscard]] static bool before(const Event& x, const Event& y) {
    return x.at_us != y.at_us ? x.at_us < y.at_us : x.seq < y.seq;
  }

  std::vector<Event> heap_;
  std::uint64_t now_us_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace raptee::evt
