// Region topology and timed network partitions for event-driven runs.
//
// Nodes map onto regions round-robin (node index mod regions); a
// PartitionSchedule is a list of round windows during which a set of regions
// is cut off from the rest. Messages crossing an active cut are dropped and
// counted (Engine::Counters::partition_drops) — the partition_eclipse
// adversary exploits exactly these windows.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace raptee::evt {

struct RegionTopology {
  std::uint32_t regions = 1;

  [[nodiscard]] std::uint32_t region_of(std::uint64_t node_index) const {
    return regions <= 1 ? 0 : static_cast<std::uint32_t>(node_index % regions);
  }
  void validate() const;
};

/// One cut: during rounds [from, until) the `isolated` regions can only
/// reach each other, and everyone else can only reach non-isolated regions.
struct PartitionWindow {
  Round from = 0;
  Round until = 0;
  std::vector<std::uint32_t> isolated;
};

struct PartitionSchedule {
  std::vector<PartitionWindow> windows;

  [[nodiscard]] static PartitionSchedule none();
  /// The named catalog backing RAPTEE_BENCH_PARTITION: "none", "mid-third"
  /// (region 0 isolated for the middle third of the run), "late-half"
  /// (region 0 isolated for the second half). Throws std::invalid_argument
  /// for anything else.
  [[nodiscard]] static PartitionSchedule named(std::string_view name,
                                               Round total_rounds);
  [[nodiscard]] static const std::vector<std::string>& names();

  /// True if any window is active at round `r`.
  [[nodiscard]] bool active(Round r) const;
  /// True if a message between the two regions is cut at round `r`.
  [[nodiscard]] bool severed(std::uint32_t region_a, std::uint32_t region_b,
                             Round r) const;

  /// Rejects inverted windows and isolated regions outside [0, regions).
  void validate(std::uint32_t regions) const;

  [[nodiscard]] std::string describe() const;
};

}  // namespace raptee::evt
