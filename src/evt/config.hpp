// Event-driven engine mode configuration: the opt-in switch plus the three
// new axes (latency distribution, partition schedule, region topology).
// Plumbed EngineConfig -> ExperimentConfig -> ScenarioSpec -> Grid axes and
// serialized (conditionally — only when enabled) into results JSON.
#pragma once

#include <cstdint>

#include "evt/latency.hpp"
#include "evt/partition.hpp"

namespace raptee::evt {

struct EventConfig {
  /// Off by default: round mode stays the bit-exact baseline and the
  /// results JSON is byte-identical to a tree without this subsystem.
  bool enabled = false;
  /// Virtual duration of one protocol round. The paper deploys 2.5-second
  /// rounds on Grid'5000; messages whose sampled delay lands past the round
  /// deadline are late and discarded (Counters::legs_late).
  std::uint64_t round_interval_us = 2'500'000;
  LatencySpec latency;
  PartitionSchedule partition;
  RegionTopology topology;

  void validate() const;
};

}  // namespace raptee::evt
