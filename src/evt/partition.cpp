#include "evt/partition.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/assert.hpp"

namespace raptee::evt {

void RegionTopology::validate() const {
  RAPTEE_REQUIRE(regions >= 1, "topology needs >= 1 region, got " << regions);
}

PartitionSchedule PartitionSchedule::none() { return PartitionSchedule{}; }

PartitionSchedule PartitionSchedule::named(std::string_view name,
                                           Round total_rounds) {
  if (name == "none") return none();
  PartitionSchedule schedule;
  if (name == "mid-third") {
    // Region 0 cut off for the middle third of the run, then healed.
    schedule.windows.push_back(
        {total_rounds / 3, 2 * total_rounds / 3, {0}});
    return schedule;
  }
  if (name == "late-half") {
    // Region 0 cut off for the entire second half (no heal before the end).
    schedule.windows.push_back({total_rounds / 2, total_rounds, {0}});
    return schedule;
  }
  throw std::invalid_argument("unknown partition schedule '" +
                              std::string(name) +
                              "' (expected one of: none, mid-third, late-half)");
}

const std::vector<std::string>& PartitionSchedule::names() {
  static const std::vector<std::string> kNames{"none", "mid-third", "late-half"};
  return kNames;
}

bool PartitionSchedule::active(Round r) const {
  return std::any_of(windows.begin(), windows.end(), [r](const PartitionWindow& w) {
    return r >= w.from && r < w.until;
  });
}

bool PartitionSchedule::severed(std::uint32_t region_a, std::uint32_t region_b,
                                Round r) const {
  if (region_a == region_b) return false;
  for (const PartitionWindow& w : windows) {
    if (r < w.from || r >= w.until) continue;
    const auto isolated = [&w](std::uint32_t region) {
      return std::find(w.isolated.begin(), w.isolated.end(), region) !=
             w.isolated.end();
    };
    if (isolated(region_a) != isolated(region_b)) return true;
  }
  return false;
}

void PartitionSchedule::validate(std::uint32_t regions) const {
  for (const PartitionWindow& w : windows) {
    RAPTEE_REQUIRE(w.from <= w.until, "partition window inverted: ["
                                          << w.from << ", " << w.until << ")");
    for (const std::uint32_t region : w.isolated) {
      RAPTEE_REQUIRE(region < regions, "partition isolates region "
                                           << region << " but topology has only "
                                           << regions << " regions");
    }
  }
}

std::string PartitionSchedule::describe() const {
  if (windows.empty()) return "none";
  std::string out;
  for (const PartitionWindow& w : windows) {
    if (!out.empty()) out += "+";
    out += "[" + std::to_string(w.from) + "," + std::to_string(w.until) + ")x" +
           std::to_string(w.isolated.size());
  }
  return out;
}

}  // namespace raptee::evt
