#include "evt/latency.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/assert.hpp"

namespace raptee::evt {

namespace {

[[nodiscard]] constexpr std::uint64_t ms_to_us(double ms) {
  return static_cast<std::uint64_t>(ms * 1000.0);
}

[[nodiscard]] std::string format_ms(std::uint64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1fms", static_cast<double>(us) / 1000.0);
  return buf;
}

}  // namespace

LatencySpec LatencySpec::zero() { return LatencySpec{}; }

LatencySpec LatencySpec::fixed(double ms, double jitter_pct) {
  LatencySpec spec;
  spec.kind = LatencyKind::kFixed;
  spec.fixed_us = ms_to_us(ms);
  spec.jitter_pct = jitter_pct;
  return spec;
}

LatencySpec LatencySpec::uniform(double min_ms, double max_ms) {
  LatencySpec spec;
  spec.kind = LatencyKind::kUniform;
  spec.min_us = ms_to_us(min_ms);
  spec.max_us = ms_to_us(max_ms);
  return spec;
}

LatencySpec LatencySpec::lognormal(double median_ms, double sigma) {
  LatencySpec spec;
  spec.kind = LatencyKind::kLognormal;
  spec.log_median_ms = median_ms;
  spec.log_sigma = sigma;
  return spec;
}

LatencySpec LatencySpec::matrix(std::uint32_t regions,
                                const std::vector<double>& ms,
                                double jitter_pct) {
  LatencySpec spec;
  spec.kind = LatencyKind::kMatrix;
  spec.matrix_regions = regions;
  spec.matrix_us.reserve(ms.size());
  for (const double entry : ms) spec.matrix_us.push_back(ms_to_us(entry));
  spec.jitter_pct = jitter_pct;
  return spec;
}

LatencySpec LatencySpec::named(std::string_view name) {
  if (name == "zero") return zero();
  // Datacenter LAN: sub-millisecond, mildly jittered.
  if (name == "lan") return fixed(0.5, 10.0);
  // Continental WAN: a broad uniform band.
  if (name == "wan") return uniform(40.0, 160.0);
  // Heavy-tailed internet path: lognormal around a 60 ms median.
  if (name == "tail") return lognormal(60.0, 0.6);
  // Three geo-regions with asymmetric inter-region delays.
  if (name == "geo3") {
    return matrix(3,
                  {5.0, 80.0, 250.0,   //
                   80.0, 5.0, 120.0,   //
                   250.0, 120.0, 5.0},
                  10.0);
  }
  throw std::invalid_argument("unknown latency spec '" + std::string(name) +
                              "' (expected one of: zero, lan, wan, tail, geo3)");
}

const std::vector<std::string>& LatencySpec::names() {
  static const std::vector<std::string> kNames{"zero", "lan", "wan", "tail",
                                               "geo3"};
  return kNames;
}

void LatencySpec::validate() const {
  RAPTEE_REQUIRE(jitter_pct >= 0.0 && jitter_pct <= 100.0,
                 "latency jitter_pct must be in [0, 100], got " << jitter_pct);
  switch (kind) {
    case LatencyKind::kZero:
    case LatencyKind::kFixed:
      break;
    case LatencyKind::kUniform:
      RAPTEE_REQUIRE(min_us <= max_us, "uniform latency bounds inverted: "
                                           << min_us << " > " << max_us);
      break;
    case LatencyKind::kLognormal:
      RAPTEE_REQUIRE(log_median_ms > 0.0 && log_sigma >= 0.0,
                     "lognormal latency needs median > 0 and sigma >= 0");
      break;
    case LatencyKind::kMatrix:
      RAPTEE_REQUIRE(matrix_regions >= 1, "latency matrix needs >= 1 region");
      RAPTEE_REQUIRE(
          matrix_us.size() ==
              static_cast<std::size_t>(matrix_regions) * matrix_regions,
          "latency matrix must be regions x regions: expected "
              << static_cast<std::size_t>(matrix_regions) * matrix_regions
              << " entries, got " << matrix_us.size());
      break;
  }
}

std::uint64_t LatencySpec::sample_us(Rng& rng, std::uint32_t from_region,
                                     std::uint32_t to_region) const {
  std::uint64_t base = 0;
  switch (kind) {
    case LatencyKind::kZero:
      return 0;
    case LatencyKind::kFixed:
      base = fixed_us;
      break;
    case LatencyKind::kUniform:
      base = max_us > min_us ? min_us + rng.below(max_us - min_us + 1) : min_us;
      break;
    case LatencyKind::kLognormal:
      base = ms_to_us(log_median_ms * std::exp(rng.normal(0.0, log_sigma)));
      break;
    case LatencyKind::kMatrix: {
      const std::uint32_t a = from_region % matrix_regions;
      const std::uint32_t b = to_region % matrix_regions;
      base = matrix_us[static_cast<std::size_t>(a) * matrix_regions + b];
      break;
    }
  }
  if (jitter_pct > 0.0 && base > 0) {
    const double factor =
        1.0 + (rng.uniform01() * 2.0 - 1.0) * (jitter_pct / 100.0);
    base = static_cast<std::uint64_t>(static_cast<double>(base) * factor);
  }
  return base;
}

std::string LatencySpec::describe() const {
  switch (kind) {
    case LatencyKind::kZero:
      return "zero";
    case LatencyKind::kFixed:
      return "fixed(" + format_ms(fixed_us) + ")";
    case LatencyKind::kUniform:
      return "uniform(" + format_ms(min_us) + ".." + format_ms(max_us) + ")";
    case LatencyKind::kLognormal: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "lognormal(%.0fms, %.2f)", log_median_ms,
                    log_sigma);
      return buf;
    }
    case LatencyKind::kMatrix:
      return "matrix(" + std::to_string(matrix_regions) + " regions)";
  }
  return "unknown";
}

}  // namespace raptee::evt
