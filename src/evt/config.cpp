#include "evt/config.hpp"

#include "common/assert.hpp"

namespace raptee::evt {

void EventConfig::validate() const {
  if (!enabled) return;
  RAPTEE_REQUIRE(round_interval_us > 0, "event mode needs round_interval_us > 0");
  topology.validate();
  latency.validate();
  partition.validate(topology.regions);
  if (latency.kind == LatencyKind::kMatrix) {
    RAPTEE_REQUIRE(latency.matrix_regions == topology.regions,
                   "latency matrix regions (" << latency.matrix_regions
                                              << ") must match topology regions ("
                                              << topology.regions << ")");
  }
}

}  // namespace raptee::evt
