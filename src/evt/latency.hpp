// Per-link latency models for the event-driven engine mode.
//
// A LatencySpec describes the one-way delay distribution of a link. Samples
// are drawn from forked Rng streams keyed per link
// (`rng.fork("evt.link", from, to)`), so a (seed, spec) pair reproduces every
// delay bit-for-bit regardless of how many links are in flight — the
// determinism contract the round-mode engine already guarantees extends
// unchanged to event-driven time.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace raptee::evt {

enum class LatencyKind : std::uint8_t {
  kZero,       ///< every message arrives instantly (event mode's degenerate case)
  kFixed,      ///< constant one-way delay
  kUniform,    ///< uniform in [min_us, max_us]
  kLognormal,  ///< heavy-tailed: exp(normal(ln median, sigma))
  kMatrix,     ///< per-region-pair base delay (row-major regions x regions)
};

struct LatencySpec {
  LatencyKind kind = LatencyKind::kZero;
  std::uint64_t fixed_us = 0;
  std::uint64_t min_us = 0;
  std::uint64_t max_us = 0;
  double log_median_ms = 0.0;
  double log_sigma = 0.0;
  std::uint32_t matrix_regions = 0;
  std::vector<std::uint64_t> matrix_us;  ///< row-major regions x regions
  /// Symmetric multiplicative jitter: the sampled base delay is scaled by a
  /// uniform factor in [1 - jitter_pct/100, 1 + jitter_pct/100].
  double jitter_pct = 0.0;

  [[nodiscard]] static LatencySpec zero();
  [[nodiscard]] static LatencySpec fixed(double ms, double jitter_pct = 0.0);
  [[nodiscard]] static LatencySpec uniform(double min_ms, double max_ms);
  [[nodiscard]] static LatencySpec lognormal(double median_ms, double sigma);
  [[nodiscard]] static LatencySpec matrix(std::uint32_t regions,
                                          const std::vector<double>& ms,
                                          double jitter_pct = 0.0);

  /// The named catalog backing RAPTEE_BENCH_LATENCY: "zero", "lan", "wan",
  /// "tail", "geo3". Throws std::invalid_argument for anything else.
  [[nodiscard]] static LatencySpec named(std::string_view name);
  [[nodiscard]] static const std::vector<std::string>& names();

  /// Rejects malformed specs (inverted uniform bounds, bad matrix shape,
  /// out-of-range jitter) with RAPTEE_REQUIRE.
  void validate() const;

  /// Draws one one-way delay for a (from_region, to_region) link. Pure in
  /// (rng state, spec, regions); advances `rng`.
  [[nodiscard]] std::uint64_t sample_us(Rng& rng, std::uint32_t from_region,
                                        std::uint32_t to_region) const;

  /// Short human label ("uniform(40ms..160ms)"), used by bench tables.
  [[nodiscard]] std::string describe() const;
};

}  // namespace raptee::evt
