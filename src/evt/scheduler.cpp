#include "evt/scheduler.hpp"

#include <utility>

#include "common/assert.hpp"

namespace raptee::evt {

void Scheduler::schedule(std::uint64_t at_us, std::uint32_t kind,
                         std::uint64_t a, std::uint64_t b) {
  Event e;
  e.at_us = at_us < now_us_ ? now_us_ : at_us;
  e.seq = next_seq_++;
  e.kind = kind;
  e.a = a;
  e.b = b;
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
  if (heap_.size() > max_depth_) max_depth_ = heap_.size();
}

Event Scheduler::pop() {
  RAPTEE_REQUIRE(!heap_.empty(), "Scheduler::pop on an empty heap");
  const Event out = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  now_us_ = out.at_us;
  return out;
}

void Scheduler::advance_to(std::uint64_t at_us) {
  if (at_us > now_us_) now_us_ = at_us;
}

void Scheduler::close_window(std::uint64_t at_us) {
  RAPTEE_REQUIRE(heap_.empty(),
                 "Scheduler::close_window with events still pending");
  now_us_ = at_us;
}

void Scheduler::clear() {
  heap_.clear();
  max_depth_ = 0;
}

void Scheduler::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) return;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Scheduler::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t best = i;
    if (left < n && before(heap_[left], heap_[best])) best = left;
    if (right < n && before(heap_[right], heap_[best])) best = right;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

}  // namespace raptee::evt
