// RAII wall-clock timer feeding a registry histogram.
//
// The profiling hooks (Engine phases, Bus loop dispatch/timer/flush) wrap
// each region in a ScopedTimer; destruction records elapsed microseconds
// into the histogram with a relaxed atomic — no locks, no allocation, so
// the hooks are safe inside the zero-steady-state-allocation gates.
//
// Timing is observational only: elapsed values never feed simulation
// state, preserving the bit-exact results contract.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/registry.hpp"

namespace raptee::obs {

class ScopedTimer {
 public:
  /// `hist` may be null (profiling disabled — the timer still measures if
  /// `elapsed_us_out` wants the value). `elapsed_us_out`, when non-null,
  /// also receives the elapsed microseconds (used by Engine to surface
  /// last-round phase times without re-reading histograms).
  explicit ScopedTimer(Histogram* hist, std::uint64_t* elapsed_us_out = nullptr)
      : hist_(hist),
        out_(elapsed_us_out),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (hist_ == nullptr && out_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
    if (hist_ != nullptr) hist_->record(us);
    if (out_ != nullptr) *out_ = us;
  }

 private:
  Histogram* hist_;
  std::uint64_t* out_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace raptee::obs
