#include "obs/export.hpp"

#include <charconv>

#include "metrics/json.hpp"

namespace raptee::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

std::string to_json(const Snapshot& snap) {
  metrics::JsonObject counters;
  for (const auto& c : snap.counters) counters.field(c.name, c.value);
  metrics::JsonObject gauges;
  for (const auto& g : snap.gauges) gauges.field(g.name, g.value);
  metrics::JsonObject histograms;
  for (const auto& h : snap.histograms) {
    metrics::JsonArray buckets;
    for (std::size_t i = 0; i < h.buckets; ++i) {
      metrics::JsonObject bucket;
      if (i + 1 == h.buckets) {
        bucket.field("le", "+Inf");
      } else {
        bucket.field("le", snap.bucket_bounds[h.first + i]);
      }
      bucket.field("count", snap.bucket_counts[h.first + i]);
      buckets.item_raw(bucket.str());
    }
    metrics::JsonObject entry;
    entry.field("count", h.count)
        .field("sum", h.sum)
        .field("mean", h.count == 0
                           ? 0.0
                           : static_cast<double>(h.sum) /
                                 static_cast<double>(h.count))
        .field_raw("buckets", buckets.str());
    histograms.field_raw(h.name, entry.str());
  }
  metrics::JsonObject doc;
  doc.field("schema", "raptee.obs.metrics/1")
      .field_raw("counters", counters.str())
      .field_raw("gauges", gauges.str())
      .field_raw("histograms", histograms.str());
  return doc.str();
}

std::string prometheus_name(std::string_view name) {
  std::string out = "raptee_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  for (const auto& c : snap.counters) {
    const std::string name = prometheus_name(c.name);
    out += "# TYPE " + name + " counter\n" + name + " ";
    append_u64(out, c.value);
    out += '\n';
  }
  for (const auto& g : snap.gauges) {
    const std::string name = prometheus_name(g.name);
    out += "# TYPE " + name + " gauge\n" + name + " " +
           metrics::json_number(g.value) + '\n';
  }
  for (const auto& h : snap.histograms) {
    const std::string name = prometheus_name(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets; ++i) {
      cumulative += snap.bucket_counts[h.first + i];
      out += name + "_bucket{le=\"";
      if (i + 1 == h.buckets) {
        out += "+Inf";
      } else {
        append_u64(out, snap.bucket_bounds[h.first + i]);
      }
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += name + "_sum ";
    append_u64(out, h.sum);
    out += '\n' + name + "_count ";
    append_u64(out, h.count);
    out += '\n';
  }
  return out;
}

std::string summary_line(const Snapshot& snap) {
  std::string out = "metrics:";
  for (const auto& c : snap.counters) {
    out += ' ';
    out += c.name;
    out += '=';
    append_u64(out, c.value);
  }
  for (const auto& g : snap.gauges) {
    out += ' ';
    out += g.name;
    out += '=';
    out += metrics::json_number(g.value);
  }
  for (const auto& h : snap.histograms) {
    out += ' ';
    out += h.name;
    out += "{n=";
    append_u64(out, h.count);
    out += ",mean_us=";
    out += metrics::json_number(
        h.count == 0 ? 0.0
                     : static_cast<double>(h.sum) / static_cast<double>(h.count));
    out += '}';
  }
  return out;
}

}  // namespace raptee::obs
