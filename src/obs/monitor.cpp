#include "obs/monitor.hpp"

#include <cstdlib>

#include "metrics/json.hpp"
#include "obs/registry.hpp"
#include "scenario/knobs.hpp"

namespace raptee::obs {

ScenarioMonitor::ScenarioMonitor() {
  Registry& reg = Registry::global();
  pollution_gauge_ = &reg.gauge("scenario.pollution");
  min_knowledge_gauge_ = &reg.gauge("scenario.min_knowledge");
  round_gauge_ = &reg.gauge("scenario.round");
  add_registry_routes(server_, reg);
  server_.add_route("/snapshot", [this] {
    return HttpResponse{200, "application/json", snapshot_json()};
  });
}

std::uint64_t ScenarioMonitor::runs_completed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return runs_completed_;
}

void ScenarioMonitor::on_round(const scenario::RoundSnapshot& snapshot,
                               const sim::Engine& engine) {
  (void)engine;  // read-only contract: the monitor never touches it
  {
    const std::lock_guard<std::mutex> lock(mu_);
    latest_ = snapshot;
    have_snapshot_ = true;
  }
  pollution_gauge_->set(snapshot.pollution);
  min_knowledge_gauge_->set(snapshot.min_knowledge);
  round_gauge_->set(static_cast<double>(snapshot.round));
}

void ScenarioMonitor::on_run_end(const metrics::ExperimentResult& result,
                                 const sim::Engine& engine) {
  (void)result;
  (void)engine;
  const std::lock_guard<std::mutex> lock(mu_);
  ++runs_completed_;
}

std::string ScenarioMonitor::snapshot_json() const {
  scenario::RoundSnapshot snap;
  bool have = false;
  std::uint64_t runs = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snap = latest_;
    have = have_snapshot_;
    runs = runs_completed_;
  }
  metrics::JsonObject doc;
  doc.field("schema", "raptee.obs.snapshot/1")
      .field("have_snapshot", have)
      .field("runs_completed", runs);
  if (have) {
    doc.field("round", static_cast<std::uint64_t>(snap.round))
        .field("pollution", snap.pollution)
        .field("pollution_honest", snap.pollution_honest)
        .field("pollution_trusted", snap.pollution_trusted)
        .field("min_knowledge", snap.min_knowledge)
        .field("eviction_rate", snap.eviction_rate)
        .field("trusted_ratio", snap.trusted_ratio)
        .field("victim_pollution", snap.victim_pollution)
        .field("attack_active", snap.attack_active)
        .field("swaps_completed", snap.swaps_completed)
        .field("pulls_completed", snap.pulls_completed)
        .field("pushes_delivered", snap.pushes_delivered)
        .field("wire_bytes", snap.wire_bytes)
        .field("legs_dropped", snap.legs_dropped)
        .field("legs_tampered", snap.legs_tampered)
        .field("legs_corrupted", snap.legs_corrupted)
        .field("legs_suppressed", snap.legs_suppressed);
    metrics::JsonObject phases;
    phases.field("begin_round_ms", snap.phase_ms[0])
        .field("push_gen_ms", snap.phase_ms[1])
        .field("push_deliver_ms", snap.phase_ms[2])
        .field("pulls_ms", snap.phase_ms[3])
        .field("end_round_ms", snap.phase_ms[4]);
    doc.field_raw("phase_ms", phases.str());
  }
  return doc.str();
}

ScenarioMonitor* env_monitor() {
  const char* value = std::getenv("RAPTEE_BENCH_MONITOR_PORT");
  if (value == nullptr || *value == '\0') return nullptr;
  const auto port = static_cast<std::uint16_t>(
      scenario::parse_u64("RAPTEE_BENCH_MONITOR_PORT", value, 0, 65535));
  // One process-wide monitor, started on first armed call and leaked
  // deliberately (it serves until process exit, like Registry::global()).
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  static ScenarioMonitor* monitor = nullptr;
  if (monitor == nullptr) {
    monitor = new ScenarioMonitor();
    monitor->start(port);
  }
  return monitor;
}

}  // namespace raptee::obs
