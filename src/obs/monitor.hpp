// Live scenario monitoring: an IScenarioObserver that publishes the
// observer stream through a MonitorServer.
//
// ScenarioMonitor serves the standard registry routes (/metrics,
// /metrics.prom, /healthz) plus /snapshot — the latest RoundSnapshot as
// JSON (schema "raptee.obs.snapshot/1"), including the engine phase
// breakdown. It also mirrors the headline scenario signals (pollution,
// min_knowledge, round) into registry gauges so a plain Prometheus scrape
// of /metrics.prom tracks convergence without parsing /snapshot.
//
// Monitoring is strictly read-only on the simulation: callbacks copy
// values under a mutex and never touch the engine, so results::to_json
// bytes are identical with and without a monitor attached (asserted by
// obs_test_monitor).
//
// env_monitor() is the bench wiring: when RAPTEE_BENCH_MONITOR_PORT is
// set, the first call starts a process-wide ScenarioMonitor on that port
// and returns it; scenario::Runner attaches it to every run. When the
// variable is unset the call returns nullptr — even if an earlier call
// started the server — so one process can compare monitored and
// unmonitored runs (the determinism test does).
#pragma once

#include <cstdint>
#include <mutex>

#include "obs/http.hpp"
#include "obs/registry.hpp"
#include "scenario/observer.hpp"

namespace raptee::obs {

class ScenarioMonitor : public scenario::IScenarioObserver {
 public:
  /// Routes are registered here; serving starts with start().
  ScenarioMonitor();

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and serves. Returns the port.
  std::uint16_t start(std::uint16_t port) { return server_.start(port); }
  void stop() { server_.stop(); }
  [[nodiscard]] std::uint16_t port() const { return server_.port(); }

  /// Number of completed runs observed (grid cells count individually).
  [[nodiscard]] std::uint64_t runs_completed() const;

  // IScenarioObserver (thread-safe: parallel batch cells share one monitor)
  void on_round(const scenario::RoundSnapshot& snapshot,
                const sim::Engine& engine) override;
  void on_run_end(const metrics::ExperimentResult& result,
                  const sim::Engine& engine) override;

 private:
  [[nodiscard]] std::string snapshot_json() const;

  MonitorServer server_;
  mutable std::mutex mu_;
  scenario::RoundSnapshot latest_;
  bool have_snapshot_ = false;
  std::uint64_t runs_completed_ = 0;

  Gauge* pollution_gauge_;  // registry-owned, process-lifetime
  Gauge* min_knowledge_gauge_;
  Gauge* round_gauge_;
};

/// The process-wide env-armed monitor (see header note). Throws
/// std::invalid_argument if RAPTEE_BENCH_MONITOR_PORT is set but not a
/// valid port, net::NetError if the port cannot be bound.
[[nodiscard]] ScenarioMonitor* env_monitor();

}  // namespace raptee::obs
