#include "obs/registry.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace raptee::obs {

namespace {

// 1us .. 10s in a 1-2-5 ladder, the span between "an empty phase on a tiny
// population" and "a 1M-node round under sanitizers".
constexpr std::uint64_t kTimeBoundsUs[] = {
    1,       2,       5,       10,      20,      50,       100,      200,
    500,     1000,    2000,    5000,    10000,   20000,    50000,    100000,
    200000,  500000,  1000000, 2000000, 5000000, 10000000};

}  // namespace

std::span<const std::uint64_t> Histogram::default_time_bounds_us() {
  return kTimeBoundsUs;
}

Histogram::Histogram(std::span<const std::uint64_t> bounds)
    : bounds_(bounds.begin(), bounds.end()), counts_(bounds.size() + 1) {
  RAPTEE_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  RAPTEE_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                     std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                         bounds_.end(),
                 "histogram bounds must be strictly increasing");
}

void Histogram::record(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  // Relaxed: pure statistics — nothing synchronizes on these counters, and
  // a snapshot reading mid-record is already an approximation by design.
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

void Snapshot::clear() {
  counters.clear();
  gauges.clear();
  histograms.clear();
  bucket_bounds.clear();
  bucket_counts.clear();
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

void Registry::require_unregistered(std::string_view name, const char* kind) const {
  // Called with mu_ held. One name = one kind, or /metrics.prom would emit
  // conflicting TYPE lines for the same series.
  RAPTEE_REQUIRE(counters_.find(name) == counters_.end() || kind[0] == 'c',
                 "metric '" << name << "' already registered as a counter");
  RAPTEE_REQUIRE(gauges_.find(name) == gauges_.end() || kind[0] == 'g',
                 "metric '" << name << "' already registered as a gauge");
  RAPTEE_REQUIRE(histograms_.find(name) == histograms_.end() || kind[0] == 'h',
                 "metric '" << name << "' already registered as a histogram");
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  require_unregistered(name, "counter");
  return counters_.emplace(std::piecewise_construct,
                           std::forward_as_tuple(name), std::forward_as_tuple())
      .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  require_unregistered(name, "gauge");
  return gauges_.emplace(std::piecewise_construct, std::forward_as_tuple(name),
                         std::forward_as_tuple())
      .first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const std::uint64_t> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  require_unregistered(name, "histogram");
  if (bounds.empty()) bounds = Histogram::default_time_bounds_us();
  return histograms_.emplace(std::piecewise_construct,
                             std::forward_as_tuple(name),
                             std::forward_as_tuple(bounds))
      .first->second;
}

void Registry::snapshot_into(Snapshot& out) const {
  out.clear();
  const std::lock_guard<std::mutex> lock(mu_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.push_back({name, c.value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.push_back({name, g.value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramValue v;
    v.name = name;
    v.count = h.count();
    v.sum = h.sum();
    v.first = out.bucket_counts.size();
    v.buckets = h.bucket_count();
    const std::span<const std::uint64_t> bounds = h.bounds();
    for (std::size_t i = 0; i < v.buckets; ++i) {
      out.bucket_bounds.push_back(i < bounds.size() ? bounds[i] : 0);  // +Inf
      out.bucket_counts.push_back(h.bucket(i));
    }
    out.histograms.push_back(v);
  }
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  snapshot_into(out);
  return out;
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace raptee::obs
