#include "obs/http.hpp"

#include <poll.h>

#include <chrono>
#include <utility>

#include "common/assert.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"

namespace raptee::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Unknown";
  }
}

}  // namespace

MonitorServer::~MonitorServer() { stop(); }

void MonitorServer::add_route(std::string path, Handler handler) {
  RAPTEE_REQUIRE(!started_, "add_route must be called before start()");
  RAPTEE_REQUIRE(!path.empty() && path.front() == '/',
                 "route path must start with '/': " << path);
  RAPTEE_REQUIRE(handler != nullptr, "null route handler");
  routes_[std::move(path)] = std::move(handler);
}

std::uint16_t MonitorServer::start(std::uint16_t port) {
  RAPTEE_REQUIRE(!started_, "MonitorServer::start called twice");
  auto [fd, bound] = net::listen_loopback(port);
  listen_fd_ = std::move(fd);
  port_ = bound;
  started_ = true;
  loop_.post([this] {
    loop_.add_fd(listen_fd_.get(), net::EventLoop::kReadable,
                 [this](std::uint32_t) { accept_ready(); });
  });
  thread_ = std::thread([this] { loop_.run(); });
  return bound;
}

void MonitorServer::stop() {
  if (!started_) return;
  started_ = false;
  loop_.stop();
  thread_.join();
  // Loop thread is gone: tear client state down directly.
  // raptee-lint: allow(no-unordered-iteration) unobservable teardown order; every client is dropped and nothing is emitted
  for (auto& [fd, client] : clients_) loop_.remove_fd(fd);
  clients_.clear();
  if (listen_fd_.valid()) {
    loop_.remove_fd(listen_fd_.get());
    listen_fd_.reset();
  }
}

void MonitorServer::accept_ready() {
  while (true) {
    auto fd = net::accept_connection(listen_fd_.get());
    if (!fd) return;
    auto client = std::make_unique<Client>();
    client->fd = std::move(*fd);
    const int raw = client->fd.get();
    clients_.emplace(raw, std::move(client));
    loop_.add_fd(raw, net::EventLoop::kReadable,
                 [this, raw](std::uint32_t events) { client_ready(raw, events); });
  }
}

void MonitorServer::client_ready(int fd, std::uint32_t events) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  Client& client = *it->second;
  if (events & net::EventLoop::kError) {
    drop_client(fd);
    return;
  }
  if ((events & net::EventLoop::kWritable) && client.responding) {
    flush_client(client);
    return;
  }
  if (!(events & net::EventLoop::kReadable) || client.responding) return;

  std::uint8_t buf[4096];
  while (true) {
    const long n = net::read_some(fd, buf, sizeof buf);
    if (n == -1) break;  // drained
    if (n == 0 || n == -2) {
      drop_client(fd);
      return;
    }
    // raptee-lint: allow(cast-allowlist) audited byte pun: uint8_t read buffer -> char for std::string::append
    client.in.append(reinterpret_cast<const char*>(buf),
                     static_cast<std::size_t>(n));
    const std::size_t eol = client.in.find('\n');
    if (eol == std::string::npos) {
      if (client.in.size() > kMaxRequestLine) {
        respond(client, {400, "text/plain", "request line too long\n"});
        return;
      }
      continue;
    }
    // Request line complete: everything after it (headers) is ignored —
    // the response closes the connection either way.
    std::string_view line(client.in.data(), eol);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.size() > kMaxRequestLine) {
      respond(client, {400, "text/plain", "request line too long\n"});
      return;
    }
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = sp1 == std::string_view::npos
                                ? std::string_view::npos
                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
      respond(client, {400, "text/plain", "malformed request line\n"});
      return;
    }
    const std::string_view method = line.substr(0, sp1);
    std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (method != "GET") {
      respond(client, {405, "text/plain", "method not allowed\n"});
      return;
    }
    const std::size_t query = target.find('?');
    if (query != std::string_view::npos) target = target.substr(0, query);
    const auto route = routes_.find(target);
    if (route == routes_.end()) {
      respond(client, {404, "text/plain", "not found\n"});
      return;
    }
    respond(client, route->second());
    return;
  }
}

void MonitorServer::respond(Client& client, const HttpResponse& response) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(response.status);
  out += ' ';
  out += status_text(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  client.out = std::move(out);
  client.wpos = 0;
  client.responding = true;
  flush_client(client);
}

void MonitorServer::flush_client(Client& client) {
  const int fd = client.fd.get();
  while (client.wpos < client.out.size()) {
    const long n = net::write_some(
        // raptee-lint: allow(cast-allowlist) audited byte pun: response string -> uint8_t for the socket shim
        fd, reinterpret_cast<const std::uint8_t*>(client.out.data()) + client.wpos,
        client.out.size() - client.wpos);
    if (n == -1) {  // kernel buffer full: wait for writability
      loop_.set_interest(fd, net::EventLoop::kWritable);
      return;
    }
    if (n == -2) {
      drop_client(fd);
      return;
    }
    client.wpos += static_cast<std::size_t>(n);
  }
  drop_client(fd);  // response fully flushed: HTTP/1.0, connection closes
}

void MonitorServer::drop_client(int fd) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  loop_.remove_fd(fd);
  clients_.erase(it);  // Fd destructor closes
}

void add_registry_routes(MonitorServer& server, const Registry& registry) {
  server.add_route("/metrics", [&registry] {
    return HttpResponse{200, "application/json", to_json(registry.snapshot())};
  });
  server.add_route("/metrics.prom", [&registry] {
    return HttpResponse{200, "text/plain; version=0.0.4",
                        to_prometheus(registry.snapshot())};
  });
  server.add_route("/healthz",
                   [] { return HttpResponse{200, "text/plain", "ok\n"}; });
}

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now())
          .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

std::optional<net::Fd> blocking_connect(std::uint16_t port,
                                        Clock::time_point deadline) {
  bool in_progress = false;
  net::Fd fd;
  try {
    fd = net::connect_loopback(port, &in_progress);
  } catch (const net::NetError&) {
    return std::nullopt;
  }
  if (!fd.valid()) return std::nullopt;
  if (in_progress) {
    pollfd p{fd.get(), POLLOUT, 0};
    if (::poll(&p, 1, remaining_ms(deadline)) <= 0) return std::nullopt;
  }
  if (net::connect_result(fd.get()) != 0) return std::nullopt;
  return fd;
}

}  // namespace

std::optional<std::string> http_raw(std::uint16_t port, std::string_view request,
                                    int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  auto fd = blocking_connect(port, deadline);
  if (!fd) return std::nullopt;

  std::size_t sent = 0;
  while (sent < request.size()) {
    const long n = net::write_some(
        // raptee-lint: allow(cast-allowlist) audited byte pun: request string -> uint8_t for the socket shim
        fd->get(), reinterpret_cast<const std::uint8_t*>(request.data()) + sent,
        request.size() - sent);
    if (n == -2) return std::nullopt;
    if (n == -1) {
      pollfd p{fd->get(), POLLOUT, 0};
      if (::poll(&p, 1, remaining_ms(deadline)) <= 0) return std::nullopt;
      continue;
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string response;
  std::uint8_t buf[8192];
  while (true) {
    const long n = net::read_some(fd->get(), buf, sizeof buf);
    if (n == 0) return response;  // orderly EOF: response complete
    if (n == -2) return std::nullopt;
    if (n == -1) {
      pollfd p{fd->get(), POLLIN, 0};
      if (::poll(&p, 1, remaining_ms(deadline)) <= 0) return std::nullopt;
      continue;
    }
    // raptee-lint: allow(cast-allowlist) audited byte pun: uint8_t read buffer -> char for std::string::append
    response.append(reinterpret_cast<const char*>(buf),
                    static_cast<std::size_t>(n));
  }
}

std::optional<HttpResult> http_get(std::uint16_t port, std::string_view path,
                                   int timeout_ms) {
  std::string request = "GET ";
  request += path;
  request += " HTTP/1.0\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  const auto raw = http_raw(port, request, timeout_ms);
  if (!raw) return std::nullopt;
  // "HTTP/1.0 NNN reason\r\n...\r\n\r\nbody"
  const std::size_t sp = raw->find(' ');
  if (sp == std::string::npos || raw->size() < sp + 4) return std::nullopt;
  int status = 0;
  for (std::size_t i = sp + 1; i < sp + 4; ++i) {
    const char c = (*raw)[i];
    if (c < '0' || c > '9') return std::nullopt;
    status = status * 10 + (c - '0');
  }
  const std::size_t header_end = raw->find("\r\n\r\n");
  if (header_end == std::string::npos) return std::nullopt;
  return HttpResult{status, raw->substr(header_end + 4)};
}

}  // namespace raptee::obs
