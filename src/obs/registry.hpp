// Observability metrics core: a process-wide registry of named counters,
// gauges and fixed-bucket histograms.
//
// Design constraints (this is the layer under the engine's hot loop and the
// bus's event loop, see ISSUE 8):
//  * increments are relaxed atomics — safe from ThreadPool shards and bus
//    loop threads, no locks, no allocation;
//  * registration (get-or-create by name) is the only locked path; metric
//    objects live in node-based maps, so references stay valid for the
//    registry's lifetime and hot paths hold plain pointers;
//  * metrics are ADDITIVE across instruments: two Engines (a parallel
//    bench batch) publishing deltas into the same named counter yield the
//    process-wide total, which is exactly what a live dashboard wants;
//  * snapshot_into() produces a point-in-time copy into caller-owned
//    buffers whose capacity amortizes — steady-state scraping allocates
//    nothing (asserted by obs_test_obs_zero_alloc). Names are string_views
//    into the registry's keys (the registry never erases a metric).
//
// Naming convention: dotted lowercase paths ("engine.pushes_sent",
// "bus.flush_us", "engine.phase.pulls_us"); the Prometheus exporter
// rewrites separators (see export.hpp). One name is one kind — registering
// "x" as a counter and again as a gauge is a precondition violation.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace raptee::obs {

/// Monotone additive counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins level (population sizes, uptime, ratios).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram over non-negative integer observations (the
/// profiling hooks record microseconds). Bucket `i` counts observations
/// <= bounds[i] and > bounds[i-1]; one implicit overflow bucket (+Inf)
/// catches the rest. Bounds are fixed at registration, so record() is a
/// binary search plus three relaxed fetch_adds — allocation-free.
class Histogram {
 public:
  /// Default bounds: a log-ish microsecond ladder from 1us to 10s —
  /// suitable for every phase/latency histogram in the tree.
  [[nodiscard]] static std::span<const std::uint64_t> default_time_bounds_us();

  explicit Histogram(std::span<const std::uint64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value);

  [[nodiscard]] std::span<const std::uint64_t> bounds() const { return bounds_; }
  /// Bucket count including the +Inf overflow bucket (bounds().size() + 1).
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// count() ? sum()/count() : 0 — the cheap "phase breakdown" statistic.
  [[nodiscard]] double mean() const;

 private:
  std::vector<std::uint64_t> bounds_;  // strictly increasing upper bounds
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Point-in-time copy of a registry (see Registry::snapshot_into). All
/// name fields view the registry's stable keys; histogram buckets are
/// flattened into the two shared flat buffers so a reused Snapshot reaches
/// steady-state capacity and stops allocating.
struct Snapshot {
  struct CounterValue {
    std::string_view name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string_view name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string_view name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::size_t first = 0;    ///< offset into bucket_bounds / bucket_counts
    std::size_t buckets = 0;  ///< entries; the last one is +Inf (bound ignored)
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  std::vector<std::uint64_t> bucket_bounds;  ///< flat; +Inf slots carry 0
  std::vector<std::uint64_t> bucket_counts;  ///< flat, parallel to bucket_bounds

  void clear();
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every subsystem instruments by default.
  [[nodiscard]] static Registry& global();

  /// Get-or-create by name. References stay valid for the registry's
  /// lifetime. Registering a name that already exists as a different kind
  /// throws std::invalid_argument.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// `bounds` applies on first registration only (empty = the default
  /// microsecond ladder); later calls return the existing histogram.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const std::uint64_t> bounds = {});

  /// Point-in-time copy in deterministic (lexicographic) name order.
  /// Amortized allocation-free: `out`'s buffers are cleared and refilled.
  void snapshot_into(Snapshot& out) const;
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] std::size_t size() const;

 private:
  void require_unregistered(std::string_view name, const char* kind) const;

  mutable std::mutex mu_;  // guards the maps; metric mutation is lock-free
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace raptee::obs
