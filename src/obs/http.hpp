// Minimal GET-only HTTP/1.0 monitoring endpoint.
//
// One MonitorServer is one scrape target: it owns a net::EventLoop on a
// dedicated thread (the Bus pattern) and serves registered routes to any
// HTTP/1.0-or-1.1 GET client (curl, Prometheus, a browser). The protocol
// surface is deliberately tiny — parse the request line, send one
// Content-Length-framed response, close:
//
//   * GET only            — anything else is 405 Method Not Allowed;
//   * registered paths    — everything else is 404 Not Found;
//   * bounded request line — longer than kMaxRequestLine before the first
//     newline is 400 Bad Request and the connection drops (a length bomb
//     must not grow the buffer);
//   * Connection: close   — no keep-alive, no chunking, no TLS. The server
//     binds loopback only (net/socket.hpp), matching the transport's
//     posture: this monitors a local process, it is not an internet server.
//
// Handlers run on the server's loop thread — keep them cheap and
// thread-safe (the standard ones only snapshot the metrics registry or
// copy a mutex-guarded struct).
//
// http_get/http_raw are small blocking clients for tests, benches and the
// CI smoke — they speak exactly the protocol subset above.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.hpp"
#include "net/socket.hpp"

namespace raptee::obs {

/// Longest accepted request line (method + path + version + CRLF).
inline constexpr std::size_t kMaxRequestLine = 4096;

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

class MonitorServer {
 public:
  using Handler = std::function<HttpResponse()>;

  MonitorServer() = default;
  ~MonitorServer();
  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  /// Registers `handler` for exact-match `path` (query strings are
  /// stripped before matching). Call before start().
  void add_route(std::string path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 = ephemeral), starts the loop thread and
  /// begins serving. Returns the bound port. Throws net::NetError if the
  /// port is taken.
  std::uint16_t start(std::uint16_t port);

  /// Stops serving and joins the loop thread. Idempotent; the destructor
  /// calls it.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  struct Client {
    net::Fd fd;
    std::string in;        // request bytes until the first newline
    std::string out;       // serialized response
    std::size_t wpos = 0;
    bool responding = false;
  };

  // --- loop-thread only ---
  void accept_ready();
  void client_ready(int fd, std::uint32_t events);
  void respond(Client& client, const HttpResponse& response);
  void flush_client(Client& client);
  void drop_client(int fd);

  std::map<std::string, Handler, std::less<>> routes_;
  net::EventLoop loop_;
  std::thread thread_;
  bool started_ = false;
  net::Fd listen_fd_;
  std::uint16_t port_ = 0;
  std::unordered_map<int, std::unique_ptr<Client>> clients_;
};

/// Standard registry routes, shared by every embedder (rapteed, the bench
/// monitor): /metrics (JSON, schema raptee.obs.metrics/1), /metrics.prom
/// (Prometheus text), /healthz ("ok"). The registry reference must outlive
/// the server (Registry::global() trivially does).
void add_registry_routes(MonitorServer& server, const class Registry& registry);

/// Blocking GET against 127.0.0.1:`port`; nullopt on connect/transport
/// failure or an unparseable response. `timeout_ms` bounds the whole call.
struct HttpResult {
  int status = 0;
  std::string body;
};
[[nodiscard]] std::optional<HttpResult> http_get(std::uint16_t port,
                                                 std::string_view path,
                                                 int timeout_ms = 2000);

/// Sends raw `request` bytes and returns the raw response stream until
/// EOF (nullopt on connect failure). For protocol-error tests (bad
/// method, oversized line) that http_get cannot express.
[[nodiscard]] std::optional<std::string> http_raw(std::uint16_t port,
                                                  std::string_view request,
                                                  int timeout_ms = 2000);

}  // namespace raptee::obs
