// Serialization of registry snapshots for the monitoring endpoint and the
// rapteed drain summary. Two formats:
//  * to_json      — schema "raptee.obs.metrics/1", built with the same
//                   metrics::json writer every results document uses, so the
//                   strict json_valid gate applies;
//  * to_prometheus — text exposition format (version 0.0.4). Internal
//                   histogram buckets are per-bucket counts; Prometheus `le`
//                   buckets are CUMULATIVE, so the exporter converts, appends
//                   the +Inf bucket, and emits _sum/_count. Dotted metric
//                   names become underscore-separated with a "raptee_"
//                   prefix ("engine.phase.pulls_us" -> raptee_engine_phase_pulls_us).
#pragma once

#include <string>
#include <string_view>

#include "obs/registry.hpp"

namespace raptee::obs {

/// JSON document for /metrics: {"schema":"raptee.obs.metrics/1",
/// "counters":{...},"gauges":{...},"histograms":{name:{count,sum,mean,
/// buckets:[{le,count},...]}}}. Deterministic field order (snapshot order is
/// lexicographic).
[[nodiscard]] std::string to_json(const Snapshot& snap);

/// Prometheus text exposition for /metrics.prom.
[[nodiscard]] std::string to_prometheus(const Snapshot& snap);

/// Sanitized Prometheus series name: '.'/'-'/invalid chars -> '_', prefixed
/// with "raptee_". Exposed for tests.
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// One-line human summary ("metrics: 12 counters ... engine.rounds=300 ...")
/// for the rapteed SIGTERM drain log.
[[nodiscard]] std::string summary_line(const Snapshot& snap);

}  // namespace raptee::obs
