// Streaming and batch statistics used by the metrics subsystem and the
// benchmark harness (means, deviations, percentiles, confidence intervals).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace raptee {

/// Welford streaming accumulator: numerically stable mean/variance without
/// retaining observations.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  /// Population variance (σ², divides by n).
  [[nodiscard]] double variance() const;
  /// Sample variance (s², divides by n-1); 0 when n < 2.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sample_stddev() const;
  /// Half-width of the ~95 % normal-approximation confidence interval.
  [[nodiscard]] double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers (copy-and-sort; intended for end-of-run reporting).
[[nodiscard]] double mean_of(const std::vector<double>& xs);
[[nodiscard]] double stddev_of(const std::vector<double>& xs);
/// Linear-interpolated percentile, p in [0, 100]. Copies and sorts the
/// sample on every call — fine for a single percentile. Multi-percentile
/// report paths (median + p10/p90 style) should sort the series once and
/// use percentile_of_sorted for each cut instead of paying k copies and
/// k sorts.
[[nodiscard]] double percentile_of(std::vector<double> xs, double p);
/// Percentile over an ALREADY ascending-sorted sample: same interpolation
/// rule (and bit-identical result) as percentile_of, O(1) per cut.
[[nodiscard]] double percentile_of_sorted(std::span<const double> sorted, double p);
[[nodiscard]] double median_of(std::vector<double> xs);

}  // namespace raptee
