#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace raptee {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }
double RunningStats::sample_stddev() const { return std::sqrt(sample_variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * sample_stddev() / std::sqrt(static_cast<double>(n_));
}

double mean_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double percentile_of(std::vector<double> xs, double p) {
  RAPTEE_REQUIRE(!xs.empty(), "percentile of empty sample");
  std::sort(xs.begin(), xs.end());
  return percentile_of_sorted(xs, p);
}

double percentile_of_sorted(std::span<const double> sorted, double p) {
  RAPTEE_REQUIRE(!sorted.empty(), "percentile of empty sample");
  RAPTEE_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100], got " << p);
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double median_of(std::vector<double> xs) { return percentile_of(std::move(xs), 50.0); }

}  // namespace raptee
