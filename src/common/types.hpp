// Fundamental value types shared by every RAPTEE subsystem.
//
// Node identifiers are opaque 32-bit handles. The simulation engine assigns
// them densely from zero, which lets trackers use flat arrays and bitsets,
// but nothing in the protocol code relies on density: protocol modules treat
// NodeId as an opaque token exactly as a deployed implementation would treat
// a (host, port, key-fingerprint) triple.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace raptee {

/// Opaque node identifier. Unique per node for the lifetime of a system run.
struct NodeId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = std::numeric_limits<std::uint32_t>::max();

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }

  friend constexpr bool operator==(NodeId a, NodeId b) { return a.value == b.value; }
  friend constexpr bool operator!=(NodeId a, NodeId b) { return a.value != b.value; }
  friend constexpr bool operator<(NodeId a, NodeId b) { return a.value < b.value; }
  friend constexpr bool operator>(NodeId a, NodeId b) { return a.value > b.value; }
  friend constexpr bool operator<=(NodeId a, NodeId b) { return a.value <= b.value; }
  friend constexpr bool operator>=(NodeId a, NodeId b) { return a.value >= b.value; }
};

/// Sentinel constant for "no node".
inline constexpr NodeId kNoNode{};

/// Round counter of the synchronous gossip schedule (the paper uses
/// 2.5-second rounds; the simulator is round-denominated).
using Round = std::uint32_t;

/// Virtual CPU cycles, used by the SGX overhead model (Table I).
using Cycles = std::uint64_t;

/// Ground-truth behavioural class of a node. Held by the simulation harness
/// and the adversary's oracle; protocol code never reads it.
enum class NodeKind : std::uint8_t {
  kHonest,          ///< correct node running plain Brahms-side RAPTEE
  kTrusted,         ///< SGX-capable node running the trusted RAPTEE logic
  kByzantine,       ///< adversary-controlled node
  kPoisonedTrusted, ///< genuine trusted node bootstrapped with a Byzantine-only view
};

[[nodiscard]] std::string to_string(NodeKind k);

/// True for nodes that follow the protocol (trusted nodes can only crash-fault).
[[nodiscard]] constexpr bool is_correct(NodeKind k) {
  return k != NodeKind::kByzantine;
}

/// True for nodes that hold the attested group secret.
[[nodiscard]] constexpr bool is_trusted(NodeKind k) {
  return k == NodeKind::kTrusted || k == NodeKind::kPoisonedTrusted;
}

}  // namespace raptee

template <>
struct std::hash<raptee::NodeId> {
  std::size_t operator()(raptee::NodeId id) const noexcept {
    // Fibonacci hashing: dense simulator IDs would otherwise collide in
    // power-of-two hash tables.
    return static_cast<std::size_t>(id.value) * 0x9E3779B97F4A7C15ull >> 16;
  }
};
