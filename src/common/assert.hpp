// Assertion and error machinery.
//
// Two tiers, following the Core Guidelines (I.6/E.12 discussion):
//  * RAPTEE_ASSERT   — internal invariants. Violation is a programming bug;
//                      always checked (simulation correctness beats speed),
//                      throws AssertionError so tests can observe it.
//  * RAPTEE_REQUIRE  — precondition on public API input; throws
//                      std::invalid_argument with a formatted message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace raptee {

/// Thrown when an internal invariant is violated.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void assertion_failed(const char* expr, const char* file, int line,
                                   const std::string& msg);
[[noreturn]] void requirement_failed(const char* expr, const char* file, int line,
                                     const std::string& msg);
}  // namespace detail

}  // namespace raptee

#define RAPTEE_ASSERT(expr)                                                     \
  do {                                                                          \
    if (!(expr)) ::raptee::detail::assertion_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define RAPTEE_ASSERT_MSG(expr, msg)                                            \
  do {                                                                          \
    if (!(expr)) {                                                              \
      std::ostringstream raptee_oss_;                                           \
      raptee_oss_ << msg;                                                       \
      ::raptee::detail::assertion_failed(#expr, __FILE__, __LINE__, raptee_oss_.str()); \
    }                                                                           \
  } while (false)

#define RAPTEE_REQUIRE(expr, msg)                                               \
  do {                                                                          \
    if (!(expr)) {                                                              \
      std::ostringstream raptee_oss_;                                           \
      raptee_oss_ << msg;                                                       \
      ::raptee::detail::requirement_failed(#expr, __FILE__, __LINE__, raptee_oss_.str()); \
    }                                                                           \
  } while (false)
