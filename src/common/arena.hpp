// Chunked arena allocator for per-round scratch storage.
//
// The engine's hot loop produces short-lived, trivially-copyable staging
// data every round — push delivery lists, pending pull pairs, shard merge
// tables — whose lifetime ends exactly at the next round boundary. An
// Arena serves those with bump-pointer allocation out of geometrically
// growing chunks: reset() rewinds the bump cursor but RETAINS every chunk,
// so after the first few rounds have grown the arena to its high-water
// mark, a round performs zero heap allocations (asserted end to end by
// sim_test_engine_zero_alloc).
//
// The arena is single-owner by design: one bump cursor, no synchronization.
// Sharded engine phases therefore keep per-node slots in persistent
// per-slot vectors (capacity amortizes the same way) and reserve the arena
// for the coordinating thread's merge/staging structures.
//
// Idiom references: fixed-capacity structures per plasmaraygun__RSE
// FixedStructures.h, chunked pools per ytsaurus row_buffer.cpp.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace raptee {

class Arena {
 public:
  /// `min_chunk_bytes` sizes the first chunk; later chunks grow
  /// geometrically so n bytes of live scratch occupy O(log n) chunks.
  explicit Arena(std::size_t min_chunk_bytes = 4096)
      : min_chunk_(min_chunk_bytes ? min_chunk_bytes : 1) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Bump-allocates `bytes` aligned to `align` (a power of two). The block
  /// is valid until the next reset(); nothing is ever individually freed.
  [[nodiscard]] void* allocate(std::size_t bytes,
                               std::size_t align = alignof(std::max_align_t)) {
    RAPTEE_ASSERT_MSG(align != 0 && (align & (align - 1)) == 0,
                      "arena alignment must be a power of two");
    if (bytes == 0) bytes = 1;
    while (current_ < chunks_.size()) {
      Chunk& chunk = chunks_[current_];
      // Align the absolute address, not the chunk-relative offset: a chunk
      // base is only max_align_t-aligned, so offset alignment alone would
      // under-align any stricter request.
      const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
      const std::size_t aligned = align_up(base + offset_, align) - base;
      if (aligned <= chunk.size && bytes <= chunk.size - aligned) {
        offset_ = aligned + bytes;
        allocated_ += bytes;
        return chunk.data.get() + aligned;
      }
      // Exhausted: move on. Retained chunks are revisited after reset().
      ++current_;
      offset_ = 0;
    }
    // Need a fresh chunk: geometric growth, but never smaller than the
    // request (+ alignment slack, since a fresh chunk's base is only
    // max_align_t-aligned).
    std::size_t want = min_chunk_;
    for (std::size_t i = 0; i < chunks_.size() && want < (std::size_t{1} << 30); ++i) {
      want *= 2;
    }
    const std::size_t slack = align > alignof(std::max_align_t) ? align : 0;
    if (want < bytes + slack) want = bytes + slack;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(want), want});
    capacity_ += want;
    current_ = chunks_.size() - 1;
    Chunk& chunk = chunks_.back();
    const std::size_t aligned =
        align_up(reinterpret_cast<std::uintptr_t>(chunk.data.get()), align) -
        reinterpret_cast<std::uintptr_t>(chunk.data.get());
    offset_ = aligned + bytes;
    allocated_ += bytes;
    return chunk.data.get() + aligned;
  }

  /// Typed form: an uninitialized array of `count` Ts.
  template <typename T>
  [[nodiscard]] T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destructed");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds the bump cursor to the first chunk, RETAINING all chunks: the
  /// steady-state round path re-serves the same memory with zero heap
  /// traffic. Outstanding blocks are invalidated.
  void reset() {
    current_ = 0;
    offset_ = 0;
    allocated_ = 0;
  }

  /// Frees every chunk (capacity drops to zero).
  void release() {
    chunks_.clear();
    capacity_ = 0;
    reset();
  }

  /// Bytes handed out since the last reset (alignment padding excluded).
  [[nodiscard]] std::size_t bytes_allocated() const { return allocated_; }
  /// Total bytes owned across chunks (the retained high-water footprint).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static constexpr std::size_t align_up(std::size_t value, std::size_t align) {
    return (value + align - 1) & ~(align - 1);
  }

  std::size_t min_chunk_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;   // chunk the bump cursor lives in
  std::size_t offset_ = 0;    // cursor within that chunk
  std::size_t allocated_ = 0;
  std::size_t capacity_ = 0;
};

/// Minimal vector over arena storage for trivially-copyable payloads (the
/// engine's Delivery/PendingPull staging records). Growth relocates into a
/// fresh arena block; the abandoned block is reclaimed wholesale by the
/// next Arena::reset(). Not a std::vector replacement — no erase, no
/// non-trivial element support — just the shape the round loop needs:
/// push_back, indexing (Rng::shuffle works on it), iteration, clear.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVector relocates with memcpy");
  static_assert(std::is_trivially_destructible_v<T>,
                "arena memory is never destructed");

 public:
  explicit ArenaVector(Arena& arena) : arena_(&arena) {}

  void reserve(std::size_t n) {
    if (n > capacity_) grow_to(n);
  }

  void push_back(const T& value) {
    if (size_ == capacity_) grow_to(capacity_ ? capacity_ * 2 : 8);
    data_[size_++] = value;
  }

  void clear() { size_ = 0; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

 private:
  void grow_to(std::size_t n) {
    T* fresh = arena_->allocate_array<T>(n);
    if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    capacity_ = n;
  }

  Arena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace raptee
