#include "common/rng.hpp"

#include <cmath>

namespace raptee {

Rng Rng::fork(std::string_view label) const {
  // SplitMix-style chain over the label bytes, then folded with the full
  // 256-bit state so distinct parents (or the same parent at different
  // points of its stream) derive unrelated children.
  std::uint64_t h = 0x53706C6974526E67ull;  // "SplitRng"
  for (const char c : label) h = mix64(h, static_cast<unsigned char>(c));
  return split(h);
}

Rng Rng::fork(std::string_view label, std::uint64_t a, std::uint64_t b) const {
  std::uint64_t h = 0x53706C6974526E67ull;  // "SplitRng"
  for (const char c : label) h = mix64(h, static_cast<unsigned char>(c));
  return split(mix64(mix64(h, a), b));
}

Rng Rng::split(std::uint64_t index) const {
  std::uint64_t s = mix64(state_[0], state_[1]);
  s = mix64(s, state_[2]);
  s = mix64(s, state_[3]);
  return Rng(mix64(s, index));
}

std::uint64_t Rng::below(std::uint64_t bound) {
  RAPTEE_ASSERT_MSG(bound > 0, "Rng::below requires a positive bound");
  // Lemire 2019: multiply-shift with rejection of the biased low range.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  RAPTEE_ASSERT_MSG(lo <= hi, "Rng::between requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform01() - 1.0;
    v = 2.0 * uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

void Rng::sample_indices_into(std::size_t n, std::size_t k,
                              std::vector<std::size_t>& out) {
  out.clear();
  if (k >= n) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    shuffle(out);
    return;
  }
  out.reserve(k);
  // Floyd's algorithm: iterate j over the top-k window; linear membership
  // scan is faster than a hash set for the small k used by gossip fan-outs.
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = static_cast<std::size_t>(below(j + 1));
    bool present = false;
    for (auto e : out) {
      if (e == t) { present = true; break; }
    }
    out.push_back(present ? j : t);
  }
  shuffle(out);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> out;
  sample_indices_into(n, k, out);
  return out;
}

std::string to_string(NodeKind k) {
  switch (k) {
    case NodeKind::kHonest: return "honest";
    case NodeKind::kTrusted: return "trusted";
    case NodeKind::kByzantine: return "byzantine";
    case NodeKind::kPoisonedTrusted: return "poisoned-trusted";
  }
  return "unknown";
}

}  // namespace raptee
