#include "common/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace raptee {

namespace {

std::atomic<int>& level_storage() {
  static std::atomic<int> level{[] {
    if (const char* env = std::getenv("RAPTEE_LOG_LEVEL")) {
      return static_cast<int>(parse_log_level(env));
    }
    return static_cast<int>(LogLevel::kWarn);
  }()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

// Relaxed suffices for the level gate: a racing set_log_level may drop or
// admit one borderline message, never tear the value or order other state.
LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::clog << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace detail

}  // namespace raptee
