#include "common/assert.hpp"

namespace raptee::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file, int line,
                   const std::string& msg) {
  std::ostringstream oss;
  oss << kind << ": `" << expr << "` at " << file << ':' << line;
  if (!msg.empty()) oss << " — " << msg;
  return oss.str();
}
}  // namespace

void assertion_failed(const char* expr, const char* file, int line,
                      const std::string& msg) {
  throw AssertionError(format("assertion failed", expr, file, line, msg));
}

void requirement_failed(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw std::invalid_argument(format("requirement violated", expr, file, line, msg));
}

}  // namespace raptee::detail
