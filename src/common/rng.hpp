// Deterministic random number generation.
//
// Every stochastic decision in the simulator flows through Rng so that a
// (seed, configuration) pair reproduces a run bit-for-bit, across threads:
// each simulation cell owns a private Rng forked from the master seed.
//
// The core generator is xoshiro256**, seeded via splitmix64 (the seeding
// procedure recommended by its authors). It is not cryptographically secure —
// the crypto subsystem has its own DRBG — but it is fast, has 256-bit state,
// and passes BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace raptee {

/// splitmix64 step; used for seeding and as a standalone integer mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Stateless strong mix of two 64-bit words (used to derive sub-seeds).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b * 0x9E3779B97F4A7C15ull);
  return splitmix64(s);
}

/// xoshiro256** deterministic pseudo-random generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xDEADBEEFCAFEF00Dull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent generator; `salt` distinguishes streams forked
  /// from the same parent (e.g. per-node, per-repetition). Advances this
  /// generator by one step, so successive forks with the same salt differ.
  [[nodiscard]] Rng fork(std::uint64_t salt) {
    return Rng(mix64(next(), salt));
  }

  /// Splittable label-based derivation (SplitMix-style): a child stream is
  /// a pure function of the parent's CURRENT state and `label`, and the
  /// parent is NOT advanced — so any number of tasks may derive their
  /// streams concurrently from a shared parent, in any order, and the
  /// same (parent state, label) pair always yields the same child. This is
  /// what makes the exec subsystem's parallel fan-out reproducible.
  [[nodiscard]] Rng fork(std::string_view label) const;

  /// Two-index variant of the labelled splittable fork: the child is a pure
  /// function of (parent state, label, a, b) and the parent is not advanced.
  /// This keys per-link streams — `fork("evt.link", from, to)` — without
  /// formatting the indices into the label.
  [[nodiscard]] Rng fork(std::string_view label, std::uint64_t a,
                         std::uint64_t b) const;

  /// Indexed variant of the splittable fork for hot paths (per-node streams
  /// in the engine's sharded phases); same contract, no string handling.
  [[nodiscard]] Rng split(std::uint64_t index) const;

  result_type next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  result_type operator()() { return next(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method (unbiased).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal();

  /// Normal with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// In-place Fisher–Yates shuffle.
  template <typename Vec>
  void shuffle(Vec& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks one element uniformly; the container must be non-empty.
  template <typename Vec>
  [[nodiscard]] auto& pick(Vec& v) {
    RAPTEE_ASSERT_MSG(!v.empty(), "pick from empty container");
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Samples k distinct indices from [0, n) uniformly (Floyd's algorithm,
  /// O(k) expected). Returns all of [0, n) when k >= n.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);
  /// Scratch-filling form with identical draws: clears and fills `out`
  /// (capacity persists across calls) — the hot-path variant behind the
  /// adversary's per-exchange poisoned answers.
  void sample_indices_into(std::size_t n, std::size_t k, std::vector<std::size_t>& out);

  /// Samples k elements without replacement from `v` (uniform subset, order
  /// randomised). Returns a copy of v shuffled when k >= v.size().
  template <typename T>
  [[nodiscard]] std::vector<T> sample(const std::vector<T>& v, std::size_t k) {
    std::vector<T> out;
    const auto idx = sample_indices(v.size(), k);
    out.reserve(idx.size());
    for (auto i : idx) out.push_back(v[i]);
    return out;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace raptee
