// DynamicBitset: a compact run-time-sized bitset with a popcount cache,
// used by the discovery tracker (one bit per correct node, one bitset per
// observer — millions of membership updates per simulated round).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace raptee {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Sets bit i; returns true if the bit transitioned 0 -> 1.
  bool set(std::size_t i) {
    RAPTEE_ASSERT_MSG(i < size_, "bitset index " << i << " out of range " << size_);
    const std::uint64_t mask = 1ull << (i & 63);
    std::uint64_t& w = words_[i >> 6];
    if (w & mask) return false;
    w |= mask;
    ++count_;
    return true;
  }

  [[nodiscard]] bool test(std::size_t i) const {
    RAPTEE_ASSERT_MSG(i < size_, "bitset index " << i << " out of range " << size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void reset(std::size_t i) {
    RAPTEE_ASSERT_MSG(i < size_, "bitset index " << i << " out of range " << size_);
    const std::uint64_t mask = 1ull << (i & 63);
    std::uint64_t& w = words_[i >> 6];
    if (w & mask) {
      w &= ~mask;
      --count_;
    }
  }

  void clear() {
    for (auto& w : words_) w = 0;
    count_ = 0;
  }

  /// Number of set bits (O(1): maintained incrementally).
  [[nodiscard]] std::size_t count() const { return count_; }

  [[nodiscard]] double fill_ratio() const {
    return size_ ? static_cast<double>(count_) / static_cast<double>(size_) : 0.0;
  }

 private:
  std::size_t size_ = 0;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace raptee
