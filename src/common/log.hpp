// Minimal leveled logger. Simulation hot paths never log; this exists for
// examples, the bench harness and debugging. Thread-safe (one mutex around
// the sink), level settable globally or via RAPTEE_LOG_LEVEL env var
// (trace|debug|info|warn|error|off).
#pragma once

#include <sstream>
#include <string>

namespace raptee {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);
/// Parses a level name; returns kInfo on unknown input.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace raptee

#define RAPTEE_LOG(level, expr)                                  \
  do {                                                           \
    if (static_cast<int>(level) >= static_cast<int>(::raptee::log_level())) { \
      std::ostringstream raptee_log_oss_;                        \
      raptee_log_oss_ << expr;                                   \
      ::raptee::detail::log_emit(level, raptee_log_oss_.str());  \
    }                                                            \
  } while (false)

#define RAPTEE_LOG_TRACE(expr) RAPTEE_LOG(::raptee::LogLevel::kTrace, expr)
#define RAPTEE_LOG_DEBUG(expr) RAPTEE_LOG(::raptee::LogLevel::kDebug, expr)
#define RAPTEE_LOG_INFO(expr) RAPTEE_LOG(::raptee::LogLevel::kInfo, expr)
#define RAPTEE_LOG_WARN(expr) RAPTEE_LOG(::raptee::LogLevel::kWarn, expr)
#define RAPTEE_LOG_ERROR(expr) RAPTEE_LOG(::raptee::LogLevel::kError, expr)
