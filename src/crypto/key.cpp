#include "crypto/key.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "crypto/sha256.hpp"

namespace raptee::crypto {

SymmetricKey SymmetricKey::derive(std::string_view label) const {
  const auto okm = hkdf_sha256(/*salt=*/{}, to_vector(), label, kBytes);
  std::array<std::uint8_t, kBytes> out{};
  std::memcpy(out.data(), okm.data(), kBytes);
  return SymmetricKey(out);
}

std::uint64_t SymmetricKey::fingerprint() const {
  const Digest256 d = sha256(bytes_.data(), bytes_.size());
  std::uint64_t fp = 0;
  for (int i = 0; i < 8; ++i) fp = (fp << 8) | d[static_cast<std::size_t>(i)];
  return fp;
}

Drbg::Drbg(std::uint64_t seed, std::string_view personalization) {
  std::uint8_t seed_bytes[8];
  for (int i = 0; i < 8; ++i) seed_bytes[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  HmacSha256 mac(seed_bytes, sizeof seed_bytes);
  mac.update(personalization);
  const Digest256 d = mac.finish();
  std::memcpy(state_key_.data(), d.data(), d.size());
}

void Drbg::fill(std::uint8_t* out, std::size_t len) {
  while (len > 0) {
    std::uint8_t ctr_bytes[8];
    for (int i = 0; i < 8; ++i) ctr_bytes[i] = static_cast<std::uint8_t>(counter_ >> (8 * i));
    ++counter_;
    const Digest256 block =
        hmac_sha256(state_key_.data(), state_key_.size(), ctr_bytes, sizeof ctr_bytes);
    const std::size_t take = std::min<std::size_t>(len, block.size());
    std::memcpy(out, block.data(), take);
    out += take;
    len -= take;
  }
}

std::vector<std::uint8_t> Drbg::bytes(std::size_t len) {
  std::vector<std::uint8_t> out(len);
  fill(out.data(), out.size());
  return out;
}

std::uint64_t Drbg::next_u64() {
  std::uint8_t buf[8];
  fill(buf, sizeof buf);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

SymmetricKey Drbg::generate_key() {
  std::array<std::uint8_t, SymmetricKey::kBytes> bytes{};
  fill(bytes.data(), bytes.size());
  return SymmetricKey(bytes);
}

std::array<std::uint8_t, 12> Drbg::generate_nonce() {
  std::array<std::uint8_t, 12> nonce{};
  fill(nonce.data(), nonce.size());
  return nonce;
}

Drbg Drbg::fork(std::string_view label) {
  Drbg child(next_u64(), label);
  return child;
}

}  // namespace raptee::crypto
