// AES-128 / AES-256 block cipher (FIPS 197) with CTR-mode streaming
// (NIST SP 800-38A), implemented from scratch for this offline
// reproduction. The paper's implementation uses Intel SGX-SSL AES-CTR for
// symmetric link encryption and for the mutual-authentication protocol's
// `[H(rA·rB)]_K` operation; this module provides both.
//
// A software table-based implementation (not constant-time against cache
// timing); acceptable here because the adversary lives inside the simulator
// and has no microarchitectural channel.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace raptee::crypto {

using Block = std::array<std::uint8_t, 16>;

/// Expanded-key AES context supporting the two key sizes used in practice.
class Aes {
 public:
  enum class KeySize { k128, k256 };

  Aes(const std::uint8_t* key, KeySize size);
  static Aes aes128(const std::array<std::uint8_t, 16>& key) {
    return Aes(key.data(), KeySize::k128);
  }
  static Aes aes256(const std::array<std::uint8_t, 32>& key) {
    return Aes(key.data(), KeySize::k256);
  }

  /// Encrypts one 16-byte block in place.
  void encrypt_block(Block& block) const;
  /// Decrypts one 16-byte block in place.
  void decrypt_block(Block& block) const;

  [[nodiscard]] int rounds() const { return rounds_; }

 private:
  int rounds_ = 0;                              // 10 for AES-128, 14 for AES-256
  std::array<std::uint32_t, 60> round_keys_{};  // max 15 round keys * 4 words
};

/// AES-CTR keystream cipher. Encryption and decryption are the same
/// operation (XOR with the keystream). The 16-byte initial counter block is
/// conventionally nonce(12) || counter(4, big-endian).
class AesCtr {
 public:
  AesCtr(const Aes& aes, const Block& initial_counter);

  /// XORs the keystream into `data` in place.
  void process(std::uint8_t* data, std::size_t len);
  void process(std::vector<std::uint8_t>& data) { process(data.data(), data.size()); }

  /// Resets to a new counter block (fresh message under the same key).
  void reset(const Block& initial_counter);

 private:
  void refill();

  const Aes& aes_;
  Block counter_{};
  Block keystream_{};
  std::size_t keystream_used_ = 16;
};

/// One-shot CTR transform: returns data XOR keystream(key, counter0).
[[nodiscard]] std::vector<std::uint8_t> aes_ctr_transform(
    const Aes& aes, const Block& initial_counter, const std::vector<std::uint8_t>& data);

/// Builds the conventional initial counter block nonce(12) || big-endian 0.
[[nodiscard]] Block make_counter_block(const std::array<std::uint8_t, 12>& nonce,
                                       std::uint32_t initial = 0);

}  // namespace raptee::crypto
