// Hashcash-style computational puzzles — the concrete instantiation of the
// rate-limiting mechanism Brahms *assumes* for its "limited pushes" defence
// (§II: "a mechanism that limits the message sending rate of nodes, for
// example, via computational challenges like Merkle's puzzles, virtual
// currency, etc.").
//
// A push is accompanied by a PuzzleSolution binding (sender, advertised id,
// round, nonce) whose SHA-256 must clear `difficulty` leading zero bits.
// Solving costs ~2^difficulty hashes; verification costs one. A node with
// bounded compute can therefore only afford a bounded number of pushes per
// round — exactly the adversary budget cap the Brahms analysis needs.
//
// The simulator normally *models* the cap (the Coordinator's per-member
// budget) instead of burning CPU; PuzzledPushGuard makes the mechanism
// concrete for tests, examples and small deployments.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "crypto/sha256.hpp"

namespace raptee::crypto {

struct PuzzleSolution {
  std::uint64_t nonce = 0;

  friend bool operator==(const PuzzleSolution&, const PuzzleSolution&) = default;
};

/// The puzzle statement: H(sender ‖ advertised ‖ round ‖ nonce) must have
/// `difficulty` leading zero bits.
class PushPuzzle {
 public:
  PushPuzzle(NodeId sender, NodeId advertised, Round round, unsigned difficulty)
      : sender_(sender), advertised_(advertised), round_(round),
        difficulty_(difficulty) {}

  [[nodiscard]] unsigned difficulty() const { return difficulty_; }

  /// Brute-forces a solution; `max_attempts` bounds the search (0 = until
  /// found). Returns nullopt when the budget is exhausted — the caller's
  /// push allowance for the round is spent.
  [[nodiscard]] std::optional<PuzzleSolution> solve(std::uint64_t start_nonce = 0,
                                                    std::uint64_t max_attempts = 0) const;

  /// One-hash verification.
  [[nodiscard]] bool verify(const PuzzleSolution& solution) const;

  /// Expected number of hash evaluations to solve: 2^difficulty.
  [[nodiscard]] double expected_work() const {
    return static_cast<double>(1ull << difficulty_);
  }

 private:
  [[nodiscard]] Digest256 digest_for(std::uint64_t nonce) const;

  NodeId sender_;
  NodeId advertised_;
  Round round_;
  unsigned difficulty_;
};

/// True iff `digest` has at least `bits` leading zero bits.
[[nodiscard]] bool has_leading_zero_bits(const Digest256& digest, unsigned bits);

/// Receiver-side guard implementing defence (i): accepts a push only with a
/// valid, unused-this-round puzzle solution. Replays within a round are
/// rejected; the per-round ledger resets on next_round().
class PuzzledPushGuard {
 public:
  explicit PuzzledPushGuard(unsigned difficulty) : difficulty_(difficulty) {}

  [[nodiscard]] unsigned difficulty() const { return difficulty_; }

  /// Validates a push received in `round`.
  [[nodiscard]] bool admit(NodeId sender, NodeId advertised, Round round,
                           const PuzzleSolution& solution);

  void next_round();

  [[nodiscard]] std::size_t admitted_this_round() const { return seen_.size(); }
  [[nodiscard]] std::uint64_t rejected_total() const { return rejected_; }

 private:
  unsigned difficulty_;
  /// (sender‖advertised, nonce) pairs admitted this round — replay
  /// suppression of the full puzzle statement.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen_;
  std::uint64_t rejected_ = 0;
};

}  // namespace raptee::crypto
