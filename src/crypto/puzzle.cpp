#include "crypto/puzzle.hpp"

#include <algorithm>

namespace raptee::crypto {

bool has_leading_zero_bits(const Digest256& digest, unsigned bits) {
  unsigned checked = 0;
  for (std::uint8_t byte : digest) {
    if (checked + 8 <= bits) {
      if (byte != 0) return false;
      checked += 8;
      continue;
    }
    const unsigned remaining = bits - checked;
    if (remaining == 0) return true;
    return (byte >> (8 - remaining)) == 0;
  }
  return checked >= bits;
}

Digest256 PushPuzzle::digest_for(std::uint64_t nonce) const {
  Sha256 ctx;
  std::uint8_t header[4 + 4 + 4 + 8];
  std::size_t off = 0;
  auto put32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) header[off++] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  put32(sender_.value);
  put32(advertised_.value);
  put32(round_);
  for (int i = 0; i < 8; ++i) header[off++] = static_cast<std::uint8_t>(nonce >> (8 * i));
  ctx.update(header, sizeof header);
  return ctx.finish();
}

std::optional<PuzzleSolution> PushPuzzle::solve(std::uint64_t start_nonce,
                                                std::uint64_t max_attempts) const {
  std::uint64_t nonce = start_nonce;
  std::uint64_t attempts = 0;
  for (;;) {
    if (has_leading_zero_bits(digest_for(nonce), difficulty_)) {
      return PuzzleSolution{nonce};
    }
    ++nonce;
    ++attempts;
    if (max_attempts != 0 && attempts >= max_attempts) return std::nullopt;
  }
}

bool PushPuzzle::verify(const PuzzleSolution& solution) const {
  return has_leading_zero_bits(digest_for(solution.nonce), difficulty_);
}

bool PuzzledPushGuard::admit(NodeId sender, NodeId advertised, Round round,
                             const PuzzleSolution& solution) {
  const PushPuzzle puzzle(sender, advertised, round, difficulty_);
  if (!puzzle.verify(solution)) {
    ++rejected_;
    return false;
  }
  const auto key = std::make_pair(
      (static_cast<std::uint64_t>(sender.value) << 32) | advertised.value,
      solution.nonce);
  if (std::find(seen_.begin(), seen_.end(), key) != seen_.end()) {
    ++rejected_;  // replay within the round
    return false;
  }
  seen_.push_back(key);
  return true;
}

void PuzzledPushGuard::next_round() { seen_.clear(); }

}  // namespace raptee::crypto
