// Min-wise independent hash family (Broder et al., JCSS 2000) for the Brahms
// sampling component. Each Brahms sampler draws one member of this family at
// initialization and keeps the stream element with the minimal hash — over a
// stream containing each distinct ID at least once, the retained element is
// a uniform sample, regardless of duplication or ordering of the stream.
//
// We use a seeded 64-bit mixer (xxhash-style avalanche over id ^ seed) as a
// practical approximation of a min-wise independent permutation; the
// property tests verify uniformity and order-invariance empirically.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace raptee::crypto {

class MinWiseHash {
 public:
  MinWiseHash() = default;
  explicit MinWiseHash(std::uint64_t seed) : seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  [[nodiscard]] std::uint64_t operator()(NodeId id) const {
    std::uint64_t x = (static_cast<std::uint64_t>(id.value) + 0x9E3779B97F4A7C15ull) ^ seed_;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
  }

 private:
  std::uint64_t seed_ = 0;
};

}  // namespace raptee::crypto
