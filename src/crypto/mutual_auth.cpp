#include "crypto/mutual_auth.hpp"

#include <cstring>

namespace raptee::crypto {

namespace {

/// Nonce for the proof cipher: first 12 bytes of H(first · second · "nonce").
/// Binding the CTR nonce to both challenges makes every handshake's
/// keystream fresh, so tokens cannot be replayed across handshakes.
Block proof_counter_block(const AuthNonce& first, const AuthNonce& second) {
  Sha256 ctx;
  ctx.update(first.data(), first.size());
  ctx.update(second.data(), second.size());
  ctx.update("raptee-auth-nonce");
  const Digest256 d = ctx.finish();
  std::array<std::uint8_t, 12> nonce{};
  std::memcpy(nonce.data(), d.data(), nonce.size());
  return make_counter_block(nonce);
}

Digest256 challenge_hash(const AuthNonce& first, const AuthNonce& second) {
  Sha256 ctx;
  ctx.update(first.data(), first.size());
  ctx.update(second.data(), second.size());
  return ctx.finish();
}

AuthNonce random_nonce(Drbg& rng) {
  AuthNonce n{};
  rng.fill(n.data(), n.size());
  return n;
}

}  // namespace

AuthToken make_proof(const SymmetricKey& key, const AuthNonce& first,
                     const AuthNonce& second) {
  const Digest256 h = challenge_hash(first, second);
  AuthToken token{};
  std::memcpy(token.data(), h.data(), h.size());
  const Aes aes = Aes::aes256(key.bytes());
  AesCtr ctr(aes, proof_counter_block(first, second));
  ctr.process(token.data(), token.size());
  return token;
}

bool check_proof(const SymmetricKey& key, const AuthNonce& first, const AuthNonce& second,
                 const AuthToken& token) {
  AuthToken plain = token;
  const Aes aes = Aes::aes256(key.bytes());
  AesCtr ctr(aes, proof_counter_block(first, second));
  ctr.process(plain.data(), plain.size());
  const Digest256 expected = challenge_hash(first, second);
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < plain.size(); ++i) diff |= plain[i] ^ expected[i];
  return diff == 0;
}

AuthInitiator::AuthInitiator(const SymmetricKey& own_key, Drbg& rng)
    : key_(own_key), r_a_(random_nonce(rng)) {}

bool AuthInitiator::consume_response(const AuthResponse& response,
                                     AuthConfirm& out_confirm) {
  peer_trusted_ = check_proof(key_, r_a_, response.r_b, response.proof_b);
  // Always emit a well-formed confirm so traffic is indistinguishable.
  out_confirm.proof_a = make_proof(key_, response.r_b, r_a_);
  return peer_trusted_;
}

AuthResponder::AuthResponder(const SymmetricKey& own_key, Drbg& rng)
    : key_(own_key), r_b_(random_nonce(rng)) {}

AuthResponse AuthResponder::respond(const AuthChallenge& challenge) {
  r_a_ = challenge.r_a;
  AuthResponse response;
  response.r_b = r_b_;
  response.proof_b = make_proof(key_, r_a_, r_b_);
  return response;
}

void AuthResponder::consume_confirm(const AuthConfirm& confirm) {
  peer_trusted_ = check_proof(key_, r_b_, r_a_, confirm.proof_a);
}

}  // namespace raptee::crypto
