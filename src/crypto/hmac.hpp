// HMAC-SHA-256 (RFC 2104 / FIPS 198-1) and an HKDF-style key derivation.
// Used for message authentication on encrypted links, attestation quotes,
// and deriving per-purpose subkeys from node master secrets.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "crypto/sha256.hpp"

namespace raptee::crypto {

/// Incremental HMAC-SHA-256.
class HmacSha256 {
 public:
  HmacSha256(const std::uint8_t* key, std::size_t key_len);
  explicit HmacSha256(const std::vector<std::uint8_t>& key)
      : HmacSha256(key.data(), key.size()) {}

  void update(const std::uint8_t* data, std::size_t len) { inner_.update(data, len); }
  void update(std::string_view s) { inner_.update(s); }
  void update(const std::vector<std::uint8_t>& v) { inner_.update(v); }

  [[nodiscard]] Digest256 finish();

 private:
  Sha256 inner_;
  std::array<std::uint8_t, 64> opad_key_{};
};

/// One-shot HMAC.
[[nodiscard]] Digest256 hmac_sha256(const std::uint8_t* key, std::size_t key_len,
                                    const std::uint8_t* data, std::size_t data_len);
[[nodiscard]] Digest256 hmac_sha256(const std::vector<std::uint8_t>& key,
                                    std::string_view data);

/// HKDF-Extract-then-Expand (RFC 5869), SHA-256 based, producing `length`
/// bytes of key material bound to `info`.
[[nodiscard]] std::vector<std::uint8_t> hkdf_sha256(
    const std::vector<std::uint8_t>& salt, const std::vector<std::uint8_t>& ikm,
    std::string_view info, std::size_t length);

}  // namespace raptee::crypto
