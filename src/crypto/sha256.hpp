// SHA-256 (FIPS 180-4), implemented from scratch for this offline
// reproduction. Used by the mutual-authentication protocol (H(rA·rB)),
// HMAC, enclave measurements and the deterministic DRBG.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace raptee::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(const std::uint8_t* data, std::size_t len);
  void update(std::string_view s) {
    // raptee-lint: allow(cast-allowlist) audited byte pun: char -> uint8_t view of the same buffer
    update(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
  void update(const std::vector<std::uint8_t>& v) { update(v.data(), v.size()); }

  /// Finalizes and returns the digest. The context must be reset() before reuse.
  [[nodiscard]] Digest256 finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// One-shot convenience.
[[nodiscard]] Digest256 sha256(const std::uint8_t* data, std::size_t len);
[[nodiscard]] Digest256 sha256(std::string_view s);
[[nodiscard]] Digest256 sha256(const std::vector<std::uint8_t>& v);

/// Lowercase hex encoding of a digest.
[[nodiscard]] std::string to_hex(const Digest256& d);

/// Constant-time digest comparison (timing-safe even though the simulator
/// adversary cannot time us; done for fidelity).
[[nodiscard]] bool digest_equal(const Digest256& a, const Digest256& b);

}  // namespace raptee::crypto
