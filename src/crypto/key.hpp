// Symmetric key material and a deterministic DRBG.
//
// Key model (paper §IV-A): every untrusted node generates a random secret
// key at initialization; all trusted nodes share a common *group* secret
// provisioned during remote attestation. Keys here are 256-bit.
//
// The DRBG is HMAC-SHA-256 in counter mode seeded from the simulation seed —
// deterministic so that experiments reproduce, yet structurally the same as
// a deployed CSPRNG.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/hmac.hpp"

namespace raptee::crypto {

/// 256-bit symmetric secret.
class SymmetricKey {
 public:
  static constexpr std::size_t kBytes = 32;

  SymmetricKey() = default;
  explicit SymmetricKey(std::array<std::uint8_t, kBytes> bytes) : bytes_(bytes) {}

  [[nodiscard]] const std::array<std::uint8_t, kBytes>& bytes() const { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> to_vector() const {
    return {bytes_.begin(), bytes_.end()};
  }

  /// Derives a purpose-bound subkey (HKDF with `label` as info).
  [[nodiscard]] SymmetricKey derive(std::string_view label) const;

  /// Short public fingerprint (first 8 bytes of SHA-256 of the key). Safe to
  /// expose: preimage-resistant, reveals only equality of keys — and RAPTEE
  /// never sends it in clear anyway (see auth protocol).
  [[nodiscard]] std::uint64_t fingerprint() const;

  friend bool operator==(const SymmetricKey& a, const SymmetricKey& b) {
    // Constant-time compare.
    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < kBytes; ++i) diff |= a.bytes_[i] ^ b.bytes_[i];
    return diff == 0;
  }
  friend bool operator!=(const SymmetricKey& a, const SymmetricKey& b) {
    return !(a == b);
  }

 private:
  std::array<std::uint8_t, kBytes> bytes_{};
};

/// Deterministic HMAC-DRBG (simplified SP 800-90A shape): out_i =
/// HMAC(seed_key, counter). Fork-able for independent streams.
class Drbg {
 public:
  explicit Drbg(std::uint64_t seed, std::string_view personalization = "raptee-drbg");

  /// Fills `out` with pseudo-random bytes.
  void fill(std::uint8_t* out, std::size_t len);
  [[nodiscard]] std::vector<std::uint8_t> bytes(std::size_t len);
  [[nodiscard]] std::uint64_t next_u64();
  [[nodiscard]] SymmetricKey generate_key();
  [[nodiscard]] std::array<std::uint8_t, 12> generate_nonce();

  /// Derives an independent DRBG (e.g. one per node).
  [[nodiscard]] Drbg fork(std::string_view label);

 private:
  std::array<std::uint8_t, 32> state_key_{};
  std::uint64_t counter_ = 0;
};

}  // namespace raptee::crypto
