#include "crypto/hmac.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace raptee::crypto {

HmacSha256::HmacSha256(const std::uint8_t* key, std::size_t key_len) {
  std::array<std::uint8_t, 64> block_key{};
  if (key_len > block_key.size()) {
    const Digest256 kd = sha256(key, key_len);
    std::memcpy(block_key.data(), kd.data(), kd.size());
  } else {
    std::memcpy(block_key.data(), key, key_len);
  }
  std::array<std::uint8_t, 64> ipad_key{};
  for (std::size_t i = 0; i < 64; ++i) {
    ipad_key[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
    opad_key_[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  }
  inner_.update(ipad_key.data(), ipad_key.size());
}

Digest256 HmacSha256::finish() {
  const Digest256 inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(opad_key_.data(), opad_key_.size());
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

Digest256 hmac_sha256(const std::uint8_t* key, std::size_t key_len,
                      const std::uint8_t* data, std::size_t data_len) {
  HmacSha256 mac(key, key_len);
  mac.update(data, data_len);
  return mac.finish();
}

Digest256 hmac_sha256(const std::vector<std::uint8_t>& key, std::string_view data) {
  HmacSha256 mac(key);
  mac.update(data);
  return mac.finish();
}

std::vector<std::uint8_t> hkdf_sha256(const std::vector<std::uint8_t>& salt,
                                      const std::vector<std::uint8_t>& ikm,
                                      std::string_view info, std::size_t length) {
  RAPTEE_REQUIRE(length <= 255 * 32, "HKDF output limited to 255 blocks");
  // Extract
  HmacSha256 extract(salt.empty() ? std::vector<std::uint8_t>(32, 0) : salt);
  extract.update(ikm);
  const Digest256 prk = extract.finish();

  // Expand
  std::vector<std::uint8_t> okm;
  okm.reserve(length);
  Digest256 t{};
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    HmacSha256 mac(prk.data(), prk.size());
    mac.update(t.data(), t_len);
    mac.update(info);
    mac.update(&counter, 1);
    t = mac.finish();
    t_len = t.size();
    const std::size_t take = std::min(t.size(), length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
    ++counter;
  }
  return okm;
}

}  // namespace raptee::crypto
