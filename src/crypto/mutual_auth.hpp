// RAPTEE mutual-authentication protocol (paper §IV-A).
//
// Goal: let two trusted nodes discover that they share the attested group
// secret, while any mixed or untrusted pair learns nothing except "not my
// key". Three messages, run before every pull request:
//
//   A -> B : rA                                  (random challenge)
//   B -> A : rB, [H(rA · rB)]_KB                 (proof under B's key)
//   A -> B : [H(rB · rA)]_KA                     (proof under A's key)
//
// A decrypts B's token with its own key KA; if the result equals H(rA·rB),
// the keys are identical and A marks B trusted. B symmetrically verifies
// A's third message. Encryption is AES-256-CTR with a nonce derived from
// both challenges (fresh per handshake, preventing replay), hashing is
// SHA-256.
//
// Cost note: the simulation offers three behaviourally-equivalent transports
// (design decision D5 in DESIGN.md): the full three-message handshake below,
// a single keyed-fingerprint comparison, and a type oracle. Tests assert all
// three yield identical trust decisions.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/key.hpp"
#include "crypto/sha256.hpp"

namespace raptee::crypto {

/// 16-byte handshake challenge.
using AuthNonce = std::array<std::uint8_t, 16>;

/// Encrypted 32-byte proof token.
using AuthToken = std::array<std::uint8_t, 32>;

/// Message 1 (A -> B).
struct AuthChallenge {
  AuthNonce r_a{};
};

/// Message 2 (B -> A).
struct AuthResponse {
  AuthNonce r_b{};
  AuthToken proof_b{};  // [H(rA · rB)]_KB
};

/// Message 3 (A -> B).
struct AuthConfirm {
  AuthToken proof_a{};  // [H(rB · rA)]_KA
};

/// Initiator-side state machine.
class AuthInitiator {
 public:
  AuthInitiator(const SymmetricKey& own_key, Drbg& rng);

  /// Produces message 1.
  [[nodiscard]] AuthChallenge challenge() const { return {r_a_}; }

  /// Consumes message 2; returns true iff the responder proved knowledge of
  /// our key (i.e. both parties are trusted). Always produces message 3 so
  /// the traffic pattern is identical either way (the confirm token is
  /// garbage-but-well-formed under our own key when authentication failed —
  /// indistinguishable from a genuine token without the group key).
  bool consume_response(const AuthResponse& response, AuthConfirm& out_confirm);

  [[nodiscard]] bool peer_trusted() const { return peer_trusted_; }

 private:
  SymmetricKey key_;
  AuthNonce r_a_{};
  bool peer_trusted_ = false;
};

/// Responder-side state machine.
class AuthResponder {
 public:
  AuthResponder(const SymmetricKey& own_key, Drbg& rng);

  /// Consumes message 1, produces message 2.
  [[nodiscard]] AuthResponse respond(const AuthChallenge& challenge);

  /// Consumes message 3; afterwards peer_trusted() reports whether the
  /// initiator shares our key.
  void consume_confirm(const AuthConfirm& confirm);

  [[nodiscard]] bool peer_trusted() const { return peer_trusted_; }

 private:
  SymmetricKey key_;
  AuthNonce r_a_{};
  AuthNonce r_b_{};
  bool peer_trusted_ = false;
};

/// Encrypts H(first · second) under `key` with a nonce bound to both
/// challenges. Exposed for white-box tests.
[[nodiscard]] AuthToken make_proof(const SymmetricKey& key, const AuthNonce& first,
                                   const AuthNonce& second);

/// Verifies a proof token: decrypts under `key` and compares against
/// H(first · second).
[[nodiscard]] bool check_proof(const SymmetricKey& key, const AuthNonce& first,
                               const AuthNonce& second, const AuthToken& token);

}  // namespace raptee::crypto
