// Traffic listeners observe engine-level events without coupling metrics or
// attack code to node internals. The discovery tracker counts IDs crossing
// links; the identification attack watches pull replies received by
// Byzantine nodes; the pollution tracker scans views at round end.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace raptee::sim {

class Engine;

class ITrafficListener {
 public:
  virtual ~ITrafficListener() = default;

  virtual void on_push_delivered(Round round, NodeId from, NodeId advertised, NodeId to) {
    (void)round; (void)from; (void)advertised; (void)to;
  }
  virtual void on_pull_reply_delivered(Round round, NodeId from, NodeId to,
                                       const std::vector<NodeId>& view) {
    (void)round; (void)from; (void)to; (void)view;
  }
  virtual void on_swap_completed(Round round, NodeId initiator, NodeId responder,
                                 const std::vector<NodeId>& offered,
                                 const std::vector<NodeId>& returned) {
    (void)round; (void)initiator; (void)responder; (void)offered; (void)returned;
  }
  virtual void on_round_end(Round round, Engine& engine) { (void)round; (void)engine; }
};

}  // namespace raptee::sim
