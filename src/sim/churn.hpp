// Churn schedules: declarative join/leave/crash events applied to the
// engine between rounds. Used by the churn example, the churn integration
// tests and the sampler-validation tests.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace raptee::sim {

class Engine;

struct ChurnEvent {
  Round at_round = 0;
  enum class Kind { kLeave, kRejoin } kind = Kind::kLeave;
  NodeId node;
};

/// A precomputed list of churn events; apply() fires those scheduled for the
/// engine's current round. Rejoining nodes get a fresh bootstrap view.
class ChurnSchedule {
 public:
  void add(ChurnEvent event) { events_.push_back(event); }

  /// Builds a schedule where each round in [from, to) removes
  /// `rate` fraction of `population` (chosen uniformly, no repeats) and
  /// optionally rejoins them `downtime` rounds later. Fractional per-round
  /// quotas accumulate across rounds, so small rates still churn (e.g.
  /// 0.0005 × 1000 nodes = one leave every other round).
  static ChurnSchedule random_churn(const std::vector<NodeId>& population, Round from,
                                    Round to, double rate_per_round, Round downtime,
                                    bool rejoin, Rng& rng);

  /// Fires all events scheduled at the engine's current round. Missed
  /// rejoins (the engine stepped past their round without an apply) are
  /// applied late rather than discarded; missed leaves are skipped.
  /// `bootstrap_view_size` controls the view handed to rejoining nodes.
  void apply(Engine& engine, std::size_t bootstrap_view_size);

  [[nodiscard]] const std::vector<ChurnEvent>& events() const { return events_; }

 private:
  std::vector<ChurnEvent> events_;
  std::size_t cursor_ = 0;
  std::vector<NodeId> alive_scratch_;       // rejoin-bootstrap scratch
  std::vector<std::size_t> draw_scratch_;
};

}  // namespace raptee::sim
