#include "sim/engine.hpp"

#include <algorithm>
#include <optional>

#include "common/assert.hpp"
#include "obs/timer.hpp"

namespace raptee::sim {

namespace {

constexpr const char* kPhaseHistNames[Engine::kPhaseCount] = {
    "engine.phase.begin_round_us", "engine.phase.push_gen_us",
    "engine.phase.push_deliver_us", "engine.phase.pulls_us",
    "engine.phase.end_round_us"};

struct CounterMetricEntry {
  const char* name;
  std::uint64_t Engine::Counters::* field;
};

constexpr CounterMetricEntry kCounterEntries[] = {
    {"engine.pushes_sent", &Engine::Counters::pushes_sent},
    {"engine.pushes_delivered", &Engine::Counters::pushes_delivered},
    {"engine.pulls_started", &Engine::Counters::pulls_started},
    {"engine.pulls_completed", &Engine::Counters::pulls_completed},
    {"engine.pulls_timed_out", &Engine::Counters::pulls_timed_out},
    {"engine.swaps_completed", &Engine::Counters::swaps_completed},
    {"engine.legs_suppressed", &Engine::Counters::legs_suppressed},
    {"engine.legs_dropped", &Engine::Counters::legs_dropped},
    {"engine.legs_tampered", &Engine::Counters::legs_tampered},
    {"engine.legs_corrupted", &Engine::Counters::legs_corrupted},
    {"engine.wire_bytes", &Engine::Counters::wire_bytes},
    {"engine.legs_late", &Engine::Counters::legs_late},
    {"engine.partition_drops", &Engine::Counters::partition_drops},
};
static_assert(std::size(kCounterEntries) == 13);

// Event kinds on the engine's scheduler: `a` indexes the per-round staging
// array of the matching kind; a pull event's `b` carries the exchange's
// virtual completion time.
constexpr std::uint32_t kEvtPush = 0;
constexpr std::uint32_t kEvtPull = 1;

}  // namespace

Engine::Engine(EngineConfig config)
    : config_(config), rng_(mix64(config.seed, 0x656E67696E65ull)) {
  config_.event.validate();
  crypto::Drbg key_rng(mix64(config.seed, 0x6C696E6B6Dull));
  link_master_ = key_rng.generate_key();
  if (config_.encrypt_links) {
    link_table_ =
        std::make_unique<wire::LinkTable>(link_master_, config_.link_sessions);
  }
  obs::Registry& reg = obs::Registry::global();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    phase_hist_[i] = &reg.histogram(kPhaseHistNames[i]);
  }
  for (std::size_t i = 0; i < kCounterMetrics; ++i) {
    counter_metrics_[i] = &reg.counter(kCounterEntries[i].name);
  }
  rounds_metric_ = &reg.counter("engine.rounds");
  if (config_.event.enabled) {
    evt_queue_hist_ = &reg.histogram("evt.queue_depth");
    evt_events_hist_ = &reg.histogram("evt.events_us");
    evt_virtual_hist_ = &reg.histogram("evt.virtual_ms");
  }
}

std::uint64_t Engine::link_derivations() const {
  return link_table_ ? link_table_->derivations() : 0;
}

std::size_t Engine::link_active_sessions() const {
  return link_table_ ? link_table_->active_sessions() : 0;
}

void Engine::add_node(std::unique_ptr<INode> node, NodeKind node_kind) {
  RAPTEE_REQUIRE(node != nullptr, "null node");
  RAPTEE_REQUIRE(node->id().value == nodes_.size(),
                 "node ids must be dense: expected " << nodes_.size() << ", got "
                                                     << node->id().value);
  nodes_.push_back(std::move(node));
  kinds_.push_back(node_kind);
  alive_.push_back(1);
}

INode& Engine::node(NodeId id) {
  RAPTEE_REQUIRE(id.value < nodes_.size(), "unknown node " << id.value);
  return *nodes_[id.value];
}

const INode& Engine::node(NodeId id) const {
  RAPTEE_REQUIRE(id.value < nodes_.size(), "unknown node " << id.value);
  return *nodes_[id.value];
}

NodeKind Engine::kind(NodeId id) const {
  RAPTEE_REQUIRE(id.value < kinds_.size(), "unknown node " << id.value);
  return kinds_[id.value];
}

bool Engine::is_alive(NodeId id) const {
  return id.value < alive_.size() && alive_[id.value] != 0;
}

void Engine::set_alive(NodeId id, bool alive) {
  RAPTEE_REQUIRE(id.value < alive_.size(), "unknown node " << id.value);
  alive_[id.value] = alive ? 1 : 0;
  // Churn tears link sessions down: a crashed endpoint loses its cipher
  // state, and a rejoining one re-handshakes — either way the pair must
  // re-establish with a fresh key rather than resume stale sequence state.
  if (link_table_) link_table_->invalidate(id);
}

std::vector<NodeId> Engine::alive_ids(const std::function<bool(NodeKind)>& pred) const {
  std::vector<NodeId> out;
  out.reserve(size());
  alive_ids(out, pred);
  return out;
}

void Engine::alive_ids(std::vector<NodeId>& out,
                       const std::function<bool(NodeKind)>& pred) const {
  out.clear();
  if (out.capacity() < nodes_.size()) out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!alive_[i]) continue;
    if (pred && !pred(kinds_[i])) continue;
    out.push_back(NodeId{static_cast<std::uint32_t>(i)});
  }
}

void Engine::bootstrap_uniform(std::size_t view_size) {
  const std::vector<NodeId> everyone = alive_ids();
  // Empty/singleton population: there is nobody (or only oneself) to draw
  // from. Hand out empty views instead of letting `everyone.size() - 1`
  // underflow to SIZE_MAX below.
  if (everyone.size() <= 1) {
    bootstrap_with([](NodeId, NodeKind) { return std::vector<NodeId>{}; });
    return;
  }
  // Index-remap draw over the one shared alive list. The legacy form built
  // a per-node `candidates` copy of everyone-minus-self — O(n²) time and
  // memory traffic at bootstrap. rng.sample(candidates, k) is defined as
  // sample_indices(candidates.size(), k) followed by candidates[j], and
  // candidates[j] == everyone[j < rank ? j : j + 1] where rank is self's
  // position — so drawing the same indices from [0, n-1) and bumping past
  // rank reproduces the legacy views draw for draw (goldens unaffected).
  std::vector<std::size_t> draw_scratch;
  std::size_t rank = 0;  // bootstrap_with visits ids ascending, like everyone
  bootstrap_with([&](NodeId self, NodeKind) {
    while (rank < everyone.size() && everyone[rank].value < self.value) ++rank;
    const bool present = rank < everyone.size() && everyone[rank] == self;
    rng_.sample_indices_into(everyone.size() - 1, view_size, draw_scratch);
    std::vector<NodeId> view;
    view.reserve(draw_scratch.size());
    for (const std::size_t j : draw_scratch) {
      view.push_back(everyone[present && j >= rank ? j + 1 : j]);
    }
    return view;
  });
}

void Engine::bootstrap_with(
    const std::function<std::vector<NodeId>(NodeId, NodeKind)>& provider) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!alive_[i]) continue;
    const NodeId id{static_cast<std::uint32_t>(i)};
    nodes_[i]->bootstrap(provider(id, kinds_[i]));
  }
}

void Engine::add_listener(ITrafficListener* listener) {
  RAPTEE_REQUIRE(listener != nullptr, "null listener");
  listeners_.push_back(listener);
}

void Engine::remove_listener(ITrafficListener* listener) {
  if (listener_depth_ > 0) {
    // Mid-dispatch removal (a listener removing itself or a peer from
    // inside a callback): erasing here would invalidate the dispatch
    // iteration, so null the slot and compact after the outermost dispatch.
    for (auto*& slot : listeners_) {
      if (slot == listener) {
        slot = nullptr;
        listeners_dirty_ = true;
      }
    }
    return;
  }
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

template <typename Fn>
void Engine::for_listeners(const Fn& fn) {
  ++listener_depth_;
  for (std::size_t i = 0; i < listeners_.size(); ++i) {
    if (listeners_[i] != nullptr) fn(*listeners_[i]);
  }
  --listener_depth_;
  if (listener_depth_ == 0 && listeners_dirty_) {
    listeners_.erase(std::remove(listeners_.begin(), listeners_.end(),
                                 static_cast<ITrafficListener*>(nullptr)),
                     listeners_.end());
    listeners_dirty_ = false;
  }
}

exec::ThreadPool& Engine::pool() {
  if (!pool_) {
    pool_ = std::make_unique<exec::ThreadPool>(
        exec::resolve_threads(config_.threads, nodes_.size()));
  }
  return *pool_;
}

template <typename Fn>
void Engine::shard_over_alive(const Fn& fn) {
  // Byzantine nodes share the mutable adversary Coordinator: run them on
  // this thread first, in index order, exactly as the sequential loop's
  // first-Byzantine-triggers-planning order does. Everyone else touches
  // only its own state (plus read-only engine state) and shards freely.
  for (std::size_t k = 0; k < alive_scratch_.size(); ++k) {
    if (kinds_[alive_scratch_[k].value] == NodeKind::kByzantine) fn(k);
  }
  pool().parallel_for(alive_scratch_.size(), [&](std::size_t k) {
    if (kinds_[alive_scratch_[k].value] != NodeKind::kByzantine) fn(k);
  });
}

void Engine::refresh_views() {
  const std::size_t n = nodes_.size();
  if (view_offset_.size() != n) view_offset_.resize(n);
  if (view_len_.size() != n) view_len_.resize(n);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    view_offset_[i] = total;
    total += nodes_[i]->view_capacity();
  }
  if (view_slab_.size() < total) view_slab_.resize(total);
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive_[i]) {
      view_len_[i] = 0;
      continue;
    }
    const std::size_t cap = (i + 1 < n ? view_offset_[i + 1] : total) - view_offset_[i];
    const std::size_t len = nodes_[i]->copy_view(view_slab_.data() + view_offset_[i], cap);
    RAPTEE_ASSERT_MSG(len <= cap, "copy_view overflowed its slab slot");
    view_len_[i] = static_cast<std::uint32_t>(len);
  }
}

std::span<const NodeId> Engine::view_of(NodeId id) const {
  RAPTEE_REQUIRE(id.value < view_len_.size(),
                 "view_of: no slab entry for node " << id.value
                                                    << " (refresh_views first)");
  return {view_slab_.data() + view_offset_[id.value], view_len_[id.value]};
}

void Engine::run_begin_rounds() {
  alive_ids(alive_scratch_);
  if (!sharded()) {
    for (const NodeId id : alive_scratch_) nodes_[id.value]->begin_round(round_);
    return;
  }
  // begin_round touches only per-node state (buffer clears, view ageing):
  // no draws on any shared stream, so sharding is bit-identical to the
  // sequential loop for every worker count.
  shard_over_alive(
      [&](std::size_t k) { nodes_[alive_scratch_[k].value]->begin_round(round_); });
}

void Engine::run_end_rounds() {
  alive_ids(alive_scratch_);
  if (!sharded()) {
    for (const NodeId id : alive_scratch_) nodes_[id.value]->end_round(round_);
    return;
  }
  // end_round is where eviction and view renewal happen — all driven by the
  // node's private rng_ plus the read-only aliveness probe, so as with
  // begin_round the sharded result is bit-identical for every width.
  shard_over_alive(
      [&](std::size_t k) { nodes_[alive_scratch_[k].value]->end_round(round_); });
}

void Engine::deliver_pushes() {
  // Collect (target, payload) pairs from all alive nodes, then deliver in a
  // shuffled order so no node systematically observes pushes first. The
  // delivery list is per-round scratch: staged in the arena, gone at the
  // next step()'s reset.
  ArenaVector<Delivery> deliveries(arena_);
  alive_ids(alive_scratch_);

  std::optional<obs::ScopedTimer> gen_timer;
  gen_timer.emplace(phase_hist_[kPhasePushGen], &last_phase_us_[kPhasePushGen]);

  if (!sharded()) {
    // Legacy sequential path: loss draws interleave on the engine stream.
    for (const NodeId id : alive_scratch_) {
      INode& sender = *nodes_[id.value];
      sender.push_targets(targets_scratch_);
      for (NodeId target : targets_scratch_) {
        ++counters_.pushes_sent;
        if (config_.message_loss > 0.0 && rng_.chance(config_.message_loss)) {
          ++counters_.legs_dropped;
          continue;
        }
        if (!is_alive(target)) continue;
        deliveries.push_back({target, sender.id(), sender.make_push()});
      }
    }
  } else {
    // Sharded generation: each alive node owns an output slot and a
    // splittable loss stream, so the result is independent of how the
    // partition maps to workers (see the declaration comment).
    const Rng phase_base = rng_.fork("push-phase");
    if (shard_slots_.size() < alive_scratch_.size()) {
      shard_slots_.resize(alive_scratch_.size());
    }
    const auto collect = [&](std::size_t k) {
      const NodeId id = alive_scratch_[k];
      INode& sender = *nodes_[id.value];
      ShardSlot& slot = shard_slots_[k];
      slot.deliveries.clear();
      slot.sent = 0;
      slot.dropped = 0;
      Rng loss_rng = phase_base.split(id.value);
      sender.push_targets(slot.targets);
      for (NodeId target : slot.targets) {
        ++slot.sent;
        if (config_.message_loss > 0.0 && loss_rng.chance(config_.message_loss)) {
          ++slot.dropped;
          continue;
        }
        if (!is_alive(target)) continue;
        slot.deliveries.push_back({target, sender.id(), sender.make_push()});
      }
    };
    shard_over_alive(collect);
    std::size_t total = 0;
    for (std::size_t k = 0; k < alive_scratch_.size(); ++k) {
      total += shard_slots_[k].deliveries.size();
    }
    deliveries.reserve(total);
    for (std::size_t k = 0; k < alive_scratch_.size(); ++k) {
      ShardSlot& slot = shard_slots_[k];
      counters_.pushes_sent += slot.sent;
      counters_.legs_dropped += slot.dropped;
      for (const Delivery& d : slot.deliveries) deliveries.push_back(d);
    }
  }

  rng_.shuffle(deliveries);
  gen_timer.reset();  // generation + shuffle measured; delivery starts here
  const obs::ScopedTimer deliver_timer(phase_hist_[kPhasePushDeliver],
                                       &last_phase_us_[kPhasePushDeliver]);

  if (!sharded()) {
    for (const Delivery& d : deliveries) {
      nodes_[d.to.value]->on_push(d.payload);
      ++counters_.pushes_delivered;
      for_listeners([&](ITrafficListener& l) {
        l.on_push_delivered(round_, d.from, d.payload.sender, d.to);
      });
    }
    return;
  }

  // Sharded delivery: bucket the shuffled list by target (a stable counting
  // sort, so each target's mailbox sees the exact subsequence the global
  // shuffled order dictates) and apply each target's bucket on its own
  // shard. on_push only mutates the receiving node, so per-target order is
  // the only order that is observable — the result is bit-identical to the
  // interleaved sequential application. Listener callbacks replay after
  // application, serially, in the same global shuffled order as the
  // sequential path (their arguments carry no engine state).
  const std::size_t alive_count = alive_scratch_.size();
  if (alive_rank_.size() < nodes_.size()) alive_rank_.resize(nodes_.size());
  for (std::size_t k = 0; k < alive_count; ++k) {
    alive_rank_[alive_scratch_[k].value] = static_cast<std::uint32_t>(k);
  }
  bucket_offsets_.assign(alive_count + 1, 0);
  for (const Delivery& d : deliveries) {
    ++bucket_offsets_[alive_rank_[d.to.value] + 1];  // targets are alive
  }
  for (std::size_t k = 0; k < alive_count; ++k) {
    bucket_offsets_[k + 1] += bucket_offsets_[k];
  }
  bucket_cursor_.assign(bucket_offsets_.begin(), bucket_offsets_.end());
  std::uint32_t* order = arena_.allocate_array<std::uint32_t>(deliveries.size());
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    order[bucket_cursor_[alive_rank_[deliveries[i].to.value]]++] =
        static_cast<std::uint32_t>(i);
  }
  shard_over_alive([&](std::size_t k) {
    INode& receiver = *nodes_[alive_scratch_[k].value];
    for (std::size_t slot = bucket_offsets_[k]; slot < bucket_offsets_[k + 1]; ++slot) {
      receiver.on_push(deliveries[order[slot]].payload);
    }
  });
  counters_.pushes_delivered += deliveries.size();
  if (!listeners_.empty()) {
    for (const Delivery& d : deliveries) {
      for_listeners([&](ITrafficListener& l) {
        l.on_push_delivered(round_, d.from, d.payload.sender, d.to);
      });
    }
  }
}

bool Engine::run_exchange(INode& initiator, INode& responder) {
  const NodeId init_id = initiator.id();
  const NodeId resp_id = responder.id();
  // Tampering needs bytes on a wire, so a nonzero tamper_rate implies the
  // byte round-trip even when wire_roundtrip was left off.
  const bool roundtrip =
      config_.wire_roundtrip || config_.encrypt_links || config_.tamper_rate > 0.0;
  wire::LinkSession* session =
      link_table_ ? &link_table_->session(init_id, resp_id, round_) : nullptr;

  // On-path adversary: flips one uniformly chosen bit of a serialized leg.
  auto tamper = [&](std::vector<std::uint8_t>& bytes) {
    if (config_.tamper_rate <= 0.0 || bytes.empty()) return;
    if (!rng_.chance(config_.tamper_rate)) return;
    const auto byte = static_cast<std::size_t>(rng_.below(bytes.size()));
    bytes[byte] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
    ++counters_.legs_tampered;
  };

  // A leg the receiver rejected (AEAD failure, malformed bytes, or a
  // type-confused decode) is dropped, never fatal.
  auto corrupted = [&]() -> bool {
    ++counters_.legs_dropped;
    ++counters_.legs_corrupted;
    return false;
  };

  auto transfer = [&](wire::Message& message, wire::MsgType expected,
                      bool forward) -> bool {
    if (config_.message_loss > 0.0 && rng_.chance(config_.message_loss)) {
      ++counters_.legs_dropped;
      return false;
    }
    if (roundtrip) {
      wire::encode_into(message, wire_plain_);
      const std::uint8_t* data = wire_plain_.data();
      std::size_t len = wire_plain_.size();
      if (session) {
        // One cipher per direction carries both sequence counters; sealing
        // and opening the same leg keeps them in lockstep (in-order net).
        wire::LinkCipher& channel = session->channel_from(forward ? init_id : resp_id);
        channel.seal_into(wire_plain_.data(), wire_plain_.size(), wire_frame_);
        counters_.wire_bytes += wire_frame_.size();
        tamper(wire_frame_);
        if (!channel.open_into(wire_frame_.data(), wire_frame_.size(), wire_opened_)) {
          // Integrity alarm: a deployed endpoint aborts the connection; the
          // pair re-establishes a fresh session on its next exchange.
          link_table_->invalidate_pair(init_id, resp_id);
          session = nullptr;
          return corrupted();
        }
        data = wire_opened_.data();
        len = wire_opened_.size();
      } else {
        counters_.wire_bytes += wire_plain_.size();
        tamper(wire_plain_);
      }
      try {
        wire::decode_into(data, len, message);
      } catch (const wire::WireError&) {
        return corrupted();
      }
    }
    // Typed-leg validation: tampered plaintext can decode cleanly as a
    // *different* message type; std::get on it would terminate the engine
    // (std::bad_variant_access), so mismatches are counted and dropped.
    if (wire::type_of(message) != expected) return corrupted();
    return true;
  };

  // Leg 1: pull request (auth challenge).
  wire::Message leg = initiator.open_pull(resp_id);
  if (!transfer(leg, wire::MsgType::kPullRequest, /*forward=*/true)) return false;

  // The request arrived but the responder refuses to answer (omission
  // adversary): the initiator's slot times out without a leg-2 reply ever
  // touching the wire, so this is suppression, not loss.
  if (!responder.answers_pull(init_id)) {
    ++counters_.legs_suppressed;
    return false;
  }

  // Leg 2: pull reply (auth response + full view).
  leg = responder.answer_pull(std::get<wire::PullRequest>(leg));
  if (!transfer(leg, wire::MsgType::kPullReply, /*forward=*/false)) return false;
  const wire::PullReply reply = std::get<wire::PullReply>(std::move(leg));

  // Leg 3: auth confirm (+ possible swap offer).
  leg = initiator.process_pull_reply(reply);
  for_listeners([&](ITrafficListener& l) {
    l.on_pull_reply_delivered(round_, resp_id, init_id, reply.view);
  });
  if (!transfer(leg, wire::MsgType::kAuthConfirm, /*forward=*/true))
    return true;  // pull itself completed

  // Leg 4: swap reply, only for a mutually-trusted exchange.
  const wire::AuthConfirm confirm = std::get<wire::AuthConfirm>(std::move(leg));
  std::optional<wire::SwapReply> swap = responder.process_confirm(confirm);
  if (!swap) return true;

  // Leg 5: close the trusted exchange.
  leg = std::move(*swap);
  if (!transfer(leg, wire::MsgType::kSwapReply, /*forward=*/false)) return true;
  const wire::SwapReply swap_reply = std::get<wire::SwapReply>(std::move(leg));
  initiator.process_swap_reply(swap_reply);
  ++counters_.swaps_completed;
  for_listeners([&](ITrafficListener& l) {
    l.on_swap_completed(round_, init_id, resp_id,
                        confirm.swap_offer ? *confirm.swap_offer
                                           : std::vector<NodeId>{},
                        swap_reply.swap_half);
  });
  return true;
}

void Engine::run_pull_exchanges() {
  struct PendingPull {
    NodeId initiator;
    NodeId target;
  };
  // Pull-target generation shards (honest targets come from the node's
  // private rng over its own view; Byzantine targets come from the shared
  // Coordinator and stay on this thread), with the (initiator, target)
  // pairs merged in node-index order — identical to the sequential list
  // for every worker count. The exchanges themselves then run serially:
  // each five-leg exchange draws loss/tamper decisions from the shared
  // engine stream and mutates both endpoints, so sharding legs would
  // break the bit-identity contract.
  ArenaVector<PendingPull> pulls(arena_);
  alive_ids(alive_scratch_);
  if (!sharded()) {
    for (const NodeId id : alive_scratch_) {
      nodes_[id.value]->pull_targets(targets_scratch_);
      for (NodeId target : targets_scratch_) pulls.push_back({id, target});
    }
  } else {
    if (shard_slots_.size() < alive_scratch_.size()) {
      shard_slots_.resize(alive_scratch_.size());
    }
    shard_over_alive([&](std::size_t k) {
      nodes_[alive_scratch_[k].value]->pull_targets(shard_slots_[k].targets);
    });
    for (std::size_t k = 0; k < alive_scratch_.size(); ++k) {
      for (NodeId target : shard_slots_[k].targets) {
        pulls.push_back({alive_scratch_[k], target});
      }
    }
  }
  // Randomized global order: exchanges within a round interleave across
  // nodes, as they would in a real deployment.
  rng_.shuffle(pulls);
  for (const PendingPull& p : pulls) {
    ++counters_.pulls_started;
    INode& initiator = *nodes_[p.initiator.value];
    if (!is_alive(p.target) || p.target == p.initiator) {
      ++counters_.pulls_timed_out;
      initiator.on_pull_timeout(p.target);
      continue;
    }
    if (run_exchange(initiator, *nodes_[p.target.value])) {
      ++counters_.pulls_completed;
    } else {
      ++counters_.pulls_timed_out;
      initiator.on_pull_timeout(p.target);
    }
  }
}

void Engine::step_event() {
  arena_.reset();
  {
    const obs::ScopedTimer t(phase_hist_[kPhaseBeginRound],
                             &last_phase_us_[kPhaseBeginRound]);
    run_begin_rounds();
  }

  const evt::EventConfig& ev = config_.event;
  const std::uint64_t round_start = evt_sched_.now_us();
  const std::uint64_t deadline = round_start + ev.round_interval_us;
  // Round-scoped base for every per-link stream: one advancing fork per
  // round, so the same link draws fresh delays each round while each delay
  // stays a pure function of (seed, round, from, to) — never of the worker
  // count or of how many other links are in flight.
  const Rng link_base = rng_.fork("evt.round");
  const auto region_of = [&](NodeId id) {
    return ev.topology.region_of(id.value);
  };
  const auto link_latency = [&](Rng& link_rng, NodeId from, NodeId to) {
    std::uint64_t sampled =
        ev.latency.sample_us(link_rng, region_of(from), region_of(to));
    if (link_delay_) sampled += link_delay_(round_, from, to);
    return sampled;
  };

  // --- push generation: the round-mode planner, but delivery goes through
  // the event heap. Loss always draws per-node split streams (even at width
  // 1) so event-mode results are bit-identical for every worker count.
  ArenaVector<Delivery> deliveries(arena_);
  alive_ids(alive_scratch_);
  {
    const obs::ScopedTimer t(phase_hist_[kPhasePushGen],
                             &last_phase_us_[kPhasePushGen]);
    const Rng phase_base = rng_.fork("push-phase");
    if (shard_slots_.size() < alive_scratch_.size()) {
      shard_slots_.resize(alive_scratch_.size());
    }
    const auto collect = [&](std::size_t k) {
      const NodeId id = alive_scratch_[k];
      INode& sender = *nodes_[id.value];
      ShardSlot& slot = shard_slots_[k];
      slot.deliveries.clear();
      slot.sent = 0;
      slot.dropped = 0;
      Rng loss_rng = phase_base.split(id.value);
      sender.push_targets(slot.targets);
      for (NodeId target : slot.targets) {
        ++slot.sent;
        if (config_.message_loss > 0.0 && loss_rng.chance(config_.message_loss)) {
          ++slot.dropped;
          continue;
        }
        if (!is_alive(target)) continue;
        slot.deliveries.push_back({target, sender.id(), sender.make_push()});
      }
    };
    if (!sharded()) {
      for (std::size_t k = 0; k < alive_scratch_.size(); ++k) collect(k);
    } else {
      shard_over_alive(collect);
    }
    std::size_t total = 0;
    for (std::size_t k = 0; k < alive_scratch_.size(); ++k) {
      total += shard_slots_[k].deliveries.size();
    }
    deliveries.reserve(total);
    for (std::size_t k = 0; k < alive_scratch_.size(); ++k) {
      ShardSlot& slot = shard_slots_[k];
      counters_.pushes_sent += slot.sent;
      counters_.legs_dropped += slot.dropped;
      for (const Delivery& d : slot.deliveries) deliveries.push_back(d);
    }
  }
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    const Delivery& d = deliveries[i];
    if (ev.partition.severed(region_of(d.from), region_of(d.to), round_)) {
      ++counters_.partition_drops;
      ++counters_.legs_dropped;
      continue;
    }
    Rng link_rng = link_base.fork("evt.link", d.from.value, d.to.value);
    evt_sched_.schedule(round_start + link_latency(link_rng, d.from, d.to),
                        kEvtPush, i);
  }

  // --- pull generation: same lists as round mode, started as events at the
  // request's arrival; the remaining legs' delays are pre-sampled so each
  // pull event carries its exchange's virtual completion time in `b`.
  struct PendingPull {
    NodeId initiator;
    NodeId target;
  };
  ArenaVector<PendingPull> pulls(arena_);
  alive_ids(alive_scratch_);
  if (!sharded()) {
    for (const NodeId id : alive_scratch_) {
      nodes_[id.value]->pull_targets(targets_scratch_);
      for (NodeId target : targets_scratch_) pulls.push_back({id, target});
    }
  } else {
    if (shard_slots_.size() < alive_scratch_.size()) {
      shard_slots_.resize(alive_scratch_.size());
    }
    shard_over_alive([&](std::size_t k) {
      nodes_[alive_scratch_[k].value]->pull_targets(shard_slots_[k].targets);
    });
    for (std::size_t k = 0; k < alive_scratch_.size(); ++k) {
      for (NodeId target : shard_slots_[k].targets) {
        pulls.push_back({alive_scratch_[k], target});
      }
    }
  }
  rng_.shuffle(pulls);
  for (std::size_t i = 0; i < pulls.size(); ++i) {
    const PendingPull& p = pulls[i];
    if (!p.target.valid() || p.target.value >= nodes_.size()) {
      evt_sched_.schedule(round_start, kEvtPull, i, round_start);
      continue;
    }
    // The five-leg exchange alternates direction; each one-way delay comes
    // from the initiator-keyed pair stream, so completion time is as
    // deterministic as the arrival.
    Rng link_rng = link_base.fork("evt.link", p.initiator.value, p.target.value);
    std::uint64_t elapsed = 0;
    std::uint64_t arrival = 0;
    for (int leg = 0; leg < 4; ++leg) {
      const bool fwd = (leg % 2) == 0;
      const NodeId from = fwd ? p.initiator : p.target;
      const NodeId to = fwd ? p.target : p.initiator;
      elapsed += link_latency(link_rng, from, to);
      if (leg == 0) arrival = elapsed;
    }
    evt_sched_.schedule(round_start + arrival, kEvtPull, i,
                        round_start + elapsed);
  }

  if (evt_queue_hist_) {
    evt_queue_hist_->record(static_cast<std::uint64_t>(evt_sched_.size()));
  }

  // --- drain: serial, in (virtual_time, seq) order. Pushes and exchanges
  // interleave by timestamp — the point of event mode — so the whole drain
  // is profiled under the pulls phase (push_deliver reads ~0 here).
  {
    const obs::ScopedTimer t(phase_hist_[kPhasePulls],
                             &last_phase_us_[kPhasePulls]);
    while (!evt_sched_.empty()) {
      const evt::Event e = evt_sched_.pop();
      if (evt_events_hist_) evt_events_hist_->record(e.at_us - round_start);
      if (e.kind == kEvtPush) {
        const Delivery& d = deliveries[e.a];
        if (e.at_us > deadline) {
          ++counters_.legs_late;
          ++counters_.legs_dropped;
          continue;
        }
        nodes_[d.to.value]->on_push(d.payload);
        ++counters_.pushes_delivered;
        for_listeners([&](ITrafficListener& l) {
          l.on_push_delivered(round_, d.from, d.payload.sender, d.to);
        });
        continue;
      }
      const PendingPull& p = pulls[e.a];
      ++counters_.pulls_started;
      INode& initiator = *nodes_[p.initiator.value];
      const auto timeout = [&] {
        ++counters_.pulls_timed_out;
        initiator.on_pull_timeout(p.target);
      };
      if (!is_alive(p.target) || p.target == p.initiator) {
        timeout();
      } else if (ev.partition.severed(region_of(p.initiator),
                                     region_of(p.target), round_)) {
        ++counters_.partition_drops;
        timeout();
      } else if (e.b > deadline) {
        // The exchange could not have concluded before the round closed.
        ++counters_.legs_late;
        timeout();
      } else if (run_exchange(initiator, *nodes_[p.target.value])) {
        ++counters_.pulls_completed;
      } else {
        timeout();
      }
    }
  }
  // A popped late arrival may have carried the clock past the deadline;
  // the leg was dropped, so the round still closes exactly on schedule.
  evt_sched_.close_window(deadline);
  if (evt_virtual_hist_) evt_virtual_hist_->record(deadline / 1000);

  {
    const obs::ScopedTimer t(phase_hist_[kPhaseEndRound],
                             &last_phase_us_[kPhaseEndRound]);
    run_end_rounds();
    if (!listeners_.empty()) {
      refresh_views();
      for_listeners([&](ITrafficListener& l) { l.on_round_end(round_, *this); });
    }
  }
  if (link_table_) link_table_->retire_idle(round_, config_.link_idle_rounds);
  ++round_;
  publish_metrics();
}

void Engine::step() {
  if (config_.event.enabled) {
    step_event();
    return;
  }
  arena_.reset();  // reclaim last round's scratch wholesale
  {
    const obs::ScopedTimer t(phase_hist_[kPhaseBeginRound],
                             &last_phase_us_[kPhaseBeginRound]);
    run_begin_rounds();
  }
  deliver_pushes();  // records kPhasePushGen / kPhasePushDeliver itself
  {
    const obs::ScopedTimer t(phase_hist_[kPhasePulls],
                             &last_phase_us_[kPhasePulls]);
    run_pull_exchanges();
  }
  {
    const obs::ScopedTimer t(phase_hist_[kPhaseEndRound],
                             &last_phase_us_[kPhaseEndRound]);
    run_end_rounds();
    if (!listeners_.empty()) {
      // Publish every node's post-round view into the SoA slab so listeners
      // read views via view_of() spans instead of allocating current_view().
      refresh_views();
      for_listeners([&](ITrafficListener& l) { l.on_round_end(round_, *this); });
    }
  }
  if (link_table_) link_table_->retire_idle(round_, config_.link_idle_rounds);
  ++round_;
  publish_metrics();
}

void Engine::publish_metrics() {
  for (std::size_t i = 0; i < kCounterMetrics; ++i) {
    const auto field = kCounterEntries[i].field;
    const std::uint64_t delta = counters_.*field - published_.*field;
    if (delta != 0) counter_metrics_[i]->add(delta);
  }
  published_ = counters_;
  rounds_metric_->add(1);
}

void Engine::run(Round count, const std::function<bool(Round)>& stop) {
  for (Round i = 0; i < count; ++i) {
    step();
    if (stop && stop(round_)) return;
  }
}

std::function<bool(NodeId)> Engine::aliveness_probe() const {
  return [this](NodeId id) { return is_alive(id); };
}

}  // namespace raptee::sim
