// Round-synchronous simulation engine.
//
// Substitution note (DESIGN.md §2): the paper deploys 10,000 processes on
// Grid'5000 with 2.5-second rounds. All reported metrics are denominated in
// *rounds*, so a deterministic round-synchronous simulator measures the same
// quantities while making 10 repetitions × dozens of configurations feasible
// on one machine. SGX execution costs are charged to per-node virtual-cycle
// ledgers by the sgx::CycleModel, mirroring the paper's own calibrated
// SGX-emulation methodology.
//
// Fidelity knobs:
//  * wire_roundtrip — every exchange leg is encoded to bytes and decoded
//    back (exercises the codecs; malformed bytes == drop).
//  * encrypt_links — additionally seals/opens each leg with AES-CTR+HMAC
//    (paper §III-B requires symmetric link encryption), through persistent
//    per-pair link sessions (wire::LinkTable) with nonce continuity across
//    rounds and rekeying on churn.
//  * message_loss — iid per-leg drop probability.
//  * tamper_rate — iid per-leg probability that an on-path adversary flips
//    one bit of the serialized leg. Implies the byte round-trip. With
//    encrypt_links the AEAD rejects every flip; without it the typed-leg
//    validator drops what fails to decode (and the rest models undetected
//    corruption reaching the protocol).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/key.hpp"
#include "exec/thread_pool.hpp"
#include "sim/node.hpp"
#include "sim/traffic.hpp"
#include "wire/link_session.hpp"

namespace raptee::sim {

struct EngineConfig {
  std::uint64_t seed = 1;
  bool wire_roundtrip = false;
  bool encrypt_links = false;
  double message_loss = 0.0;
  /// Per-leg probability of an on-path single-bit flip (see header note).
  double tamper_rate = 0.0;
  /// Cache one link session per node pair across exchanges and rounds
  /// (the deployment model). false = re-derive per exchange — the
  /// pre-cache baseline kept for the bench/scale_links ablation. Either
  /// way every observable metric is identical; only ciphertext differs.
  bool link_sessions = true;
  /// Encrypted sessions idle for more than this many rounds are retired
  /// (and re-derived on next use), bounding cipher-state memory.
  Round link_idle_rounds = 64;
  /// Width of the sharded push-generation phase (see Engine::step):
  /// 1 = legacy sequential path (the default), 0 = hardware concurrency,
  /// n > 1 = shard over n workers. Any value > 1 (or 0) opts into the
  /// sharded random stream; given that, results are bit-identical for
  /// every worker count — see the determinism note on deliver_pushes.
  std::size_t push_threads = 1;
};

class Engine {
 public:
  explicit Engine(EngineConfig config);

  /// Registers a node; the node's id() must equal the next dense index.
  void add_node(std::unique_ptr<INode> node, NodeKind kind);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] INode& node(NodeId id);
  [[nodiscard]] const INode& node(NodeId id) const;
  [[nodiscard]] NodeKind kind(NodeId id) const;
  [[nodiscard]] const std::vector<NodeKind>& kinds() const { return kinds_; }

  [[nodiscard]] bool is_alive(NodeId id) const;
  /// Crash or revive a node (churn). A dead node neither initiates nor
  /// answers exchanges; pushes to it vanish.
  void set_alive(NodeId id, bool alive);

  /// IDs of alive nodes satisfying `pred` (defaults to all alive).
  [[nodiscard]] std::vector<NodeId> alive_ids(
      const std::function<bool(NodeKind)>& pred = {}) const;
  /// Allocation-free variant for hot loops: clears and fills a caller-owned
  /// scratch vector (its capacity amortizes across rounds).
  void alive_ids(std::vector<NodeId>& out,
                 const std::function<bool(NodeKind)>& pred = {}) const;

  /// Gives every alive node a uniform random bootstrap view of size
  /// `view_size` drawn from the other alive nodes.
  void bootstrap_uniform(std::size_t view_size);
  /// Per-node bootstrap: `provider(id, kind)` returns the initial view.
  void bootstrap_with(
      const std::function<std::vector<NodeId>(NodeId, NodeKind)>& provider);

  void add_listener(ITrafficListener* listener);
  void remove_listener(ITrafficListener* listener);

  /// Executes one full round.
  void step();
  /// Executes `count` rounds; `stop` (optional) is polled after each round
  /// and ends the run early when it returns true.
  void run(Round count, const std::function<bool(Round)>& stop = {});

  [[nodiscard]] Round now() const { return round_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }

  /// Aliveness oracle handed to protocol nodes for sampler validation
  /// (models Brahms' periodic probe of sampled peers; see DESIGN.md).
  [[nodiscard]] std::function<bool(NodeId)> aliveness_probe() const;

  /// Exchange-leg statistics (diagnostics & tests).
  struct Counters {
    std::uint64_t pushes_sent = 0;
    std::uint64_t pushes_delivered = 0;
    std::uint64_t pulls_started = 0;
    std::uint64_t pulls_completed = 0;
    std::uint64_t pulls_timed_out = 0;
    std::uint64_t swaps_completed = 0;
    /// Pull requests the responder deliberately refused to answer (an
    /// omission adversary); not counted in legs_dropped — nothing was on
    /// the wire to lose.
    std::uint64_t legs_suppressed = 0;
    std::uint64_t legs_dropped = 0;
    /// Legs the on-path adversary flipped a bit of (tamper_rate draws).
    std::uint64_t legs_tampered = 0;
    /// Legs rejected by the receiver — AEAD failure, malformed bytes, or a
    /// type-confused decode. Each is also counted in legs_dropped.
    std::uint64_t legs_corrupted = 0;
    std::uint64_t wire_bytes = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Link-session statistics (both 0 unless encrypt_links): total link
  /// secrets derived, and sessions currently cached. With link_sessions
  /// the former tracks the number of active pairs; without it, the number
  /// of encrypted exchanges.
  [[nodiscard]] std::uint64_t link_derivations() const;
  [[nodiscard]] std::size_t link_active_sessions() const;

 private:
  // Push generation: collects every alive node's (targets, payload) pairs.
  // With push_threads == 1 this is the legacy sequential loop (loss draws
  // interleaved on the engine stream). With push_threads != 1 the alive
  // nodes are partitioned across an exec::ThreadPool, every node draws its
  // loss decisions from a private splittable stream (rng().fork("push-
  // phase").split(node)), and the per-node delivery lists are merged in
  // node-index order — so sharded results are a deterministic function of
  // (seed, sharded-or-not) and never of the worker count. Byzantine nodes
  // share the adversary Coordinator and therefore always generate on the
  // coordinating thread, in index order, with the same per-node streams.
  void deliver_pushes();
  void run_pull_exchanges();
  /// Runs one five-leg exchange; returns false on timeout.
  bool run_exchange(INode& initiator, INode& responder);

  EngineConfig config_;
  Rng rng_;
  crypto::SymmetricKey link_master_;  // link-session secrets derived on demand
  Round round_ = 0;

  std::vector<std::unique_ptr<INode>> nodes_;
  std::vector<NodeKind> kinds_;
  std::vector<std::uint8_t> alive_;
  std::vector<ITrafficListener*> listeners_;
  Counters counters_;

  std::vector<NodeId> alive_scratch_;        // reused by the round phases
  std::vector<NodeId> push_targets_scratch_; // sequential push phase only
  std::unique_ptr<exec::ThreadPool> pool_;   // lazily built, push_threads != 1

  // Encrypted-link session cache (encrypt_links only) and the wire-path
  // scratch buffers: encode/seal/open/decode reuse these every leg, so the
  // steady-state wire path of an encrypted exchange performs zero heap
  // allocations (the INode-produced messages themselves are the only
  // remaining allocator traffic in run_exchange).
  std::unique_ptr<wire::LinkTable> link_table_;
  std::vector<std::uint8_t> wire_plain_;
  std::vector<std::uint8_t> wire_frame_;
  std::vector<std::uint8_t> wire_opened_;
};

}  // namespace raptee::sim
