// Round-synchronous simulation engine.
//
// Substitution note (DESIGN.md §2): the paper deploys 10,000 processes on
// Grid'5000 with 2.5-second rounds. All reported metrics are denominated in
// *rounds*, so a deterministic round-synchronous simulator measures the same
// quantities while making 10 repetitions × dozens of configurations feasible
// on one machine. SGX execution costs are charged to per-node virtual-cycle
// ledgers by the sgx::CycleModel, mirroring the paper's own calibrated
// SGX-emulation methodology.
//
// Fidelity knobs:
//  * wire_roundtrip — every exchange leg is encoded to bytes and decoded
//    back (exercises the codecs; malformed bytes == drop).
//  * encrypt_links — additionally seals/opens each leg with AES-CTR+HMAC
//    (paper §III-B requires symmetric link encryption), through persistent
//    per-pair link sessions (wire::LinkTable) with nonce continuity across
//    rounds and rekeying on churn.
//  * message_loss — iid per-leg drop probability.
//  * tamper_rate — iid per-leg probability that an on-path adversary flips
//    one bit of the serialized leg. Implies the byte round-trip. With
//    encrypt_links the AEAD rejects every flip; without it the typed-leg
//    validator drops what fails to decode (and the rest models undetected
//    corruption reaching the protocol).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/arena.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/key.hpp"
#include "evt/config.hpp"
#include "evt/scheduler.hpp"
#include "exec/thread_pool.hpp"
#include "obs/registry.hpp"
#include "sim/node.hpp"
#include "sim/traffic.hpp"
#include "wire/link_session.hpp"

namespace raptee::sim {

struct EngineConfig {
  std::uint64_t seed = 1;
  bool wire_roundtrip = false;
  bool encrypt_links = false;
  double message_loss = 0.0;
  /// Per-leg probability of an on-path single-bit flip (see header note).
  double tamper_rate = 0.0;
  /// Cache one link session per node pair across exchanges and rounds
  /// (the deployment model). false = re-derive per exchange — the
  /// pre-cache baseline kept for the bench/scale_links ablation. Either
  /// way every observable metric is identical; only ciphertext differs.
  bool link_sessions = true;
  /// Encrypted sessions idle for more than this many rounds are retired
  /// (and re-derived on next use), bounding cipher-state memory.
  Round link_idle_rounds = 64;
  /// Width of the sharded round phases — push generation and delivery,
  /// pull-target generation, begin_round and end_round (eviction included):
  /// 1 = legacy sequential path (the default), 0 = hardware concurrency,
  /// n > 1 = shard over n workers. Any value > 1 (or 0) opts into the
  /// sharded push-loss stream; given that, results are bit-identical for
  /// every worker count — see the determinism note on deliver_pushes. All
  /// other sharded phases draw only per-node streams and are bit-identical
  /// to the sequential path for every width. The exchange legs themselves
  /// stay serial: their loss/tamper draws interleave on the shared engine
  /// stream and each leg mutates two nodes, so sharding them could not
  /// preserve the bit-identity contract.
  std::size_t threads = 1;
  /// Opt-in event-driven step mode (src/evt): pushes and pulls become
  /// timestamped message events with per-link latency/jitter, partitions
  /// and a virtual clock. Off by default — round mode is the bit-exact
  /// baseline. With event mode on, results are bit-identical across every
  /// worker count (1 included): generation always draws per-node split
  /// streams and the event heap drains serially on the coordinating thread.
  evt::EventConfig event;
};

class Engine {
 public:
  explicit Engine(EngineConfig config);

  /// Registers a node; the node's id() must equal the next dense index.
  void add_node(std::unique_ptr<INode> node, NodeKind kind);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] INode& node(NodeId id);
  [[nodiscard]] const INode& node(NodeId id) const;
  [[nodiscard]] NodeKind kind(NodeId id) const;
  [[nodiscard]] const std::vector<NodeKind>& kinds() const { return kinds_; }

  [[nodiscard]] bool is_alive(NodeId id) const;
  /// Crash or revive a node (churn). A dead node neither initiates nor
  /// answers exchanges; pushes to it vanish.
  void set_alive(NodeId id, bool alive);

  /// IDs of alive nodes satisfying `pred` (defaults to all alive).
  [[nodiscard]] std::vector<NodeId> alive_ids(
      const std::function<bool(NodeKind)>& pred = {}) const;
  /// Allocation-free variant for hot loops: clears and fills a caller-owned
  /// scratch vector (its capacity amortizes across rounds).
  void alive_ids(std::vector<NodeId>& out,
                 const std::function<bool(NodeKind)>& pred = {}) const;

  /// Gives every alive node a uniform random bootstrap view of size
  /// `view_size` drawn from the other alive nodes.
  void bootstrap_uniform(std::size_t view_size);
  /// Per-node bootstrap: `provider(id, kind)` returns the initial view.
  void bootstrap_with(
      const std::function<std::vector<NodeId>(NodeId, NodeKind)>& provider);

  void add_listener(ITrafficListener* listener);
  /// Safe to call from inside a traffic callback (including removing the
  /// currently-executing listener): removal during dispatch is deferred to
  /// the end of the outermost dispatch, and the removed listener receives
  /// no further callbacks.
  void remove_listener(ITrafficListener* listener);

  /// Rebuilds the structure-of-arrays view slab read by view_of(): one
  /// dense NodeId range per node, sized by INode::view_capacity(). step()
  /// refreshes the slab after end_round whenever listeners are registered;
  /// external readers (tracker priming before round 0) call it explicitly.
  void refresh_views();
  /// The node's current view as a span over the SoA view slab — the
  /// allocation-free replacement for INode::current_view() on metric
  /// paths. Valid until the next refresh_views(). Empty for dead nodes and
  /// for nodes that opted out of the slab (view_capacity() == 0; the
  /// adversary does — Byzantine views are excluded from every honest-side
  /// metric anyway).
  [[nodiscard]] std::span<const NodeId> view_of(NodeId id) const;

  /// Executes one full round.
  void step();
  /// Executes `count` rounds; `stop` (optional) is polled after each round
  /// and ends the run early when it returns true.
  void run(Round count, const std::function<bool(Round)>& stop = {});

  [[nodiscard]] Round now() const { return round_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }

  /// Aliveness oracle handed to protocol nodes for sampler validation
  /// (models Brahms' periodic probe of sampled peers; see DESIGN.md).
  [[nodiscard]] std::function<bool(NodeId)> aliveness_probe() const;

  /// Event mode only: adversary-injected extra one-way delay (microseconds)
  /// for a (round, from, to) link, added on top of the sampled latency —
  /// wired by the experiment driver when a delay-capable attack strategy is
  /// active. Must be a pure function of its arguments (it is consulted on
  /// the deterministic scheduling path).
  void set_link_delay(std::function<std::uint64_t(Round, NodeId, NodeId)> hook) {
    link_delay_ = std::move(hook);
  }

  /// Virtual clock (event mode): microseconds of simulated time elapsed.
  /// Always 0 in round mode.
  [[nodiscard]] std::uint64_t virtual_now_us() const { return evt_sched_.now_us(); }

  /// Exchange-leg statistics (diagnostics & tests).
  struct Counters {
    std::uint64_t pushes_sent = 0;
    std::uint64_t pushes_delivered = 0;
    std::uint64_t pulls_started = 0;
    std::uint64_t pulls_completed = 0;
    std::uint64_t pulls_timed_out = 0;
    std::uint64_t swaps_completed = 0;
    /// Pull requests the responder deliberately refused to answer (an
    /// omission adversary); not counted in legs_dropped — nothing was on
    /// the wire to lose.
    std::uint64_t legs_suppressed = 0;
    std::uint64_t legs_dropped = 0;
    /// Legs the on-path adversary flipped a bit of (tamper_rate draws).
    std::uint64_t legs_tampered = 0;
    /// Legs rejected by the receiver — AEAD failure, malformed bytes, or a
    /// type-confused decode. Each is also counted in legs_dropped.
    std::uint64_t legs_corrupted = 0;
    std::uint64_t wire_bytes = 0;
    /// Event mode only: messages whose sampled arrival (or exchange
    /// completion) landed past the round deadline and were discarded. Late
    /// pushes are also counted in legs_dropped.
    std::uint64_t legs_late = 0;
    /// Event mode only: messages dropped because the link crossed an active
    /// partition cut. Dropped pushes are also counted in legs_dropped.
    std::uint64_t partition_drops = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// The five wall-clock-profiled phases of step(), in execution order.
  /// Indexes last_phase_us() and RoundSnapshot::phase_ms.
  enum Phase : std::size_t {
    kPhaseBeginRound = 0,
    kPhasePushGen,      ///< push-target generation (incl. the global shuffle)
    kPhasePushDeliver,  ///< mailbox application + listener replay
    kPhasePulls,        ///< pull-target generation + the five-leg exchanges
    kPhaseEndRound,     ///< eviction, view renewal, listener round-end
    kPhaseCount
  };
  /// Wall-clock microseconds each phase of the most recent step() took.
  /// Observational only: timing never feeds simulation state, so results
  /// stay bit-exact. The same values accumulate into the process-wide
  /// "engine.phase.*_us" histograms (obs::Registry::global()).
  [[nodiscard]] const std::array<std::uint64_t, kPhaseCount>& last_phase_us() const {
    return last_phase_us_;
  }

  /// Link-session statistics (both 0 unless encrypt_links): total link
  /// secrets derived, and sessions currently cached. With link_sessions
  /// the former tracks the number of active pairs; without it, the number
  /// of encrypted exchanges.
  [[nodiscard]] std::uint64_t link_derivations() const;
  [[nodiscard]] std::size_t link_active_sessions() const;

 private:
  /// One generated push awaiting delivery — trivially copyable, staged in
  /// per-round arena scratch.
  struct Delivery {
    NodeId to;
    NodeId from;
    wire::PushMessage payload;
  };
  /// Per-node output slot of a sharded phase: private delivery/target lists
  /// plus counter shares, merged in node-index order once every shard
  /// finished. Slots persist across rounds so their capacity amortizes the
  /// same way the arena's chunks do (the arena itself is single-owner and
  /// stays on the coordinating thread).
  struct ShardSlot {
    std::vector<Delivery> deliveries;
    std::vector<NodeId> targets;
    std::uint64_t sent = 0;
    std::uint64_t dropped = 0;
  };

  [[nodiscard]] bool sharded() const { return config_.threads != 1; }
  /// The lazily-built phase pool (sharded() only). Never wider than one
  /// worker per node — oversized knobs would otherwise spawn thousands of
  /// idle OS threads per engine.
  [[nodiscard]] exec::ThreadPool& pool();

  /// Runs `fn(k)` for every index into alive_scratch_: Byzantine nodes
  /// first, serially on this thread in index order (they share the mutable
  /// adversary Coordinator), then everyone else sharded across the pool.
  /// Safe iff `fn` touches only per-node state and read-only engine state.
  template <typename Fn>
  void shard_over_alive(const Fn& fn);
  /// Reentrancy-safe listener dispatch: index-based iteration (listeners
  /// added or removed mid-dispatch cannot invalidate it) with removals
  /// deferred to the end of the outermost dispatch.
  template <typename Fn>
  void for_listeners(const Fn& fn);

  // The four shardable phases of a round. Phases that draw only per-node
  // private streams — begin_round, pull-target generation, end_round
  // (eviction) — are bit-identical to the sequential path for every worker
  // count. Push generation: with threads == 1 this is the legacy
  // sequential loop (loss draws interleaved on the engine stream); with
  // threads != 1 every node draws its loss decisions from a private
  // splittable stream (rng().fork("push-phase").split(node)) and the
  // per-node delivery lists are merged in node-index order — so sharded
  // results are a deterministic function of (seed, sharded-or-not) and
  // never of the worker count. With message_loss == 0 no loss stream is
  // consulted and all widths, 1 included, coincide exactly.
  void run_begin_rounds();
  void deliver_pushes();
  void run_pull_exchanges();
  void run_end_rounds();
  /// Event-driven round (config_.event.enabled): same begin/end phases, but
  /// pushes and pull exchanges flow through the (virtual_time, seq) event
  /// heap with per-link latency, partition cuts and the round deadline.
  void step_event();
  /// Runs one five-leg exchange; returns false on timeout.
  bool run_exchange(INode& initiator, INode& responder);
  /// Adds this step's Counters deltas into the process-wide registry
  /// (relaxed atomics, allocation-free). Deltas — not absolute values — so
  /// several engines running in parallel (a bench batch) aggregate into
  /// process totals instead of clobbering each other.
  void publish_metrics();

  EngineConfig config_;
  Rng rng_;
  crypto::SymmetricKey link_master_;  // link-session secrets derived on demand
  Round round_ = 0;

  std::vector<std::unique_ptr<INode>> nodes_;
  std::vector<NodeKind> kinds_;
  std::vector<std::uint8_t> alive_;
  std::vector<ITrafficListener*> listeners_;
  std::size_t listener_depth_ = 0;  // non-zero while dispatching callbacks
  bool listeners_dirty_ = false;    // a removal was deferred mid-dispatch
  Counters counters_;

  Arena arena_;                              // per-round scratch, reset each step
  std::vector<ShardSlot> shard_slots_;
  std::vector<NodeId> alive_scratch_;        // reused by the round phases
  std::vector<NodeId> targets_scratch_;      // sequential push/pull phases
  std::vector<std::uint32_t> alive_rank_;    // node index -> alive_scratch_ slot
  std::vector<std::size_t> bucket_offsets_;  // sharded delivery partition
  std::vector<std::size_t> bucket_cursor_;
  std::unique_ptr<exec::ThreadPool> pool_;   // lazily built, threads != 1

  // Structure-of-arrays view slab (refresh_views / view_of): all node
  // views live in one dense NodeId array instead of n per-node heap
  // vectors, so metric sweeps over every view are a linear scan.
  std::vector<NodeId> view_slab_;
  std::vector<std::size_t> view_offset_;  // per-node slot start in the slab
  std::vector<std::uint32_t> view_len_;   // per-node entry count

  // Encrypted-link session cache (encrypt_links only) and the wire-path
  // scratch buffers: encode/seal/open/decode reuse these every leg, so the
  // steady-state wire path of an encrypted exchange performs zero heap
  // allocations (the INode-produced messages themselves are the only
  // remaining allocator traffic in run_exchange).
  std::unique_ptr<wire::LinkTable> link_table_;
  std::vector<std::uint8_t> wire_plain_;
  std::vector<std::uint8_t> wire_frame_;
  std::vector<std::uint8_t> wire_opened_;

  // Observability (all pointers into Registry::global(); the registry
  // never erases, so they stay valid). Resolved once in the constructor —
  // step() itself only performs relaxed atomic adds and clock reads.
  static constexpr std::size_t kCounterMetrics = 13;
  std::array<obs::Histogram*, kPhaseCount> phase_hist_{};
  std::array<std::uint64_t, kPhaseCount> last_phase_us_{};
  std::array<obs::Counter*, kCounterMetrics> counter_metrics_{};
  Counters published_;  // baseline for the per-step registry deltas
  obs::Counter* rounds_metric_ = nullptr;

  // Event mode (config_.event.enabled): the (virtual_time, seq) heap, the
  // optional adversary delay hook, and the evt.* histograms.
  evt::Scheduler evt_sched_;
  std::function<std::uint64_t(Round, NodeId, NodeId)> link_delay_;
  obs::Histogram* evt_queue_hist_ = nullptr;
  obs::Histogram* evt_events_hist_ = nullptr;
  obs::Histogram* evt_virtual_hist_ = nullptr;
};

}  // namespace raptee::sim
