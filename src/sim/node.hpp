// INode: the behavioural contract between the round engine and a protocol
// implementation (honest Brahms/RAPTEE node, trusted node, Byzantine node).
//
// The engine drives one synchronous gossip round as:
//
//   1. begin_round()                 on every alive node
//   2. push fan-out                  push_targets() + make_push(), delivered
//                                    to on_push() mailboxes
//   3. pull exchanges                for each target of pull_targets(), the
//                                    five-leg exchange below, legs optionally
//                                    serialized + encrypted (EngineConfig)
//   4. end_round()                   view/sampler updates
//
// Pull exchange legs (initiator I, responder R):
//   I.open_pull(target)         -> PullRequest    (auth challenge, msg 1)
//   R.answer_pull(request)      -> PullReply      (full view + auth msg 2)
//   I.process_pull_reply(reply) -> AuthConfirm    (auth msg 3, may carry a
//                                                  trusted swap offer)
//   R.process_confirm(confirm)  -> optional<SwapReply>
//   I.process_swap_reply(reply)                   (closes trusted exchange)
//
// Implementations must tolerate any leg being dropped (message loss /
// crashed peer): the engine then calls on_pull_timeout() on the initiator.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "wire/message.hpp"

namespace raptee::sim {

class INode {
 public:
  virtual ~INode() = default;

  [[nodiscard]] virtual NodeId id() const = 0;

  /// Installs the initial view (bootstrap-node handout). Called once before
  /// the first round; may be called again to model a rejoin.
  virtual void bootstrap(const std::vector<NodeId>& initial_peers) = 0;

  /// Phase 1: start of round r. Buffers from the previous round are gone.
  virtual void begin_round(Round r) = 0;

  /// Phase 2a: recipients of this round's push messages (duplicates allowed;
  /// Brahms samples targets with replacement).
  [[nodiscard]] virtual std::vector<NodeId> push_targets() = 0;
  /// Scratch-filling variant used by the engine's hot loop: clears and
  /// fills `out`, whose capacity persists across rounds. Default delegates
  /// to the allocating form; nodes with precomputed schedules (the
  /// adversary Coordinator's slices) override to avoid the per-node vector.
  virtual void push_targets(std::vector<NodeId>& out) { out = push_targets(); }
  /// Phase 2b: the push payload (a node advertises an ID; honest nodes
  /// advertise their own, Byzantine nodes advertise any faulty ID).
  [[nodiscard]] virtual wire::PushMessage make_push() = 0;
  /// Phase 2c: push delivery.
  virtual void on_push(const wire::PushMessage& push) = 0;

  /// Phase 3: pull exchange, in the leg order documented above.
  [[nodiscard]] virtual std::vector<NodeId> pull_targets() = 0;
  /// Scratch-filling variant used by the engine's sharded pull-target
  /// phase: clears and fills `out` (same contents and — for nodes whose
  /// targets are random — the same per-node draws as the allocating form).
  /// Default delegates to the allocating form.
  virtual void pull_targets(std::vector<NodeId>& out) { out = pull_targets(); }
  /// Whether this node will answer a pull request from `requester` this
  /// round. Honest nodes always answer; an omission adversary refuses —
  /// the engine counts the suppressed leg and the initiator times out.
  [[nodiscard]] virtual bool answers_pull(NodeId requester) {
    (void)requester;
    return true;
  }
  [[nodiscard]] virtual wire::PullRequest open_pull(NodeId target) = 0;
  [[nodiscard]] virtual wire::PullReply answer_pull(const wire::PullRequest& request) = 0;
  [[nodiscard]] virtual wire::AuthConfirm process_pull_reply(const wire::PullReply& reply) = 0;
  [[nodiscard]] virtual std::optional<wire::SwapReply> process_confirm(
      const wire::AuthConfirm& confirm) = 0;
  virtual void process_swap_reply(const wire::SwapReply& reply) = 0;
  /// The exchange with `target` did not complete (loss or dead peer).
  virtual void on_pull_timeout(NodeId target) { (void)target; }

  /// Phase 4: end of round; protocol state updates happen here.
  virtual void end_round(Round r) = 0;

  /// Current dynamic view content (the peer-sampling service's product;
  /// every RPS implementation exposes this to its client application).
  [[nodiscard]] virtual std::vector<NodeId> current_view() const = 0;

  /// Upper bound on current_view().size() for this node, stable within a
  /// round. The engine sizes each node's slot in its structure-of-arrays
  /// view slab (Engine::view_of) from this. Nodes with a fixed-capacity
  /// view (PartialView l1) override with that constant; the default
  /// materializes the view to measure it. Return 0 to opt out of the slab
  /// (the adversary does: Byzantine "views" are synthetic and excluded
  /// from every honest-side metric anyway).
  [[nodiscard]] virtual std::size_t view_capacity() const {
    return current_view().size();
  }
  /// Copies the current view into `out` (capacity `cap`, as promised by
  /// view_capacity()) and returns the number of entries written —
  /// allocation-free in overrides. Default delegates to current_view().
  virtual std::size_t copy_view(NodeId* out, std::size_t cap) const {
    const std::vector<NodeId> view = current_view();
    const std::size_t n = view.size() < cap ? view.size() : cap;
    for (std::size_t i = 0; i < n; ++i) out[i] = view[i];
    return n;
  }
};

}  // namespace raptee::sim
