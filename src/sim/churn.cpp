#include "sim/churn.hpp"

#include <algorithm>

#include "sim/engine.hpp"

namespace raptee::sim {

ChurnSchedule ChurnSchedule::random_churn(const std::vector<NodeId>& population,
                                          Round from, Round to, double rate_per_round,
                                          Round downtime, bool rejoin, Rng& rng) {
  ChurnSchedule schedule;
  std::vector<NodeId> pool = population;
  rng.shuffle(pool);
  std::size_t cursor = 0;
  const auto per_round = static_cast<std::size_t>(
      rate_per_round * static_cast<double>(population.size()));
  for (Round r = from; r < to; ++r) {
    for (std::size_t i = 0; i < per_round && cursor < pool.size(); ++i, ++cursor) {
      const NodeId victim = pool[cursor];
      schedule.add({r, ChurnEvent::Kind::kLeave, victim});
      if (rejoin) schedule.add({r + downtime, ChurnEvent::Kind::kRejoin, victim});
    }
  }
  std::stable_sort(schedule.events_.begin(), schedule.events_.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.at_round < b.at_round;
                   });
  return schedule;
}

void ChurnSchedule::apply(Engine& engine, std::size_t bootstrap_view_size) {
  const Round now = engine.now();
  while (cursor_ < events_.size() && events_[cursor_].at_round <= now) {
    const ChurnEvent& event = events_[cursor_++];
    if (event.at_round < now) continue;  // missed (engine stepped past); skip
    switch (event.kind) {
      case ChurnEvent::Kind::kLeave:
        engine.set_alive(event.node, false);
        break;
      case ChurnEvent::Kind::kRejoin: {
        engine.set_alive(event.node, true);
        // Fresh bootstrap handout, as a rejoining node would receive.
        std::vector<NodeId> candidates = engine.alive_ids();
        candidates.erase(std::remove(candidates.begin(), candidates.end(), event.node),
                         candidates.end());
        engine.node(event.node).bootstrap(
            engine.rng().sample(candidates, bootstrap_view_size));
        break;
      }
    }
  }
}

}  // namespace raptee::sim
