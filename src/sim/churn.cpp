#include "sim/churn.hpp"

#include <algorithm>

#include "sim/engine.hpp"

namespace raptee::sim {

ChurnSchedule ChurnSchedule::random_churn(const std::vector<NodeId>& population,
                                          Round from, Round to, double rate_per_round,
                                          Round downtime, bool rejoin, Rng& rng) {
  ChurnSchedule schedule;
  std::vector<NodeId> pool = population;
  rng.shuffle(pool);
  std::size_t cursor = 0;
  // Accumulate the fractional per-round quota instead of truncating it:
  // rate 0.0005 over 1000 nodes must churn one node every other round, not
  // silently nobody — the total tracks rate × N × rounds (pool permitting).
  double quota = 0.0;
  for (Round r = from; r < to; ++r) {
    quota += rate_per_round * static_cast<double>(population.size());
    const auto per_round = static_cast<std::size_t>(quota);
    quota -= static_cast<double>(per_round);
    for (std::size_t i = 0; i < per_round && cursor < pool.size(); ++i, ++cursor) {
      const NodeId victim = pool[cursor];
      schedule.add({r, ChurnEvent::Kind::kLeave, victim});
      if (rejoin) schedule.add({r + downtime, ChurnEvent::Kind::kRejoin, victim});
    }
  }
  std::stable_sort(schedule.events_.begin(), schedule.events_.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.at_round < b.at_round;
                   });
  return schedule;
}

void ChurnSchedule::apply(Engine& engine, std::size_t bootstrap_view_size) {
  const Round now = engine.now();
  while (cursor_ < events_.size() && events_[cursor_].at_round <= now) {
    const ChurnEvent& event = events_[cursor_++];
    // A leave whose round the engine stepped past is skipped — crashing the
    // node late would stretch its downtime arbitrarily. A missed rejoin
    // must still fire, or the node stays dead forever.
    if (event.at_round < now && event.kind == ChurnEvent::Kind::kLeave) continue;
    switch (event.kind) {
      case ChurnEvent::Kind::kLeave:
        engine.set_alive(event.node, false);
        break;
      case ChurnEvent::Kind::kRejoin: {
        // Pairs the rejoin with its leave: if the leave was itself missed
        // (node still up), reviving would wipe a healthy node's view.
        if (engine.is_alive(event.node)) break;
        engine.set_alive(event.node, true);
        // Fresh bootstrap handout, as a rejoining node would receive:
        // an index-remap draw over the alive list (the node itself was
        // just revived, so it is present) — the same draws as the legacy
        // erase-self copy, without allocating a candidates vector per
        // rejoin event.
        engine.alive_ids(alive_scratch_);
        const std::size_t rank = static_cast<std::size_t>(
            std::lower_bound(alive_scratch_.begin(), alive_scratch_.end(), event.node,
                             [](NodeId a, NodeId b) { return a.value < b.value; }) -
            alive_scratch_.begin());
        engine.rng().sample_indices_into(alive_scratch_.size() - 1,
                                         bootstrap_view_size, draw_scratch_);
        std::vector<NodeId> view;
        view.reserve(draw_scratch_.size());
        for (const std::size_t j : draw_scratch_) {
          view.push_back(alive_scratch_[j >= rank ? j + 1 : j]);
        }
        engine.node(event.node).bootstrap(view);
        break;
      }
    }
  }
}

}  // namespace raptee::sim
