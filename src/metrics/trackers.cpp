#include "metrics/trackers.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "core/raptee_node.hpp"

namespace raptee::metrics {

PollutionTracker::PollutionTracker(std::function<bool(NodeId)> is_byzantine_id,
                                   std::size_t view_size, double stability_band,
                                   std::size_t smoothing_window)
    : is_byzantine_id_(std::move(is_byzantine_id)),
      floor_(view_size ? 1.0 / static_cast<double>(view_size) : 0.0),
      band_(stability_band),
      window_(std::max<std::size_t>(1, smoothing_window)) {
  RAPTEE_REQUIRE(is_byzantine_id_, "PollutionTracker needs a Byzantine oracle");
}

void PollutionTracker::on_round_end(Round round, sim::Engine& engine) {
  last_per_node_.clear();
  if (history_.size() < engine.size()) history_.resize(engine.size());

  double snapshot_sum = 0.0;
  double smoothed_sum = 0.0;
  double honest_sum = 0.0, trusted_sum = 0.0;
  std::size_t honest_count = 0, trusted_count = 0;
  std::vector<double>& smoothed = smoothed_scratch_;
  smoothed.clear();
  bool all_warm = true;

  // Same visit order as alive_ids(is_correct) — ascending id over the
  // alive correct population — but reading the engine's view slab instead
  // of allocating a current_view() copy per node.
  for (std::uint32_t i = 0; i < engine.size(); ++i) {
    const NodeId id{i};
    if (!engine.is_alive(id) || !is_correct(engine.kind(id))) continue;
    const std::span<const NodeId> view = engine.view_of(id);
    std::size_t byz = 0;
    for (NodeId entry : view) {
      if (is_byzantine_id_(entry)) ++byz;
    }
    const double share = view.empty()
                             ? 0.0
                             : static_cast<double>(byz) / static_cast<double>(view.size());
    last_per_node_.push_back(share);
    snapshot_sum += share;
    if (is_trusted(engine.kind(id))) {
      trusted_sum += share;
      ++trusted_count;
    } else {
      honest_sum += share;
      ++honest_count;
    }

    // Rolling mean update (ring buffer).
    NodeHistory& h = history_[id.value];
    if (h.ring.size() != window_) h.ring.assign(window_, 0.0);
    if (h.filled == window_) {
      h.sum -= h.ring[h.next];
    }
    h.ring[h.next] = share;
    h.sum += share;
    h.next = (h.next + 1) % window_;
    if (h.filled < window_) ++h.filled;
    if (h.filled < window_) all_warm = false;
    smoothed.push_back(h.sum / static_cast<double>(h.filled));
    smoothed_sum += smoothed.back();
  }

  if (last_per_node_.empty()) {
    series_.push_back(0.0);
    max_dev_.push_back(0.0);
    return;
  }
  const double count = static_cast<double>(last_per_node_.size());
  series_.push_back(snapshot_sum / count);
  honest_series_.push_back(honest_count ? honest_sum / static_cast<double>(honest_count)
                                        : 0.0);
  trusted_series_.push_back(
      trusted_count ? trusted_sum / static_cast<double>(trusted_count) : 0.0);

  const double smoothed_avg = smoothed_sum / count;
  double max_dev = 0.0;
  for (double s : smoothed) max_dev = std::max(max_dev, std::abs(s - smoothed_avg));
  max_dev_.push_back(max_dev);

  smoothed_avg_history_.push_back(smoothed_avg);
  if (!stability_round_ && all_warm) {
    // D4 allowance: the 10 % relative band, floored by one view slot and by
    // the estimator's own noise ceiling — the expected maximum (over n
    // nodes) of a window-averaged binomial snapshot, sqrt(2 ln n) + 0.5
    // standard errors. Below that ceiling, residual deviation is sampling
    // noise, not systematic bias.
    const double p = smoothed_avg;
    const double snapshot_sd = floor_ > 0.0 ? std::sqrt(std::max(p * (1.0 - p), 0.0) * floor_)
                                            : 0.0;  // floor_ == 1/l1
    const double noise_ceiling =
        snapshot_sd / std::sqrt(static_cast<double>(window_)) *
        (std::sqrt(2.0 * std::log(std::max(2.0, count))) + 0.5);
    const double allowance = std::max({band_ * p, floor_, noise_ceiling});
    // Plateau condition: homogeneity alone also holds while every view is
    // being polluted in lockstep; stability additionally requires the
    // population average to have stopped moving over the last window.
    bool plateaued = false;
    if (smoothed_avg_history_.size() > window_) {
      const double then = smoothed_avg_history_[smoothed_avg_history_.size() - 1 - window_];
      plateaued = std::abs(smoothed_avg - then) <= allowance;
    }
    if (max_dev <= allowance && plateaued) stability_round_ = round;
  }
}

namespace {
double tail_mean(const std::vector<double>& series, std::size_t window) {
  if (series.empty()) return 0.0;
  window = std::min(window, series.size());
  double sum = 0.0;
  for (std::size_t i = series.size() - window; i < series.size(); ++i) sum += series[i];
  return sum / static_cast<double>(window);
}
}  // namespace

double PollutionTracker::steady_state_pollution(std::size_t window) const {
  return tail_mean(series_, window);
}
double PollutionTracker::steady_state_honest(std::size_t window) const {
  return tail_mean(honest_series_, window);
}
double PollutionTracker::steady_state_trusted(std::size_t window) const {
  return tail_mean(trusted_series_, window);
}

DiscoveryTracker::DiscoveryTracker(std::vector<NodeId> correct_ids, double threshold)
    : threshold_(threshold), correct_ids_(std::move(correct_ids)) {
  RAPTEE_REQUIRE(!correct_ids_.empty(), "DiscoveryTracker needs a population");
  std::uint32_t max_id = 0;
  for (NodeId id : correct_ids_) max_id = std::max(max_id, id.value);
  rank_.assign(max_id + 1, NodeId::kInvalid);
  for (std::uint32_t i = 0; i < correct_ids_.size(); ++i) {
    rank_[correct_ids_[i].value] = i;
  }
  knowledge_.reserve(correct_ids_.size());
  for (std::size_t i = 0; i < correct_ids_.size(); ++i) {
    knowledge_.emplace_back(correct_ids_.size());
    // A node knows itself.
    knowledge_.back().set(rank_[correct_ids_[i].value]);
  }
}

void DiscoveryTracker::learn_view(NodeId observer, std::span<const NodeId> view) {
  if (observer.value >= rank_.size() || rank_[observer.value] == NodeId::kInvalid) return;
  DynamicBitset& bits = knowledge_[rank_[observer.value]];
  for (NodeId s : view) {
    if (s.value < rank_.size() && rank_[s.value] != NodeId::kInvalid) {
      bits.set(rank_[s.value]);
    }
  }
}

void DiscoveryTracker::prime(sim::Engine& engine) {
  // Outside step() the slab may be stale (or never built) — refresh before
  // reading the bootstrap views.
  engine.refresh_views();
  for (NodeId id : correct_ids_) {
    if (!engine.is_alive(id)) continue;
    learn_view(id, engine.view_of(id));
  }
}

void DiscoveryTracker::on_round_end(Round round, sim::Engine& engine) {
  for (NodeId id : correct_ids_) {
    if (!engine.is_alive(id)) continue;
    learn_view(id, engine.view_of(id));
  }
  double min_fill = 1.0;
  for (const auto& bits : knowledge_) min_fill = std::min(min_fill, bits.fill_ratio());
  min_knowledge_.push_back(min_fill);
  if (!discovery_round_ && min_fill >= threshold_) discovery_round_ = round;
}

TrustedTelemetryTracker::TrustedTelemetryTracker(std::vector<NodeId> trusted_ids)
    : trusted_ids_(std::move(trusted_ids)) {}

void TrustedTelemetryTracker::on_round_end(Round /*round*/, sim::Engine& engine) {
  if (trusted_ids_.empty()) return;
  double rate_sum = 0.0, ratio_sum = 0.0;
  std::size_t counted = 0;
  for (NodeId id : trusted_ids_) {
    if (!engine.is_alive(id)) continue;
    const auto* node = dynamic_cast<const core::RapteeNode*>(&engine.node(id));
    if (node == nullptr) continue;
    rate_sum += node->last_eviction_rate();
    ratio_sum += node->last_trusted_ratio();
    ++counted;
  }
  if (counted == 0) return;
  eviction_rates_.push_back(rate_sum / static_cast<double>(counted));
  trusted_ratios_.push_back(ratio_sum / static_cast<double>(counted));
}

double TrustedTelemetryTracker::mean_eviction_rate() const {
  if (eviction_rates_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : eviction_rates_) sum += v;
  return sum / static_cast<double>(eviction_rates_.size());
}

double TrustedTelemetryTracker::mean_trusted_ratio() const {
  if (trusted_ratios_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : trusted_ratios_) sum += v;
  return sum / static_cast<double>(trusted_ratios_.size());
}

VictimTracker::VictimTracker(std::function<bool(NodeId)> is_byzantine_id,
                             std::vector<NodeId> victims, double isolation_threshold)
    : is_byzantine_id_(std::move(is_byzantine_id)),
      victims_(std::move(victims)),
      isolation_threshold_(isolation_threshold) {
  RAPTEE_REQUIRE(is_byzantine_id_, "VictimTracker needs a Byzantine oracle");
  RAPTEE_REQUIRE(!victims_.empty(), "VictimTracker needs at least one victim");
  RAPTEE_REQUIRE(isolation_threshold_ > 0.0 && isolation_threshold_ <= 1.0,
                 "isolation threshold out of (0,1]: " << isolation_threshold_);
}

void VictimTracker::on_round_end(Round round, sim::Engine& engine) {
  double sum = 0.0;
  std::size_t alive = 0;
  bool all_isolated = true;
  for (NodeId id : victims_) {
    if (!engine.is_alive(id)) continue;
    ++alive;
    const std::span<const NodeId> view = engine.view_of(id);
    std::size_t byz = 0;
    for (NodeId entry : view) {
      if (is_byzantine_id_(entry)) ++byz;
    }
    const double share = view.empty()
                             ? 0.0
                             : static_cast<double>(byz) / static_cast<double>(view.size());
    sum += share;
    if (share < isolation_threshold_) all_isolated = false;
  }
  if (alive == 0) return;  // no observable victim; the snapshot reports 0
  series_.push_back(sum / static_cast<double>(alive));
  if (!isolation_round_ && all_isolated) isolation_round_ = round;
}

double VictimTracker::steady_state_pollution(std::size_t window) const {
  return tail_mean(series_, window);
}

}  // namespace raptee::metrics
