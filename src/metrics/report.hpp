// Reporting helpers: aligned text tables (the bench binaries print the
// paper's rows/series) and CSV export (bench_out/*.csv for re-plotting).
#pragma once

#include <string>
#include <vector>

namespace raptee::metrics {

/// Column-aligned text table with a header row.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Renders with 2-space column padding.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
[[nodiscard]] std::string fmt(double value, int precision = 1);

/// Minimal CSV writer; creates parent directories.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  /// Writes to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace raptee::metrics
