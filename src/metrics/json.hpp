// Dependency-free JSON emission for machine-readable results.
//
// The scenario API serializes every result type (ExperimentResult,
// RepeatedResult, ComparisonResult, grid sweeps) to bench_out/*.json so the
// bench trajectory can be diffed, re-plotted and regression-tracked without
// parsing aligned text tables. The writer is deliberately tiny: objects and
// arrays are assembled as strings, numbers are formatted with
// std::to_chars (shortest round-trip form), so a fixed-seed run emits
// bit-identical documents on every host — a property the scenario tests
// assert.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace raptee::metrics {

/// Escapes `text` per RFC 8259 (quotes, backslash, control characters);
/// returns the escaped body WITHOUT surrounding quotes.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Shortest round-trip decimal form of `value` (std::to_chars). Non-finite
/// values, which JSON cannot represent, become "null".
[[nodiscard]] std::string json_number(double value);

/// Incremental "key": value object builder. Insertion order is preserved —
/// determinism is part of the output contract.
class JsonObject {
 public:
  JsonObject& field(std::string_view key, double value);
  // size_t/Cycles/Round all funnel through the 64-bit integer overloads
  // (std::size_t is std::uint64_t on every supported platform).
  JsonObject& field(std::string_view key, std::int64_t value);
  JsonObject& field(std::string_view key, std::uint64_t value);
  JsonObject& field(std::string_view key, int value);
  JsonObject& field(std::string_view key, unsigned value);
  JsonObject& field(std::string_view key, bool value);
  JsonObject& field(std::string_view key, std::string_view value);
  JsonObject& field(std::string_view key, const char* value);
  /// Rounds absent optionals to null (figures use "-" in text tables).
  JsonObject& field(std::string_view key, const std::optional<double>& value);
  JsonObject& field_null(std::string_view key);
  /// Splices an already-serialized JSON value (nested object/array).
  JsonObject& field_raw(std::string_view key, std::string_view raw_json);

  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  JsonObject& append(std::string_view key, std::string_view serialized);
  std::string body_;
};

/// Incremental array builder; same determinism contract as JsonObject.
class JsonArray {
 public:
  JsonArray& item(double value);
  JsonArray& item(std::string_view value);
  JsonArray& item_raw(std::string_view raw_json);

  [[nodiscard]] bool empty() const { return body_.empty(); }
  [[nodiscard]] std::string str() const { return "[" + body_ + "]"; }

 private:
  JsonArray& append(std::string_view serialized);
  std::string body_;
};

/// Serializes a numeric series as a JSON array.
[[nodiscard]] std::string json_series(const std::vector<double>& values);

/// Strict structural validator (RFC 8259 grammar, no semantic output).
/// Used by tests and tools to assert emitted documents parse.
[[nodiscard]] bool json_valid(std::string_view text);

/// Writes `content` to `path`, creating parent directories; returns false
/// on I/O failure.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace raptee::metrics
