#include "metrics/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "adversary/byzantine.hpp"
#include "exec/parallel.hpp"
#include "adversary/injection.hpp"
#include "common/assert.hpp"
#include "core/node_factory.hpp"
#include "core/raptee_node.hpp"
#include "metrics/trackers.hpp"
#include "scenario/observer.hpp"
#include "sim/churn.hpp"
#include "sim/engine.hpp"

namespace raptee::metrics {

void ChurnSpec::validate() const {
  if (!enabled) return;
  RAPTEE_REQUIRE(std::isfinite(rate_per_round) && rate_per_round >= 0.0 &&
                     rate_per_round <= 1.0,
                 "churn rate out of [0,1]: " << rate_per_round);
  RAPTEE_REQUIRE(until == 0 || from <= until,
                 "churn window invalid: [" << from << ", " << until << ")");
}

std::size_t ExperimentConfig::byzantine_count() const {
  return static_cast<std::size_t>(std::lround(byzantine_fraction * static_cast<double>(n)));
}
std::size_t ExperimentConfig::trusted_count() const {
  return static_cast<std::size_t>(std::lround(trusted_fraction * static_cast<double>(n)));
}
std::size_t ExperimentConfig::poisoned_count() const {
  return static_cast<std::size_t>(
      std::lround(poisoned_extra_fraction * static_cast<double>(n)));
}

void ExperimentConfig::validate() const {
  RAPTEE_REQUIRE(n >= 8, "population too small: " << n);
  RAPTEE_REQUIRE(byzantine_fraction >= 0.0 && byzantine_fraction < 1.0,
                 "byzantine fraction out of range");
  RAPTEE_REQUIRE(trusted_fraction >= 0.0 && trusted_fraction <= 1.0,
                 "trusted fraction out of range");
  RAPTEE_REQUIRE(byzantine_fraction + trusted_fraction <= 1.0,
                 "f + t exceeds the population");
  RAPTEE_REQUIRE(poisoned_extra_fraction >= 0.0,
                 "negative poisoned fraction: " << poisoned_extra_fraction);
  // Fractions are rounded to counts independently, so near the boundary the
  // rounded counts can overshoot what the fractions promise: catch both an
  // over-allocated population and a run with no correct node at all (the
  // trackers need at least one observer).
  RAPTEE_REQUIRE(byzantine_count() + trusted_count() <= n,
                 "rounded byzantine + trusted counts exceed the population");
  RAPTEE_REQUIRE(byzantine_count() < n, "no correct node left in the population");
  RAPTEE_REQUIRE(message_loss >= 0.0 && message_loss < 1.0,
                 "message loss out of [0,1): " << message_loss);
  RAPTEE_REQUIRE(std::isfinite(tamper_rate) && tamper_rate >= 0.0 && tamper_rate <= 1.0,
                 "tamper rate out of [0,1]: " << tamper_rate);
  RAPTEE_REQUIRE(identification_threshold >= 0.0 && identification_threshold <= 1.0,
                 "identification threshold out of [0,1]");
  RAPTEE_REQUIRE(rounds >= 1, "need at least one round");
  RAPTEE_REQUIRE(stability_window >= 1, "stability window must be >= 1");
  RAPTEE_REQUIRE(engine_threads <= 4096,
                 "engine_threads implausibly large: " << engine_threads);
  attack.validate();
  brahms.validate();
  eviction.validate();
  churn.validate();
  event.validate();
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                scenario::IScenarioObserver* observer) {
  config.validate();

  const std::size_t n_byz = config.byzantine_count();
  const std::size_t n_trusted = config.trusted_count();
  const std::size_t n_poisoned = config.poisoned_count();
  const std::size_t n_honest = config.n - n_byz - n_trusted;
  const std::size_t total = config.n + n_poisoned;

  // --- kind assignment, shuffled over the id space ---
  std::vector<NodeKind> kinds;
  kinds.reserve(total);
  kinds.insert(kinds.end(), n_honest, NodeKind::kHonest);
  kinds.insert(kinds.end(), n_trusted, NodeKind::kTrusted);
  kinds.insert(kinds.end(), n_byz, NodeKind::kByzantine);
  kinds.insert(kinds.end(), n_poisoned, NodeKind::kPoisonedTrusted);
  Rng layout_rng(mix64(config.seed, 0x6C61796Full));
  layout_rng.shuffle(kinds);

  std::vector<NodeId> byz_ids, correct_ids, trusted_ids;
  for (std::uint32_t i = 0; i < total; ++i) {
    const NodeId id{i};
    if (kinds[i] == NodeKind::kByzantine) {
      byz_ids.push_back(id);
    } else {
      correct_ids.push_back(id);
      if (is_trusted(kinds[i])) trusted_ids.push_back(id);
    }
  }

  // --- engine, adversary, factory ---
  sim::EngineConfig engine_config;
  engine_config.seed = config.seed;
  engine_config.wire_roundtrip = config.wire_roundtrip;
  engine_config.encrypt_links = config.encrypt_links;
  engine_config.message_loss = config.message_loss;
  engine_config.tamper_rate = config.tamper_rate;
  engine_config.link_sessions = config.link_sessions;
  engine_config.threads = config.engine_threads;
  engine_config.event = config.event;
  sim::Engine engine(engine_config);

  std::shared_ptr<adversary::Coordinator> coordinator;
  std::vector<NodeId> victim_ids;
  if (!byz_ids.empty()) {
    std::unique_ptr<adversary::IStrategy> strategy =
        adversary::make_strategy(config.attack);
    adversary::AttackConfig attack;
    attack.push_budget_per_member = config.brahms.push_slice();
    attack.pull_fanout = config.brahms.pull_slice();
    attack.advertised_view_size = config.brahms.l1;
    attack.attach_bogus_swap_offer = config.attack.attach_bogus_swap_offer;
    if (strategy->wants_victims()) {
      // Targeted set: drawn from the configured population slice (falling
      // back to all correct nodes when the slice is empty); an explicit
      // count wins over the fraction, and at least one victim is drawn.
      // The draw uses a private seed-derived stream so the other random
      // streams stay untouched.
      std::vector<NodeId> pool;
      using VictimKind = adversary::AttackSpec::VictimKind;
      if (config.attack.victim_kind != VictimKind::kAny) {
        const bool want_trusted = config.attack.victim_kind == VictimKind::kTrusted;
        for (NodeId id : correct_ids) {
          if (is_trusted(kinds[id.value]) == want_trusted) pool.push_back(id);
        }
      }
      if (pool.empty()) pool = correct_ids;
      std::size_t count =
          config.attack.victim_count > 0
              ? config.attack.victim_count
              : static_cast<std::size_t>(std::lround(config.attack.victim_fraction *
                                                     static_cast<double>(pool.size())));
      count = std::min(std::max<std::size_t>(count, 1), pool.size());
      Rng victim_rng(mix64(config.seed, 0x76637469ull));
      victim_ids = victim_rng.sample(pool, count);
      std::sort(victim_ids.begin(), victim_ids.end());
      attack.targeted_victims = victim_ids;
    }
    coordinator = std::make_shared<adversary::Coordinator>(
        byz_ids, correct_ids, attack, mix64(config.seed, 0x636F6F72ull),
        std::move(strategy));
    if (config.event.enabled) {
      // Delay-capable strategies (delay_eclipse) inject extra per-link
      // latency through the engine's scheduling path; extra_delay_us is a
      // pure function, so determinism across worker counts is preserved.
      engine.set_link_delay([coordinator](Round r, NodeId from, NodeId to) {
        return coordinator->strategy().extra_delay_us(r, from, to, *coordinator);
      });
    }
  }

  const sgx::CycleModel cycle_model = sgx::CycleModel::paper_table1();
  core::NodeFactory factory(config.seed, config.auth_mode,
                            config.use_cycle_model ? &cycle_model : nullptr);

  brahms::BrahmsConfig brahms_config;
  brahms_config.params = config.brahms;
  core::RapteeConfig raptee_config;
  raptee_config.brahms = brahms_config;
  raptee_config.eviction = config.eviction;
  raptee_config.trusted_overlay = config.trusted_overlay;

  const auto probe = engine.aliveness_probe();
  for (std::uint32_t i = 0; i < total; ++i) {
    const NodeId id{i};
    switch (kinds[i]) {
      case NodeKind::kHonest:
        engine.add_node(factory.make_honest(id, brahms_config, probe), kinds[i]);
        break;
      case NodeKind::kTrusted:
      case NodeKind::kPoisonedTrusted:
        engine.add_node(factory.make_trusted(id, raptee_config, probe), kinds[i]);
        break;
      case NodeKind::kByzantine:
        engine.add_node(std::make_unique<adversary::ByzantineNode>(
                            id, coordinator, mix64(config.seed, 0xB00Bull + i)),
                        kinds[i]);
        break;
    }
  }

  // --- bootstrap: uniform global sample; poisoned nodes get faulty views ---
  // Index-remap draw: the population is the dense id range [0, total), so
  // "everyone minus self" is reproduced by sampling j from [0, total-1)
  // and bumping past self's own index — the same draws (sample ==
  // sample_indices + lookup) as the legacy per-node candidates copy,
  // without its O(n²) bootstrap cost.
  Rng bootstrap_rng(mix64(config.seed, 0x626F6F74ull));
  std::vector<std::size_t> draw_scratch;
  engine.bootstrap_with([&](NodeId self, NodeKind kind) -> std::vector<NodeId> {
    if (kind == NodeKind::kByzantine) return {};
    if (kind == NodeKind::kPoisonedTrusted && coordinator) {
      return adversary::poisoned_bootstrap(*coordinator, config.brahms.l1);
    }
    bootstrap_rng.sample_indices_into(total - 1, config.brahms.l1, draw_scratch);
    std::vector<NodeId> view;
    view.reserve(draw_scratch.size());
    for (const std::size_t j : draw_scratch) {
      view.emplace_back(static_cast<std::uint32_t>(j >= self.value ? j + 1 : j));
    }
    return view;
  });

  // --- trackers ---
  auto is_byz = [&kinds](NodeId id) {
    return id.value < kinds.size() && kinds[id.value] == NodeKind::kByzantine;
  };
  PollutionTracker pollution(is_byz, config.brahms.l1, 0.10, config.stability_window);
  DiscoveryTracker discovery(correct_ids);
  TrustedTelemetryTracker trusted_telemetry(trusted_ids);
  discovery.prime(engine);
  engine.add_listener(&pollution);
  engine.add_listener(&discovery);
  engine.add_listener(&trusted_telemetry);

  std::unique_ptr<VictimTracker> victim_tracker;
  if (!victim_ids.empty()) {
    victim_tracker = std::make_unique<VictimTracker>(is_byz, victim_ids,
                                                     config.attack.isolation_threshold);
    engine.add_listener(victim_tracker.get());
  }

  std::unique_ptr<adversary::IdentificationAttack> ident;
  if (config.run_identification && !byz_ids.empty()) {
    // Only genuinely honest trusted nodes are "trusted" ground truth: the
    // attack targets the nodes whose camouflage matters.
    auto is_trusted_truth = [&kinds](NodeId id) {
      return id.value < kinds.size() && is_trusted(kinds[id.value]);
    };
    ident = std::make_unique<adversary::IdentificationAttack>(is_byz, is_trusted_truth);
    engine.add_listener(ident.get());
  }

  // --- churn schedule (correct nodes only; seed-derived stream) ---
  sim::ChurnSchedule churn_schedule;
  if (config.churn.enabled) {
    const Round until =
        config.churn.until == 0 ? config.rounds
                                : std::min<Round>(config.churn.until, config.rounds);
    Rng churn_rng(mix64(config.seed, 0x6368726Eull));
    churn_schedule = sim::ChurnSchedule::random_churn(
        correct_ids, config.churn.from, until, config.churn.rate_per_round,
        config.churn.downtime, config.churn.rejoin, churn_rng);
  }

  // --- run ---
  ExperimentResult result;
  adversary::IdentificationResult best{};
  if (observer) observer->on_run_start(config, engine);
  for (Round r = 0; r < config.rounds; ++r) {
    if (config.churn.enabled) churn_schedule.apply(engine, config.brahms.l1);
    // Some series only append when their population was observable this
    // round (trusted telemetry needs an alive trusted node, the honest /
    // trusted pollution splits need an alive correct node); remember each
    // length so the snapshot can tell "no datum" apart from a stale value.
    const std::size_t telemetry_before = trusted_telemetry.eviction_rate_series().size();
    const std::size_t honest_before = pollution.honest_series().size();
    const std::size_t trusted_before = pollution.trusted_series().size();
    const std::size_t knowledge_before = discovery.min_knowledge_series().size();
    const std::size_t victim_before =
        victim_tracker ? victim_tracker->pollution_series().size() : 0;
    engine.step();
    if (ident) {
      const auto eval = ident->evaluate(engine.now(), config.identification_threshold);
      if (eval.f1 > best.f1) best = eval;
    }
    if (observer) {
      // Report 0 for a series that skipped this round (no observable
      // population), and its fresh tail value when it grew.
      const auto latest = [](const std::vector<double>& series, std::size_t before) {
        return series.size() > before ? series.back() : 0.0;
      };
      scenario::RoundSnapshot snapshot;
      snapshot.round = r;
      snapshot.pollution = pollution.pollution_series().back();
      snapshot.pollution_honest = latest(pollution.honest_series(), honest_before);
      snapshot.pollution_trusted = latest(pollution.trusted_series(), trusted_before);
      snapshot.min_knowledge = latest(discovery.min_knowledge_series(), knowledge_before);
      if (trusted_telemetry.eviction_rate_series().size() > telemetry_before) {
        snapshot.eviction_rate = trusted_telemetry.eviction_rate_series().back();
        snapshot.trusted_ratio = trusted_telemetry.trusted_ratio_series().back();
      }
      snapshot.swaps_completed = engine.counters().swaps_completed;
      snapshot.pulls_completed = engine.counters().pulls_completed;
      snapshot.pushes_delivered = engine.counters().pushes_delivered;
      snapshot.wire_bytes = engine.counters().wire_bytes;
      snapshot.legs_dropped = engine.counters().legs_dropped;
      snapshot.legs_tampered = engine.counters().legs_tampered;
      snapshot.legs_corrupted = engine.counters().legs_corrupted;
      snapshot.legs_suppressed = engine.counters().legs_suppressed;
      if (victim_tracker) {
        snapshot.victim_pollution = latest(victim_tracker->pollution_series(),
                                           victim_before);
      }
      snapshot.attack_active = coordinator && coordinator->active();
      if (config.event.enabled) {
        snapshot.virtual_ms = engine.virtual_now_us() / 1000;
        snapshot.legs_late = engine.counters().legs_late;
        snapshot.partition_drops = engine.counters().partition_drops;
      }
      for (std::size_t p = 0; p < snapshot.phase_ms.size(); ++p) {
        snapshot.phase_ms[p] =
            static_cast<double>(engine.last_phase_us()[p]) / 1000.0;
      }
      observer->on_round(snapshot, engine);
    }
  }

  // --- collect ---
  result.steady_pollution = pollution.steady_state_pollution();
  result.steady_pollution_honest = pollution.steady_state_honest();
  result.steady_pollution_trusted = pollution.steady_state_trusted();
  result.discovery_round = discovery.discovery_round();
  result.stability_round = pollution.stability_round();
  result.pollution_series = pollution.pollution_series();
  result.pollution_series_trusted = pollution.trusted_series();
  result.min_knowledge_series = discovery.min_knowledge_series();
  result.mean_eviction_rate = trusted_telemetry.mean_eviction_rate();
  result.mean_trusted_ratio = trusted_telemetry.mean_trusted_ratio();
  if (ident) {
    result.ident_best = best;
    result.ident_final = ident->evaluate(engine.now(), config.identification_threshold);
  }
  for (NodeId id : trusted_ids) {
    if (const auto* node = dynamic_cast<const core::RapteeNode*>(&engine.node(id))) {
      result.enclave_cycles_total += node->enclave().ledger().total_cycles();
    }
  }
  result.swaps_completed = engine.counters().swaps_completed;
  result.pulls_completed = engine.counters().pulls_completed;
  result.legs_dropped = engine.counters().legs_dropped;
  result.legs_tampered = engine.counters().legs_tampered;
  result.legs_corrupted = engine.counters().legs_corrupted;
  result.wire_bytes = engine.counters().wire_bytes;

  result.attack.strategy = config.attack.strategy;
  result.attack.engaged = coordinator != nullptr &&
                          (config.attack.strategy != "balanced" ||
                           config.attack.attach_bogus_swap_offer || !victim_ids.empty());
  result.attack.victims = victim_ids.size();
  result.attack.legs_suppressed = engine.counters().legs_suppressed;
  if (coordinator) result.attack.rounds_active = coordinator->rounds_active();
  if (victim_tracker) {
    result.attack.victim_pollution_series = victim_tracker->pollution_series();
    result.attack.steady_victim_pollution = victim_tracker->steady_state_pollution();
    result.attack.rounds_to_isolation = victim_tracker->isolation_round();
  }

  if (config.event.enabled) {
    result.evt.engaged = true;
    result.evt.virtual_ms = engine.virtual_now_us() / 1000;
    result.evt.legs_late = engine.counters().legs_late;
    result.evt.partition_drops = engine.counters().partition_drops;
    if (result.discovery_round) {
      result.evt.dissemination_time_ms =
          (static_cast<std::uint64_t>(*result.discovery_round) + 1) *
          config.event.round_interval_us / 1000;
    }
  }
  if (observer) observer->on_run_end(result, engine);
  return result;
}

std::uint64_t repetition_seed(std::uint64_t base_seed, std::size_t rep) {
  return mix64(base_seed, 0x5265705Aull + rep);
}

RepeatedResult aggregate_runs(const ExperimentResult* results, std::size_t count) {
  RepeatedResult agg;
  agg.runs = count;
  for (std::size_t i = 0; i < count; ++i) {
    const ExperimentResult& r = results[i];
    agg.pollution.add(r.steady_pollution);
    agg.pollution_honest.add(r.steady_pollution_honest);
    agg.pollution_trusted.add(r.steady_pollution_trusted);
    if (r.discovery_round) {
      agg.discovery.add(static_cast<double>(*r.discovery_round));
      ++agg.discovery_reached;
    }
    if (r.stability_round) {
      agg.stability.add(static_cast<double>(*r.stability_round));
      ++agg.stability_reached;
    }
    agg.eviction_rate.add(r.mean_eviction_rate);
    agg.trusted_ratio.add(r.mean_trusted_ratio);
    agg.ident_best_precision.add(r.ident_best.precision);
    agg.ident_best_recall.add(r.ident_best.recall);
    agg.ident_best_f1.add(r.ident_best.f1);
    if (r.attack.engaged) {
      ++agg.attacked_runs;
      agg.legs_suppressed.add(static_cast<double>(r.attack.legs_suppressed));
    }
    if (r.attack.victims > 0) {
      agg.victim_pollution.add(r.attack.steady_victim_pollution);
      if (r.attack.rounds_to_isolation) {
        agg.isolation_round.add(static_cast<double>(*r.attack.rounds_to_isolation));
        ++agg.isolation_reached;
      }
    }
  }
  return agg;
}

std::vector<ExperimentResult> run_batch(const std::vector<ExperimentConfig>& configs,
                                        std::size_t threads) {
  // One work-stealing task per run; each run derives every random stream
  // from its own config.seed, so the map is bit-identical to the
  // sequential loop for any pool width.
  return exec::parallel_map(threads, configs.size(),
                            [&configs](std::size_t i) { return run_experiment(configs[i]); });
}

RepeatedResult run_repeated(ExperimentConfig config, std::size_t reps,
                            std::size_t threads) {
  std::vector<ExperimentConfig> configs;
  configs.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    ExperimentConfig c = config;
    c.seed = repetition_seed(config.seed, r);
    configs.push_back(c);
  }
  const auto results = run_batch(configs, threads);
  return aggregate_runs(results.data(), results.size());
}

ExperimentConfig comparison_baseline(const ExperimentConfig& raptee_config) {
  ExperimentConfig baseline = raptee_config;
  baseline.trusted_fraction = 0.0;
  baseline.poisoned_extra_fraction = 0.0;
  baseline.eviction = core::EvictionSpec::none();
  baseline.trusted_overlay = false;
  baseline.run_identification = false;
  return baseline;
}

ComparisonResult finalize_comparison(RepeatedResult raptee, RepeatedResult baseline) {
  ComparisonResult cmp;
  cmp.raptee = std::move(raptee);
  cmp.baseline = std::move(baseline);

  const double base_all = cmp.baseline.pollution.mean();
  if (base_all > 0.0) {
    cmp.resilience_improvement_pct =
        100.0 * (base_all - cmp.raptee.pollution.mean()) / base_all;
  }
  const double base_honest = cmp.baseline.pollution_honest.mean();
  if (base_honest > 0.0) {
    cmp.resilience_improvement_honest_pct =
        100.0 * (base_honest - cmp.raptee.pollution_honest.mean()) / base_honest;
  }
  if (cmp.raptee.discovery_reached > 0 && cmp.baseline.discovery_reached > 0 &&
      cmp.baseline.discovery.mean() > 0.0) {
    cmp.discovery_overhead_pct =
        100.0 * (cmp.raptee.discovery.mean() / cmp.baseline.discovery.mean() - 1.0);
  }
  if (cmp.raptee.stability_reached > 0 && cmp.baseline.stability_reached > 0 &&
      cmp.baseline.stability.mean() > 0.0) {
    cmp.stability_overhead_pct =
        100.0 * (cmp.raptee.stability.mean() / cmp.baseline.stability.mean() - 1.0);
  }
  return cmp;
}

ComparisonResult run_comparison(const ExperimentConfig& raptee_config, std::size_t reps,
                                std::size_t threads) {
  return finalize_comparison(run_repeated(raptee_config, reps, threads),
                             run_repeated(comparison_baseline(raptee_config), reps, threads));
}

}  // namespace raptee::metrics
