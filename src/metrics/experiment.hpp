// Experiment harness: one function from configuration to the paper's
// metrics, plus repetition/aggregation and baseline comparison — the
// machinery every bench binary (Figs. 3, 5–13) is built on.
//
// A single experiment:
//   1. builds the population — h honest, t trusted, f Byzantine (optionally
//      + injected poisoned-trusted) with attested enclaves and wired keys;
//   2. bootstraps every correct node with a uniform sample of the global
//      membership (poisoned-trusted nodes get all-Byzantine views);
//   3. runs `rounds` synchronous rounds under the balanced attack;
//   4. reports steady-state pollution, discovery round, stability round,
//      adaptive-eviction telemetry, identification-attack scores and
//      enclave cycle totals.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "adversary/attack.hpp"
#include "adversary/identification.hpp"
#include "brahms/auth.hpp"
#include "brahms/params.hpp"
#include "core/eviction.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "evt/config.hpp"

namespace raptee::scenario {
class IScenarioObserver;
}  // namespace raptee::scenario

namespace raptee::metrics {

/// Declarative churn for an experiment: every round in [from, until) a
/// `rate_per_round` fraction of the correct population crashes (Byzantine
/// nodes never churn — the adversary keeps its members online), optionally
/// rejoining `downtime` rounds later with a fresh bootstrap view. Each
/// correct node crashes at most once per run (sim::ChurnSchedule draws
/// victims from a shuffled pool without replacement), so churn tapers off
/// once rate_per_round × window exceeds the correct population. The
/// schedule is drawn from a seed-derived stream, so churned runs stay
/// bit-for-bit reproducible.
struct ChurnSpec {
  bool enabled = false;
  Round from = 0;
  Round until = 0;             ///< exclusive; 0 = run length
  double rate_per_round = 0.01;
  Round downtime = 5;
  bool rejoin = true;

  [[nodiscard]] static ChurnSpec none() { return {}; }
  [[nodiscard]] static ChurnSpec steady(double rate_per_round, Round downtime = 5,
                                        bool rejoin = true) {
    ChurnSpec s;
    s.enabled = true;
    s.rate_per_round = rate_per_round;
    s.downtime = downtime;
    s.rejoin = rejoin;
    return s;
  }
  void validate() const;
};

struct ExperimentConfig {
  std::size_t n = 600;               ///< base population (excludes injected nodes)
  double byzantine_fraction = 0.10;  ///< f
  double trusted_fraction = 0.0;     ///< t
  double poisoned_extra_fraction = 0.0;  ///< injected poisoned-trusted, as fraction of n

  brahms::Params brahms{};                      ///< l1/l2/α/β/γ
  /// The adversary: a registered strategy + parameters. The default
  /// (`balanced`) reproduces the pre-registry hardcoded attack bit for bit.
  adversary::AttackSpec attack{};
  core::EvictionSpec eviction = core::EvictionSpec::none();
  ChurnSpec churn = ChurnSpec::none();
  bool trusted_overlay = false;                 ///< D1 extension
  brahms::AuthMode auth_mode = brahms::AuthMode::kFingerprint;

  Round rounds = 100;
  std::uint64_t seed = 42;

  bool run_identification = false;  ///< attach the §VI-A attack
  double identification_threshold = 0.10;

  /// D4 stability estimator: per-node pollution smoothing window (rounds).
  std::size_t stability_window = 10;

  bool use_cycle_model = true;   ///< charge Table-I overheads to enclaves
  bool wire_roundtrip = false;   ///< encode/decode every leg
  bool encrypt_links = false;    ///< AES-CTR+HMAC every leg
  double message_loss = 0.0;
  /// Per-leg probability that an on-path adversary flips one bit of the
  /// serialized leg (implies the byte round-trip). With encrypt_links the
  /// AEAD rejects every flip; without it only what fails typed decoding is
  /// dropped — the rest models undetected corruption reaching the protocol.
  double tamper_rate = 0.0;
  /// Persistent per-pair link sessions (sim::EngineConfig::link_sessions);
  /// false = the per-exchange-derivation baseline (bench ablation only —
  /// observable results are identical either way).
  bool link_sessions = true;

  /// Engine-internal parallelism (sim::EngineConfig::threads): 1 = legacy
  /// sequential rounds (the default), 0 = shard over hardware concurrency,
  /// n > 1 = shard over n workers. Shards every round phase except the
  /// serial exchange legs. Opting in (any value != 1) switches push-loss
  /// draws to splittable per-node random streams, so lossy sharded runs
  /// differ from legacy runs — but are bit-identical across worker counts
  /// and machines; every other phase (and any lossless run) is bit-
  /// identical to the sequential path too. ScenarioSpec::threads() sets
  /// this.
  std::size_t engine_threads = 1;

  /// Event-driven time (sim::EngineConfig::event, src/evt): opt-in message
  /// latency/jitter, region partitions and a virtual clock. Off = round
  /// mode, the bit-exact baseline. ScenarioSpec's event setters fill this.
  evt::EventConfig event;

  [[nodiscard]] std::size_t byzantine_count() const;
  [[nodiscard]] std::size_t trusted_count() const;
  [[nodiscard]] std::size_t poisoned_count() const;
  void validate() const;
};

/// Attack-side observables of one run. `engaged` is false for the default
/// balanced attack with no extra knobs — results::to_json then omits the
/// whole block, keeping default-run documents byte-identical to the
/// pre-AttackSpec schema.
struct AttackOutcome {
  bool engaged = false;
  std::string strategy = "balanced";   ///< resolved strategy name
  std::size_t victims = 0;             ///< size of the targeted set
  double steady_victim_pollution = 0.0;
  std::vector<double> victim_pollution_series;  ///< mean victim pollution per round
  std::optional<Round> rounds_to_isolation;     ///< all victims eclipsed
  std::uint64_t legs_suppressed = 0;   ///< pulls the adversary refused to answer
  std::uint64_t rounds_active = 0;     ///< rounds the strategy was on duty
};

/// Event-mode observables of one run. `engaged` is false when event mode is
/// off — results::to_json then omits the whole block, keeping round-mode
/// documents byte-identical to the pre-evt schema.
struct EvtOutcome {
  bool engaged = false;
  std::uint64_t virtual_ms = 0;       ///< total simulated virtual time
  std::uint64_t legs_late = 0;        ///< messages past their round deadline
  std::uint64_t partition_drops = 0;  ///< messages cut by an active partition
  /// Wall-clock-realistic dissemination figure: virtual time at which every
  /// correct node had discovered the full membership (the DiscoveryTracker
  /// round, denominated in the configured round interval). 0 when discovery
  /// was not reached within the run.
  std::uint64_t dissemination_time_ms = 0;
};

struct ExperimentResult {
  double steady_pollution = 0.0;  ///< fraction of Byzantine IDs, steady state
  double steady_pollution_honest = 0.0;   ///< honest untrusted nodes only
  double steady_pollution_trusted = 0.0;  ///< trusted nodes only
  std::optional<Round> discovery_round;
  std::optional<Round> stability_round;
  std::vector<double> pollution_series;
  std::vector<double> pollution_series_trusted;  ///< trusted (incl. poisoned) only
  std::vector<double> min_knowledge_series;
  double mean_eviction_rate = 0.0;
  double mean_trusted_ratio = 0.0;
  adversary::IdentificationResult ident_best;   ///< best F1 over all rounds
  adversary::IdentificationResult ident_final;  ///< at the last round
  Cycles enclave_cycles_total = 0;              ///< summed over trusted nodes
  std::uint64_t swaps_completed = 0;
  std::uint64_t pulls_completed = 0;
  std::uint64_t legs_dropped = 0;    ///< loss + corruption, all legs
  std::uint64_t legs_tampered = 0;   ///< on-path flips (tamper_rate draws)
  std::uint64_t legs_corrupted = 0;  ///< legs the receiver rejected
  std::uint64_t wire_bytes = 0;      ///< serialized bytes put on the wire
  AttackOutcome attack;              ///< adversary-side observables
  EvtOutcome evt;                    ///< event-mode observables
};

/// Runs one experiment. `observer`, when given, receives one RoundSnapshot
/// per round plus run-boundary hooks (see scenario/observer.hpp); the
/// callbacks never change the simulation outcome.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config,
                                              scenario::IScenarioObserver* observer = nullptr);

/// Mean/σ aggregation over `reps` runs with decorrelated seeds, executed on
/// up to `threads` worker threads (0 = hardware concurrency).
struct RepeatedResult {
  RunningStats pollution;        // fractions, all non-Byzantine nodes
  RunningStats pollution_honest; // fractions, honest untrusted nodes only
  RunningStats pollution_trusted;
  RunningStats discovery;       // rounds (only runs that reached it)
  RunningStats stability;       // rounds (only runs that reached it)
  RunningStats eviction_rate;
  RunningStats trusted_ratio;
  RunningStats ident_best_precision;
  RunningStats ident_best_recall;
  RunningStats ident_best_f1;
  /// Attack-side aggregates (samples only from runs whose attack engaged
  /// the corresponding feature; all empty for default balanced runs).
  RunningStats victim_pollution;   // steady-state victim pollution, runs with victims
  RunningStats isolation_round;    // runs that reached full isolation
  RunningStats legs_suppressed;    // runs with an engaged attack
  std::size_t isolation_reached = 0;
  std::size_t attacked_runs = 0;   // runs with attack.engaged
  std::size_t runs = 0;
  std::size_t discovery_reached = 0;
  std::size_t stability_reached = 0;
};

[[nodiscard]] RepeatedResult run_repeated(ExperimentConfig config, std::size_t reps,
                                          std::size_t threads = 0);

/// RAPTEE-vs-Brahms comparison at matched f: the paper's "resilience
/// improvement" (relative drop in the Byzantine share of *honest* nodes'
/// views, §V-B) and round-overhead percentages for discovery and stability.
struct ComparisonResult {
  RepeatedResult raptee;
  RepeatedResult baseline;
  /// Relative pollution drop over all correct (non-Byzantine) nodes — the
  /// figures' "views of correct nodes" metric.
  double resilience_improvement_pct = 0.0;
  /// Same, restricted to honest untrusted nodes (§V-C prose metric).
  double resilience_improvement_honest_pct = 0.0;
  std::optional<double> discovery_overhead_pct;
  std::optional<double> stability_overhead_pct;
};

[[nodiscard]] ComparisonResult run_comparison(const ExperimentConfig& raptee_config,
                                              std::size_t reps, std::size_t threads = 0);

/// The matched-f Brahms baseline run_comparison measures against: same
/// config with the trusted population, eviction, overlay and injection
/// stripped.
[[nodiscard]] ExperimentConfig comparison_baseline(const ExperimentConfig& raptee_config);

/// Derived comparison percentages from two already-aggregated sides
/// (shared by run_comparison and the scenario Runner's fused batch path).
[[nodiscard]] ComparisonResult finalize_comparison(RepeatedResult raptee,
                                                   RepeatedResult baseline);

/// Runs a batch of experiments over an exec::ThreadPool (work-stealing,
/// one task per run), preserving order. Results are bit-identical to the
/// sequential loop for any `threads` (0 = hardware concurrency).
[[nodiscard]] std::vector<ExperimentResult> run_batch(
    const std::vector<ExperimentConfig>& configs, std::size_t threads = 0);

/// The seed-decorrelation stream used by run_repeated and every scenario
/// batch: repetition `rep` of a spec with base seed `base_seed` always runs
/// with this derived seed, so a batch cell and a standalone repetition of
/// the same spec agree bit for bit.
[[nodiscard]] std::uint64_t repetition_seed(std::uint64_t base_seed, std::size_t rep);

/// Aggregates a contiguous slice of per-run results into mean/σ form (the
/// reduction step under run_repeated and the scenario batch/grid paths).
[[nodiscard]] RepeatedResult aggregate_runs(const ExperimentResult* results,
                                            std::size_t count);

}  // namespace raptee::metrics
