#include "metrics/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace raptee::metrics {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  std::array<char, 32> buf{};
  const auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), value);
  if (ec != std::errc{}) return "null";
  return std::string(buf.data(), end);
}

namespace {

std::string quoted(std::string_view text) { return "\"" + json_escape(text) + "\""; }

}  // namespace

JsonObject& JsonObject::append(std::string_view key, std::string_view serialized) {
  if (!body_.empty()) body_ += ',';
  body_ += quoted(key);
  body_ += ':';
  body_ += serialized;
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, double value) {
  return append(key, json_number(value));
}
JsonObject& JsonObject::field(std::string_view key, std::int64_t value) {
  return append(key, std::to_string(value));
}
JsonObject& JsonObject::field(std::string_view key, std::uint64_t value) {
  return append(key, std::to_string(value));
}
JsonObject& JsonObject::field(std::string_view key, int value) {
  return append(key, std::to_string(value));
}
JsonObject& JsonObject::field(std::string_view key, unsigned value) {
  return append(key, std::to_string(value));
}
JsonObject& JsonObject::field(std::string_view key, bool value) {
  return append(key, value ? "true" : "false");
}
JsonObject& JsonObject::field(std::string_view key, std::string_view value) {
  return append(key, quoted(value));
}
JsonObject& JsonObject::field(std::string_view key, const char* value) {
  return append(key, quoted(value));
}
JsonObject& JsonObject::field(std::string_view key, const std::optional<double>& value) {
  return value ? field(key, *value) : field_null(key);
}
JsonObject& JsonObject::field_null(std::string_view key) { return append(key, "null"); }
JsonObject& JsonObject::field_raw(std::string_view key, std::string_view raw_json) {
  return append(key, raw_json);
}

JsonArray& JsonArray::append(std::string_view serialized) {
  if (!body_.empty()) body_ += ',';
  body_ += serialized;
  return *this;
}
JsonArray& JsonArray::item(double value) { return append(json_number(value)); }
JsonArray& JsonArray::item(std::string_view value) { return append(quoted(value)); }
JsonArray& JsonArray::item_raw(std::string_view raw_json) { return append(raw_json); }

std::string json_series(const std::vector<double>& values) {
  JsonArray arr;
  for (const double v : values) arr.item(v);
  return arr.str();
}

// ------------------------------------------------------------- validation
namespace {

/// Recursive-descent RFC 8259 validator over a string_view cursor.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool run() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (eof()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (eof() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
                return false;
              }
              ++pos_;
            }
            break;
          }
          default: return false;
        }
      }
    }
    return false;
  }

  bool digits() {
    std::size_t start = pos_;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return pos_ > start;
  }

  bool number() {
    consume('-');
    if (eof()) return false;
    if (peek() == '0') {
      ++pos_;
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_valid(std::string_view text) { return Validator(text).run(); }

bool write_text_file(const std::string& path, std::string_view content) {
  const std::filesystem::path fs_path(path);
  std::error_code ec;
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

}  // namespace raptee::metrics
