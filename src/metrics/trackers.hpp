// Metric trackers implementing the paper's three evaluation quantities:
//
//   * resilience       — percentage of Byzantine IDs in the views of
//                        non-Byzantine nodes (PollutionTracker);
//   * view stability   — first round at which every non-Byzantine node's
//                        view pollution is within 10 % of the population
//                        average (PollutionTracker; relative band with a
//                        1/l1 floor — design decision D4);
//   * system discovery — first round at which every non-Byzantine node has
//                        discovered ≥ 75 % of non-Byzantine IDs
//                        (DiscoveryTracker; "discovered" = the ID has
//                        appeared in the node's dynamic view — the
//                        peer-sampling service's actual product. Raw
//                        message traffic would trivially saturate in one
//                        round at any scale; view admission is the paper's
//                        round-denominated bottleneck).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/bitset.hpp"
#include "common/types.hpp"
#include "sim/engine.hpp"
#include "sim/traffic.hpp"

namespace raptee::metrics {

/// Scans non-Byzantine views at every round end.
///
/// Stability (D4): a single view snapshot of l1 entries carries binomial
/// noise ~ sqrt(p(1-p)/l1), which at small l1 dwarfs the 10 % band — so
/// each node's "proportion of Byzantine IDs" is estimated by a rolling mean
/// of its last `smoothing_window` snapshots, and stability is the first
/// round (>= window) at which every node's estimate lies within
/// max(band·avg, 1/l1) of the population average.
class PollutionTracker final : public sim::ITrafficListener {
 public:
  /// `is_byzantine_id` classifies view entries; `view_size` sets the D4
  /// stability floor; `stability_band` is the paper's 10 %.
  PollutionTracker(std::function<bool(NodeId)> is_byzantine_id, std::size_t view_size,
                   double stability_band = 0.10, std::size_t smoothing_window = 10);

  void on_round_end(Round round, sim::Engine& engine) override;

  /// Average (over non-Byzantine nodes) fraction of Byzantine view entries,
  /// per round.
  [[nodiscard]] const std::vector<double>& pollution_series() const { return series_; }
  /// Same average restricted to honest untrusted nodes (the paper's
  /// "views of honest nodes") and to trusted nodes. The difference is the
  /// §VI-A trusted/untrusted view-composition gap.
  [[nodiscard]] const std::vector<double>& honest_series() const { return honest_series_; }
  [[nodiscard]] const std::vector<double>& trusted_series() const {
    return trusted_series_;
  }
  [[nodiscard]] double steady_state_honest(std::size_t window = 10) const;
  [[nodiscard]] double steady_state_trusted(std::size_t window = 10) const;
  /// Per-round maximum absolute deviation from the round average.
  [[nodiscard]] const std::vector<double>& deviation_series() const { return max_dev_; }

  /// First round satisfying the stability predicate.
  [[nodiscard]] std::optional<Round> stability_round() const { return stability_round_; }

  /// Steady-state pollution: mean of the last `window` rounds (fraction).
  [[nodiscard]] double steady_state_pollution(std::size_t window = 10) const;

  /// Pollution of each non-Byzantine node at the last scanned round
  /// (fractions, engine order).
  [[nodiscard]] const std::vector<double>& last_per_node() const { return last_per_node_; }

 private:
  std::function<bool(NodeId)> is_byzantine_id_;
  double floor_;
  double band_;
  std::size_t window_;
  std::vector<double> series_;
  std::vector<double> honest_series_;
  std::vector<double> trusted_series_;
  std::vector<double> max_dev_;
  std::vector<double> last_per_node_;
  /// Rolling history per node id: history_[id] holds up to `window_` recent
  /// pollution snapshots (ring buffer) and their running sum.
  struct NodeHistory {
    std::vector<double> ring;
    std::size_t next = 0;
    std::size_t filled = 0;
    double sum = 0.0;
  };
  std::vector<NodeHistory> history_;
  std::vector<double> smoothed_scratch_;  // per-round; capacity persists
  std::vector<double> smoothed_avg_history_;
  std::optional<Round> stability_round_;
};

/// Accumulates "knowledge": which non-Byzantine IDs have ever been admitted
/// to each non-Byzantine node's dynamic view.
class DiscoveryTracker final : public sim::ITrafficListener {
 public:
  /// `correct_ids` — the non-Byzantine population (the 75 % denominator);
  /// observers are the same set. `threshold` is the paper's 0.75.
  DiscoveryTracker(std::vector<NodeId> correct_ids, double threshold = 0.75);

  /// Seeds each observer's knowledge with its bootstrap view. Call once,
  /// after Engine::bootstrap_*, before the first round.
  void prime(sim::Engine& engine);

  void on_round_end(Round round, sim::Engine& engine) override;

  [[nodiscard]] std::optional<Round> discovery_round() const { return discovery_round_; }
  /// Minimum (over observers) fraction of correct IDs discovered, per round.
  [[nodiscard]] const std::vector<double>& min_knowledge_series() const {
    return min_knowledge_;
  }

 private:
  void learn_view(NodeId observer, std::span<const NodeId> view);

  double threshold_;
  /// Dense rank of each correct id (index into bitsets); kInvalid for others.
  std::vector<std::uint32_t> rank_;
  std::vector<NodeId> correct_ids_;
  std::vector<DynamicBitset> knowledge_;  // one per correct node (observer)
  std::vector<double> min_knowledge_;
  std::optional<Round> discovery_round_;
};

/// Victim-centric telemetry for targeted (eclipse) attacks: the mean
/// Byzantine share of the victims' views per round, and the first round at
/// which every alive victim is isolated — its view pollution at or above
/// `isolation_threshold` (full eclipse success; Brahms' history sample
/// keeps a γ·l1 slice the adversary cannot reach, so thresholds are
/// denominated below 1.0).
class VictimTracker final : public sim::ITrafficListener {
 public:
  VictimTracker(std::function<bool(NodeId)> is_byzantine_id,
                std::vector<NodeId> victims, double isolation_threshold);

  void on_round_end(Round round, sim::Engine& engine) override;

  /// Mean victim view pollution per round; a round with no alive victim
  /// appends nothing (the snapshot then reports 0).
  [[nodiscard]] const std::vector<double>& pollution_series() const { return series_; }
  /// First round every alive victim was isolated.
  [[nodiscard]] std::optional<Round> isolation_round() const { return isolation_round_; }
  /// Mean of the last `window` series entries (fraction).
  [[nodiscard]] double steady_state_pollution(std::size_t window = 10) const;
  [[nodiscard]] const std::vector<NodeId>& victims() const { return victims_; }

 private:
  std::function<bool(NodeId)> is_byzantine_id_;
  std::vector<NodeId> victims_;
  double isolation_threshold_;
  std::vector<double> series_;
  std::optional<Round> isolation_round_;
};

/// Average applied eviction rate and trusted-exchange ratio across trusted
/// nodes, per round (diagnostics for the adaptive policy).
class TrustedTelemetryTracker final : public sim::ITrafficListener {
 public:
  explicit TrustedTelemetryTracker(std::vector<NodeId> trusted_ids);

  void on_round_end(Round round, sim::Engine& engine) override;

  [[nodiscard]] const std::vector<double>& eviction_rate_series() const {
    return eviction_rates_;
  }
  [[nodiscard]] const std::vector<double>& trusted_ratio_series() const {
    return trusted_ratios_;
  }
  [[nodiscard]] double mean_eviction_rate() const;
  [[nodiscard]] double mean_trusted_ratio() const;

 private:
  std::vector<NodeId> trusted_ids_;
  std::vector<double> eviction_rates_;
  std::vector<double> trusted_ratios_;
};

}  // namespace raptee::metrics
