#include "metrics/report.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/assert.hpp"

namespace raptee::metrics {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  RAPTEE_REQUIRE(cells.size() == headers_.size(),
                 "row width " << cells.size() << " != header width " << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    oss << '\n';
  };
  emit_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += std::string(widths[c] + 2, '-');
  oss << rule << '\n';
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

CsvWriter::CsvWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  RAPTEE_REQUIRE(cells.size() == headers_.size(), "csv row width mismatch");
  rows_.push_back(std::move(cells));
}

bool CsvWriter::write(const std::string& path) const {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
  std::ofstream out(path);
  if (!out) return false;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return static_cast<bool>(out);
}

}  // namespace raptee::metrics
