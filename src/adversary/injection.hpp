// View-poisoned trusted-node injection (paper §VI-B).
//
// The adversary purchases genuine SGX devices, boots the *authentic*
// RAPTEE enclave on them inside a Byzantine-only network — so their initial
// views contain exclusively Byzantine IDs — and then releases them into the
// real system, hoping they spread faulty IDs to real trusted nodes over
// trusted exchanges.
//
// Crucially, these nodes run honest code (the enclave guarantees it): the
// adversary controls only their bootstrap input. They are therefore
// constructed via the regular core::NodeFactory as NodeKind::kPoisonedTrusted
// with a poisoned_bootstrap() view.
#pragma once

#include <vector>

#include "adversary/byzantine.hpp"
#include "common/types.hpp"

namespace raptee::adversary {

/// The bootstrap view a trusted device ends up with after the adversary
/// quarantines it in a Byzantine-only network: `view_size` faulty IDs.
[[nodiscard]] inline std::vector<NodeId> poisoned_bootstrap(Coordinator& coordinator,
                                                            std::size_t view_size) {
  return coordinator.faulty_view(view_size);
}

}  // namespace raptee::adversary
