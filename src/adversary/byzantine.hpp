// The adversary: a coordinator with global knowledge driving every
// Byzantine node (paper §III-B).
//
// The Coordinator owns the shared machinery — the sorted member list, the
// current victim (correct) population, the optional targeted-victim subset,
// the global-knowledge RNG and the round-scoped flat push schedule — and
// delegates every behavioural decision to a pluggable adversary::IStrategy
// (strategy.hpp). The default strategy is `balanced`, the Brahms-optimal
// attack the paper assumes:
//   * balanced pushes — the adversary's total push budget (rate-limited to
//     α·l1 per member per round, the "limited pushes" assumption enforced
//     system-wide) is spread evenly over all correct nodes, each push
//     advertising a Byzantine ID;
//   * poisoned pull answers — every pull request is answered with a view
//     of exclusively Byzantine IDs;
//   * camouflaged pulls — Byzantine nodes issue pull requests like honest
//     ones, both to blend in and to harvest the pull-answer observations
//     that feed the §VI-A identification attack.
// Its observable results are bit-identical to the pre-strategy hardcoded
// adversary (asserted by scenario_test_attack_determinism).
//
// AttackConfig::targeted_victims focuses the push budget on a victim
// subset (the eclipse attempt Brahms' history sampling defends against);
// the eclipse strategy populates it from AttackSpec::victim_fraction.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "crypto/key.hpp"

#include "adversary/strategy.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/node.hpp"

namespace raptee::adversary {

/// Resolved, mechanism-level knobs (strategy-independent). AttackSpec is
/// the declarative front door; experiments map it onto this struct when
/// building the Coordinator.
struct AttackConfig {
  std::size_t push_budget_per_member = 0;  ///< pushes per member per round (α·l1)
  std::size_t pull_fanout = 0;             ///< pull requests per member (β·l1)
  std::size_t advertised_view_size = 0;    ///< size of poisoned pull answers (l1)
  /// When non-empty, the push budget is focused on these victims only.
  std::vector<NodeId> targeted_victims;
  /// Attach a bogus swap offer to every confirm (probes the swap defence).
  bool attach_bogus_swap_offer = false;
};

class Coordinator {
 public:
  /// Balanced-strategy coordinator (the historical constructor; behaviour
  /// and random streams are unchanged).
  Coordinator(std::vector<NodeId> members, std::vector<NodeId> victims,
              AttackConfig config, std::uint64_t seed);
  /// Strategy-driven coordinator. `strategy` must be non-null.
  Coordinator(std::vector<NodeId> members, std::vector<NodeId> victims,
              AttackConfig config, std::uint64_t seed,
              std::unique_ptr<IStrategy> strategy);

  /// Recomputes this round's push schedule via the strategy. Idempotent per
  /// round: every member calls it, the first call does the work.
  void begin_round(Round r);

  /// The push targets assigned to `member` this round.
  [[nodiscard]] std::vector<NodeId> push_allocation(NodeId member) const;
  /// Allocation-free view of the same slice (valid until the next
  /// begin_round); the hot-path form used by ByzantineNode.
  [[nodiscard]] std::span<const NodeId> push_slice(NodeId member) const;
  /// Scratch-filling variant: clears and fills `out` (capacity persists
  /// across rounds), mirroring the wire-path zero-allocation conventions.
  void push_allocation(NodeId member, std::vector<NodeId>& out) const;

  /// Pull targets for `member` this round (strategy policy; balanced:
  /// uniform over victims).
  [[nodiscard]] std::vector<NodeId> pull_targets(NodeId member);
  /// Scratch-filling form (same draws): clears and fills `out`. Draws on
  /// the shared coordinator rng — callers serialize (the engine runs
  /// Byzantine nodes on the coordinating thread in every sharded phase).
  void pull_targets(NodeId member, std::vector<NodeId>& out);

  /// Whether members answer pull requests at all this round (the omission
  /// strategy refuses; the engine counts suppressed legs).
  [[nodiscard]] bool answers_pulls() const;
  /// The view a member advertises in a pull answer (strategy policy;
  /// balanced: k Byzantine IDs). Clears and fills `out`.
  void answer_view(std::size_t k, std::vector<NodeId>& out);
  /// Whether confirms carry a forged swap offer this round.
  [[nodiscard]] bool attach_bogus_swap() const;

  /// A poisoned view: `k` Byzantine IDs (distinct while possible).
  [[nodiscard]] std::vector<NodeId> faulty_view(std::size_t k);
  /// Scratch-filling form of faulty_view (same draws).
  void faulty_view_into(std::size_t k, std::vector<NodeId>& out);
  [[nodiscard]] NodeId faulty_id();

  [[nodiscard]] bool is_member(NodeId id) const;
  [[nodiscard]] const std::vector<NodeId>& members() const { return members_; }
  [[nodiscard]] const std::vector<NodeId>& victims() const { return victims_; }
  [[nodiscard]] const std::vector<NodeId>& targeted() const {
    return config_.targeted_victims;
  }
  [[nodiscard]] const AttackConfig& config() const { return config_; }
  [[nodiscard]] const IStrategy& strategy() const { return *strategy_; }

  /// Whether the strategy is on duty in the current round (true before the
  /// first begin_round so construction-time queries see the attack armed).
  [[nodiscard]] bool active() const { return active_; }
  /// Rounds the strategy was on duty so far (oscillating telemetry).
  [[nodiscard]] std::uint64_t rounds_active() const { return rounds_active_; }

  /// The global-knowledge random stream strategies must draw from.
  [[nodiscard]] Rng& rng() { return rng_; }
  /// Round-scoped scratches for strategies building shuffled victim pools
  /// (capacity persists across rounds; background_scratch is a second,
  /// independently-lived pool for schedules composed of two parts).
  [[nodiscard]] std::vector<NodeId>& pool_scratch() { return pool_scratch_; }
  [[nodiscard]] std::vector<NodeId>& background_scratch() { return background_scratch_; }

  /// Replaces the victim set (population changes under churn).
  void set_victims(std::vector<NodeId> victims);
  /// Replaces the targeted subset (a victim died / rejoined mid-eclipse).
  void set_targeted(std::vector<NodeId> victims);

 private:
  std::vector<NodeId> members_;  // sorted; a member's slice index is its rank
  std::vector<NodeId> victims_;
  AttackConfig config_;
  Rng rng_;
  std::unique_ptr<IStrategy> strategy_;
  /// Flat schedule: push j of the round goes to schedule_[j]; member i owns
  /// slice [i·budget, (i+1)·budget).
  std::vector<NodeId> schedule_;
  std::vector<NodeId> pool_scratch_;
  std::vector<NodeId> background_scratch_;
  std::vector<std::size_t> index_scratch_;  // faulty_view_into sampling
  std::optional<Round> prepared_round_;
  bool active_ = true;
  std::uint64_t rounds_active_ = 0;
};

/// One adversary-controlled protocol participant. All intelligence lives in
/// the Coordinator; the node relays.
class ByzantineNode final : public sim::INode {
 public:
  ByzantineNode(NodeId self, std::shared_ptr<Coordinator> coordinator,
                std::uint64_t seed);

  [[nodiscard]] NodeId id() const override { return self_; }
  void bootstrap(const std::vector<NodeId>& initial_peers) override;
  void begin_round(Round r) override;
  [[nodiscard]] std::vector<NodeId> push_targets() override;
  void push_targets(std::vector<NodeId>& out) override;
  [[nodiscard]] wire::PushMessage make_push() override;
  void on_push(const wire::PushMessage& push) override;
  [[nodiscard]] std::vector<NodeId> pull_targets() override;
  void pull_targets(std::vector<NodeId>& out) override;
  [[nodiscard]] wire::PullRequest open_pull(NodeId target) override;
  [[nodiscard]] bool answers_pull(NodeId requester) override;
  [[nodiscard]] wire::PullReply answer_pull(const wire::PullRequest& request) override;
  [[nodiscard]] wire::AuthConfirm process_pull_reply(const wire::PullReply& reply) override;
  [[nodiscard]] std::optional<wire::SwapReply> process_confirm(
      const wire::AuthConfirm& confirm) override;
  void process_swap_reply(const wire::SwapReply& reply) override;
  void end_round(Round r) override;
  [[nodiscard]] std::vector<NodeId> current_view() const override;
  /// Byzantine nodes opt out of the engine's SoA view slab: their "view"
  /// is the whole member list (synthetic, unbounded by l1) and is excluded
  /// from every honest-side metric.
  [[nodiscard]] std::size_t view_capacity() const override { return 0; }
  std::size_t copy_view(NodeId*, std::size_t) const override { return 0; }

 private:
  NodeId self_;
  std::shared_ptr<Coordinator> coordinator_;
  crypto::Drbg drbg_;  // random bytes for camouflage auth fields
  Rng rng_;
};

}  // namespace raptee::adversary
