// The adversary: a coordinator with global knowledge driving every
// Byzantine node (paper §III-B).
//
// Attack behaviour (the Brahms-optimal strategy the paper assumes):
//   * balanced pushes — the adversary's total push budget (rate-limited to
//     α·l1 per member per round, the "limited pushes" assumption enforced
//     system-wide) is spread evenly over all correct nodes, each push
//     advertising a Byzantine ID;
//   * poisoned pull answers — every pull request is answered with a view
//     of exclusively Byzantine IDs;
//   * camouflaged pulls — Byzantine nodes issue pull requests like honest
//     ones, both to blend in and to harvest the pull-answer observations
//     that feed the §VI-A identification attack.
//
// A targeted mode focuses the entire push budget on a victim subset
// (the eclipse attempt Brahms' history sampling defends against).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/key.hpp"

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/node.hpp"

namespace raptee::adversary {

struct AttackConfig {
  std::size_t push_budget_per_member = 0;  ///< pushes per member per round (α·l1)
  std::size_t pull_fanout = 0;             ///< pull requests per member (β·l1)
  std::size_t advertised_view_size = 0;    ///< size of poisoned pull answers (l1)
  /// When non-empty, the push budget is focused on these victims only.
  std::vector<NodeId> targeted_victims;
  /// Attach a bogus swap offer to every confirm (probes the swap defence).
  bool attach_bogus_swap_offer = false;
};

class Coordinator {
 public:
  Coordinator(std::vector<NodeId> members, std::vector<NodeId> victims,
              AttackConfig config, std::uint64_t seed);

  /// Recomputes this round's balanced push schedule. Idempotent per round:
  /// every member calls it, the first call does the work.
  void begin_round(Round r);

  /// The push targets assigned to `member` this round.
  [[nodiscard]] std::vector<NodeId> push_allocation(NodeId member) const;
  /// Pull targets for `member` (uniform over victims).
  [[nodiscard]] std::vector<NodeId> pull_targets(NodeId member);

  /// A poisoned view: `k` Byzantine IDs (distinct while possible).
  [[nodiscard]] std::vector<NodeId> faulty_view(std::size_t k);
  [[nodiscard]] NodeId faulty_id();

  [[nodiscard]] bool is_member(NodeId id) const;
  [[nodiscard]] const std::vector<NodeId>& members() const { return members_; }
  [[nodiscard]] const AttackConfig& config() const { return config_; }

  /// Replaces the victim set (population changes under churn).
  void set_victims(std::vector<NodeId> victims);

 private:
  std::vector<NodeId> members_;  // sorted; a member's slice index is its rank
  std::vector<NodeId> victims_;
  AttackConfig config_;
  Rng rng_;
  /// Flat schedule: push j of the round goes to schedule_[j]; member i owns
  /// slice [i·budget, (i+1)·budget).
  std::vector<NodeId> schedule_;
  std::optional<Round> prepared_round_;
};

/// One adversary-controlled protocol participant. All intelligence lives in
/// the Coordinator; the node relays.
class ByzantineNode final : public sim::INode {
 public:
  ByzantineNode(NodeId self, std::shared_ptr<Coordinator> coordinator,
                std::uint64_t seed);

  [[nodiscard]] NodeId id() const override { return self_; }
  void bootstrap(const std::vector<NodeId>& initial_peers) override;
  void begin_round(Round r) override;
  [[nodiscard]] std::vector<NodeId> push_targets() override;
  [[nodiscard]] wire::PushMessage make_push() override;
  void on_push(const wire::PushMessage& push) override;
  [[nodiscard]] std::vector<NodeId> pull_targets() override;
  [[nodiscard]] wire::PullRequest open_pull(NodeId target) override;
  [[nodiscard]] wire::PullReply answer_pull(const wire::PullRequest& request) override;
  [[nodiscard]] wire::AuthConfirm process_pull_reply(const wire::PullReply& reply) override;
  [[nodiscard]] std::optional<wire::SwapReply> process_confirm(
      const wire::AuthConfirm& confirm) override;
  void process_swap_reply(const wire::SwapReply& reply) override;
  void end_round(Round r) override;
  [[nodiscard]] std::vector<NodeId> current_view() const override;

 private:
  NodeId self_;
  std::shared_ptr<Coordinator> coordinator_;
  crypto::Drbg drbg_;  // random bytes for camouflage auth fields
  Rng rng_;
};

}  // namespace raptee::adversary
