// IStrategy: the adversary's pluggable brain, factored out of the formerly
// monolithic Coordinator (byzantine.hpp). The Coordinator keeps the shared
// machinery — member/victim bookkeeping, the round-scoped push schedule,
// the global-knowledge RNG — and delegates every behavioural decision to a
// strategy:
//
//   * push-allocation policy   (plan_pushes: fills the round's flat schedule)
//   * pull-target policy       (plan_pulls: where members send camouflage pulls)
//   * pull-answer policy       (answers_pulls + answer_view: refuse, poison
//                               or camouflage)
//   * swap policy              (attach_bogus_swap)
//   * per-round activation     (active: duty cycles / adaptive dormancy)
//
// Strategies are constructed from an AttackSpec by the StrategyRegistry, so
// experiments select an adversary by name through the public scenario API
// (ScenarioSpec::attack). The built-in catalog is registered on first
// registry access; tests and downstream code may add their own.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "adversary/attack.hpp"
#include "common/types.hpp"

namespace raptee::adversary {

class Coordinator;

/// Behavioural policy driving a Coordinator. Hooks receive the Coordinator
/// for shared state (members(), victims(), targeted(), config(), rng(),
/// faulty_view_into()); all randomness must flow through coord.rng() so a
/// (seed, spec) pair reproduces the attack bit-for-bit.
class IStrategy {
 public:
  virtual ~IStrategy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Whether the attack machinery runs this round (oscillating duty cycle).
  /// Dormant rounds push nothing and answer pulls with camouflage views.
  [[nodiscard]] virtual bool active(Round r) const {
    (void)r;
    return true;
  }

  /// Fills the round's flat push schedule: push j goes to schedule[j],
  /// member of rank i owns slice [i·budget, (i+1)·budget). A schedule
  /// shorter than members × budget wastes the tail budget (throttling).
  virtual void plan_pushes(Round r, Coordinator& coord,
                           std::vector<NodeId>& schedule) = 0;

  /// Pull targets for one member this round. Default: pull_fanout uniform
  /// draws over the correct population (camouflage + §VI-A harvesting).
  virtual void plan_pulls(Coordinator& coord, std::vector<NodeId>& out);

  /// False = members refuse to answer pull requests (omission attacker);
  /// the engine counts each refusal as a suppressed leg.
  [[nodiscard]] virtual bool answers_pulls(Round r) const {
    (void)r;
    return true;
  }

  /// The view advertised in pull answers. Default: k Byzantine IDs
  /// (distinct while possible) — the poisoned answer of the balanced attack.
  virtual void answer_view(Round r, Coordinator& coord, std::size_t k,
                           std::vector<NodeId>& out);

  /// Whether AuthConfirms carry a forged swap offer this round. Default:
  /// the AttackConfig/AttackSpec flag.
  [[nodiscard]] virtual bool attach_bogus_swap(Round r, const Coordinator& coord) const;

  /// Whether this strategy attacks a victim subset — the experiment then
  /// resolves AttackSpec::victim_fraction/victim_count into a concrete
  /// targeted set (and attaches victim-centric metrics).
  [[nodiscard]] virtual bool wants_victims() const { return false; }

  /// Extra per-link latency (µs) injected on top of the event-mode latency
  /// model — the delay-assisted attacker's lever (delay_eclipse slows
  /// honest→victim links so refresh arrives past the round deadline).
  /// Ignored in round mode. Must be a pure function of its arguments so
  /// event runs stay bit-identical across worker counts.
  [[nodiscard]] virtual std::uint64_t extra_delay_us(Round r, NodeId from, NodeId to,
                                                     const Coordinator& coord) const {
    (void)r;
    (void)from;
    (void)to;
    (void)coord;
    return 0;
  }
};

/// Name → factory registry resolving AttackSpecs into strategies. Process
/// global; the built-in catalog (balanced, eclipse, oscillating, omission,
/// bogus_swap) is registered on first access. Thread-safe.
class StrategyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<IStrategy>(const AttackSpec&)>;

  [[nodiscard]] static StrategyRegistry& instance();

  /// Registers a strategy; throws std::invalid_argument on a duplicate or
  /// empty name.
  void add(std::string name, std::string summary, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Builds the strategy for `spec.strategy`; throws std::invalid_argument
  /// for an unknown name (listing the registered ones).
  [[nodiscard]] std::unique_ptr<IStrategy> make(const AttackSpec& spec) const;

  struct Entry {
    std::string name;
    std::string summary;
  };
  /// All registered strategies, sorted by name.
  [[nodiscard]] std::vector<Entry> entries() const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  StrategyRegistry();

  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Convenience: StrategyRegistry::instance().make(spec).
[[nodiscard]] std::unique_ptr<IStrategy> make_strategy(const AttackSpec& spec);

}  // namespace raptee::adversary
