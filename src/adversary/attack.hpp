// AttackSpec: the declarative, validated description of the adversary —
// a registered strategy name plus per-strategy parameters, playing the same
// role for the attack axis that core::EvictionSpec plays for the defence
// axis. The spec is pure data: resolution to behaviour happens through the
// adversary::StrategyRegistry (strategy.hpp) when an experiment builds its
// Coordinator.
//
// Built-in strategies (see strategy.cpp for the behaviours):
//   balanced     — the Brahms-optimal balanced attack the paper assumes
//                  (push budget spread evenly, poisoned pull answers,
//                  camouflaged pulls). The default; observable results are
//                  bit-identical to the pre-registry hardcoded adversary.
//   eclipse      — the targeted attack BASALT evaluates against: the whole
//                  push budget focuses on a victim subset (capped per
//                  victim to stay under Brahms' flood detection) and pulls
//                  harvest the victims.
//   oscillating  — BASALT's adaptive adversary: an on/off duty cycle that
//                  attacks in bursts and camouflages as honest in between,
//                  evading window-smoothed eviction and identification.
//   omission     — a liveness attacker: sends nothing and refuses to answer
//                  pulls, burning the initiators' round slots (the engine
//                  counts the suppressed legs).
//   bogus_swap   — balanced plus a forged swap offer on every AuthConfirm,
//                  probing the trusted-swap authentication defence.
//   delay_eclipse— eclipse assisted by link delay (event-driven time only):
//                  the adversary slows honest→victim links by delay_ms so
//                  honest refresh arrives past the round deadline, leaving
//                  its own poison as the victims' freshest input. In round
//                  mode it degrades to plain eclipse.
//   partition_eclipse — eclipse concentrated in a [window_from,
//                  window_until) round window, built to exploit a network
//                  partition: capture views while the victims' region is
//                  cut off from honest refresh, camouflage before and after.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace raptee::adversary {

struct AttackSpec {
  /// Registered strategy name (StrategyRegistry); "balanced" is the
  /// paper's default adversary.
  std::string strategy = "balanced";

  /// Victim-targeting strategies (eclipse): share of the correct population
  /// under attack, used when victim_count == 0. At least one victim is
  /// drawn whenever the strategy wants victims.
  double victim_fraction = 0.05;
  /// Explicit victim count (overrides victim_fraction when > 0; clamped to
  /// the correct population).
  std::size_t victim_count = 0;
  /// Which slice of the correct population victims are drawn from:
  /// kAny (default) samples all correct nodes; kHonest only untrusted
  /// honest nodes; kTrusted only trusted nodes (the hardened targets —
  /// whether eviction saves them is exactly what bench/attack_matrix
  /// sweeps). Falls back to kAny when the requested slice is empty.
  enum class VictimKind : std::uint8_t { kAny, kHonest, kTrusted };
  VictimKind victim_kind = VictimKind::kAny;

  /// Eclipse: per-victim per-round push cap as a fraction of the α·l1 push
  /// slice. Brahms blocks a node's view update outright when more than
  /// α·l1 pushes arrive in one round, so a smart eclipse attacker throttles
  /// below the honest background rate instead of flooding.
  double push_cap_fraction = 0.5;

  /// A victim counts as isolated in a round once the Byzantine share of its
  /// view reaches this threshold (rounds_to_isolation fires at the first
  /// round every alive victim is isolated).
  double isolation_threshold = 0.75;

  /// Oscillating duty cycle: rounds r with (r mod (on+off)) < on attack;
  /// the rest camouflage.
  Round on_rounds = 8;
  Round off_rounds = 8;

  /// Attach a forged swap offer to every AuthConfirm (always true for the
  /// bogus_swap strategy; composable with any other).
  bool attach_bogus_swap_offer = false;

  /// delay_eclipse: extra one-way latency (ms) injected on every
  /// honest→victim link while the strategy is on duty. Only the event
  /// scheduler consults it (IStrategy::extra_delay_us); capped at 60 s.
  std::uint64_t delay_ms = 400;

  /// partition_eclipse: the round window [window_from, window_until) the
  /// focused attack runs in — normally aligned with a PartitionWindow so
  /// the capture happens while honest refresh is severed. until == 0 means
  /// "always on" (plain eclipse behaviour).
  Round window_from = 0;
  Round window_until = 0;

  [[nodiscard]] static AttackSpec balanced();
  [[nodiscard]] static AttackSpec eclipse(double victim_fraction = 0.05);
  [[nodiscard]] static AttackSpec oscillating(Round on_rounds = 8, Round off_rounds = 8);
  [[nodiscard]] static AttackSpec omission();
  [[nodiscard]] static AttackSpec bogus_swap();
  [[nodiscard]] static AttackSpec delay_eclipse(std::uint64_t delay_ms = 400,
                                                double victim_fraction = 0.05);
  [[nodiscard]] static AttackSpec partition_eclipse(Round window_from = 0,
                                                    Round window_until = 0,
                                                    double victim_fraction = 0.05);
  /// Defaults for a strategy name — the built-ins above, or an otherwise
  /// default spec carrying `name` (custom registered strategies).
  [[nodiscard]] static AttackSpec named(const std::string& name);

  /// Parameter ranges plus registry membership of `strategy`.
  void validate() const;
};

}  // namespace raptee::adversary
