#include "adversary/attack.hpp"

#include <cmath>

#include "adversary/strategy.hpp"
#include "common/assert.hpp"

namespace raptee::adversary {

AttackSpec AttackSpec::balanced() { return {}; }

AttackSpec AttackSpec::eclipse(double victim_fraction) {
  AttackSpec spec;
  spec.strategy = "eclipse";
  spec.victim_fraction = victim_fraction;
  return spec;
}

AttackSpec AttackSpec::oscillating(Round on_rounds, Round off_rounds) {
  AttackSpec spec;
  spec.strategy = "oscillating";
  spec.on_rounds = on_rounds;
  spec.off_rounds = off_rounds;
  return spec;
}

AttackSpec AttackSpec::omission() {
  AttackSpec spec;
  spec.strategy = "omission";
  return spec;
}

AttackSpec AttackSpec::bogus_swap() {
  AttackSpec spec;
  spec.strategy = "bogus_swap";
  spec.attach_bogus_swap_offer = true;
  return spec;
}

AttackSpec AttackSpec::delay_eclipse(std::uint64_t delay_ms, double victim_fraction) {
  AttackSpec spec;
  spec.strategy = "delay_eclipse";
  spec.delay_ms = delay_ms;
  spec.victim_fraction = victim_fraction;
  return spec;
}

AttackSpec AttackSpec::partition_eclipse(Round window_from, Round window_until,
                                         double victim_fraction) {
  AttackSpec spec;
  spec.strategy = "partition_eclipse";
  spec.window_from = window_from;
  spec.window_until = window_until;
  spec.victim_fraction = victim_fraction;
  return spec;
}

AttackSpec AttackSpec::named(const std::string& name) {
  if (name == "balanced") return balanced();
  if (name == "eclipse") return eclipse();
  if (name == "oscillating") return oscillating();
  if (name == "omission") return omission();
  if (name == "bogus_swap") return bogus_swap();
  if (name == "delay_eclipse") return delay_eclipse();
  if (name == "partition_eclipse") return partition_eclipse();
  AttackSpec spec;
  spec.strategy = name;  // custom registered strategy with default knobs
  return spec;
}

void AttackSpec::validate() const {
  RAPTEE_REQUIRE(!strategy.empty(), "attack strategy name must not be empty");
  RAPTEE_REQUIRE(StrategyRegistry::instance().contains(strategy),
                 "attack strategy '" << strategy << "' is not registered");
  RAPTEE_REQUIRE(std::isfinite(victim_fraction) && victim_fraction >= 0.0 &&
                     victim_fraction <= 1.0,
                 "victim fraction out of [0,1]: " << victim_fraction);
  RAPTEE_REQUIRE(std::isfinite(push_cap_fraction) && push_cap_fraction >= 0.0 &&
                     push_cap_fraction <= 1.0,
                 "push cap fraction out of [0,1]: " << push_cap_fraction);
  RAPTEE_REQUIRE(std::isfinite(isolation_threshold) && isolation_threshold > 0.0 &&
                     isolation_threshold <= 1.0,
                 "isolation threshold out of (0,1]: " << isolation_threshold);
  RAPTEE_REQUIRE(on_rounds >= 1, "oscillating on_rounds must be >= 1");
  RAPTEE_REQUIRE(delay_ms <= 60000, "delay_ms above 60 s: " << delay_ms);
  RAPTEE_REQUIRE(window_until == 0 || window_from < window_until,
                 "attack window [" << window_from << ", " << window_until
                                   << ") is empty");
}

}  // namespace raptee::adversary
