// Trusted-node identification attack (paper §VI-A).
//
// Every Byzantine node reports the proportion of Byzantine IDs in each pull
// answer it receives from a non-Byzantine node. The adversary aggregates
// per victim, computes the population average, and flags a node as trusted
// when its answers contain `threshold` (10 percentage points) fewer
// Byzantine IDs than average — the signature Byzantine eviction leaves on
// a trusted node's view.
//
// The attack is a sim::ITrafficListener: it sees exactly what the
// adversary sees (pull replies delivered to Byzantine nodes), nothing more.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "sim/traffic.hpp"

namespace raptee::adversary {

struct IdentificationResult {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t flagged = 0;
  std::size_t true_positives = 0;
  std::size_t trusted_total = 0;
  Round evaluated_at = 0;
};

class IdentificationAttack final : public sim::ITrafficListener {
 public:
  /// `is_byzantine` tells the attack which receivers belong to the
  /// adversary (its own members — legitimately known to it); `is_trusted`
  /// is the experiment's ground truth used ONLY to score the attack.
  IdentificationAttack(std::function<bool(NodeId)> is_byzantine,
                       std::function<bool(NodeId)> is_trusted);

  void on_pull_reply_delivered(Round round, NodeId from, NodeId to,
                               const std::vector<NodeId>& view) override;

  /// Classifies with the given threshold (paper: 0.10) over all
  /// observations accumulated so far and scores against ground truth.
  [[nodiscard]] IdentificationResult evaluate(Round now, double threshold = 0.10) const;

  /// Observation ledger size (victims with at least one observation).
  [[nodiscard]] std::size_t observed_victims() const { return ledger_.size(); }

  void reset() { ledger_.clear(); }

 private:
  struct Observation {
    double share_sum = 0.0;
    std::size_t count = 0;
  };

  std::function<bool(NodeId)> is_byzantine_;
  std::function<bool(NodeId)> is_trusted_;
  std::unordered_map<std::uint32_t, Observation> ledger_;
};

}  // namespace raptee::adversary
