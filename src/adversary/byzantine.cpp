#include "adversary/byzantine.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace raptee::adversary {

Coordinator::Coordinator(std::vector<NodeId> members, std::vector<NodeId> victims,
                         AttackConfig config, std::uint64_t seed)
    : Coordinator(std::move(members), std::move(victims), std::move(config), seed,
                  make_strategy(AttackSpec::balanced())) {}

Coordinator::Coordinator(std::vector<NodeId> members, std::vector<NodeId> victims,
                         AttackConfig config, std::uint64_t seed,
                         std::unique_ptr<IStrategy> strategy)
    : members_(std::move(members)),
      victims_(std::move(victims)),
      config_(std::move(config)),
      rng_(mix64(seed, 0x42595A43ull)),
      strategy_(std::move(strategy)) {
  RAPTEE_REQUIRE(!members_.empty(), "coordinator needs at least one member");
  RAPTEE_REQUIRE(strategy_ != nullptr, "coordinator needs a strategy");
  std::sort(members_.begin(), members_.end());
}

void Coordinator::set_victims(std::vector<NodeId> victims) {
  victims_ = std::move(victims);
}

void Coordinator::set_targeted(std::vector<NodeId> victims) {
  // Takes effect at the next round's planning; an already-built schedule
  // keeps pushing at the old set for the remainder of its round.
  config_.targeted_victims = std::move(victims);
}

void Coordinator::begin_round(Round r) {
  if (prepared_round_ && *prepared_round_ == r) return;
  prepared_round_ = r;
  active_ = strategy_->active(r);
  if (active_) ++rounds_active_;
  strategy_->plan_pushes(r, *this, schedule_);
}

std::span<const NodeId> Coordinator::push_slice(NodeId member) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), member);
  RAPTEE_ASSERT_MSG(it != members_.end() && *it == member, "unknown member");
  const auto idx = static_cast<std::size_t>(it - members_.begin());
  const std::size_t budget = config_.push_budget_per_member;
  const std::size_t from = idx * budget;
  if (from >= schedule_.size()) return {};
  const std::size_t to = std::min(from + budget, schedule_.size());
  return {schedule_.data() + from, to - from};
}

std::vector<NodeId> Coordinator::push_allocation(NodeId member) const {
  const auto slice = push_slice(member);
  return {slice.begin(), slice.end()};
}

void Coordinator::push_allocation(NodeId member, std::vector<NodeId>& out) const {
  const auto slice = push_slice(member);
  out.assign(slice.begin(), slice.end());
}

std::vector<NodeId> Coordinator::pull_targets(NodeId member) {
  std::vector<NodeId> out;
  pull_targets(member, out);
  return out;
}

void Coordinator::pull_targets(NodeId /*member*/, std::vector<NodeId>& out) {
  out.clear();
  strategy_->plan_pulls(*this, out);
}

bool Coordinator::answers_pulls() const {
  return strategy_->answers_pulls(prepared_round_.value_or(0));
}

void Coordinator::answer_view(std::size_t k, std::vector<NodeId>& out) {
  strategy_->answer_view(prepared_round_.value_or(0), *this, k, out);
}

bool Coordinator::attach_bogus_swap() const {
  return strategy_->attach_bogus_swap(prepared_round_.value_or(0), *this);
}

void Coordinator::faulty_view_into(std::size_t k, std::vector<NodeId>& out) {
  out.clear();
  if (k <= members_.size()) {
    rng_.sample_indices_into(members_.size(), k, index_scratch_);
    out.reserve(index_scratch_.size());
    for (const std::size_t i : index_scratch_) out.push_back(members_[i]);
    return;
  }
  // Fewer members than requested: fill with repeats.
  out.assign(members_.begin(), members_.end());
  while (out.size() < k) {
    out.push_back(members_[static_cast<std::size_t>(rng_.below(members_.size()))]);
  }
  rng_.shuffle(out);
}

std::vector<NodeId> Coordinator::faulty_view(std::size_t k) {
  std::vector<NodeId> out;
  faulty_view_into(k, out);
  return out;
}

NodeId Coordinator::faulty_id() {
  return members_[static_cast<std::size_t>(rng_.below(members_.size()))];
}

bool Coordinator::is_member(NodeId id) const {
  return std::binary_search(members_.begin(), members_.end(), id);
}

ByzantineNode::ByzantineNode(NodeId self, std::shared_ptr<Coordinator> coordinator,
                             std::uint64_t seed)
    : self_(self),
      coordinator_(std::move(coordinator)),
      drbg_(mix64(seed, self.value), "byzantine-camouflage"),
      rng_(mix64(seed, ~static_cast<std::uint64_t>(self.value))) {
  RAPTEE_REQUIRE(coordinator_ != nullptr, "ByzantineNode requires a coordinator");
}

void ByzantineNode::bootstrap(const std::vector<NodeId>& /*initial_peers*/) {
  // The adversary has global knowledge; bootstrap handouts are ignored.
}

void ByzantineNode::begin_round(Round r) { coordinator_->begin_round(r); }

std::vector<NodeId> ByzantineNode::push_targets() {
  return coordinator_->push_allocation(self_);
}

void ByzantineNode::push_targets(std::vector<NodeId>& out) {
  coordinator_->push_allocation(self_, out);
}

wire::PushMessage ByzantineNode::make_push() {
  // Each push advertises some Byzantine ID (the adversary maximizes the
  // spread of faulty IDs, not of any single identity).
  return wire::PushMessage{coordinator_->faulty_id()};
}

void ByzantineNode::on_push(const wire::PushMessage& /*push*/) {}

std::vector<NodeId> ByzantineNode::pull_targets() {
  return coordinator_->pull_targets(self_);
}

void ByzantineNode::pull_targets(std::vector<NodeId>& out) {
  coordinator_->pull_targets(self_, out);
}

wire::PullRequest ByzantineNode::open_pull(NodeId /*target*/) {
  wire::PullRequest request;
  request.sender = self_;
  drbg_.fill(request.challenge.r_a.data(), request.challenge.r_a.size());
  return request;
}

bool ByzantineNode::answers_pull(NodeId /*requester*/) {
  return coordinator_->answers_pulls();
}

wire::PullReply ByzantineNode::answer_pull(const wire::PullRequest& /*request*/) {
  wire::PullReply reply;
  reply.sender = self_;
  drbg_.fill(reply.auth.r_b.data(), reply.auth.r_b.size());
  drbg_.fill(reply.auth.proof_b.data(), reply.auth.proof_b.size());  // can't forge
  coordinator_->answer_view(coordinator_->config().advertised_view_size, reply.view);
  return reply;
}

wire::AuthConfirm ByzantineNode::process_pull_reply(const wire::PullReply& /*reply*/) {
  // The engine's traffic listener already surfaces this reply to the
  // identification attack; the node only needs to keep the exchange shaped
  // like an honest one.
  wire::AuthConfirm confirm;
  confirm.sender = self_;
  drbg_.fill(confirm.confirm.proof_a.data(), confirm.confirm.proof_a.size());
  if (coordinator_->attach_bogus_swap()) {
    confirm.swap_offer = coordinator_->faulty_view(
        std::max<std::size_t>(1, coordinator_->config().advertised_view_size / 2));
  }
  return confirm;
}

std::optional<wire::SwapReply> ByzantineNode::process_confirm(
    const wire::AuthConfirm& /*confirm*/) {
  return std::nullopt;  // nobody ever mutually authenticates with us
}

void ByzantineNode::process_swap_reply(const wire::SwapReply& /*reply*/) {}

void ByzantineNode::end_round(Round /*r*/) {}

std::vector<NodeId> ByzantineNode::current_view() const {
  // What the node would advertise if asked; Byzantine views are excluded
  // from every honest-side metric.
  return coordinator_->members();
}

}  // namespace raptee::adversary
