#include "adversary/byzantine.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace raptee::adversary {

Coordinator::Coordinator(std::vector<NodeId> members, std::vector<NodeId> victims,
                         AttackConfig config, std::uint64_t seed)
    : members_(std::move(members)),
      victims_(std::move(victims)),
      config_(config),
      rng_(mix64(seed, 0x42595A43ull)) {
  RAPTEE_REQUIRE(!members_.empty(), "coordinator needs at least one member");
  std::sort(members_.begin(), members_.end());
}

void Coordinator::set_victims(std::vector<NodeId> victims) {
  victims_ = std::move(victims);
}

void Coordinator::begin_round(Round r) {
  if (prepared_round_ && *prepared_round_ == r) return;
  prepared_round_ = r;
  // Balanced attack: the total budget is laid out round-robin over a
  // shuffled victim list, so per-victim push counts differ by at most one —
  // the spread the Brahms paper proves optimal for the adversary.
  const std::vector<NodeId>& pool =
      config_.targeted_victims.empty() ? victims_ : config_.targeted_victims;
  schedule_.clear();
  if (pool.empty() || config_.push_budget_per_member == 0) return;
  const std::size_t total = members_.size() * config_.push_budget_per_member;
  std::vector<NodeId> shuffled = pool;
  rng_.shuffle(shuffled);
  schedule_.reserve(total);
  for (std::size_t j = 0; j < total; ++j) schedule_.push_back(shuffled[j % shuffled.size()]);
}

std::vector<NodeId> Coordinator::push_allocation(NodeId member) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), member);
  RAPTEE_ASSERT_MSG(it != members_.end() && *it == member, "unknown member");
  const auto idx = static_cast<std::size_t>(it - members_.begin());
  const std::size_t budget = config_.push_budget_per_member;
  const std::size_t from = idx * budget;
  if (from >= schedule_.size()) return {};
  const std::size_t to = std::min(from + budget, schedule_.size());
  return {schedule_.begin() + static_cast<std::ptrdiff_t>(from),
          schedule_.begin() + static_cast<std::ptrdiff_t>(to)};
}

std::vector<NodeId> Coordinator::pull_targets(NodeId /*member*/) {
  std::vector<NodeId> out;
  if (victims_.empty()) return out;
  out.reserve(config_.pull_fanout);
  for (std::size_t i = 0; i < config_.pull_fanout; ++i) {
    out.push_back(victims_[static_cast<std::size_t>(rng_.below(victims_.size()))]);
  }
  return out;
}

std::vector<NodeId> Coordinator::faulty_view(std::size_t k) {
  if (k <= members_.size()) return rng_.sample(members_, k);
  // Fewer members than requested: fill with repeats.
  std::vector<NodeId> out = members_;
  while (out.size() < k) {
    out.push_back(members_[static_cast<std::size_t>(rng_.below(members_.size()))]);
  }
  rng_.shuffle(out);
  return out;
}

NodeId Coordinator::faulty_id() {
  return members_[static_cast<std::size_t>(rng_.below(members_.size()))];
}

bool Coordinator::is_member(NodeId id) const {
  return std::binary_search(members_.begin(), members_.end(), id);
}

ByzantineNode::ByzantineNode(NodeId self, std::shared_ptr<Coordinator> coordinator,
                             std::uint64_t seed)
    : self_(self),
      coordinator_(std::move(coordinator)),
      drbg_(mix64(seed, self.value), "byzantine-camouflage"),
      rng_(mix64(seed, ~static_cast<std::uint64_t>(self.value))) {
  RAPTEE_REQUIRE(coordinator_ != nullptr, "ByzantineNode requires a coordinator");
}

void ByzantineNode::bootstrap(const std::vector<NodeId>& /*initial_peers*/) {
  // The adversary has global knowledge; bootstrap handouts are ignored.
}

void ByzantineNode::begin_round(Round r) { coordinator_->begin_round(r); }

std::vector<NodeId> ByzantineNode::push_targets() {
  return coordinator_->push_allocation(self_);
}

wire::PushMessage ByzantineNode::make_push() {
  // Each push advertises some Byzantine ID (the adversary maximizes the
  // spread of faulty IDs, not of any single identity).
  return wire::PushMessage{coordinator_->faulty_id()};
}

void ByzantineNode::on_push(const wire::PushMessage& /*push*/) {}

std::vector<NodeId> ByzantineNode::pull_targets() {
  return coordinator_->pull_targets(self_);
}

wire::PullRequest ByzantineNode::open_pull(NodeId /*target*/) {
  wire::PullRequest request;
  request.sender = self_;
  drbg_.fill(request.challenge.r_a.data(), request.challenge.r_a.size());
  return request;
}

wire::PullReply ByzantineNode::answer_pull(const wire::PullRequest& /*request*/) {
  wire::PullReply reply;
  reply.sender = self_;
  drbg_.fill(reply.auth.r_b.data(), reply.auth.r_b.size());
  drbg_.fill(reply.auth.proof_b.data(), reply.auth.proof_b.size());  // can't forge
  reply.view = coordinator_->faulty_view(coordinator_->config().advertised_view_size);
  return reply;
}

wire::AuthConfirm ByzantineNode::process_pull_reply(const wire::PullReply& /*reply*/) {
  // The engine's traffic listener already surfaces this reply to the
  // identification attack; the node only needs to keep the exchange shaped
  // like an honest one.
  wire::AuthConfirm confirm;
  confirm.sender = self_;
  drbg_.fill(confirm.confirm.proof_a.data(), confirm.confirm.proof_a.size());
  if (coordinator_->config().attach_bogus_swap_offer) {
    confirm.swap_offer = coordinator_->faulty_view(
        std::max<std::size_t>(1, coordinator_->config().advertised_view_size / 2));
  }
  return confirm;
}

std::optional<wire::SwapReply> ByzantineNode::process_confirm(
    const wire::AuthConfirm& /*confirm*/) {
  return std::nullopt;  // nobody ever mutually authenticates with us
}

void ByzantineNode::process_swap_reply(const wire::SwapReply& /*reply*/) {}

void ByzantineNode::end_round(Round /*r*/) {}

std::vector<NodeId> ByzantineNode::current_view() const {
  // What the node would advertise if asked; Byzantine views are excluded
  // from every honest-side metric.
  return coordinator_->members();
}

}  // namespace raptee::adversary
